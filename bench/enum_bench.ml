(* Join-enumeration benchmark: graph-aware csg–cmp enumeration with
   cost-bound pruning vs the pre-change all-masks/all-splits enumerator
   ([Join_order.exhaustive] preserves it verbatim).

   Before any timing, the harness proves the fast enumerator equivalent on
   every benchmarked shape: at the pre-check size both enumerators must
   agree on the final plan cost (across bushy/left-deep, interesting
   orders on/off, with and without a required output order), and every
   plan the fast enumerator emits must pass the [Verify.physical] lint.
   Any violation exits 1, so a speedup can never come from a search-space
   hole.

   Results go to BENCH_opt.json: per shape (chain, cycle, star, clique) ×
   mode (left-deep, bushy) × n, wall-clock for both enumerators plus the
   fast enumerator's effort counters (DP subsets, splits considered,
   plans costed, plans pruned).  The old enumerator is skipped beyond a
   cutoff (bushy splits grow as 3^n) and reported as null.

   Usage: enum_bench [--smoke] [--out FILE]
     --smoke   n ≤ 6, single repetition — a CI liveness check (the
               equivalence pre-check still runs in full at the smoke
               sizes), no timing claims
     --out     output path (default BENCH_opt.json) *)

open Relalg

type scale = {
  reps : int;
  precheck_n : int;
  ns : int list;  (** timed sizes (chain / cycle / star) *)
  clique_ns : int list;
}

let full = { reps = 3; precheck_n = 8; ns = [ 4; 8; 12; 16 ];
             clique_ns = [ 4; 6; 8; 10 ] }
let smoke = { reps = 1; precheck_n = 6; ns = [ 4; 6 ]; clique_ns = [ 4; 6 ] }

let shapes =
  [ ("chain", Workload.Schemas.Chain_q); ("cycle", Workload.Schemas.Cycle_q);
    ("star", Workload.Schemas.Star_q); ("clique", Workload.Schemas.Clique_q) ]

(* The old enumerator's bushy split loop walks all 3^n (mask, submask)
   pairs and its left-deep loop all 2^n masks; cap it where that stays
   under a few seconds.  The new enumerator runs at every size. *)
let old_cutoff ~shape ~bushy =
  match shape with
  | "clique" -> 10
  | _ -> if bushy then 12 else 16

let spj_of_pieces ?(order_by = []) (p : Workload.Schemas.join_pieces) :
  Systemr.Spj.t =
  Systemr.Spj.make ~order_by
    ~relations:
      (List.map
         (fun (alias, table) ->
            { Systemr.Spj.alias; table;
              schema =
                Schema.requalify
                  (Storage.Catalog.table p.Workload.Schemas.jcat table)
                    .Storage.Table.schema ~rel:alias })
         p.Workload.Schemas.relations)
    ~predicates:p.Workload.Schemas.predicates ()

let optimize config (p : Workload.Schemas.join_pieces) q =
  Systemr.Join_order.optimize ~config p.Workload.Schemas.jcat
    p.Workload.Schemas.jdb q

(* ------------------------------------------------------------------ *)
(* Equivalence pre-check (runs before any timing) *)

let check_equivalence ~n shape_name shape =
  let p = Workload.Schemas.join_shape ~rows:300 ~shape ~n () in
  let order_bys =
    [ ("none", []);
      ("R1.a", [ ({ Expr.rel = "R1"; col = "a" }, Algebra.Asc) ]) ]
  in
  List.iter
    (fun bushy ->
       List.iter
         (fun interesting_orders ->
            List.iter
              (fun (ob_name, order_by) ->
                 let q = spj_of_pieces ~order_by p in
                 let fast_cfg =
                   { Systemr.Join_order.default_config with
                     bushy; interesting_orders }
                 in
                 let fast = optimize fast_cfg p q in
                 let slow =
                   optimize (Systemr.Join_order.exhaustive fast_cfg) p q
                 in
                 let cf = fast.Systemr.Join_order.best.Systemr.Candidate.cost
                 and cs = slow.Systemr.Join_order.best.Systemr.Candidate.cost in
                 let tol = 1e-6 *. Float.max 1. (Float.max cf cs) in
                 let label =
                   Printf.sprintf "%s n=%d %s io=%b order=%s" shape_name n
                     (if bushy then "bushy" else "left-deep")
                     interesting_orders ob_name
                 in
                 if Float.abs (cf -. cs) > tol then begin
                   Printf.eprintf
                     "FAIL %s: fast cost %.6f <> exhaustive cost %.6f\n"
                     label cf cs;
                   exit 1
                 end;
                 let diags =
                   Verify.physical p.Workload.Schemas.jcat
                     fast.Systemr.Join_order.best.Systemr.Candidate.plan
                 in
                 if Verify.Diag.has_errors diags then begin
                   Fmt.epr "FAIL %s: plan lint errors: %a@." label
                     Verify.Diag.pp_list diags;
                   exit 1
                 end)
              order_bys)
         [ true; false ])
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* Timing *)

(* best-of-[reps] wall clock; returns (seconds, last result) *)
let time_runs reps f =
  let best = ref infinity and last = ref None in
  for _ = 1 to reps do
    Gc.full_major ();
    let t0 = Obs.Clock.now () in
    let r = f () in
    let dt = Obs.Clock.now () -. t0 in
    if dt < !best then best := dt;
    last := Some r
  done;
  match !last with None -> assert false | Some r -> (!best, r)

type row = {
  shape : string;
  mode : string;  (* "left-deep" | "bushy" *)
  n : int;
  new_s : float;
  old_s : float option;  (* None beyond the old enumerator's cutoff *)
  analysis_s : float;
      (* abstract-interpretation pass over the winning plan: the cost the
         [analysis] pipeline option adds on top of optimization *)
  counters : Systemr.Join_order.counters;
}

let speedup r =
  match r.old_s with
  | Some o when r.new_s > 0. -> Some (o /. r.new_s)
  | _ -> None

let bench_point ~reps ~shape_name ~shape ~bushy ~n : row =
  let p = Workload.Schemas.join_shape ~rows:300 ~shape ~n () in
  let q = spj_of_pieces p in
  let fast_cfg =
    { Systemr.Join_order.default_config with bushy }
  in
  let new_s, res = time_runs reps (fun () -> optimize fast_cfg p q) in
  let old_s =
    if n <= old_cutoff ~shape:shape_name ~bushy then
      let slow_cfg = Systemr.Join_order.exhaustive fast_cfg in
      let s, _ = time_runs reps (fun () -> optimize slow_cfg p q) in
      Some s
    else None
  in
  let best = res.Systemr.Join_order.best.Systemr.Candidate.plan in
  let analysis_s, _ =
    time_runs reps (fun () ->
        Analysis.Absint.annotate_plan ~db:p.Workload.Schemas.jdb
          p.Workload.Schemas.jcat best)
  in
  { shape = shape_name; mode = (if bushy then "bushy" else "left-deep"); n;
    new_s; old_s; analysis_s; counters = res.Systemr.Join_order.counters }

let bench_all (sc : scale) : row list =
  List.concat_map
    (fun (shape_name, shape) ->
       let ns = if shape_name = "clique" then sc.clique_ns else sc.ns in
       List.concat_map
         (fun bushy ->
            List.map
              (fun n ->
                 bench_point ~reps:sc.reps ~shape_name ~shape ~bushy ~n)
              ns)
         [ false; true ])
    shapes

(* ------------------------------------------------------------------ *)
(* Output *)

let json_of_rows ~smoke ~precheck_n (rows : row list) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"smoke\": %b,\n  \"reps\": \"best-of\",\n\
       \  \"equivalence_precheck\": {\"n\": %d, \"shapes\": [%s], \
        \"modes\": [\"left-deep\", \"bushy\"], \
        \"interesting_orders\": [true, false], \
        \"order_by\": [\"none\", \"R1.a\"], \
        \"cost_equal_to_exhaustive\": true, \"plans_lint_clean\": true},\n"
       smoke precheck_n
       (String.concat ", "
          (List.map (fun (s, _) -> Printf.sprintf "%S" s) shapes)));
  (match
     List.find_opt
       (fun r -> r.shape = "chain" && r.mode = "bushy" && r.n = 12)
       rows
   with
   | Some r ->
     (match speedup r with
      | Some s ->
        Buffer.add_string b
          (Printf.sprintf "  \"chain12_bushy_speedup\": %.2f,\n" s)
      | None -> ())
   | None -> ());
  let max_pct =
    List.fold_left
      (fun acc r ->
         if r.new_s > 0. then Float.max acc (100. *. r.analysis_s /. r.new_s)
         else acc)
      0. rows
  in
  let total_pct =
    let an = List.fold_left (fun acc r -> acc +. r.analysis_s) 0. rows
    and opt = List.fold_left (fun acc r -> acc +. r.new_s) 0. rows in
    if opt > 0. then 100. *. an /. opt else 0.
  in
  Buffer.add_string b
    (Printf.sprintf
       "  \"analysis_overhead_total_pct\": %.2f,\n\
       \  \"analysis_overhead_max_pct\": %.2f,\n"
       total_pct max_pct);
  Buffer.add_string b "  \"points\": [\n";
  List.iteri
    (fun i r ->
       let c = r.counters in
       Buffer.add_string b
         (Printf.sprintf
            "    {\"shape\": %S, \"mode\": %S, \"n\": %d, \
             \"new_s\": %.6f, \"old_s\": %s, \"speedup\": %s, \
             \"analysis_s\": %.6f, \"analysis_pct\": %.2f, \
             \"subsets\": %d, \"splits\": %d, \"costed\": %d, \
             \"pruned\": %d}%s\n"
            r.shape r.mode r.n r.new_s
            (match r.old_s with
             | Some s -> Printf.sprintf "%.6f" s
             | None -> "null")
            (match speedup r with
             | Some s -> Printf.sprintf "%.2f" s
             | None -> "null")
            r.analysis_s
            (if r.new_s > 0. then 100. *. r.analysis_s /. r.new_s else 0.)
            c.Systemr.Join_order.subsets c.Systemr.Join_order.splits
            c.Systemr.Join_order.costed c.Systemr.Join_order.pruned
            (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let smoke_flag = ref false and out = ref "BENCH_opt.json" in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest -> smoke_flag := true; parse rest
    | "--out" :: f :: rest -> out := f; parse rest
    | a :: _ -> Printf.eprintf "unknown argument: %s\n" a; exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sc = if !smoke_flag then smoke else full in
  List.iter
    (fun (shape_name, shape) ->
       check_equivalence ~n:sc.precheck_n shape_name shape;
       Printf.printf "precheck %-6s n=%d: fast = exhaustive, plans lint \
                      clean\n%!" shape_name sc.precheck_n)
    shapes;
  let rows = bench_all sc in
  Printf.printf "%-6s %-9s %3s %10s %10s %8s %9s %8s %8s %8s %8s\n" "shape"
    "mode" "n" "new_s" "old_s" "speedup" "anlys%" "subsets" "splits"
    "costed" "pruned";
  List.iter
    (fun r ->
       let c = r.counters in
       Printf.printf
         "%-6s %-9s %3d %10.4f %10s %8s %8.2f%% %8d %8d %8d %8d\n"
         r.shape r.mode r.n r.new_s
         (match r.old_s with
          | Some s -> Printf.sprintf "%.4f" s
          | None -> "-")
         (match speedup r with
          | Some s -> Printf.sprintf "%.1fx" s
          | None -> "-")
         (if r.new_s > 0. then 100. *. r.analysis_s /. r.new_s else 0.)
         c.Systemr.Join_order.subsets c.Systemr.Join_order.splits
         c.Systemr.Join_order.costed c.Systemr.Join_order.pruned)
    rows;
  let oc = open_out !out in
  output_string oc (json_of_rows ~smoke:!smoke_flag ~precheck_n:sc.precheck_n rows);
  close_out oc;
  Printf.printf
    "wrote %s (equivalence pre-check passed for every shape)\n" !out
