(* E1-E3: enumeration experiments — DP vs naive, interesting orders,
   Cartesian products in star queries. *)

open Relalg

(* ------------------------------------------------------------------ *)
(* E1: plans considered, naive O(n!) vs dynamic programming O(n 2^(n-1)) *)

let e1 () =
  Util.header "E1" "naive O(n!) vs DP enumeration effort (Section 3)";
  let rows_out = ref [] in
  for n = 2 to 7 do
    let p = Workload.Schemas.join_shape ~rows:50 ~shape:Workload.Schemas.Clique_q ~n () in
    let q = Util.spj_of_pieces p in
    let t0 = Obs.Clock.now () in
    let dp = Systemr.Join_order.optimize p.Workload.Schemas.jcat p.Workload.Schemas.jdb q in
    let t_dp = Obs.Clock.now () -. t0 in
    let t1 = Obs.Clock.now () in
    let nv = Systemr.Naive.optimize p.Workload.Schemas.jcat p.Workload.Schemas.jdb q in
    let t_naive = Obs.Clock.now () -. t1 in
    (* identical search space: best costs must agree *)
    let agree =
      Float.abs
        (dp.Systemr.Join_order.best.Systemr.Candidate.cost
         -. nv.Systemr.Naive.best.Systemr.Candidate.cost)
      < 1e-6
    in
    rows_out :=
      [ Util.istr n;
        Util.istr (Systemr.Naive.linear_sequences n);
        Util.istr nv.Systemr.Naive.plans_costed;
        Util.istr (Systemr.Naive.dp_extensions n);
        Util.istr dp.Systemr.Join_order.counters.Systemr.Join_order.costed;
        Printf.sprintf "%.1f" (float_of_int nv.Systemr.Naive.plans_costed
                               /. float_of_int (max 1 dp.Systemr.Join_order.counters.Systemr.Join_order.costed));
        Printf.sprintf "%.3f" t_naive;
        Printf.sprintf "%.3f" t_dp;
        string_of_bool agree ]
      :: !rows_out
  done;
  Util.table
    [ "n"; "n!"; "naive plans"; "DP ext."; "DP plans"; "ratio";
      "naive s"; "DP s"; "same best" ]
    (List.rev !rows_out)

(* ------------------------------------------------------------------ *)
(* E2: interesting orders.  Three relations joined on the same attribute
   with a sorted final result: keeping the (locally dearer) sort-merge plan
   for R1xR2 avoids re-sorting later. *)

(* Three relations joined on the same attribute a, result ordered by a;
   only R1 is stored in key order with a clustered index.  Keeping the
   ordered (sort-merge) subplans alive avoids a large final sort. *)
let e2_workload ~rows =
  let cat = Storage.Catalog.create () in
  let st = Workload.Gen.rng 2 in
  let mk name sorted =
    let t =
      Storage.Catalog.create_table cat ~name
        ~columns:[ ("a", Value.Tint); ("c", Value.Tint) ]
    in
    let data =
      List.init rows (fun _ ->
          (Workload.Gen.uniform_int st ~lo:0 ~hi:(rows / 5),
           Workload.Gen.uniform_int st ~lo:0 ~hi:999))
    in
    let data = if sorted then List.sort compare data else data in
    List.iter
      (fun (a, c) ->
         Storage.Table.insert t (Tuple.of_list [ Value.Int a; Value.Int c ]))
      data;
    t
  in
  ignore (mk "R1" true);
  ignore (mk "R2" false);
  ignore (mk "R3" false);
  ignore (Storage.Catalog.create_index cat ~clustered:true ~table:"R1" ~column:"a" ());
  let db = Stats.Table_stats.analyze_catalog cat in
  (cat, db)

let e2 () =
  Util.header "E2"
    "interesting orders: per-order pruning vs cheapest-only (Section 3)";
  let rows_out = ref [] in
  List.iter
    (fun rows ->
       let cat, db = e2_workload ~rows in
       let names = [ "R1"; "R2"; "R3" ] in
       let q =
         Systemr.Spj.make
           ~relations:
             (List.map
                (fun n ->
                   { Systemr.Spj.alias = n; table = n;
                     schema =
                       Schema.requalify
                         (Storage.Catalog.table cat n).Storage.Table.schema
                         ~rel:n })
                names)
           ~predicates:
             [ Util.eq (Util.col "R1" "a") (Util.col "R2" "a");
               Util.eq (Util.col "R1" "a") (Util.col "R3" "a") ]
           ~order_by:[ ({ Expr.rel = "R1"; col = "a" }, Algebra.Asc) ]
           ()
       in
       let opt io =
         Systemr.Join_order.optimize
           ~config:{ Systemr.Join_order.default_config with interesting_orders = io }
           cat db q
       in
       let with_io = opt true and without = opt false in
       let measured cfg_res =
         let _, cost, _ =
           Util.measure cat cfg_res.Systemr.Join_order.best.Systemr.Candidate.plan
         in
         cost
       in
       rows_out :=
         [ Util.istr rows;
           Util.f1 with_io.Systemr.Join_order.best.Systemr.Candidate.cost;
           Util.f1 without.Systemr.Join_order.best.Systemr.Candidate.cost;
           Util.f1 (measured with_io);
           Util.f1 (measured without);
           Util.f2
             (without.Systemr.Join_order.best.Systemr.Candidate.cost
              /. with_io.Systemr.Join_order.best.Systemr.Candidate.cost) ]
         :: !rows_out)
    [ 2000; 8000; 20000 ];
  Util.table
    [ "rows/rel"; "est cost (IO)"; "est cost (no IO)"; "meas (IO)";
      "meas (no IO)"; "no-IO/IO" ]
    (List.rev !rows_out);
  print_endline
    "  (IO = interesting orders kept; pruning to a single cheapest plan per\n\
    \   subset discards the sorted sort-merge plan and pays a final sort)"

(* ------------------------------------------------------------------ *)
(* E3: Cartesian products in star queries (Section 4.1.1): with selective
   dimension predicates, crossing the filtered dimensions and making a
   single pass over the fact table beats the cascade of per-dimension
   joins. *)

let e3 () =
  Util.header "E3"
    "star query: deferring vs allowing Cartesian products (Section 4.1.1)";
  let rows_out = ref [] in
  List.iter
    (fun weight_cut ->
       let w = Workload.Schemas.star ~fact_rows:50000 ~dim_rows:200 ~dims:3 () in
       let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
       let dim_filter d =
         Expr.Cmp (Expr.Le, Util.col d "weight", Expr.int weight_cut)
       in
       let preds =
         List.concat_map
           (fun d ->
              [ Util.eq
                  (Util.col "Sales" (String.lowercase_ascii d ^ "_id"))
                  (Util.col d "id");
                dim_filter d ])
           w.Workload.Schemas.dims
       in
       let q =
         Systemr.Spj.make
           ~relations:
             (List.map
                (fun n ->
                   { Systemr.Spj.alias = n; table = n;
                     schema =
                       Schema.requalify
                         (Storage.Catalog.table cat n).Storage.Table.schema
                         ~rel:n })
                (w.Workload.Schemas.fact :: w.Workload.Schemas.dims))
           ~predicates:preds ()
       in
       let opt cfg = Systemr.Join_order.optimize ~config:cfg cat db q in
       let lin = opt Systemr.Join_order.default_config in
       let bushy_nocross =
         opt { Systemr.Join_order.default_config with bushy = true }
       in
       let cross =
         opt
           { Systemr.Join_order.default_config with
             allow_cross = true; bushy = true }
       in
       let measure res =
         let _, cost, _ =
           Util.measure cat res.Systemr.Join_order.best.Systemr.Candidate.plan
         in
         cost
       in
       rows_out :=
         [ Util.istr weight_cut;
           Printf.sprintf "%.0f%%" (float_of_int weight_cut /. 100. *. 100.);
           Util.f1 lin.Systemr.Join_order.best.Systemr.Candidate.cost;
           Util.f1 bushy_nocross.Systemr.Join_order.best.Systemr.Candidate.cost;
           Util.f1 cross.Systemr.Join_order.best.Systemr.Candidate.cost;
           Util.f1 (measure lin);
           Util.f1 (measure cross);
           Util.f2
             (lin.Systemr.Join_order.best.Systemr.Candidate.cost
              /. cross.Systemr.Join_order.best.Systemr.Candidate.cost) ]
         :: !rows_out)
    [ 2; 10; 40; 100 ];
  Util.table
    [ "weight cut"; "dim sel"; "est linear"; "est bushy";
      "est bushy+cross"; "meas linear"; "meas bushy+cross"; "benefit" ]
    (List.rev !rows_out)

let all () = e1 (); e2 (); e3 ()
