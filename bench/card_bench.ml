(* card_bench: closed-loop cardinality estimation quality — histogram vs
   feedback cache vs Fast-AGMS sketches.

   Each workload is a (schema, SQL) pair run twice per estimator mode with
   instrumentation on.  The second run re-optimizes with whatever the
   mode's carried state recorded during the first: observed actuals under
   `Feedback, one-pass join-key sketches under `Sketch, nothing under
   `Histogram.  Reported per (workload, engine, mode): the worst
   per-operator q-error of the cold and of the re-optimized run, plus the
   re-optimized run's wall clock (best of reps).

   For every join workload the sketches built in sketch mode are also
   checked against ground truth: |est - J| <= sqrt(8/w) * sqrt(F2a * F2b)
   with the second moments computed exactly from the data.  Hashing and
   data are deterministic, so within_bound is a stable fact of the build,
   not a coin flip.

   Results go to BENCH_card.json.

   Usage: card_bench [--smoke] [--engine batch|interpreted|both] [--out FILE]
     --smoke   tiny inputs, single repetition — a CI liveness check *)

open Relalg
module P = Core.Pipeline

type scale = { emps : int; fact_rows : int; skew_rows : int; reps : int }

(* skew_rows stays modest: the Zipfian many-to-many join output grows
   with the product of the heavy hitters' frequencies *)
let full = { emps = 5000; fact_rows = 20000; skew_rows = 4000; reps = 3 }
let smoke = { emps = 300; fact_rows = 1200; skew_rows = 1000; reps = 1 }

(* ------------------------------------------------------------------ *)
(* Workloads.  [joins] lists the join-key column pairs for the sketch
   ground-truth check. *)

type workload = {
  wname : string;
  build : scale -> Storage.Catalog.t * Stats.Table_stats.db;
  sql : string;
  joins : (string * string * string * string) list; (* ta, ca, tb, cb *)
}

(* R(k, a) with Zipfian keys joined to S(k, b) with Zipfian keys: the
   ndv-based uniform-frequency heuristic badly underestimates a skewed
   many-to-many join; sketches capture the frequency skew. *)
let build_skew sc =
  let cat = Storage.Catalog.create () in
  let r = Storage.Catalog.create_table cat ~name:"R"
      ~columns:[ ("k", Value.Tint); ("a", Value.Tint) ] in
  let s = Storage.Catalog.create_table cat ~name:"S"
      ~columns:[ ("k", Value.Tint); ("b", Value.Tint) ] in
  let st = Workload.Gen.rng 4242 in
  let rk = Workload.Gen.zipf_array st ~n:100 ~size:sc.skew_rows ~skew:1.3 in
  let sk = Workload.Gen.zipf_array st ~n:100 ~size:(sc.skew_rows / 2) ~skew:1.1 in
  Array.iteri
    (fun i k ->
       Storage.Table.insert r (Tuple.of_list [ Value.Int k; Value.Int i ]))
    rk;
  Array.iteri
    (fun i k ->
       Storage.Table.insert s (Tuple.of_list [ Value.Int k; Value.Int i ]))
    sk;
  (cat, Stats.Table_stats.analyze_catalog cat)

let workloads =
  [ { wname = "emp_correlated";
      build =
        (fun sc ->
           let w =
             Workload.Schemas.emp_dept ~emps:sc.emps ~depts:(sc.emps / 50) ()
           in
           (w.Workload.Schemas.cat, w.Workload.Schemas.db));
      sql =
        "SELECT Emp.name FROM Emp, Dept \
         WHERE Emp.did = Dept.did AND Emp.sal > 60000 AND Emp.age < 40";
      joins = [ ("Emp", "did", "Dept", "did") ] };
    { wname = "star_filters";
      build =
        (fun sc ->
           let w =
             Workload.Schemas.star ~fact_rows:sc.fact_rows ~dim_rows:100
               ~dims:3 ()
           in
           (w.Workload.Schemas.cat, w.Workload.Schemas.db));
      sql =
        "SELECT Sales.sid FROM Sales, Dim1, Dim2 \
         WHERE Sales.dim1_id = Dim1.id AND Sales.dim2_id = Dim2.id \
         AND Dim1.weight < 30 AND Dim2.weight < 30 AND Sales.amount > 50";
      joins =
        [ ("Sales", "dim1_id", "Dim1", "id");
          ("Sales", "dim2_id", "Dim2", "id") ] };
    { wname = "zipf_join";
      build = build_skew;
      sql = "SELECT R.a FROM R, S WHERE R.k = S.k AND R.a >= 0";
      joins = [ ("R", "k", "S", "k") ] } ]

(* ------------------------------------------------------------------ *)

let max_q reports =
  List.concat_map (fun r -> r.P.op_stats) reports
  |> List.fold_left
       (fun acc (o : Exec.Instrument.op) ->
          match o.Exec.Instrument.est_rows with
          | Some e when o.Exec.Instrument.executed ->
            Float.max acc
              (Obs.Analyze.q_error ~est:e
                 ~act:(float_of_int o.Exec.Instrument.act_rows))
          | _ -> acc)
       1.

type mode_result = {
  maxq_cold : float;
  maxq_rerun : float;
  wall_s : float;
  rows : int;
}

let run_mode ~reps ~engine ~estimator cat db q =
  let config =
    { P.default_config with engine; estimator; instrument = true }
  in
  let res1, reps1 = P.run_query ~config cat db q in
  (* the state recorded by run 1 is now warm; time the re-optimized run *)
  let best = ref infinity and last = ref None in
  for _ = 1 to reps do
    let t0 = Obs.Clock.now () in
    let res2, reps2 = P.run_query ~config cat db q in
    let dt = Obs.Clock.now () -. t0 in
    if dt < !best then best := dt;
    last := Some (res2, reps2)
  done;
  let res2, reps2 = Option.get !last in
  if
    Array.length res1.Exec.Executor.rows
    <> Array.length res2.Exec.Executor.rows
  then failwith "re-optimized run changed the result cardinality";
  { maxq_cold = max_q reps1;
    maxq_rerun = max_q reps2;
    wall_s = !best;
    rows = Array.length res2.Exec.Executor.rows }

(* Exact join size and second moments of a key-column pair. *)
let exact_join cat (ta, ca, tb, cb) =
  let col t c =
    let tbl = Storage.Catalog.table cat t in
    let j = Storage.Table.column_index tbl c in
    let h = Hashtbl.create 64 in
    Storage.Table.iter
      (fun tup ->
         match Tuple.get tup j with
         | Value.Int v ->
           Hashtbl.replace h v
             (1 + Option.value ~default:0 (Hashtbl.find_opt h v))
         | _ -> ())
      tbl;
    h
  in
  let fa = col ta ca and fb = col tb cb in
  let join = ref 0. and f2a = ref 0. and f2b = ref 0. in
  Hashtbl.iter
    (fun v na ->
       f2a := !f2a +. (float_of_int na ** 2.);
       match Hashtbl.find_opt fb v with
       | Some nb -> join := !join +. float_of_int (na * nb)
       | None -> ())
    fa;
  Hashtbl.iter (fun _ nb -> f2b := !f2b +. (float_of_int nb ** 2.)) fb;
  (!join, !f2a, !f2b)

type sketch_check = {
  pair : string;
  est : float;
  exact : float;
  bound : float;
  within : bool;
}

let check_sketches reg cat joins =
  List.filter_map
    (fun ((ta, ca, tb, cb) as jn) ->
       match
         ( Stats.Sketch.registry_find reg ~table:ta ~column:ca,
           Stats.Sketch.registry_find reg ~table:tb ~column:cb )
       with
       | Some ea, Some eb ->
         let sa = ea.Stats.Sketch.sketch and sb = eb.Stats.Sketch.sketch in
         let exact, f2a, f2b = exact_join cat jn in
         let est = Stats.Sketch.join_estimate sa sb in
         let bound = Stats.Sketch.epsilon sa *. sqrt (f2a *. f2b) in
         Some
           { pair = Printf.sprintf "%s.%s-%s.%s" ta ca tb cb;
             est; exact; bound;
             within = Float.abs (est -. exact) <= bound }
       | _ -> None)
    joins

(* ------------------------------------------------------------------ *)

type row = {
  wl : string;
  engine : string;
  histogram : mode_result;
  feedback : mode_result;
  sketch : mode_result option; (* batch engines only *)
  sketches : sketch_check list;
  improves : bool;
}

let bench_one sc engine_name engine w =
  let run estimator =
    let cat, db = w.build sc in
    let q = Sql.Binder.query_of_string cat w.sql in
    (run_mode ~reps:sc.reps ~engine ~estimator cat db q, cat)
  in
  let histogram, _ = run `Histogram in
  let feedback, _ = run (`Feedback (Stats.Feedback.create ())) in
  let sketch, sketches =
    if engine = `Batch then begin
      let reg = Stats.Sketch.registry_create () in
      let r, cat = run (`Sketch reg) in
      (Some r, check_sketches reg cat w.joins)
    end
    else (None, [])
  in
  { wl = w.wname;
    engine = engine_name;
    histogram;
    feedback;
    sketch;
    sketches;
    (* the headline claim: closing the loop must not leave the repeated
       query's worst estimate worse than histogram-only, and must fix it
       outright when the histogram was wrong *)
    improves =
      feedback.maxq_rerun <= histogram.maxq_rerun
      && (histogram.maxq_rerun <= 1.000001
          || feedback.maxq_rerun < histogram.maxq_rerun) }

(* ------------------------------------------------------------------ *)

let json_of_rows ~smoke rows =
  let b = Buffer.create 4096 in
  let mode m =
    Printf.sprintf
      "{\"maxq_cold\": %.4f, \"maxq_rerun\": %.4f, \"wall_s\": %.6f, \
       \"rows\": %d}"
      m.maxq_cold m.maxq_rerun m.wall_s m.rows
  in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"smoke\": %b,\n  \"workloads\": [\n" smoke);
  List.iteri
    (fun i r ->
       Buffer.add_string b
         (Printf.sprintf
            "    {\"name\": \"%s\", \"engine\": \"%s\",\n\
            \     \"histogram\": %s,\n\
            \     \"feedback\": %s,\n\
            \     \"feedback_improves\": %b%s%s}%s\n"
            r.wl r.engine (mode r.histogram) (mode r.feedback) r.improves
            (match r.sketch with
             | Some s -> Printf.sprintf ",\n     \"sketch\": %s" (mode s)
             | None -> "")
            (match r.sketches with
             | [] -> ""
             | cs ->
               Printf.sprintf ",\n     \"sketch_joins\": [%s]"
                 (String.concat ", "
                    (List.map
                       (fun c ->
                          Printf.sprintf
                            "{\"pair\": \"%s\", \"est\": %.1f, \"exact\": \
                             %.1f, \"bound\": %.1f, \"within_bound\": %b}"
                            c.pair c.est c.exact c.bound c.within)
                       cs)))
            (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let smoke_flag = ref false
  and out = ref "BENCH_card.json"
  and engines = ref [ ("batch", `Batch); ("interpreted", `Interpreted) ] in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
      smoke_flag := true;
      parse rest
    | "--out" :: f :: rest ->
      out := f;
      parse rest
    | "--engine" :: "batch" :: rest ->
      engines := [ ("batch", `Batch) ];
      parse rest
    | "--engine" :: "interpreted" :: rest ->
      engines := [ ("interpreted", `Interpreted) ];
      parse rest
    | "--engine" :: "both" :: rest -> parse rest
    | a :: _ ->
      Printf.eprintf "unknown argument: %s\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sc = if !smoke_flag then smoke else full in
  let rows =
    List.concat_map
      (fun (ename, engine) ->
         List.map (fun w -> bench_one sc ename engine w) workloads)
      !engines
  in
  Printf.printf "%-16s %-12s %10s %10s %10s %10s %9s\n" "workload" "engine"
    "hist_q" "fb_cold_q" "fb_rerun_q" "sketch_q" "improves";
  List.iter
    (fun r ->
       Printf.printf "%-16s %-12s %10.3f %10.3f %10.3f %10s %9b\n" r.wl
         r.engine r.histogram.maxq_rerun r.feedback.maxq_cold
         r.feedback.maxq_rerun
         (match r.sketch with
          | Some s -> Printf.sprintf "%.3f" s.maxq_rerun
          | None -> "-")
         r.improves)
    rows;
  let failed_bound =
    List.concat_map (fun r -> r.sketches) rows
    |> List.filter (fun c -> not c.within)
  in
  List.iter
    (fun c ->
       Printf.printf "BOUND VIOLATION %s: est %.1f exact %.1f bound %.1f\n"
         c.pair c.est c.exact c.bound)
    failed_bound;
  let not_improving = List.filter (fun r -> not r.improves) rows in
  let oc = open_out !out in
  output_string oc (json_of_rows ~smoke:!smoke_flag rows);
  close_out oc;
  Printf.printf "wrote %s (%d workload rows)\n" !out (List.length rows);
  if failed_bound <> [] || not_improving <> [] then begin
    List.iter
      (fun r ->
         Printf.printf "FEEDBACK REGRESSION %s/%s: rerun q %.3f vs \
                        histogram %.3f\n"
           r.wl r.engine r.feedback.maxq_rerun r.histogram.maxq_rerun)
      not_improving;
    exit 1
  end
