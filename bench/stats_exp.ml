(* E7-E10: statistics experiments — histogram bucketization, sampling,
   distinct-value estimation, propagation assumptions. *)

open Relalg

let datasets ~size =
  let st = Workload.Gen.rng 101 in
  [ ("uniform", Array.init size (fun i -> float_of_int (i mod 200)));
    ("zipf 0.8",
     Array.map float_of_int (Workload.Gen.zipf_array st ~n:200 ~size ~skew:0.8));
    ("zipf 1.5",
     Array.map float_of_int (Workload.Gen.zipf_array st ~n:200 ~size ~skew:1.5)) ]

(* ------------------------------------------------------------------ *)
(* E7: histogram accuracy by bucketization and skew *)

let e7 () =
  Util.header "E7"
    "histogram accuracy: equi-width / equi-depth / compressed ([52], 5.1.1)";
  let st = Workload.Gen.rng 7 in
  let rows_out = ref [] in
  List.iter
    (fun (name, data) ->
       let range_err kind =
         Stats.Sample.range_query_error st ~queries:400 data
           (Stats.Sample.build kind ~buckets:20 data)
       in
       (* point-query error on the most frequent value *)
       let eq_err kind =
         let h = Stats.Sample.build kind ~buckets:20 data in
         let counts = Hashtbl.create 64 in
         Array.iter
           (fun v ->
              Hashtbl.replace counts v
                (1 + Option.value (Hashtbl.find_opt counts v) ~default:0))
           data;
         let heavy, hc =
           Hashtbl.fold
             (fun v c (bv, bc) -> if c > bc then (v, c) else (bv, bc))
             counts (0., 0)
         in
         let truth = float_of_int hc /. float_of_int (Array.length data) in
         Float.abs (Stats.Histogram.est_eq h heavy -. truth) /. truth
       in
       rows_out :=
         [ name;
           Util.f4 (range_err Stats.Sample.Equi_width);
           Util.f4 (range_err Stats.Sample.Equi_depth);
           Util.f4 (range_err Stats.Sample.Compressed);
           Util.f2 (eq_err Stats.Sample.Equi_width);
           Util.f2 (eq_err Stats.Sample.Equi_depth);
           Util.f2 (eq_err Stats.Sample.Compressed) ]
         :: !rows_out)
    (datasets ~size:20000);
  Util.table
    [ "data"; "range err (width)"; "range err (depth)"; "range err (compr)";
      "heavy-eq err (width)"; "(depth)"; "(compr)" ]
    (List.rev !rows_out);
  print_endline
    "  (range err = mean |est - actual| selectivity over random ranges;\n\
    \   heavy-eq err = relative error on the most frequent value)"

(* ------------------------------------------------------------------ *)
(* E8: histogram from a sample — error vs sample fraction ([48,11]) *)

let e8 () =
  Util.header "E8" "sampled histograms: accuracy vs sample fraction (5.1.2)";
  let st = Workload.Gen.rng 8 in
  let data =
    Array.map float_of_int (Workload.Gen.zipf_array st ~n:500 ~size:50000 ~skew:1.0)
  in
  let rows_out = ref [] in
  List.iter
    (fun fraction ->
       let h =
         Stats.Sample.sampled_histogram st Stats.Sample.Equi_depth ~buckets:20
           ~fraction data
       in
       let err = Stats.Sample.range_query_error st ~queries:400 data h in
       rows_out :=
         [ Printf.sprintf "%.3f" fraction;
           Util.istr (int_of_float (fraction *. 50000.));
           Util.f4 err ]
         :: !rows_out)
    [ 0.001; 0.005; 0.02; 0.1; 0.5; 1.0 ];
  Util.table [ "fraction"; "sample rows"; "mean range error" ]
    (List.rev !rows_out)

(* ------------------------------------------------------------------ *)
(* E9: distinct-value estimation is provably error-prone ([27,11]) *)

let e9 () =
  Util.header "E9" "distinct-value estimation from a 1% sample (5.1.2)";
  let n = 50000 in
  let st = Workload.Gen.rng 9 in
  let cases =
    [ ("all distinct", Array.init n (fun i -> float_of_int i));
      ("100 values", Array.init n (fun i -> float_of_int (i mod 100)));
      ("zipf 1.0",
       Array.map float_of_int (Workload.Gen.zipf_array st ~n:5000 ~size:n ~skew:1.0));
      ("mixed",
       Array.init n (fun i ->
           if i mod 2 = 0 then float_of_int i else float_of_int (i mod 50))) ]
  in
  let rows_out = ref [] in
  List.iter
    (fun (name, data) ->
       let truth = float_of_int (Stats.Distinct.exact data) in
       let sample = Stats.Sample.uniform_sample st ~fraction:0.01 data in
       let err est =
         Stats.Distinct.ratio_error ~truth
           (Stats.Distinct.estimate est ~population:n sample)
       in
       rows_out :=
         [ name; Printf.sprintf "%.0f" truth;
           Util.f2 (err Stats.Distinct.Scale_up);
           Util.f2 (err Stats.Distinct.Chao);
           Util.f2 (err Stats.Distinct.Gee) ]
         :: !rows_out)
    cases;
  Util.table
    [ "data"; "true distinct"; "scale-up err"; "Chao err"; "GEE err" ]
    (List.rev !rows_out);
  Printf.printf
    "  (ratio error = max(est/true, true/est); GEE's guarantee here is\n\
    \   sqrt(N/n) = %.0f — no estimator is accurate on every input)\n"
    (sqrt 100.)

(* ------------------------------------------------------------------ *)
(* E10: propagation and the independence assumption (5.1.3) *)

let e10 () =
  Util.header "E10"
    "selectivity under independence vs correlated columns (5.1.3)";
  let n = 20000 in
  let st = Workload.Gen.rng 10 in
  let cat = Storage.Catalog.create () in
  let t =
    Storage.Catalog.create_table cat ~name:"T"
      ~columns:[ ("x", Value.Tint); ("y_ind", Value.Tint); ("y_cor", Value.Tint) ]
  in
  for _ = 1 to n do
    let x = Workload.Gen.uniform_int st ~lo:0 ~hi:999 in
    Storage.Table.insert t
      (Tuple.of_list
         [ Value.Int x;
           Value.Int (Workload.Gen.uniform_int st ~lo:0 ~hi:999);
           Value.Int (x + Workload.Gen.uniform_int st ~lo:(-20) ~hi:20) ])
  done;
  let db = Stats.Table_stats.analyze_catalog cat in
  let ts = Option.get (Stats.Table_stats.find db "T") in
  let r =
    Stats.Derive.of_table ts ~alias:"T" ~schema:t.Storage.Table.schema
  in
  let pred ycol cut =
    Expr.And
      (Expr.Cmp (Expr.Lt, Util.col "T" "x", Expr.int cut),
       Expr.Cmp (Expr.Lt, Util.col "T" ycol, Expr.int cut))
  in
  (* the paper's remedy: a 2-d histogram on the joint distribution *)
  let joint ycol =
    let xs = Storage.Vec.create () and ys = Storage.Vec.create () in
    Storage.Table.iter
      (fun tu ->
         match Tuple.get tu 0, Tuple.get tu (if ycol = "y_ind" then 1 else 2) with
         | Value.Int x, Value.Int y ->
           Storage.Vec.push xs (float_of_int x);
           Storage.Vec.push ys (float_of_int y)
         | _ -> ())
      t;
    Stats.Histogram2d.build ~buckets:20 (Storage.Vec.to_array xs)
      (Storage.Vec.to_array ys)
  in
  let h2_ind = joint "y_ind" and h2_cor = joint "y_cor" in
  let actual ycol cut =
    let c = ref 0 in
    Storage.Table.iter
      (fun tu ->
         match Tuple.get tu 0, Tuple.get tu (if ycol = "y_ind" then 1 else 2) with
         | Value.Int x, Value.Int y -> if x < cut && y < cut then incr c
         | _ -> ())
      t;
    float_of_int !c /. float_of_int n
  in
  let rows_out = ref [] in
  List.iter
    (fun cut ->
       List.iter
         (fun ycol ->
            let indep = Stats.Derive.selectivity r (pred ycol cut) in
            let most =
              Stats.Derive.selectivity
                ~asm:{ Stats.Derive.conjunction = `Most_selective;
                       use_histograms = true; use_sketches = false }
                r (pred ycol cut)
            in
            let truth = actual ycol cut in
            let h2 = if ycol = "y_ind" then h2_ind else h2_cor in
            let joint_est =
              Stats.Histogram2d.est_range h2 ~xhi:(float_of_int (cut - 1))
                ~yhi:(float_of_int (cut - 1)) ()
            in
            rows_out :=
              [ (if ycol = "y_ind" then "independent" else "correlated");
                Util.istr cut; Util.f4 truth; Util.f4 indep; Util.f4 most;
                Util.f4 joint_est;
                Util.f2 (if truth > 0. then indep /. truth else nan);
                Util.f2 (if truth > 0. then joint_est /. truth else nan) ]
              :: !rows_out)
         [ "y_ind"; "y_cor" ])
    [ 100; 500 ];
  Util.table
    [ "columns"; "cut"; "actual sel"; "independence"; "most-selective";
      "2-d histogram"; "indep/actual"; "2d/actual" ]
    (List.rev !rows_out);
  print_endline
    "  (independence is accurate for independent columns and off by the\n\
    \   inverse selectivity for perfectly correlated ones — the paper's\n\
    \   'key source of error'; the 2-d histogram of [45,51] captures the\n\
    \   joint distribution and fixes both)"

let all () = e7 (); e8 (); e9 (); e10 ()
