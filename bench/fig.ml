(* Figures F1-F4: the paper's illustrations regenerated from the system. *)

open Relalg

(* ------------------------------------------------------------------ *)
(* F1 (Figure 1): the operator tree for the 3-way equality join, with a
   merge join of A and B under an index nested loop against C. *)

let f1 () =
  Util.header "F1" "Figure 1 operator tree (merge join under index nested loop)";
  let cat = Storage.Catalog.create () in
  let mk name rows key_range =
    let t =
      Storage.Catalog.create_table cat ~name
        ~columns:[ ("x", Value.Tint); ("payload", Value.Tint) ]
    in
    let st = Workload.Gen.rng (Hashtbl.hash name) in
    for _ = 1 to rows do
      Storage.Table.insert t
        (Tuple.of_list
           [ Value.Int (Workload.Gen.uniform_int st ~lo:0 ~hi:key_range);
             Value.Int (Workload.Gen.uniform_int st ~lo:0 ~hi:9999) ])
    done
  in
  mk "A" 1000 40000;
  mk "B" 1000 40000;
  mk "C" 40000 40000;
  ignore (Storage.Catalog.create_index cat ~clustered:false ~table:"C" ~column:"x" ());
  let db = Stats.Table_stats.analyze_catalog cat in
  let q =
    Systemr.Spj.make
      ~relations:
        (List.map
           (fun n ->
              { Systemr.Spj.alias = n; table = n;
                schema =
                  Schema.requalify (Storage.Catalog.table cat n).Storage.Table.schema
                    ~rel:n })
           [ "A"; "B"; "C" ])
      ~predicates:
        [ Util.eq (Util.col "A" "x") (Util.col "B" "x");
          Util.eq (Util.col "A" "x") (Util.col "C" "x");
          Expr.Cmp (Expr.Lt, Util.col "A" "payload", Expr.int 2000);
          Expr.Cmp (Expr.Lt, Util.col "B" "payload", Expr.int 5000) ]
      ()
  in
  let res =
    Systemr.Join_order.optimize ~config:Systemr.Join_order.system_r_1979 cat db q
  in
  Printf.printf "%s\nestimated cost: %.1f, estimated rows: %.0f\n"
    (Exec.Plan.to_string res.Systemr.Join_order.best.Systemr.Candidate.plan)
    res.Systemr.Join_order.best.Systemr.Candidate.cost
    res.Systemr.Join_order.card

(* ------------------------------------------------------------------ *)
(* F2 (Figure 2): linear vs bushy join trees — best cost and enumeration
   effort across query-graph shapes. *)

let f2 () =
  Util.header "F2" "linear vs bushy join trees (Figure 2, Section 4.1.1)";
  let rows_out = ref [] in
  List.iter
    (fun (shape_name, shape) ->
       List.iter
         (fun n ->
            let p = Workload.Schemas.join_shape ~rows:300 ~shape ~n () in
            let q = Util.spj_of_pieces p in
            let opt cfg =
              Systemr.Join_order.optimize ~config:cfg p.Workload.Schemas.jcat
                p.Workload.Schemas.jdb q
            in
            let lin = opt Systemr.Join_order.default_config in
            let bus =
              opt { Systemr.Join_order.default_config with bushy = true }
            in
            rows_out :=
              [ shape_name; Util.istr n;
                Util.f1 lin.Systemr.Join_order.best.Systemr.Candidate.cost;
                Util.f1 bus.Systemr.Join_order.best.Systemr.Candidate.cost;
                Util.f2
                  (lin.Systemr.Join_order.best.Systemr.Candidate.cost
                   /. bus.Systemr.Join_order.best.Systemr.Candidate.cost);
                Util.istr lin.Systemr.Join_order.counters.Systemr.Join_order.costed;
                Util.istr bus.Systemr.Join_order.counters.Systemr.Join_order.costed ]
              :: !rows_out)
         [ 4; 6; 8 ])
    [ ("chain", Workload.Schemas.Chain_q); ("star", Workload.Schemas.Star_q) ];
  Util.table
    [ "shape"; "n"; "linear cost"; "bushy cost"; "lin/bushy";
      "plans(lin)"; "plans(bushy)" ]
    (List.rev !rows_out)

(* ------------------------------------------------------------------ *)
(* F3 (Figure 3): the query graph of the Emp/Dept/Emp2 query. *)

let f3 () =
  Util.header "F3" "query graph (Figure 3)";
  let g =
    Query_graph.of_query
      ~scans:[ ("E", "Emp"); ("D", "Dept"); ("E2", "Emp") ]
      [ Util.eq (Util.col "E" "did") (Util.col "D" "did");
        Util.eq (Util.col "D" "mgr") (Util.col "E2" "eid") ]
  in
  print_endline (Query_graph.to_string g);
  Printf.printf "connected: %b, shape: %s\n" (Query_graph.connected g)
    (match Query_graph.shape g with
     | Query_graph.Chain -> "chain" | Query_graph.Star -> "star"
     | Query_graph.Clique -> "clique" | Query_graph.Other -> "other")

(* ------------------------------------------------------------------ *)
(* F4 (Figure 4): group-by pushdown (eager aggregation).  Total salary per
   department over Emp x Dept; the pre-aggregation pays off as the data
   reduction (emps per dept) grows. *)

let f4 () =
  Util.header "F4"
    "group-by pushdown (Figure 4): eager aggregation vs join-then-group";
  let rows_out = ref [] in
  List.iter
    (fun depts ->
       let w =
         Workload.Schemas.emp_dept ~emps:20000 ~depts ~empty_dept_frac:0. ()
       in
       let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
       let query () =
         Rewrite.Qgm.simple
           ~select:
             [ (Expr.col ~rel:"" ~col:"did", "did");
               (Expr.col ~rel:"" ~col:"total", "total") ]
           ~from:[ Util.base cat ~alias:"E" "Emp"; Util.base cat ~alias:"D" "Dept" ]
           ~where:[ Util.eq (Util.col "E" "did") (Util.col "D" "did") ]
           ~group_by:[ (Util.col "E" "did", "did") ]
           ~aggs:[ (Expr.Sum (Util.col "E" "sal"), "total") ] ()
       in
       let run config =
         let ctx = Exec.Context.create () in
         let _, report = Core.Pipeline.run ~ctx ~config cat db (query ()) in
         (Exec.Context.weighted_cost ctx, report)
       in
       (* the 1979 method repertoire (sort-merge, no hash join) makes the
          join's input size matter, as in the paper's discussion *)
       let join_config = Systemr.Join_order.system_r_1979 in
       let lazy_cost, _ =
         run { Core.Pipeline.default_config with rewrites = []; join_config }
       in
       let eager_cost, report =
         run
           { Core.Pipeline.default_config with
             rewrites = [ [ Rewrite.Groupby.rule ] ]; join_config }
       in
       let fired =
         List.mem_assoc "eager_groupby" report.Core.Pipeline.trace
       in
       rows_out :=
         [ Util.istr depts;
           Util.istr (20000 / depts);
           Util.f1 lazy_cost;
           Util.f1 eager_cost;
           Util.f2 (lazy_cost /. eager_cost);
           string_of_bool fired ]
         :: !rows_out)
    [ 5; 50; 500; 5000 ];
  Util.table
    [ "depts"; "emps/dept"; "lazy (join first)"; "eager (group first)";
      "speedup"; "rule fired" ]
    (List.rev !rows_out)

let all () = f1 (); f2 (); f3 (); f4 ()
