(* Wall-clock benchmark for the batch execution engine vs the
   tuple-at-a-time interpreter.

   Every workload is executed by both engines; the harness verifies rows
   (bit-identical, in order) and Context counters match before reporting
   timings, so a speedup can never come from diverging semantics.
   Results go to BENCH_exec.json (rows/sec and wall-clock per operator
   class, plus an optimized end-to-end query through the pipeline).

   Usage: exec_bench [--smoke] [--out FILE] [--trace-json FILE]
                     [--metrics-out FILE] [--parallel]
     --smoke       tiny inputs, single repetition — a CI liveness check, no
                   timing claims
     --out         output path (default BENCH_exec.json; BENCH_par.json
                   under --parallel)
     --trace-json  also run the end-to-end query once with instrumentation
                   on and write its optimizer trace as line-delimited JSON
     --metrics-out after the run, dump the process metrics registry
                   (query/stage latency histograms included) to FILE in
                   Prometheus text exposition format
     --parallel    benchmark the morsel-driven engine instead: sequential
                   batch vs Exec.Morsel at dop 1/2/4/8 on scan_filter,
                   hash_join, hash_agg and sort.  Equivalence (identical
                   rows and counters) is verified before any timing; the
                   JSON records the machine's core count, since speedup is
                   bounded by it — on a single-core host parallel runs can
                   only measure overhead, not speedup. *)

open Relalg

type scale = { n : int (* base table rows *); reps : int }

let full = { n = 100_000; reps = 5 }
let smoke = { n = 500; reps = 1 }

(* ------------------------------------------------------------------ *)
(* Catalog builders (deterministic data) *)

(* T(k int, v int): k cycles through [0, groups), v = i *)
let one_table ~rows ~groups =
  let cat = Storage.Catalog.create () in
  let t = Storage.Catalog.create_table cat ~name:"T"
      ~columns:[ ("k", Value.Tint); ("v", Value.Tint) ] in
  for i = 0 to rows - 1 do
    Storage.Table.insert t
      (Tuple.of_list [ Value.Int (i mod groups); Value.Int i ])
  done;
  cat

(* W(c0..c7 int): a wide 8-column table; c0 = i mod groups, cj = i*(j+1) *)
let wide_table ~rows ~groups =
  let cat = Storage.Catalog.create () in
  let t =
    Storage.Catalog.create_table cat ~name:"W"
      ~columns:(List.init 8 (fun j -> (Printf.sprintf "c%d" j, Value.Tint)))
  in
  for i = 0 to rows - 1 do
    Storage.Table.insert t
      (Tuple.of_list
         (List.init 8 (fun j ->
              Value.Int (if j = 0 then i mod groups else i * (j + 1)))))
  done;
  cat

(* R(a,b) and S(a,c), equi-joinable on a with [fanout] S matches per key *)
let two_tables ~rows ~fanout =
  let cat = Storage.Catalog.create () in
  let r = Storage.Catalog.create_table cat ~name:"R"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ] in
  let s = Storage.Catalog.create_table cat ~name:"S"
      ~columns:[ ("a", Value.Tint); ("c", Value.Tint) ] in
  let keys = max 1 (rows / fanout) in
  for i = 0 to rows - 1 do
    Storage.Table.insert r (Tuple.of_list [ Value.Int (i mod keys); Value.Int i ])
  done;
  for i = 0 to rows - 1 do
    Storage.Table.insert s (Tuple.of_list [ Value.Int (i mod keys); Value.Int i ])
  done;
  cat

let scan t = Exec.Plan.Seq_scan { table = t; alias = t; filter = None }
let col r c = Expr.col ~rel:r ~col:c

let join_pred =
  Expr.Cmp (Expr.Eq, col "R" "a", col "S" "a")

let pair = ({ Expr.rel = "R"; col = "a" }, { Expr.rel = "S"; col = "a" })

let sort_on rel c input =
  Exec.Plan.Sort ([ { Exec.Plan.key = col rel c; descending = false } ], input)

(* ------------------------------------------------------------------ *)
(* Harness *)

(* best-of-[reps] wall clock plus the best run's minor-heap allocation
   (words); returns (seconds, words, result) *)
let time_runs reps f =
  let best = ref infinity and last = ref None and alloc = ref 0. in
  for _ = 1 to reps do
    Gc.full_major ();
    let a0 = Gc.minor_words () in
    let t0 = Obs.Clock.now () in
    let r = f () in
    let dt = Obs.Clock.now () -. t0 in
    if dt < !best then begin
      best := dt;
      alloc := Gc.minor_words () -. a0
    end;
    last := Some r
  done;
  match !last with
  | None -> assert false
  | Some r -> (!best, !alloc, r)

type row = {
  name : string;
  input_rows : int;
  out_rows : int;
  interp_s : float;
  batch_s : float;
  interp_alloc_w : float; (* minor words allocated, best run *)
  batch_alloc_w : float;
}

let speedup r = if r.batch_s > 0. then r.interp_s /. r.batch_s else 0.

let verify name (oracle : Exec.Executor.result) co
    (batch : Exec.Executor.result) cb =
  let rows_ok =
    Array.length oracle.Exec.Executor.rows
    = Array.length batch.Exec.Executor.rows
    && Array.for_all2 Tuple.equal oracle.Exec.Executor.rows
         batch.Exec.Executor.rows
  in
  if not rows_ok then begin
    Printf.eprintf "FAIL %s: engines returned different rows\n" name;
    exit 1
  end;
  if co <> cb then begin
    Printf.eprintf "FAIL %s: counters diverge (interp %s, batch %s)\n" name
      (Fmt.str "%a" Exec.Context.pp_snapshot co)
      (Fmt.str "%a" Exec.Context.pp_snapshot cb);
    exit 1
  end

(* Benchmark one plan under both engines, verifying equivalence. *)
let bench_plan ~reps ~input_rows name cat plan : row =
  let run_with engine () =
    let ctx = Exec.Context.create () in
    let r =
      match engine with
      | `Interpreted -> Exec.Executor.run ~ctx cat plan
      | `Batch -> Exec.Batch.run ~ctx cat plan
    in
    (r, Exec.Context.snapshot ctx)
  in
  let interp_s, interp_alloc_w, (ro, co) =
    time_runs reps (run_with `Interpreted)
  in
  let batch_s, batch_alloc_w, (rb, cb) = time_runs reps (run_with `Batch) in
  verify name ro co rb cb;
  { name; input_rows; out_rows = Array.length rb.Exec.Executor.rows;
    interp_s; batch_s; interp_alloc_w; batch_alloc_w }

(* ------------------------------------------------------------------ *)
(* Operator-class workloads *)

let workloads (sc : scale) : row list =
  let n = sc.n and reps = sc.reps in
  let groups = max 1 (n / 100) in
  let r1 = one_table ~rows:(2 * n) ~groups in
  let r2 = two_tables ~rows:n ~fanout:2 in
  (* nested loop without Materialize: the interpreter genuinely
     re-executes the inner scan per outer tuple; the batch engine computes
     it once and replays only its page charges *)
  let nl_n = max 10 (n / 50) in
  let rnl = two_tables ~rows:nl_n ~fanout:1 in
  [ bench_plan ~reps ~input_rows:(2 * n) "scan_filter" r1
      (Exec.Plan.Filter
         ( Expr.Cmp
             (Expr.Eq, Expr.Binop (Expr.Mod, col "T" "v", Expr.int 7),
              Expr.int 0),
           scan "T" ));
    (* 0.1% selectivity: the selection vector stays tiny and no row is
       ever materialized between the scan and the filter output *)
    bench_plan ~reps ~input_rows:(2 * n) "selective_filter" r1
      (Exec.Plan.Filter
         ( Expr.Cmp
             (Expr.Eq, Expr.Binop (Expr.Mod, col "T" "v", Expr.int 1000),
              Expr.int 0),
           scan "T" ));
    bench_plan ~reps ~input_rows:(2 * n) "project" r1
      (Exec.Plan.Project
         ( [ (Expr.Binop (Expr.Add, col "T" "v", col "T" "k"), "s");
             (Expr.Binop (Expr.Mul, col "T" "v", Expr.int 3), "t") ],
           scan "T" ));
    (* eight plain columns + one computed: plain columns pass through the
       columnar engine as shared typed arrays *)
    (let rw = wide_table ~rows:(2 * n) ~groups in
     bench_plan ~reps ~input_rows:(2 * n) "wide_projection" rw
       (Exec.Plan.Project
          ( List.init 8 (fun j ->
                (col "W" (Printf.sprintf "c%d" j), Printf.sprintf "p%d" j))
            @ [ (Expr.Binop (Expr.Add, col "W" "c0", col "W" "c7"), "s") ],
            scan "W" )));
    bench_plan ~reps ~input_rows:(2 * n) "sort" r1
      (Exec.Plan.Sort
         ( [ { Exec.Plan.key = col "T" "k"; descending = false };
             { Exec.Plan.key = col "T" "v"; descending = true } ],
           scan "T" ));
    bench_plan ~reps ~input_rows:(2 * n) "hash_join" r2
      (Exec.Plan.Hash_join
         { kind = Algebra.Inner; pairs = [ pair ]; residual = Expr.ftrue;
           left = scan "R"; right = scan "S" });
    bench_plan ~reps ~input_rows:(2 * n) "merge_join" r2
      (Exec.Plan.Merge_join
         { kind = Algebra.Inner; pairs = [ pair ]; residual = Expr.ftrue;
           left = sort_on "R" "a" (scan "R");
           right = sort_on "S" "a" (scan "S") });
    bench_plan ~reps ~input_rows:(2 * nl_n) "nested_loop" rnl
      (Exec.Plan.Nested_loop
         { kind = Algebra.Inner; pred = join_pred; outer = scan "R";
           inner =
             (* a computed (filtered) inner with no Materialize: the
                interpreter re-runs scan + filter per outer tuple; the
                batch engine computes it once and replays only the page
                and CPU charges *)
             Exec.Plan.Filter
               ( Expr.Cmp
                   (Expr.Eq,
                    Expr.Binop (Expr.Mod, col "S" "c", Expr.int 100),
                    Expr.int 0),
                 scan "S" ) });
    bench_plan ~reps ~input_rows:(2 * n) "hash_agg" r1
      (Exec.Plan.Hash_agg
         { keys = [ (col "T" "k", "k") ];
           aggs =
             [ (Expr.Count_star, "n"); (Expr.Sum (col "T" "v"), "total");
               (Expr.Max (col "T" "v"), "hi") ];
           input = scan "T" });
    bench_plan ~reps ~input_rows:(2 * n) "distinct" r1
      (Exec.Plan.Hash_distinct
         (Exec.Plan.Project ([ (col "T" "k", "k") ], scan "T")))
  ]

(* End-to-end: a grouped equi-join through rewrite + System-R planning,
   executed by each engine via the pipeline's [engine] config. *)
let end_to_end (sc : scale) : row =
  let emps = max 200 sc.n and depts = max 10 (sc.n / 100) in
  let w = Workload.Schemas.emp_dept ~emps ~depts () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let sql =
    "SELECT Dept.name, COUNT(*), SUM(Emp.sal) FROM Emp, Dept \
     WHERE Emp.did = Dept.did AND Emp.age > 30 GROUP BY Dept.name"
  in
  let q = Sql.Binder.query_of_string cat sql in
  let run_with engine () =
    let ctx = Exec.Context.create () in
    let config = { Core.Pipeline.default_config with engine } in
    let r, _ = Core.Pipeline.run_query ~ctx ~config cat db q in
    (r, Exec.Context.snapshot ctx)
  in
  let interp_s, interp_alloc_w, (ro, co) =
    time_runs sc.reps (run_with `Interpreted)
  in
  let batch_s, batch_alloc_w, (rb, cb) =
    time_runs sc.reps (run_with `Batch)
  in
  verify "end_to_end" ro co rb cb;
  { name = "end_to_end"; input_rows = emps + depts;
    out_rows = Array.length rb.Exec.Executor.rows; interp_s; batch_s;
    interp_alloc_w; batch_alloc_w }

(* One instrumented pass over the end-to-end query; its optimizer trace
   goes to [file] as line-delimited JSON (a CI artifact). *)
let write_trace sc file =
  let emps = max 200 sc.n and depts = max 10 (sc.n / 100) in
  let w = Workload.Schemas.emp_dept ~emps ~depts () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let sql =
    "SELECT Dept.name, COUNT(*), SUM(Emp.sal) FROM Emp, Dept \
     WHERE Emp.did = Dept.did AND Emp.age > 30 GROUP BY Dept.name"
  in
  let q = Sql.Binder.query_of_string cat sql in
  let config = { Core.Pipeline.default_config with instrument = true } in
  let _, reports = Core.Pipeline.run_query ~config cat db q in
  let oc = open_out file in
  List.iter
    (fun r ->
       List.iter
         (fun e ->
            output_string oc (Obs.Trace.to_json e);
            output_char oc '\n')
         r.Core.Pipeline.trace_events)
    reports;
  close_out oc;
  Printf.printf "wrote %s (optimizer trace, line-delimited JSON)\n" file

(* ------------------------------------------------------------------ *)
(* Parallel mode: sequential batch vs the morsel engine at several dops *)

let par_dops = [ 1; 2; 4; 8 ]

type prow = {
  p_name : string;
  p_input_rows : int;
  p_out_rows : int;
  seq_s : float;
  by_dop : (int * float) list;
}

(* Verify once per dop (rows and counters bit-identical to Batch), then
   time with a pre-created pool so domain spawning stays out of the
   measured region. *)
let bench_parallel ~reps ~input_rows name cat plan : prow =
  let seq () =
    let ctx = Exec.Context.create () in
    let r = Exec.Batch.run ~ctx cat plan in
    (r, Exec.Context.snapshot ctx)
  in
  let seq_s, _, (rs, cs) = time_runs reps seq in
  let by_dop =
    List.map
      (fun dop ->
         Domain_pool.with_pool dop (fun pool ->
             let par () =
               let ctx = Exec.Context.create () in
               let r = Exec.Morsel.run ~ctx ~pool ~dop cat plan in
               (r, Exec.Context.snapshot ctx)
             in
             let p_s, _, (rp, cp) = time_runs reps par in
             verify (Printf.sprintf "%s@dop=%d" name dop) rs cs rp cp;
             (dop, p_s)))
      par_dops
  in
  { p_name = name; p_input_rows = input_rows;
    p_out_rows = Array.length rs.Exec.Executor.rows; seq_s; by_dop }

let par_workloads (sc : scale) : prow list =
  let n = sc.n and reps = sc.reps in
  let groups = max 1 (n / 100) in
  let r1 = one_table ~rows:(2 * n) ~groups in
  let r2 = two_tables ~rows:n ~fanout:2 in
  [ bench_parallel ~reps ~input_rows:(2 * n) "scan_filter" r1
      (Exec.Plan.Filter
         ( Expr.Cmp
             (Expr.Eq, Expr.Binop (Expr.Mod, col "T" "v", Expr.int 7),
              Expr.int 0),
           scan "T" ));
    bench_parallel ~reps ~input_rows:(2 * n) "hash_join" r2
      (Exec.Plan.Hash_join
         { kind = Algebra.Inner; pairs = [ pair ]; residual = Expr.ftrue;
           left = scan "R"; right = scan "S" });
    bench_parallel ~reps ~input_rows:(2 * n) "hash_agg" r1
      (Exec.Plan.Hash_agg
         { keys = [ (col "T" "k", "k") ];
           aggs =
             [ (Expr.Count_star, "n"); (Expr.Sum (col "T" "v"), "total");
               (Expr.Max (col "T" "v"), "hi") ];
           input = scan "T" });
    bench_parallel ~reps ~input_rows:(2 * n) "sort" r1
      (Exec.Plan.Sort
         ( [ { Exec.Plan.key = col "T" "k"; descending = false };
             { Exec.Plan.key = col "T" "v"; descending = true } ],
           scan "T" )) ]

let json_of_prows ~smoke (rows : prow list) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"smoke\": %b,\n  \"reps\": \"best-of\",\n\
       \  \"cpus\": %d,\n  \"domains_available\": %b,\n\
       \  \"dops\": [%s],\n\
       \  \"note\": \"speedup is bounded by the core count above; on a \
        single-core host dop > 1 measures scheduling overhead, not \
        speedup. Every run is verified bit-identical (rows and counters) \
        to the sequential batch engine before timing.\",\n"
       smoke
       (Domain_pool.cpu_count ())
       Domain_pool.available
       (String.concat ", " (List.map string_of_int par_dops)));
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
       let per_dop =
         String.concat ", "
           (List.map
              (fun (d, s) ->
                 Printf.sprintf
                   "{\"dop\": %d, \"wall_s\": %.6f, \"speedup\": %.2f}" d s
                   (if s > 0. then r.seq_s /. s else 0.))
              r.by_dop)
       in
       Buffer.add_string b
         (Printf.sprintf
            "    {\"name\": %S, \"input_rows\": %d, \"out_rows\": %d, \
             \"sequential_s\": %.6f, \"parallel\": [%s], \
             \"verified\": true}%s\n"
            r.p_name r.p_input_rows r.p_out_rows r.seq_s per_dop
            (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run_parallel ~smoke ~out sc =
  let rows = par_workloads sc in
  Printf.printf "%-12s %12s %10s %12s" "workload" "input_rows" "out_rows"
    "seq_s";
  List.iter (fun d -> Printf.printf " %9s" (Printf.sprintf "dop=%d" d))
    par_dops;
  print_newline ();
  List.iter
    (fun r ->
       Printf.printf "%-12s %12d %10d %12.4f" r.p_name r.p_input_rows
         r.p_out_rows r.seq_s;
       List.iter (fun (_, s) -> Printf.printf " %9.4f" s) r.by_dop;
       print_newline ())
    rows;
  let oc = open_out out in
  output_string oc (json_of_prows ~smoke rows);
  close_out oc;
  Printf.printf
    "wrote %s (cpus=%d; all runs verified bit-identical to sequential)\n"
    out (Domain_pool.cpu_count ())

(* ------------------------------------------------------------------ *)
(* Output *)

let json_of_rows ~smoke (rows : row list) =
  let b = Buffer.create 4096 in
  let rps r s = if s > 0. then float_of_int r.input_rows /. s else 0. in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"smoke\": %b,\n  \"reps\": \"best-of\",\n" smoke);
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
       Buffer.add_string b
         (Printf.sprintf
            "    {\"name\": %S, \"input_rows\": %d, \"out_rows\": %d, \
             \"interpreted_s\": %.6f, \"batch_s\": %.6f, \
             \"interpreted_rows_per_s\": %.0f, \"batch_rows_per_s\": %.0f, \
             \"interpreted_alloc_words\": %.0f, \
             \"batch_alloc_words\": %.0f, \
             \"speedup\": %.2f, \"verified\": true}%s\n"
            r.name r.input_rows r.out_rows r.interp_s r.batch_s
            (rps r r.interp_s) (rps r r.batch_s) r.interp_alloc_w
            r.batch_alloc_w (speedup r)
            (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let smoke_flag = ref false and out = ref None in
  let trace_out = ref None and parallel = ref false in
  let metrics_out = ref None in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest -> smoke_flag := true; parse rest
    | "--out" :: f :: rest -> out := Some f; parse rest
    | "--trace-json" :: f :: rest -> trace_out := Some f; parse rest
    | "--metrics-out" :: f :: rest -> metrics_out := Some f; parse rest
    | "--parallel" :: rest -> parallel := true; parse rest
    | a :: _ -> Printf.eprintf "unknown argument: %s\n" a; exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dump_metrics () =
    match !metrics_out with
    | Some f ->
      Obs.Prometheus.write_file f;
      Printf.printf "wrote %s (Prometheus exposition)\n" f
    | None -> ()
  in
  let sc = if !smoke_flag then smoke else full in
  if !parallel then begin
    let out = Option.value !out ~default:"BENCH_par.json" in
    run_parallel ~smoke:!smoke_flag ~out sc;
    dump_metrics ();
    exit 0
  end;
  let out = ref (Option.value !out ~default:"BENCH_exec.json") in
  let rows = workloads sc @ [ end_to_end sc ] in
  Printf.printf "%-16s %12s %10s %12s %12s %9s %13s %13s\n" "workload"
    "input_rows" "out_rows" "interp_s" "batch_s" "speedup" "interp_Mw"
    "batch_Mw";
  List.iter
    (fun r ->
       Printf.printf "%-16s %12d %10d %12.4f %12.4f %8.1fx %13.2f %13.2f\n"
         r.name r.input_rows r.out_rows r.interp_s r.batch_s (speedup r)
         (r.interp_alloc_w /. 1e6) (r.batch_alloc_w /. 1e6))
    rows;
  let oc = open_out !out in
  output_string oc (json_of_rows ~smoke:!smoke_flag rows);
  close_out oc;
  Printf.printf "wrote %s (all workloads verified: identical rows and \
                 counters)\n" !out;
  (match !trace_out with Some f -> write_trace sc f | None -> ());
  dump_metrics ()
