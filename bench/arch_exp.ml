(* E13-E16: architecture experiments — Cascades vs System-R, parallel
   two-phase scheduling, expensive predicates, materialized views. *)

open Relalg
module Ep = Extensions.Expensive_pred

(* ------------------------------------------------------------------ *)
(* E13: Cascades vs System-R DP on identical queries *)

let e13 () =
  Util.header "E13"
    "enumeration architectures: System-R DP vs Volcano/Cascades (Section 6)";
  let rows_out = ref [] in
  List.iter
    (fun (shape_name, shape) ->
       List.iter
         (fun n ->
            let p = Workload.Schemas.join_shape ~rows:200 ~shape ~n () in
            let q = Util.spj_of_pieces p in
            let dp_lin =
              Systemr.Join_order.optimize p.Workload.Schemas.jcat
                p.Workload.Schemas.jdb q
            in
            let dp_bushy =
              Systemr.Join_order.optimize
                ~config:{ Systemr.Join_order.default_config with bushy = true }
                p.Workload.Schemas.jcat p.Workload.Schemas.jdb q
            in
            let casc =
              Cascades.Search.optimize p.Workload.Schemas.jcat
                p.Workload.Schemas.jdb q
            in
            rows_out :=
              [ shape_name; Util.istr n;
                Util.f1 dp_lin.Systemr.Join_order.best.Systemr.Candidate.cost;
                Util.f1 dp_bushy.Systemr.Join_order.best.Systemr.Candidate.cost;
                Util.f1 casc.Cascades.Search.best.Systemr.Candidate.cost;
                Util.istr dp_bushy.Systemr.Join_order.counters.Systemr.Join_order.costed;
                Util.istr casc.Cascades.Search.plans_costed;
                Util.istr casc.Cascades.Search.groups;
                Util.istr casc.Cascades.Search.exprs;
                Util.istr casc.Cascades.Search.rule_firings ]
              :: !rows_out)
         [ 4; 6 ])
    [ ("chain", Workload.Schemas.Chain_q); ("star", Workload.Schemas.Star_q);
      ("clique", Workload.Schemas.Clique_q) ];
  Util.table
    [ "shape"; "n"; "DP-linear"; "DP-bushy"; "Cascades"; "DP plans";
      "Casc plans"; "groups"; "exprs"; "firings" ]
    (List.rev !rows_out);
  print_endline
    "  (same cost model and search space: DP-bushy and Cascades agree on\n\
    \   best cost; Cascades reaches it goal-driven through memo groups)"

(* ------------------------------------------------------------------ *)
(* E14: two-phase parallel optimization *)

let e14 () =
  Util.header "E14"
    "parallel two-phase: response time vs processors, partitioning (7.1)";
  let w = Workload.Schemas.star ~fact_rows:200000 ~dim_rows:100 ~dims:3 () in
  let scan t = Exec.Plan.Seq_scan { table = t; alias = t; filter = None } in
  let plan =
    List.fold_left
      (fun acc dim ->
         Exec.Plan.Hash_join
           { kind = Algebra.Inner;
             pairs =
               [ ( { Expr.rel = "Sales";
                     col = String.lowercase_ascii dim ^ "_id" },
                   { Expr.rel = dim; col = "id" } ) ];
             residual = Expr.ftrue; left = acc; right = scan dim })
      (scan "Sales") w.Workload.Schemas.dims
  in
  let run procs aware =
    Parallel.Two_phase.run
      ~config:
        { Parallel.Two_phase.default_config with
          processors = procs; partition_aware = aware }
      w.Workload.Schemas.cat w.Workload.Schemas.db plan
  in
  let r1 = (run 1 true).Parallel.Two_phase.response_time in
  let rows_out = ref [] in
  List.iter
    (fun procs ->
       let aware = run procs true and naive = run procs false in
       rows_out :=
         [ Util.istr procs;
           Util.f1 aware.Parallel.Two_phase.total_work;
           Util.f2 aware.Parallel.Two_phase.response_time;
           Util.f2 naive.Parallel.Two_phase.response_time;
           Util.f2 (r1 /. aware.Parallel.Two_phase.response_time) ]
         :: !rows_out)
    [ 1; 2; 4; 8; 16; 64 ];
  Util.table
    [ "processors"; "total work"; "response (aware)"; "response (oblivious)";
      "speedup (aware)" ]
    (List.rev !rows_out);
  print_endline
    "  (response time shrinks with processors while total work is constant\n\
    \   — footnote 5)";
  (* partitioning reuse: a chain of hash joins all keyed on the same
     attribute; Hasan's partition-as-physical-property phase avoids
     repartitioning between them *)
  let p =
    Workload.Schemas.join_shape ~rows:100000 ~shape:Workload.Schemas.Star_q
      ~n:4 ()
  in
  let scan2 t = Exec.Plan.Seq_scan { table = t; alias = t; filter = None } in
  let pair l r = ({ Expr.rel = l; col = "a" }, { Expr.rel = r; col = "a" }) in
  let chain_plan =
    List.fold_left
      (fun acc r ->
         Exec.Plan.Hash_join
           { kind = Algebra.Inner; pairs = [ pair "R1" r ];
             residual = Expr.ftrue; left = acc; right = scan2 r })
      (scan2 "R1") [ "R2"; "R3"; "R4" ]
  in
  let rows2 = ref [] in
  List.iter
    (fun procs ->
       let run aware =
         Parallel.Two_phase.run
           ~config:
             { Parallel.Two_phase.default_config with
               processors = procs; partition_aware = aware }
           p.Workload.Schemas.jcat p.Workload.Schemas.jdb chain_plan
       in
       let aware = run true and naive = run false in
       rows2 :=
         [ Util.istr procs;
           Util.f1 aware.Parallel.Two_phase.comm_cost;
           Util.f1 naive.Parallel.Two_phase.comm_cost;
           Util.f2 aware.Parallel.Two_phase.response_time;
           Util.f2 naive.Parallel.Two_phase.response_time;
           Util.f2
             (naive.Parallel.Two_phase.response_time
              /. aware.Parallel.Two_phase.response_time) ]
         :: !rows2)
    [ 2; 8; 32 ];
  print_endline "";
  print_endline
    "  same-key join chain: partitioning as a physical property (Hasan [28])";
  Util.table
    [ "processors"; "comm (aware)"; "comm (oblivious)"; "response (aware)";
      "response (oblivious)"; "benefit" ]
    (List.rev !rows2)

(* ------------------------------------------------------------------ *)
(* E15: expensive user-defined predicates *)

let e15 () =
  Util.header "E15" "expensive predicates: pushdown vs rank vs property-DP (7.2)";
  let n = 10000. in
  let cases =
    [ ("selective & cheap UDF",
       [ { Ep.p_name = "p"; sel = 0.05; cost = 0.5 } ],
       [ { Ep.j_name = "j"; j_sel = 0.01; j_cost = 0.01; j_card = 50. } ]);
      ("loose & expensive UDF (image match)",
       [ { Ep.p_name = "img"; sel = 0.9; cost = 100. } ],
       [ { Ep.j_name = "j"; j_sel = 0.001; j_cost = 0.01; j_card = 100. } ]);
      ("two UDFs, two joins",
       [ { Ep.p_name = "p1"; sel = 0.5; cost = 5. };
         { Ep.p_name = "p2"; sel = 0.05; cost = 0.5 } ],
       [ { Ep.j_name = "j1"; j_sel = 0.01; j_cost = 0.02; j_card = 50. };
         { Ep.j_name = "j2"; j_sel = 0.1; j_cost = 0.02; j_card = 10. } ]);
      ("blowup then reduce",
       [ { Ep.p_name = "p"; sel = 0.5; cost = 1.0 } ],
       [ { Ep.j_name = "blowup"; j_sel = 1.0; j_cost = 0.001; j_card = 20. };
         { Ep.j_name = "reduce"; j_sel = 0.001; j_cost = 0.001; j_card = 1. } ]) ]
  in
  let rows_out =
    List.map
      (fun (name, ps, js) ->
         let pd = Ep.interleaving_cost ~n (Ep.pushdown_always ps js) in
         let ri = Ep.interleaving_cost ~n (Ep.rank_interleave ps js) in
         let _, dp = Ep.property_dp ~n ps js in
         [ name; Util.f1 pd; Util.f1 ri; Util.f1 dp;
           Util.f2 (pd /. dp); Util.f2 (ri /. dp) ])
      cases
  in
  Util.table
    [ "scenario"; "pushdown-always"; "rank-interleave"; "property-DP";
      "pushdown/DP"; "rank/DP" ]
    rows_out;
  print_endline
    "  ('evaluate predicates as early as possible' is no longer sound for\n\
    \   expensive predicates; the property-DP of [8] is optimal)"

(* ------------------------------------------------------------------ *)
(* E16: materialized views *)

let e16 () =
  Util.header "E16" "answering queries using materialized views (7.3)";
  let w = Workload.Schemas.emp_dept ~emps:12000 ~depts:100 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let spj rels preds projections =
    Systemr.Spj.make
      ~relations:
        (List.map
           (fun (alias, table) ->
              { Systemr.Spj.alias; table;
                schema =
                  Schema.requalify
                    (Storage.Catalog.table cat table).Storage.Table.schema
                    ~rel:alias })
           rels)
      ~predicates:preds ~projections ()
  in
  let vdef =
    spj [ ("E", "Emp"); ("D", "Dept") ]
      [ Util.eq (Util.col "E" "did") (Util.col "D" "did");
        Expr.Cmp (Expr.Lt, Util.col "E" "age", Expr.int 30) ]
      (Some
         [ (Util.col "E" "eid", "eid"); (Util.col "E" "sal", "sal");
           (Util.col "D" "loc", "loc"); (Util.col "E" "age", "age") ])
  in
  let v = Extensions.Matview.materialize cat db ~name:"young" vdef in
  let rows_out = ref [] in
  List.iter
    (fun (qname, extra_preds) ->
       let q =
         spj [ ("E", "Emp"); ("D", "Dept") ]
           ([ Util.eq (Util.col "E" "did") (Util.col "D" "did");
              Expr.Cmp (Expr.Lt, Util.col "E" "age", Expr.int 30) ]
            @ extra_preds)
           (Some [ (Util.col "E" "eid", "eid"); (Util.col "E" "sal", "sal") ])
       in
       let base = Systemr.Join_order.optimize cat db q in
       let choice = Extensions.Matview.optimize_with_views cat db [ v ] q in
       let _, meas_base, _ =
         Util.measure cat base.Systemr.Join_order.best.Systemr.Candidate.plan
       in
       let _, meas_choice, _ = Util.measure cat choice.Extensions.Matview.plan in
       rows_out :=
         [ qname;
           Util.f1 base.Systemr.Join_order.best.Systemr.Candidate.cost;
           Util.f1 choice.Extensions.Matview.cost;
           Option.value choice.Extensions.Matview.used_view ~default:"(none)";
           Util.f1 meas_base; Util.f1 meas_choice ]
         :: !rows_out)
    [ ("exactly the view", []);
      ("view + residual filter",
       [ Expr.Cmp (Expr.Gt, Util.col "E" "sal", Expr.int 150_000) ]);
      ("view + location filter",
       [ Util.eq (Util.col "D" "loc") (Expr.str "Denver") ]) ];
  Util.table
    [ "query"; "est (base tables)"; "est (chosen)"; "view used";
      "meas (base)"; "meas (chosen)" ]
    (List.rev !rows_out)

(* ------------------------------------------------------------------ *)
(* E17: parametric / dynamic plans (Section 7.4, [19,33]) *)

let e17 () =
  Util.header "E17"
    "parametric plans: deferring plan choice to runtime (7.4)";
  (* the runtime parameter ranges over the clustered key: very selective
     values want the index, wide ones want the sequential scan *)
  let w = Workload.Schemas.emp_dept ~emps:20000 ~depts:100 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let make_query v =
    Systemr.Spj.make
      ~relations:
        [ { Systemr.Spj.alias = "E"; table = "Emp";
            schema =
              Schema.requalify
                (Storage.Catalog.table cat "Emp").Storage.Table.schema
                ~rel:"E" } ]
      ~predicates:[ Expr.Cmp (Expr.Lt, Util.col "E" "eid", Expr.Const v) ] ()
  in
  let sample_points =
    List.map (fun s -> Value.Int s) [ 200; 2_000; 10_000; 18_000 ]
  in
  let pp = Extensions.Parametric.optimize cat db ~param_values:sample_points
      make_query in
  Printf.printf "  distinct plan shapes across the parameter space: %d\n\n"
    pp.Extensions.Parametric.shapes;
  let assumed = Value.Int 10_000 in
  let static = Extensions.Parametric.static_plan cat db make_query ~assumed in
  let rows_out = ref [] in
  List.iter
    (fun actual_i ->
       let actual = Value.Int actual_i in
       let static_now =
         Extensions.Parametric.rebind ~assumed ~actual static
       in
       let dynamic = Extensions.Parametric.plan_for pp actual in
       let _, c_static, _ = Util.measure cat static_now in
       let _, c_dyn, _ = Util.measure cat dynamic in
       let shape p =
         match p with
         | Exec.Plan.Index_scan _ -> "index scan"
         | Exec.Plan.Seq_scan _ -> "seq scan"
         | _ -> "other"
       in
       rows_out :=
         [ Util.istr actual_i; shape static_now; shape dynamic;
           Util.f1 c_static; Util.f1 c_dyn; Util.f2 (c_static /. c_dyn) ]
         :: !rows_out)
    [ 150; 2_500; 10_000; 19_500 ];
  Util.table
    [ "eid < ?"; "static plan"; "dynamic plan"; "static cost"; "dynamic cost";
      "static/dyn" ]
    (List.rev !rows_out);
  print_endline
    "  (the static plan is optimized once for eid < 10000; the dynamic\n\
    \   dispatcher picks the plan optimized nearest the runtime value)"

let all () = e13 (); e14 (); e15 (); e16 (); e17 ()
