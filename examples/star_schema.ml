(* Star-schema optimization walkthrough (Section 4.1.1): how linear join
   trees, bushy trees, and Cartesian products among selective dimensions
   change the plan, using the System-R enumerator directly.

     dune exec examples/star_schema.exe *)

open Relalg

let () =
  let w = Workload.Schemas.star ~fact_rows:50000 ~dim_rows:200 ~dims:3 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  Printf.printf "schema: Sales (%d rows) joined to %s\n\n"
    (Storage.Table.row_count (Storage.Catalog.table cat "Sales"))
    (String.concat ", " w.Workload.Schemas.dims);

  (* the star query: fact joined to every dimension, selective dim filters *)
  let preds =
    List.concat_map
      (fun d ->
         [ Expr.Cmp
             (Expr.Eq,
              Expr.col ~rel:"Sales" ~col:(String.lowercase_ascii d ^ "_id"),
              Expr.col ~rel:d ~col:"id");
           Expr.Cmp (Expr.Le, Expr.col ~rel:d ~col:"weight", Expr.int 2) ])
      w.Workload.Schemas.dims
  in
  let q =
    Systemr.Spj.make
      ~relations:
        (List.map
           (fun n ->
              { Systemr.Spj.alias = n; table = n;
                schema =
                  Schema.requalify
                    (Storage.Catalog.table cat n).Storage.Table.schema ~rel:n })
           (w.Workload.Schemas.fact :: w.Workload.Schemas.dims))
      ~predicates:preds ()
  in
  let show name config =
    let res = Systemr.Join_order.optimize ~config cat db q in
    Printf.printf "--- %s: estimated cost %.1f (%d plans costed) ---\n%s\n\n"
      name res.Systemr.Join_order.best.Systemr.Candidate.cost
      res.Systemr.Join_order.counters.Systemr.Join_order.costed
      (Exec.Plan.to_string res.Systemr.Join_order.best.Systemr.Candidate.plan);
    let ctx = Exec.Context.create () in
    let out =
      Exec.Executor.run ~ctx cat res.Systemr.Join_order.best.Systemr.Candidate.plan
    in
    Printf.printf "executed: %d rows, %s\n\n"
      (Array.length out.Exec.Executor.rows)
      (Fmt.str "%a" Exec.Context.pp ctx)
  in
  show "linear, Cartesian products deferred" Systemr.Join_order.default_config;
  show "bushy trees"
    { Systemr.Join_order.default_config with bushy = true };
  show "bushy + Cartesian products allowed"
    { Systemr.Join_order.default_config with bushy = true; allow_cross = true };
  print_endline
    "With selective dimension predicates, crossing the tiny filtered\n\
     dimensions and probing the fact's composite index once beats the\n\
     cascade of per-dimension joins (Section 4.1.1)."
