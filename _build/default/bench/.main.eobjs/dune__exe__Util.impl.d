bench/util.ml: Exec Expr List Option Printf Relalg Rewrite Schema Storage String Systemr Workload
