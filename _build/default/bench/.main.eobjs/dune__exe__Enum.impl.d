bench/enum.ml: Algebra Expr Float List Printf Relalg Schema Stats Storage String Systemr Tuple Unix Util Value Workload
