bench/stats_exp.ml: Array Expr Float Hashtbl List Option Printf Relalg Stats Storage Tuple Util Value Workload
