bench/fig.ml: Core Exec Expr Hashtbl List Printf Query_graph Relalg Rewrite Schema Stats Storage Systemr Tuple Util Value Workload
