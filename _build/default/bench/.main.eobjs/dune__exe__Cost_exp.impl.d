bench/cost_exp.ml: Algebra Cost Exec Expr List Printf Relalg Stats Storage Tuple Util Value Workload
