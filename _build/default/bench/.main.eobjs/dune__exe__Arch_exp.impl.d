bench/arch_exp.ml: Algebra Cascades Exec Expr Extensions List Option Parallel Printf Relalg Schema Storage String Systemr Util Value Workload
