bench/main.ml: Analyze Arch_exp Array Bechamel Benchmark Cascades Cost_exp Enum Fig Hashtbl List Measure Printf Rewrite_exp Staged Stats Stats_exp Sys Systemr Test Time Toolkit Util Workload
