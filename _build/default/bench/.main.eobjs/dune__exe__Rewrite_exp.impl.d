bench/rewrite_exp.ml: Algebra Array Core Exec Expr List Pred Printf Relalg Rewrite Storage Util Workload
