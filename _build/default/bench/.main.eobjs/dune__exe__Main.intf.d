bench/main.mli:
