(* E4-E6, E12: rewrite experiments — unnesting, count bug, magic
   decorrelation, outerjoin association. *)

open Relalg
module Q = Rewrite.Qgm

(* ------------------------------------------------------------------ *)
(* E4: unnesting vs tuple-iteration semantics *)

let in_query cat =
  let sub =
    Q.simple
      ~select:[ (Util.col "D" "did", "did") ]
      ~from:[ Util.base cat ~alias:"D" "Dept" ]
      ~where:
        [ Util.eq (Util.col "D" "loc") (Expr.str "Denver");
          Util.eq (Util.col "E" "eid") (Util.col "D" "mgr") ] ()
  in
  { (Q.simple ~select:[ (Util.col "E" "name", "name") ]
       ~from:[ Util.base cat ~alias:"E" "Emp" ] ())
    with Q.where = [ Q.In_sub (Util.col "E" "did", sub) ] }

let e4 () =
  Util.header "E4"
    "unnesting a correlated IN subquery vs tuple iteration (Section 4.2.2)";
  let rows_out = ref [] in
  List.iter
    (fun emps ->
       let w = Workload.Schemas.emp_dept ~emps ~depts:(max 10 (emps / 40)) () in
       let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
       let q () = in_query cat in
       let run config =
         let ctx = Exec.Context.create () in
         let result, report = Core.Pipeline.run ~ctx ~config cat db (q ()) in
         (Array.length result.Exec.Executor.rows,
          Exec.Context.weighted_cost ctx,
          ctx.Exec.Context.cpu_ops,
          report.Core.Pipeline.path)
       in
       let n1, naive_cost, naive_cpu, path1 = run Core.Pipeline.naive_config in
       let n2, unnest_cost, unnest_cpu, path2 =
         run Core.Pipeline.default_config
       in
       assert (n1 = n2);
       assert (path1 = Core.Pipeline.Interpreted);
       assert (path2 = Core.Pipeline.Planned);
       rows_out :=
         [ Util.istr emps; Util.istr n1; Util.f1 naive_cost;
           Util.f1 unnest_cost; Util.f2 (naive_cost /. unnest_cost);
           Util.istr naive_cpu; Util.istr unnest_cpu ]
         :: !rows_out)
    [ 500; 2000; 8000 ];
  Util.table
    [ "emps"; "answers"; "tuple-iter cost"; "unnested cost"; "speedup";
      "tuple-iter cpu"; "unnested cpu" ]
    (List.rev !rows_out)

(* ------------------------------------------------------------------ *)
(* E5: the count bug *)

let count_query cat =
  let sub =
    { (Q.simple ~select:[ (Expr.col ~rel:"" ~col:"n", "n") ]
         ~from:[ Util.base cat ~alias:"E" "Emp" ]
         ~where:[ Util.eq (Util.col "D" "name") (Util.col "E" "dept_name") ]
         ~aggs:[ (Expr.Count_star, "n") ] ())
      with Q.select = [ (Expr.col ~rel:"" ~col:"n", "n") ] }
  in
  { (Q.simple ~select:[ (Util.col "D" "name", "name") ]
       ~from:[ Util.base cat ~alias:"D" "Dept" ] ())
    with Q.where = [ Q.Cmp_sub (Expr.Ge, Util.col "D" "num_machines", sub) ] }

let e5 () =
  Util.header "E5" "the count bug: join vs outerjoin unnesting (Section 4.2.2)";
  let w = Workload.Schemas.emp_dept ~emps:2000 ~depts:50 ~empty_dept_frac:0.3 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let truth = Rewrite.Qgm_eval.run cat (count_query cat) in
  let run rules =
    let result, _ =
      Core.Pipeline.run
        ~config:{ Core.Pipeline.default_config with rewrites = rules }
        cat db (count_query cat)
    in
    Array.length result.Exec.Executor.rows
  in
  let correct = run [ [ Rewrite.Unnest.scalar_correlated_rule ] ] in
  let naive = run [ [ Rewrite.Unnest.naive_cmp_rule ] ] in
  Util.table
    [ "method"; "departments returned"; "correct" ]
    [ [ "tuple iteration (truth)";
        Util.istr (Array.length truth.Exec.Executor.rows); "yes" ];
      [ "outerjoin + group-by rewrite"; Util.istr correct;
        (if correct = Array.length truth.Exec.Executor.rows then "yes" else "NO") ];
      [ "naive join rewrite"; Util.istr naive;
        (if naive = Array.length truth.Exec.Executor.rows then "yes"
         else "NO (count bug)") ] ]

(* ------------------------------------------------------------------ *)
(* E6: magic / semijoin decorrelation on the DepAvgSal example *)

let dep_avg_sal cat ~age_cut =
  let view =
    Q.simple
      ~select:
        [ (Expr.col ~rel:"" ~col:"did", "did");
          (Expr.col ~rel:"" ~col:"avgsal", "avgsal") ]
      ~from:[ Util.base cat ~alias:"E2" "Emp" ]
      ~group_by:[ (Util.col "E2" "did", "did") ]
      ~aggs:[ (Expr.Avg (Util.col "E2" "sal"), "avgsal") ] ()
  in
  Q.simple
    ~select:[ (Util.col "E" "eid", "eid"); (Util.col "E" "sal", "sal") ]
    ~from:
      [ Util.base cat ~alias:"E" "Emp"; Util.base cat ~alias:"D" "Dept";
        Q.Derived { block = view; alias = "V" } ]
    ~where:
      [ Util.eq (Util.col "E" "did") (Util.col "D" "did");
        Util.eq (Util.col "V" "did") (Util.col "E" "did");
        Expr.Cmp (Expr.Lt, Util.col "E" "age", Expr.int age_cut);
        Expr.Cmp (Expr.Gt, Util.col "D" "budget", Expr.int 100_000);
        Expr.Cmp (Expr.Gt, Util.col "E" "sal", Util.col "V" "avgsal") ] ()

let e6 () =
  Util.header "E6"
    "magic/semijoin decorrelation: the DepAvgSal query (Section 4.3)";
  let rows_out = ref [] in
  List.iter
    (fun age_cut ->
       let w = Workload.Schemas.emp_dept ~emps:6000 ~depts:300 () in
       let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
       let run rules =
         let ctx = Exec.Context.create () in
         let result, _ =
           Core.Pipeline.run ~ctx
             ~config:{ Core.Pipeline.default_config with rewrites = rules }
             cat db (dep_avg_sal cat ~age_cut)
         in
         (Array.length result.Exec.Executor.rows, Exec.Context.weighted_cost ctx)
       in
       let n1, without = run [] in
       let n2, with_magic = run [ [ Rewrite.Magic.rule ] ] in
       assert (n1 = n2);
       rows_out :=
         [ Util.istr age_cut;
           Printf.sprintf "%.0f%%" (float_of_int (age_cut - 21) /. 45. *. 100.);
           Util.istr n1; Util.f1 without; Util.f1 with_magic;
           Util.f2 (without /. with_magic) ]
         :: !rows_out)
    [ 23; 25; 30; 45; 66 ];
  Util.table
    [ "age cut"; "outer sel"; "answers"; "no magic"; "magic"; "benefit" ]
    (List.rev !rows_out);
  print_endline
    "  (magic restricts DepAvgSal to departments surviving the outer\n\
    \   filters; the benefit shrinks as the outer filter passes everything)"

(* ------------------------------------------------------------------ *)
(* E12: join/outerjoin association (Section 4.1.2) *)

let e12 () =
  Util.header "E12" "join/outerjoin associativity (Section 4.1.2)";
  let w = Workload.Schemas.emp_dept ~emps:3000 ~depts:60 () in
  let cat = w.Workload.Schemas.cat in
  let scan alias name = Storage.Catalog.scan cat ~alias name in
  (* Join(D1, E LOJ E2): selective filter on D1 *)
  let tree =
    Algebra.Select
      (Util.eq (Util.col "D1" "loc") (Expr.str "Denver"),
       Algebra.Join
         (Algebra.Inner,
          Util.eq (Util.col "D1" "did") (Util.col "E" "did"),
          scan "D1" "Dept",
          Algebra.Join
            (Algebra.Left_outer,
             Util.eq (Util.col "E" "mgr") (Util.col "E2" "eid"),
             scan "E" "Emp", scan "E2" "Emp")))
  in
  let norm = Rewrite.Outerjoin.normalize tree in
  let rec to_plan = function
    | Algebra.Scan { table; alias; _ } ->
      Exec.Plan.Seq_scan { table; alias; filter = None }
    | Algebra.Join (k, p, l, r) ->
      (* hash join on equi predicates, padding with the right kind *)
      let pairs, residual =
        Pred.equi_pairs
          ~left:(Algebra.base_aliases l)
          ~right:(Algebra.base_aliases r)
          (Pred.conjuncts p)
      in
      if pairs <> [] then
        Exec.Plan.Hash_join
          { kind = k; pairs; residual = Pred.of_conjuncts residual;
            left = to_plan l; right = to_plan r }
      else
        Exec.Plan.Nested_loop
          { kind = k; pred = p; outer = to_plan l;
            inner = Exec.Plan.Materialize (to_plan r) }
    | Algebra.Select (p, i) -> Exec.Plan.Filter (p, to_plan i)
    | _ -> invalid_arg "unexpected node"
  in
  (* push the selection down for the normalized variant, as a real
     optimizer would once joins are reorderable *)
  let norm_pushed =
    match norm with
    | Algebra.Select (sel, Algebra.Join (Algebra.Left_outer, q, Algebra.Join (k, p, d, e), t)) ->
      Algebra.Join (Algebra.Left_outer, q,
                    Algebra.Join (k, p, Algebra.Select (sel, d), e), t)
    | other -> other
  in
  let r1, c1, _ = Util.measure cat (to_plan tree) in
  let r2, c2, _ = Util.measure cat (to_plan norm_pushed) in
  Util.table
    [ "variant"; "rows"; "measured cost"; "equivalent" ]
    [ [ "Join(D, E LOJ E2) as written";
        Util.istr (Array.length r1.Exec.Executor.rows); Util.f1 c1; "-" ];
      [ "normalized: Join(D,E) LOJ E2 + pushed filter";
        Util.istr (Array.length r2.Exec.Executor.rows); Util.f1 c2;
        string_of_bool (Exec.Executor.same_multiset_modulo_columns r1 r2) ] ];
  Printf.printf "  normalization verified: %b -> %b\n"
    (Rewrite.Outerjoin.normalized tree)
    (Rewrite.Outerjoin.normalized norm)

let all () = e4 (); e5 (); e6 (); e12 ()
