(* Shared helpers for the experiment harness: table printing and common
   query construction. *)

open Relalg

let header id title =
  Printf.printf "\n=== %s: %s ===\n" id title

let row fmt = Printf.printf fmt

(* Print an aligned table: columns right-justified to their widest cell. *)
let table (headers : string list) (rows : string list list) =
  let all = headers :: rows in
  let ncols = List.length headers in
  let width c =
    List.fold_left (fun w r -> max w (String.length (List.nth r c))) 0 all
  in
  let widths = List.init ncols width in
  let print_row r =
    List.iteri
      (fun i cell ->
         Printf.printf "%s%s" (if i = 0 then "  " else "  ")
           (String.make (List.nth widths i - String.length cell) ' ' ^ cell))
      r;
    print_newline ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f4 x = Printf.sprintf "%.4f" x
let istr = string_of_int

(* SPJ from workload pieces *)
let spj_of_pieces ?(projections = None) ?(order_by = [])
    (p : Workload.Schemas.join_pieces) : Systemr.Spj.t =
  Systemr.Spj.make ~projections ~order_by
    ~relations:
      (List.map
         (fun (alias, table) ->
            { Systemr.Spj.alias; table;
              schema =
                Schema.requalify
                  (Storage.Catalog.table p.Workload.Schemas.jcat table).Storage.Table.schema
                  ~rel:alias })
         p.Workload.Schemas.relations)
    ~predicates:p.Workload.Schemas.predicates ()

let col r c = Expr.col ~rel:r ~col:c
let eq a b = Expr.Cmp (Expr.Eq, a, b)

(* Execute a plan in a fresh context; return (result, weighted measured
   cost, context). *)
let measure ?(buffer_pages = 1024) cat plan =
  let ctx = Exec.Context.create ~buffer_pages () in
  let r = Exec.Executor.run ~ctx cat plan in
  (r, Exec.Context.weighted_cost ctx, ctx)

let base cat ?alias name : Rewrite.Qgm.source =
  let alias = Option.value alias ~default:name in
  Rewrite.Qgm.Base
    { table = name; alias;
      schema =
        Schema.requalify (Storage.Catalog.table cat name).Storage.Table.schema
          ~rel:alias }
