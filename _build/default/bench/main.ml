(* The experiment harness: regenerates every figure (F1-F4) and every
   quantified claim (E1-E17) of the paper; see DESIGN.md for the index and
   EXPERIMENTS.md for paper-vs-measured.

   Usage:
     bench/main.exe              run every experiment
     bench/main.exe F4 E6 ...    run selected experiments
     bench/main.exe --timing     additionally run the Bechamel wall-clock
                                 benchmarks of the optimizers *)

let experiments : (string * string * (unit -> unit)) list =
  [ ("F1", "Figure 1 operator tree", Fig.f1);
    ("F2", "linear vs bushy join trees", Fig.f2);
    ("F3", "query graph", Fig.f3);
    ("F4", "group-by pushdown", Fig.f4);
    ("E1", "naive vs DP enumeration", Enum.e1);
    ("E2", "interesting orders", Enum.e2);
    ("E3", "Cartesian products in star queries", Enum.e3);
    ("E4", "unnesting vs tuple iteration", Rewrite_exp.e4);
    ("E5", "the count bug", Rewrite_exp.e5);
    ("E6", "magic decorrelation", Rewrite_exp.e6);
    ("E7", "histogram accuracy", Stats_exp.e7);
    ("E8", "sampled histograms", Stats_exp.e8);
    ("E9", "distinct-value estimation", Stats_exp.e9);
    ("E10", "independence assumption", Stats_exp.e10);
    ("E11", "cost model vs execution", Cost_exp.e11);
    ("E12", "join/outerjoin association", Rewrite_exp.e12);
    ("E13", "System-R vs Cascades", Arch_exp.e13);
    ("E14", "parallel two-phase", Arch_exp.e14);
    ("E15", "expensive predicates", Arch_exp.e15);
    ("E16", "materialized views", Arch_exp.e16);
    ("E17", "parametric plans", Arch_exp.e17) ]

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock benchmarks of the enumerators (one Test.make per
   optimizer architecture). *)

let timing () =
  let open Bechamel in
  let pieces n =
    Workload.Schemas.join_shape ~rows:100 ~shape:Workload.Schemas.Clique_q ~n ()
  in
  let p5 = pieces 5 in
  let q5 = Util.spj_of_pieces p5 in
  let mk_dp config =
    Staged.stage (fun () ->
        ignore
          (Systemr.Join_order.optimize ~config p5.Workload.Schemas.jcat
             p5.Workload.Schemas.jdb q5))
  in
  let tests =
    [ Test.make ~name:"systemr-linear-n5"
        (mk_dp Systemr.Join_order.default_config);
      Test.make ~name:"systemr-bushy-n5"
        (mk_dp { Systemr.Join_order.default_config with bushy = true });
      Test.make ~name:"naive-n5"
        (Staged.stage (fun () ->
             ignore
               (Systemr.Naive.optimize p5.Workload.Schemas.jcat
                  p5.Workload.Schemas.jdb q5)));
      Test.make ~name:"cascades-n5"
        (Staged.stage (fun () ->
             ignore
               (Cascades.Search.optimize p5.Workload.Schemas.jcat
                  p5.Workload.Schemas.jdb q5)));
      Test.make ~name:"histogram-equi-depth-20k"
        (let data = Array.init 20000 (fun i -> float_of_int (i * 7 mod 997)) in
         Staged.stage (fun () ->
             ignore (Stats.Histogram.build_equi_depth ~buckets:20 data))) ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  Printf.printf "\n=== Bechamel timings ===\n%!";
  List.iter
    (fun test ->
       let results = Benchmark.all cfg [ instance ] test in
       Hashtbl.iter
         (fun name raw ->
            let stats =
              Analyze.one
                (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |])
                instance raw
            in
            match Analyze.OLS.estimates stats with
            | Some [ est ] -> Printf.printf "  %-40s %12.1f ns/run\n%!" name est
            | Some _ | None -> Printf.printf "  %-40s (no estimate)\n%!" name)
         results)
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let want_timing = List.mem "--timing" args in
  let selected = List.filter (fun a -> a <> "--timing") args in
  let to_run =
    if selected = [] then experiments
    else List.filter (fun (id, _, _) -> List.mem id selected) experiments
  in
  if to_run = [] && selected <> [] then begin
    prerr_endline "unknown experiment id; available:";
    List.iter (fun (id, t, _) -> Printf.eprintf "  %-4s %s\n" id t) experiments;
    exit 1
  end;
  List.iter
    (fun (_, _, f) ->
       f ();
       flush stdout)
    to_run;
  if want_timing then timing ();
  Printf.printf "\nAll experiments completed.\n"
