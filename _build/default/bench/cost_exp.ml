(* E11: cost-model validation — predicted vs simulated I/O across buffer
   sizes; buffer-utilization modeling matters ([40], Section 5.2). *)

open Relalg

let e11 () =
  Util.header "E11"
    "cost model vs simulated execution across buffer sizes ([40], 5.2)";
  (* an index nested-loop join whose inner is bigger than small buffers:
     re-reads are free only when the buffer holds the inner *)
  let st = Workload.Gen.rng 11 in
  let cat = Storage.Catalog.create () in
  let inner_rows = 40000 in
  let inner =
    Storage.Catalog.create_table cat ~name:"Inner"
      ~columns:[ ("k", Value.Tint); ("pad", Value.Tstring) ]
  in
  for i = 0 to inner_rows - 1 do
    Storage.Table.insert inner
      (Tuple.of_list [ Value.Int (i mod 2000); Value.Str "xxxxxxxxxxxx" ])
  done;
  let outer =
    Storage.Catalog.create_table cat ~name:"Outer"
      ~columns:[ ("k", Value.Tint) ]
  in
  for _ = 1 to 3000 do
    Storage.Table.insert outer
      (Tuple.of_list [ Value.Int (Workload.Gen.uniform_int st ~lo:0 ~hi:1999) ])
  done;
  ignore (Storage.Catalog.create_index cat ~table:"Inner" ~column:"k" ());
  let db = Stats.Table_stats.analyze_catalog cat in
  let plan =
    Exec.Plan.Index_nl
      { kind = Algebra.Inner;
        outer = Exec.Plan.Seq_scan { table = "Outer"; alias = "O"; filter = None };
        table = "Inner"; alias = "I"; index = "idx_Inner_k";
        columns = [ "k" ]; outer_keys = [ Util.col "O" "k" ];
        residual = Expr.ftrue }
  in
  let inner_pages = float_of_int (Storage.Table.page_count inner) in
  let outer_card = 3000. in
  let matches = float_of_int inner_rows /. 2000. in
  let rows_out = ref [] in
  List.iter
    (fun buffer ->
       let params =
         { Cost.Cost_model.default_params with buffer_pages = buffer }
       in
       (* buffer-aware prediction *)
       let predicted =
         Cost.Cost_model.seq_scan params
           ~pages:(float_of_int (Storage.Table.page_count outer))
           ~rows:outer_card
         +. Cost.Cost_model.index_nl params ~outer_rows:outer_card
              ~inner_rows:(float_of_int inner_rows) ~inner_pages
              ~matches_per_probe:matches ~clustered:false
       in
       (* buffer-oblivious prediction: every fetched row is a random read *)
       let oblivious =
         Cost.Cost_model.seq_scan params
           ~pages:(float_of_int (Storage.Table.page_count outer))
           ~rows:outer_card
         +. Cost.Cost_model.index_nl
              { params with buffer_pages = 1 }
              ~outer_rows:outer_card ~inner_rows:(float_of_int inner_rows)
              ~inner_pages ~matches_per_probe:matches ~clustered:false
       in
       let _, measured, _ = Util.measure ~buffer_pages:buffer cat plan in
       ignore db;
       let err p = Util.f2 (p /. measured) in
       rows_out :=
         [ Util.istr buffer; Util.f1 measured; Util.f1 predicted;
           Util.f1 oblivious; err predicted; err oblivious ]
         :: !rows_out)
    [ 16; 64; 256; 1024; 4096 ];
  Util.table
    [ "buffer pages"; "measured"; "buffer-aware pred"; "oblivious pred";
      "aware/meas"; "oblivious/meas" ]
    (List.rev !rows_out);
  Printf.printf
    "  (inner occupies %.0f pages; once the buffer holds it, repeated\n\
    \   probes stop doing I/O — the oblivious model misses that cliff)\n"
    (float_of_int (Storage.Table.page_count inner))

let all () = e11 ()
