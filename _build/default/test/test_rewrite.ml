(* Rewrite-layer tests: every transformation must be semantics-preserving,
   verified by executing both sides (interpreter as ground truth, pipeline
   as system under test).  Includes the count-bug regression. *)

open Relalg
module Q = Rewrite.Qgm

let ed () = Workload.Schemas.emp_dept ~emps:400 ~depts:20 ~empty_dept_frac:0.25 ()

let base cat ?alias name : Q.source =
  let alias = Option.value alias ~default:name in
  Q.Base
    { table = name; alias;
      schema =
        Schema.requalify (Storage.Catalog.table cat name).Storage.Table.schema
          ~rel:alias }

let col r c = Expr.col ~rel:r ~col:c
let eq a b = Expr.Cmp (Expr.Eq, a, b)

let run_both ?(config = Core.Pipeline.default_config) (w : Workload.Schemas.emp_dept) block =
  let interp = Rewrite.Qgm_eval.run w.Workload.Schemas.cat block in
  let planned, report =
    Core.Pipeline.run ~config w.Workload.Schemas.cat w.Workload.Schemas.db block
  in
  (interp, planned, report)

let check_equiv name ?config w block =
  let interp, planned, report = run_both ?config w block in
  Alcotest.(check bool)
    (Printf.sprintf "%s: pipeline == interpreter (%d rows)" name
       (Array.length interp.Exec.Executor.rows))
    true
    (Exec.Executor.same_multiset interp planned);
  report

(* ---------- view merging ---------- *)

let test_view_merge () =
  let w = ed () in
  (* SELECT V.name, V.sal FROM (SELECT E.name, E.sal, E.did FROM Emp E WHERE E.age < 40) V, Dept D
     WHERE V.did = D.did AND D.loc = 'Denver' *)
  let view =
    Q.simple
      ~select:[ (col "E" "name", "name"); (col "E" "sal", "sal"); (col "E" "did", "did") ]
      ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp" ]
      ~where:[ Expr.Cmp (Expr.Lt, col "E" "age", Expr.int 40) ] ()
  in
  let q =
    Q.simple
      ~select:[ (col "V" "name", "name"); (col "V" "sal", "sal") ]
      ~from:[ Q.Derived { block = view; alias = "V" };
              base w.Workload.Schemas.cat ~alias:"D" "Dept" ]
      ~where:[ eq (col "V" "did") (col "D" "did");
               eq (col "D" "loc") (Expr.str "Denver") ] ()
  in
  let report = check_equiv "view merge" w q in
  Alcotest.(check bool) "view_merge fired" true
    (List.mem_assoc "view_merge" report.Core.Pipeline.trace);
  (* after merging, the view is gone: both relations joined in one block *)
  Alcotest.(check int) "merged into single block" 2
    (List.length report.Core.Pipeline.rewritten.Q.from)

(* ---------- IN unnesting (the paper's Section 4.2.2 example) ---------- *)

let in_query (w : Workload.Schemas.emp_dept) =
  (* SELECT E.name FROM Emp E WHERE E.did IN
       (SELECT D.did FROM Dept D WHERE D.loc='Denver' AND E.eid = D.mgr) *)
  let sub =
    Q.simple
      ~select:[ (col "D" "did", "did") ]
      ~from:[ base w.Workload.Schemas.cat ~alias:"D" "Dept" ]
      ~where:[ eq (col "D" "loc") (Expr.str "Denver");
               eq (col "E" "eid") (col "D" "mgr") ] ()
  in
  { (Q.simple ~select:[ (col "E" "name", "name") ]
       ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp" ] ())
    with Q.where = [ Q.In_sub (col "E" "did", sub) ] }

let test_unnest_in_correlated () =
  let w = ed () in
  let report = check_equiv "correlated IN" w (in_query w) in
  Alcotest.(check bool) "unnest fired" true
    (List.mem_assoc "unnest_in_exists" report.Core.Pipeline.trace);
  Alcotest.(check bool) "planned, not interpreted" true
    (report.Core.Pipeline.path = Core.Pipeline.Planned)

let test_unnest_in_uncorrelated () =
  let w = ed () in
  let sub =
    Q.simple
      ~select:[ (col "D" "did", "did") ]
      ~from:[ base w.Workload.Schemas.cat ~alias:"D" "Dept" ]
      ~where:[ eq (col "D" "loc") (Expr.str "Denver") ] ()
  in
  let q =
    { (Q.simple ~select:[ (col "E" "name", "name") ]
         ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp" ] ())
      with Q.where = [ Q.In_sub (col "E" "did", sub) ] }
  in
  ignore (check_equiv "uncorrelated IN" w q)

let test_unnest_exists () =
  let w = ed () in
  let mk positive =
    let sub =
      Q.simple
        ~select:[ (Expr.int 1, "one") ]
        ~from:[ base w.Workload.Schemas.cat ~alias:"D" "Dept" ]
        ~where:[ eq (col "D" "did") (col "E" "did");
                 Expr.Cmp (Expr.Gt, col "D" "budget", Expr.int 200_000) ] ()
    in
    { (Q.simple ~select:[ (col "E" "eid", "eid") ]
         ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp" ] ())
      with Q.where = [ Q.Exists_sub (positive, sub) ] }
  in
  let r1 = check_equiv "EXISTS" w (mk true) in
  let r2 = check_equiv "NOT EXISTS" w (mk false) in
  Alcotest.(check bool) "both planned" true
    (r1.Core.Pipeline.path = Core.Pipeline.Planned
     && r2.Core.Pipeline.path = Core.Pipeline.Planned);
  (* sanity: EXISTS rows + NOT EXISTS rows = all emps *)
  let i1, _, _ = run_both w (mk true) in
  let i2, _, _ = run_both w (mk false) in
  Alcotest.(check int) "partition"
    w.Workload.Schemas.emps
    (Array.length i1.Exec.Executor.rows + Array.length i2.Exec.Executor.rows)

(* ---------- the count bug (E5's regression test) ---------- *)

let count_query (w : Workload.Schemas.emp_dept) =
  (* SELECT D.name FROM Dept D WHERE D.num_machines >=
       (SELECT COUNT-star FROM Emp E WHERE D.name = E.dept_name) *)
  let sub =
    { (Q.simple ~select:[ (Expr.col ~rel:"" ~col:"n", "n") ]
         ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp" ]
         ~where:[ eq (col "D" "name") (col "E" "dept_name") ]
         ~aggs:[ (Expr.Count_star, "n") ] ())
      with Q.select = [ (Expr.col ~rel:"" ~col:"n", "n") ] }
  in
  { (Q.simple ~select:[ (col "D" "name", "name") ]
       ~from:[ base w.Workload.Schemas.cat ~alias:"D" "Dept" ] ())
    with Q.where = [ Q.Cmp_sub (Expr.Ge, col "D" "num_machines", sub) ] }

let test_count_bug_correct_rewrite () =
  let w = ed () in
  let report = check_equiv "correlated COUNT subquery" w (count_query w) in
  Alcotest.(check bool) "outerjoin rewrite fired" true
    (List.mem_assoc "unnest_scalar_correlated" report.Core.Pipeline.trace)

let test_count_bug_naive_rewrite_wrong () =
  let w = ed () in
  let q = count_query w in
  let truth = Rewrite.Qgm_eval.run w.Workload.Schemas.cat q in
  let naive_cfg =
    { Core.Pipeline.default_config with
      rewrites = [ [ Rewrite.Unnest.naive_cmp_rule ] ] }
  in
  let naive, _ =
    Core.Pipeline.run ~config:naive_cfg w.Workload.Schemas.cat
      w.Workload.Schemas.db q
  in
  (* the naive inner-join rewrite loses departments with zero employees
     (they satisfy num_machines >= 0 = COUNT of empty) *)
  Alcotest.(check bool)
    (Printf.sprintf "naive loses rows: %d < %d"
       (Array.length naive.Exec.Executor.rows)
       (Array.length truth.Exec.Executor.rows))
    true
    (Array.length naive.Exec.Executor.rows
     < Array.length truth.Exec.Executor.rows)

let test_scalar_uncorrelated () =
  let w = ed () in
  let sub =
    { (Q.simple ~select:[ (Expr.col ~rel:"" ~col:"m", "m") ]
         ~from:[ base w.Workload.Schemas.cat ~alias:"E2" "Emp" ]
         ~aggs:[ (Expr.Avg (col "E2" "sal"), "m") ] ())
      with Q.select = [ (Expr.col ~rel:"" ~col:"m", "m") ] }
  in
  let q =
    { (Q.simple ~select:[ (col "E" "eid", "eid") ]
         ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp" ] ())
      with Q.where = [ Q.Cmp_sub (Expr.Gt, col "E" "sal", sub) ] }
  in
  let report = check_equiv "uncorrelated scalar" w q in
  Alcotest.(check bool) "planned" true
    (report.Core.Pipeline.path = Core.Pipeline.Planned)

(* ---------- eager group-by (Figure 4) ---------- *)

let groupby_query (w : Workload.Schemas.emp_dept) =
  (* total salary per department:
     SELECT E.did, SUM(E.sal) FROM Emp E, Dept D WHERE E.did = D.did
     GROUP BY E.did  -- keys include E's join column *)
  Q.simple
    ~select:[ (Expr.col ~rel:"" ~col:"did", "did");
              (Expr.col ~rel:"" ~col:"total", "total") ]
    ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp";
            base w.Workload.Schemas.cat ~alias:"D" "Dept" ]
    ~where:[ eq (col "E" "did") (col "D" "did") ]
    ~group_by:[ (col "E" "did", "did") ]
    ~aggs:[ (Expr.Sum (col "E" "sal"), "total") ] ()

let test_eager_groupby () =
  let w = ed () in
  let q = groupby_query w in
  (* without the rule *)
  ignore (check_equiv "group-by baseline" w q);
  (* with the rule *)
  let config =
    { Core.Pipeline.default_config with
      rewrites = [ [ Rewrite.Groupby.rule ] ] }
  in
  let report = check_equiv "eager group-by" ~config w q in
  Alcotest.(check bool) "eager rule fired" true
    (List.mem_assoc "eager_groupby" report.Core.Pipeline.trace)

let test_eager_groupby_minmax_count () =
  let w = ed () in
  let q =
    { (groupby_query w) with
      Q.aggs =
        [ (Expr.Sum (col "E" "sal"), "total");
          (Expr.Min (col "E" "sal"), "lo");
          (Expr.Max (col "E" "sal"), "hi");
          (Expr.Count_star, "cnt") ];
      select =
        [ (Expr.col ~rel:"" ~col:"did", "did");
          (Expr.col ~rel:"" ~col:"total", "total");
          (Expr.col ~rel:"" ~col:"lo", "lo");
          (Expr.col ~rel:"" ~col:"hi", "hi");
          (Expr.col ~rel:"" ~col:"cnt", "cnt") ] }
  in
  let config =
    { Core.Pipeline.default_config with rewrites = [ [ Rewrite.Groupby.rule ] ] }
  in
  let report = check_equiv "eager with min/max/count" ~config w q in
  Alcotest.(check bool) "fired" true
    (List.mem_assoc "eager_groupby" report.Core.Pipeline.trace)

(* ---------- magic decorrelation (the DepAvgSal example) ---------- *)

let dep_avg_sal_query (w : Workload.Schemas.emp_dept) =
  let view =
    Q.simple
      ~select:[ (Expr.col ~rel:"" ~col:"did", "did");
                (Expr.col ~rel:"" ~col:"avgsal", "avgsal") ]
      ~from:[ base w.Workload.Schemas.cat ~alias:"E2" "Emp" ]
      ~group_by:[ (col "E2" "did", "did") ]
      ~aggs:[ (Expr.Avg (col "E2" "sal"), "avgsal") ] ()
  in
  Q.simple
    ~select:[ (col "E" "eid", "eid"); (col "E" "sal", "sal") ]
    ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp";
            base w.Workload.Schemas.cat ~alias:"D" "Dept";
            Q.Derived { block = view; alias = "V" } ]
    ~where:[ eq (col "E" "did") (col "D" "did");
             eq (col "V" "did") (col "E" "did");
             Expr.Cmp (Expr.Lt, col "E" "age", Expr.int 30);
             Expr.Cmp (Expr.Gt, col "D" "budget", Expr.int 100_000);
             Expr.Cmp (Expr.Gt, col "E" "sal", col "V" "avgsal") ] ()

let test_magic () =
  let w = ed () in
  let q = dep_avg_sal_query w in
  ignore (check_equiv "DepAvgSal without magic" w q);
  let config =
    { Core.Pipeline.default_config with rewrites = [ [ Rewrite.Magic.rule ] ] }
  in
  let report = check_equiv "DepAvgSal with magic" ~config w q in
  Alcotest.(check bool) "magic fired" true
    (List.mem_assoc "magic_decorrelation" report.Core.Pipeline.trace)

(* ---------- join/outerjoin association ---------- *)

let test_outerjoin_normalize () =
  let w = ed () in
  let cat = w.Workload.Schemas.cat in
  let scan alias name = Storage.Catalog.scan cat ~alias name in
  (* Join(R, S LOJ T): R=Dept D1, S=Emp E, T=Dept D2 via E.mgr *)
  let tree =
    Algebra.Join
      (Algebra.Inner,
       eq (col "D1" "did") (col "E" "did"),
       scan "D1" "Dept",
       Algebra.Join
         (Algebra.Left_outer,
          eq (col "E" "mgr") (col "E2" "eid"),
          scan "E" "Emp", scan "E2" "Emp"))
  in
  let norm = Rewrite.Outerjoin.normalize tree in
  Alcotest.(check bool) "was not normal" false (Rewrite.Outerjoin.normalized tree);
  Alcotest.(check bool) "now normal" true (Rewrite.Outerjoin.normalized norm);
  (* execute both through naive lowering *)
  let exec_tree t =
    (* interpret algebra by direct construction of an equivalent plan *)
    let rec to_plan = function
      | Algebra.Scan { table; alias; _ } ->
        Exec.Plan.Seq_scan { table; alias; filter = None }
      | Algebra.Join (k, p, l, r) ->
        Exec.Plan.Nested_loop { kind = k; pred = p; outer = to_plan l; inner = to_plan r }
      | Algebra.Select (p, i) -> Exec.Plan.Filter (p, to_plan i)
      | _ -> Alcotest.fail "unexpected node"
    in
    Exec.Executor.run cat (to_plan t)
  in
  Alcotest.(check bool) "identity holds under execution" true
    (Exec.Executor.same_multiset_modulo_columns (exec_tree tree) (exec_tree norm))

(* ---------- fallback path ---------- *)

let test_interpreter_fallback () =
  let w = ed () in
  (* correlated subquery with aggregation inside HAVING-less but with
     grouping — no rewrite applies, must fall back *)
  let sub =
    { (Q.simple ~select:[ (Expr.col ~rel:"" ~col:"m", "m") ]
         ~from:[ base w.Workload.Schemas.cat ~alias:"E2" "Emp" ]
         ~where:[ eq (col "E2" "did") (col "E" "did") ]
         ~group_by:[ (col "E2" "did", "d") ]
         ~aggs:[ (Expr.Max (col "E2" "sal"), "m") ] ())
      with Q.select = [ (Expr.col ~rel:"" ~col:"m", "m") ] }
  in
  let q =
    { (Q.simple ~select:[ (col "E" "eid", "eid") ]
         ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp" ] ())
      with Q.where = [ Q.Cmp_sub (Expr.Eq, col "E" "sal", sub) ] }
  in
  let _, report =
    Core.Pipeline.run w.Workload.Schemas.cat w.Workload.Schemas.db q
  in
  Alcotest.(check bool) "interpreted" true
    (report.Core.Pipeline.path = Core.Pipeline.Interpreted)

(* ---------- property: random nested queries ---------- *)

let prop_pipeline_equiv_interpreter =
  let w = ed () in
  let gen =
    let open QCheck.Gen in
    let* kind = oneofl [ `In; `Exists; `Not_exists; `Count ] in
    let* loc = oneofl Workload.Gen.city_pool in
    let* budget = int_range 50 400 in
    let sub_where corr =
      [ eq (col "D" "loc") (Expr.str loc) ]
      @ (if corr then [ eq (col "E" "eid") (col "D" "mgr") ] else [])
      @ [ Expr.Cmp (Expr.Gt, col "D" "budget", Expr.int (budget * 1000)) ]
    in
    let* corr = bool in
    let q =
      match kind with
      | `In ->
        let sub =
          Q.simple ~select:[ (col "D" "did", "did") ]
            ~from:[ base w.Workload.Schemas.cat ~alias:"D" "Dept" ]
            ~where:(sub_where corr) ()
        in
        { (Q.simple ~select:[ (col "E" "name", "name") ]
             ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp" ] ())
          with Q.where = [ Q.In_sub (col "E" "did", sub) ] }
      | `Exists | `Not_exists ->
        let sub =
          Q.simple ~select:[ (Expr.int 1, "one") ]
            ~from:[ base w.Workload.Schemas.cat ~alias:"D" "Dept" ]
            ~where:(eq (col "D" "did") (col "E" "did") :: sub_where false) ()
        in
        { (Q.simple ~select:[ (col "E" "eid", "eid") ]
             ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp" ] ())
          with Q.where = [ Q.Exists_sub (kind = `Exists, sub) ] }
      | `Count ->
        let sub =
          { (Q.simple ~select:[ (Expr.col ~rel:"" ~col:"n", "n") ]
               ~from:[ base w.Workload.Schemas.cat ~alias:"E2" "Emp" ]
               ~where:[ eq (col "D" "did") (col "E2" "did") ]
               ~aggs:[ (Expr.Count_star, "n") ] ())
            with Q.select = [ (Expr.col ~rel:"" ~col:"n", "n") ] }
        in
        { (Q.simple ~select:[ (col "D" "name", "name") ]
             ~from:[ base w.Workload.Schemas.cat ~alias:"D" "Dept" ] ())
          with Q.where = [ Q.Cmp_sub (Expr.Ge, col "D" "num_machines", sub) ] }
    in
    return q
  in
  QCheck.Test.make ~name:"pipeline == interpreter on random nested queries"
    ~count:25
    (QCheck.make ~print:Q.block_to_string gen)
    (fun q ->
       let truth = Rewrite.Qgm_eval.run w.Workload.Schemas.cat q in
       let planned, _ =
         Core.Pipeline.run w.Workload.Schemas.cat w.Workload.Schemas.db q
       in
       Exec.Executor.same_multiset truth planned)

let () =
  Alcotest.run "rewrite"
    [ ("view-merge", [ Alcotest.test_case "merge + equivalence" `Quick test_view_merge ]);
      ("unnest",
       [ Alcotest.test_case "correlated IN" `Quick test_unnest_in_correlated;
         Alcotest.test_case "uncorrelated IN" `Quick test_unnest_in_uncorrelated;
         Alcotest.test_case "EXISTS / NOT EXISTS" `Quick test_unnest_exists;
         Alcotest.test_case "count bug: correct rewrite" `Quick test_count_bug_correct_rewrite;
         Alcotest.test_case "count bug: naive rewrite is wrong" `Quick test_count_bug_naive_rewrite_wrong;
         Alcotest.test_case "uncorrelated scalar" `Quick test_scalar_uncorrelated ]);
      ("group-by",
       [ Alcotest.test_case "eager sum" `Quick test_eager_groupby;
         Alcotest.test_case "eager min/max/count" `Quick test_eager_groupby_minmax_count ]);
      ("magic", [ Alcotest.test_case "DepAvgSal" `Quick test_magic ]);
      ("outerjoin", [ Alcotest.test_case "associativity" `Quick test_outerjoin_normalize ]);
      ("pipeline",
       [ Alcotest.test_case "interpreter fallback" `Quick test_interpreter_fallback;
         QCheck_alcotest.to_alcotest prop_pipeline_equiv_interpreter ]) ]
