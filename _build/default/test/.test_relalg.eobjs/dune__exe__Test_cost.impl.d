test/test_cost.ml: Alcotest Algebra Char Cost Exec Expr Float Parallel Printf QCheck QCheck_alcotest Relalg Storage String Tuple Value Workload
