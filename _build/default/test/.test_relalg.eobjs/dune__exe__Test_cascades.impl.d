test/test_cascades.ml: Alcotest Algebra Array Cascades Exec Expr List Pred Printf QCheck QCheck_alcotest Relalg Schema Storage Systemr Tuple Unix Value Workload
