test/test_storage.ml: Alcotest Algebra Array Gen List QCheck QCheck_alcotest Relalg Schema Storage Tuple Value
