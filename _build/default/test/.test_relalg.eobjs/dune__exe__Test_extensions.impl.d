test/test_extensions.ml: Alcotest Array Exec Expr Extensions Gen List Printf QCheck QCheck_alcotest Relalg Schema Storage Systemr Value Workload
