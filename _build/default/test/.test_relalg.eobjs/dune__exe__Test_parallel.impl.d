test/test_parallel.ml: Alcotest Algebra Exec Expr List Parallel Printf Relalg String Workload
