test/test_sql.ml: Alcotest Array Core Exec Expr Lazy List Printf Relalg Rewrite Sql String Tuple Value Workload
