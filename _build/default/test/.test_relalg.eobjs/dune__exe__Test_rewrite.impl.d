test/test_rewrite.ml: Alcotest Algebra Array Core Exec Expr List Option Printf QCheck QCheck_alcotest Relalg Rewrite Schema Storage Workload
