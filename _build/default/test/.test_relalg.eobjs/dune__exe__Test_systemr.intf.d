test/test_systemr.mli:
