test/test_stats.ml: Alcotest Algebra Array Expr Float List Option Printf QCheck QCheck_alcotest Relalg Stats Storage Tuple Value Workload
