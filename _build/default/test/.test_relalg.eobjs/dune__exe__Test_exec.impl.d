test/test_exec.ml: Alcotest Algebra Array Exec Expr Gen List QCheck QCheck_alcotest Relalg Schema Storage Tuple Value
