test/test_relalg.ml: Alcotest Algebra Expr List Pred Printf QCheck QCheck_alcotest Query_graph Relalg Schema Tuple Value
