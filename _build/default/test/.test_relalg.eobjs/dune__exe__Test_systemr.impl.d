test/test_systemr.ml: Alcotest Algebra Array Exec Expr List Pred Printf QCheck QCheck_alcotest Relalg Schema Storage Systemr Tuple Value Workload
