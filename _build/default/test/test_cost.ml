(* Cost-model and physical-property tests: formula sanity, monotonicity,
   spill behaviour, order satisfaction, and the estimated-vs-measured
   agreement that experiment E11 relies on. *)

open Relalg
module Cm = Cost.Cost_model
module Pp = Cost.Physical_props

let p = Cm.default_params

(* ---------- physical properties ---------- *)

let cr rel col = { Expr.rel; col }

let test_satisfies () =
  let o1 = [ (cr "R" "a", Algebra.Asc) ] in
  let o2 = [ (cr "R" "a", Algebra.Asc); (cr "R" "b", Algebra.Asc) ] in
  Alcotest.(check bool) "anything satisfies no requirement" true
    (Pp.satisfies ~have:[] ~want:[]);
  Alcotest.(check bool) "prefix satisfies" true (Pp.satisfies ~have:o2 ~want:o1);
  Alcotest.(check bool) "shorter does not satisfy longer" false
    (Pp.satisfies ~have:o1 ~want:o2);
  Alcotest.(check bool) "direction matters" false
    (Pp.satisfies ~have:[ (cr "R" "a", Algebra.Desc) ] ~want:o1);
  Alcotest.(check bool) "unordered fails any requirement" false
    (Pp.satisfies ~have:[] ~want:o1)

let prop_satisfies_transitive =
  let arb_order =
    QCheck.make
      QCheck.Gen.(
        list_size (int_range 0 3)
          (map2
             (fun c d -> (cr "R" (String.make 1 (Char.chr (97 + c))),
                          if d then Algebra.Asc else Algebra.Desc))
             (int_range 0 3) bool))
  in
  QCheck.Test.make ~name:"order satisfaction is transitive" ~count:200
    (QCheck.triple arb_order arb_order arb_order)
    (fun (a, b, c) ->
       (not (Pp.satisfies ~have:a ~want:b && Pp.satisfies ~have:b ~want:c))
       || Pp.satisfies ~have:a ~want:c)

(* ---------- formula sanity ---------- *)

let test_scan_costs () =
  Alcotest.(check bool) "seq scan scales with pages" true
    (Cm.seq_scan p ~pages:100. ~rows:1000.
     < Cm.seq_scan p ~pages:200. ~rows:1000.);
  (* selective index scan beats full scan; unselective does not *)
  let full = Cm.seq_scan p ~pages:500. ~rows:40000. in
  let sel = Cm.index_scan p ~clustered:false ~pages:500. ~rows:40000. ~matches:10. in
  let unsel = Cm.index_scan p ~clustered:false ~pages:500. ~rows:40000. ~matches:40000. in
  Alcotest.(check bool) "selective index wins" true (sel < full);
  Alcotest.(check bool) "unselective index loses" true (unsel > full);
  (* clustered matches are cheaper than scattered ones *)
  Alcotest.(check bool) "clustered cheaper" true
    (Cm.index_scan p ~clustered:true ~pages:500. ~rows:40000. ~matches:4000.
     < Cm.index_scan p ~clustered:false ~pages:500. ~rows:40000. ~matches:4000.)

let test_sort_spill () =
  let in_mem = Cm.sort p ~pages:10. ~rows:1000. in
  let spilled = Cm.sort p ~pages:(float_of_int (p.Cm.work_mem_pages * 4)) ~rows:1000. in
  Alcotest.(check bool) "spill adds I/O" true (spilled > in_mem +. 1.);
  (* executor's spill accounting agrees in kind *)
  Alcotest.(check int) "no spill when it fits" 0
    (Exec.Executor.sort_spill_pages ~work_mem:64 ~pages:64);
  Alcotest.(check bool) "spill when it does not" true
    (Exec.Executor.sort_spill_pages ~work_mem:64 ~pages:256 > 0)

let test_join_formulas () =
  (* NL join grows with both inputs *)
  Alcotest.(check bool) "nl monotone in outer" true
    (Cm.nested_loop p ~outer_rows:100. ~inner_rows:1000. ~inner_pages:10.
     < Cm.nested_loop p ~outer_rows:1000. ~inner_rows:1000. ~inner_pages:10.);
  (* big inner beyond the buffer pays rescans *)
  let small = Cm.nested_loop p ~outer_rows:100. ~inner_rows:1000. ~inner_pages:10. in
  let big =
    Cm.nested_loop p ~outer_rows:100. ~inner_rows:1000.
      ~inner_pages:(float_of_int (p.Cm.buffer_pages * 2))
  in
  Alcotest.(check bool) "buffer overflow rescans" true (big > small *. 10.);
  (* hash join spills when the build side exceeds work_mem *)
  let no_spill =
    Cm.hash_join p ~left_rows:1000. ~right_rows:1000. ~left_pages:10.
      ~right_pages:10. ~out_rows:100.
  in
  let spill =
    Cm.hash_join p ~left_rows:1000. ~right_rows:1000. ~left_pages:10.
      ~right_pages:(float_of_int (p.Cm.work_mem_pages * 2)) ~out_rows:100.
  in
  Alcotest.(check bool) "grace spill" true (spill > no_spill)

let test_index_nl_buffer_cliff () =
  let cost buffer =
    Cm.index_nl { p with Cm.buffer_pages = buffer } ~outer_rows:1000.
      ~inner_rows:50000. ~inner_pages:400. ~matches_per_probe:20.
      ~clustered:false
  in
  Alcotest.(check bool) "bigger buffer never dearer" true
    (cost 2048 <= cost 256 && cost 256 <= cost 16);
  Alcotest.(check bool) "cliff is large" true (cost 16 > cost 4096 *. 3.)

(* ---------- estimated vs measured agreement on simple plans ---------- *)

let test_seq_scan_predicted_equals_measured () =
  let cat = Storage.Catalog.create () in
  let t = Storage.Catalog.create_table cat ~name:"T" ~columns:[ ("k", Value.Tint) ] in
  for i = 0 to 49999 do
    Storage.Table.insert t (Tuple.of_list [ Value.Int i ])
  done;
  let pages = float_of_int (Storage.Table.page_count t) in
  let predicted = Cm.seq_scan p ~pages ~rows:50000. in
  let ctx = Exec.Context.create () in
  ignore
    (Exec.Executor.run ~ctx cat
       (Exec.Plan.Seq_scan { table = "T"; alias = "T"; filter = None }));
  let measured = Exec.Context.weighted_cost ctx in
  Alcotest.(check bool)
    (Printf.sprintf "within 10%%: predicted %.1f measured %.1f" predicted measured)
    true
    (Float.abs (predicted -. measured) /. measured < 0.10)

let test_of_counters () =
  let c = Cm.of_counters p ~seq:10 ~rand:5 ~spill:2 ~cpu:1000 in
  Alcotest.(check (float 1e-9)) "weighted"
    ((10. +. 2.) *. 1.0 +. (5. *. 4.0) +. (1000. *. 0.001)) c

(* ---------- plan stats derivation (parallel's sizing) ---------- *)

let test_plan_stats_rows () =
  let w = Workload.Schemas.emp_dept ~emps:2000 ~depts:40 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let plan =
    Exec.Plan.Hash_join
      { kind = Algebra.Inner;
        pairs = [ ({ Expr.rel = "Emp"; col = "did" }, { Expr.rel = "Dept"; col = "did" }) ];
        residual = Expr.ftrue;
        left = Exec.Plan.Seq_scan { table = "Emp"; alias = "Emp"; filter = None };
        right = Exec.Plan.Seq_scan { table = "Dept"; alias = "Dept"; filter = None } }
  in
  let est, _ = Parallel.Plan_stats.derive Cm.default_params cat db plan in
  (* FK join: roughly one row out per Emp row *)
  Alcotest.(check bool)
    (Printf.sprintf "join rows %.0f ~ 2000" est.Parallel.Plan_stats.rows)
    true
    (est.Parallel.Plan_stats.rows > 500. && est.Parallel.Plan_stats.rows < 8000.);
  Alcotest.(check bool) "work positive" true (est.Parallel.Plan_stats.work > 0.)

let () =
  Alcotest.run "cost"
    [ ("physical-props",
       [ Alcotest.test_case "satisfies" `Quick test_satisfies;
         QCheck_alcotest.to_alcotest prop_satisfies_transitive ]);
      ("formulas",
       [ Alcotest.test_case "scans" `Quick test_scan_costs;
         Alcotest.test_case "sort spill" `Quick test_sort_spill;
         Alcotest.test_case "joins" `Quick test_join_formulas;
         Alcotest.test_case "index-nl buffer cliff" `Quick test_index_nl_buffer_cliff ]);
      ("calibration",
       [ Alcotest.test_case "seq scan predicted = measured" `Quick
           test_seq_scan_predicted_equals_measured;
         Alcotest.test_case "of_counters" `Quick test_of_counters;
         Alcotest.test_case "plan stats" `Quick test_plan_stats_rows ]) ]
