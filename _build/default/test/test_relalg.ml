(* Unit and property tests for the relational-algebra substrate: values,
   schemas, expressions (three-valued logic), CNF, query graphs. *)

open Relalg

let value = Alcotest.testable Value.pp Value.equal

let schema_ed =
  [ Schema.column ~rel:"E" ~name:"id" ~ty:Value.Tint;
    Schema.column ~rel:"E" ~name:"sal" ~ty:Value.Tint;
    Schema.column ~rel:"D" ~name:"id" ~ty:Value.Tint;
    Schema.column ~rel:"D" ~name:"loc" ~ty:Value.Tstring ]

let tuple_ed = Tuple.of_list [ Value.Int 1; Value.Int 90; Value.Int 7; Value.Str "Denver" ]

(* ---------- values ---------- *)

let test_value_order () =
  Alcotest.(check bool) "null lowest" true (Value.compare Value.Null (Value.Int (-100)) < 0);
  Alcotest.(check bool) "int/float mix" true (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  Alcotest.(check bool) "int=float" true (Value.equal (Value.Int 2) (Value.Float 2.0));
  Alcotest.(check bool) "strings" true (Value.compare (Value.Str "a") (Value.Str "b") < 0)

let test_sql_cmp_null () =
  Alcotest.(check (option int)) "null vs int" None (Value.sql_cmp Value.Null (Value.Int 1));
  Alcotest.(check (option int)) "int vs null" None (Value.sql_cmp (Value.Int 1) Value.Null);
  Alcotest.(check (option int)) "eq" (Some 0) (Value.sql_cmp (Value.Int 1) (Value.Int 1))

(* ---------- schema ---------- *)

let test_schema_lookup () =
  Alcotest.(check int) "qualified" 1 (Schema.index_of schema_ed ~rel:"E" ~name:"sal");
  Alcotest.(check int) "unqualified unique" 3 (Schema.index_of schema_ed ~rel:"" ~name:"loc");
  Alcotest.check_raises "ambiguous" (Failure "ambiguous column reference: id")
    (fun () -> ignore (Schema.index_of schema_ed ~rel:"" ~name:"id"));
  Alcotest.(check bool) "missing" true
    (match Schema.index_of schema_ed ~rel:"E" ~name:"nope" with
     | exception Not_found -> true
     | _ -> false)

let test_schema_requalify () =
  let s = Schema.requalify schema_ed ~rel:"X" in
  Alcotest.(check int) "requalified" 1 (Schema.index_of s ~rel:"X" ~name:"sal")

(* ---------- expressions ---------- *)

let eval e = Expr.eval schema_ed tuple_ed e

let test_expr_arith () =
  Alcotest.check value "add" (Value.Int 91)
    (eval (Expr.Binop (Expr.Add, Expr.col ~rel:"E" ~col:"sal", Expr.int 1)));
  Alcotest.check value "div0" Value.Null
    (eval (Expr.Binop (Expr.Div, Expr.int 1, Expr.int 0)));
  Alcotest.check value "null propagates" Value.Null
    (eval (Expr.Binop (Expr.Mul, Expr.Const Value.Null, Expr.int 3)));
  Alcotest.check value "float promote" (Value.Float 2.5)
    (eval (Expr.Binop (Expr.Add, Expr.int 2, Expr.Const (Value.Float 0.5))))

let test_expr_three_valued () =
  let unknown = Expr.Cmp (Expr.Eq, Expr.Const Value.Null, Expr.int 1) in
  Alcotest.check value "unknown" Value.Null (eval unknown);
  Alcotest.check value "false and unknown" (Value.Bool false)
    (eval (Expr.And (Expr.bool false, unknown)));
  Alcotest.check value "true or unknown" (Value.Bool true)
    (eval (Expr.Or (Expr.bool true, unknown)));
  Alcotest.check value "true and unknown" Value.Null
    (eval (Expr.And (Expr.bool true, unknown)));
  Alcotest.check value "not unknown" Value.Null (eval (Expr.Not unknown));
  Alcotest.check value "is null" (Value.Bool true)
    (eval (Expr.Is_null (Expr.Const Value.Null)))

let test_expr_holds_rejects_unknown () =
  let unknown = Expr.Cmp (Expr.Eq, Expr.Const Value.Null, Expr.int 1) in
  Alcotest.(check bool) "holds unknown = false" false
    (Expr.holds schema_ed unknown tuple_ed)

let test_expr_columns () =
  let e =
    Expr.And
      (Expr.Cmp (Expr.Eq, Expr.col ~rel:"E" ~col:"id", Expr.col ~rel:"D" ~col:"id"),
       Expr.Cmp (Expr.Gt, Expr.col ~rel:"E" ~col:"sal", Expr.int 10))
  in
  Alcotest.(check (list string)) "relations" [ "D"; "E" ] (Expr.relations e);
  Alcotest.(check int) "columns" 3 (List.length (Expr.columns e))

let test_agg_fold () =
  let st = Expr.agg_init () in
  List.iter (Expr.agg_step st) [ Value.Int 3; Value.Null; Value.Int 5 ];
  Alcotest.check value "count skips null" (Value.Int 2) (Expr.agg_final (Expr.Count Expr.ftrue) st);
  Alcotest.check value "sum" (Value.Int 8) (Expr.agg_final (Expr.Sum Expr.ftrue) st);
  Alcotest.check value "min" (Value.Int 3) (Expr.agg_final (Expr.Min Expr.ftrue) st);
  Alcotest.check value "avg" (Value.Float 4.0) (Expr.agg_final (Expr.Avg Expr.ftrue) st);
  let empty = Expr.agg_init () in
  Alcotest.check value "empty sum is null" Value.Null (Expr.agg_final (Expr.Sum Expr.ftrue) empty);
  Alcotest.check value "empty count is 0" (Value.Int 0) (Expr.agg_final Expr.Count_star empty)

let test_agg_combine () =
  let a = Expr.agg_init () and b = Expr.agg_init () in
  List.iter (Expr.agg_step a) [ Value.Int 1; Value.Int 9 ];
  List.iter (Expr.agg_step b) [ Value.Int 4 ];
  let c = Expr.agg_combine a b in
  Alcotest.check value "combined sum" (Value.Int 14) (Expr.agg_final (Expr.Sum Expr.ftrue) c);
  Alcotest.check value "combined max" (Value.Int 9) (Expr.agg_final (Expr.Max Expr.ftrue) c);
  Alcotest.check value "combined count" (Value.Int 3) (Expr.agg_final Expr.Count_star c)

(* ---------- predicates ---------- *)

let test_conjuncts () =
  let a = Expr.Cmp (Expr.Gt, Expr.col ~rel:"E" ~col:"sal", Expr.int 1) in
  let b = Expr.Cmp (Expr.Lt, Expr.col ~rel:"E" ~col:"sal", Expr.int 9) in
  Alcotest.(check int) "split" 2 (List.length (Pred.conjuncts (Expr.And (a, b))));
  Alcotest.(check int) "true -> none" 0 (List.length (Pred.conjuncts Expr.ftrue));
  let back = Pred.of_conjuncts (Pred.conjuncts (Expr.And (a, b))) in
  Alcotest.(check int) "roundtrip" 2 (List.length (Pred.conjuncts back))

let test_classify () =
  let single = Expr.Cmp (Expr.Gt, Expr.col ~rel:"E" ~col:"sal", Expr.int 1) in
  let join = Expr.Cmp (Expr.Eq, Expr.col ~rel:"E" ~col:"id", Expr.col ~rel:"D" ~col:"id") in
  (match Pred.classify single with
   | Pred.Single "E" -> ()
   | _ -> Alcotest.fail "expected Single E");
  (match Pred.classify join with
   | Pred.Equi_join (a, b) ->
     Alcotest.(check string) "left" "E" a.Expr.rel;
     Alcotest.(check string) "right" "D" b.Expr.rel
   | _ -> Alcotest.fail "expected Equi_join");
  match Pred.classify (Expr.Cmp (Expr.Eq, Expr.int 1, Expr.int 1)) with
  | Pred.Constant -> ()
  | _ -> Alcotest.fail "expected Constant"

let test_equi_pairs () =
  let join = Expr.Cmp (Expr.Eq, Expr.col ~rel:"D" ~col:"id", Expr.col ~rel:"E" ~col:"id") in
  let pairs, residual = Pred.equi_pairs ~left:[ "E" ] ~right:[ "D" ] [ join ] in
  Alcotest.(check int) "one pair" 1 (List.length pairs);
  Alcotest.(check int) "no residual" 0 (List.length residual);
  let (l, r) = List.hd pairs in
  (* orientation normalized: left side of the pair is from the left set *)
  Alcotest.(check string) "pair left" "E" l.Expr.rel;
  Alcotest.(check string) "pair right" "D" r.Expr.rel

(* ---------- CNF property ---------- *)

(* Random predicates over two int columns, evaluated on random tuples:
   CNF must preserve the 2-valued outcome of WHERE (reject on UNKNOWN). *)
let small_schema =
  [ Schema.column ~rel:"T" ~name:"x" ~ty:Value.Tint;
    Schema.column ~rel:"T" ~name:"y" ~ty:Value.Tint ]

let gen_pred =
  let open QCheck.Gen in
  let leaf =
    let* col = oneofl [ "x"; "y" ] in
    let* op = oneofl [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Ge ] in
    let* c = int_range (-2) 2 in
    return (Expr.Cmp (op, Expr.col ~rel:"T" ~col, Expr.int c))
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [ (2, leaf);
          (1, map2 (fun a b -> Expr.And (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun a b -> Expr.Or (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map (fun a -> Expr.Not a) (go (depth - 1))) ]
  in
  go 3

let arb_pred = QCheck.make ~print:Expr.to_string gen_pred

let prop_cnf_equivalent =
  QCheck.Test.make ~name:"cnf preserves WHERE semantics" ~count:300
    (QCheck.pair arb_pred (QCheck.pair QCheck.small_signed_int QCheck.small_signed_int))
    (fun (p, (x, y)) ->
       let tuple = Tuple.of_list [ Value.Int x; Value.Int y ] in
       let before = Expr.holds small_schema p tuple in
       let after = Expr.holds small_schema (Pred.cnf p) tuple in
       before = after)

let prop_value_total_order =
  let arb_value =
    QCheck.make
      ~print:Value.to_string
      QCheck.Gen.(
        oneof
          [ return Value.Null;
            map (fun b -> Value.Bool b) bool;
            map (fun i -> Value.Int i) (int_range (-5) 5);
            map (fun f -> Value.Float f) (float_range (-5.) 5.);
            map (fun s -> Value.Str s) (string_size (int_range 0 3)) ])
  in
  QCheck.Test.make ~name:"value compare is a total order" ~count:500
    (QCheck.triple arb_value arb_value arb_value)
    (fun (a, b, c) ->
       let sgn x = compare x 0 in
       (* antisymmetry *)
       sgn (Value.compare a b) = -sgn (Value.compare b a)
       (* transitivity of <= *)
       && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
           || Value.compare a c <= 0))

(* ---------- query graph ---------- *)

let chain_graph n =
  let scans = List.init n (fun i -> (Printf.sprintf "R%d" (i + 1), "t")) in
  let preds =
    List.init (n - 1) (fun i ->
        Expr.Cmp
          (Expr.Eq,
           Expr.col ~rel:(Printf.sprintf "R%d" (i + 1)) ~col:"b",
           Expr.col ~rel:(Printf.sprintf "R%d" (i + 2)) ~col:"a"))
  in
  Query_graph.of_query ~scans preds

let test_query_graph_shapes () =
  Alcotest.(check bool) "chain connected" true (Query_graph.connected (chain_graph 5));
  (match Query_graph.shape (chain_graph 5) with
   | Query_graph.Chain -> ()
   | _ -> Alcotest.fail "expected chain");
  let star =
    Query_graph.of_query
      ~scans:[ ("F", "f"); ("D1", "d"); ("D2", "d"); ("D3", "d") ]
      (List.map
         (fun d ->
            Expr.Cmp (Expr.Eq, Expr.col ~rel:"F" ~col:d, Expr.col ~rel:d ~col:"id"))
         [ "D1"; "D2"; "D3" ])
  in
  (match Query_graph.shape star with
   | Query_graph.Star -> ()
   | _ -> Alcotest.fail "expected star");
  let disconnected = Query_graph.of_query ~scans:[ ("A", "a"); ("B", "b") ] [] in
  Alcotest.(check bool) "disconnected" false (Query_graph.connected disconnected)

let test_query_graph_neighbours () =
  let g = chain_graph 4 in
  Alcotest.(check (list string)) "middle node" [ "R1"; "R3" ]
    (Query_graph.neighbours g "R2");
  Alcotest.(check (list string)) "endpoint" [ "R2" ] (Query_graph.neighbours g "R1")

(* ---------- algebra ---------- *)

let test_algebra_schema () =
  let scan =
    Algebra.Scan { table = "Emp"; alias = "E";
                   schema = Schema.requalify schema_ed ~rel:"E" }
  in
  let q =
    Algebra.Project
      ([ (Expr.col ~rel:"E" ~col:"sal", "salary") ],
       Algebra.Select
         (Expr.Cmp (Expr.Gt, Expr.col ~rel:"E" ~col:"sal", Expr.int 10), scan))
  in
  let s = Algebra.schema q in
  Alcotest.(check int) "one col" 1 (Schema.arity s);
  Alcotest.(check string) "aliased" "salary" (List.hd s).Schema.name

let test_algebra_group_schema () =
  let scan =
    Algebra.Scan { table = "Emp"; alias = "E";
                   schema = Schema.requalify schema_ed ~rel:"E" }
  in
  let g =
    Algebra.Group_by
      { keys = [ (Expr.col ~rel:"E" ~col:"id", "id") ];
        aggs = [ (Expr.Avg (Expr.col ~rel:"E" ~col:"sal"), "avgsal");
                 (Expr.Count_star, "n") ];
        input = scan }
  in
  let s = Algebra.schema g in
  Alcotest.(check int) "three cols" 3 (Schema.arity s);
  Alcotest.(check bool) "avg is float" true
    ((List.nth s 1).Schema.ty = Value.Tfloat);
  Alcotest.(check bool) "count is int" true ((List.nth s 2).Schema.ty = Value.Tint)

let () =
  Alcotest.run "relalg"
    [ ("values",
       [ Alcotest.test_case "total order basics" `Quick test_value_order;
         Alcotest.test_case "sql_cmp on null" `Quick test_sql_cmp_null ]);
      ("schema",
       [ Alcotest.test_case "lookup" `Quick test_schema_lookup;
         Alcotest.test_case "requalify" `Quick test_schema_requalify ]);
      ("expr",
       [ Alcotest.test_case "arithmetic" `Quick test_expr_arith;
         Alcotest.test_case "three-valued logic" `Quick test_expr_three_valued;
         Alcotest.test_case "holds rejects unknown" `Quick test_expr_holds_rejects_unknown;
         Alcotest.test_case "column collection" `Quick test_expr_columns;
         Alcotest.test_case "aggregate folding" `Quick test_agg_fold;
         Alcotest.test_case "aggregate combine" `Quick test_agg_combine ]);
      ("pred",
       [ Alcotest.test_case "conjunct split" `Quick test_conjuncts;
         Alcotest.test_case "classification" `Quick test_classify;
         Alcotest.test_case "equi pairs orientation" `Quick test_equi_pairs ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_cnf_equivalent;
         QCheck_alcotest.to_alcotest prop_value_total_order ]);
      ("query-graph",
       [ Alcotest.test_case "shapes" `Quick test_query_graph_shapes;
         Alcotest.test_case "neighbours" `Quick test_query_graph_neighbours ]);
      ("algebra",
       [ Alcotest.test_case "project schema" `Quick test_algebra_schema;
         Alcotest.test_case "group-by schema" `Quick test_algebra_group_schema ]) ]
