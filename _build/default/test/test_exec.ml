(* Execution-engine tests: every join algorithm must agree with the naive
   nested loop on every join kind, aggregation must follow SQL semantics,
   and page accounting must behave. *)

open Relalg

let mk_catalog rs ss =
  let cat = Storage.Catalog.create () in
  let r = Storage.Catalog.create_table cat ~name:"R"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ] in
  let s = Storage.Catalog.create_table cat ~name:"S"
      ~columns:[ ("a", Value.Tint); ("c", Value.Tint) ] in
  List.iter (fun (a, b) -> Storage.Table.insert r (Tuple.of_list [ a; b ])) rs;
  List.iter (fun (a, c) -> Storage.Table.insert s (Tuple.of_list [ a; c ])) ss;
  cat

let default_r =
  [ (Value.Int 1, Value.Int 10); (Value.Int 2, Value.Int 20);
    (Value.Int 2, Value.Int 21); (Value.Int 3, Value.Int 30);
    (Value.Null, Value.Int 99) ]

let default_s =
  [ (Value.Int 2, Value.Int 200); (Value.Int 2, Value.Int 201);
    (Value.Int 3, Value.Int 300); (Value.Int 4, Value.Int 400);
    (Value.Null, Value.Int 999) ]

let scan t = Exec.Plan.Seq_scan { table = t; alias = t; filter = None }

let join_pred =
  Expr.Cmp (Expr.Eq, Expr.col ~rel:"R" ~col:"a", Expr.col ~rel:"S" ~col:"a")

let pair = ({ Expr.rel = "R"; col = "a" }, { Expr.rel = "S"; col = "a" })

let sort_on rel col input =
  Exec.Plan.Sort ([ { Exec.Plan.key = Expr.col ~rel ~col; descending = false } ], input)

let run cat p = Exec.Executor.run cat p

let rows_sorted (r : Exec.Executor.result) =
  Array.to_list r.Exec.Executor.rows |> List.sort Tuple.compare

let check_same name a b =
  Alcotest.(check int) (name ^ ": row count") (List.length (rows_sorted a)) (List.length (rows_sorted b));
  Alcotest.(check bool) (name ^ ": multiset equal") true (Exec.Executor.same_multiset a b)

let all_join_algorithms kind cat =
  let nl =
    Exec.Plan.Nested_loop { kind; pred = join_pred; outer = scan "R"; inner = scan "S" }
  in
  let hj =
    Exec.Plan.Hash_join { kind; pairs = [ pair ]; residual = Expr.ftrue;
                          left = scan "R"; right = scan "S" }
  in
  let mj =
    Exec.Plan.Merge_join { kind; pairs = [ pair ]; residual = Expr.ftrue;
                           left = sort_on "R" "a" (scan "R");
                           right = sort_on "S" "a" (scan "S") }
  in
  (run cat nl, [ ("hash", run cat hj); ("merge", run cat mj) ])

let test_join_kind kind () =
  let cat = mk_catalog default_r default_s in
  let reference, others = all_join_algorithms kind cat in
  List.iter (fun (name, r) -> check_same name reference r) others

let test_inner_join_content () =
  let cat = mk_catalog default_r default_s in
  let r = run cat (Exec.Plan.Nested_loop
                     { kind = Algebra.Inner; pred = join_pred;
                       outer = scan "R"; inner = scan "S" }) in
  (* keys 2 (2x2 rows) and 3 (1x1): 5 rows; NULLs never join *)
  Alcotest.(check int) "rows" 5 (Array.length r.Exec.Executor.rows)

let test_left_outer_content () =
  let cat = mk_catalog default_r default_s in
  let r = run cat (Exec.Plan.Nested_loop
                     { kind = Algebra.Left_outer; pred = join_pred;
                       outer = scan "R"; inner = scan "S" }) in
  (* 5 matches + unmatched R rows (a=1 and a=NULL) padded *)
  Alcotest.(check int) "rows" 7 (Array.length r.Exec.Executor.rows);
  let padded =
    Array.to_list r.Exec.Executor.rows
    |> List.filter (fun t -> Value.is_null (Tuple.get t 2))
  in
  Alcotest.(check int) "padded rows" 2 (List.length padded)

let test_semi_anti_content () =
  let cat = mk_catalog default_r default_s in
  let semi = run cat (Exec.Plan.Nested_loop
                        { kind = Algebra.Semi; pred = join_pred;
                          outer = scan "R"; inner = scan "S" }) in
  Alcotest.(check int) "semi rows" 3 (Array.length semi.Exec.Executor.rows);
  Alcotest.(check int) "semi arity = R" 2 (Schema.arity semi.Exec.Executor.schema);
  let anti = run cat (Exec.Plan.Nested_loop
                        { kind = Algebra.Anti; pred = join_pred;
                          outer = scan "R"; inner = scan "S" }) in
  Alcotest.(check int) "anti rows" 2 (Array.length anti.Exec.Executor.rows)

(* property: random inputs, all algorithms and kinds agree *)
let arb_rows =
  QCheck.(list_of_size Gen.(int_range 0 25)
            (pair (int_range 0 5) (int_range 0 50)))

let prop_join_agreement =
  QCheck.Test.make ~name:"join algorithms agree on all kinds" ~count:60
    (QCheck.pair arb_rows arb_rows)
    (fun (rs, ss) ->
       let mk (a, b) = (Value.Int a, Value.Int b) in
       let cat = mk_catalog (List.map mk rs) (List.map mk ss) in
       List.for_all
         (fun kind ->
            let reference, others = all_join_algorithms kind cat in
            List.for_all
              (fun (_, r) -> Exec.Executor.same_multiset reference r)
              others)
         [ Algebra.Inner; Algebra.Left_outer; Algebra.Semi; Algebra.Anti ])

let test_index_nl_agrees () =
  let cat = mk_catalog default_r default_s in
  ignore (Storage.Catalog.create_index cat ~table:"S" ~column:"a" ());
  let reference = run cat (Exec.Plan.Nested_loop
                             { kind = Algebra.Inner; pred = join_pred;
                               outer = scan "R"; inner = scan "S" }) in
  let inl = run cat (Exec.Plan.Index_nl
                       { kind = Algebra.Inner; outer = scan "R"; table = "S";
                         alias = "S"; index = "idx_S_a"; columns = [ "a" ];
                         outer_keys = [ Expr.col ~rel:"R" ~col:"a" ];
                         residual = Expr.ftrue }) in
  check_same "index-nl" reference inl

let test_index_scan_bounds () =
  let cat = mk_catalog default_r default_s in
  ignore (Storage.Catalog.create_index cat ~table:"S" ~column:"a" ());
  let via_index =
    run cat (Exec.Plan.Index_scan
               { table = "S"; alias = "S"; column = "a";
                 lo = Exec.Plan.Incl (Value.Int 2);
                 hi = Exec.Plan.Excl (Value.Int 4); filter = None })
  in
  let via_filter =
    run cat
      (Exec.Plan.Seq_scan
         { table = "S"; alias = "S";
           filter =
             Some (Expr.And
                     (Expr.Cmp (Expr.Ge, Expr.col ~rel:"S" ~col:"a", Expr.int 2),
                      Expr.Cmp (Expr.Lt, Expr.col ~rel:"S" ~col:"a", Expr.int 4))) })
  in
  check_same "index scan" via_filter via_index

let test_sort_order_and_stability () =
  let cat = mk_catalog default_r default_s in
  let r = run cat (sort_on "R" "a" (scan "R")) in
  let keys = Array.to_list r.Exec.Executor.rows |> List.map (fun t -> Tuple.get t 0) in
  let sorted = List.sort Value.compare keys in
  Alcotest.(check bool) "sorted (nulls first)" true
    (List.for_all2 Value.equal keys sorted);
  (* descending *)
  let d =
    run cat
      (Exec.Plan.Sort
         ([ { Exec.Plan.key = Expr.col ~rel:"R" ~col:"a"; descending = true } ],
          scan "R"))
  in
  let dkeys = Array.to_list d.Exec.Executor.rows |> List.map (fun t -> Tuple.get t 0) in
  Alcotest.(check bool) "descending" true
    (List.for_all2 Value.equal dkeys (List.rev sorted))

let test_aggregation () =
  let cat = mk_catalog default_r default_s in
  let mk_agg op =
    op { Exec.Plan.keys = [ (Expr.col ~rel:"S" ~col:"a", "a") ];
         aggs = [ (Expr.Count_star, "n");
                  (Expr.Sum (Expr.col ~rel:"S" ~col:"c"), "total") ];
         input = sort_on "S" "a" (scan "S") }
  in
  let hash = run cat (mk_agg (fun a -> Exec.Plan.Hash_agg a)) in
  let stream = run cat (mk_agg (fun a -> Exec.Plan.Stream_agg a)) in
  check_same "hash vs stream agg" hash stream;
  (* 4 groups: NULL, 2, 3, 4 *)
  Alcotest.(check int) "groups" 4 (Array.length hash.Exec.Executor.rows)

let test_scalar_agg_empty_input () =
  let cat = mk_catalog [] [] in
  let r =
    run cat
      (Exec.Plan.Hash_agg
         { keys = []; aggs = [ (Expr.Count_star, "n") ]; input = scan "R" })
  in
  Alcotest.(check int) "one row" 1 (Array.length r.Exec.Executor.rows);
  Alcotest.(check bool) "count 0" true
    (Value.equal (Tuple.get r.Exec.Executor.rows.(0) 0) (Value.Int 0));
  (* but a grouped aggregate over empty input returns no rows *)
  let g =
    run cat
      (Exec.Plan.Hash_agg
         { keys = [ (Expr.col ~rel:"R" ~col:"a", "a") ];
           aggs = [ (Expr.Count_star, "n") ]; input = scan "R" })
  in
  Alcotest.(check int) "no groups" 0 (Array.length g.Exec.Executor.rows)

let test_distinct () =
  let cat = mk_catalog default_r default_s in
  let r =
    run cat
      (Exec.Plan.Hash_distinct
         (Exec.Plan.Project ([ (Expr.col ~rel:"S" ~col:"a", "a") ], scan "S")))
  in
  Alcotest.(check int) "distinct keys" 4 (Array.length r.Exec.Executor.rows)

let test_filter_project () =
  let cat = mk_catalog default_r default_s in
  let r =
    run cat
      (Exec.Plan.Project
         ([ (Expr.Binop (Expr.Add, Expr.col ~rel:"R" ~col:"b", Expr.int 1), "b1") ],
          Exec.Plan.Filter
            (Expr.Cmp (Expr.Ge, Expr.col ~rel:"R" ~col:"a", Expr.int 2),
             scan "R")))
  in
  Alcotest.(check int) "filtered" 3 (Array.length r.Exec.Executor.rows);
  Alcotest.(check bool) "projected" true
    (Array.for_all
       (fun t -> match Tuple.get t 0 with Value.Int v -> v > 10 | _ -> false)
       r.Exec.Executor.rows)

let test_io_accounting () =
  let cat = Storage.Catalog.create () in
  let t = Storage.Catalog.create_table cat ~name:"Big" ~columns:[ ("k", Value.Tint) ] in
  for i = 0 to 9999 do
    Storage.Table.insert t (Tuple.of_list [ Value.Int i ])
  done;
  let pages = Storage.Table.page_count t in
  Alcotest.(check bool) "multi-page" true (pages > 1);
  let ctx = Exec.Context.create ~buffer_pages:1024 () in
  ignore (Exec.Executor.run ~ctx cat (scan "Big"));
  Alcotest.(check int) "scan reads all pages once" pages ctx.Exec.Context.seq_io;
  (* second scan through the same context: buffer hits, no new I/O *)
  ignore (Exec.Executor.run ~ctx cat (scan "Big"));
  Alcotest.(check int) "rescan is free with big buffer" pages ctx.Exec.Context.seq_io;
  (* tiny buffer: rescan faults again *)
  let ctx2 = Exec.Context.create ~buffer_pages:2 () in
  ignore (Exec.Executor.run ~ctx:ctx2 cat (scan "Big"));
  ignore (Exec.Executor.run ~ctx:ctx2 cat (scan "Big"));
  Alcotest.(check int) "rescan faults with tiny buffer" (2 * pages) ctx2.Exec.Context.seq_io

let test_materialize_caches () =
  let cat = mk_catalog default_r default_s in
  let ctx = Exec.Context.create ~buffer_pages:2 () in
  let inner = Exec.Plan.Materialize (scan "S") in
  ignore
    (Exec.Executor.run ~ctx cat
       (Exec.Plan.Nested_loop
          { kind = Algebra.Inner; pred = join_pred; outer = scan "R"; inner }));
  (* S scanned exactly once despite 5 outer tuples *)
  Alcotest.(check int) "materialized inner scanned once" 2 ctx.Exec.Context.seq_io

let () =
  Alcotest.run "exec"
    [ ("joins",
       [ Alcotest.test_case "inner agree" `Quick (test_join_kind Algebra.Inner);
         Alcotest.test_case "left outer agree" `Quick (test_join_kind Algebra.Left_outer);
         Alcotest.test_case "semi agree" `Quick (test_join_kind Algebra.Semi);
         Alcotest.test_case "anti agree" `Quick (test_join_kind Algebra.Anti);
         Alcotest.test_case "inner content" `Quick test_inner_join_content;
         Alcotest.test_case "left outer content" `Quick test_left_outer_content;
         Alcotest.test_case "semi/anti content" `Quick test_semi_anti_content;
         Alcotest.test_case "index-nl agrees" `Quick test_index_nl_agrees;
         QCheck_alcotest.to_alcotest prop_join_agreement ]);
      ("scans",
       [ Alcotest.test_case "index scan bounds" `Quick test_index_scan_bounds ]);
      ("sort",
       [ Alcotest.test_case "order and direction" `Quick test_sort_order_and_stability ]);
      ("aggregate",
       [ Alcotest.test_case "hash vs stream" `Quick test_aggregation;
         Alcotest.test_case "scalar agg on empty" `Quick test_scalar_agg_empty_input;
         Alcotest.test_case "distinct" `Quick test_distinct ]);
      ("scalar ops",
       [ Alcotest.test_case "filter + project" `Quick test_filter_project ]);
      ("io",
       [ Alcotest.test_case "page accounting" `Quick test_io_accounting;
         Alcotest.test_case "materialize caches" `Quick test_materialize_caches ]) ]
