(* SQL front-end tests: lexing, parsing, binding, and full end-to-end runs
   through the pipeline, checked against the tuple-iteration interpreter. *)

open Relalg

let w = lazy (Workload.Schemas.emp_dept ~emps:300 ~depts:15 ~empty_dept_frac:0.2 ())

let cat () = (Lazy.force w).Workload.Schemas.cat
let db () = (Lazy.force w).Workload.Schemas.db

let bind sql = Sql.Binder.of_string (cat ()) sql

let run sql =
  let block = bind sql in
  fst (Core.Pipeline.run (cat ()) (db ()) block)

let interp sql = Rewrite.Qgm_eval.run (cat ()) (bind sql)

let check_against_interp name sql =
  let a = run sql and b = interp sql in
  Alcotest.(check bool)
    (Printf.sprintf "%s (%d rows)" name (Array.length b.Exec.Executor.rows))
    true
    (Exec.Executor.same_multiset a b)

(* ---------- lexer ---------- *)

let test_lexer () =
  let toks = Sql.Lexer.tokenize "SELECT a, 'it''s' FROM t WHERE x <= 1.5" in
  Alcotest.(check int) "token count" 11 (List.length toks);
  (match toks with
   | Sql.Lexer.KW "SELECT" :: Sql.Lexer.IDENT "a" :: Sql.Lexer.SYM ","
     :: Sql.Lexer.STRING "it's" :: _ -> ()
   | _ -> Alcotest.fail "unexpected tokens");
  Alcotest.check_raises "bad char" (Sql.Lexer.Error "unexpected character ?")
    (fun () -> ignore (Sql.Lexer.tokenize "SELECT ?"))

(* ---------- parser ---------- *)

let test_parser_shapes () =
  let q = Sql.Parser.parse_query
      "SELECT DISTINCT e.name AS n FROM Emp e, Dept d \
       WHERE e.did = d.did AND e.sal > 100 ORDER BY e.name DESC"
  in
  Alcotest.(check bool) "distinct" true q.Sql.Ast.distinct;
  Alcotest.(check int) "items" 1 (List.length q.Sql.Ast.items);
  Alcotest.(check int) "from" 2 (List.length q.Sql.Ast.from);
  Alcotest.(check int) "order" 1 (List.length q.Sql.Ast.order_by);
  let g = Sql.Parser.parse_query
      "SELECT did, COUNT(*), SUM(sal + 1) FROM Emp GROUP BY did HAVING COUNT(*) > 2"
  in
  Alcotest.(check int) "group keys" 1 (List.length g.Sql.Ast.group_by);
  Alcotest.(check bool) "having present" true (g.Sql.Ast.having <> None)

let test_parser_subqueries () =
  let q = Sql.Parser.parse_query
      "SELECT name FROM Emp WHERE did IN (SELECT did FROM Dept WHERE loc = 'Denver')"
  in
  (match q.Sql.Ast.where with
   | Some (Sql.Ast.In_query (_, _)) -> ()
   | _ -> Alcotest.fail "expected IN subquery");
  let q2 = Sql.Parser.parse_query
      "SELECT name FROM Dept D WHERE NOT EXISTS (SELECT * FROM Emp E WHERE E.did = D.did)"
  in
  (match q2.Sql.Ast.where with
   | Some (Sql.Ast.Exists (false, _)) -> ()
   | _ -> Alcotest.fail "expected NOT EXISTS")

let test_parser_errors () =
  let bad sql =
    match Sql.Parser.parse sql with
    | exception Sql.Parser.Error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ sql)
  in
  bad "SELECT";
  bad "SELECT a FROM";
  bad "SELECT a FROM t WHERE";
  bad "FROM t SELECT a"

(* ---------- binder ---------- *)

let test_binder_resolution () =
  let b = bind "SELECT name, sal FROM Emp WHERE age < 30" in
  Alcotest.(check int) "select" 2 (List.length b.Rewrite.Qgm.select);
  Alcotest.(check int) "where" 1 (List.length b.Rewrite.Qgm.where);
  (* unqualified names resolved to the Emp alias *)
  (match b.Rewrite.Qgm.select with
   | (Expr.Col { Expr.rel = "Emp"; col = "name" }, "name") :: _ -> ()
   | _ -> Alcotest.fail "unexpected resolution")

let test_binder_ambiguity_and_errors () =
  let fails sql =
    match bind sql with
    | exception Sql.Binder.Error _ -> ()
    | _ -> Alcotest.fail ("should not bind: " ^ sql)
  in
  (* 'did' exists in both Emp and Dept *)
  fails "SELECT did FROM Emp, Dept";
  fails "SELECT nosuch FROM Emp";
  fails "SELECT * FROM NoTable";
  fails "SELECT sal FROM Emp GROUP BY did"

let test_binder_views () =
  let block =
    Sql.Binder.of_string (cat ())
      "CREATE VIEW denver AS SELECT did FROM Dept WHERE loc = 'Denver'; \
       SELECT * FROM denver"
  in
  match block.Rewrite.Qgm.from with
  | [ Rewrite.Qgm.Derived { alias = "denver"; _ } ] -> ()
  | _ -> Alcotest.fail "expected derived view source"

(* ---------- end to end ---------- *)

let test_e2e_simple () =
  check_against_interp "filter"
    "SELECT name, sal FROM Emp WHERE age < 30 AND sal > 90000"

let test_e2e_join () =
  check_against_interp "join"
    "SELECT E.name, D.loc FROM Emp E, Dept D WHERE E.did = D.did AND D.budget > 200000"

let test_e2e_group () =
  check_against_interp "group"
    "SELECT did, COUNT(*) AS n, SUM(sal) AS total FROM Emp GROUP BY did HAVING COUNT(*) > 3"

let test_e2e_nested_in () =
  check_against_interp "nested IN"
    "SELECT name FROM Emp WHERE did IN (SELECT did FROM Dept WHERE loc = 'Denver')"

let test_e2e_correlated_exists () =
  check_against_interp "correlated EXISTS"
    "SELECT D.name FROM Dept D WHERE EXISTS \
       (SELECT * FROM Emp E WHERE E.did = D.did AND E.sal > 150000)"

let test_e2e_scalar_subquery () =
  check_against_interp "paper count-bug query"
    "SELECT D.name FROM Dept D WHERE D.num_machines >= \
       (SELECT COUNT(*) FROM Emp E WHERE D.name = E.dept_name)"

let test_e2e_outerjoin () =
  check_against_interp "left outer join"
    "SELECT D.name, E.name FROM Dept D LEFT OUTER JOIN Emp E \
     ON D.did = E.did AND E.sal > 150000"

let test_e2e_view () =
  check_against_interp "view + merge"
    "CREATE VIEW rich AS SELECT name, did, sal FROM Emp WHERE sal > 120000; \
     SELECT R.name, D.loc FROM rich R, Dept D WHERE R.did = D.did"

let test_e2e_order_by () =
  let r = run "SELECT name, sal FROM Emp WHERE age < 25 ORDER BY sal DESC" in
  let sals =
    Array.to_list r.Exec.Executor.rows |> List.map (fun t -> Tuple.get t 1)
  in
  Alcotest.(check bool) "descending" true
    (List.for_all2 Value.equal sals
       (List.sort (fun a b -> Value.compare b a) sals))

let test_e2e_explain () =
  let block = bind "SELECT E.name FROM Emp E, Dept D WHERE E.did = D.did" in
  let text = Core.Pipeline.explain (cat ()) (db ()) block in
  Alcotest.(check bool) "mentions a join" true
    (let lower = String.lowercase_ascii text in
     let contains s =
       let n = String.length lower and m = String.length s in
       let rec go i = i + m <= n && (String.sub lower i m = s || go (i + 1)) in
       go 0
     in
     contains "join");
  Alcotest.(check bool) "has cost" true
    (String.length text > 0 && String.length text < 10_000)


let test_e2e_derived_table () =
  check_against_interp "derived table in FROM"
    "SELECT T.did, T.n FROM \
       (SELECT did, COUNT(*) AS n FROM Emp GROUP BY did) T \
     WHERE T.n > 10"

let test_e2e_distinct () =
  check_against_interp "distinct projection"
    "SELECT DISTINCT loc FROM Dept"

let test_e2e_arithmetic () =
  check_against_interp "arithmetic in select and where"
    "SELECT eid, sal / 1000 AS ksal FROM Emp WHERE sal % 2 = 0 AND sal + 1 > 50000"

let test_e2e_star_db () =
  (* the star demo database through SQL *)
  let w = Workload.Schemas.star ~fact_rows:2000 ~dim_rows:20 ~dims:2 () in
  let sql =
    "SELECT D.label, SUM(S.amount) AS total \
     FROM Sales S, Dim1 D WHERE S.dim1_id = D.id AND D.weight <= 50 \
     GROUP BY D.label"
  in
  let block = Sql.Binder.of_string w.Workload.Schemas.cat sql in
  let planned, _ =
    Core.Pipeline.run w.Workload.Schemas.cat w.Workload.Schemas.db block
  in
  let truth = Rewrite.Qgm_eval.run w.Workload.Schemas.cat block in
  Alcotest.(check bool) "star aggregation" true
    (Exec.Executor.same_multiset planned truth)

let test_e2e_is_null () =
  check_against_interp "IS NOT NULL"
    "SELECT eid FROM Emp WHERE name IS NOT NULL AND age IS NULL"


let test_e2e_union () =
  let sql_union =
    "SELECT name FROM Emp WHERE sal > 170000 \
     UNION SELECT name FROM Emp WHERE age < 23"
  in
  let q = Sql.Binder.query_of_string (cat ()) sql_union in
  let planned, reports = Core.Pipeline.run_query (cat ()) (db ()) q in
  let truth = Rewrite.Qgm_eval.run_query (cat ()) q in
  Alcotest.(check int) "two block reports" 2 (List.length reports);
  Alcotest.(check bool) "union equivalent" true
    (Exec.Executor.same_multiset planned truth);
  (* UNION deduplicates; UNION ALL does not *)
  let q_all =
    Sql.Binder.query_of_string (cat ())
      "SELECT name FROM Emp WHERE sal > 170000 \
       UNION ALL SELECT name FROM Emp WHERE sal > 170000"
  in
  let all_rows, _ = Core.Pipeline.run_query (cat ()) (db ()) q_all in
  let q_dedup =
    Sql.Binder.query_of_string (cat ())
      "SELECT name FROM Emp WHERE sal > 170000 \
       UNION SELECT name FROM Emp WHERE sal > 170000"
  in
  let dedup_rows, _ = Core.Pipeline.run_query (cat ()) (db ()) q_dedup in
  Alcotest.(check bool) "ALL keeps duplicates" true
    (Array.length all_rows.Exec.Executor.rows
     > Array.length dedup_rows.Exec.Executor.rows);
  (* arity mismatch rejected at binding *)
  match
    Sql.Binder.query_of_string (cat ())
      "SELECT name FROM Emp UNION SELECT name, sal FROM Emp"
  with
  | exception Sql.Binder.Error _ -> ()
  | _ -> Alcotest.fail "arity mismatch should not bind"

let () =
  Alcotest.run "sql"
    [ ("lexer", [ Alcotest.test_case "tokens" `Quick test_lexer ]);
      ("parser",
       [ Alcotest.test_case "shapes" `Quick test_parser_shapes;
         Alcotest.test_case "subqueries" `Quick test_parser_subqueries;
         Alcotest.test_case "errors" `Quick test_parser_errors ]);
      ("binder",
       [ Alcotest.test_case "resolution" `Quick test_binder_resolution;
         Alcotest.test_case "errors" `Quick test_binder_ambiguity_and_errors;
         Alcotest.test_case "views" `Quick test_binder_views ]);
      ("end-to-end",
       [ Alcotest.test_case "filter" `Quick test_e2e_simple;
         Alcotest.test_case "join" `Quick test_e2e_join;
         Alcotest.test_case "group" `Quick test_e2e_group;
         Alcotest.test_case "nested IN" `Quick test_e2e_nested_in;
         Alcotest.test_case "correlated EXISTS" `Quick test_e2e_correlated_exists;
         Alcotest.test_case "scalar subquery" `Quick test_e2e_scalar_subquery;
         Alcotest.test_case "left outer join" `Quick test_e2e_outerjoin;
         Alcotest.test_case "view" `Quick test_e2e_view;
         Alcotest.test_case "order by" `Quick test_e2e_order_by;
         Alcotest.test_case "derived table" `Quick test_e2e_derived_table;
         Alcotest.test_case "distinct" `Quick test_e2e_distinct;
         Alcotest.test_case "arithmetic" `Quick test_e2e_arithmetic;
         Alcotest.test_case "star schema" `Quick test_e2e_star_db;
         Alcotest.test_case "is null" `Quick test_e2e_is_null;
         Alcotest.test_case "union" `Quick test_e2e_union;
         Alcotest.test_case "explain" `Quick test_e2e_explain ]) ]
