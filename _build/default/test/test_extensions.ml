(* Extensions tests: expensive user-defined predicates (rank ordering,
   property DP) and materialized-view matching. *)

open Relalg
module Ep = Extensions.Expensive_pred

let mk name sel cost = { Ep.p_name = name; sel; cost }

(* ---------- expensive predicates ---------- *)

let test_rank_order_optimal_no_joins () =
  (* exhaustive check on fixed predicate sets *)
  let sets =
    [ [ mk "cheap_selective" 0.1 1.; mk "pricey_loose" 0.9 50.;
        mk "mid" 0.5 10. ];
      [ mk "a" 0.99 0.1; mk "b" 0.01 100.; mk "c" 0.3 5.; mk "d" 0.7 2. ] ]
  in
  List.iter
    (fun ps ->
       let ranked_cost = Ep.sequence_cost ~n:10000. (Ep.order_by_rank ps) in
       let _, best_cost = Ep.optimal_order_exhaustive ~n:10000. ps in
       Alcotest.(check (float 1e-6)) "rank order is optimal" best_cost ranked_cost)
    sets

let prop_rank_optimal =
  QCheck.Test.make ~name:"rank ordering optimal for any predicate set"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 1 5)
              (pair (float_range 0.01 0.99) (float_range 0.1 20.)))
    (fun specs ->
       let ps = List.mapi (fun i (s, c) -> mk (string_of_int i) s c) specs in
       let ranked = Ep.sequence_cost ~n:1000. (Ep.order_by_rank ps) in
       let _, best = Ep.optimal_order_exhaustive ~n:1000. ps in
       ranked <= best +. 1e-6)

let test_pushdown_suboptimal_for_expensive () =
  (* an expensive loose predicate should run after the reducing join *)
  let ps = [ mk "image_match" 0.9 100. ] in
  let js = [ { Ep.j_name = "j"; j_sel = 0.001; j_cost = 0.01; j_card = 100. } ] in
  let pd = Ep.interleaving_cost ~n:1000. (Ep.pushdown_always ps js) in
  let _, opt = Ep.property_dp ~n:1000. ps js in
  Alcotest.(check bool)
    (Printf.sprintf "pushdown %.0f > optimal %.0f" pd opt)
    true (pd > opt *. 2.)

let test_property_dp_never_worse () =
  let check ps js =
    let n = 1000. in
    let _, opt = Ep.property_dp ~n ps js in
    let pd = Ep.interleaving_cost ~n (Ep.pushdown_always ps js) in
    let ri = Ep.interleaving_cost ~n (Ep.rank_interleave ps js) in
    Alcotest.(check bool) "dp <= pushdown" true (opt <= pd +. 1e-6);
    Alcotest.(check bool) "dp <= rank-interleave" true (opt <= ri +. 1e-6)
  in
  check
    [ mk "p1" 0.5 5.; mk "p2" 0.05 0.5 ]
    [ { Ep.j_name = "j1"; j_sel = 0.01; j_cost = 0.02; j_card = 50. };
      { Ep.j_name = "j2"; j_sel = 0.1; j_cost = 0.02; j_card = 10. } ]

let prop_dp_dominates =
  QCheck.Test.make ~name:"property DP dominates both heuristics" ~count:100
    QCheck.(pair
              (list_of_size Gen.(int_range 1 4)
                 (pair (float_range 0.01 0.99) (float_range 0.1 30.)))
              (list_of_size Gen.(int_range 0 3)
                 (pair (float_range 0.001 0.5) (float_range 1. 50.))))
    (fun (pspecs, jspecs) ->
       let ps = List.mapi (fun i (s, c) -> mk (string_of_int i) s c) pspecs in
       let js =
         List.mapi
           (fun i (s, card) ->
              { Ep.j_name = string_of_int i; j_sel = s; j_cost = 0.01;
                j_card = card })
           jspecs
       in
       let n = 1000. in
       let _, opt = Ep.property_dp ~n ps js in
       opt <= Ep.interleaving_cost ~n (Ep.pushdown_always ps js) +. 1e-6
       && opt <= Ep.interleaving_cost ~n (Ep.rank_interleave ps js) +. 1e-6)

let test_rank_interleave_can_be_suboptimal () =
  (* the [29] shortcoming fixed by [8]: exhibit an instance where the rank
     heuristic with joins is strictly worse than the DP *)
  let ps = [ mk "p" 0.5 1.0 ] in
  let js =
    [ { Ep.j_name = "blowup"; j_sel = 1.0; j_cost = 0.001; j_card = 20. };
      { Ep.j_name = "reduce"; j_sel = 0.001; j_cost = 0.001; j_card = 1. } ]
  in
  let n = 1000. in
  let ri = Ep.interleaving_cost ~n (Ep.rank_interleave ps js) in
  let _, opt = Ep.property_dp ~n ps js in
  Alcotest.(check bool)
    (Printf.sprintf "rank-interleave %.1f vs dp %.1f" ri opt)
    true (opt <= ri)

(* ---------- materialized views ---------- *)

let spj cat rels preds projections =
  Systemr.Spj.make
    ~relations:
      (List.map
         (fun (alias, table) ->
            { Systemr.Spj.alias; table;
              schema =
                Schema.requalify
                  (Storage.Catalog.table cat table).Storage.Table.schema
                  ~rel:alias })
         rels)
    ~predicates:preds ~projections ()

let col r c = Expr.col ~rel:r ~col:c
let eq a b = Expr.Cmp (Expr.Eq, a, b)

let test_matview_rewrite_and_equivalence () =
  let w = Workload.Schemas.emp_dept ~emps:800 ~depts:30 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  (* view: young employees with their department *)
  let vdef =
    spj cat [ ("E", "Emp"); ("D", "Dept") ]
      [ eq (col "E" "did") (col "D" "did");
        Expr.Cmp (Expr.Lt, col "E" "age", Expr.int 40) ]
      (Some [ (col "E" "eid", "eid"); (col "E" "sal", "sal");
              (col "E" "age", "age"); (col "D" "loc", "loc") ])
  in
  let v = Extensions.Matview.materialize cat db ~name:"young_emps" vdef in
  (* query: subsumed by the view, with an extra filter *)
  let q =
    spj cat [ ("E", "Emp"); ("D", "Dept") ]
      [ eq (col "E" "did") (col "D" "did");
        Expr.Cmp (Expr.Lt, col "E" "age", Expr.int 40);
        eq (col "D" "loc") (Expr.str "Denver") ]
      (Some [ (col "E" "eid", "eid"); (col "E" "sal", "sal") ])
  in
  (match Extensions.Matview.rewrite v q with
   | None -> Alcotest.fail "expected a rewrite"
   | Some q' ->
     let q' = Extensions.Matview.resolve_schemas cat q' in
     Alcotest.(check int) "single relation" 1
       (List.length q'.Systemr.Spj.relations);
     (* execute both: same answers *)
     let run query =
       let r = Systemr.Join_order.optimize cat db query in
       Exec.Executor.run cat r.Systemr.Join_order.best.Systemr.Candidate.plan
     in
     Alcotest.(check bool) "equivalent" true
       (Exec.Executor.same_multiset (run q) (run q')));
  (* cost-based choice picks the view here (it is much smaller) *)
  let choice = Extensions.Matview.optimize_with_views cat db [ v ] q in
  Alcotest.(check (option string)) "view chosen" (Some "young_emps")
    choice.Extensions.Matview.used_view

let test_matview_no_false_match () =
  let w = Workload.Schemas.emp_dept ~emps:300 ~depts:10 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let vdef =
    spj cat [ ("E", "Emp") ]
      [ Expr.Cmp (Expr.Lt, col "E" "age", Expr.int 30) ]
      (Some [ (col "E" "eid", "eid") ])
  in
  let v = Extensions.Matview.materialize cat db ~name:"very_young" vdef in
  (* query misses the view's predicate: must not match *)
  let q1 =
    spj cat [ ("E", "Emp") ] [] (Some [ (col "E" "eid", "eid") ])
  in
  Alcotest.(check bool) "predicate mismatch rejected" true
    (Extensions.Matview.rewrite v q1 = None);
  (* query needs a column the view does not store: must not match *)
  let q2 =
    spj cat [ ("E", "Emp") ]
      [ Expr.Cmp (Expr.Lt, col "E" "age", Expr.int 30) ]
      (Some [ (col "E" "sal", "sal") ])
  in
  Alcotest.(check bool) "missing column rejected" true
    (Extensions.Matview.rewrite v q2 = None)

(* ---------- parametric plans (Section 7.4) ---------- *)

let parametric_setup () =
  let w = Workload.Schemas.emp_dept ~emps:5000 ~depts:50 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let make_query v =
    Systemr.Spj.make
      ~relations:
        [ { Systemr.Spj.alias = "E"; table = "Emp";
            schema =
              Schema.requalify
                (Storage.Catalog.table cat "Emp").Storage.Table.schema ~rel:"E" } ]
      ~predicates:[ Expr.Cmp (Expr.Lt, col "E" "eid", Expr.Const v) ] ()
  in
  (cat, db, make_query)

let test_parametric_shapes_and_dispatch () =
  let cat, db, make_query = parametric_setup () in
  let pp =
    Extensions.Parametric.optimize cat db
      ~param_values:(List.map (fun i -> Value.Int i) [ 50; 1000; 4500 ])
      make_query
  in
  (* selective end uses the clustered index, wide end the seq scan *)
  Alcotest.(check int) "two shapes" 2 pp.Extensions.Parametric.shapes;
  (match Extensions.Parametric.plan_for pp (Value.Int 60) with
   | Exec.Plan.Index_scan _ -> ()
   | p -> Alcotest.fail ("expected index scan, got " ^ Exec.Plan.to_string p));
  (match Extensions.Parametric.plan_for pp (Value.Int 4600) with
   | Exec.Plan.Seq_scan _ -> ()
   | p -> Alcotest.fail ("expected seq scan, got " ^ Exec.Plan.to_string p));
  (* dispatch clamps below the lowest sample *)
  (match Extensions.Parametric.plan_for pp (Value.Int 1) with
   | Exec.Plan.Index_scan _ -> ()
   | _ -> Alcotest.fail "expected index scan at the low extreme")

let test_parametric_rebind_correct () =
  let cat, db, make_query = parametric_setup () in
  let assumed = Value.Int 1000 and actual = Value.Int 200 in
  let static = Extensions.Parametric.static_plan cat db make_query ~assumed in
  let rebound = Extensions.Parametric.rebind ~assumed ~actual static in
  let direct =
    (Systemr.Join_order.optimize cat db (make_query actual))
      .Systemr.Join_order.best.Systemr.Candidate.plan
  in
  let run p = Exec.Executor.run cat p in
  Alcotest.(check bool) "rebound plan computes the right answer" true
    (Exec.Executor.same_multiset (run rebound) (run direct));
  Alcotest.(check int) "row count = eids below 200" 200
    (Array.length (run rebound).Exec.Executor.rows)

let test_parametric_shape_blanking () =
  (* two instantiations of the same strategy share a shape key *)
  let mk v =
    Exec.Plan.Seq_scan
      { table = "T"; alias = "T";
        filter = Some (Expr.Cmp (Expr.Lt, col "T" "x", Expr.int v)) }
  in
  Alcotest.(check string) "same shape"
    (Extensions.Parametric.shape_key (mk 1))
    (Extensions.Parametric.shape_key (mk 99));
  Alcotest.(check bool) "different operators differ" true
    (Extensions.Parametric.shape_key (mk 1)
     <> Extensions.Parametric.shape_key
          (Exec.Plan.Seq_scan { table = "T"; alias = "T"; filter = None }))

let () =
  Alcotest.run "extensions"
    [ ("expensive-predicates",
       [ Alcotest.test_case "rank optimal (no joins)" `Quick
           test_rank_order_optimal_no_joins;
         QCheck_alcotest.to_alcotest prop_rank_optimal;
         Alcotest.test_case "pushdown suboptimal" `Quick
           test_pushdown_suboptimal_for_expensive;
         Alcotest.test_case "dp never worse" `Quick test_property_dp_never_worse;
         QCheck_alcotest.to_alcotest prop_dp_dominates;
         Alcotest.test_case "rank interleave suboptimal" `Quick
           test_rank_interleave_can_be_suboptimal ]);
      ("materialized-views",
       [ Alcotest.test_case "rewrite + equivalence + choice" `Quick
           test_matview_rewrite_and_equivalence;
         Alcotest.test_case "no false match" `Quick test_matview_no_false_match ]);
      ("parametric",
       [ Alcotest.test_case "shapes + dispatch" `Quick
           test_parametric_shapes_and_dispatch;
         Alcotest.test_case "rebind correctness" `Quick
           test_parametric_rebind_correct;
         Alcotest.test_case "shape blanking" `Quick
           test_parametric_shape_blanking ]) ]
