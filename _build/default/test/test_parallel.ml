(* Two-phase parallel optimization tests: segment decomposition, speedup
   behaviour, communication-aware partitioning. *)

open Relalg

let star_plan () =
  (* a 3-dim star join plan with hash joins (build = dimensions) *)
  let w = Workload.Schemas.star ~fact_rows:20000 ~dim_rows:50 ~dims:3 () in
  let scan t = Exec.Plan.Seq_scan { table = t; alias = t; filter = None } in
  let jp dim =
    ( { Expr.rel = "Sales"; col = String.lowercase_ascii dim ^ "_id" },
      { Expr.rel = dim; col = "id" } )
  in
  let plan =
    List.fold_left
      (fun acc dim ->
         Exec.Plan.Hash_join
           { kind = Algebra.Inner; pairs = [ jp dim ]; residual = Expr.ftrue;
             left = acc; right = scan dim })
      (scan "Sales") w.Workload.Schemas.dims
  in
  (w, plan)

let test_decomposition () =
  let w, plan = star_plan () in
  let segs =
    Parallel.Two_phase.decompose Parallel.Two_phase.default_config
      w.Workload.Schemas.cat w.Workload.Schemas.db plan
  in
  (* 3 build segments + 1 probe pipeline *)
  Alcotest.(check int) "segments" 4 (List.length segs);
  let final = List.nth segs 3 in
  Alcotest.(check int) "probe depends on all builds" 3
    (List.length final.Parallel.Two_phase.deps);
  Alcotest.(check bool) "work positive" true
    (List.for_all (fun s -> s.Parallel.Two_phase.work > 0.) segs)

let test_speedup_monotone_and_saturating () =
  let w, plan = star_plan () in
  let response p =
    (Parallel.Two_phase.run
       ~config:{ Parallel.Two_phase.default_config with processors = p }
       w.Workload.Schemas.cat w.Workload.Schemas.db plan).Parallel.Two_phase.response_time
  in
  let r1 = response 1 and r4 = response 4 and r16 = response 16
  and r256 = response 256 in
  Alcotest.(check bool) "more processors never slower" true
    (r4 <= r1 +. 1e-9 && r16 <= r4 +. 1e-9 && r256 <= r16 +. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "speedup at 4: %.2f" (r1 /. r4))
    true (r1 /. r4 > 1.5);
  (* parallelism caps: speedup saturates well below 256x *)
  Alcotest.(check bool)
    (Printf.sprintf "saturates: %.1fx at 256 procs" (r1 /. r256))
    true (r1 /. r256 < 256.)

let test_parallel_increases_total_work_not_response () =
  (* response <= work at 1 processor; with p processors response shrinks
     while total work stays the same (the paper's footnote 5) *)
  let w, plan = star_plan () in
  let s1 =
    Parallel.Two_phase.run
      ~config:{ Parallel.Two_phase.default_config with processors = 1 }
      w.Workload.Schemas.cat w.Workload.Schemas.db plan
  in
  let s8 =
    Parallel.Two_phase.run
      ~config:{ Parallel.Two_phase.default_config with processors = 8 }
      w.Workload.Schemas.cat w.Workload.Schemas.db plan
  in
  Alcotest.(check (float 1e-6)) "same total work"
    s1.Parallel.Two_phase.total_work s8.Parallel.Two_phase.total_work;
  Alcotest.(check bool) "response shrinks" true
    (s8.Parallel.Two_phase.response_time < s1.Parallel.Two_phase.response_time)

let test_partition_awareness_helps () =
  (* chain of hash joins all on the same key: partition-aware phase 2 reuses
     the partitioning; the oblivious one repartitions at every join *)
  let p = Workload.Schemas.join_shape ~rows:5000 ~shape:Workload.Schemas.Star_q ~n:4 () in
  let scan t = Exec.Plan.Seq_scan { table = t; alias = t; filter = None } in
  let pair l r = ({ Expr.rel = l; col = "a" }, { Expr.rel = r; col = "a" }) in
  let plan =
    Exec.Plan.Hash_join
      { kind = Algebra.Inner; pairs = [ pair "R1" "R4" ]; residual = Expr.ftrue;
        left =
          Exec.Plan.Hash_join
            { kind = Algebra.Inner; pairs = [ pair "R1" "R3" ];
              residual = Expr.ftrue;
              left =
                Exec.Plan.Hash_join
                  { kind = Algebra.Inner; pairs = [ pair "R1" "R2" ];
                    residual = Expr.ftrue; left = scan "R1"; right = scan "R2" };
              right = scan "R3" };
        right = scan "R4" }
  in
  let run aware =
    Parallel.Two_phase.run
      ~config:
        { Parallel.Two_phase.default_config with
          partition_aware = aware; processors = 8 }
      p.Workload.Schemas.jcat p.Workload.Schemas.jdb plan
  in
  let aware = run true and naive = run false in
  Alcotest.(check bool)
    (Printf.sprintf "comm: aware %.1f < naive %.1f"
       aware.Parallel.Two_phase.comm_cost naive.Parallel.Two_phase.comm_cost)
    true
    (aware.Parallel.Two_phase.comm_cost < naive.Parallel.Two_phase.comm_cost);
  Alcotest.(check bool) "response no worse" true
    (aware.Parallel.Two_phase.response_time
     <= naive.Parallel.Two_phase.response_time +. 1e-9)

let test_blocking_operators_segment () =
  let w, _ = star_plan () in
  let scan = Exec.Plan.Seq_scan { table = "Sales"; alias = "Sales"; filter = None } in
  let sorted =
    Exec.Plan.Sort
      ([ { Exec.Plan.key = Expr.col ~rel:"Sales" ~col:"amount";
           descending = false } ], scan)
  in
  let segs =
    Parallel.Two_phase.decompose Parallel.Two_phase.default_config
      w.Workload.Schemas.cat w.Workload.Schemas.db sorted
  in
  (* scan pipeline closed by the sort; sort is its own segment *)
  Alcotest.(check int) "two segments" 2 (List.length segs)

let () =
  Alcotest.run "parallel"
    [ ("two-phase",
       [ Alcotest.test_case "decomposition" `Quick test_decomposition;
         Alcotest.test_case "speedup monotone + saturating" `Quick
           test_speedup_monotone_and_saturating;
         Alcotest.test_case "work vs response" `Quick
           test_parallel_increases_total_work_not_response;
         Alcotest.test_case "partition awareness" `Quick
           test_partition_awareness_helps;
         Alcotest.test_case "blocking operators" `Quick
           test_blocking_operators_segment ]) ]
