lib/exec/plan.ml: Algebra Expr Fmt List Relalg Schema Storage Typing Value
