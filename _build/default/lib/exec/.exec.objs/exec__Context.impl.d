lib/exec/context.ml: Fmt Storage
