lib/exec/context.mli: Format Storage
