lib/exec/executor.ml: Algebra Array Context Expr Fmt Hashtbl List Option Plan Printf Relalg Schema Storage Tuple Value
