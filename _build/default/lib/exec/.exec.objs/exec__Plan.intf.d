lib/exec/plan.mli: Algebra Expr Format Relalg Schema Storage Value
