lib/exec/executor.mli: Context Format Plan Relalg Schema Storage Tuple
