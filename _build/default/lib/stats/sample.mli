(** Sampling-based statistics construction (Section 5.1.2, [48,11]). *)

(** Uniform sample without replacement of the given fraction (at least one
    element). *)
val uniform_sample :
  Random.State.t -> fraction:float -> float array -> float array

(** Scale a histogram's counts by [factor] (sample → population). *)
val scale_histogram : Histogram.t -> factor:float -> Histogram.t

type kind = Equi_width | Equi_depth | Compressed

val kind_name : kind -> string

(** Build a histogram of the given bucketization. *)
val build : kind -> buckets:int -> float array -> Histogram.t

(** Histogram built from a sample, counts scaled to the population. *)
val sampled_histogram :
  Random.State.t -> kind -> buckets:int -> fraction:float -> float array ->
  Histogram.t

(** Mean absolute selectivity error over random range queries against the
    true data — the accuracy metric of experiments E7/E8. *)
val range_query_error :
  Random.State.t -> queries:int -> float array -> Histogram.t -> float
