(** Two-dimensional histograms (Section 5.1.1, [45,51]): the joint
    distribution of a column pair, capturing the correlations the
    single-column independence assumption misses (experiment E10).
    Equi-depth cut points per dimension; uniform spread within cells. *)

type t = {
  x_bounds : float array;  (** kx+1 ascending cut points *)
  y_bounds : float array;
  counts : float array array;  (** kx x ky joint cell counts *)
  total : float;
}

(** Build over paired columns.  @raise Invalid_argument on length
    mismatch. *)
val build : ?buckets:int -> float array -> float array -> t

(** Selectivity of [xlo <= X <= xhi AND ylo <= Y <= yhi] (all bounds
    optional). *)
val est_range :
  t -> ?xlo:float -> ?xhi:float -> ?ylo:float -> ?yhi:float -> unit -> float

val pp : Format.formatter -> t -> unit
