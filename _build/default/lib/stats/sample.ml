(* Sampling-based statistics construction (Section 5.1.2, [48,11]):
   draw a uniform sample of a column, build the histogram on the sample and
   scale counts up to the full table. *)

let uniform_sample (rng : Random.State.t) ~fraction (values : float array) :
  float array =
  let n = Array.length values in
  let k = max 1 (int_of_float (fraction *. float_of_int n)) in
  if k >= n then Array.copy values
  else begin
    (* partial Fisher-Yates: the first k positions of a shuffle *)
    let a = Array.copy values in
    for i = 0 to k - 1 do
      let j = i + Random.State.int rng (n - i) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.sub a 0 k
  end

let scale_histogram (h : Histogram.t) ~factor : Histogram.t =
  let open Histogram in
  { total = h.total *. factor;
    singletons = Array.map (fun (v, c) -> (v, c *. factor)) h.singletons;
    buckets =
      Array.map
        (fun b -> { b with count = b.count *. factor })
        h.buckets }

type kind = Equi_width | Equi_depth | Compressed

let kind_name = function
  | Equi_width -> "equi-width"
  | Equi_depth -> "equi-depth"
  | Compressed -> "compressed"

let build kind ~buckets values =
  match kind with
  | Equi_width -> Histogram.build_equi_width ~buckets values
  | Equi_depth -> Histogram.build_equi_depth ~buckets values
  | Compressed ->
    Histogram.build_compressed ~buckets:(max 1 (buckets - buckets / 4))
      ~singletons:(buckets / 4) values

(* Histogram built from a [fraction] sample, counts scaled to population. *)
let sampled_histogram rng kind ~buckets ~fraction (values : float array) :
  Histogram.t =
  let sample = uniform_sample rng ~fraction values in
  let h = build kind ~buckets sample in
  let factor =
    if Array.length sample = 0 then 1.
    else float_of_int (Array.length values) /. float_of_int (Array.length sample)
  in
  scale_histogram h ~factor

(* Mean absolute selectivity error of [h] vs. ground truth over random range
   queries — the accuracy metric for experiments E7/E8. *)
let range_query_error rng ~queries (truth : float array) (h : Histogram.t) :
  float =
  let n = Array.length truth in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy truth in
    Array.sort Float.compare sorted;
    let lo_all = sorted.(0) and hi_all = sorted.(n - 1) in
    let span = hi_all -. lo_all in
    let total_err = ref 0. in
    for _ = 1 to queries do
      let a = lo_all +. (Random.State.float rng 1.0 *. span) in
      let b = lo_all +. (Random.State.float rng 1.0 *. span) in
      let lo = min a b and hi = max a b in
      let actual =
        let c = ref 0 in
        Array.iter (fun v -> if v >= lo && v <= hi then incr c) truth;
        float_of_int !c /. float_of_int n
      in
      let est = Histogram.est_range h ~lo ~hi () in
      total_err := !total_err +. Float.abs (est -. actual)
    done;
    !total_err /. float_of_int queries
  end
