(** Distinct-value estimation from samples (Section 5.1.2): provably
    error-prone ([11]) — these classical estimators let experiment E9
    exhibit exactly that. *)

(** Exact distinct count of the full data. *)
val exact : float array -> int

(** Naive scale-up: sample distinct ratio extrapolated to the population. *)
val scale_up : population:int -> float array -> float

(** Chao (1984): d + f1²/(2 f2). *)
val chao : population:int -> float array -> float

(** GEE (Charikar et al.): √(N/n)·f1 + Σ_{i≥2} f_i, achieving the optimal
    √(N/n) ratio-error guarantee. *)
val gee : population:int -> float array -> float

type estimator = Scale_up | Chao | Gee

val estimator_name : estimator -> string
val estimate : estimator -> population:int -> float array -> float

(** Standard metric: max(est/true, true/est). *)
val ratio_error : truth:float -> float -> float
