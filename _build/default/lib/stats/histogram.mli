(** Column histograms over numeric data (Section 5.1.1): equi-width,
    equi-depth (equi-height) and compressed (frequent values in singleton
    buckets) bucketizations, with the uniform-spread intra-bucket
    assumption the paper discusses. *)

type bucket = {
  lo : float;  (** inclusive *)
  hi : float;  (** inclusive *)
  count : float;  (** rows in [lo, hi] *)
  distinct : float;  (** distinct values inside *)
}

type t = {
  total : float;  (** rows covered (non-null) *)
  singletons : (float * float) array;  (** (value, frequency), sorted *)
  buckets : bucket array;  (** disjoint, sorted by [lo] *)
}

val total : t -> float
val empty : t

val build_equi_width : buckets:int -> float array -> t
val build_equi_depth : buckets:int -> float array -> t

(** [build_compressed ~buckets ~singletons data]: the [singletons] most
    frequent values get exact singleton buckets; the rest is equi-depth. *)
val build_compressed : buckets:int -> singletons:int -> float array -> t

(** Rows of bucket [b] within the value range, by linear interpolation. *)
val bucket_range_rows : bucket -> lo_v:float -> hi_v:float -> float

(** Selectivity of [column = v]. *)
val est_eq : t -> float -> float

(** Selectivity of [lo <= column <= hi] (either side optional). *)
val est_range : t -> ?lo:float -> ?hi:float -> unit -> float

(** Histogram "join" (Section 5.1.3): align bucket boundaries and estimate
    matching row pairs per interval as r1*r2/max(d1,d2) — the containment
    assumption.  Returns estimated result rows. *)
val join_rows : t -> t -> float

(** Number of buckets including singletons. *)
val bucket_count : t -> int

val pp : Format.formatter -> t -> unit
