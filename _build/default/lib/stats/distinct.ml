(* Distinct-value estimation from a sample (Section 5.1.2).

   The paper notes the task is provably error-prone ([11]): for any
   estimator there is a data distribution with large error.  We implement
   the classical estimators so experiment E9 can exhibit exactly that. *)

let exact (values : float array) : int =
  let tbl = Hashtbl.create 1024 in
  Array.iter (fun v -> Hashtbl.replace tbl v ()) values;
  Hashtbl.length tbl

(* sample frequency-of-frequencies: f.(i) = number of values occurring
   exactly i+1 times in the sample *)
let freq_of_freq (sample : float array) : int array * int =
  let counts = Hashtbl.create 1024 in
  Array.iter
    (fun v ->
       Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0))
    sample;
  let d = Hashtbl.length counts in
  let max_c = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  let f = Array.make (max 1 max_c) 0 in
  Hashtbl.iter (fun _ c -> f.(c - 1) <- f.(c - 1) + 1) counts;
  (f, d)

(* Naive scale-up: assume sample distinct ratio holds in the full table. *)
let scale_up ~population:bign (sample : float array) : float =
  let n = Array.length sample in
  if n = 0 then 0.
  else
    let _, d = freq_of_freq sample in
    min (float_of_int bign)
      (float_of_int d *. (float_of_int bign /. float_of_int n))

(* Chao (1984): D = d + f1^2 / (2 f2). *)
let chao ~population:bign (sample : float array) : float =
  let f, d = freq_of_freq sample in
  let f1 = float_of_int (if Array.length f > 0 then f.(0) else 0) in
  let f2 = float_of_int (if Array.length f > 1 then f.(1) else 0) in
  let est =
    if f2 > 0. then float_of_int d +. (f1 *. f1 /. (2. *. f2))
    else float_of_int d +. (f1 *. (f1 -. 1.) /. 2.)
  in
  min (float_of_int bign) est

(* GEE, Charikar et al.: D = sqrt(N/n) * f1 + sum_{i>=2} f_i.  Achieves the
   optimal sqrt(N/n) error ratio guarantee. *)
let gee ~population:bign (sample : float array) : float =
  let n = Array.length sample in
  if n = 0 then 0.
  else begin
    let f, _ = freq_of_freq sample in
    let f1 = float_of_int (if Array.length f > 0 then f.(0) else 0) in
    let rest =
      let acc = ref 0 in
      for i = 1 to Array.length f - 1 do acc := !acc + f.(i) done;
      float_of_int !acc
    in
    min (float_of_int bign)
      ((sqrt (float_of_int bign /. float_of_int n) *. f1) +. rest)
  end

type estimator = Scale_up | Chao | Gee

let estimator_name = function
  | Scale_up -> "scale-up"
  | Chao -> "Chao"
  | Gee -> "GEE"

let estimate which ~population sample =
  match which with
  | Scale_up -> scale_up ~population sample
  | Chao -> chao ~population sample
  | Gee -> gee ~population sample

(* Ratio error, the standard metric: max(est/true, true/est). *)
let ratio_error ~truth est =
  if truth <= 0. || est <= 0. then infinity
  else max (est /. truth) (truth /. est)
