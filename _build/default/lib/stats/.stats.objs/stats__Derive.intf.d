lib/stats/derive.mli: Algebra Expr Relalg Schema Table_stats
