lib/stats/table_stats.mli: Format Hashtbl Histogram Sample Storage
