lib/stats/distinct.ml: Array Hashtbl Option
