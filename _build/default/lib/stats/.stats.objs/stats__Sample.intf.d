lib/stats/sample.mli: Histogram Random
