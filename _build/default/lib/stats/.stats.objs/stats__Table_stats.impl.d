lib/stats/table_stats.ml: Array Float Fmt Hashtbl Histogram List Printf Relalg Sample Schema Storage Tuple Value
