lib/stats/derive.ml: Algebra Array Expr Float Histogram List Option Pred Relalg Schema Storage Table_stats Typing Value
