lib/stats/histogram2d.ml: Array Float Fmt
