lib/stats/distinct.mli:
