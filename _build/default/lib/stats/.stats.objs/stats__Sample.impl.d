lib/stats/sample.ml: Array Float Histogram Random
