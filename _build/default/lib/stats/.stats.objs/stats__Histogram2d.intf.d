lib/stats/histogram2d.mli: Format
