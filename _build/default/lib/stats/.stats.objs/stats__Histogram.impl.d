lib/stats/histogram.ml: Array Float Fmt List Option Stdlib
