(* Two-dimensional histograms (Section 5.1.1, [45,51]): the joint
   distribution of a column pair, capturing exactly the correlations the
   single-column independence assumption misses (experiment E10).

   Bucketization follows Muralikrishna/DeWitt's equi-depth approach: each
   dimension is cut at its equi-depth quantiles, and the grid cell counts
   record the joint frequency.  Estimation assumes uniform spread within a
   cell. *)

type t = {
  x_bounds : float array; (* kx+1 ascending cut points *)
  y_bounds : float array; (* ky+1 *)
  counts : float array array; (* kx x ky cell counts *)
  total : float;
}

(* Equi-depth cut points: k+1 bounds covering the sorted data. *)
let quantile_bounds ~k (values : float array) : float array =
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  Array.init (k + 1) (fun i ->
      if i = 0 then sorted.(0)
      else if i = k then sorted.(n - 1)
      else sorted.(i * n / k))

(* Cell index of [v] in [bounds] (clamped). *)
let cell_of bounds v =
  let k = Array.length bounds - 1 in
  let rec go i =
    if i >= k - 1 then k - 1
    else if v < bounds.(i + 1) then i
    else go (i + 1)
  in
  if v <= bounds.(0) then 0 else go 0

let build ?(buckets = 10) (xs : float array) (ys : float array) : t =
  if Array.length xs <> Array.length ys then
    invalid_arg "Histogram2d.build: length mismatch";
  if Array.length xs = 0 then
    { x_bounds = [| 0.; 0. |]; y_bounds = [| 0.; 0. |];
      counts = [| [| 0. |] |]; total = 0. }
  else begin
    let k = max 1 buckets in
    let x_bounds = quantile_bounds ~k xs in
    let y_bounds = quantile_bounds ~k ys in
    let counts = Array.make_matrix k k 0. in
    Array.iteri
      (fun i x ->
         let cx = cell_of x_bounds x and cy = cell_of y_bounds ys.(i) in
         counts.(cx).(cy) <- counts.(cx).(cy) +. 1.)
      xs;
    { x_bounds; y_bounds; counts; total = float_of_int (Array.length xs) }
  end

(* Fraction of cell [i] of [bounds] overlapping [lo, hi], by linear
   interpolation; a degenerate cell counts fully when inside the range. *)
let overlap bounds i ~lo ~hi =
  let clo = bounds.(i) and chi = bounds.(i + 1) in
  if chi < lo || clo > hi then 0.
  else if chi = clo then 1.
  else
    let from = Float.max lo clo and till = Float.min hi chi in
    Float.max 0. ((till -. from) /. (chi -. clo))

(* Selectivity of [xlo <= X <= xhi AND ylo <= Y <= yhi] (bounds optional). *)
let est_range t ?(xlo = neg_infinity) ?(xhi = infinity) ?(ylo = neg_infinity)
    ?(yhi = infinity) () : float =
  if t.total <= 0. then 0.
  else begin
    let kx = Array.length t.x_bounds - 1 in
    let ky = Array.length t.y_bounds - 1 in
    let acc = ref 0. in
    for i = 0 to kx - 1 do
      let fx = overlap t.x_bounds i ~lo:xlo ~hi:xhi in
      if fx > 0. then
        for j = 0 to ky - 1 do
          let fy = overlap t.y_bounds j ~lo:ylo ~hi:yhi in
          if fy > 0. then acc := !acc +. (t.counts.(i).(j) *. fx *. fy)
        done
    done;
    Float.min 1. (!acc /. t.total)
  end

let pp ppf t =
  Fmt.pf ppf "hist2d total=%.0f grid=%dx%d" t.total
    (Array.length t.x_bounds - 1)
    (Array.length t.y_bounds - 1)
