lib/core/pipeline.ml: Algebra Array Exec Expr Fmt Hashtbl List Pred Printf Relalg Rewrite Schema Stats Storage String Systemr
