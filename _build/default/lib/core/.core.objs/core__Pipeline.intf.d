lib/core/pipeline.mli: Exec Rewrite Stats Storage Systemr
