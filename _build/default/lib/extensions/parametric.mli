(** Parametric query optimization (Section 7.4, after [33] and [19]):
    optimize at several candidate parameter values, keep the distinct plan
    shapes, and dispatch on the actual value at runtime. *)

open Relalg

(** Plan "shape": the plan with every literal constant blanked, so two
    instantiations of one strategy compare equal. *)
val shape : Exec.Plan.t -> Exec.Plan.t

val shape_key : Exec.Plan.t -> string

type t = {
  samples : (Value.t * Exec.Plan.t * float) list;
      (** sorted by parameter: (value, plan optimized there, est. cost) *)
  shapes : int;  (** distinct plan shapes across the parameter space *)
}

val optimize :
  ?config:Systemr.Join_order.config -> Storage.Catalog.t ->
  Stats.Table_stats.db -> param_values:Value.t list ->
  (Value.t -> Systemr.Spj.t) -> t

(** Runtime dispatch: the plan optimized at the nearest sampled parameter
    at or below the actual value (clamped at the extremes).
    @raise Invalid_argument on an empty sample list. *)
val plan_for : t -> Value.t -> Exec.Plan.t

(** The conventional choice: one plan optimized at a fixed assumed value. *)
val static_plan :
  ?config:Systemr.Join_order.config -> Storage.Catalog.t ->
  Stats.Table_stats.db -> (Value.t -> Systemr.Spj.t) -> assumed:Value.t ->
  Exec.Plan.t

(** Replace the literal parameter inside a plan so a static plan can run at
    a different parameter value. *)
val rebind : assumed:Value.t -> actual:Value.t -> Exec.Plan.t -> Exec.Plan.t
