(* Parametric query optimization (Section 7.4, after Ioannidis et al. [33]
   and Graefe/Ward's dynamic plans [19]): when a query contains a runtime
   parameter, defer the final plan choice — optimize at several candidate
   parameter values, keep the distinct plans, and dispatch on the actual
   value at execution time.

   Plans are deduplicated by *shape*: the plan with every literal constant
   blanked out, so two instantiations of the same strategy count once. *)

open Relalg

(* Blank out literal constants so structurally identical strategies compare
   equal. *)
let rec blank_expr (e : Expr.t) : Expr.t =
  match e with
  | Expr.Const _ -> Expr.Const Value.Null
  | Expr.Col _ -> e
  | Expr.Binop (op, a, b) -> Expr.Binop (op, blank_expr a, blank_expr b)
  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, blank_expr a, blank_expr b)
  | Expr.And (a, b) -> Expr.And (blank_expr a, blank_expr b)
  | Expr.Or (a, b) -> Expr.Or (blank_expr a, blank_expr b)
  | Expr.Not a -> Expr.Not (blank_expr a)
  | Expr.Is_null a -> Expr.Is_null (blank_expr a)
  | Expr.Udf (u, args) -> Expr.Udf (u, List.map blank_expr args)

let blank_bound : Exec.Plan.bound -> Exec.Plan.bound = function
  | Exec.Plan.Unbounded -> Exec.Plan.Unbounded
  | Exec.Plan.Incl _ | Exec.Plan.Excl _ -> Exec.Plan.Incl Value.Null

let rec shape (p : Exec.Plan.t) : Exec.Plan.t =
  match p with
  | Exec.Plan.Seq_scan { table; alias; filter } ->
    Exec.Plan.Seq_scan { table; alias; filter = Option.map blank_expr filter }
  | Exec.Plan.Index_scan { table; alias; column; lo; hi; filter } ->
    Exec.Plan.Index_scan
      { table; alias; column; lo = blank_bound lo; hi = blank_bound hi;
        filter = Option.map blank_expr filter }
  | Exec.Plan.Filter (e, i) -> Exec.Plan.Filter (blank_expr e, shape i)
  | Exec.Plan.Project (items, i) ->
    Exec.Plan.Project (List.map (fun (e, a) -> (blank_expr e, a)) items, shape i)
  | Exec.Plan.Sort (k, i) -> Exec.Plan.Sort (k, shape i)
  | Exec.Plan.Materialize i -> Exec.Plan.Materialize (shape i)
  | Exec.Plan.Nested_loop { kind; pred; outer; inner } ->
    Exec.Plan.Nested_loop
      { kind; pred = blank_expr pred; outer = shape outer; inner = shape inner }
  | Exec.Plan.Index_nl { kind; outer; table; alias; index; columns; outer_keys; residual } ->
    Exec.Plan.Index_nl
      { kind; outer = shape outer; table; alias; index; columns; outer_keys;
        residual = blank_expr residual }
  | Exec.Plan.Merge_join { kind; pairs; residual; left; right } ->
    Exec.Plan.Merge_join
      { kind; pairs; residual = blank_expr residual; left = shape left;
        right = shape right }
  | Exec.Plan.Hash_join { kind; pairs; residual; left; right } ->
    Exec.Plan.Hash_join
      { kind; pairs; residual = blank_expr residual; left = shape left;
        right = shape right }
  | Exec.Plan.Hash_agg { keys; aggs; input } ->
    Exec.Plan.Hash_agg { keys; aggs; input = shape input }
  | Exec.Plan.Stream_agg { keys; aggs; input } ->
    Exec.Plan.Stream_agg { keys; aggs; input = shape input }
  | Exec.Plan.Hash_distinct i -> Exec.Plan.Hash_distinct (shape i)

let shape_key p = Exec.Plan.to_string (shape p)

type t = {
  samples : (Value.t * Exec.Plan.t * float) list;
  (* sorted by parameter; (value, plan optimized there, estimated cost) *)
  shapes : int; (* distinct plan shapes across the parameter space *)
}

(* Optimize the parameterized query at each candidate parameter value. *)
let optimize ?(config = Systemr.Join_order.default_config) cat db
    ~(param_values : Value.t list) (make_query : Value.t -> Systemr.Spj.t) : t
  =
  let samples =
    List.map
      (fun v ->
         let res = Systemr.Join_order.optimize ~config cat db (make_query v) in
         ( v,
           res.Systemr.Join_order.best.Systemr.Candidate.plan,
           res.Systemr.Join_order.best.Systemr.Candidate.cost ))
      (List.sort Value.compare param_values)
  in
  let shapes =
    List.map (fun (_, p, _) -> shape_key p) samples
    |> List.sort_uniq String.compare |> List.length
  in
  { samples; shapes }

(* Runtime dispatch: the plan optimized at the nearest sampled parameter at
   or below the actual value (clamping at the extremes). *)
let plan_for (t : t) (v : Value.t) : Exec.Plan.t =
  match t.samples with
  | [] -> invalid_arg "Parametric.plan_for: no samples"
  | (_, first, _) :: _ ->
    let best =
      List.fold_left
        (fun acc (sv, plan, _) ->
           if Value.compare sv v <= 0 then Some plan else acc)
        None t.samples
    in
    Option.value best ~default:first

(* The plan a conventional optimizer would pick: optimized once at a fixed
   "expected" parameter value. *)
let static_plan ?(config = Systemr.Join_order.default_config) cat db
    (make_query : Value.t -> Systemr.Spj.t) ~(assumed : Value.t) :
  Exec.Plan.t =
  (Systemr.Join_order.optimize ~config cat db (make_query assumed))
    .Systemr.Join_order.best.Systemr.Candidate.plan

(* Re-bind the literal parameter inside a plan: replaces every occurrence
   of [assumed] with [actual] in filters and index bounds, so a static plan
   can be executed at a different parameter value. *)
let rec rebind ~(assumed : Value.t) ~(actual : Value.t) (p : Exec.Plan.t) :
  Exec.Plan.t =
  let rec re_expr (e : Expr.t) : Expr.t =
    match e with
    | Expr.Const v when Value.equal v assumed -> Expr.Const actual
    | Expr.Const _ | Expr.Col _ -> e
    | Expr.Binop (op, a, b) -> Expr.Binop (op, re_expr a, re_expr b)
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, re_expr a, re_expr b)
    | Expr.And (a, b) -> Expr.And (re_expr a, re_expr b)
    | Expr.Or (a, b) -> Expr.Or (re_expr a, re_expr b)
    | Expr.Not a -> Expr.Not (re_expr a)
    | Expr.Is_null a -> Expr.Is_null (re_expr a)
    | Expr.Udf (u, args) -> Expr.Udf (u, List.map re_expr args)
  in
  let re_bound = function
    | Exec.Plan.Incl v when Value.equal v assumed -> Exec.Plan.Incl actual
    | Exec.Plan.Excl v when Value.equal v assumed -> Exec.Plan.Excl actual
    | b -> b
  in
  let go = rebind ~assumed ~actual in
  match p with
  | Exec.Plan.Seq_scan { table; alias; filter } ->
    Exec.Plan.Seq_scan { table; alias; filter = Option.map re_expr filter }
  | Exec.Plan.Index_scan { table; alias; column; lo; hi; filter } ->
    Exec.Plan.Index_scan
      { table; alias; column; lo = re_bound lo; hi = re_bound hi;
        filter = Option.map re_expr filter }
  | Exec.Plan.Filter (e, i) -> Exec.Plan.Filter (re_expr e, go i)
  | Exec.Plan.Project (items, i) -> Exec.Plan.Project (items, go i)
  | Exec.Plan.Sort (k, i) -> Exec.Plan.Sort (k, go i)
  | Exec.Plan.Materialize i -> Exec.Plan.Materialize (go i)
  | Exec.Plan.Nested_loop { kind; pred; outer; inner } ->
    Exec.Plan.Nested_loop
      { kind; pred = re_expr pred; outer = go outer; inner = go inner }
  | Exec.Plan.Index_nl { kind; outer; table; alias; index; columns; outer_keys; residual } ->
    Exec.Plan.Index_nl
      { kind; outer = go outer; table; alias; index; columns; outer_keys;
        residual = re_expr residual }
  | Exec.Plan.Merge_join { kind; pairs; residual; left; right } ->
    Exec.Plan.Merge_join
      { kind; pairs; residual = re_expr residual; left = go left;
        right = go right }
  | Exec.Plan.Hash_join { kind; pairs; residual; left; right } ->
    Exec.Plan.Hash_join
      { kind; pairs; residual = re_expr residual; left = go left;
        right = go right }
  | Exec.Plan.Hash_agg { keys; aggs; input } ->
    Exec.Plan.Hash_agg { keys; aggs; input = go input }
  | Exec.Plan.Stream_agg { keys; aggs; input } ->
    Exec.Plan.Stream_agg { keys; aggs; input = go input }
  | Exec.Plan.Hash_distinct i -> Exec.Plan.Hash_distinct (go i)
