(* Optimization of queries with expensive user-defined predicates
   (Section 7.2, after Hellerstein/Stonebraker [29,30] and Chaudhuri/Shim
   [8]).

   Model: a stream of [n] rows flows through joins (each join multiplies
   cardinality by its selectivity against the next relation) and through
   expensive predicates p_i with per-tuple cost c_i and selectivity s_i.

   - With no joins, ordering predicates by ascending rank
     (s - 1) / c is optimal.
   - With joins, rank-interleaving can be suboptimal; treating the set of
     applied predicates as a plan property and running dynamic programming
     over (relations joined, predicates applied) is optimal — and
     polynomial in the number of predicates for regular cost models. *)

type upred = { p_name : string; sel : float; cost : float }

type join = { j_name : string; j_sel : float; j_cost : float; j_card : float }
(* joining multiplies the stream by j_card * j_sel and costs
   j_cost per (input row x j_card) pairs *)

let rank (p : upred) = (p.sel -. 1.) /. p.cost

(* Total cost of applying predicates in the given order to [n] rows. *)
let sequence_cost ~n (ps : upred list) : float =
  let rec go n acc = function
    | [] -> acc
    | p :: rest -> go (n *. p.sel) (acc +. (n *. p.cost)) rest
  in
  go n 0. ps

let order_by_rank (ps : upred list) : upred list =
  List.sort (fun a b -> Float.compare (rank a) (rank b)) ps

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
         List.map (fun rest -> x :: rest)
           (permutations (List.filter (fun y -> y != x) xs)))
      xs

let optimal_order_exhaustive ~n (ps : upred list) : upred list * float =
  List.fold_left
    (fun (bo, bc) o ->
       let c = sequence_cost ~n o in
       if c < bc then (o, c) else (bo, bc))
    (ps, sequence_cost ~n ps)
    (permutations ps)

(* ------------------------------------------------------------------ *)
(* Predicates interleaved with joins *)

(* A plan is an interleaving: apply some predicates, join, apply more, ...
   Cost of executing a prefix with cardinality tracking. *)
type step = Apply of upred | Do_join of join

let interleaving_cost ~n (steps : step list) : float =
  let rec go n acc = function
    | [] -> acc
    | Apply p :: rest -> go (n *. p.sel) (acc +. (n *. p.cost)) rest
    | Do_join j :: rest ->
      let pairs = n *. j.j_card in
      go (pairs *. j.j_sel) (acc +. (pairs *. j.j_cost)) rest
  in
  go n 0. steps

(* Heuristic 1: push all predicates down (apply all before any join) —
   the classical "evaluate predicates as early as possible", unsound for
   expensive predicates. *)
let pushdown_always (ps : upred list) (js : join list) : step list =
  List.map (fun p -> Apply p) (order_by_rank ps)
  @ List.map (fun j -> Do_join j) js

(* Heuristic 2: rank-interleave — treat each join as a pseudo-predicate
   with selectivity (j_card * j_sel) and cost (j_card * j_cost), keep the
   join order fixed, and place predicates among the joins by rank.
   Suboptimal in general ([29]'s extension, fixed by [8]). *)
let rank_interleave (ps : upred list) (js : join list) : step list =
  let pseudo j = ((j.j_card *. j.j_sel) -. 1.) /. (j.j_card *. j.j_cost) in
  let rec place ps js =
    match ps, js with
    | [], js -> List.map (fun j -> Do_join j) js
    | ps, [] -> List.map (fun p -> Apply p) ps
    | p :: prest, j :: jrest ->
      if rank p <= pseudo j then Apply p :: place prest js
      else Do_join j :: place ps jrest
  in
  place (order_by_rank ps) js

(* Optimal: dynamic programming over (joins done, predicate set applied) —
   the predicate set is a plan property ([8]).  Join order is fixed (they
   are applied in sequence); the choice is where each predicate goes. *)
let property_dp ~n (ps : upred list) (js : join list) : step list * float =
  let ps = Array.of_list ps in
  let k = Array.length ps in
  let js = Array.of_list js in
  let m = Array.length js in
  (* state: (next join index, bitmask of applied predicates) ->
     (cardinality, best cost, steps-so-far reversed) *)
  let best : (int * int, float * float * step list) Hashtbl.t =
    Hashtbl.create 256
  in
  let card_of ji mask =
    (* cardinality after ji joins and the predicates in mask *)
    let c = ref n in
    for j = 0 to ji - 1 do
      c := !c *. js.(j).j_card *. js.(j).j_sel
    done;
    for i = 0 to k - 1 do
      if mask land (1 lsl i) <> 0 then c := !c *. ps.(i).sel
    done;
    !c
  in
  let update key cost steps =
    match Hashtbl.find_opt best key with
    | Some (_, c, _) when c <= cost -> ()
    | _ ->
      let ji, mask = key in
      Hashtbl.replace best key (card_of ji mask, cost, steps)
  in
  update (0, 0) 0. [];
  let full_mask = (1 lsl k) - 1 in
  for ji = 0 to m do
    (* ascending masks: every submask is settled before its supersets *)
    for mask = 0 to full_mask do
      match Hashtbl.find_opt best (ji, mask) with
      | None -> ()
      | Some (card, cost, steps) ->
        (* apply one more predicate *)
        for i = 0 to k - 1 do
          if mask land (1 lsl i) = 0 then
            update (ji, mask lor (1 lsl i))
              (cost +. (card *. ps.(i).cost))
              (Apply ps.(i) :: steps)
        done;
        (* or do the next join *)
        if ji < m then begin
          let j = js.(ji) in
          update (ji + 1, mask)
            (cost +. (card *. j.j_card *. j.j_cost))
            (Do_join j :: steps)
        end
    done
  done;
  let full = (1 lsl k) - 1 in
  match Hashtbl.find_opt best (m, full) with
  | Some (_, cost, steps) -> (List.rev steps, cost)
  | None -> invalid_arg "property_dp: unreachable state"
