(** Materialized views (Section 7.3, after [15,9]): syntactic containment
    matching for conjunctive views, query rewriting, and cost-based choice
    between base tables and views. *)

type view = {
  name : string;
  definition : Systemr.Spj.t;
  table : string;  (** materialized storage *)
}

(** Execute an SPJ definition and store it as a table (also registered in
    the statistics db). *)
val materialize :
  Storage.Catalog.t -> Stats.Table_stats.db -> name:string -> Systemr.Spj.t ->
  view

(** Rewrite a query to read the view: view relations/predicates must be
    subsumed and every needed column stored; [None] otherwise.  The
    produced relations carry empty schemas — see {!resolve_schemas}. *)
val rewrite : view -> Systemr.Spj.t -> Systemr.Spj.t option

(** Fill in catalog schemas for rewritten relations. *)
val resolve_schemas : Storage.Catalog.t -> Systemr.Spj.t -> Systemr.Spj.t

type choice = {
  plan : Exec.Plan.t;
  cost : float;
  used_view : string option;  (** [None] = base tables won *)
}

(** Cost-based selection between the original query and each view rewrite. *)
val optimize_with_views :
  ?config:Systemr.Join_order.config -> Storage.Catalog.t ->
  Stats.Table_stats.db -> view list -> Systemr.Spj.t -> choice
