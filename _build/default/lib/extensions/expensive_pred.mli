(** Expensive user-defined predicates (Section 7.2, after [29,30] and [8]):
    rank ordering without joins, heuristics and the optimal property-DP
    with joins. *)

(** A user-defined predicate: selectivity and per-tuple cost. *)
type upred = { p_name : string; sel : float; cost : float }

(** A join step: joining multiplies the stream by j_card * j_sel and costs
    j_cost per (input row x j_card) pair. *)
type join = { j_name : string; j_sel : float; j_cost : float; j_card : float }

(** rank = (selectivity - 1) / cost; ascending rank is optimal without
    joins. *)
val rank : upred -> float

(** Total cost of applying predicates in order to [n] rows. *)
val sequence_cost : n:float -> upred list -> float

val order_by_rank : upred list -> upred list
val permutations : 'a list -> 'a list list

(** Exhaustive optimum over orderings (small inputs only). *)
val optimal_order_exhaustive : n:float -> upred list -> upred list * float

(** An interleaving of predicate applications and joins. *)
type step = Apply of upred | Do_join of join

val interleaving_cost : n:float -> step list -> float

(** "Evaluate predicates as early as possible" — unsound for expensive
    predicates. *)
val pushdown_always : upred list -> join list -> step list

(** Rank-interleave with joins as pseudo-predicates — suboptimal in
    general ([29]'s extension, fixed by [8]). *)
val rank_interleave : upred list -> join list -> step list

(** Optimal placement: dynamic programming over (joins done, predicate set
    applied) — predicates-applied as a plan property ([8]). *)
val property_dp : n:float -> upred list -> join list -> step list * float
