lib/extensions/parametric.ml: Exec Expr List Option Relalg String Systemr Value
