lib/extensions/expensive_pred.mli:
