lib/extensions/expensive_pred.ml: Array Float Hashtbl List
