lib/extensions/parametric.mli: Exec Relalg Stats Storage Systemr Value
