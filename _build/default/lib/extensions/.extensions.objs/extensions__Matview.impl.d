lib/extensions/matview.ml: Array Exec Expr Hashtbl List Option Printf Relalg Schema Stats Storage Systemr
