lib/extensions/matview.mli: Exec Stats Storage Systemr
