(* Materialized views (Section 7.3, after [15,9]): given stored results of
   SPJ view definitions, rewrite a query to read a view instead of its base
   relations when the view subsumes that part of the query, and choose
   between the original and rewritten forms cost-based.

   Matching is the classical syntactic containment test for conjunctive
   views:
   - the view's relations are a subset of the query's (matched by table
     name with a consistent alias mapping);
   - every view predicate appears among the query's predicates (after
     alias mapping);
   - every query column over the view's relations that the rest of the
     query needs is in the view's projection. *)

open Relalg

type view = {
  name : string;
  definition : Systemr.Spj.t;
  table : string; (* materialized storage *)
}

(* Execute an SPJ definition and store it as a table named [name]. *)
let materialize (cat : Storage.Catalog.t) (db : Stats.Table_stats.db)
    ~name (definition : Systemr.Spj.t) : view =
  let res = Systemr.Join_order.optimize cat db definition in
  let out =
    Exec.Executor.run cat res.Systemr.Join_order.best.Systemr.Candidate.plan
  in
  let columns =
    List.map
      (fun (c : Schema.column) ->
         ( (if c.Schema.rel = "" then c.Schema.name
            else Printf.sprintf "%s_%s" c.Schema.rel c.Schema.name),
           c.Schema.ty ))
      out.Exec.Executor.schema
  in
  let table = Storage.Catalog.create_table cat ~name ~columns in
  Array.iter (Storage.Table.insert table) out.Exec.Executor.rows;
  Hashtbl.replace db name (Stats.Table_stats.analyze table);
  { name; definition; table = name }

(* Column name in the materialized table for a view-output column. *)
let stored_column (v : view) (c : Expr.col_ref) : string option =
  match v.definition.Systemr.Spj.projections with
  | Some items ->
    List.find_map
      (fun (e, alias) ->
         match e with
         | Expr.Col c' when c' = c -> Some alias
         | _ -> None)
      items
  | None ->
    (* SELECT *: stored as rel_col *)
    if
      List.exists
        (fun (r : Systemr.Spj.relation) -> r.Systemr.Spj.alias = c.Expr.rel)
        v.definition.Systemr.Spj.relations
    then Some (Printf.sprintf "%s_%s" c.Expr.rel c.Expr.col)
    else None

let expr_equal (a : Expr.t) (b : Expr.t) = a = b

(* Try to rewrite [q] to use [v].  Aliases must match the view definition's
   aliases (the common case when both come from the same view text). *)
let rewrite (v : view) (q : Systemr.Spj.t) : Systemr.Spj.t option =
  let vd = v.definition in
  let v_aliases = Systemr.Spj.relation_aliases vd in
  (* 1. the view's relations appear in the query with identical aliases and
     tables *)
  let covers =
    List.for_all
      (fun (vr : Systemr.Spj.relation) ->
         List.exists
           (fun (qr : Systemr.Spj.relation) ->
              qr.Systemr.Spj.alias = vr.Systemr.Spj.alias
              && qr.Systemr.Spj.table = vr.Systemr.Spj.table)
           q.Systemr.Spj.relations)
      vd.Systemr.Spj.relations
  in
  if not covers then None
  else begin
    (* 2. every view predicate is among the query's predicates *)
    let v_preds_present =
      List.for_all
        (fun vp -> List.exists (expr_equal vp) q.Systemr.Spj.predicates)
        vd.Systemr.Spj.predicates
    in
    if not v_preds_present then None
    else begin
      (* 3. remaining query pieces over view relations must be answerable
         from the view's projection *)
      let residual_preds =
        List.filter
          (fun qp -> not (List.exists (expr_equal qp) vd.Systemr.Spj.predicates))
          q.Systemr.Spj.predicates
      in
      let needed_cols =
        List.concat_map Expr.columns
          (residual_preds
           @ (match q.Systemr.Spj.projections with
              | Some items -> List.map fst items
              | None ->
                List.concat_map
                  (fun (r : Systemr.Spj.relation) ->
                     if List.mem r.Systemr.Spj.alias v_aliases then
                       List.map
                         (fun (c : Schema.column) ->
                            Expr.Col { Expr.rel = r.Systemr.Spj.alias;
                                       col = c.Schema.name })
                         r.Systemr.Spj.schema
                     else [])
                  q.Systemr.Spj.relations))
        |> List.filter (fun (c : Expr.col_ref) -> List.mem c.Expr.rel v_aliases)
        |> List.sort_uniq compare
      in
      let mapping =
        List.map (fun c -> (c, stored_column v c)) needed_cols
      in
      if List.exists (fun (_, m) -> m = None) mapping then None
      else begin
        let map =
          List.map
            (fun (c, m) ->
               (c, Expr.col ~rel:v.name ~col:(Option.get m)))
            mapping
        in
        let subst e =
          (* reuse the rewrite substitution helper shape locally *)
          let rec go e =
            match e with
            | Expr.Col c -> (
              match List.find_opt (fun (c', _) -> c' = c) map with
              | Some (_, e') -> e'
              | None -> e)
            | Expr.Const _ -> e
            | Expr.Binop (op, a, b) -> Expr.Binop (op, go a, go b)
            | Expr.Cmp (op, a, b) -> Expr.Cmp (op, go a, go b)
            | Expr.And (a, b) -> Expr.And (go a, go b)
            | Expr.Or (a, b) -> Expr.Or (go a, go b)
            | Expr.Not a -> Expr.Not (go a)
            | Expr.Is_null a -> Expr.Is_null (go a)
            | Expr.Udf (u, args) -> Expr.Udf (u, List.map go args)
          in
          go e
        in
        let view_rel_schema =
          (* schema of the stored table, qualified by the view name *)
          []
        in
        ignore view_rel_schema;
        let remaining_relations =
          List.filter
            (fun (r : Systemr.Spj.relation) ->
               not (List.mem r.Systemr.Spj.alias v_aliases))
            q.Systemr.Spj.relations
        in
        Some
          { Systemr.Spj.relations =
              remaining_relations
              @ [ { Systemr.Spj.alias = v.name; table = v.table;
                    schema = [] (* filled by the caller via catalog *) } ];
            predicates = List.map subst residual_preds;
            projections =
              Option.map
                (List.map (fun (e, a) -> (subst e, a)))
                q.Systemr.Spj.projections;
            order_by =
              List.map
                (fun (c, d) ->
                   match List.find_opt (fun (c', _) -> c' = c) map with
                   | Some (_, Expr.Col c2) -> (c2, d)
                   | _ -> (c, d))
                q.Systemr.Spj.order_by }
      end
    end
  end

(* Fill in catalog schemas for rewritten relations. *)
let resolve_schemas cat (q : Systemr.Spj.t) : Systemr.Spj.t =
  { q with
    Systemr.Spj.relations =
      List.map
        (fun (r : Systemr.Spj.relation) ->
           if r.Systemr.Spj.schema = [] then
             { r with
               Systemr.Spj.schema =
                 Schema.requalify
                   (Storage.Catalog.table cat r.Systemr.Spj.table).Storage.Table.schema
                   ~rel:r.Systemr.Spj.alias }
           else r)
        q.Systemr.Spj.relations }

type choice = {
  plan : Exec.Plan.t;
  cost : float;
  used_view : string option;
}

(* Cost-based selection between the original query and each view rewrite. *)
let optimize_with_views ?(config = Systemr.Join_order.default_config) cat db
    (views : view list) (q : Systemr.Spj.t) : choice =
  let base = Systemr.Join_order.optimize ~config cat db q in
  let best =
    ref
      { plan = base.Systemr.Join_order.best.Systemr.Candidate.plan;
        cost = base.Systemr.Join_order.best.Systemr.Candidate.cost;
        used_view = None }
  in
  List.iter
    (fun v ->
       match rewrite v q with
       | None -> ()
       | Some q' ->
         let q' = resolve_schemas cat q' in
         let r = Systemr.Join_order.optimize ~config cat db q' in
         if r.Systemr.Join_order.best.Systemr.Candidate.cost < !best.cost then
           best :=
             { plan = r.Systemr.Join_order.best.Systemr.Candidate.plan;
               cost = r.Systemr.Join_order.best.Systemr.Candidate.cost;
               used_view = Some v.name })
    views;
  !best
