lib/cost/physical_props.mli: Algebra Expr Format Relalg
