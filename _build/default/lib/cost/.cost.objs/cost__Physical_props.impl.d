lib/cost/physical_props.ml: Algebra Expr Fmt List Relalg
