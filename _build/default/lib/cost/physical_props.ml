(* Physical properties of data streams (Section 3, generalized from
   System-R's interesting orders by [22]).

   The only physical property single-site plans carry here is sort order;
   the parallel library adds partitioning as a second property the same way
   (Hasan's treatment, Section 7.1). *)

open Relalg

type order = (Expr.col_ref * Algebra.dir) list
(* [] = no known order *)

let no_order : order = []

let equal_col (a : Expr.col_ref) (b : Expr.col_ref) =
  a.Expr.rel = b.Expr.rel && a.Expr.col = b.Expr.col

let equal_order (a : order) (b : order) =
  List.length a = List.length b
  && List.for_all2
       (fun (c1, d1) (c2, d2) -> equal_col c1 c2 && d1 = d2)
       a b

(* A stream ordered on [have] satisfies a requirement [want] iff [want] is a
   prefix of [have]. *)
let satisfies ~(have : order) ~(want : order) =
  let rec go h w =
    match h, w with
    | _, [] -> true
    | [], _ :: _ -> false
    | (c1, d1) :: h', (c2, d2) :: w' ->
      equal_col c1 c2 && d1 = d2 && go h' w'
  in
  go have want

let pp ppf (o : order) =
  match o with
  | [] -> Fmt.string ppf "(unordered)"
  | _ ->
    Fmt.(list ~sep:(any ", ")
           (fun ppf ((c : Expr.col_ref), d) ->
              Fmt.pf ppf "%s.%s%s" c.Expr.rel c.Expr.col
                (match d with Algebra.Asc -> "" | Algebra.Desc -> " DESC")))
      ppf o

let to_string o = Fmt.str "%a" pp o
