(* The cost model (Section 5.2).

   Formulas mirror what the executor actually charges, so that the same
   model evaluated with *estimated* statistics prices candidate plans during
   optimization, and the gap to *measured* execution cost (experiment E11)
   is purely cardinality/buffer estimation error.

   All costs are scalars in "sequential page read" units:
   1 random read = [rand_page], 1 CPU tuple-op = [cpu_tuple]. *)

type params = {
  seq_page : float;
  rand_page : float;
  cpu_tuple : float;
  buffer_pages : int; (* assumed buffer pool size *)
  work_mem_pages : int; (* memory for sorts/hash builds *)
  index_fanout : int;
}

let default_params =
  { seq_page = 1.0;
    rand_page = 4.0;
    cpu_tuple = 0.001;
    buffer_pages = 1024;
    work_mem_pages = 64;
    index_fanout = 256 }

(* Weighted cost of measured execution counters, for predicted-vs-actual
   comparisons. *)
let of_counters p ~seq ~rand ~spill ~cpu =
  (p.seq_page *. float_of_int (seq + spill))
  +. (p.rand_page *. float_of_int rand)
  +. (p.cpu_tuple *. float_of_int cpu)

let log2 x = if x <= 1. then 0. else Float.log x /. Float.log 2.

(* ------------------------------------------------------------------ *)
(* Scans *)

let seq_scan p ~pages ~rows = (p.seq_page *. pages) +. (p.cpu_tuple *. rows)

let index_height p ~rows =
  let leaf = Float.max 1. (rows /. float_of_int p.index_fanout) in
  Float.max 1. (Float.round (1. +. (log2 leaf /. log2 (float_of_int p.index_fanout))))

(* Index scan retrieving [matches] of [rows] rows from a table of [pages]
   pages.  Non-clustered access pays one (buffered) random data page per
   match — the Mackert–Lohman/Cardenas correction of [40]. *)
let index_scan p ~clustered ~pages ~rows ~matches =
  let h = index_height p ~rows in
  let leaf_pages =
    Float.max 1. (Float.ceil (matches /. float_of_int p.index_fanout))
  in
  let data_io =
    if clustered then
      let tpp = Float.max 1. (rows /. Float.max 1. pages) in
      p.seq_page *. Float.ceil (matches /. tpp)
    else
      p.rand_page
      *. Storage.Buffer.expected_fetches ~buffer:p.buffer_pages
           ~pages:(int_of_float (Float.max 1. pages))
           ~accesses:(int_of_float (Float.round matches))
  in
  (p.rand_page *. h)
  +. (p.seq_page *. (leaf_pages -. 1.))
  +. p.rand_page (* first leaf *)
  +. data_io
  +. (p.cpu_tuple *. matches)

(* ------------------------------------------------------------------ *)
(* Unary operators *)

let filter p ~rows = p.cpu_tuple *. rows

let project p ~rows = p.cpu_tuple *. rows

let sort p ~pages ~rows =
  let cpu = p.cpu_tuple *. rows *. log2 rows in
  let spill =
    let wm = float_of_int p.work_mem_pages in
    if pages <= wm then 0.
    else
      let fan = Float.max 2. (wm -. 1.) in
      let runs = Float.ceil (pages /. wm) in
      let passes = Float.max 1. (Float.ceil (log2 runs /. log2 fan)) in
      2. *. pages *. passes
  in
  cpu +. (p.seq_page *. spill)

let hash_agg p ~rows ~groups = p.cpu_tuple *. (rows +. groups)

let stream_agg p ~rows = p.cpu_tuple *. rows

let hash_distinct p ~rows = p.cpu_tuple *. rows

(* ------------------------------------------------------------------ *)
(* Joins.  Input costs are paid by the caller; these price the join work
   itself, including inner rescans for nested loops. *)

(* Naive nested loop with a materialized-in-buffer inner: the first pass
   reads the inner's pages; later passes re-read only what fell out of the
   buffer. *)
let nested_loop p ~outer_rows ~inner_rows ~inner_pages =
  let rescans = Float.max 0. (outer_rows -. 1.) in
  let overflow = Float.max 0. (inner_pages -. float_of_int p.buffer_pages) in
  (p.seq_page *. rescans *. overflow)
  +. (p.cpu_tuple *. outer_rows *. inner_rows)

(* Index nested loop: per outer tuple, descend the index and fetch matching
   rows.  Both the index pages and the data pages are read through the
   buffer pool; we model them competing for it by splitting the pool one
   third / two thirds (index pages are fewer but hotter). *)
let index_nl p ~outer_rows ~inner_rows ~inner_pages ~matches_per_probe
    ~clustered =
  let h = index_height p ~rows:inner_rows in
  let leaf_pages = Float.max 1. (inner_rows /. float_of_int p.index_fanout) in
  let index_pages = int_of_float (h +. leaf_pages) in
  let idx_buffer = max 1 (p.buffer_pages / 3) in
  let internal_io =
    p.rand_page
    *. Storage.Buffer.expected_fetches ~buffer:idx_buffer ~pages:index_pages
         ~accesses:(int_of_float (Float.max 1. (outer_rows *. h)))
  in
  let total_matches = outer_rows *. matches_per_probe in
  let data_io =
    if clustered then
      let tpp = Float.max 1. (inner_rows /. Float.max 1. inner_pages) in
      p.seq_page *. outer_rows *. Float.ceil (matches_per_probe /. tpp)
    else
      p.rand_page
      *. Storage.Buffer.expected_fetches
           ~buffer:(max 1 (p.buffer_pages * 2 / 3))
           ~pages:(int_of_float (Float.max 1. inner_pages))
           ~accesses:(int_of_float (Float.round total_matches))
  in
  internal_io +. data_io +. (p.cpu_tuple *. (outer_rows +. total_matches))

(* Merge join of two sorted streams (sort enforcers priced separately). *)
let merge_join p ~left_rows ~right_rows ~out_rows =
  p.cpu_tuple *. (left_rows +. right_rows +. out_rows)

(* Hash join, build on right. *)
let hash_join p ~left_rows ~right_rows ~left_pages ~right_pages ~out_rows =
  let spill =
    if right_pages > float_of_int p.work_mem_pages then
      2. *. (left_pages +. right_pages)
    else 0.
  in
  (p.seq_page *. spill)
  +. (p.cpu_tuple *. ((2. *. right_rows) +. left_rows +. out_rows))
