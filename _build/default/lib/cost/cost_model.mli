(** The cost model (Section 5.2).

    Formulas mirror what the executor charges, so the same model priced
    with *estimated* statistics during optimization differs from *measured*
    execution cost only by estimation error (experiment E11).  Costs are
    scalars in sequential-page-read units. *)

type params = {
  seq_page : float;
  rand_page : float;
  cpu_tuple : float;
  buffer_pages : int;
  work_mem_pages : int;  (** memory for sorts/hash builds before spilling *)
  index_fanout : int;
}

val default_params : params

(** Weighted cost of measured execution counters (for predicted-vs-actual
    comparisons). *)
val of_counters : params -> seq:int -> rand:int -> spill:int -> cpu:int -> float

val log2 : float -> float

(** {2 Scans} *)

val seq_scan : params -> pages:float -> rows:float -> float

(** Modelled B+-tree height for a table of [rows] rows. *)
val index_height : params -> rows:float -> float

(** Index scan retrieving [matches] of [rows] rows; non-clustered access
    pays buffered random data reads (Mackert–Lohman/Cardenas, [40]). *)
val index_scan :
  params -> clustered:bool -> pages:float -> rows:float -> matches:float ->
  float

(** {2 Unary operators} *)

val filter : params -> rows:float -> float
val project : params -> rows:float -> float

(** Sort with external-merge spill beyond [work_mem_pages]. *)
val sort : params -> pages:float -> rows:float -> float

val hash_agg : params -> rows:float -> groups:float -> float
val stream_agg : params -> rows:float -> float
val hash_distinct : params -> rows:float -> float

(** {2 Joins} — input costs are paid by the caller; these price the join
    work itself. *)

(** Nested loop with a buffered inner: later passes re-read only the
    buffer overflow. *)
val nested_loop :
  params -> outer_rows:float -> inner_rows:float -> inner_pages:float -> float

(** Index nested loop; index and data pages compete for the buffer pool. *)
val index_nl :
  params -> outer_rows:float -> inner_rows:float -> inner_pages:float ->
  matches_per_probe:float -> clustered:bool -> float

(** Merge join of two sorted streams (sort enforcers priced separately). *)
val merge_join :
  params -> left_rows:float -> right_rows:float -> out_rows:float -> float

(** Hash join, build on the right; Grace-style spill past [work_mem_pages]. *)
val hash_join :
  params -> left_rows:float -> right_rows:float -> left_pages:float ->
  right_pages:float -> out_rows:float -> float
