(** Physical properties of data streams (Section 3; generalized from
    interesting orders by [22]).  Single-site plans carry sort order; the
    parallel library adds partitioning the same way. *)

open Relalg

(** Sort order: column/direction pairs; [[]] means no known order. *)
type order = (Expr.col_ref * Algebra.dir) list

val no_order : order

val equal_col : Expr.col_ref -> Expr.col_ref -> bool
val equal_order : order -> order -> bool

(** A stream ordered on [have] satisfies requirement [want] iff [want] is a
    prefix of [have]. *)
val satisfies : have:order -> want:order -> bool

val pp : Format.formatter -> order -> unit
val to_string : order -> string
