(** Random data generation: uniform and Zipfian distributions, seeded for
    reproducible experiments. *)

val rng : int -> Random.State.t

(** Uniform integer in [lo, hi]. *)
val uniform_int : Random.State.t -> lo:int -> hi:int -> int

type zipf

(** Zipfian over ranks 1..n with exponent [skew] (0 = uniform). *)
val zipf_make : n:int -> skew:float -> zipf

val zipf_draw : Random.State.t -> zipf -> int

(** [size] Zipfian draws over ranks 1..n. *)
val zipf_array : Random.State.t -> n:int -> size:int -> skew:float -> int array

val pick : Random.State.t -> 'a list -> 'a

val name_pool : string list
val city_pool : string list
