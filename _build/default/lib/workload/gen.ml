(* Random data generation: uniform and Zipfian distributions, seeded for
   reproducible experiments. *)

let rng seed = Random.State.make [| seed; 0x5eed |]

let uniform_int st ~lo ~hi = lo + Random.State.int st (hi - lo + 1)

(* Zipfian over ranks 1..n with exponent [skew] (0 = uniform), via inverse
   CDF on precomputed cumulative weights. *)
type zipf = { cum : float array }

let zipf_make ~n ~skew =
  let w = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** skew)) in
  let cum = Array.make n 0. in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.iteri
    (fun i x ->
       acc := !acc +. x;
       cum.(i) <- !acc /. total)
    w;
  { cum }

let zipf_draw st z =
  let u = Random.State.float st 1.0 in
  let n = Array.length z.cum in
  let rec bs lo hi =
    if lo >= hi then lo + 1
    else
      let mid = (lo + hi) / 2 in
      if z.cum.(mid) < u then bs (mid + 1) hi else bs lo mid
  in
  bs 0 (n - 1)

let zipf_array st ~n ~size ~skew =
  let z = zipf_make ~n ~skew in
  Array.init size (fun _ -> zipf_draw st z)

let pick st xs = List.nth xs (Random.State.int st (List.length xs))

let name_pool =
  [ "alice"; "bob"; "carol"; "dave"; "erin"; "frank"; "grace"; "heidi";
    "ivan"; "judy"; "mallory"; "niaj"; "olivia"; "peggy"; "rupert"; "sybil" ]

let city_pool =
  [ "Denver"; "Seattle"; "Austin"; "Boston"; "Chicago"; "Portland";
    "Atlanta"; "Raleigh" ]
