lib/workload/gen.ml: Array List Random
