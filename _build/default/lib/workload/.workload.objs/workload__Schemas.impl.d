lib/workload/schemas.ml: Expr Gen List Printf Relalg Stats Storage String Tuple Value
