lib/workload/schemas.mli: Relalg Stats Storage
