lib/storage/buffer.mli:
