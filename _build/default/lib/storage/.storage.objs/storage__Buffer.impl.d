lib/storage/buffer.ml: Hashtbl Queue
