lib/storage/vec.mli:
