lib/storage/table.ml: Fmt List Page Printf Relalg Schema Tuple Value Vec
