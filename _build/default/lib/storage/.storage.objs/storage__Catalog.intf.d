lib/storage/catalog.mli: Btree Relalg Table
