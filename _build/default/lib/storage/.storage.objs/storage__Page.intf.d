lib/storage/page.mli: Relalg
