lib/storage/btree.mli: Format Relalg Table
