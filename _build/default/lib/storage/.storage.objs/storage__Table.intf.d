lib/storage/table.mli: Format Relalg Vec
