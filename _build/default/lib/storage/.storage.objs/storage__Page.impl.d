lib/storage/page.ml: List Relalg
