lib/storage/btree.ml: Array Fmt List Relalg Stdlib String Table Tuple Value
