lib/storage/catalog.ml: Btree Hashtbl List Option Printf Relalg String Table
