(** Buffer pool: an LRU simulator used during execution, and the analytic
    approximations used by the cost model ([40]'s point that buffer
    utilization matters). *)

(** Page identity: (object name, page number), covering data and index
    pages. *)
type page_id = string * int

module Pool : sig
  type t

  val create : capacity:int -> t

  (** Currently resident pages. *)
  val resident : t -> int

  (** Access a page, updating recency; [`Miss] means a physical read. *)
  val access : t -> page_id -> [ `Hit | `Miss ]

  (** (hits, misses) so far. *)
  val stats : t -> int * int
end

(** Cardenas' formula: expected distinct pages touched by [accesses]
    uniform draws over [pages] pages. *)
val cardenas : pages:int -> accesses:int -> float

(** Mackert–Lohman-style expected physical reads for [accesses] page
    requests against [pages] distinct pages through a buffer of [buffer]
    pages. *)
val expected_fetches : buffer:int -> pages:int -> accesses:int -> float
