(** Composite-key B+-tree-shaped indexes.

    Keys are value lists, one per indexed column, sorted lexicographically;
    probes may supply any non-empty key prefix (the multi-column index
    contract).  [distinct_keys] is the exact count of distinct full keys —
    the paper's "distinct combinations" statistic for multi-column indexes
    (Section 5.1.1).  [clustered] declares that the base table is stored in
    key order. *)

type t = private {
  name : string;
  table : string;
  columns : string list;
  clustered : bool;
  entries : (Relalg.Value.t list * int) array;  (** (key, rid), sorted *)
  fanout : int;
  distinct_keys : int;
}

val default_fanout : int

(** Lexicographic key order using {!Relalg.Value.compare}. *)
val compare_keys : Relalg.Value.t list -> Relalg.Value.t list -> int

(** Build over a table. @raise Invalid_argument on an empty column list. *)
val build :
  ?fanout:int -> name:string -> clustered:bool -> Table.t ->
  columns:string list -> t

(** Leading column (for single-column call sites and display). *)
val column : t -> string

val entry_count : t -> int
val leaf_pages : t -> int

(** B+-tree height (internal levels, at least 1) for a tree of this fanout. *)
val height : t -> int

(** First entry position with key >= / > the given prefix. *)
val lower_bound : t -> Relalg.Value.t list -> int
val upper_bound : t -> Relalg.Value.t list -> int

(** Bounds on the leading column. *)
type bound = Unbounded | Incl of Relalg.Value.t | Excl of Relalg.Value.t

(** Entries whose leading column lies in the range, in key order.  NULL
    keys never match (SQL comparison semantics). *)
val range : t -> lo:bound -> hi:bound -> (Relalg.Value.t list * int) array

(** Equality probe on a key prefix; NULLs in the probe match nothing. *)
val probe : t -> Relalg.Value.t list -> (Relalg.Value.t list * int) array

(** Leaf page number of an entry position, for buffer accounting. *)
val leaf_page_of : t -> int -> int

val pp : Format.formatter -> t -> unit
