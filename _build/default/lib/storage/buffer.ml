(* Buffer pool: an LRU simulator used during execution, and the analytic
   approximations ([40]'s point: buffer utilization matters to costing) used
   by the cost model.

   Page identities are (object name, page number) pairs, covering both data
   pages and index pages. *)

type page_id = string * int

module Pool = struct
  (* LRU with lazy deletion: [order] holds (page, seq) access records; a
     record is current iff its seq matches [latest].  Stale records are
     skipped during eviction, giving O(1) amortized accesses. *)
  type t = {
    capacity : int;
    latest : (page_id, int) Hashtbl.t; (* resident pages -> newest seq *)
    order : (page_id * int) Queue.t;
    mutable seq : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create ~capacity =
    { capacity = max 1 capacity;
      latest = Hashtbl.create 1024;
      order = Queue.create ();
      seq = 0;
      hits = 0;
      misses = 0 }

  let resident t = Hashtbl.length t.latest

  let touch t pid =
    t.seq <- t.seq + 1;
    Hashtbl.replace t.latest pid t.seq;
    Queue.push (pid, t.seq) t.order

  let rec evict_one t =
    match Queue.take_opt t.order with
    | None -> ()
    | Some (pid, seq) -> (
      match Hashtbl.find_opt t.latest pid with
      | Some cur when cur = seq -> Hashtbl.remove t.latest pid
      | Some _ | None -> evict_one t (* stale record *))

  let access t (pid : page_id) : [ `Hit | `Miss ] =
    if Hashtbl.mem t.latest pid then begin
      t.hits <- t.hits + 1;
      touch t pid;
      `Hit
    end
    else begin
      t.misses <- t.misses + 1;
      if resident t >= t.capacity then evict_one t;
      touch t pid;
      `Miss
    end

  let stats t = (t.hits, t.misses)
end

(* Cardenas' formula: expected number of distinct pages touched when [k]
   records are drawn uniformly from a table of [n] pages. *)
let cardenas ~pages:n ~accesses:k =
  if n <= 0 then 0.
  else
    let n = float_of_int n in
    n *. (1. -. ((1. -. (1. /. n)) ** float_of_int k))

(* Mackert–Lohman-style approximation of physical I/O for [accesses] page
   requests against [pages] distinct pages through a buffer of [buffer]
   pages: if the working set fits, each distinct page faults once; otherwise
   the first [buffer] requests fault to fill the pool and later requests hit
   with probability buffer/pages. *)
let expected_fetches ~buffer ~pages ~accesses =
  let distinct = cardenas ~pages ~accesses in
  if distinct <= float_of_int buffer then distinct
  else
    let b = float_of_int buffer in
    let k = float_of_int accesses in
    let p_hit = b /. float_of_int pages in
    b +. ((k -. b) *. (1. -. p_hit))
