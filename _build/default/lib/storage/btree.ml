(* Composite-key B+-tree-shaped index.

   The structure is a lexicographically sorted (key, rid) array plus a
   computed height; that is enough to answer point, prefix and range probes
   and to account pages exactly as a real B+-tree of the given fanout would
   (height-many internal page reads plus the touched leaf pages).
   [clustered] declares that the base table is stored in key order, so
   matching data rows occupy contiguous pages.

   Keys are lists of values, one per indexed column; probes may supply any
   non-empty prefix of the key (the classical multi-column index contract).
   The number of distinct full keys is computed at build time — the paper's
   "total count of distinct combinations of column values" statistic for
   multi-column indexes (Section 5.1.1). *)

open Relalg

type t = {
  name : string;
  table : string;
  columns : string list;
  clustered : bool;
  entries : (Value.t list * int) array; (* sorted by key, then rid *)
  fanout : int;
  distinct_keys : int;
}

let default_fanout = 256

let rec compare_keys (a : Value.t list) (b : Value.t list) =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys -> (
    match Value.compare x y with 0 -> compare_keys xs ys | c -> c)

(* Compare an entry key against a probe prefix: only the first
   |prefix| components participate. *)
let compare_prefix (key : Value.t list) (prefix : Value.t list) =
  let rec go k p =
    match k, p with
    | _, [] -> 0
    | [], _ :: _ -> -1
    | x :: xs, y :: ys -> (
      match Value.compare x y with 0 -> go xs ys | c -> c)
  in
  go key prefix

let entry_compare (k1, r1) (k2, r2) =
  match compare_keys k1 k2 with 0 -> Stdlib.compare r1 r2 | c -> c

let build ?(fanout = default_fanout) ~name ~clustered (table : Table.t)
    ~columns : t =
  if columns = [] then invalid_arg "Btree.build: no columns";
  let cis = List.map (Table.column_index table) columns in
  let entries =
    Array.init (Table.row_count table) (fun rid ->
        ( List.map (fun ci -> Tuple.get (Table.get table rid) ci) cis,
          rid ))
  in
  Array.sort entry_compare entries;
  let distinct_keys =
    let n = Array.length entries in
    let rec go i acc =
      if i >= n then acc
      else if i > 0 && compare_keys (fst entries.(i)) (fst entries.(i - 1)) = 0
      then go (i + 1) acc
      else go (i + 1) (acc + 1)
    in
    go 0 0
  in
  { name; table = table.Table.name; columns; clustered; entries; fanout;
    distinct_keys }

(* Leading column, for single-column call sites and display. *)
let column t = List.hd t.columns

let entry_count t = Array.length t.entries

(* Leaf pages hold [fanout] entries; height counts internal levels. *)
let leaf_pages t = max 1 ((entry_count t + t.fanout - 1) / t.fanout)

let height t =
  let rec go pages h = if pages <= 1 then h else go (pages / t.fanout) (h + 1) in
  go (leaf_pages t) 1

(* First index with key >= prefix (on the prefix components). *)
let lower_bound t (prefix : Value.t list) =
  let n = Array.length t.entries in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let key, _ = t.entries.(mid) in
      if compare_prefix key prefix < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 n

(* First index with key > prefix. *)
let upper_bound t (prefix : Value.t list) =
  let n = Array.length t.entries in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let key, _ = t.entries.(mid) in
      if compare_prefix key prefix <= 0 then go (mid + 1) hi else go lo mid
  in
  go 0 n

type bound = Unbounded | Incl of Value.t | Excl of Value.t
(* bounds apply to the leading column *)

let has_null prefix = List.exists Value.is_null prefix

(* Rids with leading column in the given range, in key order.  NULL keys
   are stored (they sort first) but never match a bounded probe, matching
   SQL comparison semantics. *)
let range t ~(lo : bound) ~(hi : bound) : (Value.t list * int) array =
  let start =
    match lo with
    | Unbounded ->
      (* skip leading-column NULLs: they satisfy no predicate *)
      upper_bound t [ Value.Null ]
    | Incl k -> lower_bound t [ k ]
    | Excl k -> upper_bound t [ k ]
  in
  let stop =
    match hi with
    | Unbounded -> Array.length t.entries
    | Incl k -> upper_bound t [ k ]
    | Excl k -> lower_bound t [ k ]
  in
  if stop <= start then [||] else Array.sub t.entries start (stop - start)

(* Equality probe on a key prefix (at most [columns] long). *)
let probe t (prefix : Value.t list) : (Value.t list * int) array =
  if prefix = [] || has_null prefix then [||]
  else begin
    let start = lower_bound t prefix in
    let stop = upper_bound t prefix in
    if stop <= start then [||] else Array.sub t.entries start (stop - start)
  end

(* Leaf page number containing entry position [i], for buffer accounting. *)
let leaf_page_of t i = i / t.fanout

let pp ppf t =
  Fmt.pf ppf "%s ON %s(%s)%s (%d entries, %d distinct keys, height %d)"
    t.name t.table
    (String.concat ", " t.columns)
    (if t.clustered then " CLUSTERED" else "")
    (entry_count t) t.distinct_keys (height t)
