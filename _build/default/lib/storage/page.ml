(* Page model.  Tables live in memory, but every size and cost in the system
   is expressed in pages of [page_size] bytes so that I/O-centric results
   from the paper keep their shape. *)

let page_size = 8192

(* Fixed per-type widths; strings are modelled as padded CHAR(24). *)
let value_width : Relalg.Value.ty -> int = function
  | Relalg.Value.Tbool -> 1
  | Relalg.Value.Tint -> 8
  | Relalg.Value.Tfloat -> 8
  | Relalg.Value.Tstring -> 24

let tuple_header = 16

let tuple_width (schema : Relalg.Schema.t) =
  tuple_header
  + List.fold_left (fun acc c -> acc + value_width c.Relalg.Schema.ty) 0 schema

let tuples_per_page schema = max 1 (page_size / tuple_width schema)

let pages_for ~rows schema =
  if rows = 0 then 1
  else (rows + tuples_per_page schema - 1) / tuples_per_page schema
