(* Minimal growable array (OCaml 5.1 lacks Dynarray). *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let push v x =
  if v.len = Array.length v.data then begin
    let cap = max 8 (2 * Array.length v.data) in
    let data = Array.make cap x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

let to_array v = Array.sub v.data 0 v.len

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let to_list v = Array.to_list (to_array v)
