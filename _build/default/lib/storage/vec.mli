(** Minimal growable array (OCaml 5.1 lacks [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

(** @raise Invalid_argument on out-of-bounds access. *)
val get : 'a t -> int -> 'a

val push : 'a t -> 'a -> unit
val of_list : 'a list -> 'a t
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val iter : ('a -> unit) -> 'a t -> unit
