(** Page model: every size and cost in the system is expressed in pages so
    that I/O-centric results keep their shape. *)

(** Page size in bytes (8 KiB). *)
val page_size : int

(** Modelled on-page width of one value of the given type. *)
val value_width : Relalg.Value.ty -> int

(** Fixed per-tuple header bytes. *)
val tuple_header : int

(** Modelled width of a tuple of the given schema. *)
val tuple_width : Relalg.Schema.t -> int

(** Tuples fitting on one page (at least 1). *)
val tuples_per_page : Relalg.Schema.t -> int

(** Pages needed for [rows] tuples (at least 1). *)
val pages_for : rows:int -> Relalg.Schema.t -> int
