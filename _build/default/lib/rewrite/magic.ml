(* Magic / semijoin-like decorrelation for multi-block queries
   (Section 4.3, after [42,56]): when a query joins an aggregating view on
   the view's group-by key, compute the rest of the query first
   (PartialResult), project its distinct join keys (Filter), and restrict
   the view's computation to those keys (LimitedView).

   This reproduces the paper's DepAvgSal example:

     CREATE VIEW DepAvgSal AS
       (SELECT E.did, AVG(E.sal) AS avgsal FROM Emp E GROUP BY E.did)
     SELECT E.eid, E.sal FROM Emp E, Dept D, DepAvgSal V
     WHERE E.did = D.did AND E.did = V.did
       AND E.age < 30 AND D.budget > 100k AND E.sal > V.avgsal
   ==>
     PartialResult = joins/filters among {E, D};
     Filter        = SELECT DISTINCT did FROM PartialResult;
     LimitedV      = view with Filter joined in on its group key;
     final         = PartialResult x LimitedV on the key. *)

open Relalg

let apply (b : Qgm.block) : Qgm.block option =
  if b.Qgm.group_by <> [] || b.Qgm.aggs <> [] then None
  else if b.Qgm.semijoins <> [] || b.Qgm.outerjoins <> [] then None
  else if not (List.for_all (function Qgm.P _ -> true | _ -> false) b.Qgm.where)
  then None
  else begin
    (* find an aggregating derived source V grouped by a single key, joined
       to the rest on that key *)
    let preds = Qgm.plain_preds b.Qgm.where in
    let find_view () =
      List.find_map
        (fun src ->
           match src with
           | Qgm.Derived { block = view; alias }
             when view.Qgm.aggs <> []
                  && List.length view.Qgm.group_by = 1
                  && (not (Qgm.is_correlated view))
                  && List.for_all
                       (function Qgm.Base _ -> true | Qgm.Derived _ -> false)
                       view.Qgm.from
                     (* all-Base sources: also prevents re-application to an
                        already-limited view *)
                  && Qgm.is_simple_spj
                       { view with Qgm.aggs = []; group_by = [];
                         select = view.Qgm.select } ->
             (* output name of the group key *)
             let key_alias = snd (List.hd view.Qgm.group_by) in
             let key_out =
               List.find_map
                 (fun (e, out) ->
                    match e with
                    | Expr.Col { Expr.rel = ""; col } when col = key_alias ->
                      Some out
                    | _ -> None)
                 view.Qgm.select
             in
             (match key_out with
              | None -> None
              | Some key_out ->
                (* a join predicate V.key_out = <other>.c *)
                List.find_map
                  (fun p ->
                     match p with
                     | Expr.Cmp (Expr.Eq, Expr.Col x, Expr.Col y)
                       when x.Expr.rel = alias && x.Expr.col = key_out
                            && y.Expr.rel <> alias ->
                       Some (src, view, alias, key_out, p, y)
                     | Expr.Cmp (Expr.Eq, Expr.Col y, Expr.Col x)
                       when x.Expr.rel = alias && x.Expr.col = key_out
                            && y.Expr.rel <> alias ->
                       Some (src, view, alias, key_out, p, y)
                     | _ -> None)
                  preds)
           | Qgm.Derived _ | Qgm.Base _ -> None)
        b.Qgm.from
    in
    match find_view () with
    | None -> None
    | Some (v_src, view, v_alias, key_out, link_pred, outer_key_col) ->
      let others = List.filter (fun s -> s != v_src) b.Qgm.from in
      if others = [] then None
      else begin
        let other_aliases = List.map Qgm.alias_of_source others in
        (* predicates among the other sources only *)
        let among_others, rest =
          List.partition
            (fun p ->
               p != link_pred
               && Expr.relations p <> []
               && List.for_all (fun r -> List.mem r other_aliases)
                    (Expr.relations p))
            (List.filter (fun p -> p != link_pred) preds)
        in
        (* PartialResult: the others joined and filtered, exporting every
           column the rest of the query needs *)
        let pr_alias = Qgm.fresh_alias "partial" in
        let needed_cols =
          List.concat_map Expr.columns
            (List.map fst b.Qgm.select @ rest
             @ [ Expr.Col outer_key_col ]
             @ List.map fst b.Qgm.order_by)
          |> List.filter (fun (c : Expr.col_ref) ->
              List.mem c.Expr.rel other_aliases)
          |> List.sort_uniq compare
        in
        let export_name (c : Expr.col_ref) =
          Printf.sprintf "%s_%s" c.Expr.rel c.Expr.col
        in
        let partial =
          Qgm.simple
            ~select:
              (List.map
                 (fun (c : Expr.col_ref) -> (Expr.Col c, export_name c))
                 needed_cols)
            ~from:others ~where:among_others ()
        in
        (* Filter: distinct join keys of PartialResult *)
        let f_alias = Qgm.fresh_alias "filter" in
        let filter_block =
          { (Qgm.simple
               ~select:[ (Expr.col ~rel:pr_alias ~col:(export_name outer_key_col), "key") ]
               ~from:[ Qgm.Derived { block = partial; alias = pr_alias } ] ())
            with Qgm.distinct = true }
        in
        (* LimitedView: the view restricted by the Filter on its group key *)
        let key_expr = fst (List.hd view.Qgm.group_by) in
        let limited =
          { view with
            Qgm.from =
              view.Qgm.from
              @ [ Qgm.Derived { block = filter_block; alias = f_alias } ];
            where =
              view.Qgm.where
              @ [ Qgm.P (Expr.Cmp (Expr.Eq, key_expr,
                                   Expr.col ~rel:f_alias ~col:"key")) ] }
        in
        (* final block over PartialResult and LimitedView *)
        let map =
          List.map
            (fun (c : Expr.col_ref) ->
               (c, Expr.col ~rel:pr_alias ~col:(export_name c)))
            needed_cols
        in
        let s e = Qgm.subst_expr map e in
        Some
          { b with
            Qgm.from =
              [ Qgm.Derived { block = partial; alias = pr_alias };
                Qgm.Derived { block = limited; alias = v_alias } ];
            where =
              Qgm.P
                (Expr.Cmp (Expr.Eq,
                           Expr.col ~rel:pr_alias ~col:(export_name outer_key_col),
                           Expr.col ~rel:v_alias ~col:key_out))
              :: List.map (fun e -> Qgm.P (s e)) rest;
            select = List.map (fun (e, a) -> (s e, a)) b.Qgm.select;
            order_by = List.map (fun (e, d) -> (s e, d)) b.Qgm.order_by }
      end
  end

let rule : Rules.t = { name = "magic_decorrelation"; apply }
