(** View merging (Section 4.2.1): a derived source defined by a simple
    conjunctive (SPJ) block is unfolded into its parent so that view and
    query joins may be reordered freely. *)

(** Merge the first mergeable derived FROM source, or [None]. *)
val apply : Qgm.block -> Qgm.block option

val rule : Rules.t
