lib/rewrite/unnest.ml: Expr List Pred Printf Qgm Relalg Rules Schema
