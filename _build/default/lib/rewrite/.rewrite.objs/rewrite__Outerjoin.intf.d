lib/rewrite/outerjoin.mli: Algebra Relalg
