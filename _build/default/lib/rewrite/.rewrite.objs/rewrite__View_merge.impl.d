lib/rewrite/view_merge.ml: Expr List Qgm Relalg Rules
