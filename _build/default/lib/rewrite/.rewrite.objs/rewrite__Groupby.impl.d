lib/rewrite/groupby.ml: Expr List Printf Qgm Relalg Rules
