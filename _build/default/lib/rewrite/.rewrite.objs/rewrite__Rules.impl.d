lib/rewrite/rules.ml: Hashtbl List Option Qgm
