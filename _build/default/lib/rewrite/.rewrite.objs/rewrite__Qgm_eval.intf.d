lib/rewrite/qgm_eval.mli: Exec Qgm Storage
