lib/rewrite/rules.mli: Qgm
