lib/rewrite/outerjoin.ml: Algebra Expr List Option Relalg
