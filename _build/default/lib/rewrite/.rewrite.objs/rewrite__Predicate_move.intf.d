lib/rewrite/predicate_move.mli: Qgm Rules
