lib/rewrite/qgm.ml: Algebra Expr Fmt List Printf Relalg Schema String Typing
