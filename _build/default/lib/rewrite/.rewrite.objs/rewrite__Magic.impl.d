lib/rewrite/magic.ml: Expr List Printf Qgm Relalg Rules
