lib/rewrite/unnest.mli: Expr Qgm Relalg Rules
