lib/rewrite/lower.ml: Algebra Expr Fmt List Pred Qgm Relalg
