lib/rewrite/qgm.mli: Algebra Expr Format Relalg Schema
