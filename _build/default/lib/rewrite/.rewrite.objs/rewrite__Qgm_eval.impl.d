lib/rewrite/qgm_eval.ml: Algebra Array Exec Expr Hashtbl List Pred Qgm Relalg Schema Storage Tuple Typing Value
