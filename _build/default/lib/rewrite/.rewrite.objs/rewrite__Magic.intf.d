lib/rewrite/magic.mli: Qgm Rules
