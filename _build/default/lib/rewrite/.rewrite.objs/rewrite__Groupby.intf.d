lib/rewrite/groupby.mli: Qgm Rules
