lib/rewrite/lower.mli: Qgm Relalg
