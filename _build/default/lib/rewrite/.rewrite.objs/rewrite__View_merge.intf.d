lib/rewrite/view_merge.mli: Qgm Rules
