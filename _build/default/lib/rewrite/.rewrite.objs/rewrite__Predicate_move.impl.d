lib/rewrite/predicate_move.ml: Expr List Qgm Relalg Rules
