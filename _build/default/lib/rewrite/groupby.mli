(** Eager (staged) aggregation — group-by pushed below a join, Figure 4(c)
    and [5,60].  A source supplying every aggregate argument is replaced by
    a pre-aggregating view grouped on (its group-by ∪ join columns); the
    outer group-by re-aggregates with the combining form of each aggregate
    (SUM→SUM, COUNT→SUM, MIN→MIN, MAX→MAX).  AVG is not decomposed. *)

val apply : Qgm.block -> Qgm.block option

val rule : Rules.t
