(** Subquery unnesting (Section 4.2.2, after Kim [35], Dayal [13] and
    Muralikrishna [44]): IN/EXISTS become semijoins against a decorrelated
    view, NOT EXISTS an antijoin, and correlated scalar aggregates a left
    outerjoin plus grouping — the outerjoin being what avoids the count
    bug. *)

open Relalg

(** A decorrelated SPJ subquery: the local view, the correlation conjuncts
    rewritten against it, and its first output column. *)
type decorrelated = {
  view : Qgm.block;
  view_alias : string;
  corr_pred : Expr.t list;
  out_col : Expr.col_ref;
}

val decorrelate_spj : Qgm.block -> decorrelated option

(** IN / EXISTS -> semijoin; NOT EXISTS -> antijoin. *)
val quantified_rule : Rules.t

(** Uncorrelated scalar subquery -> one-row derived source. *)
val scalar_uncorrelated_rule : Rules.t

(** Correlated scalar aggregate -> left outerjoin + group-by (count-bug
    safe; grouping by all outer columns assumes distinct outer rows, the
    standard assumption of [44]). *)
val scalar_correlated_rule : Rules.t

(** The deliberately wrong inner-join variant, kept to exhibit the count
    bug (experiment E5). *)
val naive_cmp_rule : Rules.t

(** [quantified_rule; scalar_uncorrelated_rule; scalar_correlated_rule]. *)
val default_rules : Rules.t list
