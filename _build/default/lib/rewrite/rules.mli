(** Starburst-style forward-chaining rule engine (Section 6.1): rules are
    condition/transform pairs over QGM blocks, grouped into classes that
    run to fixpoint in order. *)

type t = { name : string; apply : Qgm.block -> Qgm.block option }

(** Apply a rule once somewhere in the block tree (top-down, leftmost),
    descending into derived sources and subquery predicates. *)
val apply_once : t -> Qgm.block -> Qgm.block option

(** (rule name, application count) pairs. *)
type trace = (string * int) list

(** Run each class to fixpoint in order; [budget] bounds total
    applications. *)
val run : ?budget:int -> t list list -> Qgm.block -> Qgm.block * trace
