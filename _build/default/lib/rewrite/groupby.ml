(* Group-by and join commutation: eager (staged) aggregation, Figure 4(c)
   and [5,60].

   Pattern: a block grouping the join of several sources, where every
   aggregate argument comes from one source R.  R is replaced by a derived
   source that pre-aggregates R on (its group-by columns ∪ its join
   columns); the outer group-by re-aggregates the partial results with the
   combining form of each aggregate (SUM→SUM, COUNT→SUM, MIN→MIN, MAX→MAX).
   Correct for arbitrary join multiplicities because all rows of a partial
   partition share their join-column values.  AVG is not decomposed (it
   would need a SUM/COUNT pair); blocks using it are left unchanged. *)

open Relalg

let combining_agg (g : Expr.agg) (partial_col : Expr.t) : Expr.agg option =
  match g with
  | Expr.Sum _ -> Some (Expr.Sum partial_col)
  | Expr.Count _ | Expr.Count_star -> Some (Expr.Sum partial_col)
  | Expr.Min _ -> Some (Expr.Min partial_col)
  | Expr.Max _ -> Some (Expr.Max partial_col)
  | Expr.Avg _ -> None

(* Columns of alias [a] referenced anywhere in [exprs]. *)
let cols_of_alias a exprs =
  List.concat_map Expr.columns exprs
  |> List.filter (fun (c : Expr.col_ref) -> c.Expr.rel = a)
  |> List.sort_uniq compare

let apply (b : Qgm.block) : Qgm.block option =
  if b.Qgm.aggs = [] || b.Qgm.group_by = [] then None
  else if List.length b.Qgm.from < 2 then None
  else if b.Qgm.semijoins <> [] || b.Qgm.outerjoins <> [] then None
  else if not (List.for_all (function Qgm.P _ -> true | _ -> false) b.Qgm.where)
  then None
  else begin
    (* candidate source: a Base source R such that every aggregate argument
       references only R *)
    let agg_args =
      List.filter_map (fun (g, _) -> Expr.agg_arg g) b.Qgm.aggs
    in
    let arg_aliases =
      List.concat_map Expr.relations agg_args |> List.sort_uniq compare
    in
    let candidate =
      match arg_aliases with
      | [ a ] ->
        List.find_opt
          (fun src ->
             Qgm.alias_of_source src = a
             &&
             match src with
             | Qgm.Base _ -> true
             | Qgm.Derived _ -> false)
          b.Qgm.from
      | [] | _ :: _ -> None
    in
    match candidate with
    | None -> None
    | Some (Qgm.Derived _) -> None
    | Some (Qgm.Base { alias = r_alias; _ } as r_src) ->
      (* every aggregate must be decomposable *)
      let decomposable =
        List.for_all
          (fun (g, _) -> combining_agg g (Expr.int 0) <> None)
          b.Qgm.aggs
      in
      (* group-by keys must be plain columns (so we can re-point them) *)
      let keys_are_cols =
        List.for_all
          (fun (e, _) -> match e with Expr.Col _ -> true | _ -> false)
          b.Qgm.group_by
      in
      if (not decomposable) || not keys_are_cols then None
      else begin
        let others = List.filter (fun s -> s != r_src) b.Qgm.from in
        let where_exprs = Qgm.plain_preds b.Qgm.where in
        let r_local, rest_preds =
          List.partition
            (fun e -> Expr.relations e = [ r_alias ])
            where_exprs
        in
        (* R columns needed above the pre-aggregation: join/filter columns
           of cross predicates, group-by columns from R, select refs *)
        let needed =
          cols_of_alias r_alias
            (rest_preds
             @ List.map fst b.Qgm.group_by
             @ List.map fst b.Qgm.select)
        in
        if needed = [] then None
        else begin
          let v_alias = Qgm.fresh_alias "eag" in
          let partial_aggs =
            List.mapi
              (fun i (g, _) -> (g, Printf.sprintf "partial%d" i))
              b.Qgm.aggs
          in
          let view =
            (* select references the grouped output: unqualified key aliases
               and partial-aggregate aliases *)
            Qgm.simple
              ~select:
                (List.map
                   (fun (c : Expr.col_ref) ->
                      (Expr.col ~rel:"" ~col:c.Expr.col, c.Expr.col))
                   needed
                 @ List.map
                     (fun (g, a) -> ignore g; (Expr.col ~rel:"" ~col:a, a))
                     partial_aggs)
              ~from:[ r_src ] ~where:r_local
              ~group_by:
                (List.map
                   (fun (c : Expr.col_ref) -> (Expr.Col c, c.Expr.col))
                   needed)
              ~aggs:partial_aggs ()
          in
          (* re-point references R.c -> V.c everywhere above the view *)
          let map =
            List.map
              (fun (c : Expr.col_ref) ->
                 (c, Expr.col ~rel:v_alias ~col:c.Expr.col))
              needed
          in
          let s e = Qgm.subst_expr map e in
          let outer_aggs =
            List.map2
              (fun (g, a) (_, pname) ->
                 match combining_agg g (Expr.col ~rel:v_alias ~col:pname) with
                 | Some g' -> (g', a)
                 | None -> assert false)
              b.Qgm.aggs partial_aggs
          in
          Some
            { b with
              Qgm.from =
                others @ [ Qgm.Derived { block = view; alias = v_alias } ];
              where = List.map (fun e -> Qgm.P (s e)) rest_preds;
              group_by = List.map (fun (e, a) -> (s e, a)) b.Qgm.group_by;
              aggs = outer_aggs;
              having =
                List.map
                  (function
                    | Qgm.P e -> Qgm.P (s e)
                    | p -> p)
                  b.Qgm.having;
              select = List.map (fun (e, a) -> (s e, a)) b.Qgm.select;
              order_by = List.map (fun (e, d) -> (s e, d)) b.Qgm.order_by }
        end
      end
    end

let rule : Rules.t = { name = "eager_groupby"; apply }
