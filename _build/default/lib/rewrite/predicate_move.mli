(** Predicate pushdown and move-around (Section 4.3's degenerate case,
    generalized in [36]). *)

(** Push outer conjuncts into a derived FROM source when every referenced
    column is answerable there (only group-by key columns may cross an
    aggregation). *)
val pushdown : Qgm.block -> Qgm.block option

val pushdown_rule : Rules.t

(** One-step transitive constant propagation: from a = c and a = k derive
    c = k. *)
val move_constants : Qgm.block -> Qgm.block option

val constants_rule : Rules.t
