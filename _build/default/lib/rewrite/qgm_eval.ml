(* Naive tuple-iteration interpreter for QGM blocks (Section 4.2.2's
   baseline semantics): correlated subqueries are re-evaluated once per
   outer tuple, charging the shared execution context for every rescan.

   This is both (a) the ground truth that every rewrite must preserve, and
   (b) the "before" system in the unnesting and magic experiments. *)

open Relalg

type env = { schema : Schema.t; tuple : Tuple.t }

let empty_env = { schema = []; tuple = [||] }

let extend (env : env) (schema : Schema.t) (tuple : Tuple.t) : env =
  { schema = Schema.concat env.schema schema;
    tuple = Tuple.concat env.tuple tuple }

let rec source_rows ctx cat (env : env) (s : Qgm.source) :
  Schema.t * Tuple.t array =
  match s with
  | Qgm.Base { table; alias; schema } ->
    let r =
      Exec.Executor.run ~ctx cat
        (Exec.Plan.Seq_scan { table; alias; filter = None })
    in
    ignore r.Exec.Executor.schema;
    (schema, r.Exec.Executor.rows)
  | Qgm.Derived { block; alias } ->
    let schema, rows = eval_block ctx cat env block in
    (Schema.requalify schema ~rel:alias, rows)

(* Evaluate one predicate against a tuple (2-valued WHERE: UNKNOWN rejects).
   Subquery predicates recursively evaluate their block with the current
   tuple added to the environment — tuple iteration semantics. *)
and pred_holds ctx cat (env : env) (schema : Schema.t) (p : Qgm.predicate)
    (t : Tuple.t) : bool =
  let local = extend env schema t in
  match p with
  | Qgm.P e -> Expr.holds local.schema e local.tuple
  | Qgm.In_sub (e, blk) ->
    let v = Expr.eval local.schema local.tuple e in
    if Value.is_null v then false
    else begin
      let _, rows = eval_block ctx cat local blk in
      Exec.Context.charge_cpu ctx (Array.length rows);
      Array.exists
        (fun r -> Value.sql_cmp v (Tuple.get r 0) = Some 0)
        rows
    end
  | Qgm.Exists_sub (positive, blk) ->
    let _, rows = eval_block ctx cat local blk in
    if positive then Array.length rows > 0 else Array.length rows = 0
  | Qgm.Cmp_sub (op, e, blk) -> (
    let v = Expr.eval local.schema local.tuple e in
    let _, rows = eval_block ctx cat local blk in
    if Array.length rows = 0 then false (* comparison with empty scalar: NULL *)
    else
      let w = Tuple.get rows.(0) 0 in
      match Value.sql_cmp v w with
      | None -> false
      | Some c -> Expr.compare_op op c)

(* Full evaluation of a block under a correlation environment. Returns the
   block's output schema (unqualified select aliases) and rows. *)
and eval_block ctx cat (env : env) (b : Qgm.block) : Schema.t * Tuple.t array
  =
  (* 1. inner-join the FROM sources, applying plain predicates as soon as
     their columns are bound *)
  let plain, subs =
    List.partition (function Qgm.P _ -> true | _ -> false) b.Qgm.where
  in
  let plain_exprs = Qgm.plain_preds plain in
  let applicable bound_schema used =
    List.filter
      (fun e ->
         (not (List.memq e used))
         && List.for_all
              (fun (c : Expr.col_ref) ->
                 Schema.mem bound_schema ~rel:c.Expr.rel ~name:c.Expr.col)
              (Expr.columns e))
      plain_exprs
  in
  let join_step (schema, rows, used) src =
    let s_schema, s_rows = source_rows ctx cat env src in
    let schema' = Schema.concat schema s_schema in
    let ps = applicable (Schema.concat env.schema schema') used in
    let keep =
      match ps with
      | [] -> fun _ -> true
      | _ ->
        let f =
          Expr.holds (Schema.concat env.schema schema') (Pred.of_conjuncts ps)
        in
        fun t -> f (Tuple.concat env.tuple t)
    in
    let out = Storage.Vec.create () in
    Array.iter
      (fun t ->
         Array.iter
           (fun st ->
              Exec.Context.charge_cpu ctx 1;
              let joined = Tuple.concat t st in
              if keep joined then Storage.Vec.push out joined)
           s_rows)
      rows;
    (schema', Storage.Vec.to_array out, used @ ps)
  in
  let schema, rows, used =
    List.fold_left join_step (([] : Schema.t), [| [||] |], []) b.Qgm.from
  in
  (* any plain predicates not yet applied (e.g. constants) *)
  let leftover =
    List.filter (fun e -> not (List.memq e used)) plain_exprs
  in
  let rows =
    match leftover with
    | [] -> rows
    | ps ->
      let f = Expr.holds (Schema.concat env.schema schema) (Pred.of_conjuncts ps) in
      Array.of_list
        (List.filter (fun t -> f (Tuple.concat env.tuple t)) (Array.to_list rows))
  in
  (* 2. subquery predicates, per tuple *)
  let rows =
    List.fold_left
      (fun rows p ->
         Array.of_list
           (List.filter (fun t -> pred_holds ctx cat env schema p t)
              (Array.to_list rows)))
      rows subs
  in
  (* 3. semijoins / antijoins *)
  let schema, rows =
    List.fold_left
      (fun (schema, rows) (sj : Qgm.semijoin) ->
         let s_schema, s_rows = source_rows ctx cat env sj.Qgm.s_source in
         let full = Schema.concat (Schema.concat env.schema schema) s_schema in
         let f = Expr.holds full sj.Qgm.s_pred in
         let keep t =
           let m =
             Array.exists
               (fun st ->
                  Exec.Context.charge_cpu ctx 1;
                  f (Tuple.concat (Tuple.concat env.tuple t) st))
               s_rows
           in
           if sj.Qgm.s_anti then not m else m
         in
         (schema, Array.of_list (List.filter keep (Array.to_list rows))))
      (schema, rows) b.Qgm.semijoins
  in
  (* 4. left outer joins *)
  let schema, rows =
    List.fold_left
      (fun (schema, rows) (oj : Qgm.outerjoin) ->
         let s_schema, s_rows = source_rows ctx cat env oj.Qgm.o_source in
         let schema' = Schema.concat schema s_schema in
         let full = Schema.concat env.schema schema' in
         let f = Expr.holds full oj.Qgm.o_pred in
         let out = Storage.Vec.create () in
         Array.iter
           (fun t ->
              let any = ref false in
              Array.iter
                (fun st ->
                   Exec.Context.charge_cpu ctx 1;
                   let j = Tuple.concat t st in
                   if f (Tuple.concat env.tuple j) then begin
                     any := true;
                     Storage.Vec.push out j
                   end)
                s_rows;
              if not !any then
                Storage.Vec.push out
                  (Tuple.concat t (Tuple.nulls (Schema.arity s_schema))))
           rows;
         (schema', Storage.Vec.to_array out))
      (schema, rows) b.Qgm.outerjoins
  in
  (* 5. grouping / aggregation *)
  let post_schema, post_rows =
    if b.Qgm.group_by = [] && b.Qgm.aggs = [] then (schema, rows)
    else begin
      let full = Schema.concat env.schema schema in
      let keyfs =
        List.map (fun (e, _) -> Expr.compile full e) b.Qgm.group_by
      in
      let argfs =
        List.map
          (fun (g, _) ->
             match Expr.agg_arg g with
             | None -> fun _ -> Value.Int 1
             | Some e -> Expr.compile full e)
          b.Qgm.aggs
      in
      let module KT = Hashtbl in
      let tbl : (Value.t list, Expr.agg_state list) KT.t = KT.create 64 in
      let order = Storage.Vec.create () in
      Array.iter
        (fun t ->
           let w = Tuple.concat env.tuple t in
           let kv = List.map (fun f -> f w) keyfs in
           let states =
             match KT.find_opt tbl kv with
             | Some st -> st
             | None ->
               let st = List.map (fun _ -> Expr.agg_init ()) b.Qgm.aggs in
               KT.replace tbl kv st;
               Storage.Vec.push order kv;
               st
           in
           Exec.Context.charge_cpu ctx 1;
           List.iter2 (fun f st -> Expr.agg_step st (f w)) argfs states)
        rows;
      let out_schema =
        List.map
          (fun (e, a) ->
             Schema.column ~rel:"" ~name:a ~ty:(Typing.infer full e))
          b.Qgm.group_by
        @ List.map
            (fun (g, a) ->
               Schema.column ~rel:"" ~name:a ~ty:(Typing.infer_agg full g))
            b.Qgm.aggs
      in
      let out = Storage.Vec.create () in
      Storage.Vec.iter
        (fun kv ->
           let states = KT.find tbl kv in
           Storage.Vec.push out
             (Array.of_list
                (kv
                 @ List.map2 (fun (g, _) st -> Expr.agg_final g st)
                     b.Qgm.aggs states)))
        order;
      if b.Qgm.group_by = [] && Storage.Vec.length out = 0 then
        Storage.Vec.push out
          (Array.of_list
             (List.map
                (fun (g, _) -> Expr.agg_final g (Expr.agg_init ()))
                b.Qgm.aggs));
      (out_schema, Storage.Vec.to_array out)
    end
  in
  (* 6. HAVING *)
  let post_rows =
    List.fold_left
      (fun rows p ->
         Array.of_list
           (List.filter (fun t -> pred_holds ctx cat env post_schema p t)
              (Array.to_list rows)))
      post_rows b.Qgm.having
  in
  (* 7. ORDER BY (before projection; keys refer to the pre-select schema) *)
  let post_rows =
    match b.Qgm.order_by with
    | [] -> post_rows
    | keys ->
      let full = Schema.concat env.schema post_schema in
      let fs =
        List.map (fun (e, d) -> (Expr.compile full e, d)) keys
      in
      let cmp a b =
        let wa = Tuple.concat env.tuple a and wb = Tuple.concat env.tuple b in
        let rec go = function
          | [] -> 0
          | (f, d) :: rest -> (
            match Value.compare (f wa) (f wb) with
            | 0 -> go rest
            | c -> if d = Algebra.Desc then -c else c)
        in
        go fs
      in
      let copy = Array.copy post_rows in
      Array.stable_sort cmp copy;
      copy
  in
  (* 8. SELECT list *)
  let full = Schema.concat env.schema post_schema in
  let sel_fs = List.map (fun (e, _) -> Expr.compile full e) b.Qgm.select in
  let out_schema =
    List.map
      (fun (e, a) -> Schema.column ~rel:"" ~name:a ~ty:(Typing.infer full e))
      b.Qgm.select
  in
  let projected =
    Array.map
      (fun t ->
         let w = Tuple.concat env.tuple t in
         Array.of_list (List.map (fun f -> f w) sel_fs))
      post_rows
  in
  (* 9. DISTINCT *)
  let final =
    if not b.Qgm.distinct then projected
    else begin
      let seen = Hashtbl.create 64 in
      let out = Storage.Vec.create () in
      Array.iter
        (fun t ->
           let k = Array.to_list t in
           if not (Hashtbl.mem seen k) then begin
             Hashtbl.replace seen k ();
             Storage.Vec.push out t
           end)
        projected;
      Storage.Vec.to_array out
    end
  in
  (out_schema, final)

let run ?(ctx = Exec.Context.create ()) cat (b : Qgm.block) :
  Exec.Executor.result =
  let schema, rows = eval_block ctx cat empty_env b in
  { Exec.Executor.schema; rows }

(* Union semantics: UNION ALL concatenates; UNION additionally removes
   duplicate rows (SQL set semantics). *)
let rec run_query ?(ctx = Exec.Context.create ()) cat (q : Qgm.query) :
  Exec.Executor.result =
  match q with
  | Qgm.Q_block b -> run ~ctx cat b
  | Qgm.Q_union { all; left; right } ->
    let l = run_query ~ctx cat left in
    let r = run_query ~ctx cat right in
    if Relalg.Schema.arity l.Exec.Executor.schema
       <> Relalg.Schema.arity r.Exec.Executor.schema
    then invalid_arg "UNION: arity mismatch";
    let rows = Array.append l.Exec.Executor.rows r.Exec.Executor.rows in
    let rows =
      if all then rows
      else begin
        let seen = Hashtbl.create 64 in
        let out = Storage.Vec.create () in
        Array.iter
          (fun t ->
             let k = Array.to_list t in
             if not (Hashtbl.mem seen k) then begin
               Hashtbl.replace seen k ();
               Storage.Vec.push out t
             end)
          rows;
        Storage.Vec.to_array out
      end
    in
    { Exec.Executor.schema = l.Exec.Executor.schema; rows }
