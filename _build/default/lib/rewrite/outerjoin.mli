(** Join/outerjoin association (Section 4.1.2, after [53]):
    Join(R, S LOJ T) = Join(R,S) LOJ T when the join predicate links R and
    S.  Repeated application yields a block of joins below a block of
    outerjoins, after which the joins reorder freely. *)

open Relalg

(** One rewrite step anywhere in the tree; [None] when already normal. *)
val step : Algebra.t -> Algebra.t option

(** Apply {!step} to fixpoint. *)
val normalize : Algebra.t -> Algebra.t

(** No outerjoin appears below an inner join. *)
val normalized : Algebra.t -> bool
