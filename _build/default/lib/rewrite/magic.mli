(** Magic / semijoin-like decorrelation (Section 4.3, after [42,56]): when
    a query joins an aggregating view on its group-by key, compute the rest
    of the query first (PartialResult), project its distinct keys (Filter),
    and restrict the view to them (LimitedView) — the paper's DepAvgSal
    example. *)

val apply : Qgm.block -> Qgm.block option

val rule : Rules.t
