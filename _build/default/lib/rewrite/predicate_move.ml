(* Predicate pushdown and move-around (Section 4.3's degenerate case,
   generalized in [36]):
   - push a conjunct that only references one derived source's columns into
     that source's WHERE (through the select-list renaming);
   - propagate constants through equality classes: from R.a = S.b and
     R.a = 5 derive S.b = 5. *)

open Relalg

(* Push outer conjuncts into a derived FROM source when every referenced
   column belongs to that source and maps to a plain column or expression.
   Grouped views accept only predicates on their group-by output columns. *)
let pushdown (b : Qgm.block) : Qgm.block option =
  let derived =
    List.filter_map
      (function Qgm.Derived { block; alias } -> Some (alias, block) | Qgm.Base _ -> None)
      b.Qgm.from
  in
  if derived = [] then None
  else begin
    let try_push (alias, (view : Qgm.block)) =
      (* output column -> defining expression, but only columns that are
         safe to filter early: any column for SPJ views, group-by key
         columns for aggregating views *)
      let safe_outputs =
        if view.Qgm.aggs = [] && view.Qgm.group_by = [] then view.Qgm.select
        else
          (* only predicates on group-by keys may cross an aggregation *)
          List.filter
            (fun (e, _) ->
               match e with
               | Expr.Col { Expr.rel = ""; col } ->
                 List.exists (fun (_, k) -> k = col) view.Qgm.group_by
               | _ -> false)
            view.Qgm.select
      in
      let resolvable (c : Expr.col_ref) =
        c.Expr.rel = alias && List.exists (fun (_, a) -> a = c.Expr.col) safe_outputs
      in
      let pushable, kept =
        List.partition
          (function
            | Qgm.P e ->
              let cols = Expr.columns e in
              cols <> [] && List.for_all resolvable cols
            | Qgm.In_sub _ | Qgm.Exists_sub _ | Qgm.Cmp_sub _ -> false)
          b.Qgm.where
      in
      if pushable = [] then None
      else begin
        (* rewrite pushed predicates into the view's namespace *)
        let inner_of (c : Expr.col_ref) =
          let e, _ = List.find (fun (_, a) -> a = c.Expr.col) view.Qgm.select in
          (* for grouped views the select references grouped output; pushing
             below the grouping needs the key's defining expression *)
          match e with
          | Expr.Col { Expr.rel = ""; col } when view.Qgm.group_by <> [] -> (
            match List.find_opt (fun (_, k) -> k = col) view.Qgm.group_by with
            | Some (ke, _) -> ke
            | None -> e)
          | _ -> e
        in
        let subst e =
          let map =
            Expr.columns e |> List.map (fun c -> (c, inner_of c))
          in
          Qgm.subst_expr map e
        in
        let pushed_exprs =
          List.map
            (function Qgm.P e -> subst e | _ -> assert false)
            pushable
        in
        let view' =
          { view with
            Qgm.where =
              view.Qgm.where @ List.map (fun e -> Qgm.P e) pushed_exprs }
        in
        let from' =
          List.map
            (function
              | Qgm.Derived { alias = a; _ } when a = alias ->
                Qgm.Derived { block = view'; alias }
              | s -> s)
            b.Qgm.from
        in
        Some { b with Qgm.from = from'; where = kept }
      end
    in
    List.find_map try_push derived
  end

let pushdown_rule : Rules.t = { name = "predicate_pushdown"; apply = pushdown }

(* Transitive constant propagation across equality conjuncts. *)
let move_constants (b : Qgm.block) : Qgm.block option =
  let plain = Qgm.plain_preds b.Qgm.where in
  let eqs =
    List.filter_map
      (function
        | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col c) -> Some (a, c)
        | _ -> None)
      plain
  in
  let consts =
    List.filter_map
      (function
        | Expr.Cmp (Expr.Eq, Expr.Col a, (Expr.Const _ as v)) -> Some (a, v)
        | Expr.Cmp (Expr.Eq, (Expr.Const _ as v), Expr.Col a) -> Some (a, v)
        | _ -> None)
      plain
  in
  (* one-step closure: a = c and a = const  ==>  c = const *)
  let new_preds =
    List.concat_map
      (fun (a, c) ->
         let derive src dst =
           List.filter_map
             (fun (col, v) ->
                if col = src then
                  let p = Expr.Cmp (Expr.Eq, Expr.Col dst, v) in
                  if List.exists (fun q -> q = p) plain then None else Some p
                else None)
             consts
         in
         derive a c @ derive c a)
      eqs
    |> List.sort_uniq compare
  in
  if new_preds = [] then None
  else
    Some
      { b with
        Qgm.where = b.Qgm.where @ List.map (fun e -> Qgm.P e) new_preds }

let constants_rule : Rules.t =
  { name = "constant_propagation"; apply = move_constants }
