(* Join/outerjoin association (Section 4.1.2, after [53]): when the join
   predicate links R and S and the outerjoin predicate links S and T,

     Join(R, S LOJ T)  =  Join(R, S) LOJ T

   Repeated application turns a tree into a "block of joins" followed by a
   "block of outerjoins", after which the joins reorder freely.  This
   normalization runs on the logical algebra; the QGM layer maintains the
   same normal form structurally (inner FROM list + trailing outerjoins). *)

open Relalg

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* One rewrite step anywhere in the tree; None when normal. *)
let rec step (a : Algebra.t) : Algebra.t option =
  match a with
  (* Join(R, S LOJ T) -> Join(R,S) LOJ T, when p only touches R ∪ S *)
  | Algebra.Join (Algebra.Inner, p, r, Algebra.Join (Algebra.Left_outer, q, s, t))
    when subset (Expr.relations p)
        (Algebra.base_aliases r @ Algebra.base_aliases s) ->
    Some
      (Algebra.Join (Algebra.Left_outer, q,
                     Algebra.Join (Algebra.Inner, p, r, s), t))
  (* symmetric: Join(S LOJ T, R) -> Join(S, R) LOJ T *)
  | Algebra.Join (Algebra.Inner, p, Algebra.Join (Algebra.Left_outer, q, s, t), r)
    when subset (Expr.relations p)
        (Algebra.base_aliases s @ Algebra.base_aliases r) ->
    Some
      (Algebra.Join (Algebra.Left_outer, q,
                     Algebra.Join (Algebra.Inner, p, s, r), t))
  | Algebra.Join (k, p, l, r) -> (
    match step l with
    | Some l' -> Some (Algebra.Join (k, p, l', r))
    | None -> (
      match step r with
      | Some r' -> Some (Algebra.Join (k, p, l, r'))
      | None -> None))
  | Algebra.Select (p, i) ->
    Option.map (fun i' -> Algebra.Select (p, i')) (step i)
  | Algebra.Project (items, i) ->
    Option.map (fun i' -> Algebra.Project (items, i')) (step i)
  | Algebra.Group_by g ->
    Option.map (fun i' -> Algebra.Group_by { g with Algebra.input = i' })
      (step g.Algebra.input)
  | Algebra.Distinct i -> Option.map (fun i' -> Algebra.Distinct i') (step i)
  | Algebra.Order_by (k, i) ->
    Option.map (fun i' -> Algebra.Order_by (k, i')) (step i)
  | Algebra.Scan _ -> None

let rec normalize (a : Algebra.t) : Algebra.t =
  match step a with Some a' -> normalize a' | None -> a

(* Does the tree have the normal form where no outerjoin appears below an
   inner join? *)
let rec normalized (a : Algebra.t) : bool =
  let rec no_outerjoin = function
    | Algebra.Scan _ -> true
    | Algebra.Join (Algebra.Left_outer, _, _, _) -> false
    | Algebra.Join (_, _, l, r) -> no_outerjoin l && no_outerjoin r
    | Algebra.Select (_, i) | Algebra.Project (_, i) | Algebra.Distinct i
    | Algebra.Order_by (_, i) -> no_outerjoin i
    | Algebra.Group_by { input; _ } -> no_outerjoin input
  in
  match a with
  | Algebra.Join (Algebra.Inner, _, l, r) -> no_outerjoin l && no_outerjoin r && normalized l && normalized r
  | Algebra.Join (_, _, l, r) -> normalized l && normalized r
  | Algebra.Select (_, i) | Algebra.Project (_, i) | Algebra.Distinct i
  | Algebra.Order_by (_, i) -> normalized i
  | Algebra.Group_by { input; _ } -> normalized input
  | Algebra.Scan _ -> true
