(* Lowering a QGM block to the logical algebra.

   Only blocks whose sources are all [Base] and whose predicates are all
   plain can be lowered — the pipeline first runs rewrites and materializes
   any remaining derived sources into temporary tables. *)

open Relalg

exception Not_lowerable of string

let source_scan = function
  | Qgm.Base { table; alias; schema } -> Algebra.Scan { table; alias; schema }
  | Qgm.Derived { alias; _ } ->
    raise (Not_lowerable ("derived source not materialized: " ^ alias))

let plain = function
  | Qgm.P e -> e
  | (Qgm.In_sub _ | Qgm.Exists_sub _ | Qgm.Cmp_sub _) as p ->
    raise (Not_lowerable ("subquery predicate not unnested: " ^ Fmt.str "%a" Qgm.pp_pred p))

let to_algebra (b : Qgm.block) : Algebra.t =
  if Qgm.is_correlated b then
    raise (Not_lowerable "block is correlated");
  let joined =
    match b.Qgm.from with
    | [] -> raise (Not_lowerable "no sources")
    | s :: rest ->
      List.fold_left
        (fun acc src ->
           Algebra.Join (Algebra.Inner, Expr.ftrue, acc, source_scan src))
        (source_scan s) rest
  in
  let where = List.map plain b.Qgm.where in
  let selected =
    match where with
    | [] -> joined
    | ps -> Algebra.Select (Pred.of_conjuncts ps, joined)
  in
  let with_semi =
    List.fold_left
      (fun acc (sj : Qgm.semijoin) ->
         Algebra.Join
           ((if sj.Qgm.s_anti then Algebra.Anti else Algebra.Semi),
            sj.Qgm.s_pred, acc, source_scan sj.Qgm.s_source))
      selected b.Qgm.semijoins
  in
  let with_outer =
    List.fold_left
      (fun acc (oj : Qgm.outerjoin) ->
         Algebra.Join (Algebra.Left_outer, oj.Qgm.o_pred, acc,
                       source_scan oj.Qgm.o_source))
      with_semi b.Qgm.outerjoins
  in
  let grouped =
    if b.Qgm.group_by = [] && b.Qgm.aggs = [] then with_outer
    else
      Algebra.Group_by
        { keys = b.Qgm.group_by; aggs = b.Qgm.aggs; input = with_outer }
  in
  let having =
    match List.map plain b.Qgm.having with
    | [] -> grouped
    | ps -> Algebra.Select (Pred.of_conjuncts ps, grouped)
  in
  let ordered =
    match b.Qgm.order_by with
    | [] -> having
    | keys -> Algebra.Order_by (keys, having)
  in
  let projected = Algebra.Project (b.Qgm.select, ordered) in
  if b.Qgm.distinct then Algebra.Distinct projected else projected
