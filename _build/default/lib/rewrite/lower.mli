(** Lowering a QGM block to the logical algebra.  Only blocks whose sources
    are all [Base] and whose predicates are plain can be lowered; the
    pipeline first rewrites and materializes the rest. *)

exception Not_lowerable of string

(** @raise Not_lowerable on derived sources, subquery predicates or
    correlation. *)
val to_algebra : Qgm.block -> Relalg.Algebra.t
