(** Naive tuple-iteration interpreter for QGM blocks (Section 4.2.2's
    baseline semantics): correlated subqueries are re-evaluated once per
    outer tuple, charging the shared execution context for every rescan.
    Both the ground truth for rewrite correctness and the "before" system
    of the unnesting experiments. *)

val run :
  ?ctx:Exec.Context.t -> Storage.Catalog.t -> Qgm.block ->
  Exec.Executor.result

(** Evaluate a full query; UNION ALL concatenates, UNION deduplicates.
    @raise Invalid_argument on arity mismatch between union arms. *)
val run_query :
  ?ctx:Exec.Context.t -> Storage.Catalog.t -> Qgm.query ->
  Exec.Executor.result
