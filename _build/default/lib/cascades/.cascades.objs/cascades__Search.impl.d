lib/cascades/search.ml: Array Cost Exec Float List Memo Stats Systemr
