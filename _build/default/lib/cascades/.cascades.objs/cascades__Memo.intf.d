lib/cascades/memo.mli: Hashtbl Stats Systemr
