lib/cascades/search.mli: Stats Storage Systemr
