lib/cascades/memo.ml: Hashtbl List Printf Stats Systemr
