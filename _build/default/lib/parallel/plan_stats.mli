(** Cardinality and per-operator work estimates for physical plans, used by
    the parallel scheduler to size its tasks. *)

type node_est = {
  rows : float;
  pages : float;
  work : float;  (** this operator's own cost, children excluded *)
}

val derive :
  Cost.Cost_model.params -> Storage.Catalog.t -> Stats.Table_stats.db ->
  Exec.Plan.t -> node_est * Stats.Derive.rel_stats
