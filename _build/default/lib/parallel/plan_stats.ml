(* Cardinality and per-operator work estimates for physical plans, used by
   the parallel scheduler to size its tasks. *)

open Relalg

type node_est = { rows : float; pages : float; work : float }

let rec derive (params : Cost.Cost_model.params) cat db (p : Exec.Plan.t) :
  node_est * Stats.Derive.rel_stats =
  let stats_of_table table alias =
    let t = Storage.Catalog.table cat table in
    let schema = Schema.requalify t.Storage.Table.schema ~rel:alias in
    match Stats.Table_stats.find db table with
    | Some ts -> Stats.Derive.of_table ts ~alias ~schema
    | None ->
      { Stats.Derive.card = float_of_int (Storage.Table.row_count t);
        schema; cols = [] }
  in
  let est_of stats work =
    ( { rows = stats.Stats.Derive.card; pages = Stats.Derive.pages stats; work },
      stats )
  in
  match p with
  | Exec.Plan.Seq_scan { table; alias; filter } ->
    let base = stats_of_table table alias in
    let t = Storage.Catalog.table cat table in
    let work =
      Cost.Cost_model.seq_scan params
        ~pages:(float_of_int (Storage.Table.page_count t))
        ~rows:base.Stats.Derive.card
    in
    let stats =
      match filter with
      | None -> base
      | Some f -> Stats.Derive.apply_select base f
    in
    est_of stats work
  | Exec.Plan.Index_scan { table; alias; filter; _ } ->
    let base = stats_of_table table alias in
    let stats =
      match filter with
      | None -> base
      | Some f -> Stats.Derive.apply_select base f
    in
    let t = Storage.Catalog.table cat table in
    let work =
      Cost.Cost_model.index_scan params ~clustered:true
        ~pages:(float_of_int (Storage.Table.page_count t))
        ~rows:base.Stats.Derive.card ~matches:stats.Stats.Derive.card
    in
    est_of stats work
  | Exec.Plan.Filter (f, i) ->
    let (ie, istats) = derive params cat db i in
    let stats = Stats.Derive.apply_select istats f in
    est_of stats (Cost.Cost_model.filter params ~rows:ie.rows)
  | Exec.Plan.Project (items, i) ->
    let (ie, istats) = derive params cat db i in
    est_of (Stats.Derive.project istats items)
      (Cost.Cost_model.project params ~rows:ie.rows)
  | Exec.Plan.Sort (_, i) ->
    let (ie, istats) = derive params cat db i in
    est_of istats (Cost.Cost_model.sort params ~pages:ie.pages ~rows:ie.rows)
  | Exec.Plan.Materialize i ->
    let (ie, istats) = derive params cat db i in
    est_of istats (params.Cost.Cost_model.seq_page *. ie.pages)
  | Exec.Plan.Nested_loop { kind; pred; outer; inner } ->
    let (oe, os) = derive params cat db outer in
    let (ie, is) = derive params cat db inner in
    let stats = Stats.Derive.join kind os is pred in
    est_of stats
      (Cost.Cost_model.nested_loop params ~outer_rows:oe.rows
         ~inner_rows:ie.rows ~inner_pages:ie.pages)
  | Exec.Plan.Index_nl { kind; outer; table; alias; residual; _ } ->
    let (oe, os) = derive params cat db outer in
    let is = stats_of_table table alias in
    let stats = Stats.Derive.join kind os is residual in
    let t = Storage.Catalog.table cat table in
    est_of stats
      (Cost.Cost_model.index_nl params ~outer_rows:oe.rows
         ~inner_rows:is.Stats.Derive.card
         ~inner_pages:(float_of_int (Storage.Table.page_count t))
         ~matches_per_probe:
           (stats.Stats.Derive.card /. Float.max 1. oe.rows)
         ~clustered:false)
  | Exec.Plan.Merge_join { kind; pairs; residual; left; right } ->
    let (le, ls) = derive params cat db left in
    let (re, rs) = derive params cat db right in
    let pred = pred_of_pairs pairs residual in
    let stats = Stats.Derive.join kind ls rs pred in
    est_of stats
      (Cost.Cost_model.merge_join params ~left_rows:le.rows
         ~right_rows:re.rows ~out_rows:stats.Stats.Derive.card)
  | Exec.Plan.Hash_join { kind; pairs; residual; left; right } ->
    let (le, ls) = derive params cat db left in
    let (re, rs) = derive params cat db right in
    let pred = pred_of_pairs pairs residual in
    let stats = Stats.Derive.join kind ls rs pred in
    est_of stats
      (Cost.Cost_model.hash_join params ~left_rows:le.rows
         ~right_rows:re.rows ~left_pages:le.pages ~right_pages:re.pages
         ~out_rows:stats.Stats.Derive.card)
  | Exec.Plan.Hash_agg { keys; aggs; input } ->
    let (ie, istats) = derive params cat db input in
    let stats = Stats.Derive.group istats ~keys ~aggs in
    est_of stats
      (Cost.Cost_model.hash_agg params ~rows:ie.rows
         ~groups:stats.Stats.Derive.card)
  | Exec.Plan.Stream_agg { keys; aggs; input } ->
    let (ie, istats) = derive params cat db input in
    let stats = Stats.Derive.group istats ~keys ~aggs in
    est_of stats (Cost.Cost_model.stream_agg params ~rows:ie.rows)
  | Exec.Plan.Hash_distinct i ->
    let (ie, istats) = derive params cat db i in
    est_of (Stats.Derive.distinct istats)
      (Cost.Cost_model.hash_distinct params ~rows:ie.rows)

and pred_of_pairs pairs residual =
  Pred.of_conjuncts
    (List.map
       (fun (l, r) -> Expr.Cmp (Expr.Eq, Expr.Col l, Expr.Col r))
       pairs
     @ Pred.conjuncts residual)
