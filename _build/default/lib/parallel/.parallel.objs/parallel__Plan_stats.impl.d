lib/parallel/plan_stats.ml: Cost Exec Expr Float List Pred Relalg Schema Stats Storage
