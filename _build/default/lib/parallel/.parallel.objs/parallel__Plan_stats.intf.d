lib/parallel/plan_stats.mli: Cost Exec Stats Storage
