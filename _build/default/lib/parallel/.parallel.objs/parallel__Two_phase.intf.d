lib/parallel/two_phase.mli: Cost Exec Expr Format Relalg Stats Storage
