lib/parallel/two_phase.ml: Cost Exec Expr Float Fmt Hashtbl List Plan_stats Relalg Stats Storage String
