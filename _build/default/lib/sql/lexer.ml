(* Hand-written SQL lexer for the subset the paper's examples use. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string (* uppercased keyword *)
  | SYM of string (* punctuation / operators *)
  | EOF

exception Error of string

let keywords =
  [ "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER";
    "ASC"; "DESC"; "AND"; "OR"; "NOT"; "IN"; "EXISTS"; "IS"; "NULL"; "AS";
    "JOIN"; "LEFT"; "OUTER"; "ON"; "TRUE"; "FALSE"; "COUNT"; "SUM"; "MIN";
    "MAX"; "AVG"; "CREATE"; "VIEW"; "UNION"; "ALL" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '#'

let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      let word = String.sub src !i (!j - !i) in
      let up = String.uppercase_ascii word in
      if List.mem up keywords then emit (KW up) else emit (IDENT word);
      i := !j
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && (is_digit src.[!j] || src.[!j] = '_') do incr j done;
      if !j < n && src.[!j] = '.' then begin
        incr j;
        while !j < n && is_digit src.[!j] do incr j done;
        let text =
          String.concat ""
            (String.split_on_char '_' (String.sub src !i (!j - !i)))
        in
        emit (FLOAT (float_of_string text))
      end
      else begin
        let text =
          String.concat ""
            (String.split_on_char '_' (String.sub src !i (!j - !i)))
        in
        emit (INT (int_of_string text))
      end;
      i := !j
    end
    else if c = '\'' then begin
      let j = ref (!i + 1) in
      let buf = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !j >= n then raise (Error "unterminated string literal");
        if src.[!j] = '\'' then
          if !j + 1 < n && src.[!j + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            j := !j + 2
          end
          else begin
            fin := true;
            incr j
          end
        else begin
          Buffer.add_char buf src.[!j];
          incr j
        end
      done;
      emit (STRING (Buffer.contents buf));
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | "!=" ->
        emit (SYM (if two = "!=" then "<>" else two));
        i := !i + 2
      | _ -> (
        match c with
        | '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '%' | '=' | '<'
        | '>' | ';' ->
          emit (SYM (String.make 1 c));
          incr i
        | _ -> raise (Error (Printf.sprintf "unexpected character %c" c)))
    end
  done;
  List.rev (EOF :: !toks)

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "ident %s" s
  | INT i -> Fmt.pf ppf "int %d" i
  | FLOAT f -> Fmt.pf ppf "float %g" f
  | STRING s -> Fmt.pf ppf "string '%s'" s
  | KW k -> Fmt.string ppf k
  | SYM s -> Fmt.string ppf s
  | EOF -> Fmt.string ppf "<eof>"
