(** Hand-written SQL lexer for the subset the paper's examples use. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** uppercased keyword *)
  | SYM of string  (** punctuation / operators *)
  | EOF

exception Error of string

val keywords : string list

(** @raise Error on unterminated strings or unexpected characters. *)
val tokenize : string -> token list

val pp_token : Format.formatter -> token -> unit
