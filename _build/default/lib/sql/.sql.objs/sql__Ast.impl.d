lib/sql/ast.ml: Relalg
