lib/sql/binder.ml: Ast Expr Fmt List Option Parser Printf Relalg Rewrite Schema Storage Value
