lib/sql/binder.mli: Ast Rewrite Storage
