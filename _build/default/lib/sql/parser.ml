(* Recursive-descent parser for the SQL subset. *)

exception Error of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t

let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> Lexer.EOF

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw -> advance st
  | t -> raise (Error (Fmt.str "expected %s, got %a" kw Lexer.pp_token t))

let expect_sym st sym =
  match peek st with
  | Lexer.SYM s when s = sym -> advance st
  | t -> raise (Error (Fmt.str "expected '%s', got %a" sym Lexer.pp_token t))

let accept_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw -> advance st; true
  | _ -> false

let accept_sym st sym =
  match peek st with
  | Lexer.SYM s when s = sym -> advance st; true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | t -> raise (Error (Fmt.str "expected identifier, got %a" Lexer.pp_token t))

let cmp_of_sym = function
  | "=" -> Some Relalg.Expr.Eq
  | "<>" -> Some Relalg.Expr.Neq
  | "<" -> Some Relalg.Expr.Lt
  | "<=" -> Some Relalg.Expr.Le
  | ">" -> Some Relalg.Expr.Gt
  | ">=" -> Some Relalg.Expr.Ge
  | _ -> None

let agg_of_kw = function
  | "COUNT" -> Some Ast.Fn_count
  | "SUM" -> Some Ast.Fn_sum
  | "MIN" -> Some Ast.Fn_min
  | "MAX" -> Some Ast.Fn_max
  | "AVG" -> Some Ast.Fn_avg
  | _ -> None

(* expression grammar:
   or_expr   := and_expr (OR and_expr)*
   and_expr  := not_expr (AND not_expr)*
   not_expr  := NOT not_expr | predicate
   predicate := EXISTS (select)
              | add (IS [NOT] NULL, IN (select), or cmp with expr or (select))
   add       := mul ((plus|minus) mul)*
   mul       := atom ((times|div|mod) atom)*
   atom      := literal | agg | column | (or_expr) *)

let rec parse_or st =
  let a = parse_and st in
  if accept_kw st "OR" then Ast.Or (a, parse_or st) else a

and parse_and st =
  let a = parse_not st in
  if accept_kw st "AND" then Ast.And (a, parse_and st) else a

and parse_not st =
  if accept_kw st "NOT" then
    if accept_kw st "EXISTS" then begin
      expect_sym st "(";
      let s = parse_select st in
      expect_sym st ")";
      Ast.Exists (false, s)
    end
    else Ast.Not (parse_not st)
  else parse_predicate st

and parse_predicate st =
  if accept_kw st "EXISTS" then begin
    expect_sym st "(";
    let s = parse_select st in
    expect_sym st ")";
    Ast.Exists (true, s)
  end
  else begin
    let lhs = parse_add st in
    match peek st with
    | Lexer.KW "IS" ->
      advance st;
      let positive = not (accept_kw st "NOT") in
      expect_kw st "NULL";
      Ast.Is_null (lhs, positive)
    | Lexer.KW "IN" ->
      advance st;
      expect_sym st "(";
      let s = parse_select st in
      expect_sym st ")";
      Ast.In_query (lhs, s)
    | Lexer.KW "NOT" when peek2 st = Lexer.KW "IN" ->
      advance st;
      advance st;
      expect_sym st "(";
      let s = parse_select st in
      expect_sym st ")";
      Ast.Not (Ast.In_query (lhs, s))
    | Lexer.SYM s when cmp_of_sym s <> None ->
      advance st;
      let op = Option.get (cmp_of_sym s) in
      if peek st = Lexer.SYM "(" && peek2 st = Lexer.KW "SELECT" then begin
        expect_sym st "(";
        let sub = parse_select st in
        expect_sym st ")";
        Ast.Cmp_query (op, lhs, sub)
      end
      else Ast.Cmp (op, lhs, parse_add st)
    | _ -> lhs
  end

and parse_add st =
  let a = ref (parse_mul st) in
  let continue_ = ref true in
  while !continue_ do
    if accept_sym st "+" then a := Ast.Binop (Relalg.Expr.Add, !a, parse_mul st)
    else if accept_sym st "-" then
      a := Ast.Binop (Relalg.Expr.Sub, !a, parse_mul st)
    else continue_ := false
  done;
  !a

and parse_mul st =
  let a = ref (parse_atom st) in
  let continue_ = ref true in
  while !continue_ do
    (* '*' is also SELECT-list star; as an operator it only appears after a
       complete atom, which parse_atom has consumed *)
    if accept_sym st "*" then a := Ast.Binop (Relalg.Expr.Mul, !a, parse_atom st)
    else if accept_sym st "/" then
      a := Ast.Binop (Relalg.Expr.Div, !a, parse_atom st)
    else if accept_sym st "%" then
      a := Ast.Binop (Relalg.Expr.Mod, !a, parse_atom st)
    else continue_ := false
  done;
  !a

and parse_atom st =
  match peek st with
  | Lexer.INT i -> advance st; Ast.Lit_int i
  | Lexer.FLOAT f -> advance st; Ast.Lit_float f
  | Lexer.STRING s -> advance st; Ast.Lit_string s
  | Lexer.KW "TRUE" -> advance st; Ast.Lit_bool true
  | Lexer.KW "FALSE" -> advance st; Ast.Lit_bool false
  | Lexer.KW "NULL" -> advance st; Ast.Lit_null
  | Lexer.SYM "-" ->
    advance st;
    (match parse_atom st with
     | Ast.Lit_int i -> Ast.Lit_int (-i)
     | Ast.Lit_float f -> Ast.Lit_float (-.f)
     | e -> Ast.Binop (Relalg.Expr.Sub, Ast.Lit_int 0, e))
  | Lexer.SYM "(" ->
    advance st;
    let e = parse_or st in
    expect_sym st ")";
    e
  | Lexer.KW k when agg_of_kw k <> None ->
    advance st;
    let fn = Option.get (agg_of_kw k) in
    expect_sym st "(";
    let arg =
      if accept_sym st "*" then None else Some (parse_or st)
    in
    expect_sym st ")";
    Ast.Agg (fn, arg)
  | Lexer.IDENT name ->
    advance st;
    if accept_sym st "." then begin
      let col = ident st in
      Ast.Column (Some name, col)
    end
    else Ast.Column (None, name)
  | t -> raise (Error (Fmt.str "unexpected token %a" Lexer.pp_token t))

(* ---------- SELECT ---------- *)

and parse_select_item st =
  if accept_sym st "*" then Ast.Star
  else begin
    let e = parse_or st in
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else
        match peek st with
        | Lexer.IDENT a -> advance st; Some a
        | _ -> None
    in
    Ast.Item (e, alias)
  end

and parse_from_item st : Ast.from_item =
  if peek st = Lexer.SYM "(" then begin
    advance st;
    let s = parse_select st in
    expect_sym st ")";
    ignore (accept_kw st "AS");
    let alias = ident st in
    Ast.Subquery (s, alias)
  end
  else begin
    let name = ident st in
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else
        match peek st with
        | Lexer.IDENT a -> advance st; Some a
        | _ -> None
    in
    Ast.Table (name, alias)
  end

and parse_joined st : Ast.joined =
  let base = Ast.Plain (parse_from_item st) in
  let rec extend acc =
    if accept_kw st "LEFT" then begin
      ignore (accept_kw st "OUTER");
      expect_kw st "JOIN";
      let item = parse_from_item st in
      expect_kw st "ON";
      let pred = parse_or st in
      extend (Ast.Left_outer_join (acc, item, pred))
    end
    else acc
  in
  extend base

and parse_select st : Ast.select =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let items = ref [ parse_select_item st ] in
  while accept_sym st "," do
    items := parse_select_item st :: !items
  done;
  expect_kw st "FROM";
  let from = ref [ parse_joined st ] in
  while accept_sym st "," do
    from := parse_joined st :: !from
  done;
  let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let es = ref [ parse_add st ] in
      while accept_sym st "," do
        es := parse_add st :: !es
      done;
      List.rev !es
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_or st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let one () =
        let e = parse_add st in
        let d =
          if accept_kw st "DESC" then Relalg.Algebra.Desc
          else begin
            ignore (accept_kw st "ASC");
            Relalg.Algebra.Asc
          end
        in
        (e, d)
      in
      let es = ref [ one () ] in
      while accept_sym st "," do
        es := one () :: !es
      done;
      List.rev !es
    end
    else []
  in
  { Ast.distinct; items = List.rev !items; from = List.rev !from; where;
    group_by; having; order_by }

(* select (UNION [ALL] select)* — left-associative *)
let parse_query_expr st : Ast.query =
  let rec extend acc =
    if accept_kw st "UNION" then begin
      let all = accept_kw st "ALL" in
      let rhs = parse_select st in
      extend (Ast.Union (acc, all, Ast.Single rhs))
    end
    else acc
  in
  extend (Ast.Single (parse_select st))

let parse_statement st : Ast.statement =
  if accept_kw st "CREATE" then begin
    expect_kw st "VIEW";
    let name = ident st in
    expect_kw st "AS";
    let s =
      if accept_sym st "(" then begin
        let s = parse_select st in
        expect_sym st ")";
        s
      end
      else parse_select st
    in
    Ast.Create_view (name, s)
  end
  else Ast.Select_stmt (parse_query_expr st)

let parse (src : string) : Ast.statement list =
  let st = { toks = Lexer.tokenize src } in
  let stmts = ref [] in
  let rec go () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.SYM ";" -> advance st; go ()
    | _ ->
      stmts := parse_statement st :: !stmts;
      (match peek st with
       | Lexer.SYM ";" -> advance st
       | Lexer.EOF -> ()
       | t -> raise (Error (Fmt.str "trailing tokens: %a" Lexer.pp_token t)));
      go ()
  in
  go ();
  List.rev !stmts

let parse_query (src : string) : Ast.select =
  match parse src with
  | [ Ast.Select_stmt (Ast.Single s) ] -> s
  | _ -> raise (Error "expected exactly one SELECT statement")
