(** Recursive-descent parser for the SQL subset: SELECT [DISTINCT] ... FROM
    (tables, derived tables, LEFT OUTER JOIN) WHERE (with IN / EXISTS /
    scalar subqueries as conjuncts) GROUP BY / HAVING / ORDER BY, plus
    CREATE VIEW scripts. *)

exception Error of string

(** Parse a script of ';'-separated statements.  @raise Error on syntax
    errors. *)
val parse : string -> Ast.statement list

(** Parse exactly one SELECT.  @raise Error otherwise. *)
val parse_query : string -> Ast.select
