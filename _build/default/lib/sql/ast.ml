(* SQL abstract syntax (pre-binding): names are unresolved strings. *)

type cmpop = Relalg.Expr.cmpop

type expr =
  | Lit_int of int
  | Lit_float of float
  | Lit_string of string
  | Lit_bool of bool
  | Lit_null
  | Column of string option * string (* qualifier?, name *)
  | Binop of Relalg.Expr.binop * expr * expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of expr * bool (* IS NULL (true) / IS NOT NULL (false) *)
  | In_query of expr * select (* expr IN (SELECT ...) *)
  | Exists of bool * select (* EXISTS / NOT EXISTS *)
  | Cmp_query of cmpop * expr * select (* expr op (SELECT ...) *)
  | Agg of agg_fn * expr option (* COUNT-star = (Count, None) *)

and agg_fn = Fn_count | Fn_sum | Fn_min | Fn_max | Fn_avg

and select_item = Star | Item of expr * string option

and from_item =
  | Table of string * string option (* name, alias *)
  | Subquery of select * string (* derived table, alias required *)

and joined =
  | Plain of from_item
  | Left_outer_join of joined * from_item * expr

and select = {
  distinct : bool;
  items : select_item list;
  from : joined list; (* comma-separated *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * Relalg.Algebra.dir) list;
}

(** Full query expressions: UNION [ALL] chains of SELECTs. *)
type query =
  | Single of select
  | Union of query * bool * query  (* all? *)

type statement =
  | Select_stmt of query
  | Create_view of string * select
