(** Tuples: immutable value arrays positioned against a {!Schema.t}. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list

(** [get t i] is the value at position [i]. *)
val get : t -> int -> Value.t

val arity : t -> int

(** Concatenation for joins: left values first. *)
val concat : t -> t -> t

(** [nulls n] is a tuple of [n] NULLs (outer-join padding). *)
val nulls : int -> t

(** Lexicographic order using {!Value.compare}. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
