(* Query graphs (Figure 3): nodes are relations (correlation variables),
   labelled edges are join predicates.  Used by join enumerators to avoid
   Cartesian products and by the workload generators to synthesize chain,
   star and clique query shapes. *)

type node = { alias : string; table : string }

type edge = { left : string; right : string; pred : Expr.t }

type t = { nodes : node list; edges : edge list }

let empty = { nodes = []; edges = [] }

let add_node g ~alias ~table =
  if List.exists (fun n -> n.alias = alias) g.nodes then g
  else { g with nodes = g.nodes @ [ { alias; table } ] }

let add_edge g ~left ~right ~pred =
  { g with edges = g.edges @ [ { left; right; pred } ] }

(* Build from a join predicate list over a set of scans.  Conjuncts touching
   exactly two relations become edges; single-relation conjuncts are node
   annotations the caller keeps separately; conjuncts over >2 relations are
   attached as a clique of edges among their relations (conservative). *)
let of_query ~(scans : (string * string) list) (preds : Expr.t list) : t =
  let g =
    List.fold_left
      (fun g (alias, table) -> add_node g ~alias ~table)
      empty scans
  in
  List.fold_left
    (fun g p ->
       match Expr.relations p with
       | [] | [ _ ] -> g
       | [ a; b ] -> add_edge g ~left:a ~right:b ~pred:p
       | rels ->
         let rec pairs = function
           | [] | [ _ ] -> []
           | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
         in
         List.fold_left
           (fun g (a, b) -> add_edge g ~left:a ~right:b ~pred:p)
           g (pairs rels))
    g preds

let neighbours g alias =
  List.filter_map
    (fun e ->
       if e.left = alias then Some e.right
       else if e.right = alias then Some e.left
       else None)
    g.edges
  |> List.sort_uniq String.compare

let connected_to g ~group alias =
  List.exists
    (fun e ->
       (e.left = alias && List.mem e.right group)
       || (e.right = alias && List.mem e.left group))
    g.edges

(* Is the whole graph connected?  (A disconnected graph forces a Cartesian
   product somewhere.) *)
let connected g =
  match g.nodes with
  | [] -> true
  | first :: _ ->
    let rec grow seen =
      let next =
        List.filter
          (fun n ->
             (not (List.mem n.alias seen)) && connected_to g ~group:seen n.alias)
          g.nodes
      in
      match next with
      | [] -> seen
      | _ -> grow (seen @ List.map (fun n -> n.alias) next)
    in
    List.length (grow [ first.alias ]) = List.length g.nodes

type shape = Chain | Star | Clique | Other

(* Shape classification for the experiments of Section 4.1.1: a star has one
   hub touching all edges; a chain has exactly two degree-1 endpoints and the
   rest degree 2; a clique has all pairs connected. *)
let shape g =
  let n = List.length g.nodes in
  if n <= 2 then Chain
  else
    let degree a = List.length (neighbours g a) in
    let degrees = List.map (fun nd -> degree nd.alias) g.nodes in
    let count p = List.length (List.filter p degrees) in
    if count (fun d -> d = n - 1) = n then Clique
    else if count (fun d -> d = n - 1) = 1 && count (fun d -> d = 1) = n - 1
    then Star
    else if count (fun d -> d = 1) = 2 && count (fun d -> d = 2) = n - 2 then
      Chain
    else Other

let pp ppf g =
  Fmt.pf ppf "@[<v>nodes: %a@,edges:@,%a@]"
    Fmt.(list ~sep:(any ", ") (fun ppf n ->
        if n.alias = n.table then Fmt.string ppf n.alias
        else Fmt.pf ppf "%s(%s)" n.alias n.table))
    g.nodes
    Fmt.(list ~sep:cut (fun ppf e ->
        Fmt.pf ppf "  %s -- %s : %a" e.left e.right Expr.pp e.pred))
    g.edges

let to_string g = Fmt.str "%a" pp g
