(* SQL values with three-valued logic.

   [compare] is a total order used by sort operators and B-trees: NULL sorts
   lowest, then booleans, then numerics (ints and floats compare by numeric
   value), then strings.  SQL comparison predicates instead use [sql_cmp],
   which returns [None] when either operand is NULL (three-valued UNKNOWN). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = Tbool | Tint | Tfloat | Tstring

let type_of = function
  | Null -> None
  | Bool _ -> Some Tbool
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstring

let ty_name = function
  | Tbool -> "bool"
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"

let is_null = function Null -> true | Bool _ | Int _ | Float _ | Str _ -> false

(* Rank used only to totally order values of distinct types. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> Stdlib.compare x y
  | (Null | Bool _ | Int _ | Float _ | Str _), _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* SQL comparison: NULL makes the result UNKNOWN. *)
let sql_cmp a b = if is_null a || is_null b then None else Some (compare a b)

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool _ | Str _ | Null -> None

let hash = function
  | Null -> 17
  | Bool b -> Hashtbl.hash b
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.pf ppf "'%s'" s

let to_string v = Fmt.str "%a" pp v
