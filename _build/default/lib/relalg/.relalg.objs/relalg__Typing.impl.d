lib/relalg/typing.ml: Expr Fmt Option Schema Value
