lib/relalg/pred.mli: Expr
