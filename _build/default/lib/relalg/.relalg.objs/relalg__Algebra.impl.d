lib/relalg/algebra.ml: Expr Fmt List Schema Typing
