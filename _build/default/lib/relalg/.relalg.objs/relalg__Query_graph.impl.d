lib/relalg/query_graph.ml: Expr Fmt List String
