lib/relalg/algebra.mli: Expr Format Schema
