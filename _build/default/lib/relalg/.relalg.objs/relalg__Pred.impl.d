lib/relalg/pred.ml: Expr List Value
