lib/relalg/typing.mli: Expr Schema Value
