lib/relalg/schema.ml: Fmt List Printf Value
