lib/relalg/value.ml: Fmt Hashtbl Stdlib
