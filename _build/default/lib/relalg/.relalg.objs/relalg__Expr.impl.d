lib/relalg/expr.ml: Float Fmt List Option Schema String Tuple Value
