lib/relalg/query_graph.mli: Expr Format
