lib/relalg/tuple.ml: Array Fmt Stdlib Value
