(** SQL values and their two comparison orders. *)

(** A SQL value. [Null] is the SQL NULL, participating in three-valued
    logic. *)
type t = Null | Bool of bool | Int of int | Float of float | Str of string

(** Column types. *)
type ty = Tbool | Tint | Tfloat | Tstring

(** [type_of v] is the type of [v], or [None] for [Null]. *)
val type_of : t -> ty option

(** Short name of a type ("int", "string", ...). *)
val ty_name : ty -> string

(** [is_null v] is true iff [v] is [Null]. *)
val is_null : t -> bool

(** Total order used by sorts and B-trees: NULL sorts lowest; ints and
    floats compare numerically. *)
val compare : t -> t -> int

(** [equal a b] is [compare a b = 0]. *)
val equal : t -> t -> bool

(** SQL comparison: [None] (UNKNOWN) when either operand is NULL, otherwise
    [Some (compare a b)]. *)
val sql_cmp : t -> t -> int option

(** Numeric view of ints and floats; [None] for other values. *)
val to_float : t -> float option

(** Hash consistent with {!equal} (ints and floats hash alike). *)
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
