(* Tuples are immutable value arrays positioned against a schema. *)

type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let get (t : t) i = t.(i)
let arity = Array.length
let concat (a : t) (b : t) : t = Array.append a b

(* A tuple of NULLs, used to pad outer-join mismatches. *)
let nulls n : t = Array.make n Value.Null

let compare (a : t) (b : t) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then Stdlib.compare (Array.length a) (Array.length b)
    else
      match Value.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let equal a b = compare a b = 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t

let pp ppf (t : t) =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "; ") Value.pp) t
