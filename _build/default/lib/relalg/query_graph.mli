(** Query graphs (Figure 3): nodes are relations (correlation variables),
    labelled edges are join predicates. *)

type node = { alias : string; table : string }

type edge = { left : string; right : string; pred : Expr.t }

type t = { nodes : node list; edges : edge list }

val empty : t

val add_node : t -> alias:string -> table:string -> t
val add_edge : t -> left:string -> right:string -> pred:Expr.t -> t

(** Build a graph from scans and join conjuncts; conjuncts over more than
    two relations become a clique among them. *)
val of_query : scans:(string * string) list -> Expr.t list -> t

(** Aliases directly joined to [alias], sorted and deduplicated. *)
val neighbours : t -> string -> string list

(** Is [alias] joined to some member of [group]? *)
val connected_to : t -> group:string list -> string -> bool

(** Whole-graph connectivity (a disconnected graph forces a Cartesian
    product somewhere). *)
val connected : t -> bool

(** Query-graph shape classification (Section 4.1.1's chain/star language). *)
type shape = Chain | Star | Clique | Other

val shape : t -> shape

val pp : Format.formatter -> t -> unit
val to_string : t -> string
