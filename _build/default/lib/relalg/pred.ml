(* Predicate analysis used by the optimizers: conjunct splitting, CNF,
   classification into single-relation filters vs. (equi-)join predicates. *)

type t = Expr.t

(* Split a predicate into its top-level conjuncts. *)
let rec conjuncts (e : t) : t list =
  match e with
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | Expr.Const (Value.Bool true) -> []
  | e -> [ e ]

let of_conjuncts = function
  | [] -> Expr.ftrue
  | c :: cs -> List.fold_left (fun acc c -> Expr.And (acc, c)) c cs

(* Conjunctive normal form via distribution.  Exponential in the worst case;
   optimizer inputs are small.  NOT is pushed inward first (De Morgan);
   NOT over comparisons flips the operator (sound only under 2-valued
   interpretation of WHERE, where UNKNOWN and FALSE both reject). *)
let negate_cmp = function
  | Expr.Eq -> Expr.Neq | Expr.Neq -> Expr.Eq
  | Expr.Lt -> Expr.Ge | Expr.Ge -> Expr.Lt
  | Expr.Le -> Expr.Gt | Expr.Gt -> Expr.Le

let rec push_not (e : t) : t =
  match e with
  | Expr.Not (Expr.And (a, b)) -> Expr.Or (push_not (Expr.Not a), push_not (Expr.Not b))
  | Expr.Not (Expr.Or (a, b)) -> Expr.And (push_not (Expr.Not a), push_not (Expr.Not b))
  | Expr.Not (Expr.Not a) -> push_not a
  | Expr.Not (Expr.Cmp (op, a, b)) -> Expr.Cmp (negate_cmp op, a, b)
  | Expr.Not (Expr.Const (Value.Bool b)) -> Expr.Const (Value.Bool (not b))
  | Expr.Not a -> Expr.Not (push_not a)
  | Expr.And (a, b) -> Expr.And (push_not a, push_not b)
  | Expr.Or (a, b) -> Expr.Or (push_not a, push_not b)
  | Expr.Const _ | Expr.Col _ | Expr.Binop _ | Expr.Cmp _ | Expr.Is_null _
  | Expr.Udf _ -> e

let rec cnf_of (e : t) : t list =
  match push_not e with
  | Expr.And (a, b) -> cnf_of a @ cnf_of b
  | Expr.Or (a, b) ->
    let ca = cnf_of a and cb = cnf_of b in
    List.concat_map (fun x -> List.map (fun y -> Expr.Or (x, y)) cb) ca
  | Expr.Const (Value.Bool true) -> []
  | e -> [ e ]

let cnf e = of_conjuncts (cnf_of e)

(* Classify one conjunct with respect to a set of relation aliases. *)
type conjunct_class =
  | Constant                           (* references no relation *)
  | Single of string                   (* filter on one relation *)
  | Equi_join of Expr.col_ref * Expr.col_ref
      (* R.a = S.b with R <> S: the workhorse of join ordering *)
  | Theta_join of string list          (* references >= 2 relations *)

let classify (e : t) : conjunct_class =
  match Expr.relations e with
  | [] -> Constant
  | [ r ] -> Single r
  | rels -> (
    match e with
    | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) when a.Expr.rel <> b.Expr.rel ->
      Equi_join (a, b)
    | _ -> Theta_join rels)

(* Conjuncts of [e] that only mention relations in [avail] (and at least one
   of them), i.e. those evaluable at this point of a plan. *)
let applicable ~avail (cs : t list) : t list * t list =
  List.partition
    (fun c ->
       let rels = Expr.relations c in
       rels <> [] && List.for_all (fun r -> List.mem r avail) rels)
    cs

(* Equi-join column pairs between two alias sets, for sort-merge/hash. *)
let equi_pairs ~left ~right (cs : t list) :
  (Expr.col_ref * Expr.col_ref) list * t list =
  let is_left r = List.mem r left and is_right r = List.mem r right in
  let rec go pairs residual = function
    | [] -> (List.rev pairs, List.rev residual)
    | c :: rest -> (
      match classify c with
      | Equi_join (a, b) when is_left a.Expr.rel && is_right b.Expr.rel ->
        go ((a, b) :: pairs) residual rest
      | Equi_join (a, b) when is_right a.Expr.rel && is_left b.Expr.rel ->
        go ((b, a) :: pairs) residual rest
      | Constant | Single _ | Equi_join _ | Theta_join _ ->
        go pairs (c :: residual) rest)
  in
  go [] [] cs
