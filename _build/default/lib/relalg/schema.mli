(** Schemas: ordered lists of relation-qualified, typed columns. *)

(** One column: relation alias (possibly [""] for derived outputs), name,
    type. *)
type column = { rel : string; name : string; ty : Value.ty }

type t = column list

val column : rel:string -> name:string -> ty:Value.ty -> column

(** Number of columns. *)
val arity : t -> int

(** Position of a column reference. An empty [rel] matches any qualifier.
    @raise Not_found when absent.
    @raise Failure when an unqualified reference is ambiguous. *)
val index_of : t -> rel:string -> name:string -> int

(** Like {!index_of}, returning the position and the column, or [None]. *)
val find_opt : t -> rel:string -> name:string -> (int * column) option

(** Membership test with the same matching rules as {!index_of}. *)
val mem : t -> rel:string -> name:string -> bool

(** Concatenation for joins: left columns first. *)
val concat : t -> t -> t

(** Re-qualify every column under a new alias (view renaming). *)
val requalify : t -> rel:string -> t

val pp_column : Format.formatter -> column -> unit
val pp : Format.formatter -> t -> unit
