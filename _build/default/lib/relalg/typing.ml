(* Static type inference for scalar expressions, used to derive the output
   schema of projections and aggregations. *)

exception Error of string

let value_ty (v : Value.t) : Value.ty =
  match Value.type_of v with
  | Some ty -> ty
  | None -> Value.Tint (* untyped NULL literal; int is a harmless default *)

let rec infer (schema : Schema.t) (e : Expr.t) : Value.ty =
  match e with
  | Expr.Const v -> value_ty v
  | Expr.Col { rel; col } -> (
    match Schema.find_opt schema ~rel ~name:col with
    | Some (_, c) -> c.Schema.ty
    | None ->
      raise (Error (Fmt.str "unknown column %s.%s in %a" rel col Schema.pp schema)))
  | Expr.Binop (op, a, b) -> (
    let ta = infer schema a and tb = infer schema b in
    match op, ta, tb with
    | Expr.Add, Value.Tstring, Value.Tstring -> Value.Tstring
    | (Expr.Add | Expr.Sub | Expr.Mul | Expr.Mod), Value.Tint, Value.Tint ->
      Value.Tint
    | Expr.Div, Value.Tint, Value.Tint -> Value.Tint
    | _, (Value.Tint | Value.Tfloat), (Value.Tint | Value.Tfloat) ->
      Value.Tfloat
    | _ ->
      raise (Error (Fmt.str "arithmetic on %s and %s"
                      (Value.ty_name ta) (Value.ty_name tb))))
  | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ | Expr.Is_null _ ->
    Value.Tbool
  | Expr.Udf _ -> Value.Tbool
    (* UDFs in this library act as user-defined predicates (Section 7.2) *)

let infer_agg (schema : Schema.t) (a : Expr.agg) : Value.ty =
  let arg_ty = Option.map (infer schema) (Expr.agg_arg a) in
  Expr.agg_ty a arg_ty
