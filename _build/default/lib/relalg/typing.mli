(** Static type inference for expressions, used to derive output schemas of
    projections and aggregations. *)

exception Error of string

(** Type of a value; an untyped NULL literal defaults to int. *)
val value_ty : Value.t -> Value.ty

(** Type of an expression against a schema. @raise Error on unknown
    columns or ill-typed arithmetic. *)
val infer : Schema.t -> Expr.t -> Value.ty

(** Result type of an aggregate whose argument is typed against [schema]. *)
val infer_agg : Schema.t -> Expr.agg -> Value.ty
