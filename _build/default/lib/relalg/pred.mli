(** Predicate analysis for optimizers: conjunct handling, CNF, and
    classification into filters and (equi-)join predicates. *)

type t = Expr.t

(** Top-level conjuncts; TRUE yields []. *)
val conjuncts : t -> t list

(** Inverse of {!conjuncts}; [] yields TRUE. *)
val of_conjuncts : t list -> t

(** Negation-normal-form helper: NOT pushed inward (De Morgan, comparison
    flipping — sound under 2-valued WHERE interpretation). *)
val push_not : t -> t

(** Conjunctive normal form, as a clause list. Worst-case exponential. *)
val cnf_of : t -> t list

(** CNF as a single expression. *)
val cnf : t -> t

(** Classification of one conjunct with respect to relation aliases. *)
type conjunct_class =
  | Constant  (** references no relation *)
  | Single of string  (** filter on exactly one relation *)
  | Equi_join of Expr.col_ref * Expr.col_ref
      (** [R.a = S.b] with distinct relations *)
  | Theta_join of string list  (** any other multi-relation conjunct *)

val classify : t -> conjunct_class

(** [applicable ~avail cs] splits [cs] into the conjuncts fully evaluable
    over the aliases in [avail] (and referencing at least one) and the
    rest. *)
val applicable : avail:string list -> t list -> t list * t list

(** Equi-join column pairs between two alias sets, each pair oriented
    (left-side column, right-side column); the second component is the
    residual conjuncts. *)
val equi_pairs :
  left:string list ->
  right:string list ->
  t list ->
  (Expr.col_ref * Expr.col_ref) list * t list
