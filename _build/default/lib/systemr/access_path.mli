(** Access-path selection for one relation (Section 3): sequential scan
    versus index scans, with sargable conjuncts turned into index bounds
    and the rest applied as residual filters. *)

open Relalg

type bounds = {
  lo : Exec.Plan.bound;
  hi : Exec.Plan.bound;
  used : Expr.t list;  (** conjuncts consumed by the bounds *)
}

val no_bounds : bounds

(** Bounds on [alias.column] extracted from local conjuncts of shape
    [col CMP const]. *)
val sargable : alias:string -> column:string -> Expr.t list -> bounds

(** Candidate access paths (Pareto-pruned) and the post-filter logical
    statistics of the relation. *)
val candidates :
  Cost.Cost_model.params -> Stats.Derive.assumption -> Storage.Catalog.t ->
  Stats.Table_stats.db -> Spj.relation -> Expr.t list ->
  Candidate.t list * Stats.Derive.rel_stats
