(** The naive exhaustive enumerator: every permutation of the relations as
    a left-deep sequence, no sharing between permutations — O(n!) sequences
    where dynamic programming considers O(n·2^(n-1)) subsets (Section 3).
    Explores exactly the left-deep DP's plan shapes, so its best cost
    equals the DP's (a property test). *)

val factorial : int -> int

(** Left-deep sequences each strategy considers. *)
val linear_sequences : int -> int
val dp_extensions : int -> int

val permutations : 'a list -> 'a list list

type result = {
  best : Candidate.t;
  plans_costed : int;
  sequences : int;
}

(** @raise Invalid_argument beyond 10 relations. *)
val optimize :
  ?config:Join_order.config -> Storage.Catalog.t -> Stats.Table_stats.db ->
  Spj.t -> result
