(** Normalized Select-Project-Join queries — the class the System-R
    framework optimizes (Section 3): relations to join, conjunctive
    predicate, optional projection and output order. *)

open Relalg

type relation = { alias : string; table : string; schema : Schema.t }

type t = {
  relations : relation list;
  predicates : Expr.t list;  (** conjuncts: filters and join predicates *)
  projections : (Expr.t * string) list option;  (** [None] = SELECT * *)
  order_by : Cost.Physical_props.order;
}

val make :
  ?projections:(Expr.t * string) list option ->
  ?order_by:Cost.Physical_props.order ->
  relations:relation list -> predicates:Expr.t list -> unit -> t

val relation_aliases : t -> string list

(** Single-relation conjuncts for one alias. *)
val local_predicates : t -> string -> Expr.t list

(** Conjuncts spanning at least two relations. *)
val join_predicates : t -> Expr.t list

val graph : t -> Query_graph.t

(** Recognize an SPJ logical tree ([None] on group-by/distinct/outerjoin
    shapes — handled by the rewrite layer first). *)
val of_algebra : Algebra.t -> t option

(** Canonical left-deep logical tree in declaration order. *)
val to_algebra : t -> Algebra.t
