(* Access-path selection for a single relation (Section 3): sequential scan
   versus index scans, with sargable conjuncts turned into index bounds and
   the remainder applied as residual filters. *)

open Relalg

(* Bounds extracted from conjuncts of shape [col CMP const]. *)
type bounds = { lo : Exec.Plan.bound; hi : Exec.Plan.bound; used : Expr.t list }

let no_bounds = { lo = Exec.Plan.Unbounded; hi = Exec.Plan.Unbounded; used = [] }

let tighten_lo cur v incl =
  match cur with
  | Exec.Plan.Unbounded -> if incl then Exec.Plan.Incl v else Exec.Plan.Excl v
  | Exec.Plan.Incl w | Exec.Plan.Excl w ->
    if Value.compare v w > 0 then
      if incl then Exec.Plan.Incl v else Exec.Plan.Excl v
    else cur

let tighten_hi cur v incl =
  match cur with
  | Exec.Plan.Unbounded -> if incl then Exec.Plan.Incl v else Exec.Plan.Excl v
  | Exec.Plan.Incl w | Exec.Plan.Excl w ->
    if Value.compare v w < 0 then
      if incl then Exec.Plan.Incl v else Exec.Plan.Excl v
    else cur

(* Collect bounds on [alias.column] from local conjuncts. *)
let sargable ~alias ~column (preds : Expr.t list) : bounds =
  List.fold_left
    (fun b p ->
       match p with
       | Expr.Cmp (op, Expr.Col c, Expr.Const v)
         when c.Expr.rel = alias && c.Expr.col = column
              && not (Value.is_null v) -> (
         match op with
         | Expr.Eq ->
           { lo = tighten_lo b.lo v true; hi = tighten_hi b.hi v true;
             used = p :: b.used }
         | Expr.Lt -> { b with hi = tighten_hi b.hi v false; used = p :: b.used }
         | Expr.Le -> { b with hi = tighten_hi b.hi v true; used = p :: b.used }
         | Expr.Gt -> { b with lo = tighten_lo b.lo v false; used = p :: b.used }
         | Expr.Ge -> { b with lo = tighten_lo b.lo v true; used = p :: b.used }
         | Expr.Neq -> b)
       | _ -> b)
    no_bounds preds

(* Candidate access paths and the (logical) post-filter statistics of the
   relation. *)
let candidates (params : Cost.Cost_model.params) (asm : Stats.Derive.assumption)
    (cat : Storage.Catalog.t) (db : Stats.Table_stats.db)
    (rel : Spj.relation) (local_preds : Expr.t list) :
  Candidate.t list * Stats.Derive.rel_stats =
  let table = Storage.Catalog.table cat rel.Spj.table in
  let base_stats =
    match Stats.Table_stats.find db rel.Spj.table with
    | Some ts -> Stats.Derive.of_table ts ~alias:rel.Spj.alias ~schema:rel.Spj.schema
    | None ->
      { Stats.Derive.card = float_of_int (Storage.Table.row_count table);
        schema = rel.Spj.schema;
        cols = [] }
  in
  let filtered_stats =
    match local_preds with
    | [] -> base_stats
    | ps -> Stats.Derive.apply_select ~asm base_stats (Pred.of_conjuncts ps)
  in
  let rows = base_stats.Stats.Derive.card in
  let pages = float_of_int (Storage.Table.page_count table) in
  let filter_of = function [] -> None | ps -> Some (Pred.of_conjuncts ps) in
  (* sequential scan *)
  let seq =
    { Candidate.plan =
        Exec.Plan.Seq_scan
          { table = rel.Spj.table; alias = rel.Spj.alias;
            filter = filter_of local_preds };
      cost = Cost.Cost_model.seq_scan params ~pages ~rows;
      order = [] }
  in
  (* one candidate per index: bounded scan if sargable, else full ordered
     scan (valuable for interesting orders) *)
  let index_cands =
    List.map
      (fun (idx : Storage.Btree.t) ->
         let column = Storage.Btree.column idx in
         let b = sargable ~alias:rel.Spj.alias ~column local_preds in
         let residual =
           List.filter (fun p -> not (List.memq p b.used)) local_preds
         in
         let matches =
           match b.used with
           | [] -> rows
           | ps ->
             rows
             *. Stats.Derive.selectivity ~asm base_stats (Pred.of_conjuncts ps)
         in
         let cost =
           Cost.Cost_model.index_scan params
             ~clustered:idx.Storage.Btree.clustered ~pages ~rows ~matches
         in
         { Candidate.plan =
             Exec.Plan.Index_scan
               { table = rel.Spj.table; alias = rel.Spj.alias; column;
                 lo = b.lo; hi = b.hi; filter = filter_of residual };
           cost;
           order =
             [ ({ Expr.rel = rel.Spj.alias; col = column }, Algebra.Asc) ] })
      (Storage.Catalog.indexes cat rel.Spj.table)
  in
  let cands =
    List.fold_left
      (Candidate.insert ~interesting_orders:true)
      [] (seq :: index_cands)
  in
  (cands, filtered_stats)
