(** Bottom-up dynamic-programming join enumeration (Section 3): left-deep
    or bushy trees, Cartesian-product deferral, interesting orders
    (per-subset Pareto candidate sets), pluggable join methods.

    The lower-level pieces ([ctx], [entry], [join_cands], ...) are exposed
    for the naive enumerator and the Cascades optimizer, which share this
    module's statistics and costing machinery. *)

open Relalg

type meth = Nl | Inl | Smj | Hj

type config = {
  params : Cost.Cost_model.params;
  asm : Stats.Derive.assumption;
  allow_cross : bool;  (** permit Cartesian products freely *)
  interesting_orders : bool;  (** keep per-order bests, not one cheapest *)
  bushy : bool;  (** all splits instead of left-deep extensions *)
  methods : meth list;
}

val default_config : config

(** The 1979 repertoire: nested loop, index nested loop, sort-merge;
    linear trees; Cartesian products deferred. *)
val system_r_1979 : config

(** Shared optimization state: base access paths, subset statistics memo,
    plans-costed counter. *)
type ctx = {
  cfg : config;
  cat : Storage.Catalog.t;
  db : Stats.Table_stats.db;
  rels : Spj.relation array;
  locals : Expr.t list array;
  join_preds : Expr.t list;
  base : (Candidate.t list * Stats.Derive.rel_stats) array;
  stats_memo : (int, Stats.Derive.rel_stats) Hashtbl.t;
  mutable plans_costed : int;
}

(** Per-subset entry: logical statistics plus the Pareto candidate set. *)
type entry = {
  stats : Stats.Derive.rel_stats;
  mutable cands : Candidate.t list;
}

type result = {
  best : Candidate.t;
  card : float;
  plans_costed : int;
  subsets : int;
}

val popcount : int -> int
val make_ctx : config -> Storage.Catalog.t -> Stats.Table_stats.db -> Spj.t -> ctx
val aliases_of : ctx -> int -> string list

(** Join conjuncts crossing the alias partition and contained in its
    union. *)
val crossing_preds :
  ctx -> left_aliases:string list -> right_aliases:string list -> Expr.t list

(** Canonical subset statistics (independent of how the subset's plans are
    built — a logical property). *)
val stats_of : ctx -> int -> Stats.Derive.rel_stats

(** All join candidates combining [left] with [right] ([right_base] set
    when the right side is one base relation, enabling index nested
    loops). *)
val join_cands :
  ctx -> left:entry -> left_aliases:string list -> right:entry ->
  right_aliases:string list -> right_base:int option ->
  out_stats:Stats.Derive.rel_stats -> Candidate.t list

val insert_all : ctx -> entry -> Candidate.t list -> unit

(** Run the enumeration, returning the context and the full-set entry. *)
val optimize_entry :
  ?config:config -> Storage.Catalog.t -> Stats.Table_stats.db -> Spj.t ->
  ctx * entry

(** Apply the required output order and projection to the best candidate. *)
val finish : ctx -> Spj.t -> entry -> result

(** End-to-end optimization.  @raise Invalid_argument on empty queries. *)
val optimize :
  ?config:config -> Storage.Catalog.t -> Stats.Table_stats.db -> Spj.t ->
  result
