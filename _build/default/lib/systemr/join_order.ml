(* Bottom-up dynamic-programming join enumeration (Section 3), with:
   - left-deep (linear) or bushy trees (Section 4.1.1, Figure 2);
   - Cartesian products deferred unless [allow_cross] (System-R's rule) —
     with a rescue path so disconnected query graphs still optimize;
   - interesting orders: per-subset candidate sets pruned to the Pareto
     frontier over (cost, delivered order);
   - pluggable join methods (nested loop, index nested loop, sort-merge,
     hash). *)

open Relalg

type meth = Nl | Inl | Smj | Hj

type config = {
  params : Cost.Cost_model.params;
  asm : Stats.Derive.assumption;
  allow_cross : bool;
  interesting_orders : bool;
  bushy : bool;
  methods : meth list;
}

let default_config =
  { params = Cost.Cost_model.default_params;
    asm = Stats.Derive.default_assumption;
    allow_cross = false;
    interesting_orders = true;
    bushy = false;
    methods = [ Nl; Inl; Smj; Hj ] }

(* The 1979 System-R repertoire: nested loop and sort-merge only, linear
   trees, no Cartesian products. *)
let system_r_1979 =
  { default_config with methods = [ Nl; Inl; Smj ] }

type ctx = {
  cfg : config;
  cat : Storage.Catalog.t;
  db : Stats.Table_stats.db;
  rels : Spj.relation array;
  locals : Expr.t list array;
  join_preds : Expr.t list;
  base : (Candidate.t list * Stats.Derive.rel_stats) array;
  stats_memo : (int, Stats.Derive.rel_stats) Hashtbl.t;
  mutable plans_costed : int;
}

type entry = { stats : Stats.Derive.rel_stats; mutable cands : Candidate.t list }

type result = {
  best : Candidate.t;
  card : float;
  plans_costed : int;
  subsets : int;
}

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let make_ctx cfg cat db (q : Spj.t) : ctx =
  let rels = Array.of_list q.Spj.relations in
  let locals =
    Array.map (fun (r : Spj.relation) -> Spj.local_predicates q r.Spj.alias) rels
  in
  let base =
    Array.mapi
      (fun i r -> Access_path.candidates cfg.params cfg.asm cat db r locals.(i))
      rels
  in
  { cfg;
    cat;
    db;
    rels;
    locals;
    join_preds = Spj.join_predicates q;
    base;
    stats_memo = Hashtbl.create 64;
    plans_costed = 0 }

let aliases_of ctx mask =
  let acc = ref [] in
  Array.iteri
    (fun i (r : Spj.relation) ->
       if mask land (1 lsl i) <> 0 then acc := r.Spj.alias :: !acc)
    ctx.rels;
  List.rev !acc

(* Join conjuncts crossing the (left, right) alias partition and fully
   contained in their union. *)
let crossing_preds ctx ~left_aliases ~right_aliases =
  List.filter
    (fun p ->
       let rels = Expr.relations p in
       List.exists (fun r -> List.mem r left_aliases) rels
       && List.exists (fun r -> List.mem r right_aliases) rels
       && List.for_all
            (fun r -> List.mem r left_aliases || List.mem r right_aliases)
            rels)
    ctx.join_preds

(* Canonical subset statistics: peel the highest relation and join it to the
   rest — the result is independent of which plan produced the subset
   (statistics are a logical property, Section 5). *)
let rec stats_of ctx mask : Stats.Derive.rel_stats =
  match Hashtbl.find_opt ctx.stats_memo mask with
  | Some s -> s
  | None ->
    let s =
      let bits =
        List.filter
          (fun i -> mask land (1 lsl i) <> 0)
          (List.init (Array.length ctx.rels) Fun.id)
      in
      match bits with
      | [] -> invalid_arg "stats_of: empty subset"
      | [ i ] -> snd ctx.base.(i)
      | _ ->
        let top = List.fold_left max 0 bits in
        let rest = mask land lnot (1 lsl top) in
        let ls = stats_of ctx rest in
        let rs = snd ctx.base.(top) in
        let preds =
          crossing_preds ctx
            ~left_aliases:(aliases_of ctx rest)
            ~right_aliases:[ ctx.rels.(top).Spj.alias ]
        in
        Stats.Derive.join ~asm:ctx.cfg.asm Algebra.Inner ls rs
          (Pred.of_conjuncts preds)
    in
    Hashtbl.replace ctx.stats_memo mask s;
    s

(* ------------------------------------------------------------------ *)
(* Join candidate construction *)

let col_order pairs side =
  List.map (fun (l, r) -> ((if side = `L then l else r), Algebra.Asc)) pairs

(* Build all join candidates combining [left] (composite) with [right]
   (composite when bushy; [right_base] set when it is one base relation). *)
let join_cands ctx ~(left : entry) ~left_aliases ~(right : entry)
    ~right_aliases ~right_base ~(out_stats : Stats.Derive.rel_stats) :
  Candidate.t list =
  let p = ctx.cfg.params in
  let preds =
    crossing_preds ctx ~left_aliases ~right_aliases
  in
  let pred_expr = Pred.of_conjuncts preds in
  let pairs, residual_list = Pred.equi_pairs ~left:left_aliases ~right:right_aliases preds in
  let residual = Pred.of_conjuncts residual_list in
  let lstats = left.stats and rstats = right.stats in
  let lrows = lstats.Stats.Derive.card and rrows = rstats.Stats.Derive.card in
  let lpages = Stats.Derive.pages lstats and rpages = Stats.Derive.pages rstats in
  let out_rows = out_stats.Stats.Derive.card in
  let count c = ctx.plans_costed <- ctx.plans_costed + 1; c in
  let nl_cands () =
    match Candidate.cheapest right.cands with
    | None -> []
    | Some rc ->
      List.filter_map
        (fun (lc : Candidate.t) ->
           let inner, rescan_cost =
             match right_base with
             | Some _ ->
               ( rc.Candidate.plan,
                 Cost.Cost_model.nested_loop p ~outer_rows:lrows
                   ~inner_rows:rrows ~inner_pages:rpages )
             | None ->
               ( Exec.Plan.Materialize rc.Candidate.plan,
                 p.Cost.Cost_model.cpu_tuple *. lrows *. rrows )
           in
           Some
             (count
                { Candidate.plan =
                    Exec.Plan.Nested_loop
                      { kind = Algebra.Inner; pred = pred_expr;
                        outer = lc.Candidate.plan; inner };
                  cost = lc.Candidate.cost +. rc.Candidate.cost +. rescan_cost;
                  order = lc.Candidate.order }))
        left.cands
  in
  let inl_cands () =
    match right_base with
    | None -> []
    | Some ri ->
      let rel = ctx.rels.(ri) in
      let base_table = Storage.Catalog.table ctx.cat rel.Spj.table in
      let base_rows = float_of_int (Storage.Table.row_count base_table) in
      let base_pages = float_of_int (Storage.Table.page_count base_table) in
      List.concat_map
        (fun (idx : Storage.Btree.t) ->
           (* longest prefix of the index key covered by equi-join pairs *)
           let rec covered cols =
             match cols with
             | [] -> []
             | c :: rest -> (
               match
                 List.find_opt
                   (fun ((_ : Expr.col_ref), r) -> r.Expr.col = c)
                   pairs
               with
               | Some (lcol, _) -> (c, lcol) :: covered rest
               | None -> [])
           in
           let cov = covered idx.Storage.Btree.columns in
           match cov with
           | [] -> []
           | _ ->
             let probe_cols = List.map fst cov in
             let other_pairs =
               List.filter
                 (fun (_, (r : Expr.col_ref)) ->
                    not (List.mem r.Expr.col probe_cols))
                 pairs
             in
             let residual_all =
               Pred.of_conjuncts
                 (List.map
                    (fun ((l : Expr.col_ref), (r : Expr.col_ref)) ->
                       Expr.Cmp (Expr.Eq, Expr.Col l, Expr.Col r))
                    other_pairs
                  @ residual_list @ ctx.locals.(ri))
             in
             let col_ndv c =
               match
                 Stats.Table_stats.find ctx.db rel.Spj.table
                 |> Fun.flip Option.bind (fun ts -> Stats.Table_stats.col ts c)
               with
               | Some cs -> Float.max 1. cs.Stats.Table_stats.n_distinct
               | None -> Float.max 1. base_rows
             in
             let ndv =
               if List.length probe_cols = List.length idx.Storage.Btree.columns
               then
                 (* full key: use the exact distinct-combinations statistic *)
                 Float.max 1. (float_of_int idx.Storage.Btree.distinct_keys)
               else
                 Float.min base_rows
                   (List.fold_left
                      (fun acc c -> acc *. col_ndv c)
                      1. probe_cols)
             in
             List.map
               (fun (lc : Candidate.t) ->
                  count
                    { Candidate.plan =
                        Exec.Plan.Index_nl
                          { kind = Algebra.Inner; outer = lc.Candidate.plan;
                            table = rel.Spj.table; alias = rel.Spj.alias;
                            index = idx.Storage.Btree.name;
                            columns = probe_cols;
                            outer_keys =
                              List.map (fun (_, l) -> Expr.Col l) cov;
                            residual = residual_all };
                      cost =
                        lc.Candidate.cost
                        +. Cost.Cost_model.index_nl p ~outer_rows:lrows
                             ~inner_rows:base_rows ~inner_pages:base_pages
                             ~matches_per_probe:(base_rows /. ndv)
                             ~clustered:idx.Storage.Btree.clustered;
                      order = lc.Candidate.order })
               left.cands)
        (Storage.Catalog.indexes ctx.cat rel.Spj.table)
  in
  let smj_cands () =
    if pairs = [] then []
    else
      let want_l = col_order pairs `L and want_r = col_order pairs `R in
      let lc =
        Candidate.cheapest_with_order ~params:p ~rows:lrows ~pages:lpages
          ~want:want_l left.cands
      and rc =
        Candidate.cheapest_with_order ~params:p ~rows:rrows ~pages:rpages
          ~want:want_r right.cands
      in
      match lc, rc with
      | Some lc, Some rc ->
        [ count
            { Candidate.plan =
                Exec.Plan.Merge_join
                  { kind = Algebra.Inner; pairs; residual;
                    left = lc.Candidate.plan; right = rc.Candidate.plan };
              cost =
                lc.Candidate.cost +. rc.Candidate.cost
                +. Cost.Cost_model.merge_join p ~left_rows:lrows
                     ~right_rows:rrows ~out_rows;
              order = lc.Candidate.order } ]
      | _ -> []
  in
  let hj_cands () =
    if pairs = [] then []
    else
      match Candidate.cheapest right.cands with
      | None -> []
      | Some rc ->
        List.map
          (fun (lc : Candidate.t) ->
             count
               { Candidate.plan =
                   Exec.Plan.Hash_join
                     { kind = Algebra.Inner; pairs; residual;
                       left = lc.Candidate.plan; right = rc.Candidate.plan };
                 cost =
                   lc.Candidate.cost +. rc.Candidate.cost
                   +. Cost.Cost_model.hash_join p ~left_rows:lrows
                        ~right_rows:rrows ~left_pages:lpages
                        ~right_pages:rpages ~out_rows;
                 order = lc.Candidate.order })
          left.cands
  in
  List.concat_map
    (fun m ->
       match m with
       | Nl -> nl_cands ()
       | Inl -> inl_cands ()
       | Smj -> smj_cands ()
       | Hj -> hj_cands ())
    ctx.cfg.methods

(* ------------------------------------------------------------------ *)
(* Enumeration *)

let insert_all ctx entry cands =
  List.iter
    (fun c ->
       entry.cands <-
         Candidate.insert ~interesting_orders:ctx.cfg.interesting_orders
           entry.cands c)
    cands

let optimize_entry ?(config = default_config) cat db (q : Spj.t) :
  ctx * entry =
  let ctx = make_ctx config cat db q in
  let n = Array.length ctx.rels in
  if n = 0 then invalid_arg "Join_order.optimize: no relations";
  let entries : (int, entry) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let cands, stats = ctx.base.(i) in
    Hashtbl.replace entries (1 lsl i) { stats; cands }
  done;
  let full = (1 lsl n) - 1 in
  let get mask = Hashtbl.find_opt entries mask in
  let ensure mask =
    match get mask with
    | Some e -> e
    | None ->
      let e = { stats = stats_of ctx mask; cands = [] } in
      Hashtbl.replace entries mask e;
      e
  in
  let connected l_aliases r_aliases =
    crossing_preds ctx ~left_aliases:l_aliases ~right_aliases:r_aliases <> []
  in
  if not config.bushy then begin
    (* left-deep, by subset size *)
    for size = 1 to n - 1 do
      (* masks of this size may be created during this pass; snapshot *)
      let masks =
        Hashtbl.fold (fun m _ acc -> if popcount m = size then m :: acc else acc)
          entries []
        |> List.sort_uniq compare
      in
      List.iter
        (fun mask ->
           let left = Hashtbl.find entries mask in
           let l_aliases = aliases_of ctx mask in
           let exts = List.filter (fun i -> mask land (1 lsl i) = 0) (List.init n Fun.id) in
           let connected_exts =
             List.filter
               (fun i -> connected l_aliases [ ctx.rels.(i).Spj.alias ])
               exts
           in
           let chosen =
             if config.allow_cross then exts
             else if connected_exts <> [] then connected_exts
             else exts (* rescue: disconnected graph needs a cross product *)
           in
           List.iter
             (fun i ->
                let rmask = 1 lsl i in
                let right = Hashtbl.find entries rmask in
                let union = mask lor rmask in
                let out = ensure union in
                let cands =
                  join_cands ctx ~left ~left_aliases:l_aliases ~right
                    ~right_aliases:[ ctx.rels.(i).Spj.alias ]
                    ~right_base:(Some i) ~out_stats:out.stats
                in
                insert_all ctx out cands)
             chosen)
        masks
    done
  end
  else begin
    (* bushy: every subset, every split.  Cartesian rescue applies only when
       the whole query graph is disconnected — a merely-disconnected
       intermediate subset is simply skipped, as in standard connected-
       subgraph enumeration. *)
    let graph_connected =
      let rec grow seen =
        let next =
          List.filter
            (fun i ->
               (not (List.mem i seen))
               && connected
                    (List.map (fun j -> ctx.rels.(j).Spj.alias) seen)
                    [ ctx.rels.(i).Spj.alias ])
            (List.init n Fun.id)
        in
        if next = [] then seen else grow (seen @ next)
      in
      List.length (grow [ 0 ]) = n
    in
    for mask = 1 to full do
      if popcount mask >= 2 then begin
        let out = ensure mask in
        let splits = ref [] in
        let s = ref ((mask - 1) land mask) in
        while !s > 0 do
          let s1 = !s and s2 = mask land lnot !s in
          if s2 <> 0 then splits := (s1, s2) :: !splits;
          s := (!s - 1) land mask
        done;
        let with_conn =
          List.filter
            (fun (s1, s2) ->
               connected (aliases_of ctx s1) (aliases_of ctx s2))
            !splits
        in
        let chosen =
          if config.allow_cross then !splits
          else if with_conn <> [] then with_conn
          else if not graph_connected then !splits
          else []
        in
        List.iter
          (fun (s1, s2) ->
             match get s1, get s2 with
             | Some left, Some right ->
               let right_base =
                 if popcount s2 = 1 then
                   let rec bit i = if s2 land (1 lsl i) <> 0 then i else bit (i + 1) in
                   Some (bit 0)
                 else None
               in
               let cands =
                 join_cands ctx ~left ~left_aliases:(aliases_of ctx s1) ~right
                   ~right_aliases:(aliases_of ctx s2) ~right_base
                   ~out_stats:out.stats
               in
               insert_all ctx out cands
             | _ -> ())
          chosen
      end
    done
  end;
  (ctx, Hashtbl.find entries full)

let finish ctx (q : Spj.t) (final : entry) : result =
  let stats = final.stats in
  let rows = stats.Stats.Derive.card and pages = Stats.Derive.pages stats in
  let best =
    match
      Candidate.cheapest_with_order ~params:ctx.cfg.params ~rows ~pages
        ~want:q.Spj.order_by final.cands
    with
    | Some c -> c
    | None -> invalid_arg "Join_order: no plan found"
  in
  let best =
    match q.Spj.projections with
    | None -> best
    | Some items ->
      { best with
        Candidate.plan = Exec.Plan.Project (items, best.Candidate.plan);
        cost = best.Candidate.cost +. Cost.Cost_model.project ctx.cfg.params ~rows }
  in
  { best;
    card = stats.Stats.Derive.card;
    plans_costed = ctx.plans_costed;
    subsets = Hashtbl.length ctx.stats_memo }

let optimize ?config cat db (q : Spj.t) : result =
  let ctx, final = optimize_entry ?config cat db q in
  finish ctx q final
