lib/systemr/candidate.ml: Cost Exec List Relalg
