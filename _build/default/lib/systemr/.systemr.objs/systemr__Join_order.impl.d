lib/systemr/join_order.ml: Access_path Algebra Array Candidate Cost Exec Expr Float Fun Hashtbl List Option Pred Relalg Spj Stats Storage
