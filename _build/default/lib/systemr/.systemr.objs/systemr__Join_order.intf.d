lib/systemr/join_order.mli: Candidate Cost Expr Hashtbl Relalg Spj Stats Storage
