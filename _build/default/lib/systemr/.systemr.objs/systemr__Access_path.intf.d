lib/systemr/access_path.mli: Candidate Cost Exec Expr Relalg Spj Stats Storage
