lib/systemr/candidate.mli: Cost Exec
