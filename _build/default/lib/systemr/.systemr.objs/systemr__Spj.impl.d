lib/systemr/spj.ml: Algebra Cost Expr List Pred Query_graph Relalg Schema
