lib/systemr/access_path.ml: Algebra Candidate Cost Exec Expr List Pred Relalg Spj Stats Storage Value
