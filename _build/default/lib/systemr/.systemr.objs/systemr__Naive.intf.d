lib/systemr/naive.mli: Candidate Join_order Spj Stats Storage
