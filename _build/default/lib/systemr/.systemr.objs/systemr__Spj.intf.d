lib/systemr/spj.mli: Algebra Cost Expr Query_graph Relalg Schema
