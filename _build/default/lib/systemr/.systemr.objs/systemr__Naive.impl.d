lib/systemr/naive.ml: Array Candidate Fun Join_order List Spj
