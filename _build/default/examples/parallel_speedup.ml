(* Two-phase parallel optimization walkthrough (Section 7.1): decompose a
   plan into pipelined segments, schedule it on p processors, and see how
   communication-aware partitioning changes the picture.

     dune exec examples/parallel_speedup.exe *)

open Relalg

let () =
  let w = Workload.Schemas.star ~fact_rows:100000 ~dim_rows:100 ~dims:3 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  (* phase 1: a conventional single-site plan *)
  let scan t = Exec.Plan.Seq_scan { table = t; alias = t; filter = None } in
  let plan =
    List.fold_left
      (fun acc dim ->
         Exec.Plan.Hash_join
           { kind = Algebra.Inner;
             pairs =
               [ ( { Expr.rel = "Sales"; col = String.lowercase_ascii dim ^ "_id" },
                   { Expr.rel = dim; col = "id" } ) ];
             residual = Expr.ftrue; left = acc; right = scan dim })
      (scan "Sales") w.Workload.Schemas.dims
  in
  print_endline "phase-1 plan:";
  print_endline (Exec.Plan.to_string plan);

  (* phase 2: segments and schedule *)
  let schedule =
    Parallel.Two_phase.run
      ~config:{ Parallel.Two_phase.default_config with processors = 8 }
      cat db plan
  in
  print_endline "\nphase-2 decomposition and schedule (8 processors):";
  Fmt.pr "%a@." Parallel.Two_phase.pp_schedule schedule;

  print_endline "\nresponse time vs processors (total work is constant):";
  List.iter
    (fun p ->
       let s =
         Parallel.Two_phase.run
           ~config:{ Parallel.Two_phase.default_config with processors = p }
           cat db plan
       in
       Printf.printf "  %3d processors: response %8.2f  (work %.1f, comm %.1f)\n"
         p s.Parallel.Two_phase.response_time s.Parallel.Two_phase.total_work
         s.Parallel.Two_phase.comm_cost)
    [ 1; 2; 4; 8; 16; 32; 64 ]
