(* Statistics laboratory (Section 5): histograms, sampled statistics, and
   what estimation error does to plan choice.

     dune exec examples/selectivity_lab.exe *)


let () =
  (* build a skewed column and three histograms on it *)
  let st = Workload.Gen.rng 77 in
  let data =
    Array.map float_of_int (Workload.Gen.zipf_array st ~n:100 ~size:20000 ~skew:1.2)
  in
  Printf.printf "20000 Zipf(1.2) values over 1..100\n\n";
  List.iter
    (fun kind ->
       let h = Stats.Sample.build kind ~buckets:12 data in
       let show v =
         let truth =
           float_of_int
             (Array.fold_left (fun acc x -> if x = v then acc + 1 else acc) 0 data)
           /. 20000.
         in
         Printf.printf "    sel(= %3.0f): est %.4f  actual %.4f\n" v
           (Stats.Histogram.est_eq h v) truth
       in
       Printf.printf "--- %s ---\n" (Stats.Sample.kind_name kind);
       show 1.;
       show 50.;
       let r_est = Stats.Histogram.est_range h ~lo:10. ~hi:30. () in
       let r_act =
         float_of_int
           (Array.fold_left
              (fun acc x -> if x >= 10. && x <= 30. then acc + 1 else acc)
              0 data)
         /. 20000.
       in
       Printf.printf "    sel(10..30): est %.4f  actual %.4f\n\n" r_est r_act)
    [ Stats.Sample.Equi_width; Stats.Sample.Equi_depth; Stats.Sample.Compressed ];

  (* estimation error changes plans: a filter the optimizer believes is
     selective flips the join order *)
  let w = Workload.Schemas.emp_dept ~emps:8000 ~depts:200 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let sql sel =
    Printf.sprintf
      "SELECT E.name, D.loc FROM Emp E, Dept D \
       WHERE E.did = D.did AND E.sal < %d" sel
  in
  print_endline "--- plans as the Emp filter widens ---";
  List.iter
    (fun cut ->
       let block = Sql.Binder.of_string cat (sql cut) in
       let rewritten, _ = Rewrite.Rules.run [] block in
       ignore rewritten;
       Printf.printf "E.sal < %-7d =>\n%s\n\n" cut
         (Core.Pipeline.explain cat db block))
    [ 35_000; 200_000 ]
