(* Quickstart: create tables, load rows, ask SQL questions, look at plans.

     dune exec examples/quickstart.exe *)

open Relalg

let () =
  (* 1. create a catalog and two tables *)
  let cat = Storage.Catalog.create () in
  let authors =
    Storage.Catalog.create_table cat ~name:"authors"
      ~columns:[ ("aid", Value.Tint); ("name", Value.Tstring); ("born", Value.Tint) ]
  in
  let books =
    Storage.Catalog.create_table cat ~name:"books"
      ~columns:
        [ ("bid", Value.Tint); ("aid", Value.Tint); ("title", Value.Tstring);
          ("year", Value.Tint); ("pages", Value.Tint) ]
  in
  let a aid name born =
    Storage.Table.insert authors
      (Tuple.of_list [ Value.Int aid; Value.Str name; Value.Int born ])
  in
  let b bid aid title year pages =
    Storage.Table.insert books
      (Tuple.of_list
         [ Value.Int bid; Value.Int aid; Value.Str title; Value.Int year;
           Value.Int pages ])
  in
  a 1 "codd" 1923;
  a 2 "gray" 1944;
  a 3 "selinger" 1949;
  b 1 1 "a relational model" 1970 12;
  b 2 2 "transaction processing" 1992 1070;
  b 3 3 "access path selection" 1979 12;
  b 4 2 "the dangers of replication" 1996 10;

  (* 2. an index and statistics *)
  ignore (Storage.Catalog.create_index cat ~table:"books" ~column:"aid" ());
  let db = Stats.Table_stats.analyze_catalog cat in

  (* 3. ask a question in SQL *)
  let sql =
    "SELECT A.name, B.title FROM authors A, books B \
     WHERE A.aid = B.aid AND B.year < 1990 ORDER BY A.name"
  in
  let block = Sql.Binder.of_string cat sql in

  (* 4. look at the plan the optimizer chose ... *)
  print_endline "--- EXPLAIN ---";
  print_endline (Core.Pipeline.explain cat db block);

  (* 5. ... and run it *)
  print_endline "--- RESULT ---";
  let result, _report = Core.Pipeline.run cat db block in
  Fmt.pr "%a@." Schema.pp result.Exec.Executor.schema;
  Array.iter (fun t -> Fmt.pr "%a@." Tuple.pp t) result.Exec.Executor.rows;

  (* 6. aggregates work too *)
  let sql2 =
    "SELECT A.name, COUNT(*) AS n, SUM(B.pages) AS pages \
     FROM authors A, books B WHERE A.aid = B.aid \
     GROUP BY A.name HAVING COUNT(*) >= 1"
  in
  print_endline "--- AGGREGATE ---";
  let result2, _ = Core.Pipeline.run cat db (Sql.Binder.of_string cat sql2) in
  Array.iter (fun t -> Fmt.pr "%a@." Tuple.pp t) result2.Exec.Executor.rows
