(* Nested-query unnesting walkthrough (Section 4.2.2): the paper's Emp/Dept
   examples, run (a) with tuple-iteration semantics and (b) after rewriting,
   including the count bug.

     dune exec examples/unnesting.exe *)

let emp_dept () = Workload.Schemas.emp_dept ~emps:3000 ~depts:60 ~empty_dept_frac:0.25 ()

let show_both title cat db sql =
  Printf.printf "=== %s ===\n%s\n" title sql;
  let block () = Sql.Binder.of_string cat sql in
  (* tuple iteration: subquery re-evaluated per outer row *)
  let ctx1 = Exec.Context.create () in
  let naive, _ =
    Core.Pipeline.run ~ctx:ctx1 ~config:Core.Pipeline.naive_config cat db
      (block ())
  in
  (* after unnesting *)
  let ctx2 = Exec.Context.create () in
  let rewritten, report =
    Core.Pipeline.run ~ctx:ctx2 cat db (block ())
  in
  Printf.printf "tuple iteration : %4d rows, cost %10.1f (%s)\n"
    (Array.length naive.Exec.Executor.rows)
    (Exec.Context.weighted_cost ctx1)
    (Fmt.str "%a" Exec.Context.pp ctx1);
  Printf.printf "after rewriting : %4d rows, cost %10.1f  rewrites: %s\n"
    (Array.length rewritten.Exec.Executor.rows)
    (Exec.Context.weighted_cost ctx2)
    (String.concat ", "
       (List.map (fun (n, k) -> Printf.sprintf "%s x%d" n k)
          report.Core.Pipeline.trace));
  Printf.printf "same answers    : %b\n\n"
    (Exec.Executor.same_multiset naive rewritten)

let () =
  let w = emp_dept () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in

  show_both "correlated IN (the paper's first nesting example)" cat db
    "SELECT E.name FROM Emp E WHERE E.did IN \
       (SELECT D.did FROM Dept D WHERE D.loc = 'Denver' AND E.eid = D.mgr)";

  show_both "correlated EXISTS" cat db
    "SELECT D.name FROM Dept D WHERE EXISTS \
       (SELECT * FROM Emp E WHERE E.did = D.did AND E.sal > 150000)";

  show_both "NOT EXISTS (antijoin)" cat db
    "SELECT D.name FROM Dept D WHERE NOT EXISTS \
       (SELECT * FROM Emp E WHERE E.did = D.did)";

  show_both "correlated COUNT subquery (the count-bug query from [44])" cat db
    "SELECT D.name FROM Dept D WHERE D.num_machines >= \
       (SELECT COUNT(*) FROM Emp E WHERE D.name = E.dept_name)";

  (* the count bug, demonstrated *)
  print_endline "=== why the outerjoin matters (the count bug) ===";
  let sql =
    "SELECT D.name FROM Dept D WHERE D.num_machines >= \
       (SELECT COUNT(*) FROM Emp E WHERE D.name = E.dept_name)"
  in
  let truth, _ =
    Core.Pipeline.run ~config:Core.Pipeline.naive_config cat db
      (Sql.Binder.of_string cat sql)
  in
  let buggy, _ =
    Core.Pipeline.run
      ~config:
        { Core.Pipeline.default_config with
          rewrites = [ [ Rewrite.Unnest.naive_cmp_rule ] ] }
      cat db (Sql.Binder.of_string cat sql)
  in
  Printf.printf
    "correct rewrite keeps departments with zero employees: %d rows\n\
     naive inner-join rewrite silently drops them:          %d rows\n"
    (Array.length truth.Exec.Executor.rows)
    (Array.length buggy.Exec.Executor.rows)
