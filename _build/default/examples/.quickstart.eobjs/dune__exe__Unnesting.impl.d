examples/unnesting.ml: Array Core Exec Fmt List Printf Rewrite Sql String Workload
