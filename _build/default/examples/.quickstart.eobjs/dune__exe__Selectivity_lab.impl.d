examples/selectivity_lab.ml: Array Core List Printf Rewrite Sql Stats Workload
