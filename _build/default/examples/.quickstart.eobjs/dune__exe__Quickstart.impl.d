examples/quickstart.ml: Array Core Exec Fmt Relalg Schema Sql Stats Storage Tuple Value
