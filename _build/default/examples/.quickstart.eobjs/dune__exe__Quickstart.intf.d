examples/quickstart.mli:
