examples/star_schema.ml: Array Exec Expr Fmt List Printf Relalg Schema Storage String Systemr Workload
