examples/unnesting.mli:
