examples/parallel_speedup.ml: Algebra Exec Expr Fmt List Parallel Printf Relalg String Workload
