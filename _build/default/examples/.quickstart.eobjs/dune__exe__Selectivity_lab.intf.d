examples/selectivity_lab.mli:
