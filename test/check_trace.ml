(* CI gate for telemetry JSON output.

   Default mode: read line-delimited JSON on stdin (--trace-json,
   --query-log, span NDJSON), exit 0 iff every non-empty line is a
   well-formed JSON value.

   --object mode: treat all of stdin as one JSON value (--profile-json
   Chrome traces), and additionally require a non-empty "traceEvents"
   array.  Both modes check with the hand-rolled reader in [Obs.Json],
   independent of the writers. *)

let () =
  let object_mode = Array.exists (( = ) "--object") Sys.argv in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf stdin 4096
     done
   with End_of_file -> ());
  let input = Buffer.contents buf in
  if object_mode then
    match Obs.Json.parse input with
    | Error m ->
      Printf.eprintf "malformed profile: %s\n" m;
      exit 1
    | Ok v -> (
      match Obs.Json.member "traceEvents" v with
      | Some (Obs.Json.Arr (_ :: _ as evs)) ->
        Printf.printf "profile ok: %d trace event(s)\n" (List.length evs)
      | Some (Obs.Json.Arr []) ->
        Printf.eprintf "profile has no trace events\n";
        exit 1
      | _ ->
        Printf.eprintf "profile missing traceEvents array\n";
        exit 1)
  else begin
    let lines =
      List.length
        (List.filter
           (fun l -> String.trim l <> "")
           (String.split_on_char '\n' input))
    in
    match Obs.Json.validate_lines input with
    | Ok () -> Printf.printf "trace ok: %d well-formed JSON line(s)\n" lines
    | Error m ->
      Printf.eprintf "malformed trace: %s\n" m;
      exit 1
  end
