(* CI gate for --trace-json output: read line-delimited JSON on stdin,
   exit 0 iff every non-empty line is a well-formed JSON value (checked by
   the hand-rolled reader in [Obs.Json], independent of the writer). *)

let () =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf stdin 4096
     done
   with End_of_file -> ());
  let input = Buffer.contents buf in
  let lines =
    List.length
      (List.filter
         (fun l -> String.trim l <> "")
         (String.split_on_char '\n' input))
  in
  match Obs.Json.validate_lines input with
  | Ok () -> Printf.printf "trace ok: %d well-formed JSON line(s)\n" lines
  | Error m ->
    Printf.eprintf "malformed trace: %s\n" m;
    exit 1
