(* Tests for the storage engine: tables, page model, B-tree indexes,
   buffer pool, catalog. *)

open Relalg

let mk_table ?(rows = 100) name =
  let t =
    Storage.Table.create ~name
      ~columns:[ ("k", Value.Tint); ("v", Value.Tstring) ] ()
  in
  for i = 0 to rows - 1 do
    Storage.Table.insert t
      (Tuple.of_list [ Value.Int (i mod (rows / 2)); Value.Str (string_of_int i) ])
  done;
  t

let test_table_basics () =
  let t = mk_table "T" in
  Alcotest.(check int) "rows" 100 (Storage.Table.row_count t);
  Alcotest.(check bool) "pages >= 1" true (Storage.Table.page_count t >= 1);
  Alcotest.check_raises "arity check"
    (Invalid_argument "Table.insert T: arity 1 <> 2") (fun () ->
        Storage.Table.insert t (Tuple.of_list [ Value.Int 1 ]))

let test_page_model () =
  let schema = [ Schema.column ~rel:"T" ~name:"k" ~ty:Value.Tint ] in
  let tpp = Storage.Page.tuples_per_page schema in
  Alcotest.(check bool) "plausible tuples/page" true (tpp > 100 && tpp < 1000);
  Alcotest.(check int) "empty table 1 page" 1 (Storage.Page.pages_for ~rows:0 schema);
  Alcotest.(check int) "exact boundary" 1 (Storage.Page.pages_for ~rows:tpp schema);
  Alcotest.(check int) "boundary + 1" 2 (Storage.Page.pages_for ~rows:(tpp + 1) schema)

(* ---------- B-tree ---------- *)

let test_btree_probe () =
  let t = mk_table "T2" in
  let idx = Storage.Btree.build ~name:"i" ~clustered:false t ~columns:[ "k" ] in
  let hits = Storage.Btree.probe idx [ Value.Int 7 ] in
  Alcotest.(check int) "two rows per key" 2 (Array.length hits);
  Array.iter
    (fun (k, _) ->
       Alcotest.(check bool) "key matches" true (k = [ Value.Int 7 ]))
    hits;
  Alcotest.(check int) "missing key" 0 (Array.length (Storage.Btree.probe idx [ Value.Int 999 ]))

let test_btree_range_matches_filter () =
  let t = mk_table ~rows:200 "T3" in
  let idx = Storage.Btree.build ~name:"i" ~clustered:false t ~columns:[ "k" ] in
  let lo = Value.Int 10 and hi = Value.Int 30 in
  let via_index =
    Storage.Btree.range idx ~lo:(Storage.Btree.Incl lo) ~hi:(Storage.Btree.Excl hi)
    |> Array.to_list |> List.map snd |> List.sort compare
  in
  let via_scan = ref [] in
  Storage.Table.iteri
    (fun rid tu ->
       let k = Tuple.get tu 0 in
       if Value.compare k lo >= 0 && Value.compare k hi < 0 then
         via_scan := rid :: !via_scan)
    t;
  Alcotest.(check (list int)) "range = filter" (List.sort compare !via_scan) via_index

let test_btree_null_handling () =
  let t = Storage.Table.create ~name:"N" ~columns:[ ("k", Value.Tint) ] () in
  Storage.Table.insert t (Tuple.of_list [ Value.Null ]);
  Storage.Table.insert t (Tuple.of_list [ Value.Int 1 ]);
  let idx = Storage.Btree.build ~name:"i" ~clustered:false t ~columns:[ "k" ] in
  (* unbounded range scan skips NULL keys, like a SQL predicate would *)
  Alcotest.(check int) "nulls filtered" 1
    (Array.length (Storage.Btree.range idx ~lo:Storage.Btree.Unbounded ~hi:Storage.Btree.Unbounded));
  Alcotest.(check int) "probe non-null" 1
    (Array.length (Storage.Btree.probe idx [ Value.Int 1 ]))

let prop_btree_range =
  QCheck.Test.make ~name:"btree range scan = filtered scan" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 0 60) (int_range (-20) 20))
              (pair (int_range (-25) 25) (int_range (-25) 25)))
    (fun (keys, (a, b)) ->
       let lo = min a b and hi = max a b in
       let t = Storage.Table.create ~name:"P" ~columns:[ ("k", Value.Tint) ] () in
       List.iter (fun k -> Storage.Table.insert t (Tuple.of_list [ Value.Int k ])) keys;
       let idx = Storage.Btree.build ~name:"i" ~clustered:false t ~columns:[ "k" ] in
       let via_index =
         Storage.Btree.range idx ~lo:(Storage.Btree.Incl (Value.Int lo))
           ~hi:(Storage.Btree.Incl (Value.Int hi))
         |> Array.to_list
         |> List.map (fun (_, rid) -> rid)
         |> List.sort compare
       in
       let expected =
         List.filteri (fun _ k -> k >= lo && k <= hi) keys
         |> List.length
       in
       List.length via_index = expected)

let test_btree_composite () =
  let t =
    Storage.Table.create ~name:"C2"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ] ()
  in
  for i = 0 to 99 do
    Storage.Table.insert t
      (Tuple.of_list [ Value.Int (i mod 5); Value.Int (i mod 10) ])
  done;
  let idx = Storage.Btree.build ~name:"i" ~clustered:false t ~columns:[ "a"; "b" ] in
  (* a = i mod 5, b = i mod 10: pairs repeat with period 10 *)
  Alcotest.(check int) "distinct keys" 10 idx.Storage.Btree.distinct_keys;
  Alcotest.(check int) "full probe" 10
    (Array.length (Storage.Btree.probe idx [ Value.Int 2; Value.Int 7 ]));
  Alcotest.(check int) "prefix probe" 20
    (Array.length (Storage.Btree.probe idx [ Value.Int 2 ]));
  Alcotest.(check int) "miss" 0
    (Array.length (Storage.Btree.probe idx [ Value.Int 2; Value.Int 8 ]));
  Alcotest.(check int) "null probe" 0
    (Array.length (Storage.Btree.probe idx [ Value.Int 2; Value.Null ]))

let prop_btree_composite_probe =
  QCheck.Test.make ~name:"composite probe = filtered scan" ~count:100
    QCheck.(pair
              (list_of_size Gen.(int_range 0 50)
                 (pair (int_range 0 4) (int_range 0 4)))
              (pair (int_range 0 4) (int_range 0 4)))
    (fun (rows, (pa, pb)) ->
       let t =
         Storage.Table.create ~name:"P2"
           ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ] ()
       in
       List.iter
         (fun (a, b) ->
            Storage.Table.insert t (Tuple.of_list [ Value.Int a; Value.Int b ]))
         rows;
       let idx = Storage.Btree.build ~name:"i" ~clustered:false t ~columns:[ "a"; "b" ] in
       let via_index =
         Array.length (Storage.Btree.probe idx [ Value.Int pa; Value.Int pb ])
       in
       let expected =
         List.length (List.filter (fun (a, b) -> a = pa && b = pb) rows)
       in
       via_index = expected)

(* ---------- buffer pool ---------- *)

let test_pool_hit_miss () =
  let p = Storage.Buffer.Pool.create ~capacity:2 in
  Alcotest.(check bool) "first is miss" true (Storage.Buffer.Pool.access p ("t", 0) = `Miss);
  Alcotest.(check bool) "repeat is hit" true (Storage.Buffer.Pool.access p ("t", 0) = `Hit);
  ignore (Storage.Buffer.Pool.access p ("t", 1));
  ignore (Storage.Buffer.Pool.access p ("t", 2)); (* evicts page 0 (LRU) *)
  Alcotest.(check bool) "evicted is miss" true (Storage.Buffer.Pool.access p ("t", 0) = `Miss)

let test_pool_lru_order () =
  let p = Storage.Buffer.Pool.create ~capacity:2 in
  ignore (Storage.Buffer.Pool.access p ("t", 0));
  ignore (Storage.Buffer.Pool.access p ("t", 1));
  ignore (Storage.Buffer.Pool.access p ("t", 0)); (* refresh 0; 1 is now LRU *)
  ignore (Storage.Buffer.Pool.access p ("t", 2)); (* evicts 1, not 0 *)
  Alcotest.(check bool) "0 retained" true (Storage.Buffer.Pool.access p ("t", 0) = `Hit);
  Alcotest.(check bool) "1 evicted" true (Storage.Buffer.Pool.access p ("t", 1) = `Miss)

let test_cardenas () =
  let d = Storage.Buffer.cardenas ~pages:100 ~accesses:1 in
  Alcotest.(check (float 1e-9)) "one access one page" 1.0 d;
  let d2 = Storage.Buffer.cardenas ~pages:10 ~accesses:10000 in
  Alcotest.(check bool) "saturates" true (d2 > 9.99 && d2 <= 10.0);
  Alcotest.(check bool) "monotone" true
    (Storage.Buffer.cardenas ~pages:100 ~accesses:50
     < Storage.Buffer.cardenas ~pages:100 ~accesses:100)

let test_expected_fetches () =
  (* working set fits: one fault per distinct page *)
  let f = Storage.Buffer.expected_fetches ~buffer:1000 ~pages:10 ~accesses:500 in
  Alcotest.(check bool) "fits in buffer" true (f <= 10.0 +. 1e-9);
  (* tiny buffer: most accesses fault *)
  let g = Storage.Buffer.expected_fetches ~buffer:2 ~pages:100 ~accesses:500 in
  Alcotest.(check bool) "thrashes" true (g > 400.)

(* ---------- catalog ---------- *)

let test_catalog () =
  let cat = Storage.Catalog.create () in
  let t = Storage.Catalog.create_table cat ~name:"T" ~columns:[ ("k", Value.Tint) ] in
  Storage.Table.insert t (Tuple.of_list [ Value.Int 1 ]);
  Alcotest.(check bool) "mem" true (Storage.Catalog.mem cat "T");
  Alcotest.(check bool) "not mem" false (Storage.Catalog.mem cat "U");
  ignore (Storage.Catalog.create_index cat ~table:"T" ~column:"k" ());
  Alcotest.(check bool) "index found" true
    (Storage.Catalog.index_on cat ~table:"T" ~column:"k" <> None);
  Alcotest.(check bool) "index missing" true
    (Storage.Catalog.index_on cat ~table:"T" ~column:"v" = None);
  Alcotest.check_raises "duplicate table"
    (Invalid_argument "Catalog.add_table: duplicate T") (fun () ->
        ignore (Storage.Catalog.create_table cat ~name:"T" ~columns:[]));
  match Storage.Catalog.scan cat ~alias:"X" "T" with
  | Algebra.Scan { alias = "X"; schema; _ } ->
    Alcotest.(check int) "requalified scan" 0 (Schema.index_of schema ~rel:"X" ~name:"k")
  | _ -> Alcotest.fail "expected scan"

let () =
  Alcotest.run "storage"
    [ ("table",
       [ Alcotest.test_case "basics" `Quick test_table_basics;
         Alcotest.test_case "page model" `Quick test_page_model ]);
      ("btree",
       [ Alcotest.test_case "probe" `Quick test_btree_probe;
         Alcotest.test_case "range = filter" `Quick test_btree_range_matches_filter;
         Alcotest.test_case "null handling" `Quick test_btree_null_handling;
         Alcotest.test_case "composite keys" `Quick test_btree_composite;
         QCheck_alcotest.to_alcotest prop_btree_range;
         QCheck_alcotest.to_alcotest prop_btree_composite_probe ]);
      ("buffer",
       [ Alcotest.test_case "hit/miss" `Quick test_pool_hit_miss;
         Alcotest.test_case "lru order" `Quick test_pool_lru_order;
         Alcotest.test_case "cardenas" `Quick test_cardenas;
         Alcotest.test_case "expected fetches" `Quick test_expected_fetches ]);
      ("catalog", [ Alcotest.test_case "catalog ops" `Quick test_catalog ]) ]
