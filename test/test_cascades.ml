(* Cascades optimizer tests: plan correctness by execution, cost parity
   with the System-R bushy DP over the same search space, memoization
   statistics. *)

open Relalg

let spj_of_pieces (p : Workload.Schemas.join_pieces) : Systemr.Spj.t =
  Systemr.Spj.make
    ~relations:
      (List.map
         (fun (alias, table) ->
            { Systemr.Spj.alias; table;
              schema =
                Schema.requalify
                  (Storage.Catalog.table p.Workload.Schemas.jcat table).Storage.Table.schema
                  ~rel:alias })
         p.Workload.Schemas.relations)
    ~predicates:p.Workload.Schemas.predicates ()

let reference_rows (p : Workload.Schemas.join_pieces) (q : Systemr.Spj.t) =
  (* canonical nested-loop plan in declaration order *)
  match q.Systemr.Spj.relations with
  | [] -> assert false
  | first :: rest ->
    let scan (r : Systemr.Spj.relation) =
      Exec.Plan.Seq_scan { table = r.Systemr.Spj.table; alias = r.Systemr.Spj.alias; filter = None }
    in
    let joined =
      List.fold_left
        (fun acc r ->
           Exec.Plan.Nested_loop
             { kind = Algebra.Inner; pred = Expr.ftrue; outer = acc;
               inner = scan r })
        (scan first) rest
    in
    let filtered =
      Exec.Plan.Filter (Pred.of_conjuncts q.Systemr.Spj.predicates, joined)
    in
    Exec.Executor.run p.Workload.Schemas.jcat filtered

let shapes =
  [ ("chain", Workload.Schemas.Chain_q); ("star", Workload.Schemas.Star_q);
    ("clique", Workload.Schemas.Clique_q) ]

let test_correctness () =
  List.iter
    (fun (name, shape) ->
       let p = Workload.Schemas.join_shape ~rows:25 ~shape ~n:4 () in
       let q = spj_of_pieces p in
       let res = Cascades.Search.optimize p.Workload.Schemas.jcat p.Workload.Schemas.jdb q in
       let out = Exec.Executor.run p.Workload.Schemas.jcat res.Cascades.Search.best.Systemr.Candidate.plan in
       let expect = reference_rows p q in
       Alcotest.(check bool) (name ^ " correct") true
         (Exec.Executor.same_multiset_modulo_columns out expect))
    shapes

let test_cost_parity_with_bushy_dp () =
  List.iter
    (fun (name, shape) ->
       let p = Workload.Schemas.join_shape ~rows:200 ~shape ~n:5 () in
       let q = spj_of_pieces p in
       let casc = Cascades.Search.optimize p.Workload.Schemas.jcat p.Workload.Schemas.jdb q in
       let dp =
         Systemr.Join_order.optimize
           ~config:{ Systemr.Join_order.default_config with bushy = true }
           p.Workload.Schemas.jcat p.Workload.Schemas.jdb q
       in
       (* same logical space and cost model: best costs must agree *)
       Alcotest.(check (float 1e-6)) (name ^ " best cost parity")
         dp.Systemr.Join_order.best.Systemr.Candidate.cost
         casc.Cascades.Search.best.Systemr.Candidate.cost)
    shapes

let test_memo_statistics () =
  let p = Workload.Schemas.join_shape ~rows:100 ~shape:Workload.Schemas.Chain_q ~n:5 () in
  let q = spj_of_pieces p in
  let res = Cascades.Search.optimize p.Workload.Schemas.jcat p.Workload.Schemas.jdb q in
  (* chain of 5 without cross products: groups = connected subchains =
     n(n+1)/2 = 15 *)
  Alcotest.(check int) "groups" 15 res.Cascades.Search.groups;
  Alcotest.(check bool) "exprs >= groups" true
    (res.Cascades.Search.exprs >= res.Cascades.Search.groups);
  Alcotest.(check bool) "rules fired" true (res.Cascades.Search.rule_firings > 0)

let test_memoization_bounds_work () =
  (* a clique of 7 explodes without memoization; with the memo it completes
     quickly and visits exactly 2^n - 1 groups *)
  let p = Workload.Schemas.join_shape ~rows:50 ~shape:Workload.Schemas.Clique_q ~n:7 () in
  let q = spj_of_pieces p in
  let t0 = Mclock.now () in
  let res = Cascades.Search.optimize p.Workload.Schemas.jcat p.Workload.Schemas.jdb q in
  let dt = Mclock.now () -. t0 in
  Alcotest.(check int) "all subsets" 127 res.Cascades.Search.groups;
  Alcotest.(check bool) (Printf.sprintf "fast enough (%.2fs)" dt) true (dt < 10.)

let test_order_requirement () =
  let p = Workload.Schemas.join_shape ~rows:60 ~shape:Workload.Schemas.Chain_q ~n:3 () in
  let q =
    { (spj_of_pieces p) with
      Systemr.Spj.order_by = [ ({ Expr.rel = "R1"; col = "a" }, Algebra.Asc) ] }
  in
  let res = Cascades.Search.optimize p.Workload.Schemas.jcat p.Workload.Schemas.jdb q in
  let out = Exec.Executor.run p.Workload.Schemas.jcat res.Cascades.Search.best.Systemr.Candidate.plan in
  let i = Schema.index_of out.Exec.Executor.schema ~rel:"R1" ~name:"a" in
  let keys = Array.to_list out.Exec.Executor.rows |> List.map (fun t -> Tuple.get t i) in
  Alcotest.(check bool) "sorted" true
    (List.for_all2 Value.equal keys (List.sort Value.compare keys))

let prop_cascades_correct =
  QCheck.Test.make ~name:"cascades plans always correct" ~count:10
    (QCheck.make
       QCheck.Gen.(
         pair (oneofl [ Workload.Schemas.Chain_q; Workload.Schemas.Star_q ])
           (pair (int_range 2 4) (int_range 1 1000))))
    (fun (shape, (n, seed)) ->
       let p = Workload.Schemas.join_shape ~seed ~rows:20 ~shape ~n () in
       let q = spj_of_pieces p in
       let res = Cascades.Search.optimize p.Workload.Schemas.jcat p.Workload.Schemas.jdb q in
       let out = Exec.Executor.run p.Workload.Schemas.jcat res.Cascades.Search.best.Systemr.Candidate.plan in
       Exec.Executor.same_multiset_modulo_columns out (reference_rows p q))

let () =
  Alcotest.run "cascades"
    [ ("search",
       [ Alcotest.test_case "correctness" `Quick test_correctness;
         Alcotest.test_case "cost parity with bushy DP" `Quick test_cost_parity_with_bushy_dp;
         Alcotest.test_case "order requirement" `Quick test_order_requirement;
         QCheck_alcotest.to_alcotest prop_cascades_correct ]);
      ("memo",
       [ Alcotest.test_case "statistics" `Quick test_memo_statistics;
         Alcotest.test_case "memoization bounds work" `Quick test_memoization_bounds_work ]) ]
