(* Plan Lint tests.

   Two halves, matching the linter's contract:
   - mutation harness: every seeded corruption (renamed column, dropped
     Sort, wrong index prefix, naive unnest without outerjoin, ...) must
     be caught — no false negatives;
   - false-positive guard: every plan produced by the real System-R,
     Cascades and rewrite pipelines must lint clean. *)

open Relalg
module Q = Rewrite.Qgm
module P = Exec.Plan
module D = Verify.Diag

let ed () =
  Workload.Schemas.emp_dept ~emps:300 ~depts:15 ~empty_dept_frac:0.25 ()

let col r c = Expr.col ~rel:r ~col:c
let eq a b = Expr.Cmp (Expr.Eq, a, b)
let cref r c = { Expr.rel = r; col = c }

let base cat ?alias name : Q.source =
  let alias = Option.value alias ~default:name in
  Q.Base
    { table = name; alias;
      schema =
        Schema.requalify (Storage.Catalog.table cat name).Storage.Table.schema
          ~rel:alias }

let check_has name code diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s flags [%s] (got: %s)" name code
       (Fmt.str "%a" D.pp_list diags))
    true (D.mem ~code diags)

let check_clean name diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s lints clean (got: %s)" name
       (Fmt.str "%a" D.pp_list diags))
    true (diags = [])

(* ------------------------------------------------------------------ *)
(* Logical mutations *)

let spj_tree cat pred =
  Algebra.Project
    ( [ (col "E" "name", "name") ],
      Algebra.Select
        ( pred,
          Algebra.Join
            ( Algebra.Inner,
              eq (col "E" "did") (col "D" "did"),
              Storage.Catalog.scan cat ~alias:"E" "Emp",
              Storage.Catalog.scan cat ~alias:"D" "Dept" ) ) )

let test_logical_clean () =
  let w = ed () in
  let t = spj_tree w.Workload.Schemas.cat
      (Expr.Cmp (Expr.Gt, col "E" "sal", Expr.int 1000)) in
  check_clean "well-formed SPJ tree" (Verify.logical t)

let test_logical_renamed_column () =
  let w = ed () in
  (* mutation: E.sal -> E.salary *)
  let t = spj_tree w.Workload.Schemas.cat
      (Expr.Cmp (Expr.Gt, col "E" "salary", Expr.int 1000)) in
  check_has "renamed column" "unknown-column" (Verify.logical t)

let test_logical_out_of_scope () =
  let w = ed () in
  (* mutation: join predicate references alias X bound nowhere *)
  let t = spj_tree w.Workload.Schemas.cat (eq (col "X" "did") (Expr.int 1)) in
  check_has "out-of-scope alias" "out-of-scope" (Verify.logical t)

let test_logical_non_boolean_predicate () =
  let w = ed () in
  (* mutation: arithmetic expression used as a predicate *)
  let t = spj_tree w.Workload.Schemas.cat
      (Expr.Binop (Expr.Add, col "E" "sal", Expr.int 1)) in
  check_has "arithmetic as predicate" "non-boolean-predicate"
    (Verify.logical t)

let test_logical_type_mismatch () =
  let w = ed () in
  (* mutation: string column compared with an integer *)
  let t = spj_tree w.Workload.Schemas.cat
      (Expr.Cmp (Expr.Gt, col "E" "name", Expr.int 5)) in
  check_has "string > int" "type-mismatch" (Verify.logical t)

let test_logical_ambiguous_column () =
  let w = ed () in
  (* both Emp and Dept carry a column [mgr] *)
  let t = spj_tree w.Workload.Schemas.cat
      (Expr.Cmp (Expr.Gt, col "" "mgr", Expr.int 0)) in
  check_has "unqualified mgr over Emp x Dept" "ambiguous-column"
    (Verify.logical t)

let test_logical_duplicate_projection_alias () =
  let w = ed () in
  let t =
    Algebra.Project
      ( [ (col "E" "name", "x"); (col "E" "sal", "x") ],
        Storage.Catalog.scan w.Workload.Schemas.cat ~alias:"E" "Emp" )
  in
  check_has "two outputs named x" "duplicate-alias" (Verify.logical t)

let test_logical_duplicate_relation_alias () =
  let w = ed () in
  let cat = w.Workload.Schemas.cat in
  let t =
    Algebra.Join
      ( Algebra.Inner, Expr.ftrue,
        Storage.Catalog.scan cat ~alias:"E" "Emp",
        Storage.Catalog.scan cat ~alias:"E" "Dept" )
  in
  check_has "alias E bound twice" "duplicate-relation-alias"
    (Verify.logical t)

let test_logical_bad_agg_arg () =
  let w = ed () in
  let t =
    Algebra.Group_by
      { keys = [ (col "E" "did", "did") ];
        aggs = [ (Expr.Sum (col "E" "wage"), "total") ];
        input = Storage.Catalog.scan w.Workload.Schemas.cat ~alias:"E" "Emp" }
  in
  check_has "SUM over missing column" "unknown-column" (Verify.logical t)

(* ------------------------------------------------------------------ *)
(* Physical mutations *)

let seq table alias = P.Seq_scan { table; alias; filter = None }

let sort1 r c input =
  P.Sort ([ { P.key = Expr.Col (cref r c); descending = false } ], input)

let merge_emp_dept ~left ~right =
  P.Merge_join
    { kind = Algebra.Inner;
      pairs = [ (cref "E" "did", cref "D" "did") ];
      residual = Expr.ftrue; left; right }

let test_physical_clean_merge () =
  let w = ed () in
  let plan =
    merge_emp_dept
      ~left:(sort1 "E" "did" (seq "Emp" "E"))
      ~right:(sort1 "D" "did" (seq "Dept" "D"))
  in
  check_clean "merge join with both Sorts"
    (Verify.physical w.Workload.Schemas.cat plan)

let test_physical_dropped_sort () =
  let w = ed () in
  (* mutation: the left Sort enforcer is dropped *)
  let plan =
    merge_emp_dept ~left:(seq "Emp" "E")
      ~right:(sort1 "D" "did" (seq "Dept" "D"))
  in
  check_has "dropped left Sort" "unsorted-input"
    (Verify.physical w.Workload.Schemas.cat plan)

let test_physical_wrong_sort_column () =
  let w = ed () in
  (* mutation: left sorted, but on the wrong column *)
  let plan =
    merge_emp_dept
      ~left:(sort1 "E" "sal" (seq "Emp" "E"))
      ~right:(sort1 "D" "did" (seq "Dept" "D"))
  in
  check_has "Sort on wrong column" "unsorted-input"
    (Verify.physical w.Workload.Schemas.cat plan)

let test_physical_index_scan_delivers_order () =
  let w = ed () in
  (* Emp has an index on did: an index scan needs no Sort enforcer *)
  let plan =
    merge_emp_dept
      ~left:
        (P.Index_scan
           { table = "Emp"; alias = "E"; column = "did"; lo = P.Unbounded;
             hi = P.Unbounded; filter = None })
      ~right:(sort1 "D" "did" (seq "Dept" "D"))
  in
  check_clean "index scan satisfies merge order"
    (Verify.physical w.Workload.Schemas.cat plan)

let test_physical_stream_agg_unsorted () =
  let w = ed () in
  let agg input =
    P.Stream_agg
      { keys = [ (col "E" "did", "did") ];
        aggs = [ (Expr.Sum (col "E" "sal"), "total") ]; input }
  in
  check_has "Stream_agg without Sort" "unsorted-input"
    (Verify.physical w.Workload.Schemas.cat (agg (seq "Emp" "E")));
  check_clean "Stream_agg with Sort"
    (Verify.physical w.Workload.Schemas.cat
       (agg (sort1 "E" "did" (seq "Emp" "E"))))

let test_physical_unknown_index () =
  let w = ed () in
  (* mutation: index scan on a column with no index *)
  let plan =
    P.Index_scan
      { table = "Emp"; alias = "E"; column = "sal"; lo = P.Unbounded;
        hi = P.Unbounded; filter = None }
  in
  check_has "index scan on unindexed column" "unknown-index"
    (Verify.physical w.Workload.Schemas.cat plan)

let inl ~index ~columns ~outer_keys =
  P.Index_nl
    { kind = Algebra.Inner; outer = seq "Dept" "D"; table = "Emp";
      alias = "E"; index; columns; outer_keys; residual = Expr.ftrue }

let test_physical_index_nl () =
  let w = ed () in
  let cat = w.Workload.Schemas.cat in
  check_clean "valid index nested loop"
    (Verify.physical cat
       (inl ~index:"idx_Emp_did" ~columns:[ "did" ]
          ~outer_keys:[ col "D" "did" ]));
  (* mutation: index name rot *)
  check_has "wrong index name" "unknown-index"
    (Verify.physical cat
       (inl ~index:"idx_Emp_salary" ~columns:[ "did" ]
          ~outer_keys:[ col "D" "did" ]))

let test_physical_index_prefix_mismatch () =
  let w = ed () in
  let cat = w.Workload.Schemas.cat in
  ignore (Storage.Catalog.create_index cat ~table:"Emp"
            ~columns:[ "age"; "sal" ] ());
  (* mutation: probing (sal), which is not a prefix of (age, sal) *)
  check_has "non-prefix probe" "index-prefix-mismatch"
    (Verify.physical cat
       (inl ~index:"idx_Emp_age_sal" ~columns:[ "sal" ]
          ~outer_keys:[ col "D" "num_machines" ]));
  (* mutation: two probe expressions for one probed column *)
  check_has "probe arity" "probe-arity"
    (Verify.physical cat
       (inl ~index:"idx_Emp_age_sal" ~columns:[ "age" ]
          ~outer_keys:[ col "D" "num_machines"; col "D" "budget" ]))

let test_physical_key_type_mismatch () =
  let w = ed () in
  (* mutation: hash join of a string key against an int key *)
  let plan =
    P.Hash_join
      { kind = Algebra.Inner;
        pairs = [ (cref "E" "name", cref "D" "did") ];
        residual = Expr.ftrue; left = seq "Emp" "E"; right = seq "Dept" "D" }
  in
  check_has "string = int hash keys" "key-type-mismatch"
    (Verify.physical w.Workload.Schemas.cat plan)

let test_physical_unknown_table () =
  let w = ed () in
  check_has "scan of missing table" "unknown-table"
    (Verify.physical w.Workload.Schemas.cat (seq "Nonesuch" "N"))

let test_physical_renamed_filter_column () =
  let w = ed () in
  let plan =
    P.Seq_scan
      { table = "Emp"; alias = "E";
        filter = Some (Expr.Cmp (Expr.Gt, col "E" "salary", Expr.int 0)) }
  in
  check_has "filter on renamed column" "unknown-column"
    (Verify.physical w.Workload.Schemas.cat plan)

(* ------------------------------------------------------------------ *)
(* The rewrite oracle: count-bug regression *)

let count_query (w : Workload.Schemas.emp_dept) =
  (* SELECT D.name FROM Dept D WHERE D.num_machines >=
       (SELECT COUNT(..) FROM Emp E WHERE D.name = E.dept_name) *)
  let sub =
    { (Q.simple
         ~select:[ (Expr.col ~rel:"" ~col:"n", "n") ]
         ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp" ]
         ~where:[ eq (col "D" "name") (col "E" "dept_name") ]
         ~aggs:[ (Expr.Count_star, "n") ] ())
      with Q.select = [ (Expr.col ~rel:"" ~col:"n", "n") ] }
  in
  { (Q.simple ~select:[ (col "D" "name", "name") ]
       ~from:[ base w.Workload.Schemas.cat ~alias:"D" "Dept" ] ())
    with Q.where = [ Q.Cmp_sub (Expr.Ge, col "D" "num_machines", sub) ] }

let run_checked classes q =
  let diags = ref [] in
  let check ~rule ~before ~after =
    diags := !diags @ Verify.check_rewrite ~rule ~before ~after
  in
  let b, trace = Rewrite.Rules.run ~check classes q in
  (b, trace, !diags)

let test_count_bug_naive_flagged () =
  let w = ed () in
  let _, trace, diags =
    run_checked [ [ Rewrite.Unnest.naive_cmp_rule ] ] (count_query w)
  in
  Alcotest.(check bool) "naive rule fired" true
    (List.mem_assoc "unnest_scalar_correlated_NAIVE" trace);
  check_has "naive unnest" "count-bug" diags;
  (* the offending rule is named in the diagnostic path *)
  Alcotest.(check bool) "rule named in path" true
    (List.exists
       (fun d -> List.mem "rule unnest_scalar_correlated_NAIVE" d.D.path)
       (D.errors diags))

let test_count_bug_correct_rule_clean () =
  let w = ed () in
  let _, trace, diags =
    run_checked [ Rewrite.Unnest.default_rules ] (count_query w)
  in
  Alcotest.(check bool) "outerjoin rewrite fired" true
    (List.mem_assoc "unnest_scalar_correlated" trace);
  check_clean "count-bug-safe unnesting" diags

let test_default_rules_clean_on_views () =
  let w = ed () in
  let cat = w.Workload.Schemas.cat in
  let view =
    Q.simple
      ~select:[ (col "E" "name", "name"); (col "E" "sal", "sal");
                (col "E" "did", "did") ]
      ~from:[ base cat ~alias:"E" "Emp" ]
      ~where:[ Expr.Cmp (Expr.Lt, col "E" "age", Expr.int 40) ] ()
  in
  let q =
    Q.simple
      ~select:[ (col "V" "name", "name"); (col "V" "sal", "sal") ]
      ~from:[ Q.Derived { block = view; alias = "V" };
              base cat ~alias:"D" "Dept" ]
      ~where:[ eq (col "V" "did") (col "D" "did");
               eq (col "D" "loc") (Expr.str "Denver") ] ()
  in
  let _, trace, diags = run_checked Core.Pipeline.default_rewrites q in
  Alcotest.(check bool) "view_merge fired" true
    (List.mem_assoc "view_merge" trace);
  check_clean "view merge under the oracle" diags

let test_schema_change_detected () =
  let w = ed () in
  (* a deliberately broken rule: drops the second select item *)
  let broken =
    { Rewrite.Rules.name = "drop_column";
      apply =
        (fun b ->
           match b.Q.select with
           | [ _ ] | [] -> None
           | s :: _ -> Some { b with Q.select = [ s ] }) }
  in
  let q =
    Q.simple
      ~select:[ (col "E" "name", "name"); (col "E" "sal", "sal") ]
      ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp" ] ()
  in
  let _, _, diags = run_checked [ [ broken ] ] q in
  check_has "column-dropping rule" "schema-change" diags

(* ------------------------------------------------------------------ *)
(* False-positive guard: every real optimizer output lints clean *)

let spj_of_pieces ?(order_by = []) (p : Workload.Schemas.join_pieces) :
  Systemr.Spj.t =
  Systemr.Spj.make ~order_by
    ~relations:
      (List.map
         (fun (alias, table) ->
            { Systemr.Spj.alias; table;
              schema =
                Schema.requalify
                  (Storage.Catalog.table p.Workload.Schemas.jcat table)
                    .Storage.Table.schema ~rel:alias })
         p.Workload.Schemas.relations)
    ~predicates:p.Workload.Schemas.predicates ()

let systemr_configs =
  [ ("default", Systemr.Join_order.default_config);
    ("bushy", { Systemr.Join_order.default_config with bushy = true });
    ("no interesting orders",
     { Systemr.Join_order.default_config with interesting_orders = false });
    ("1979", Systemr.Join_order.system_r_1979) ]

let test_systemr_plans_clean () =
  List.iter
    (fun (shape_name, shape) ->
       let p = Workload.Schemas.join_shape ~rows:60 ~shape ~n:5 () in
       let order_by = [ (cref "R1" "a", Algebra.Asc) ] in
       let q = spj_of_pieces ~order_by p in
       List.iter
         (fun (cfg_name, config) ->
            let res =
              Systemr.Join_order.optimize ~config p.Workload.Schemas.jcat
                p.Workload.Schemas.jdb q
            in
            check_clean
              (Printf.sprintf "System-R %s/%s plan" shape_name cfg_name)
              (Verify.physical p.Workload.Schemas.jcat
                 res.Systemr.Join_order.best.Systemr.Candidate.plan))
         systemr_configs)
    [ ("chain", Workload.Schemas.Chain_q);
      ("star", Workload.Schemas.Star_q);
      ("clique", Workload.Schemas.Clique_q) ]

let test_systemr_emp_dept_clean () =
  let w = ed () in
  let cat = w.Workload.Schemas.cat in
  let rel alias table =
    { Systemr.Spj.alias; table;
      schema =
        Schema.requalify (Storage.Catalog.table cat table).Storage.Table.schema
          ~rel:alias }
  in
  (* indexed equi-join with an interesting order: exercises Index_scan,
     Index_nl, Merge_join and Sort enforcers *)
  let q =
    Systemr.Spj.make
      ~relations:[ rel "E" "Emp"; rel "D" "Dept" ]
      ~predicates:[ eq (col "E" "did") (col "D" "did");
                    Expr.Cmp (Expr.Gt, col "E" "sal", Expr.int 1000) ]
      ~order_by:[ (cref "E" "did", Algebra.Asc) ] ()
  in
  List.iter
    (fun (cfg_name, config) ->
       let res =
         Systemr.Join_order.optimize ~config cat w.Workload.Schemas.db q
       in
       check_clean ("System-R emp/dept " ^ cfg_name)
         (Verify.physical cat res.Systemr.Join_order.best.Systemr.Candidate.plan))
    systemr_configs

let test_cascades_plans_clean () =
  List.iter
    (fun (shape_name, shape) ->
       let p = Workload.Schemas.join_shape ~rows:60 ~shape ~n:5 () in
       let q = spj_of_pieces p in
       let res =
         Cascades.Search.optimize ~lint:true p.Workload.Schemas.jcat
           p.Workload.Schemas.jdb q
       in
       check_clean
         (Printf.sprintf "Cascades %s plan" shape_name)
         res.Cascades.Search.diags)
    [ ("chain", Workload.Schemas.Chain_q);
      ("star", Workload.Schemas.Star_q);
      ("clique", Workload.Schemas.Clique_q) ]

(* Rewrite + pipeline scenarios from the rewrite test suite, re-run with
   lint on: the oracle checks every rule application and every plan
   (including materialized view sub-plans). *)
let lint_pipeline name ?(config = Core.Pipeline.default_config)
    (w : Workload.Schemas.emp_dept) q =
  let config = { config with Core.Pipeline.lint = true } in
  let _, report =
    Core.Pipeline.run ~config w.Workload.Schemas.cat w.Workload.Schemas.db q
  in
  check_clean name report.Core.Pipeline.diags

let test_pipeline_lint_clean () =
  let w = ed () in
  let cat = w.Workload.Schemas.cat in
  (* correlated IN (unnests to a semijoin) *)
  let in_sub =
    Q.simple
      ~select:[ (col "D" "did", "did") ]
      ~from:[ base cat ~alias:"D" "Dept" ]
      ~where:[ eq (col "D" "loc") (Expr.str "Denver");
               eq (col "E" "eid") (col "D" "mgr") ] ()
  in
  let in_query =
    { (Q.simple ~select:[ (col "E" "name", "name") ]
         ~from:[ base cat ~alias:"E" "Emp" ] ())
      with Q.where = [ Q.In_sub (col "E" "did", in_sub) ] }
  in
  lint_pipeline "correlated IN pipeline" w in_query;
  (* correlated COUNT (the count-bug query, correct rules) *)
  lint_pipeline "correlated COUNT pipeline" w (count_query w);
  (* grouped join with an ORDER BY *)
  let grouped =
    Q.simple
      ~select:[ (Expr.col ~rel:"" ~col:"did", "did");
                (Expr.col ~rel:"" ~col:"total", "total") ]
      ~from:[ base cat ~alias:"E" "Emp"; base cat ~alias:"D" "Dept" ]
      ~where:[ eq (col "E" "did") (col "D" "did") ]
      ~group_by:[ (col "E" "did", "did") ]
      ~aggs:[ (Expr.Sum (col "E" "sal"), "total") ] ()
  in
  lint_pipeline "group-by pipeline" w grouped;
  lint_pipeline "eager group-by pipeline"
    ~config:
      { Core.Pipeline.default_config with
        rewrites = [ [ Rewrite.Groupby.rule ] ] }
    w grouped

let test_pipeline_lint_magic_clean () =
  let w = ed () in
  let cat = w.Workload.Schemas.cat in
  let view =
    Q.simple
      ~select:[ (Expr.col ~rel:"" ~col:"did", "did");
                (Expr.col ~rel:"" ~col:"avgsal", "avgsal") ]
      ~from:[ base cat ~alias:"E2" "Emp" ]
      ~group_by:[ (col "E2" "did", "did") ]
      ~aggs:[ (Expr.Avg (col "E2" "sal"), "avgsal") ] ()
  in
  let q =
    Q.simple
      ~select:[ (col "E" "eid", "eid"); (col "E" "sal", "sal") ]
      ~from:[ base cat ~alias:"E" "Emp"; base cat ~alias:"D" "Dept";
              Q.Derived { block = view; alias = "V" } ]
      ~where:[ eq (col "E" "did") (col "D" "did");
               eq (col "V" "did") (col "E" "did");
               Expr.Cmp (Expr.Lt, col "E" "age", Expr.int 30);
               Expr.Cmp (Expr.Gt, col "D" "budget", Expr.int 100_000);
               Expr.Cmp (Expr.Gt, col "E" "sal", col "V" "avgsal") ] ()
  in
  lint_pipeline "magic decorrelation pipeline"
    ~config:
      { Core.Pipeline.default_config with
        rewrites = [ [ Rewrite.Magic.rule ] ] }
    w q

let test_interpreted_path_lint_clean () =
  let w = ed () in
  (* no rewrites: the correlated query falls back to the interpreter, and
     lint checks the QGM block statically instead of a plan *)
  lint_pipeline "interpreted correlated query"
    ~config:Core.Pipeline.naive_config w (count_query w)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "verify"
    [ ( "logical",
        [ Alcotest.test_case "clean tree" `Quick test_logical_clean;
          Alcotest.test_case "renamed column" `Quick
            test_logical_renamed_column;
          Alcotest.test_case "out of scope" `Quick test_logical_out_of_scope;
          Alcotest.test_case "non-boolean predicate" `Quick
            test_logical_non_boolean_predicate;
          Alcotest.test_case "type mismatch" `Quick
            test_logical_type_mismatch;
          Alcotest.test_case "ambiguous column" `Quick
            test_logical_ambiguous_column;
          Alcotest.test_case "duplicate projection alias" `Quick
            test_logical_duplicate_projection_alias;
          Alcotest.test_case "duplicate relation alias" `Quick
            test_logical_duplicate_relation_alias;
          Alcotest.test_case "bad aggregate argument" `Quick
            test_logical_bad_agg_arg ] );
      ( "physical",
        [ Alcotest.test_case "clean merge join" `Quick
            test_physical_clean_merge;
          Alcotest.test_case "dropped Sort" `Quick test_physical_dropped_sort;
          Alcotest.test_case "wrong Sort column" `Quick
            test_physical_wrong_sort_column;
          Alcotest.test_case "index scan delivers order" `Quick
            test_physical_index_scan_delivers_order;
          Alcotest.test_case "stream agg ordering" `Quick
            test_physical_stream_agg_unsorted;
          Alcotest.test_case "unknown index" `Quick
            test_physical_unknown_index;
          Alcotest.test_case "index nested loop" `Quick
            test_physical_index_nl;
          Alcotest.test_case "index prefix mismatch" `Quick
            test_physical_index_prefix_mismatch;
          Alcotest.test_case "key type mismatch" `Quick
            test_physical_key_type_mismatch;
          Alcotest.test_case "unknown table" `Quick
            test_physical_unknown_table;
          Alcotest.test_case "renamed filter column" `Quick
            test_physical_renamed_filter_column ] );
      ( "rewrite-oracle",
        [ Alcotest.test_case "count bug flagged" `Quick
            test_count_bug_naive_flagged;
          Alcotest.test_case "correct unnest clean" `Quick
            test_count_bug_correct_rule_clean;
          Alcotest.test_case "view merge clean" `Quick
            test_default_rules_clean_on_views;
          Alcotest.test_case "schema change detected" `Quick
            test_schema_change_detected ] );
      ( "no-false-positives",
        [ Alcotest.test_case "System-R shapes" `Quick
            test_systemr_plans_clean;
          Alcotest.test_case "System-R emp/dept" `Quick
            test_systemr_emp_dept_clean;
          Alcotest.test_case "Cascades shapes" `Quick
            test_cascades_plans_clean;
          Alcotest.test_case "pipeline scenarios" `Quick
            test_pipeline_lint_clean;
          Alcotest.test_case "magic decorrelation" `Quick
            test_pipeline_lint_magic_clean;
          Alcotest.test_case "interpreted fallback" `Quick
            test_interpreted_path_lint_clean ] ) ]
