(* Differential tests for the morsel-driven parallel engine: for every
   plan, every dop and every morsel size, [Exec.Morsel.run] must produce
   bit-identical rows in the same order AND drive the Context (buffer
   pool, CPU, spill) identically to [Exec.Batch.run] — the oracle, which
   is itself differentially tied to the interpreter.  Tiny morsel sizes
   force multi-morsel execution on small inputs, so the parallel split /
   exchange / merge machinery is exercised even on 5-row tables.

   On OCaml < 5 the pool degrades to dop 1 and Morsel.run falls back to
   Batch.run; these tests then check the fallback is transparent. *)

open Relalg

let mk_catalog rs ss =
  let cat = Storage.Catalog.create () in
  let r = Storage.Catalog.create_table cat ~name:"R"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ] in
  let s = Storage.Catalog.create_table cat ~name:"S"
      ~columns:[ ("a", Value.Tint); ("c", Value.Tint) ] in
  List.iter (fun (a, b) -> Storage.Table.insert r (Tuple.of_list [ a; b ])) rs;
  List.iter (fun (a, c) -> Storage.Table.insert s (Tuple.of_list [ a; c ])) ss;
  cat

let default_r =
  [ (Value.Int 1, Value.Int 10); (Value.Int 2, Value.Int 20);
    (Value.Int 2, Value.Int 21); (Value.Int 3, Value.Int 30);
    (Value.Null, Value.Int 99) ]

let default_s =
  [ (Value.Int 2, Value.Int 200); (Value.Int 2, Value.Int 201);
    (Value.Int 3, Value.Int 300); (Value.Int 4, Value.Int 400);
    (Value.Null, Value.Int 999) ]

let scan t = Exec.Plan.Seq_scan { table = t; alias = t; filter = None }

let join_pred =
  Expr.Cmp (Expr.Eq, Expr.col ~rel:"R" ~col:"a", Expr.col ~rel:"S" ~col:"a")

let pair = ({ Expr.rel = "R"; col = "a" }, { Expr.rel = "S"; col = "a" })

let sort_on rel col input =
  Exec.Plan.Sort
    ([ { Exec.Plan.key = Expr.col ~rel ~col; descending = false } ], input)

let counters = Exec.Context.snapshot
let pp_counters = Fmt.str "%a" Exec.Context.pp_snapshot

(* The differential harness: Batch (oracle) vs Morsel under
   identically-configured fresh contexts; rows bit-identical and in
   order, counters exactly equal. *)
let differ ?buffer_pages ?work_mem_pages ?(dop = 4) ?(morsel = 2) ?chunk_rows
    name cat plan =
  let ctx_b = Exec.Context.create ?buffer_pages ?work_mem_pages () in
  let oracle = Exec.Batch.run ~ctx:ctx_b ?chunk_rows cat plan in
  let ctx_m = Exec.Context.create ?buffer_pages ?work_mem_pages () in
  let par = Exec.Morsel.run ~ctx:ctx_m ~dop ~morsel ?chunk_rows cat plan in
  Alcotest.(check int)
    (name ^ ": row count")
    (Array.length oracle.Exec.Executor.rows)
    (Array.length par.Exec.Executor.rows);
  Array.iteri
    (fun i t ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: row %d identical" name i)
         true
         (Tuple.equal t par.Exec.Executor.rows.(i)))
    oracle.Exec.Executor.rows;
  Alcotest.(check string)
    (name ^ ": counters")
    (pp_counters (counters ctx_b))
    (pp_counters (counters ctx_m))

let kinds =
  [ ("inner", Algebra.Inner); ("left_outer", Algebra.Left_outer);
    ("semi", Algebra.Semi); ("anti", Algebra.Anti) ]

(* ------------------------------------------------------------------ *)
(* Operator coverage at tiny morsel sizes *)

let test_scans () =
  let cat = mk_catalog default_r default_s in
  ignore (Storage.Catalog.create_index cat ~table:"S" ~column:"a" ());
  differ "seq scan" cat (scan "R");
  differ "seq scan + pushed filter" cat
    (Exec.Plan.Seq_scan
       { table = "R"; alias = "R";
         filter =
           Some (Expr.Cmp (Expr.Ge, Expr.col ~rel:"R" ~col:"a", Expr.int 2)) });
  differ "index scan" cat
    (Exec.Plan.Index_scan
       { table = "S"; alias = "S"; column = "a";
         lo = Exec.Plan.Incl (Value.Int 2); hi = Exec.Plan.Excl (Value.Int 4);
         filter = None });
  differ "index scan + residual" cat
    (Exec.Plan.Index_scan
       { table = "S"; alias = "S"; column = "a"; lo = Exec.Plan.Unbounded;
         hi = Exec.Plan.Unbounded;
         filter =
           Some (Expr.Cmp (Expr.Gt, Expr.col ~rel:"S" ~col:"c", Expr.int 200))
       })

let test_scalar_ops () =
  let cat = mk_catalog default_r default_s in
  differ "filter" cat
    (Exec.Plan.Filter
       (Expr.Cmp (Expr.Ge, Expr.col ~rel:"R" ~col:"a", Expr.int 2), scan "R"));
  differ "filter empty result" cat
    (Exec.Plan.Filter
       (Expr.Cmp (Expr.Gt, Expr.col ~rel:"R" ~col:"a", Expr.int 99), scan "R"));
  differ "project" cat
    (Exec.Plan.Project
       ([ (Expr.Binop (Expr.Add, Expr.col ~rel:"R" ~col:"b", Expr.int 1), "b1");
          (Expr.col ~rel:"R" ~col:"a", "a") ],
        scan "R"));
  differ "sort asc" cat (sort_on "R" "a" (scan "R"));
  differ "sort desc multi-key" cat
    (Exec.Plan.Sort
       ([ { Exec.Plan.key = Expr.col ~rel:"R" ~col:"a"; descending = true };
          { Exec.Plan.key = Expr.col ~rel:"R" ~col:"b"; descending = false } ],
        scan "R"));
  (* computed sort key: forces the decorated path *)
  differ "sort computed key" cat
    (Exec.Plan.Sort
       ([ { Exec.Plan.key =
              Expr.Binop (Expr.Mul, Expr.col ~rel:"R" ~col:"b", Expr.int (-1));
            descending = false } ],
        scan "R"));
  differ "materialize" cat (Exec.Plan.Materialize (scan "R"))

let test_joins () =
  let cat = mk_catalog default_r default_s in
  ignore (Storage.Catalog.create_index cat ~table:"S" ~column:"a" ());
  List.iter
    (fun (kn, kind) ->
       differ ("nested loop " ^ kn) cat
         (Exec.Plan.Nested_loop
            { kind; pred = join_pred; outer = scan "R"; inner = scan "S" });
       differ ("hash join " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue;
              left = scan "R"; right = scan "S" });
       differ ("merge join " ^ kn) cat
         (Exec.Plan.Merge_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue;
              left = sort_on "R" "a" (scan "R");
              right = sort_on "S" "a" (scan "S") });
       (* generic hash path via a two-column key *)
       differ ("hash join generic " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind;
              pairs =
                [ pair;
                  ({ Expr.rel = "R"; col = "b" }, { Expr.rel = "S"; col = "c" })
                ];
              residual = Expr.ftrue; left = scan "R"; right = scan "S" }))
    kinds;
  differ "index nl" cat
    (Exec.Plan.Index_nl
       { kind = Algebra.Inner; outer = scan "R"; table = "S"; alias = "S";
         index = "idx_S_a"; columns = [ "a" ];
         outer_keys = [ Expr.col ~rel:"R" ~col:"a" ]; residual = Expr.ftrue })

let test_empty_inputs () =
  let cat = mk_catalog [] [] in
  differ "empty scan" cat (scan "R");
  List.iter
    (fun (kn, kind) ->
       differ ("empty hash join " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue;
              left = scan "R"; right = scan "S" });
       differ ("empty nested loop " ^ kn) cat
         (Exec.Plan.Nested_loop
            { kind; pred = join_pred; outer = scan "R"; inner = scan "S" }))
    kinds;
  (* scalar aggregate over the empty input: exactly one row *)
  differ "empty scalar agg" cat
    (Exec.Plan.Hash_agg
       { keys = [];
         aggs = [ (Expr.Count_star, "n");
                  (Expr.Sum (Expr.col ~rel:"R" ~col:"b"), "t") ];
         input = scan "R" });
  (* one side empty *)
  let cat2 = mk_catalog default_r [] in
  List.iter
    (fun (kn, kind) ->
       differ ("empty build side " ^ kn) cat2
         (Exec.Plan.Hash_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue;
              left = scan "R"; right = scan "S" }))
    kinds

let test_aggregates () =
  let cat = mk_catalog default_r default_s in
  let agg input =
    { Exec.Plan.keys = [ (Expr.col ~rel:"R" ~col:"a", "a") ];
      aggs =
        [ (Expr.Count_star, "n");
          (Expr.Sum (Expr.col ~rel:"R" ~col:"b"), "t");
          (Expr.Min (Expr.col ~rel:"R" ~col:"b"), "mn");
          (Expr.Max (Expr.col ~rel:"R" ~col:"b"), "mx");
          (Expr.Avg (Expr.col ~rel:"R" ~col:"b"), "av") ];
      input }
  in
  differ "hash agg" cat (Exec.Plan.Hash_agg (agg (scan "R")));
  differ "stream agg" cat
    (Exec.Plan.Stream_agg (agg (sort_on "R" "a" (scan "R"))));
  (* computed group key *)
  differ "hash agg computed key" cat
    (Exec.Plan.Hash_agg
       { keys =
           [ (Expr.Binop (Expr.Div, Expr.col ~rel:"R" ~col:"b", Expr.int 10),
              "g") ];
         aggs = [ (Expr.Count_star, "n") ];
         input = scan "R" });
  (* multi-key group *)
  differ "hash agg multi key" cat
    (Exec.Plan.Hash_agg
       { keys =
           [ (Expr.col ~rel:"R" ~col:"a", "a");
             (Expr.col ~rel:"R" ~col:"b", "b") ];
         aggs = [ (Expr.Count_star, "n") ];
         input = scan "R" });
  differ "distinct" cat
    (Exec.Plan.Hash_distinct
       (Exec.Plan.Project ([ (Expr.col ~rel:"R" ~col:"a", "a") ], scan "R")))

(* Float sums are non-associative: the exchange must fold every group's
   rows in global row order, or sums drift by ulps and this fails. *)
let test_float_sum_exact () =
  let cat = Storage.Catalog.create () in
  let t = Storage.Catalog.create_table cat ~name:"F"
      ~columns:[ ("g", Value.Tint); ("x", Value.Tfloat) ] in
  for i = 0 to 400 do
    Storage.Table.insert t
      (Tuple.of_list
         [ Value.Int (i mod 7); Value.Float (0.1 +. (float_of_int i /. 3.)) ])
  done;
  differ "float sum groups" ~morsel:16 cat
    (Exec.Plan.Hash_agg
       { keys = [ (Expr.col ~rel:"F" ~col:"g", "g") ];
         aggs =
           [ (Expr.Sum (Expr.col ~rel:"F" ~col:"x"), "s");
             (Expr.Avg (Expr.col ~rel:"F" ~col:"x"), "a") ];
         input = scan "F" });
  (* scalar float sum: single partition, still global order *)
  differ "float sum scalar" ~morsel:16 cat
    (Exec.Plan.Hash_agg
       { keys = [];
         aggs = [ (Expr.Sum (Expr.col ~rel:"F" ~col:"x"), "s") ];
         input = scan "F" });
  (* float join keys force the generic hash path; Int 2 = Float 2.0
     must still match across partitions *)
  let m = Storage.Catalog.create_table cat ~name:"M"
      ~columns:[ ("k", Value.Tfloat) ] in
  List.iter
    (fun v -> Storage.Table.insert m (Tuple.of_list [ v ]))
    [ Value.Float 2.0; Value.Int 2; Value.Float 2.5; Value.Null ];
  let n = Storage.Catalog.create_table cat ~name:"N"
      ~columns:[ ("k", Value.Tfloat) ] in
  List.iter
    (fun v -> Storage.Table.insert n (Tuple.of_list [ v ]))
    [ Value.Int 2; Value.Float 2.5; Value.Null; Value.Float 3.0 ];
  List.iter
    (fun (kn, kind) ->
       differ ("mixed int/float keys " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind;
              pairs = [ ({ Expr.rel = "M"; col = "k" },
                         { Expr.rel = "N"; col = "k" }) ];
              residual = Expr.ftrue; left = scan "M"; right = scan "N" }))
    kinds

let composed_plan () =
  Exec.Plan.Project
    ( [ (Expr.col ~rel:"R" ~col:"a", "a");
        (Expr.col ~rel:"S" ~col:"c", "c") ],
      Exec.Plan.Sort
        ( [ { Exec.Plan.key = Expr.col ~rel:"S" ~col:"c"; descending = true } ],
          Exec.Plan.Filter
            ( Expr.Cmp (Expr.Ge, Expr.col ~rel:"S" ~col:"c", Expr.int 200),
              Exec.Plan.Hash_join
                { kind = Algebra.Inner; pairs = [ pair ];
                  residual = Expr.ftrue; left = scan "R"; right = scan "S" } )
        ) )

let test_dop_grid () =
  let cat = mk_catalog default_r default_s in
  let plan = composed_plan () in
  List.iter
    (fun (dop, morsel) ->
       differ (Printf.sprintf "composed dop=%d morsel=%d" dop morsel)
         ~dop ~morsel cat plan)
    [ (1, 1); (2, 1); (2, 3); (4, 2); (8, 2); (16, 7) ]

(* Columnar layout edges under parallel execution: chunk granularity
   below the morsel size, all-NULL key columns, empty selection vectors,
   and string keys on the boxed column fallback — all must stay
   bit-identical to the batch oracle at every dop. *)
let test_columnar_edges () =
  let cat = mk_catalog default_r default_s in
  (* chunks smaller than one morsel: granulation must be invisible *)
  List.iter
    (fun chunk_rows ->
       differ
         (Printf.sprintf "chunk_rows=%d < morsel composed" chunk_rows)
         ~dop:4 ~morsel:8 ~chunk_rows cat (composed_plan ()))
    [ 1; 2; 3 ];
  (* all-NULL join/group keys *)
  let ncat =
    mk_catalog (List.init 9 (fun i -> (Value.Null, Value.Int i))) default_s
  in
  List.iter
    (fun (kn, kind) ->
       differ ("all-NULL keys hash " ^ kn) ncat
         (Exec.Plan.Hash_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue;
              left = scan "R"; right = scan "S" }))
    kinds;
  differ "all-NULL group keys" ncat
    (Exec.Plan.Hash_agg
       { keys = [ (Expr.col ~rel:"R" ~col:"a", "a") ];
         aggs = [ (Expr.Count_star, "n");
                  (Expr.Sum (Expr.col ~rel:"R" ~col:"a"), "t") ];
         input = scan "R" });
  (* an empty selection vector flowing into joins and aggregates *)
  let none =
    Exec.Plan.Filter
      (Expr.Cmp (Expr.Gt, Expr.col ~rel:"R" ~col:"a", Expr.int 99), scan "R")
  in
  List.iter
    (fun (kn, kind) ->
       differ ("empty sel into hash join " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue; left = none;
              right = scan "S" }))
    kinds;
  differ "empty sel into agg" cat
    (Exec.Plan.Hash_agg
       { keys = [ (Expr.col ~rel:"R" ~col:"a", "a") ];
         aggs = [ (Expr.Count_star, "n") ]; input = none });
  (* string keys force the boxed fallback; the filter underneath makes
     the boxed column read through a selection vector *)
  let scat = Storage.Catalog.create () in
  let rt = Storage.Catalog.create_table scat ~name:"R"
      ~columns:[ ("k", Value.Tstring); ("v", Value.Tint) ] in
  let st = Storage.Catalog.create_table scat ~name:"S"
      ~columns:[ ("k", Value.Tstring); ("w", Value.Tint) ] in
  List.iteri
    (fun i k -> Storage.Table.insert rt (Tuple.of_list [ k; Value.Int i ]))
    [ Value.Str "ann"; Value.Str "bob"; Value.Str "bob"; Value.Null;
      Value.Str "cat"; Value.Str "dee" ];
  List.iteri
    (fun i k ->
       Storage.Table.insert st (Tuple.of_list [ k; Value.Int (10 * i) ]))
    [ Value.Str "bob"; Value.Str "cat"; Value.Null; Value.Str "eve" ];
  let spair = ({ Expr.rel = "R"; col = "k" }, { Expr.rel = "S"; col = "k" }) in
  let filtered_r =
    Exec.Plan.Filter
      (Expr.Cmp (Expr.Ge, Expr.col ~rel:"R" ~col:"v", Expr.int 1), scan "R")
  in
  List.iter
    (fun (kn, kind) ->
       differ ("string keys under selection hash " ^ kn) scat
         (Exec.Plan.Hash_join
            { kind; pairs = [ spair ]; residual = Expr.ftrue;
              left = filtered_r; right = scan "S" }))
    kinds;
  differ "string group keys under selection" scat
    (Exec.Plan.Hash_agg
       { keys = [ (Expr.col ~rel:"R" ~col:"k", "k") ];
         aggs = [ (Expr.Count_star, "n");
                  (Expr.Max (Expr.col ~rel:"R" ~col:"v"), "m") ];
         input = filtered_r })

(* Spills and a tiny buffer pool: charge ordering against the stateful
   LRU must survive parallel execution. *)
let test_spill_and_pool () =
  let rs =
    List.init 300 (fun i -> (Value.Int (i mod 17), Value.Int i))
  in
  let ss =
    List.init 200 (fun i -> (Value.Int (i mod 13), Value.Int (1000 + i)))
  in
  let cat = mk_catalog rs ss in
  differ "spilling hash join" ~buffer_pages:4 ~work_mem_pages:2 ~morsel:16
    cat
    (Exec.Plan.Hash_join
       { kind = Algebra.Inner; pairs = [ pair ]; residual = Expr.ftrue;
         left = scan "R"; right = scan "S" });
  differ "spilling sort" ~buffer_pages:4 ~work_mem_pages:2 ~morsel:16 cat
    (sort_on "R" "b" (scan "R"));
  differ "nested loop rescan charging" ~buffer_pages:4 ~work_mem_pages:2
    ~morsel:16 cat
    (Exec.Plan.Nested_loop
       { kind = Algebra.Semi; pred = join_pred;
         outer = scan "R"; inner = Exec.Plan.Materialize (scan "S") })

(* A larger input: many morsels per operator, real domain fan-out. *)
let test_larger_input () =
  let rs = List.init 5000 (fun i -> (Value.Int (i mod 97), Value.Int i)) in
  let ss =
    List.init 3000 (fun i -> (Value.Int (i mod 89), Value.Int (i * 3)))
  in
  let cat = mk_catalog rs ss in
  let plans =
    [ ("scan+filter",
       Exec.Plan.Seq_scan
         { table = "R"; alias = "R";
           filter =
             Some
               (Expr.Cmp (Expr.Lt, Expr.col ~rel:"R" ~col:"a", Expr.int 40))
         });
      ("hash join",
       Exec.Plan.Hash_join
         { kind = Algebra.Inner; pairs = [ pair ]; residual = Expr.ftrue;
           left = scan "R"; right = scan "S" });
      ("hash agg",
       Exec.Plan.Hash_agg
         { keys = [ (Expr.col ~rel:"R" ~col:"a", "a") ];
           aggs =
             [ (Expr.Count_star, "n");
               (Expr.Sum (Expr.col ~rel:"R" ~col:"b"), "t") ];
           input = scan "R" });
      ("sort", sort_on "R" "b" (scan "R"));
      ("distinct",
       Exec.Plan.Hash_distinct
         (Exec.Plan.Project ([ (Expr.col ~rel:"R" ~col:"a", "a") ], scan "R")))
    ]
  in
  List.iter
    (fun (name, plan) -> differ name ~dop:4 ~morsel:256 cat plan)
    plans

(* ------------------------------------------------------------------ *)
(* Domain_pool unit tests *)

let test_pool_basic () =
  Domain_pool.with_pool 4 (fun pool ->
      let n = 1000 in
      let out = Array.make n 0 in
      Domain_pool.run pool ~tasks:n (fun ~worker:_ i -> out.(i) <- i * i);
      Alcotest.(check bool) "all tasks ran" true
        (Array.for_all (fun x -> x >= 0) out);
      let ok = ref true in
      Array.iteri (fun i x -> if x <> i * i then ok := false) out;
      Alcotest.(check bool) "task results correct" true !ok;
      (* capped workers still complete every task *)
      let out2 = Array.make n 0 in
      Domain_pool.run pool ~workers:1 ~tasks:n (fun ~worker i ->
          Alcotest.(check int) "workers:1 runs inline" 0 worker;
          out2.(i) <- i + 1);
      Alcotest.(check int) "capped run complete" ((n * (n + 1)) / 2)
        (Array.fold_left ( + ) 0 out2);
      (* zero tasks is a no-op *)
      Domain_pool.run pool ~tasks:0 (fun ~worker:_ _ -> assert false));
  (* dop accounting *)
  Domain_pool.with_pool 1 (fun p ->
      Alcotest.(check int) "dop 1 pool" 1 (Domain_pool.dop p));
  if Domain_pool.available then
    Domain_pool.with_pool 3 (fun p ->
        Alcotest.(check int) "dop 3 pool" 3 (Domain_pool.dop p))

exception Boom

let test_pool_exception () =
  Domain_pool.with_pool 4 (fun pool ->
      let raised =
        try
          Domain_pool.run pool ~tasks:100 (fun ~worker:_ i ->
              if i = 57 then raise Boom);
          false
        with Boom -> true
      in
      Alcotest.(check bool) "task exception propagates" true raised;
      (* the pool survives a failed job *)
      let sum = ref 0 in
      let m = Mutex.create () in
      Domain_pool.run pool ~tasks:100 (fun ~worker:_ i ->
          Mutex.lock m;
          sum := !sum + i;
          Mutex.unlock m);
      Alcotest.(check int) "pool usable after failure" 4950 !sum)

let test_pool_reuse () =
  (* many sequential jobs against one pool: the wake/quiesce protocol
     must not lose tasks or deadlock *)
  Domain_pool.with_pool 4 (fun pool ->
      for round = 1 to 50 do
        let n = 17 * round mod 97 in
        let hits = Array.make (max 1 n) 0 in
        Domain_pool.run pool ~tasks:n (fun ~worker:_ i ->
            hits.(i) <- hits.(i) + 1);
        for i = 0 to n - 1 do
          if hits.(i) <> 1 then
            Alcotest.failf "round %d: task %d ran %d times" round i hits.(i)
        done
      done)

(* ------------------------------------------------------------------ *)
(* Instrumentation: per-worker stats *)

let test_par_stats () =
  let rs = List.init 500 (fun i -> (Value.Int (i mod 7), Value.Int i)) in
  let cat = mk_catalog rs [] in
  (* a bare scan shares the table's array view without parallel work, so
     push a keep-everything filter: its selection runs on the workers *)
  let plan =
    Exec.Plan.Seq_scan
      { table = "R"; alias = "R";
        filter = Some (Expr.Cmp (Expr.Ge, Expr.col ~rel:"R" ~col:"b",
                                 Expr.int 0)) }
  in
  let obs = Exec.Instrument.create plan in
  let ctx = Exec.Context.create () in
  ignore (Exec.Morsel.run ~ctx ~obs ~dop:4 ~morsel:16 cat plan);
  match Exec.Instrument.lookup obs plan with
  | None -> Alcotest.fail "scan op not found"
  | Some o ->
    Alcotest.(check int) "act_rows" 500 o.Exec.Instrument.act_rows;
    if Domain_pool.available then begin
      match o.Exec.Instrument.par with
      | None -> Alcotest.fail "expected par stats at dop 4"
      | Some p ->
        Alcotest.(check int) "par dop" 4 p.Exec.Instrument.par_dop;
        Alcotest.(check int) "worker rows sum to scanned rows" 500
          (Array.fold_left ( + ) 0 p.Exec.Instrument.worker_rows);
        Alcotest.(check bool) "some worker busy time recorded" true
          (Array.exists (fun w -> w >= 0.) p.Exec.Instrument.worker_wall)
    end

(* A schedule pinning every node to dop 1 must run inline (no par
   stats) and still be exact. *)
let test_schedule_sequential () =
  let rs = List.init 200 (fun i -> (Value.Int (i mod 7), Value.Int i)) in
  let cat = mk_catalog rs [] in
  let plan = scan "R" in
  let obs = Exec.Instrument.create plan in
  let ctx = Exec.Context.create () in
  let r =
    Exec.Morsel.run ~ctx ~obs ~dop:4 ~morsel:16 ~schedule:(fun _ -> 1) cat
      plan
  in
  Alcotest.(check int) "rows" 200 (Array.length r.Exec.Executor.rows);
  (match Exec.Instrument.lookup obs plan with
   | Some o ->
     Alcotest.(check bool) "no par stats when scheduled at 1" true
       (o.Exec.Instrument.par = None)
   | None -> Alcotest.fail "op missing");
  let ctx_b = Exec.Context.create () in
  ignore (Exec.Batch.run ~ctx:ctx_b cat plan);
  Alcotest.(check string) "counters still exact"
    (pp_counters (counters ctx_b))
    (pp_counters (counters ctx))

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_rows =
  QCheck.(list_of_size Gen.(int_range 0 30)
            (pair (int_range 0 6) (int_range 0 60)))

let prop_morsel_differential =
  QCheck.Test.make ~name:"morsel engine matches batch on random inputs"
    ~count:40
    (QCheck.pair arb_rows arb_rows)
    (fun (rs, ss) ->
       let mk (a, b) = (Value.Int a, Value.Int b) in
       let cat = mk_catalog (List.map mk rs) (List.map mk ss) in
       let plans =
         List.map
           (fun (_, kind) ->
              Exec.Plan.Nested_loop
                { kind; pred = join_pred; outer = scan "R"; inner = scan "S" })
           kinds
         @ List.map
             (fun (_, kind) ->
                Exec.Plan.Hash_join
                  { kind; pairs = [ pair ]; residual = Expr.ftrue;
                    left = scan "R"; right = scan "S" })
             kinds
         @ List.map
             (fun (_, kind) ->
                Exec.Plan.Merge_join
                  { kind; pairs = [ pair ]; residual = Expr.ftrue;
                    left = sort_on "R" "a" (scan "R");
                    right = sort_on "S" "a" (scan "S") })
             kinds
         @ [ Exec.Plan.Hash_agg
               { keys = [ (Expr.col ~rel:"R" ~col:"a", "a") ];
                 aggs = [ (Expr.Count_star, "n");
                          (Expr.Sum (Expr.col ~rel:"R" ~col:"b"), "t") ];
                 input = scan "R" };
             Exec.Plan.Hash_distinct
               (Exec.Plan.Project
                  ([ (Expr.col ~rel:"R" ~col:"a", "a") ], scan "R"));
             composed_plan () ]
       in
       List.for_all
         (fun plan ->
            let ctx_b =
              Exec.Context.create ~buffer_pages:4 ~work_mem_pages:2 ()
            in
            let oracle = Exec.Batch.run ~ctx:ctx_b cat plan in
            let ctx_m =
              Exec.Context.create ~buffer_pages:4 ~work_mem_pages:2 ()
            in
            let par = Exec.Morsel.run ~ctx:ctx_m ~dop:4 ~morsel:3 cat plan in
            Array.length oracle.Exec.Executor.rows
            = Array.length par.Exec.Executor.rows
            && Array.for_all2 Tuple.equal oracle.Exec.Executor.rows
                 par.Exec.Executor.rows
            && counters ctx_b = counters ctx_m)
         plans)

(* End-to-end: full pipeline at config.dop 4 (two-phase schedule, morsel
   executor) vs dop 1 (batch) over fuzz-generated databases and queries —
   Zipfian keys, NULL fractions, empty tables, ORDER BY, subqueries.
   Full equality (rows in order + counters) subsumes the multiset and
   sortedness requirements. *)
let prop_pipeline_dop =
  QCheck.Test.make ~name:"pipeline dop=4 matches dop=1 exactly" ~count:60
    QCheck.(int_range 0 100000)
    (fun seed ->
       let spec, ast = Fuzz.Gen.case ~seed in
       let run dop =
         (* fresh catalog per run: planning materializes view temps *)
         let cat, db = Fuzz.Dbspec.build spec in
         let q = Sql.Binder.bind_query cat ast in
         let ctx = Exec.Context.create () in
         let config =
           { Core.Pipeline.default_config with dop; morsel_rows = 16 }
         in
         let result, _ = Core.Pipeline.run_query ~ctx ~config cat db q in
         (result, counters ctx)
       in
       match run 1 with
       | exception _ -> QCheck.assume_fail ()
       | r1, c1 ->
         let r4, c4 = run 4 in
         Array.length r1.Exec.Executor.rows
         = Array.length r4.Exec.Executor.rows
         && Array.for_all2 Tuple.equal r1.Exec.Executor.rows
              r4.Exec.Executor.rows
         && c1 = c4)

let () =
  Alcotest.run "morsel"
    [ ("operators",
       [ Alcotest.test_case "scans" `Quick test_scans;
         Alcotest.test_case "filter/project/sort/materialize" `Quick
           test_scalar_ops;
         Alcotest.test_case "joins, all algorithms and kinds" `Quick
           test_joins;
         Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
         Alcotest.test_case "aggregates + distinct" `Quick test_aggregates;
         Alcotest.test_case "float exactness + mixed keys" `Quick
           test_float_sum_exact ]);
      ("parallel machinery",
       [ Alcotest.test_case "dop/morsel grid" `Quick test_dop_grid;
         Alcotest.test_case "columnar layout edges" `Quick
           test_columnar_edges;
         Alcotest.test_case "spill + buffer pool" `Quick test_spill_and_pool;
         Alcotest.test_case "larger input" `Quick test_larger_input;
         Alcotest.test_case "per-worker stats" `Quick test_par_stats;
         Alcotest.test_case "sequential schedule" `Quick
           test_schedule_sequential ]);
      ("domain pool",
       [ Alcotest.test_case "basic" `Quick test_pool_basic;
         Alcotest.test_case "exceptions" `Quick test_pool_exception;
         Alcotest.test_case "reuse" `Quick test_pool_reuse ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_morsel_differential;
         QCheck_alcotest.to_alcotest prop_pipeline_dop ]) ]
