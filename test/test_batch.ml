(* Differential tests for the batch execution engine: for every plan the
   batch engine must produce bit-identical rows, in the same order, AND
   drive the Context — buffer pool page faults, CPU, spill — identically
   to the tuple-at-a-time interpreter, which remains the oracle. *)

open Relalg

let mk_catalog rs ss =
  let cat = Storage.Catalog.create () in
  let r = Storage.Catalog.create_table cat ~name:"R"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ] in
  let s = Storage.Catalog.create_table cat ~name:"S"
      ~columns:[ ("a", Value.Tint); ("c", Value.Tint) ] in
  List.iter (fun (a, b) -> Storage.Table.insert r (Tuple.of_list [ a; b ])) rs;
  List.iter (fun (a, c) -> Storage.Table.insert s (Tuple.of_list [ a; c ])) ss;
  cat

let default_r =
  [ (Value.Int 1, Value.Int 10); (Value.Int 2, Value.Int 20);
    (Value.Int 2, Value.Int 21); (Value.Int 3, Value.Int 30);
    (Value.Null, Value.Int 99) ]

let default_s =
  [ (Value.Int 2, Value.Int 200); (Value.Int 2, Value.Int 201);
    (Value.Int 3, Value.Int 300); (Value.Int 4, Value.Int 400);
    (Value.Null, Value.Int 999) ]

let scan t = Exec.Plan.Seq_scan { table = t; alias = t; filter = None }

let join_pred =
  Expr.Cmp (Expr.Eq, Expr.col ~rel:"R" ~col:"a", Expr.col ~rel:"S" ~col:"a")

let pair = ({ Expr.rel = "R"; col = "a" }, { Expr.rel = "S"; col = "a" })

let sort_on rel col input =
  Exec.Plan.Sort
    ([ { Exec.Plan.key = Expr.col ~rel ~col; descending = false } ], input)

let counters = Exec.Context.snapshot
let pp_counters = Fmt.str "%a" Exec.Context.pp_snapshot

(* The differential harness: run [plan] under both engines with
   identically-configured fresh contexts; rows must match bit-for-bit and
   in order, counters must match exactly.  [chunk_rows] shrinks the
   columnar engine's block granularity, which must be invisible. *)
let differ ?buffer_pages ?work_mem_pages ?chunk_rows name cat plan =
  let ctx_i = Exec.Context.create ?buffer_pages ?work_mem_pages () in
  let oracle = Exec.Executor.run ~ctx:ctx_i cat plan in
  let ctx_b = Exec.Context.create ?buffer_pages ?work_mem_pages () in
  let batch = Exec.Batch.run ~ctx:ctx_b ?chunk_rows cat plan in
  Alcotest.(check int)
    (name ^ ": row count")
    (Array.length oracle.Exec.Executor.rows)
    (Array.length batch.Exec.Executor.rows);
  Array.iteri
    (fun i t ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: row %d identical" name i)
         true
         (Tuple.equal t batch.Exec.Executor.rows.(i)))
    oracle.Exec.Executor.rows;
  Alcotest.(check string)
    (name ^ ": counters")
    (pp_counters (counters ctx_i))
    (pp_counters (counters ctx_b))

(* ------------------------------------------------------------------ *)
(* Operator coverage *)

let kinds =
  [ ("inner", Algebra.Inner); ("left_outer", Algebra.Left_outer);
    ("semi", Algebra.Semi); ("anti", Algebra.Anti) ]

let test_scans () =
  let cat = mk_catalog default_r default_s in
  ignore (Storage.Catalog.create_index cat ~table:"S" ~column:"a" ());
  differ "seq scan" cat (scan "R");
  differ "seq scan + pushed filter" cat
    (Exec.Plan.Seq_scan
       { table = "R"; alias = "R";
         filter =
           Some (Expr.Cmp (Expr.Ge, Expr.col ~rel:"R" ~col:"a", Expr.int 2)) });
  differ "index scan" cat
    (Exec.Plan.Index_scan
       { table = "S"; alias = "S"; column = "a";
         lo = Exec.Plan.Incl (Value.Int 2); hi = Exec.Plan.Excl (Value.Int 4);
         filter = None });
  differ "index scan + residual" cat
    (Exec.Plan.Index_scan
       { table = "S"; alias = "S"; column = "a"; lo = Exec.Plan.Unbounded;
         hi = Exec.Plan.Unbounded;
         filter =
           Some (Expr.Cmp (Expr.Gt, Expr.col ~rel:"S" ~col:"c", Expr.int 200))
       })

let test_scalar_ops () =
  let cat = mk_catalog default_r default_s in
  differ "filter" cat
    (Exec.Plan.Filter
       (Expr.Cmp (Expr.Ge, Expr.col ~rel:"R" ~col:"a", Expr.int 2), scan "R"));
  differ "filter empty result" cat
    (Exec.Plan.Filter
       (Expr.Cmp (Expr.Gt, Expr.col ~rel:"R" ~col:"a", Expr.int 99), scan "R"));
  differ "project" cat
    (Exec.Plan.Project
       ([ (Expr.Binop (Expr.Add, Expr.col ~rel:"R" ~col:"b", Expr.int 1), "b1");
          (Expr.col ~rel:"R" ~col:"a", "a") ],
        scan "R"));
  differ "sort asc" cat (sort_on "R" "a" (scan "R"));
  differ "sort desc multi-key" cat
    (Exec.Plan.Sort
       ([ { Exec.Plan.key = Expr.col ~rel:"R" ~col:"a"; descending = true };
          { Exec.Plan.key = Expr.col ~rel:"R" ~col:"b"; descending = false } ],
        scan "R"))

let test_joins () =
  let cat = mk_catalog default_r default_s in
  ignore (Storage.Catalog.create_index cat ~table:"S" ~column:"a" ());
  List.iter
    (fun (kn, kind) ->
       differ ("nested loop " ^ kn) cat
         (Exec.Plan.Nested_loop
            { kind; pred = join_pred; outer = scan "R"; inner = scan "S" });
       differ ("hash join " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue; left = scan "R";
              right = scan "S" });
       differ ("merge join " ^ kn) cat
         (Exec.Plan.Merge_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue;
              left = sort_on "R" "a" (scan "R");
              right = sort_on "S" "a" (scan "S") });
       differ ("index-nl " ^ kn) cat
         (Exec.Plan.Index_nl
            { kind; outer = scan "R"; table = "S"; alias = "S";
              index = "idx_S_a"; columns = [ "a" ];
              outer_keys = [ Expr.col ~rel:"R" ~col:"a" ];
              residual = Expr.ftrue }))
    kinds

let test_join_residual () =
  let cat = mk_catalog default_r default_s in
  let residual =
    Expr.Cmp (Expr.Lt, Expr.col ~rel:"R" ~col:"b", Expr.col ~rel:"S" ~col:"c")
  in
  differ "hash join with residual" cat
    (Exec.Plan.Hash_join
       { kind = Algebra.Inner; pairs = [ pair ]; residual; left = scan "R";
         right = scan "S" });
  differ "merge join with residual" cat
    (Exec.Plan.Merge_join
       { kind = Algebra.Left_outer; pairs = [ pair ]; residual;
         left = sort_on "R" "a" (scan "R"); right = sort_on "S" "a" (scan "S") })

(* Non-integer keys force the generic (Value array) hash path. *)
let test_hash_join_generic_keys () =
  let cat = Storage.Catalog.create () in
  let r = Storage.Catalog.create_table cat ~name:"R"
      ~columns:[ ("a", Value.Tstring); ("b", Value.Tint) ] in
  let s = Storage.Catalog.create_table cat ~name:"S"
      ~columns:[ ("a", Value.Tstring); ("c", Value.Tint) ] in
  List.iter (fun t -> Storage.Table.insert r (Tuple.of_list t))
    [ [ Value.Str "x"; Value.Int 1 ]; [ Value.Str "y"; Value.Int 2 ];
      [ Value.Null; Value.Int 3 ]; [ Value.Str "x"; Value.Int 4 ] ];
  List.iter (fun t -> Storage.Table.insert s (Tuple.of_list t))
    [ [ Value.Str "x"; Value.Int 10 ]; [ Value.Str "z"; Value.Int 20 ];
      [ Value.Null; Value.Int 30 ] ];
  List.iter
    (fun (kn, kind) ->
       differ ("hash join string keys " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue; left = scan "R";
              right = scan "S" }))
    kinds

let test_empty_inputs () =
  List.iter
    (fun (nm, rs, ss) ->
       let cat = mk_catalog rs ss in
       List.iter
         (fun (kn, kind) ->
            differ (nm ^ " NL " ^ kn) cat
              (Exec.Plan.Nested_loop
                 { kind; pred = join_pred; outer = scan "R"; inner = scan "S" });
            differ (nm ^ " HJ " ^ kn) cat
              (Exec.Plan.Hash_join
                 { kind; pairs = [ pair ]; residual = Expr.ftrue;
                   left = scan "R"; right = scan "S" });
            differ (nm ^ " MJ " ^ kn) cat
              (Exec.Plan.Merge_join
                 { kind; pairs = [ pair ]; residual = Expr.ftrue;
                   left = sort_on "R" "a" (scan "R");
                   right = sort_on "S" "a" (scan "S") }))
         kinds)
    [ ("empty outer", [], default_s); ("empty inner", default_r, []);
      ("both empty", [], []) ]

let test_aggregates () =
  let cat = mk_catalog default_r default_s in
  let aggs =
    [ (Expr.Count_star, "n"); (Expr.Sum (Expr.col ~rel:"S" ~col:"c"), "total");
      (Expr.Min (Expr.col ~rel:"S" ~col:"c"), "lo");
      (Expr.Avg (Expr.col ~rel:"S" ~col:"c"), "avg") ]
  in
  differ "hash agg single int key" cat
    (Exec.Plan.Hash_agg
       { keys = [ (Expr.col ~rel:"S" ~col:"a", "a") ]; aggs; input = scan "S" });
  differ "stream agg" cat
    (Exec.Plan.Stream_agg
       { keys = [ (Expr.col ~rel:"S" ~col:"a", "a") ]; aggs;
         input = sort_on "S" "a" (scan "S") });
  differ "hash agg multi key" cat
    (Exec.Plan.Hash_agg
       { keys =
           [ (Expr.col ~rel:"S" ~col:"a", "a");
             (Expr.col ~rel:"S" ~col:"c", "c") ];
         aggs = [ (Expr.Count_star, "n") ]; input = scan "S" });
  differ "scalar agg" cat
    (Exec.Plan.Hash_agg { keys = []; aggs; input = scan "S" });
  let empty = mk_catalog [] [] in
  differ "scalar agg on empty" empty
    (Exec.Plan.Hash_agg { keys = []; aggs; input = scan "S" });
  differ "grouped agg on empty" empty
    (Exec.Plan.Hash_agg
       { keys = [ (Expr.col ~rel:"S" ~col:"a", "a") ];
         aggs = [ (Expr.Count_star, "n") ]; input = scan "S" });
  differ "distinct" cat
    (Exec.Plan.Hash_distinct
       (Exec.Plan.Project ([ (Expr.col ~rel:"S" ~col:"a", "a") ], scan "S")))

(* ------------------------------------------------------------------ *)
(* Cost-accounting-specific scenarios *)

(* The batch engine computes a nested loop's inner ONCE and replays its
   page-access pattern for the remaining outer tuples.  With a buffer pool
   smaller than the inner table, every rescan must fault identically to
   the interpreter's genuine re-execution — even without Materialize. *)
let test_rescan_faults_identically () =
  let rs = List.init 40 (fun i -> (Value.Int (i mod 5), Value.Int i)) in
  let ss = List.init 200 (fun i -> (Value.Int (i mod 5), Value.Int i)) in
  let cat = mk_catalog rs ss in
  differ ~buffer_pages:2 "NL rescan, tiny buffer" cat
    (Exec.Plan.Nested_loop
       { kind = Algebra.Inner; pred = join_pred; outer = scan "R";
         inner = scan "S" });
  (* inner with work above the scan: filter cpu + sort spill recharge too *)
  differ ~buffer_pages:2 ~work_mem_pages:1 "NL rescan over sort+filter" cat
    (Exec.Plan.Nested_loop
       { kind = Algebra.Inner; pred = join_pred; outer = scan "R";
         inner =
           Exec.Plan.Sort
             ([ { Exec.Plan.key = Expr.col ~rel:"S" ~col:"c";
                  descending = false } ],
              Exec.Plan.Filter
                (Expr.Cmp (Expr.Ge, Expr.col ~rel:"S" ~col:"c", Expr.int 3),
                 scan "S")) })

let test_materialize_counters () =
  let cat = mk_catalog default_r default_s in
  differ ~buffer_pages:2 "materialized NL inner" cat
    (Exec.Plan.Nested_loop
       { kind = Algebra.Inner; pred = join_pred; outer = scan "R";
         inner = Exec.Plan.Materialize (scan "S") });
  (* the batch engine must still scan S exactly once *)
  let ctx = Exec.Context.create ~buffer_pages:2 () in
  ignore
    (Exec.Batch.run ~ctx cat
       (Exec.Plan.Nested_loop
          { kind = Algebra.Inner; pred = join_pred; outer = scan "R";
            inner = Exec.Plan.Materialize (scan "S") }));
  Alcotest.(check int) "materialized inner scanned once" 2
    ctx.Exec.Context.seq_io

let test_sort_spill_accounting () =
  let rs = List.init 2000 (fun i -> (Value.Int (i * 7 mod 1000), Value.Int i)) in
  let cat = mk_catalog rs [] in
  differ ~work_mem_pages:2 "external sort spills identically" cat
    (sort_on "R" "a" (scan "R"));
  (* hash build side over work_mem: Grace partitioning spill *)
  let ss = List.init 1500 (fun i -> (Value.Int (i mod 50), Value.Int i)) in
  let cat2 = mk_catalog (List.init 100 (fun i -> (Value.Int (i mod 50), Value.Int i))) ss in
  differ ~work_mem_pages:2 "hash join spills identically" cat2
    (Exec.Plan.Hash_join
       { kind = Algebra.Inner; pairs = [ pair ]; residual = Expr.ftrue;
         left = scan "R"; right = scan "S" })

(* ------------------------------------------------------------------ *)
(* Composed plans: lint-clean under the static verifier, and still
   differentially identical. *)

let composed_plan () =
  Exec.Plan.Project
    ( [ (Expr.col ~rel:"R" ~col:"a", "a");
        (Expr.col ~rel:"S" ~col:"c", "c") ],
      Exec.Plan.Sort
        ( [ { Exec.Plan.key = Expr.col ~rel:"S" ~col:"c"; descending = true } ],
          Exec.Plan.Filter
            ( Expr.Cmp (Expr.Ge, Expr.col ~rel:"S" ~col:"c", Expr.int 200),
              Exec.Plan.Hash_join
                { kind = Algebra.Inner; pairs = [ pair ];
                  residual = Expr.ftrue; left = scan "R"; right = scan "S" } )
        ) )

let test_composed_lint_clean () =
  let cat = mk_catalog default_r default_s in
  let plan = composed_plan () in
  Alcotest.(check int) "lint-clean" 0 (List.length (Verify.physical cat plan));
  differ "composed plan" cat plan

(* ------------------------------------------------------------------ *)
(* Property: on random inputs, every plan shape is differentially
   identical — rows, order, and counters. *)

let arb_rows =
  QCheck.(list_of_size Gen.(int_range 0 30)
            (pair (int_range 0 6) (int_range 0 60)))

let counters_equal cat plan =
  let ctx_i = Exec.Context.create ~buffer_pages:4 ~work_mem_pages:2 () in
  let oracle = Exec.Executor.run ~ctx:ctx_i cat plan in
  let ctx_b = Exec.Context.create ~buffer_pages:4 ~work_mem_pages:2 () in
  let batch = Exec.Batch.run ~ctx:ctx_b cat plan in
  Array.length oracle.Exec.Executor.rows = Array.length batch.Exec.Executor.rows
  && Array.for_all2 Tuple.equal oracle.Exec.Executor.rows
       batch.Exec.Executor.rows
  && counters ctx_i = counters ctx_b

let prop_batch_differential =
  QCheck.Test.make ~name:"batch engine matches interpreter" ~count:50
    (QCheck.pair arb_rows arb_rows)
    (fun (rs, ss) ->
       let mk (a, b) = (Value.Int a, Value.Int b) in
       let cat = mk_catalog (List.map mk rs) (List.map mk ss) in
       let plans =
         List.map
           (fun (_, kind) ->
              Exec.Plan.Nested_loop
                { kind; pred = join_pred; outer = scan "R"; inner = scan "S" })
           kinds
         @ List.map
             (fun (_, kind) ->
                Exec.Plan.Hash_join
                  { kind; pairs = [ pair ]; residual = Expr.ftrue;
                    left = scan "R"; right = scan "S" })
             kinds
         @ List.map
             (fun (_, kind) ->
                Exec.Plan.Merge_join
                  { kind; pairs = [ pair ]; residual = Expr.ftrue;
                    left = sort_on "R" "a" (scan "R");
                    right = sort_on "S" "a" (scan "S") })
             kinds
         @ [ Exec.Plan.Hash_agg
               { keys = [ (Expr.col ~rel:"R" ~col:"a", "a") ];
                 aggs = [ (Expr.Count_star, "n");
                          (Expr.Sum (Expr.col ~rel:"R" ~col:"b"), "t") ];
                 input = scan "R" };
             Exec.Plan.Hash_distinct
               (Exec.Plan.Project
                  ([ (Expr.col ~rel:"R" ~col:"a", "a") ], scan "R"));
             composed_plan () ]
       in
       List.for_all (counters_equal cat) plans)

(* ------------------------------------------------------------------ *)
(* End-to-end: the pipeline under both engine configs agrees on rows and
   counters for optimized multi-join queries. *)

let test_pipeline_engines_agree () =
  let w = Workload.Schemas.emp_dept ~emps:800 ~depts:40 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let sqls =
    [ "SELECT Emp.name, Dept.name FROM Emp, Dept \
       WHERE Emp.did = Dept.did AND Emp.sal > 50000";
      "SELECT Dept.name, COUNT(*), SUM(Emp.sal) FROM Emp, Dept \
       WHERE Emp.did = Dept.did GROUP BY Dept.name";
      "SELECT DISTINCT Dept.loc FROM Dept ORDER BY Dept.loc" ]
  in
  List.iter
    (fun sql ->
       let q = Sql.Binder.query_of_string cat sql in
       let run engine =
         let ctx = Exec.Context.create () in
         let config = { Core.Pipeline.default_config with engine } in
         let result, _ = Core.Pipeline.run_query ~ctx ~config cat db q in
         (result, counters ctx)
       in
       let ri, ci = run `Interpreted in
       let rb, cb = run `Batch in
       Alcotest.(check int)
         (sql ^ ": rows") (Array.length ri.Exec.Executor.rows)
         (Array.length rb.Exec.Executor.rows);
       Alcotest.(check bool)
         (sql ^ ": identical rows") true
         (Array.for_all2 Tuple.equal ri.Exec.Executor.rows
            rb.Exec.Executor.rows);
       Alcotest.(check string)
         (sql ^ ": counters") (pp_counters ci) (pp_counters cb))
    sqls

(* ------------------------------------------------------------------ *)
(* Three-valued logic at the engine seams.  The batch engine compiles
   specialized predicate/key paths (single-int hash keys, generic keys,
   vectorized filters); each must reproduce the interpreter's NULL
   semantics exactly: NULL join keys match nothing, comparisons against
   NULL are UNKNOWN even under NOT, and NULL group keys form one group. *)

let test_three_valued_logic () =
  (* key 0 on both sides: a NULL-as-0 encoding bug would invent matches *)
  let rs =
    [ (Value.Int 0, Value.Int 1); (Value.Null, Value.Int 2);
      (Value.Null, Value.Int 3); (Value.Int 2, Value.Int 4);
      (Value.Int 2, Value.Null) ]
  and ss =
    [ (Value.Int 0, Value.Int 10); (Value.Null, Value.Int 20);
      (Value.Int 2, Value.Int 30); (Value.Null, Value.Int 40) ]
  in
  let cat = mk_catalog rs ss in
  List.iter
    (fun (kn, kind) ->
       (* single-int fast path *)
       differ ("tvl null keys hash " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue;
              left = scan "R"; right = scan "S" });
       differ ("tvl null keys merge " ^ kn) cat
         (Exec.Plan.Merge_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue;
              left = sort_on "R" "a" (scan "R");
              right = sort_on "S" "a" (scan "S") });
       (* two-column keys force the generic hash path *)
       differ ("tvl null generic keys " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind;
              pairs =
                [ pair; ({ Expr.rel = "R"; col = "b" }, { Expr.rel = "S"; col = "c" }) ];
              residual = Expr.ftrue; left = scan "R"; right = scan "S" });
       differ ("tvl null keys NL " ^ kn) cat
         (Exec.Plan.Nested_loop
            { kind; pred = join_pred; outer = scan "R"; inner = scan "S" }))
    kinds;
  (* WHERE NOT (x = NULL): Eq yields UNKNOWN, NOT UNKNOWN stays UNKNOWN,
     so the filter must reject every row — including rows where x is
     itself NULL *)
  let x = Expr.col ~rel:"R" ~col:"a" in
  let not_eq_null =
    Expr.Not (Expr.Cmp (Expr.Eq, x, Expr.Const Value.Null))
  in
  differ "tvl NOT (x = NULL)" cat (Exec.Plan.Filter (not_eq_null, scan "R"));
  differ "tvl x = NULL" cat
    (Exec.Plan.Filter (Expr.Cmp (Expr.Eq, x, Expr.Const Value.Null), scan "R"));
  differ "tvl x <> NULL" cat
    (Exec.Plan.Filter (Expr.Cmp (Expr.Neq, x, Expr.Const Value.Null), scan "R"));
  let batch_rows plan =
    (Exec.Batch.run ~ctx:(Exec.Context.create ()) cat plan).Exec.Executor.rows
  in
  Alcotest.(check int) "NOT (x = NULL) rejects all rows" 0
    (Array.length (batch_rows (Exec.Plan.Filter (not_eq_null, scan "R"))));
  (* IS NULL is the only NULL test that selects *)
  differ "tvl x IS NULL" cat
    (Exec.Plan.Filter (Expr.Is_null x, scan "R"));
  Alcotest.(check int) "x IS NULL selects the two NULL-key rows" 2
    (Array.length (batch_rows (Exec.Plan.Filter (Expr.Is_null x, scan "R"))));
  (* NULL group keys: both NULL-key rows land in one group; COUNT(x)
     skips NULLs while COUNT star does not; SUM over all-NULL input is
     NULL not 0 *)
  let agg input =
    { Exec.Plan.keys = [ (x, "k") ];
      aggs =
        [ (Expr.Count_star, "n"); (Expr.Count x, "ca");
          (Expr.Count (Expr.col ~rel:"R" ~col:"b"), "cb");
          (Expr.Sum (Expr.col ~rel:"R" ~col:"b"), "sb");
          (Expr.Avg (Expr.col ~rel:"R" ~col:"b"), "av");
          (Expr.Min x, "mn") ];
      input }
  in
  differ "tvl null group keys hash" cat (Exec.Plan.Hash_agg (agg (scan "R")));
  differ "tvl null group keys stream" cat
    (Exec.Plan.Stream_agg (agg (sort_on "R" "a" (scan "R"))));
  Alcotest.(check int) "NULL keys collapse to one group (3 total)" 3
    (Array.length (batch_rows (Exec.Plan.Hash_agg (agg (scan "R")))));
  (* distinct treats NULL = NULL for grouping purposes *)
  differ "tvl distinct over nullable key" cat
    (Exec.Plan.Hash_distinct (Exec.Plan.Project ([ (x, "a") ], scan "R")))

(* ------------------------------------------------------------------ *)
(* Columnar-layout edge cases.  The typed column store classifies each
   column as unboxed ints, unboxed floats, or a boxed fallback, and
   filters produce selection vectors; every combination must stay
   differentially identical to the interpreter: columns that are
   entirely NULL, selection vectors that are empty, chunk granularities
   smaller than any operator's appetite, and string keys that force the
   boxed path under a selection vector. *)

let mk_str_catalog rs ss =
  let cat = Storage.Catalog.create () in
  let r = Storage.Catalog.create_table cat ~name:"R"
      ~columns:[ ("k", Value.Tstring); ("v", Value.Tint) ] in
  let s = Storage.Catalog.create_table cat ~name:"S"
      ~columns:[ ("k", Value.Tstring); ("w", Value.Tint) ] in
  List.iter (fun (k, v) -> Storage.Table.insert r (Tuple.of_list [ k; v ])) rs;
  List.iter (fun (k, w) -> Storage.Table.insert s (Tuple.of_list [ k; w ])) ss;
  cat

let test_columnar_edges () =
  (* 1. an all-NULL key column: the null bitmap is fully set, so joins
     match nothing and grouping collapses to the single NULL group *)
  let all_null_r = List.init 7 (fun i -> (Value.Null, Value.Int i)) in
  let cat = mk_catalog all_null_r default_s in
  List.iter
    (fun (kn, kind) ->
       differ ("all-NULL keys hash " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue;
              left = scan "R"; right = scan "S" }))
    kinds;
  differ "all-NULL group keys" cat
    (Exec.Plan.Hash_agg
       { keys = [ (Expr.col ~rel:"R" ~col:"a", "a") ];
         aggs = [ (Expr.Count_star, "n");
                  (Expr.Sum (Expr.col ~rel:"R" ~col:"a"), "t") ];
         input = scan "R" });
  (* an all-NULL aggregated column: SUM/AVG/MIN must come out NULL *)
  let cat2 = mk_catalog (List.init 5 (fun i -> (Value.Int i, Value.Null))) []
  in
  differ "all-NULL agg input" cat2
    (Exec.Plan.Hash_agg
       { keys = [];
         aggs = [ (Expr.Sum (Expr.col ~rel:"R" ~col:"b"), "s");
                  (Expr.Avg (Expr.col ~rel:"R" ~col:"b"), "a");
                  (Expr.Min (Expr.col ~rel:"R" ~col:"b"), "m") ];
         input = scan "R" });
  (* 2. an empty selection vector flowing into joins and aggregates: a
     filter that rejects every row leaves a chunk with len > 0 but zero
     selected positions *)
  let cat = mk_catalog default_r default_s in
  let none =
    Exec.Plan.Filter
      (Expr.Cmp (Expr.Gt, Expr.col ~rel:"R" ~col:"a", Expr.int 99), scan "R")
  in
  List.iter
    (fun (kn, kind) ->
       differ ("empty sel into hash join " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind; pairs = [ pair ]; residual = Expr.ftrue; left = none;
              right = scan "S" });
       differ ("empty sel as build side " ^ kn) cat
         (Exec.Plan.Hash_join
            { kind;
              pairs =
                [ ({ Expr.rel = "S"; col = "a" }, { Expr.rel = "R"; col = "a" })
                ];
              residual = Expr.ftrue; left = scan "S"; right = none }))
    kinds;
  differ "empty sel into agg" cat
    (Exec.Plan.Hash_agg
       { keys = [ (Expr.col ~rel:"R" ~col:"a", "a") ];
         aggs = [ (Expr.Count_star, "n") ]; input = none });
  differ "empty sel into project+sort" cat
    (Exec.Plan.Project
       ([ (Expr.col ~rel:"R" ~col:"b", "b") ], sort_on "R" "b" none));
  (* 3. chunk granularity smaller than any operator's appetite must be
     invisible — rows, order, and counters *)
  List.iter
    (fun chunk_rows ->
       differ ~chunk_rows
         (Printf.sprintf "chunk_rows=%d composed" chunk_rows)
         cat (composed_plan ()))
    [ 1; 2; 3 ];
  (* 4. string join keys force the boxed column fallback; the filter
     underneath makes the boxed column read through a selection vector *)
  let srs =
    [ (Value.Str "ann", Value.Int 1); (Value.Str "bob", Value.Int 2);
      (Value.Str "bob", Value.Int 3); (Value.Null, Value.Int 4);
      (Value.Str "cat", Value.Int 5) ]
  and sss =
    [ (Value.Str "bob", Value.Int 10); (Value.Str "cat", Value.Int 20);
      (Value.Null, Value.Int 30); (Value.Str "dee", Value.Int 40) ]
  in
  let scat = mk_str_catalog srs sss in
  let spair = ({ Expr.rel = "R"; col = "k" }, { Expr.rel = "S"; col = "k" }) in
  let filtered_r =
    Exec.Plan.Filter
      (Expr.Cmp (Expr.Ge, Expr.col ~rel:"R" ~col:"v", Expr.int 2), scan "R")
  in
  List.iter
    (fun (kn, kind) ->
       differ ("string keys under selection hash " ^ kn) scat
         (Exec.Plan.Hash_join
            { kind; pairs = [ spair ]; residual = Expr.ftrue;
              left = filtered_r; right = scan "S" });
       differ ("string keys under selection merge " ^ kn) scat
         (Exec.Plan.Merge_join
            { kind; pairs = [ spair ]; residual = Expr.ftrue;
              left = sort_on "R" "k" filtered_r;
              right = sort_on "S" "k" (scan "S") }))
    kinds;
  differ "string group keys under selection" scat
    (Exec.Plan.Hash_agg
       { keys = [ (Expr.col ~rel:"R" ~col:"k", "k") ];
         aggs = [ (Expr.Count_star, "n");
                  (Expr.Max (Expr.col ~rel:"R" ~col:"v"), "m") ];
         input = filtered_r })

(* Mixed Int/Float/Null cells in one column exercise the classifier's
   Floats and Boxed layouts; project-over-filter reads expressions
   through a selection vector.  Small chunk sizes shift every block
   boundary. *)

let arb_mixed_rows =
  let cell =
    QCheck.Gen.(frequency
                  [ (4, map (fun i -> Value.Int i) (int_range 0 6));
                    (2, map (fun f -> Value.Float (float_of_int f /. 2.))
                         (int_range 0 12));
                    (1, return Value.Null) ])
  in
  QCheck.make
    QCheck.Gen.(list_size (int_range 0 30) (pair cell cell))
    ~print:(fun l ->
        String.concat ";"
          (List.map
             (fun (a, b) ->
                Printf.sprintf "(%s,%s)" (Value.to_string a)
                  (Value.to_string b))
             l))

let prop_columnar_differential =
  QCheck.Test.make ~name:"columnar layouts match interpreter" ~count:60
    (QCheck.pair arb_mixed_rows (QCheck.make QCheck.Gen.(int_range 1 5)))
    (fun (rs, chunk_rows) ->
       let cat = mk_catalog rs [] in
       let a = Expr.col ~rel:"R" ~col:"a"
       and b = Expr.col ~rel:"R" ~col:"b" in
       let filtered =
         Exec.Plan.Filter (Expr.Cmp (Expr.Ge, a, Expr.int 2), scan "R")
       in
       let plans =
         [ Exec.Plan.Project
             ( [ (Expr.Binop (Expr.Add, b, Expr.int 1), "b1"); (a, "a") ],
               filtered );
           Exec.Plan.Project
             ([ (Expr.Binop (Expr.Mul, a, b), "ab") ], filtered);
           sort_on "R" "b" filtered;
           Exec.Plan.Hash_agg
             { keys = [ (a, "a") ];
               aggs = [ (Expr.Count_star, "n"); (Expr.Sum b, "s") ];
               input = filtered };
           Exec.Plan.Hash_distinct (Exec.Plan.Project ([ (a, "a") ], filtered))
         ]
       in
       List.for_all
         (fun plan ->
            let ctx_i = Exec.Context.create () in
            let oracle = Exec.Executor.run ~ctx:ctx_i cat plan in
            let ctx_b = Exec.Context.create () in
            let batch = Exec.Batch.run ~ctx:ctx_b ~chunk_rows cat plan in
            Array.length oracle.Exec.Executor.rows
            = Array.length batch.Exec.Executor.rows
            && Array.for_all2 Tuple.equal oracle.Exec.Executor.rows
                 batch.Exec.Executor.rows
            && counters ctx_i = counters ctx_b)
         plans)

let () =
  Alcotest.run "batch"
    [ ("operators",
       [ Alcotest.test_case "scans" `Quick test_scans;
         Alcotest.test_case "filter/project/sort" `Quick test_scalar_ops;
         Alcotest.test_case "joins, all algorithms and kinds" `Quick test_joins;
         Alcotest.test_case "join residuals" `Quick test_join_residual;
         Alcotest.test_case "generic hash keys" `Quick
           test_hash_join_generic_keys;
         Alcotest.test_case "empty inputs" `Quick test_empty_inputs;
         Alcotest.test_case "aggregates + distinct" `Quick test_aggregates;
         Alcotest.test_case "three-valued logic" `Quick
           test_three_valued_logic;
         Alcotest.test_case "columnar layout edges" `Quick
           test_columnar_edges ]);
      ("cost accounting",
       [ Alcotest.test_case "rescan faults identically" `Quick
           test_rescan_faults_identically;
         Alcotest.test_case "materialize" `Quick test_materialize_counters;
         Alcotest.test_case "sort/hash spill" `Quick
           test_sort_spill_accounting ]);
      ("composed",
       [ Alcotest.test_case "lint-clean composed plan" `Quick
           test_composed_lint_clean;
         QCheck_alcotest.to_alcotest prop_batch_differential;
         QCheck_alcotest.to_alcotest prop_columnar_differential ]);
      ("pipeline",
       [ Alcotest.test_case "engines agree end-to-end" `Quick
           test_pipeline_engines_agree ]) ]
