(* Statistics tests: histogram estimation, sampling, distinct-value
   estimators, selectivity and propagation. *)

open Relalg

let uniform_data n = Array.init n (fun i -> float_of_int (i mod 100))

let zipf_data ?(seed = 3) n =
  let st = Workload.Gen.rng seed in
  Array.map float_of_int (Workload.Gen.zipf_array st ~n:100 ~size:n ~skew:1.2)

(* ---------- histograms ---------- *)

let test_equi_depth_uniform () =
  let h = Stats.Histogram.build_equi_depth ~buckets:10 (uniform_data 1000) in
  (* eq selectivity on uniform data with 100 distinct values: ~1/100 *)
  let s = Stats.Histogram.est_eq h 42. in
  Alcotest.(check bool) "eq approx 0.01" true (s > 0.005 && s < 0.02);
  (* range covering ~half *)
  let r = Stats.Histogram.est_range h ~lo:0. ~hi:49. () in
  Alcotest.(check bool) "half range" true (r > 0.4 && r < 0.6);
  (* full range = 1 *)
  Alcotest.(check bool) "full range" true
    (Stats.Histogram.est_range h () > 0.999)

let test_selectivity_bounds () =
  List.iter
    (fun data ->
       List.iter
         (fun h ->
            for v = -10 to 110 do
              let s = Stats.Histogram.est_eq h (float_of_int v) in
              Alcotest.(check bool) "eq in [0,1]" true (s >= 0. && s <= 1.);
              let r =
                Stats.Histogram.est_range h ~lo:(float_of_int (v - 20))
                  ~hi:(float_of_int v) ()
              in
              Alcotest.(check bool) "range in [0,1]" true (r >= 0. && r <= 1.)
            done)
         [ Stats.Histogram.build_equi_width ~buckets:10 data;
           Stats.Histogram.build_equi_depth ~buckets:10 data;
           Stats.Histogram.build_compressed ~buckets:8 ~singletons:4 data ])
    [ uniform_data 500; zipf_data 500 ]

let test_compressed_exact_heavy_hitters () =
  let data = zipf_data 2000 in
  let h = Stats.Histogram.build_compressed ~buckets:8 ~singletons:4 data in
  (* value 1 is the most frequent rank under Zipf: its selectivity must be
     estimated exactly by the singleton bucket *)
  let truth =
    float_of_int (Array.length (Array.of_list (List.filter (fun v -> v = 1.) (Array.to_list data))))
    /. float_of_int (Array.length data)
  in
  let est = Stats.Histogram.est_eq h 1. in
  Alcotest.(check (float 1e-9)) "heavy hitter exact" truth est

let test_equi_depth_beats_width_on_skew () =
  let data = zipf_data 4000 in
  let st = Workload.Gen.rng 99 in
  let err kind =
    Stats.Sample.range_query_error st ~queries:200 data
      (Stats.Sample.build kind ~buckets:20 data)
  in
  let w = err Stats.Sample.Equi_width and d = err Stats.Sample.Equi_depth in
  Alcotest.(check bool)
    (Printf.sprintf "depth (%.4f) <= width (%.4f) on skew" d w)
    true (d <= w +. 0.01)

let test_histogram_join_rows () =
  let a = Stats.Histogram.build_equi_depth ~buckets:10 (uniform_data 1000) in
  let b = Stats.Histogram.build_equi_depth ~buckets:10 (uniform_data 500) in
  (* truth: each of 100 values: 10 x 5 matches = 5000 *)
  let est = Stats.Histogram.join_rows a b in
  Alcotest.(check bool)
    (Printf.sprintf "join rows ~5000, got %.0f" est)
    true (est > 2000. && est < 12000.)

(* ---------- sampling ---------- *)

let test_sample_full_fraction () =
  let data = uniform_data 400 in
  let st = Workload.Gen.rng 1 in
  let h = Stats.Sample.sampled_histogram st Stats.Sample.Equi_depth ~buckets:10 ~fraction:1.0 data in
  Alcotest.(check (float 1.)) "total preserved" 400. (Stats.Histogram.total h)

let test_sample_error_decreases () =
  let data = zipf_data 5000 in
  let st = Workload.Gen.rng 5 in
  let err fraction =
    let h =
      Stats.Sample.sampled_histogram st Stats.Sample.Equi_depth ~buckets:20
        ~fraction data
    in
    Stats.Sample.range_query_error st ~queries:300 data h
  in
  let tiny = err 0.005 and big = err 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "err(0.5)=%.4f <= err(0.005)=%.4f + eps" big tiny)
    true (big <= tiny +. 0.02)

(* ---------- distinct values ---------- *)

let test_distinct_exact_on_full () =
  let data = uniform_data 1000 in
  Alcotest.(check int) "exact" 100 (Stats.Distinct.exact data);
  (* full sample: scale-up is exact *)
  let est = Stats.Distinct.scale_up ~population:1000 data in
  Alcotest.(check (float 1e-6)) "scale-up on full sample" 100. est

let test_distinct_estimators_reasonable () =
  let st = Workload.Gen.rng 17 in
  let data = Array.map float_of_int (Workload.Gen.zipf_array st ~n:500 ~size:5000 ~skew:1.0) in
  let truth = float_of_int (Stats.Distinct.exact data) in
  let sample = Stats.Sample.uniform_sample st ~fraction:0.1 data in
  List.iter
    (fun est ->
       let e = Stats.Distinct.estimate est ~population:5000 sample in
       let err = Stats.Distinct.ratio_error ~truth e in
       Alcotest.(check bool)
         (Printf.sprintf "%s ratio error %.2f < 20" (Stats.Distinct.estimator_name est) err)
         true (err < 20.))
    [ Stats.Distinct.Scale_up; Stats.Distinct.Chao; Stats.Distinct.Gee ]

(* The provably-hard pair ([11]): all-distinct data and low-distinct data
   look similar in a small sample.  Scale-up is exact on the former but
   overestimates the latter by an order of magnitude; GEE stays within its
   sqrt(N/n) guarantee on both. *)
let test_distinct_hard_case () =
  let n = 10000 in
  let fraction = 0.01 in
  let bound = sqrt (1. /. fraction) in
  let st = Workload.Gen.rng 23 in
  let all_distinct = Array.init n (fun i -> float_of_int i) in
  let low_distinct = Array.init n (fun i -> float_of_int (i mod 100)) in
  let check name data truth =
    let sample = Stats.Sample.uniform_sample st ~fraction data in
    let su = Stats.Distinct.scale_up ~population:n sample in
    let gee = Stats.Distinct.gee ~population:n sample in
    let gee_err = Stats.Distinct.ratio_error ~truth gee in
    Alcotest.(check bool)
      (Printf.sprintf "%s: GEE err %.1f within sqrt(N/n)=%.0f" name gee_err bound)
      true (gee_err <= bound +. 1.);
    su
  in
  let su_exact = check "all-distinct" all_distinct (float_of_int n) in
  Alcotest.(check (float 1.)) "scale-up exact on all-distinct"
    (float_of_int n) su_exact;
  let su_bad = check "low-distinct" low_distinct 100. in
  Alcotest.(check bool)
    (Printf.sprintf "scale-up overestimates low-distinct: %.0f >> 100" su_bad)
    true (Stats.Distinct.ratio_error ~truth:100. su_bad > 5.)

(* ---------- table stats & derive ---------- *)

let mk_emp_cat () =
  let cat = Storage.Catalog.create () in
  let t =
    Storage.Catalog.create_table cat ~name:"E"
      ~columns:[ ("id", Value.Tint); ("age", Value.Tint); ("name", Value.Tstring) ]
  in
  for i = 0 to 999 do
    Storage.Table.insert t
      (Tuple.of_list
         [ Value.Int i; (if i mod 10 = 0 then Value.Null else Value.Int (20 + (i mod 50)));
           Value.Str "x" ])
  done;
  cat

let test_analyze () =
  let cat = mk_emp_cat () in
  let ts = Stats.Table_stats.analyze (Storage.Catalog.table cat "E") in
  Alcotest.(check (float 0.1)) "rows" 1000. ts.Stats.Table_stats.rows;
  let age = Option.get (Stats.Table_stats.col ts "age") in
  Alcotest.(check (float 0.001)) "null frac" 0.1 age.Stats.Table_stats.null_frac;
  (* ages 20 + (i mod 50), but i ≡ 0 (mod 10) is NULL, which removes the 5
     residues {0,10,20,30,40}: 45 distinct non-null ages remain *)
  Alcotest.(check (float 0.1)) "ndv" 45. age.Stats.Table_stats.n_distinct;
  let id = Option.get (Stats.Table_stats.col ts "id") in
  (* robust bounds: second-lowest and second-highest *)
  Alcotest.(check (option (float 0.01))) "lo" (Some 1.) id.Stats.Table_stats.lo;
  Alcotest.(check (option (float 0.01))) "hi" (Some 998.) id.Stats.Table_stats.hi

let test_derive_select () =
  let cat = mk_emp_cat () in
  let db = Stats.Table_stats.analyze_catalog cat in
  let ts = Option.get (Stats.Table_stats.find db "E") in
  let schema = (Storage.Catalog.table cat "E").Storage.Table.schema in
  let r = Stats.Derive.of_table ts ~alias:"E" ~schema in
  let sel_eq =
    Stats.Derive.selectivity r
      (Expr.Cmp (Expr.Eq, Expr.col ~rel:"E" ~col:"age", Expr.int 25))
  in
  (* age=25: 20 rows of 1000 -> 0.02 *)
  Alcotest.(check bool) (Printf.sprintf "eq sel %.4f" sel_eq) true
    (sel_eq > 0.01 && sel_eq < 0.04);
  let r' =
    Stats.Derive.apply_select r
      (Expr.Cmp (Expr.Lt, Expr.col ~rel:"E" ~col:"id", Expr.int 100))
  in
  Alcotest.(check bool)
    (Printf.sprintf "card %.0f ~100" r'.Stats.Derive.card)
    true (r'.Stats.Derive.card > 50. && r'.Stats.Derive.card < 200.)

let test_derive_conjunction_modes () =
  let cat = mk_emp_cat () in
  let db = Stats.Table_stats.analyze_catalog cat in
  let ts = Option.get (Stats.Table_stats.find db "E") in
  let schema = (Storage.Catalog.table cat "E").Storage.Table.schema in
  let r = Stats.Derive.of_table ts ~alias:"E" ~schema in
  let p =
    Expr.And
      (Expr.Cmp (Expr.Lt, Expr.col ~rel:"E" ~col:"id", Expr.int 500),
       Expr.Cmp (Expr.Lt, Expr.col ~rel:"E" ~col:"age", Expr.int 40))
  in
  let indep = Stats.Derive.selectivity r p in
  let most =
    Stats.Derive.selectivity
      ~asm:{ Stats.Derive.conjunction = `Most_selective; use_histograms = true;
             use_sketches = false }
      r p
  in
  Alcotest.(check bool) "independence <= most-selective" true (indep <= most +. 1e-9)

let test_derive_join_and_group () =
  let ed = Workload.Schemas.emp_dept ~emps:1000 ~depts:20 () in
  let e = Storage.Catalog.scan ed.Workload.Schemas.cat ~alias:"E" "Emp" in
  let d = Storage.Catalog.scan ed.Workload.Schemas.cat ~alias:"D" "Dept" in
  let joined =
    Algebra.Join
      (Algebra.Inner,
       Expr.Cmp (Expr.Eq, Expr.col ~rel:"E" ~col:"did", Expr.col ~rel:"D" ~col:"did"),
       e, d)
  in
  let s = Stats.Derive.of_algebra ed.Workload.Schemas.db joined in
  (* FK join: estimated rows close to Emp rows *)
  Alcotest.(check bool)
    (Printf.sprintf "fk join card %.0f ~1000" s.Stats.Derive.card)
    true (s.Stats.Derive.card > 300. && s.Stats.Derive.card < 3000.);
  let g =
    Stats.Derive.group s
      ~keys:[ (Expr.col ~rel:"E" ~col:"did", "did") ]
      ~aggs:[ (Expr.Count_star, "n") ]
  in
  Alcotest.(check bool) "group card <= ndv(did)" true (g.Stats.Derive.card <= 21.)

let prop_selectivity_in_unit =
  let gen =
    let open QCheck.Gen in
    let leaf =
      let* col = oneofl [ "id"; "age" ] in
      let* op = oneofl [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ] in
      let* c = int_range (-100) 1200 in
      return (Expr.Cmp (op, Expr.col ~rel:"E" ~col, Expr.int c))
    in
    let rec go d =
      if d = 0 then leaf
      else
        frequency
          [ (3, leaf);
            (1, map2 (fun a b -> Expr.And (a, b)) (go (d - 1)) (go (d - 1)));
            (1, map2 (fun a b -> Expr.Or (a, b)) (go (d - 1)) (go (d - 1)));
            (1, map (fun a -> Expr.Not a) (go (d - 1))) ]
    in
    go 3
  in
  let cat = mk_emp_cat () in
  let db = Stats.Table_stats.analyze_catalog cat in
  let ts = Option.get (Stats.Table_stats.find db "E") in
  let schema = (Storage.Catalog.table cat "E").Storage.Table.schema in
  let r = Stats.Derive.of_table ts ~alias:"E" ~schema in
  QCheck.Test.make ~name:"selectivity always in [0,1]" ~count:300
    (QCheck.make ~print:Expr.to_string gen)
    (fun p ->
       let s = Stats.Derive.selectivity r p in
       s >= 0. && s <= 1.)


(* ---------- Fast-AGMS sketches ---------- *)

(* The classical AGMS guarantee with the exact second moments:
   |est - J| <= sqrt(8/w) * sqrt(F2(a) * F2(b)) holds with probability
   >= 1 - exp(-d/8).  Data is generated deterministically from the
   QCheck-drawn seed (Workload.Gen.rng), and the depth is raised so a
   bound violation in this test is a code bug, not sketch bad luck. *)

let exact_join_and_f2 (xs : int array) (ys : int array) =
  let freq arr =
    let h = Hashtbl.create 64 in
    Array.iter
      (fun v ->
         Hashtbl.replace h v (1 + Option.value ~default:0 (Hashtbl.find_opt h v)))
      arr;
    h
  in
  let fa = freq xs and fb = freq ys in
  let join = ref 0. and f2a = ref 0. and f2b = ref 0. in
  Hashtbl.iter
    (fun v ca ->
       f2a := !f2a +. (float_of_int ca ** 2.);
       match Hashtbl.find_opt fb v with
       | Some cb -> join := !join +. float_of_int (ca * cb)
       | None -> ())
    fa;
  Hashtbl.iter (fun _ cb -> f2b := !f2b +. (float_of_int cb ** 2.)) fb;
  (!join, !f2a, !f2b)

let sketch_of (arr : int array) =
  let sk = Stats.Sketch.create ~width:512 ~depth:25 () in
  Array.iter (Stats.Sketch.update sk) arr;
  sk

let prop_sketch_join_within_bound =
  QCheck.Test.make ~name:"Fast-AGMS join estimate within (eps, delta) bound"
    ~count:40
    QCheck.(triple small_nat (int_range 0 2000) (int_range 0 2000))
    (fun (seed, na, nb) ->
       let st = Workload.Gen.rng (0x5ee * (seed + 1)) in
       (* one uniform and one Zipfian key column: skew is where sketch
          estimation earns its keep over ndv heuristics *)
       let xs =
         Array.init na (fun _ -> Workload.Gen.uniform_int st ~lo:0 ~hi:200)
       in
       let ys = Workload.Gen.zipf_array st ~n:200 ~size:nb ~skew:1.2 in
       let sa = sketch_of xs and sb = sketch_of ys in
       let j, f2a, f2b = exact_join_and_f2 xs ys in
       let est = Stats.Sketch.join_estimate sa sb in
       let bound = Stats.Sketch.epsilon sa *. sqrt (f2a *. f2b) in
       Stats.Sketch.items sa = na
       && Stats.Sketch.items sb = nb
       && Float.abs (est -. j) <= bound +. 1e-9)

let test_sketch_edges () =
  let a = Stats.Sketch.create () and b = Stats.Sketch.create () in
  (* empty sketches: exact zero, zero bound *)
  Alcotest.(check (float 0.)) "empty join estimate" 0.
    (Stats.Sketch.join_estimate a b);
  Alcotest.(check (float 0.)) "empty error bound" 0.
    (Stats.Sketch.error_bound a b);
  (* one empty side stays exactly zero: its counters are all zero *)
  Array.iter (Stats.Sketch.update a) [| 1; 2; 3; 1 |];
  Alcotest.(check (float 0.)) "empty right side" 0.
    (Stats.Sketch.join_estimate a b);
  (* guarantee parameters *)
  let s = Stats.Sketch.create ~width:512 ~depth:25 () in
  Alcotest.(check (float 1e-9)) "epsilon" (sqrt (8. /. 512.))
    (Stats.Sketch.epsilon s);
  Alcotest.(check (float 1e-9)) "delta" (exp (-25. /. 8.))
    (Stats.Sketch.delta s);
  (* incompatible shapes are rejected, not silently mis-estimated *)
  (match Stats.Sketch.join_estimate a s with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "incompatible sketches accepted")

(* NULL keys never reach a sketch: the columnar feed skips null bits, so
   a column with interleaved NULLs sketches exactly its non-null part. *)
let test_sketch_null_keys_skipped () =
  let rows =
    Array.init 60 (fun i ->
        Tuple.of_list
          [ (if i mod 3 = 0 then Value.Null else Value.Int (i mod 7)) ])
  in
  let store = Exec.Eval.Chunk.store_of_rows ~arity:1 rows in
  let sk = Stats.Sketch.create () in
  Alcotest.(check bool) "int column feeds" true
    (Exec.Eval.Chunk.feed_ints store 0 (Stats.Sketch.update sk));
  let expect = Stats.Sketch.create () in
  Array.iter
    (fun t ->
       match Tuple.get t 0 with
       | Value.Int v -> Stats.Sketch.update expect v
       | _ -> ())
    rows;
  Alcotest.(check int) "nulls skipped" (Stats.Sketch.items expect)
    (Stats.Sketch.items sk);
  Alcotest.(check (float 1e-9)) "same second moment"
    (Stats.Sketch.second_moment expect)
    (Stats.Sketch.second_moment sk)

(* ---------- 2-d histograms ---------- *)

let test_hist2d_independent_matches_1d () =
  let st = Workload.Gen.rng 41 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> float_of_int (Workload.Gen.uniform_int st ~lo:0 ~hi:999)) in
  let ys = Array.init n (fun _ -> float_of_int (Workload.Gen.uniform_int st ~lo:0 ~hi:999)) in
  let h2 = Stats.Histogram2d.build ~buckets:10 xs ys in
  let est = Stats.Histogram2d.est_range h2 ~xhi:100. ~yhi:100. () in
  (* independent uniform: truth ~ 0.1 * 0.1 = 0.01 *)
  Alcotest.(check bool) (Printf.sprintf "independent est %.4f ~ 0.01" est)
    true (est > 0.005 && est < 0.02)

let test_hist2d_captures_correlation () =
  let st = Workload.Gen.rng 42 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> float_of_int (Workload.Gen.uniform_int st ~lo:0 ~hi:999)) in
  let ys = Array.map (fun x -> x +. float_of_int (Workload.Gen.uniform_int st ~lo:(-20) ~hi:20)) xs in
  let h2 = Stats.Histogram2d.build ~buckets:10 xs ys in
  let est = Stats.Histogram2d.est_range h2 ~xhi:100. ~yhi:100. () in
  let truth =
    let c = ref 0 in
    Array.iteri (fun i x -> if x <= 100. && ys.(i) <= 100. then incr c) xs;
    float_of_int !c /. float_of_int n
  in
  (* truth ~ 0.1; the 1-d independence estimate would be ~0.01 *)
  Alcotest.(check bool)
    (Printf.sprintf "correlated est %.4f vs truth %.4f" est truth)
    true (Float.abs (est -. truth) < 0.05 && est > 0.03)

let test_hist2d_bounds () =
  let h2 = Stats.Histogram2d.build ~buckets:5 [| 1.; 2.; 3. |] [| 4.; 5.; 6. |] in
  Alcotest.(check (float 1e-6)) "full range" 1.
    (Stats.Histogram2d.est_range h2 ());
  Alcotest.(check (float 1e-6)) "empty range" 0.
    (Stats.Histogram2d.est_range h2 ~xhi:0. ());
  let e = Stats.Histogram2d.build ~buckets:5 [||] [||] in
  Alcotest.(check (float 1e-6)) "empty data" 0. (Stats.Histogram2d.est_range e ())

let () =
  Alcotest.run "stats"
    [ ("histogram",
       [ Alcotest.test_case "equi-depth uniform" `Quick test_equi_depth_uniform;
         Alcotest.test_case "selectivity bounds" `Quick test_selectivity_bounds;
         Alcotest.test_case "compressed heavy hitters" `Quick test_compressed_exact_heavy_hitters;
         Alcotest.test_case "depth beats width on skew" `Quick test_equi_depth_beats_width_on_skew;
         Alcotest.test_case "histogram join" `Quick test_histogram_join_rows ]);
      ("histogram2d",
       [ Alcotest.test_case "independent ~ product" `Quick test_hist2d_independent_matches_1d;
         Alcotest.test_case "captures correlation" `Quick test_hist2d_captures_correlation;
         Alcotest.test_case "bounds" `Quick test_hist2d_bounds ]);
      ("sampling",
       [ Alcotest.test_case "full fraction" `Quick test_sample_full_fraction;
         Alcotest.test_case "error decreases" `Quick test_sample_error_decreases ]);
      ("distinct",
       [ Alcotest.test_case "exact on full data" `Quick test_distinct_exact_on_full;
         Alcotest.test_case "estimators reasonable" `Quick test_distinct_estimators_reasonable;
         Alcotest.test_case "hard case" `Quick test_distinct_hard_case ]);
      ("derive",
       [ Alcotest.test_case "analyze" `Quick test_analyze;
         Alcotest.test_case "selection" `Quick test_derive_select;
         Alcotest.test_case "conjunction modes" `Quick test_derive_conjunction_modes;
         Alcotest.test_case "join and group" `Quick test_derive_join_and_group;
         QCheck_alcotest.to_alcotest prop_selectivity_in_unit ]);
      ("sketch",
       [ QCheck_alcotest.to_alcotest prop_sketch_join_within_bound;
         Alcotest.test_case "edges" `Quick test_sketch_edges;
         Alcotest.test_case "null keys skipped" `Quick
           test_sketch_null_keys_skipped ]) ]
