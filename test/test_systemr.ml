(* System-R optimizer tests: plan correctness by execution, DP = exhaustive
   best cost, interesting orders, bushy vs linear, Cartesian products. *)

open Relalg

let spj_of_pieces ?(projections = None) ?(order_by = [])
    (p : Workload.Schemas.join_pieces) : Systemr.Spj.t =
  Systemr.Spj.make ~projections ~order_by
    ~relations:
      (List.map
         (fun (alias, table) ->
            { Systemr.Spj.alias; table;
              schema =
                Schema.requalify
                  (Storage.Catalog.table p.Workload.Schemas.jcat table).Storage.Table.schema
                  ~rel:alias })
         p.Workload.Schemas.relations)
    ~predicates:p.Workload.Schemas.predicates ()

(* Hand-rolled reference plan: left-deep nested loops in declaration order,
   each predicate applied at the earliest point it becomes evaluable.
   Independent of the optimizer machinery. *)
let reference_plan (q : Systemr.Spj.t) : Exec.Plan.t =
  match q.Systemr.Spj.relations with
  | [] -> invalid_arg "reference_plan"
  | first :: rest ->
    let scan (r : Systemr.Spj.relation) =
      Exec.Plan.Seq_scan { table = r.Systemr.Spj.table; alias = r.Systemr.Spj.alias; filter = None }
    in
    let applicable aliases used =
      List.filter
        (fun p ->
           (not (List.memq p used))
           && Expr.relations p <> []
           && List.for_all (fun a -> List.mem a aliases) (Expr.relations p))
        q.Systemr.Spj.predicates
    in
    let start_preds = applicable [ first.Systemr.Spj.alias ] [] in
    let plan0 =
      match start_preds with
      | [] -> scan first
      | ps -> Exec.Plan.Filter (Pred.of_conjuncts ps, scan first)
    in
    let plan, _, used =
      List.fold_left
        (fun (plan, aliases, used) r ->
           let aliases' = aliases @ [ r.Systemr.Spj.alias ] in
           let ps = applicable aliases' used in
           ( Exec.Plan.Nested_loop
               { kind = Algebra.Inner; pred = Pred.of_conjuncts ps;
                 outer = plan; inner = scan r },
             aliases',
             used @ ps ))
        (plan0, [ first.Systemr.Spj.alias ], start_preds)
        rest
    in
    ignore used;
    match q.Systemr.Spj.projections with
    | None -> plan
    | Some items -> Exec.Plan.Project (items, plan)

let execute cat p = Exec.Executor.run cat p

let check_plan_correct name (pieces : Workload.Schemas.join_pieces) config =
  let q = spj_of_pieces pieces in
  let res = Systemr.Join_order.optimize ~config pieces.Workload.Schemas.jcat
      pieces.Workload.Schemas.jdb q in
  let optimized = execute pieces.Workload.Schemas.jcat res.Systemr.Join_order.best.Systemr.Candidate.plan in
  let reference = execute pieces.Workload.Schemas.jcat (reference_plan q) in
  Alcotest.(check bool) (name ^ ": plan produces correct result") true
    (Exec.Executor.same_multiset_modulo_columns optimized reference);
  res

let small_chain () = Workload.Schemas.join_shape ~rows:60 ~shape:Workload.Schemas.Chain_q ~n:4 ()
let small_star () = Workload.Schemas.join_shape ~rows:60 ~shape:Workload.Schemas.Star_q ~n:4 ()

let test_dp_correct_chain () =
  ignore (check_plan_correct "chain" (small_chain ()) Systemr.Join_order.default_config)

let test_dp_correct_star () =
  ignore (check_plan_correct "star" (small_star ()) Systemr.Join_order.default_config)

let test_dp_correct_bushy () =
  ignore
    (check_plan_correct "bushy chain" (small_chain ())
       { Systemr.Join_order.default_config with bushy = true })

let test_dp_correct_no_io () =
  ignore
    (check_plan_correct "no interesting orders" (small_chain ())
       { Systemr.Join_order.default_config with interesting_orders = false })

let test_dp_correct_with_indexes () =
  (* add indexes on join columns so index-NL and ordered scans participate *)
  let p = small_chain () in
  List.iter
    (fun (_, table) ->
       ignore
         (Storage.Catalog.create_index p.Workload.Schemas.jcat ~table ~column:"a" ()))
    p.Workload.Schemas.relations;
  ignore (check_plan_correct "with indexes" p Systemr.Join_order.default_config)

let test_dp_equals_naive () =
  (* same search space (left-deep, same methods): the DP must find the same
     best cost as exhaustive permutation enumeration *)
  List.iter
    (fun pieces ->
       let q = spj_of_pieces pieces in
       let config =
         { Systemr.Join_order.default_config with interesting_orders = true }
       in
       let dp = Systemr.Join_order.optimize ~config pieces.Workload.Schemas.jcat
           pieces.Workload.Schemas.jdb q in
       let naive = Systemr.Naive.optimize ~config pieces.Workload.Schemas.jcat
           pieces.Workload.Schemas.jdb q in
       Alcotest.(check (float 1e-6)) "same best cost"
         naive.Systemr.Naive.best.Systemr.Candidate.cost
         dp.Systemr.Join_order.best.Systemr.Candidate.cost)
    [ small_chain (); small_star () ]

let test_dp_cheaper_enumeration () =
  let pieces = Workload.Schemas.join_shape ~rows:30 ~shape:Workload.Schemas.Clique_q ~n:6 () in
  let q = spj_of_pieces pieces in
  let dp = Systemr.Join_order.optimize pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q in
  let naive = Systemr.Naive.optimize pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q in
  Alcotest.(check bool)
    (Printf.sprintf "dp costed %d < naive %d plans" dp.Systemr.Join_order.counters.Systemr.Join_order.costed
       naive.Systemr.Naive.plans_costed)
    true
    (dp.Systemr.Join_order.counters.Systemr.Join_order.costed < naive.Systemr.Naive.plans_costed)

let test_bushy_no_worse () =
  List.iter
    (fun pieces ->
       let q = spj_of_pieces pieces in
       let linear = Systemr.Join_order.optimize pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q in
       let bushy =
         Systemr.Join_order.optimize
           ~config:{ Systemr.Join_order.default_config with bushy = true }
           pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q
       in
       Alcotest.(check bool) "bushy best <= linear best" true
         (bushy.Systemr.Join_order.best.Systemr.Candidate.cost
          <= linear.Systemr.Join_order.best.Systemr.Candidate.cost +. 1e-6))
    [ small_chain (); small_star () ]

let test_interesting_orders_no_worse () =
  List.iter
    (fun pieces ->
       List.iter
         (fun (_, table) ->
            ignore
              (Storage.Catalog.create_index pieces.Workload.Schemas.jcat ~table
                 ~column:"a" ()))
         pieces.Workload.Schemas.relations;
       let q = spj_of_pieces pieces in
       let with_io = Systemr.Join_order.optimize pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q in
       let without =
         Systemr.Join_order.optimize
           ~config:{ Systemr.Join_order.default_config with interesting_orders = false }
           pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q
       in
       Alcotest.(check bool) "interesting orders never hurt" true
         (with_io.Systemr.Join_order.best.Systemr.Candidate.cost
          <= without.Systemr.Join_order.best.Systemr.Candidate.cost +. 1e-6))
    [ small_chain (); small_star () ]

let test_cross_products_no_worse () =
  let pieces = small_star () in
  let q = spj_of_pieces pieces in
  let no_cross = Systemr.Join_order.optimize pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q in
  let cross =
    Systemr.Join_order.optimize
      ~config:{ Systemr.Join_order.default_config with allow_cross = true; bushy = true }
      pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q
  in
  Alcotest.(check bool) "larger space never worse" true
    (cross.Systemr.Join_order.best.Systemr.Candidate.cost
     <= no_cross.Systemr.Join_order.best.Systemr.Candidate.cost +. 1e-6)

let test_disconnected_graph_still_plans () =
  (* two relations, no join predicate: needs the Cartesian rescue *)
  let pieces = Workload.Schemas.join_shape ~rows:20 ~shape:Workload.Schemas.Chain_q ~n:2 () in
  let pieces = { pieces with Workload.Schemas.predicates = [] } in
  let q = spj_of_pieces pieces in
  let res = Systemr.Join_order.optimize pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q in
  let out = execute pieces.Workload.Schemas.jcat res.Systemr.Join_order.best.Systemr.Candidate.plan in
  Alcotest.(check int) "cross product size" 400 (Array.length out.Exec.Executor.rows)

let test_order_by_enforced () =
  let pieces = small_chain () in
  let order_by = [ ({ Expr.rel = "R1"; col = "a" }, Algebra.Asc) ] in
  let q = spj_of_pieces ~order_by pieces in
  let res = Systemr.Join_order.optimize pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q in
  let out = execute pieces.Workload.Schemas.jcat res.Systemr.Join_order.best.Systemr.Candidate.plan in
  let schema = out.Exec.Executor.schema in
  let i = Schema.index_of schema ~rel:"R1" ~name:"a" in
  let keys = Array.to_list out.Exec.Executor.rows |> List.map (fun t -> Tuple.get t i) in
  Alcotest.(check bool) "output sorted" true
    (List.for_all2 Value.equal keys (List.sort Value.compare keys))

let test_projection_applied () =
  let pieces = small_chain () in
  let projections = Some [ (Expr.col ~rel:"R1" ~col:"a", "a1") ] in
  let q = spj_of_pieces ~projections pieces in
  let res = Systemr.Join_order.optimize pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q in
  let out = execute pieces.Workload.Schemas.jcat res.Systemr.Join_order.best.Systemr.Candidate.plan in
  Alcotest.(check int) "one column" 1 (Schema.arity out.Exec.Executor.schema)

(* property: for random small queries, DP (any config) produces plans with
   identical results to the reference *)
let prop_dp_always_correct =
  QCheck.Test.make ~name:"optimized plans always correct" ~count:15
    (QCheck.make
       QCheck.Gen.(
         pair (oneofl [ Workload.Schemas.Chain_q; Workload.Schemas.Star_q;
                        Workload.Schemas.Clique_q ])
           (pair (int_range 2 4) (int_range 1 1000))))
    (fun (shape, (n, seed)) ->
       let pieces = Workload.Schemas.join_shape ~seed ~rows:25 ~shape ~n () in
       let q = spj_of_pieces pieces in
       let res = Systemr.Join_order.optimize pieces.Workload.Schemas.jcat pieces.Workload.Schemas.jdb q in
       let optimized = execute pieces.Workload.Schemas.jcat res.Systemr.Join_order.best.Systemr.Candidate.plan in
       let reference = execute pieces.Workload.Schemas.jcat (reference_plan q) in
       Exec.Executor.same_multiset_modulo_columns optimized reference)

let test_spj_roundtrip () =
  let pieces = small_chain () in
  let q = spj_of_pieces pieces in
  match Systemr.Spj.of_algebra (Systemr.Spj.to_algebra q) with
  | Some q' ->
    Alcotest.(check int) "relations" (List.length q.Systemr.Spj.relations)
      (List.length q'.Systemr.Spj.relations);
    Alcotest.(check int) "predicates" (List.length q.Systemr.Spj.predicates)
      (List.length q'.Systemr.Spj.predicates)
  | None -> Alcotest.fail "roundtrip failed"

let test_counting_formulas () =
  Alcotest.(check int) "3! = 6" 6 (Systemr.Naive.linear_sequences 3);
  Alcotest.(check int) "6! = 720" 720 (Systemr.Naive.linear_sequences 6);
  (* DP extension count for n=3: C(3,1)*2 + C(3,2)*1 = 6+3 = 9 *)
  Alcotest.(check int) "dp n=3" 9 (Systemr.Naive.dp_extensions 3);
  Alcotest.(check bool) "dp grows much slower" true
    (Systemr.Naive.dp_extensions 8 < Systemr.Naive.linear_sequences 8)

let () =
  Alcotest.run "systemr"
    [ ("correctness",
       [ Alcotest.test_case "chain" `Quick test_dp_correct_chain;
         Alcotest.test_case "star" `Quick test_dp_correct_star;
         Alcotest.test_case "bushy" `Quick test_dp_correct_bushy;
         Alcotest.test_case "no interesting orders" `Quick test_dp_correct_no_io;
         Alcotest.test_case "with indexes" `Quick test_dp_correct_with_indexes;
         Alcotest.test_case "order by enforced" `Quick test_order_by_enforced;
         Alcotest.test_case "projection" `Quick test_projection_applied;
         Alcotest.test_case "disconnected graph" `Quick test_disconnected_graph_still_plans;
         QCheck_alcotest.to_alcotest prop_dp_always_correct ]);
      ("optimality",
       [ Alcotest.test_case "dp = naive best cost" `Quick test_dp_equals_naive;
         Alcotest.test_case "dp enumerates fewer plans" `Quick test_dp_cheaper_enumeration;
         Alcotest.test_case "bushy no worse" `Quick test_bushy_no_worse;
         Alcotest.test_case "interesting orders no worse" `Quick test_interesting_orders_no_worse;
         Alcotest.test_case "cross products no worse" `Quick test_cross_products_no_worse ]);
      ("spj",
       [ Alcotest.test_case "roundtrip" `Quick test_spj_roundtrip;
         Alcotest.test_case "counting formulas" `Quick test_counting_formulas ]) ]
