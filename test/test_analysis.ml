(* Static-analyzer tests: per-operator transfer-function goldens (scans,
   selections, outer joins, GROUP BY, UNION, empty tables), an
   envelope-containment property against the interpreter, the
   contradictory-predicate fold checked across the full oracle grid, and
   the seeded-corruption mutation test for the provable-bound lints. *)

open Relalg
module A = Analysis.Absint
module D = Analysis.Domain
module Q = Rewrite.Qgm

let col r c = Expr.col ~rel:r ~col:c
let eq a b = Expr.Cmp (Expr.Eq, a, b)
let gt a b = Expr.Cmp (Expr.Gt, a, b)
let lt a b = Expr.Cmp (Expr.Lt, a, b)

let base cat ?alias name : Q.source =
  let alias = Option.value alias ~default:name in
  Q.Base
    { table = name; alias;
      schema =
        Schema.requalify (Storage.Catalog.table cat name).Storage.Table.schema
          ~rel:alias }

(* Hand-built catalog with fully-known contents, so the analyzer's facts
   (which come from exact full-scan statistics) have checkable goldens:

   R(a NOT NULL, b): (1,10) (2,20) (2,NULL) (3,30)   -- a in [1,3]
   S(a NOT NULL, c NOT NULL): (2,200) (3,300) (5,500) -- a in [2,5]
   Void(x): empty *)
let mk_db () =
  let cat = Storage.Catalog.create () in
  let r =
    Storage.Catalog.create_table cat ~name:"R" ~non_null:[ "a" ]
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
  in
  let s =
    Storage.Catalog.create_table cat ~name:"S" ~non_null:[ "a"; "c" ]
      ~columns:[ ("a", Value.Tint); ("c", Value.Tint) ]
  in
  ignore
    (Storage.Catalog.create_table cat ~name:"Void"
       ~columns:[ ("x", Value.Tint) ]);
  List.iter
    (fun (a, b) -> Storage.Table.insert r (Tuple.of_list [ a; b ]))
    [ (Value.Int 1, Value.Int 10); (Value.Int 2, Value.Int 20);
      (Value.Int 2, Value.Null); (Value.Int 3, Value.Int 30) ];
  List.iter
    (fun (a, c) -> Storage.Table.insert s (Tuple.of_list [ a; c ]))
    [ (Value.Int 2, Value.Int 200); (Value.Int 3, Value.Int 300);
      (Value.Int 5, Value.Int 500) ];
  (cat, Stats.Table_stats.analyze_catalog cat)

let rel_schema cat ?alias name =
  let alias = Option.value alias ~default:name in
  Schema.requalify (Storage.Catalog.table cat name).Storage.Table.schema
    ~rel:alias

let aval st name =
  match A.col_aval st name with
  | Some a -> a
  | None -> Alcotest.failf "no abstract value for column %s" name

let check_null name expect (a : D.aval) =
  Alcotest.(check bool) name true (a.D.null = expect)

(* ---------- scans ---------- *)

let test_scan () =
  let cat, db = mk_db () in
  let st = A.scan ~db ~table:"R" ~alias:"R" (rel_schema cat "R") in
  Alcotest.(check bool) "R scan: envelope is exactly 4 rows" true
    (st.A.env = D.env_exact 4.);
  let a = aval st "a" and b = aval st "b" in
  check_null "R.a is provably non-null" D.Non_null a;
  check_null "R.b may be null" D.Maybe_null b;
  Alcotest.(check bool) "R.a interval covers the data" true
    (D.contains a.D.itv 1. && D.contains a.D.itv 3.);
  Alcotest.(check bool) "R.a interval excludes 0 and 4" true
    (not (D.contains a.D.itv 0.) && not (D.contains a.D.itv 4.));
  (* without statistics only declared nullability is known *)
  let dry = A.scan ~table:"R" ~alias:"R" (rel_schema cat "R") in
  Alcotest.(check bool) "db-less scan: envelope is top" true
    (dry.A.env = D.env_top);
  check_null "db-less scan still proves NOT NULL" D.Non_null (aval dry "a")

let test_empty_table () =
  let cat, db = mk_db () in
  let st = A.scan ~db ~table:"Void" ~alias:"V" (rel_schema cat ~alias:"V" "Void") in
  Alcotest.(check bool) "empty table scan: provably empty" true
    (D.env_is_empty st.A.env);
  (* joining anything against a provably-empty table stays empty *)
  let blk =
    Q.simple
      ~select:[ (col "R" "a", "a"); (col "V" "x", "x") ]
      ~from:[ base cat "R"; base cat ~alias:"V" "Void" ]
      ~where:[ eq (col "R" "a") (col "V" "x") ] ()
  in
  Alcotest.(check bool) "join against empty table: provably empty" true
    (D.env_is_empty (A.of_block ~db blk).A.env)

(* ---------- selection ---------- *)

let test_select () =
  let cat, db = mk_db () in
  let blk =
    Q.simple
      ~select:[ (col "R" "a", "a"); (col "R" "b", "b") ]
      ~from:[ base cat "R" ]
      ~where:[ gt (col "R" "a") (Expr.int 2) ] ()
  in
  let st = A.of_block ~db blk in
  let actual =
    float_of_int (Array.length (Rewrite.Qgm_eval.run cat blk).Exec.Executor.rows)
  in
  Alcotest.(check bool) "a > 2: envelope contains the actual count" true
    (D.env_contains st.A.env actual);
  Alcotest.(check bool) "a > 2: upper bound never exceeds the input" true
    (st.A.env.D.e_hi <= 4.);
  let a = aval st "a" in
  Alcotest.(check bool) "a > 2 refines the interval" true
    (D.contains a.D.itv 3. && not (D.contains a.D.itv 2.));
  check_null "predicate on a proves it non-null" D.Non_null a

let test_contradiction () =
  let cat, db = mk_db () in
  let blk =
    Q.simple
      ~select:[ (col "R" "a", "a") ]
      ~from:[ base cat "R" ]
      ~where:[ gt (col "R" "a") (Expr.int 2); lt (col "R" "a") (Expr.int 2) ] ()
  in
  Alcotest.(check bool) "a > 2 AND a < 2: provably empty" true
    (D.env_is_empty (A.of_block ~db blk).A.env);
  (* integer tightening: a > 1 AND a < 2 has no integer solution *)
  let blk' =
    { blk with
      Q.where = [ Q.P (gt (col "R" "a") (Expr.int 1));
                  Q.P (lt (col "R" "a") (Expr.int 2)) ] }
  in
  Alcotest.(check bool) "1 < a < 2 on an int column: provably empty" true
    (D.env_is_empty (A.of_block ~db blk').A.env)

(* ---------- joins ---------- *)

let test_inner_join () =
  let cat, db = mk_db () in
  let blk =
    Q.simple
      ~select:[ (col "R" "a", "a"); (col "S" "c", "c") ]
      ~from:[ base cat "R"; base cat "S" ]
      ~where:[ eq (col "R" "a") (col "S" "a") ] ()
  in
  let st = A.of_block ~db blk in
  let actual =
    float_of_int (Array.length (Rewrite.Qgm_eval.run cat blk).Exec.Executor.rows)
  in
  Alcotest.(check (float 0.)) "inner join actual" 3. actual;
  Alcotest.(check bool) "inner join: envelope contains the actual count" true
    (D.env_contains st.A.env actual);
  Alcotest.(check bool) "inner join: bounded by the cross product" true
    (st.A.env.D.e_hi <= 12.);
  check_null "join column stays non-null" D.Non_null (aval st "a")

let test_left_outer_join () =
  let cat, db = mk_db () in
  let l = A.scan ~db ~table:"R" ~alias:"R" (rel_schema cat "R") in
  let r = A.scan ~db ~table:"S" ~alias:"S" (rel_schema cat "S") in
  let st = A.left_outer_join l r (eq (col "R" "a") (col "S" "a")) in
  (* every left row appears at least once *)
  Alcotest.(check bool) "left outer: at least the left input's rows" true
    (st.A.env.D.e_lo >= 4.);
  Alcotest.(check bool) "left outer: envelope contains the actual count" true
    (D.env_contains st.A.env 4.);
  (* NULL padding demotes the right side, even declared-NOT NULL columns;
     both sides expose an [a], so look up by qualified key *)
  check_null "padded right column loses non-null" D.Maybe_null
    (List.assoc ("S", "c") st.A.cols);
  check_null "left column keeps non-null" D.Non_null
    (List.assoc ("R", "a") st.A.cols)

(* ---------- grouping ---------- *)

let test_group_by () =
  let cat, db = mk_db () in
  let gcol c = (Expr.col ~rel:"" ~col:c, c) in
  let blk =
    Q.simple
      ~select:[ gcol "a"; gcol "cnt"; gcol "mn"; gcol "sm" ]
      ~group_by:[ (col "R" "a", "a") ]
      ~aggs:
        [ (Expr.Count_star, "cnt"); (Expr.Min (col "R" "b"), "mn");
          (Expr.Sum (col "R" "b"), "sm") ]
      ~from:[ base cat "R" ] ()
  in
  let st = A.of_block ~db blk in
  let actual =
    float_of_int (Array.length (Rewrite.Qgm_eval.run cat blk).Exec.Executor.rows)
  in
  Alcotest.(check (float 0.)) "group by actual" 3. actual;
  Alcotest.(check bool) "group by: envelope contains the group count" true
    (D.env_contains st.A.env actual);
  Alcotest.(check bool) "group by: no more groups than input rows" true
    (st.A.env.D.e_hi <= 4.);
  let cnt = aval st "cnt" in
  check_null "COUNT(*) is non-null" D.Non_null cnt;
  Alcotest.(check bool) "COUNT(*) of a keyed group is >= 1" true
    (not (D.contains cnt.D.itv 0.));
  (* b holds NULL, so MIN(b)/SUM(b) may be NULL within a group *)
  check_null "MIN over a nullable column may be null" D.Maybe_null
    (aval st "mn");
  (* scalar aggregate over a non-empty input yields exactly one row *)
  let scalar =
    Q.simple
      ~select:[ (Expr.col ~rel:"" ~col:"cnt", "cnt") ]
      ~aggs:[ (Expr.Count_star, "cnt") ]
      ~from:[ base cat "R" ] ()
  in
  let sst = A.of_block ~db scalar in
  Alcotest.(check bool) "scalar aggregate: exactly one row" true
    (sst.A.env = D.env_exact 1.)

(* ---------- union ---------- *)

let test_union () =
  let cat, db = mk_db () in
  let arm () =
    Q.simple
      ~select:[ (col "R" "a", "a"); (col "R" "b", "b") ]
      ~from:[ base cat "R" ] ()
  in
  let all =
    Q.Q_union { all = true; left = Q.Q_block (arm ()); right = Q.Q_block (arm ()) }
  in
  let st = A.of_query ~db all in
  Alcotest.(check bool) "UNION ALL of two exact arms is exact" true
    (st.A.env = D.env_exact 8.);
  let dis =
    Q.Q_union { all = false; left = Q.Q_block (arm ()); right = Q.Q_block (arm ()) }
  in
  let dst = A.of_query ~db dis in
  let actual =
    float_of_int
      (Array.length (Rewrite.Qgm_eval.run_query cat dis).Exec.Executor.rows)
  in
  Alcotest.(check bool) "UNION: envelope contains the deduplicated count" true
    (D.env_contains dst.A.env actual);
  Alcotest.(check bool) "UNION arms' nullability joins" true
    ((aval dst "b").D.null = D.Maybe_null
     && (aval dst "a").D.null = D.Non_null)

(* ------------------------------------------------------------------ *)
(* Envelope containment property: over random range/equality predicates
   on the emp_dept workload, the interpreter's actual row count must lie
   inside the analyzer's envelope, claimed-non-null output columns must
   hold no NULLs, and non-null values must lie inside claimed
   intervals. *)

let prop_envelope_contains =
  let w = Workload.Schemas.emp_dept ~emps:300 ~depts:12 ~empty_dept_frac:0.25 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let gen =
    QCheck.Gen.(
      tup4 (int_range 0 200_000) (int_range 0 200_000)
        (oneofl [ "sal"; "age"; "did" ])
        bool)
  in
  QCheck.Test.make ~name:"analyzer envelope contains interpreter actuals"
    ~count:120
    (QCheck.make gen)
    (fun (x, y, c, with_join) ->
       let lo = min x y and hi = max x y in
       let from, where0 =
         if with_join then
           ( [ base cat ~alias:"E" "Emp"; base cat ~alias:"D" "Dept" ],
             [ eq (col "E" "did") (col "D" "did") ] )
         else ([ base cat ~alias:"E" "Emp" ], [])
       in
       let blk =
         Q.simple
           ~select:[ (col "E" "eid", "eid"); (col "E" c, "v") ]
           ~from
           ~where:
             (where0
              @ [ Expr.Cmp (Expr.Ge, col "E" c, Expr.int lo);
                  Expr.Cmp (Expr.Le, col "E" c, Expr.int hi) ]) ()
       in
       let st = A.of_block ~db blk in
       let rows = (Rewrite.Qgm_eval.run cat blk).Exec.Executor.rows in
       let actual = float_of_int (Array.length rows) in
       if not (D.env_contains st.A.env actual) then
         QCheck.Test.fail_reportf
           "actual %g outside envelope %a for %s in [%d,%d] join=%b" actual
           D.pp_envelope st.A.env c lo hi with_join;
       List.iteri
         (fun j (_, (a : D.aval)) ->
            Array.iter
              (fun t ->
                 let v = Tuple.get t j in
                 match Value.to_float v with
                 | _ when Value.is_null v ->
                   if a.D.null = D.Non_null then
                     QCheck.Test.fail_reportf
                       "column %d: NULL despite a non-null claim" j
                 | Some f ->
                   if not (D.contains a.D.itv f) then
                     QCheck.Test.fail_reportf
                       "column %d: value %g outside interval %a" j f
                       D.pp_interval a.D.itv
                 | None -> ())
              rows)
         st.A.cols;
       true)

(* ------------------------------------------------------------------ *)
(* Acceptance: a contradictory-predicate query must fold to a provably
   empty plan under [analysis] and return identical (zero-row) results
   across every engine x optimizer configuration of the oracle grid. *)

let test_contradiction_grid () =
  let w = Workload.Schemas.emp_dept ~emps:400 ~depts:20 () in
  let blk () =
    Q.simple
      ~select:[ (col "E" "name", "name"); (col "D" "name", "dept") ]
      ~from:[ base w.Workload.Schemas.cat ~alias:"E" "Emp";
              base w.Workload.Schemas.cat ~alias:"D" "Dept" ]
      ~where:
        [ eq (col "E" "did") (col "D" "did");
          gt (col "E" "sal") (Expr.int 100_000);
          lt (col "E" "sal") (Expr.int 50_000) ] ()
  in
  Alcotest.(check bool) "grid has at least six configurations" true
    (List.length Fuzz.Oracle.full_grid >= 6);
  List.iter
    (fun (cfg : Fuzz.Oracle.cfg) ->
       let res, report =
         Core.Pipeline.run ~config:cfg.Fuzz.Oracle.config
           w.Workload.Schemas.cat w.Workload.Schemas.db (blk ())
       in
       Alcotest.(check int)
         (Printf.sprintf "%s: contradictory query returns no rows"
            cfg.Fuzz.Oracle.cname)
         0
         (Array.length res.Exec.Executor.rows);
       (* under analysis, the fold is syntactic: WHERE collapses to FALSE *)
       if cfg.Fuzz.Oracle.config.Core.Pipeline.analysis then
         Alcotest.(check bool)
           (Printf.sprintf "%s: rewritten WHERE is the false constant"
              cfg.Fuzz.Oracle.cname)
           true
           (match report.Core.Pipeline.rewritten.Q.where with
            | [ Q.P (Expr.Const (Value.Bool false)) ] -> true
            | _ -> false))
    Fuzz.Oracle.full_grid

(* ------------------------------------------------------------------ *)
(* Mutation test: corrupting the cardinality estimator must trip the
   provable-bound lint, and the honest estimator must not. *)

let test_est_mutation () =
  let w = Workload.Schemas.emp_dept ~emps:400 ~depts:20 () in
  let cat = w.Workload.Schemas.cat and db = w.Workload.Schemas.db in
  let blk =
    Q.simple
      ~select:[ (col "E" "eid", "eid"); (col "E" "sal", "sal") ]
      ~from:[ base cat ~alias:"E" "Emp" ] ()
  in
  let _, report = Core.Pipeline.run cat db blk in
  let plan =
    match report.Core.Pipeline.plan with
    | Some p -> p
    | None -> Alcotest.fail "base-table scan was not planned"
  in
  let corrupted =
    Analysis.Lint.physical ~est_of:(fun _ -> Some 0.) cat db plan
  in
  Alcotest.(check bool)
    "zeroed estimator trips est-zero-nonempty" true
    (Verify.Diag.mem ~code:"est-zero-nonempty" corrupted);
  let inflated =
    Analysis.Lint.physical ~est_of:(fun _ -> Some 1e12) cat db plan
  in
  Alcotest.(check bool)
    "inflated estimator trips est-above-envelope" true
    (Verify.Diag.mem ~code:"est-above-envelope" inflated);
  let honest = Analysis.Lint.physical cat db plan in
  Alcotest.(check int) "honest estimator is clean on an exact-stats scan" 0
    (List.length honest)

let () =
  Alcotest.run "analysis"
    [ ("transfer functions",
       [ Alcotest.test_case "scan" `Quick test_scan;
         Alcotest.test_case "empty table" `Quick test_empty_table;
         Alcotest.test_case "selection" `Quick test_select;
         Alcotest.test_case "contradiction" `Quick test_contradiction;
         Alcotest.test_case "inner join" `Quick test_inner_join;
         Alcotest.test_case "left outer join" `Quick test_left_outer_join;
         Alcotest.test_case "group by" `Quick test_group_by;
         Alcotest.test_case "union" `Quick test_union ]);
      ("soundness",
       [ QCheck_alcotest.to_alcotest prop_envelope_contains ]);
      ("acceptance",
       [ Alcotest.test_case "contradiction folds across the grid" `Quick
           test_contradiction_grid;
         Alcotest.test_case "estimator-corruption lint" `Quick
           test_est_mutation ]) ]
