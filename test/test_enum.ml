(* Graph-aware enumeration tests: the bitset-graph + csg–cmp + cost-bound
   enumerator must find exactly the same best cost as the preserved
   pre-change enumerator ([Join_order.exhaustive]) on random acyclic and
   cyclic query graphs, across tree shapes and pruning-sensitive configs;
   plus fixed regressions (disconnected rescue, single relation, counter
   sanity) and the sorted Pareto-frontier invariant of [Candidate.insert]. *)

open Relalg

(* ------------------------------------------------------------------ *)
(* Random query graphs: T1..Tn (20 rows, columns a b), a random spanning
   tree of Tparent.b = Tchild.a edges; cyclic graphs add extra
   Ti.a = Tj.a edges.  Even-numbered tables get an index on a so index
   nested loops (whose candidates omit the inner scan cost) participate. *)

type graph_query = {
  cat : Storage.Catalog.t;
  db : Stats.Table_stats.db;
  query : Systemr.Spj.t;
}

let name_of i = Printf.sprintf "T%d" (i + 1)

let random_graph ?(rows = 20) ~seed ~cyclic ~n () : graph_query =
  let st = Workload.Gen.rng seed in
  let cat = Storage.Catalog.create () in
  for i = 0 to n - 1 do
    let t =
      Storage.Catalog.create_table cat ~name:(name_of i)
        ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ]
    in
    for _ = 1 to rows do
      Storage.Table.insert t
        (Tuple.of_list
           [ Value.Int (Workload.Gen.uniform_int st ~lo:0 ~hi:5);
             Value.Int (Workload.Gen.uniform_int st ~lo:0 ~hi:5) ])
    done;
    if i mod 2 = 0 then
      ignore (Storage.Catalog.create_index cat ~table:(name_of i) ~column:"a" ())
  done;
  let col rel c = Expr.Col { Expr.rel; col = c } in
  let eq a b = Expr.Cmp (Expr.Eq, a, b) in
  let tree =
    List.init (n - 1) (fun i ->
        let child = i + 1 in
        let parent = Workload.Gen.uniform_int st ~lo:0 ~hi:i in
        eq (col (name_of parent) "b") (col (name_of child) "a"))
  in
  let extra =
    if not cyclic || n < 3 then []
    else
      List.init (1 + (n / 3)) (fun _ ->
          let i = Workload.Gen.uniform_int st ~lo:0 ~hi:(n - 2) in
          let j = Workload.Gen.uniform_int st ~lo:(i + 1) ~hi:(n - 1) in
          eq (col (name_of i) "a") (col (name_of j) "a"))
  in
  let query =
    Systemr.Spj.make
      ~relations:
        (List.init n (fun i ->
             { Systemr.Spj.alias = name_of i; table = name_of i;
               schema =
                 Schema.requalify
                   (Storage.Catalog.table cat (name_of i)).Storage.Table.schema
                   ~rel:(name_of i) }))
      ~predicates:(tree @ extra) ()
  in
  { cat; db = Stats.Table_stats.analyze_catalog cat; query }

(* ------------------------------------------------------------------ *)
(* Fast = exhaustive across the pruning-sensitive config grid *)

let configs =
  List.concat_map
    (fun bushy ->
       List.map
         (fun interesting_orders ->
            ( Printf.sprintf "%s io=%b"
                (if bushy then "bushy" else "left-deep")
                interesting_orders,
              { Systemr.Join_order.default_config with
                bushy; interesting_orders } ))
         [ true; false ])
    [ false; true ]

let costs_match cf cs = Float.abs (cf -. cs) <= 1e-6 *. Float.max 1. cs

let equiv_ok (g : graph_query) =
  List.for_all
    (fun (_, config) ->
       let fast = Systemr.Join_order.optimize ~config g.cat g.db g.query in
       let slow =
         Systemr.Join_order.optimize
           ~config:(Systemr.Join_order.exhaustive config) g.cat g.db g.query
       in
       costs_match fast.Systemr.Join_order.best.Systemr.Candidate.cost
         slow.Systemr.Join_order.best.Systemr.Candidate.cost)
    configs

let check_equiv name (g : graph_query) =
  List.iter
    (fun (cfg_name, config) ->
       let fast = Systemr.Join_order.optimize ~config g.cat g.db g.query in
       let slow =
         Systemr.Join_order.optimize
           ~config:(Systemr.Join_order.exhaustive config) g.cat g.db g.query
       in
       let cf = fast.Systemr.Join_order.best.Systemr.Candidate.cost
       and cs = slow.Systemr.Join_order.best.Systemr.Candidate.cost in
       Alcotest.(check bool)
         (Printf.sprintf "%s %s: fast %.4f = exhaustive %.4f" name cfg_name
            cf cs)
         true (costs_match cf cs))
    configs

let prop_fast_equals_exhaustive =
  QCheck.Test.make ~name:"graph-aware + pruned = exhaustive best cost"
    ~count:10
    (QCheck.make
       QCheck.Gen.(pair bool (pair (int_range 2 7) (int_range 1 1000))))
    (fun (cyclic, (n, seed)) ->
       equiv_ok (random_graph ~seed ~cyclic ~n ()))

let test_acyclic_8 () =
  check_equiv "acyclic n=8" (random_graph ~seed:5 ~cyclic:false ~n:8 ())

let test_cyclic_8 () =
  check_equiv "cyclic n=8" (random_graph ~seed:9 ~cyclic:true ~n:8 ())

(* ------------------------------------------------------------------ *)
(* Fixed regressions *)

(* Three relations, one edge: the query graph is disconnected, so the
   enumeration must fall back to the Cartesian rescue — and still agree
   with the exhaustive enumerator on cost and produce the same rows. *)
let test_disconnected_rescue () =
  let g = random_graph ~seed:3 ~cyclic:false ~n:3 () in
  let query =
    { g.query with
      Systemr.Spj.predicates = [ List.hd g.query.Systemr.Spj.predicates ] }
  in
  let g = { g with query } in
  check_equiv "disconnected" g;
  let rows config =
    let res = Systemr.Join_order.optimize ~config g.cat g.db g.query in
    let out =
      Exec.Executor.run g.cat res.Systemr.Join_order.best.Systemr.Candidate.plan
    in
    Array.length out.Exec.Executor.rows
  in
  let config = { Systemr.Join_order.default_config with bushy = true } in
  Alcotest.(check int) "same result cardinality"
    (rows (Systemr.Join_order.exhaustive config))
    (rows config)

let test_single_relation () =
  let g = random_graph ~seed:1 ~cyclic:false ~n:1 () in
  let res = Systemr.Join_order.optimize g.cat g.db g.query in
  let out =
    Exec.Executor.run g.cat res.Systemr.Join_order.best.Systemr.Candidate.plan
  in
  Alcotest.(check int) "all rows" 20 (Array.length out.Exec.Executor.rows);
  Alcotest.(check bool) "finite cost" true
    (Float.is_finite res.Systemr.Join_order.best.Systemr.Candidate.cost)

(* Chain of 8, bushy: the graph-aware enumerator must create exactly the
   n(n+1)/2 = 36 connected-interval DP entries, never consider more
   splits than the exhaustive walk, and actually exercise the cost
   bound. *)
let test_counters_sane () =
  let p =
    Workload.Schemas.join_shape ~rows:60 ~shape:Workload.Schemas.Chain_q ~n:8 ()
  in
  let q =
    Systemr.Spj.make
      ~relations:
        (List.map
           (fun (alias, table) ->
              { Systemr.Spj.alias; table;
                schema =
                  Schema.requalify
                    (Storage.Catalog.table p.Workload.Schemas.jcat table)
                      .Storage.Table.schema ~rel:alias })
           p.Workload.Schemas.relations)
      ~predicates:p.Workload.Schemas.predicates ()
  in
  let config = { Systemr.Join_order.default_config with bushy = true } in
  let opt config =
    (Systemr.Join_order.optimize ~config p.Workload.Schemas.jcat
       p.Workload.Schemas.jdb q)
      .Systemr.Join_order.counters
  in
  let fast = opt config
  and slow = opt (Systemr.Join_order.exhaustive config) in
  Alcotest.(check int) "36 connected intervals" 36
    fast.Systemr.Join_order.subsets;
  (* note: [costed] is not compared — the greedy upper-bound seed costs a
     few plans of its own, which can outweigh the pruning savings at this
     size *)
  Alcotest.(check bool) "no more splits than exhaustive" true
    (fast.Systemr.Join_order.splits <= slow.Systemr.Join_order.splits);
  Alcotest.(check bool) "cost bound exercised" true
    (fast.Systemr.Join_order.pruned > 0);
  Alcotest.(check int) "exhaustive never prunes" 0
    slow.Systemr.Join_order.pruned

(* ------------------------------------------------------------------ *)
(* Candidate frontier invariant: sorted by ascending cost, an antichain
   under dominance, and the overall minimum cost always survives. *)

let dummy_plan = Exec.Plan.Seq_scan { table = "T"; alias = "T"; filter = None }

let orders_pool : Cost.Physical_props.order list =
  let a = { Expr.rel = "R"; col = "a" } and b = { Expr.rel = "R"; col = "b" } in
  [ []; [ (a, Algebra.Asc) ]; [ (a, Algebra.Asc); (b, Algebra.Asc) ];
    [ (b, Algebra.Desc) ] ]

let prop_frontier_invariant =
  QCheck.Test.make ~name:"Candidate.insert keeps a sorted Pareto frontier"
    ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 12)
           (pair (int_range 0 50) (int_range 0 (List.length orders_pool - 1)))))
    (fun specs ->
       let cands =
         List.map
           (fun (c, oi) ->
              { Systemr.Candidate.plan = dummy_plan;
                cost = float_of_int c;
                order = List.nth orders_pool oi })
           specs
       in
       let frontier =
         List.fold_left
           (Systemr.Candidate.insert ~interesting_orders:true) [] cands
       in
       let rec sorted = function
         | a :: (b :: _ as rest) ->
           a.Systemr.Candidate.cost <= b.Systemr.Candidate.cost && sorted rest
         | _ -> true
       in
       let antichain =
         List.for_all
           (fun c ->
              List.for_all
                (fun c' -> c == c' || not (Systemr.Candidate.dominates c' c))
                frontier)
           frontier
       in
       let min_cost =
         List.fold_left
           (fun m c -> Float.min m c.Systemr.Candidate.cost) infinity cands
       in
       let head_is_min =
         match Systemr.Candidate.cheapest frontier with
         | Some c -> c.Systemr.Candidate.cost = min_cost
         | None -> false
       in
       sorted frontier && antichain && head_is_min)

let () =
  Alcotest.run "enum"
    [ ("equivalence",
       [ QCheck_alcotest.to_alcotest prop_fast_equals_exhaustive;
         Alcotest.test_case "acyclic n=8" `Quick test_acyclic_8;
         Alcotest.test_case "cyclic n=8" `Quick test_cyclic_8 ]);
      ("regressions",
       [ Alcotest.test_case "disconnected rescue" `Quick
           test_disconnected_rescue;
         Alcotest.test_case "single relation" `Quick test_single_relation;
         Alcotest.test_case "counters sane" `Quick test_counters_sane ]);
      ("frontier",
       [ QCheck_alcotest.to_alcotest prop_frontier_invariant ]) ]
