(* Cardinality-feedback tests: cache key normalization, hit/miss and
   staleness semantics, and the closed loop end to end — a second
   optimization of an executed query plans with the first run's actual
   cardinalities, and loses them again when the data changes. *)

open Relalg
module P = Core.Pipeline
module FB = Stats.Feedback

let emp_dept () =
  let w = Workload.Schemas.emp_dept ~emps:200 ~depts:10 () in
  (w.Workload.Schemas.cat, w.Workload.Schemas.db)

(* ------------------------------------------------------------------ *)
(* Keys: position-independent for the SPJ core *)

let test_key_normalization () =
  let k1 =
    FB.key ~shape:"spj"
      ~rels:[ ("e", "Emp"); ("d", "Dept") ]
      ~preds:[ "p"; "q" ]
  in
  let k2 =
    FB.key ~shape:"spj"
      ~rels:[ ("d", "Dept"); ("e", "Emp") ]
      ~preds:[ "q"; "p"; "p" ]
  in
  Alcotest.(check string) "rel and pred order (and dups) are immaterial" k1 k2;
  let k3 =
    FB.key ~shape:"spj" ~rels:[ ("e", "Emp"); ("d", "Dept") ] ~preds:[ "p" ]
  in
  Alcotest.(check bool) "predicates discriminate" true (k1 <> k3);
  let k4 =
    FB.key ~shape:"group" ~rels:[ ("e", "Emp"); ("d", "Dept") ]
      ~preds:[ "p"; "q" ]
  in
  Alcotest.(check bool) "shape discriminates" true (k1 <> k4);
  Alcotest.(check int) "8-hex digest" 8 (String.length k1)

let test_canon_pred_eq_symmetric () =
  let a = Expr.col ~rel:"e" ~col:"did" in
  let b = Expr.col ~rel:"d" ~col:"did" in
  Alcotest.(check string) "a = b and b = a canonicalize identically"
    (FB.canon_pred (Expr.Cmp (Expr.Eq, a, b)))
    (FB.canon_pred (Expr.Cmp (Expr.Eq, b, a)));
  Alcotest.(check bool) "non-commutative comparisons stay directional" true
    (FB.canon_pred (Expr.Cmp (Expr.Lt, a, b))
     <> FB.canon_pred (Expr.Cmp (Expr.Lt, b, a)))

(* ------------------------------------------------------------------ *)
(* Cache semantics: miss, record, hit, staleness, invalidation *)

let test_cache_semantics () =
  let _, db = emp_dept () in
  let fb = FB.create () in
  let k = FB.key ~shape:"spj" ~rels:[ ("e", "Emp") ] ~preds:[ "p" ] in
  Alcotest.(check (option (float 0.))) "cold cache misses" None
    (FB.lookup fb ~db k);
  Alcotest.(check int) "miss counted" 1 (FB.misses fb);
  FB.record fb ~db ~tables:[ "Emp" ] k 123.;
  Alcotest.(check int) "record counted" 1 (FB.records fb);
  Alcotest.(check int) "one entry" 1 (FB.size fb);
  Alcotest.(check (option (float 0.))) "hit returns the actual" (Some 123.)
    (FB.lookup fb ~db k);
  Alcotest.(check int) "hit counted" 1 (FB.hits fb);
  (* refreshing Emp's statistics to a different row count silently
     invalidates the entry *)
  let ts = Option.get (Stats.Table_stats.find db "Emp") in
  Hashtbl.replace db "Emp"
    { ts with Stats.Table_stats.rows = ts.Stats.Table_stats.rows +. 50. };
  Alcotest.(check (option (float 0.))) "stale entry misses" None
    (FB.lookup fb ~db k);
  Alcotest.(check int) "stale entry dropped" 0 (FB.size fb);
  Alcotest.(check int) "staleness counted as miss" 2 (FB.misses fb)

let test_invalidate_tables () =
  let _, db = emp_dept () in
  let fb = FB.create () in
  let ke = FB.key ~shape:"spj" ~rels:[ ("e", "Emp") ] ~preds:[] in
  let kd = FB.key ~shape:"spj" ~rels:[ ("d", "Dept") ] ~preds:[] in
  let kj =
    FB.key ~shape:"spj" ~rels:[ ("e", "Emp"); ("d", "Dept") ] ~preds:[ "j" ]
  in
  FB.record fb ~db ~tables:[ "Emp" ] ke 200.;
  FB.record fb ~db ~tables:[ "Dept" ] kd 10.;
  FB.record fb ~db ~tables:[ "Emp"; "Dept" ] kj 200.;
  FB.invalidate_tables fb [ "Emp" ];
  Alcotest.(check (option (float 0.))) "Emp entry gone" None
    (FB.lookup fb ~db ke);
  Alcotest.(check (option (float 0.))) "join entry gone" None
    (FB.lookup fb ~db kj);
  Alcotest.(check (option (float 0.))) "Dept entry survives" (Some 10.)
    (FB.lookup fb ~db kd);
  FB.clear fb;
  Alcotest.(check int) "clear empties" 0 (FB.size fb)

(* ------------------------------------------------------------------ *)
(* End to end: execute, re-optimize, and the second plan's estimates are
   the first run's actuals *)

let sql =
  "SELECT Emp.name FROM Emp, Dept \
   WHERE Emp.did = Dept.did AND Emp.sal > 60000 AND Emp.age < 40"

let run config cat db =
  let q = Sql.Binder.query_of_string cat sql in
  P.run_query ~config cat db q

let ops_of reports = List.concat_map (fun r -> r.P.op_stats) reports

let max_q reports =
  List.fold_left
    (fun acc (o : Exec.Instrument.op) ->
       match o.Exec.Instrument.est_rows with
       | Some e when o.Exec.Instrument.executed ->
         Float.max acc
           (Obs.Analyze.q_error ~est:e
              ~act:(float_of_int o.Exec.Instrument.act_rows))
       | _ -> acc)
    1. reports

let count_events f reports =
  List.concat_map (fun r -> r.P.trace_events) reports
  |> List.filter f |> List.length

let is_override = function
  | Obs.Trace.Feedback_override _ -> true
  | _ -> false

let is_recorded = function
  | Obs.Trace.Feedback_recorded _ -> true
  | _ -> false

let test_reoptimize_uses_actuals () =
  let cat, db = emp_dept () in
  let fb = FB.create () in
  let config =
    { P.default_config with estimator = `Feedback fb; instrument = true }
  in
  let r1, reps1 = run config cat db in
  Alcotest.(check bool) "execution recorded actuals" true (FB.records fb > 0);
  Alcotest.(check bool) "first run emits recorded events" true
    (count_events is_recorded reps1 > 0);
  Alcotest.(check int) "no overrides on a cold cache" 0
    (count_events is_override reps1);
  let r2, reps2 = run config cat db in
  Alcotest.(check bool) "same row count" true
    (Array.length r1.Exec.Executor.rows = Array.length r2.Exec.Executor.rows);
  Alcotest.(check bool) "second optimization hit the cache" true
    (FB.hits fb > 0);
  Alcotest.(check bool) "second run emits override events" true
    (count_events is_override reps2 > 0);
  (* every operator of the re-optimized plan is keyed (SPJ query, no temp
     tables), so every estimate is the first run's actual: q-error 1.0 *)
  Alcotest.(check (float 1e-9)) "second-run estimates equal actuals" 1.
    (max_q (ops_of reps2));
  Alcotest.(check bool) "first run had real estimation error" true
    (max_q (ops_of reps1) > 1.)

let test_append_invalidates_feedback () =
  let cat, db = emp_dept () in
  let fb = FB.create () in
  let config =
    { P.default_config with estimator = `Feedback fb; instrument = true }
  in
  let _ = run config cat db in
  (* append rows and refresh statistics: every recorded entry touching
     Emp is now stale *)
  let t = Storage.Catalog.table cat "Emp" in
  for i = 0 to 49 do
    Storage.Table.insert t
      (Tuple.of_list
         [ Value.Int (1000 + i); Value.Str "newbie"; Value.Int (i mod 10);
           Value.Str "dept"; Value.Int 70000; Value.Int 30; Value.Int 1 ])
  done;
  Hashtbl.replace db "Emp" (Stats.Table_stats.analyze t);
  let _, reps3 = run config cat db in
  (* Emp-touching entries are stale, so no override event fires; the
     Dept-only entry legitimately survives (Dept is unchanged) but only
     confirms an already-exact base estimate *)
  Alcotest.(check int) "no stale override fires after the append" 0
    (count_events is_override reps3);
  (* the run re-recorded under the new fingerprints: the loop closes
     again on the post-append data *)
  let _, reps4 = run config cat db in
  Alcotest.(check bool) "overrides fire again" true
    (count_events is_override reps4 > 0);
  Alcotest.(check (float 1e-9)) "estimates equal post-append actuals" 1.
    (max_q (ops_of reps4))

(* The default `Histogram estimator must not create or consult any
   feedback state — reports carry no feedback events. *)
let test_histogram_mode_untouched () =
  let cat, db = emp_dept () in
  let config = { P.default_config with instrument = true } in
  let _, reps = run config cat db in
  Alcotest.(check int) "no feedback events under `Histogram" 0
    (count_events (fun e -> is_override e || is_recorded e) reps)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "feedback"
    [ ( "keys",
        [ Alcotest.test_case "normalization" `Quick test_key_normalization;
          Alcotest.test_case "eq symmetry" `Quick
            test_canon_pred_eq_symmetric ] );
      ( "cache",
        [ Alcotest.test_case "hit/miss/stale" `Quick test_cache_semantics;
          Alcotest.test_case "invalidate tables" `Quick
            test_invalidate_tables ] );
      ( "loop",
        [ Alcotest.test_case "re-optimize uses actuals" `Quick
            test_reoptimize_uses_actuals;
          Alcotest.test_case "append invalidates" `Quick
            test_append_invalidates_feedback;
          Alcotest.test_case "histogram mode untouched" `Quick
            test_histogram_mode_untouched ] ) ]
