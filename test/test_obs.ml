(* Observability tests: q-error arithmetic, EXPLAIN ANALYZE golden output
   on the paper's Emp/Dept schema, cross-engine agreement of per-operator
   actuals, and well-formedness of the hand-built trace JSON. *)

open Relalg

(* ------------------------------------------------------------------ *)
(* q-error arithmetic *)

let test_q_error () =
  let q = Obs.Analyze.q_error in
  Alcotest.(check (float 1e-9)) "exact" 1.0 (q ~est:5. ~act:5.);
  Alcotest.(check (float 1e-9)) "underestimate" 2.0 (q ~est:5. ~act:10.);
  Alcotest.(check (float 1e-9)) "overestimate" 4.0 (q ~est:20. ~act:5.);
  Alcotest.(check (float 1e-9)) "both zero" 1.0 (q ~est:0. ~act:0.);
  Alcotest.(check bool) "est zero, rows produced" true
    (q ~est:0. ~act:3. = infinity);
  Alcotest.(check bool) "rows estimated, none produced" true
    (q ~est:3. ~act:0. = infinity)

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE goldens on Emp/Dept (deterministic workload data;
   [show_wall:false] drops the only nondeterministic column) *)

let emp_dept () =
  let w = Workload.Schemas.emp_dept ~emps:200 ~depts:10 () in
  (w.Workload.Schemas.cat, w.Workload.Schemas.db)

let analyze_text ?(engine = `Batch) sql =
  let cat, db = emp_dept () in
  let q = Sql.Binder.query_of_string cat sql in
  let config = { Core.Pipeline.default_config with engine } in
  let _, _, text =
    Core.Pipeline.analyze_query ~config ~show_wall:false cat db q
  in
  text

let test_analyze_golden_join () =
  Alcotest.(check string) "annotated join plan"
    "[ 0] Project Emp.name AS name, Dept.name AS name      \
     est=200.0 act=200 q=1.00 rescans=0 seq=0 rand=0 spill=0 cpu=200\n\
     [ 1]   Hash Join (Emp.did = Dept.did)                 \
     est=200.0 act=200 q=1.00 rescans=0 seq=0 rand=0 spill=0 cpu=410\n\
     [ 2]     Table Scan Emp                               \
     est=200.0 act=200 q=1.00 rescans=0 seq=3 rand=0 spill=0 cpu=200\n\
     [ 3]     Table Scan Dept                              \
     est=10.0 act=10 q=1.00 rescans=0 seq=1 rand=0 spill=0 cpu=10\n\
     max q-error: 1.00 at op 0 (Project Emp.name AS name, Dept.name AS \
     name)\n"
    (analyze_text
       "SELECT Emp.name, Dept.name FROM Emp, Dept WHERE Emp.did = Dept.did")

let test_analyze_golden_agg () =
  Alcotest.(check string) "annotated aggregate plan"
    "[ 0] Project name, agg0                               \
     est=10.0 act=9 q=1.11 rescans=0 seq=0 rand=0 spill=0 cpu=9\n\
     [ 1]   Hash Aggregate [Dept.name | COUNT(*) AS agg0]  \
     est=10.0 act=9 q=1.11 rescans=0 seq=0 rand=0 spill=0 cpu=170\n\
     [ 2]     Hash Join (Emp.did = Dept.did)               \
     est=170.0 act=170 q=1.00 rescans=0 seq=0 rand=0 spill=0 cpu=350\n\
     [ 3]       Table Scan Emp [Emp.sal > 60000]           \
     est=170.0 act=170 q=1.00 rescans=0 seq=3 rand=0 spill=0 cpu=200\n\
     [ 4]       Table Scan Dept                            \
     est=10.0 act=10 q=1.00 rescans=0 seq=1 rand=0 spill=0 cpu=10\n\
     max q-error: 1.11 at op 0 (Project name, agg0)\n"
    (analyze_text
       "SELECT Dept.name, COUNT(*) FROM Emp, Dept \
        WHERE Emp.did = Dept.did AND Emp.sal > 60000 GROUP BY Dept.name")

(* Engine choice must not change the analyzed actuals (wall clock aside). *)
let test_analyze_engine_independent () =
  let sql =
    "SELECT Emp.name, Dept.name FROM Emp, Dept WHERE Emp.did = Dept.did"
  in
  Alcotest.(check string) "same text under both engines"
    (analyze_text ~engine:`Interpreted sql)
    (analyze_text ~engine:`Batch sql)

(* ------------------------------------------------------------------ *)
(* Property: both engines report identical per-operator actuals — same
   operator ids, same cold row counts, same rescan counts — on random
   data across every plan shape. *)

let mk_catalog rs ss =
  let cat = Storage.Catalog.create () in
  let r = Storage.Catalog.create_table cat ~name:"R"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ] in
  let s = Storage.Catalog.create_table cat ~name:"S"
      ~columns:[ ("a", Value.Tint); ("c", Value.Tint) ] in
  List.iter (fun (a, b) -> Storage.Table.insert r (Tuple.of_list [ a; b ])) rs;
  List.iter (fun (a, c) -> Storage.Table.insert s (Tuple.of_list [ a; c ])) ss;
  cat

let scan t = Exec.Plan.Seq_scan { table = t; alias = t; filter = None }
let pair = ({ Expr.rel = "R"; col = "a" }, { Expr.rel = "S"; col = "a" })

let join_pred =
  Expr.Cmp (Expr.Eq, Expr.col ~rel:"R" ~col:"a", Expr.col ~rel:"S" ~col:"a")

let sort_on rel col input =
  Exec.Plan.Sort
    ([ { Exec.Plan.key = Expr.col ~rel ~col; descending = false } ], input)

let actuals_of run cat plan =
  let ctx = Exec.Context.create ~buffer_pages:4 ~work_mem_pages:2 () in
  let obs = Exec.Instrument.create plan in
  let (_ : Exec.Executor.result) = run ~ctx ~obs cat plan in
  List.map
    (fun (o : Exec.Instrument.op) ->
       (o.Exec.Instrument.id, o.Exec.Instrument.act_rows,
        o.Exec.Instrument.rescans, o.Exec.Instrument.executed))
    (Exec.Instrument.ops obs)

let actuals_agree cat plan =
  actuals_of (fun ~ctx ~obs -> Exec.Executor.run ~ctx ~obs) cat plan
  = actuals_of (fun ~ctx ~obs cat plan -> Exec.Batch.run ~ctx ~obs cat plan)
      cat plan

let kinds = [ Algebra.Inner; Algebra.Semi; Algebra.Anti; Algebra.Left_outer ]

let arb_rows =
  QCheck.(list_of_size Gen.(int_range 0 25)
            (pair (int_range 0 6) (int_range 0 60)))

let prop_actuals_cross_engine =
  QCheck.Test.make ~name:"engines report identical per-operator actuals"
    ~count:50
    (QCheck.pair arb_rows arb_rows)
    (fun (rs, ss) ->
       let mk (a, b) = (Value.Int a, Value.Int b) in
       let cat = mk_catalog (List.map mk rs) (List.map mk ss) in
       let plans =
         List.map
           (fun kind ->
              Exec.Plan.Nested_loop
                { kind; pred = join_pred; outer = scan "R"; inner = scan "S" })
           kinds
         @ List.map
             (fun kind ->
                Exec.Plan.Nested_loop
                  { kind; pred = join_pred; outer = scan "R";
                    inner =
                      Exec.Plan.Filter
                        ( Expr.Cmp
                            (Expr.Ge, Expr.col ~rel:"S" ~col:"c", Expr.int 30),
                          scan "S" ) })
             kinds
         @ List.map
             (fun kind ->
                Exec.Plan.Hash_join
                  { kind; pairs = [ pair ]; residual = Expr.ftrue;
                    left = scan "R"; right = scan "S" })
             kinds
         @ [ Exec.Plan.Nested_loop
               { kind = Algebra.Inner; pred = join_pred; outer = scan "R";
                 inner = Exec.Plan.Materialize (scan "S") };
             Exec.Plan.Merge_join
               { kind = Algebra.Inner; pairs = [ pair ];
                 residual = Expr.ftrue; left = sort_on "R" "a" (scan "R");
                 right = sort_on "S" "a" (scan "S") };
             Exec.Plan.Hash_agg
               { keys = [ (Expr.col ~rel:"R" ~col:"a", "a") ];
                 aggs = [ (Expr.Count_star, "n") ]; input = scan "R" };
             Exec.Plan.Hash_distinct
               (Exec.Plan.Project
                  ([ (Expr.col ~rel:"R" ~col:"a", "a") ], scan "R")) ]
       in
       List.for_all (actuals_agree cat) plans)

(* ------------------------------------------------------------------ *)
(* Trace JSON: every event the pipeline emits must pass the independent
   well-formedness checker, including non-finite bounds. *)

let test_trace_json_wellformed () =
  let cat, db = emp_dept () in
  let sql =
    "SELECT Emp.name, Dept.name FROM Emp, Dept \
     WHERE Emp.did = Dept.did AND Emp.sal > 60000 ORDER BY Emp.name"
  in
  let q = Sql.Binder.query_of_string cat sql in
  let config = { Core.Pipeline.default_config with instrument = true } in
  let _, reports = Core.Pipeline.run_query ~config cat db q in
  let events = List.concat_map (fun r -> r.Core.Pipeline.trace_events) reports in
  Alcotest.(check bool) "pipeline emitted trace events" true (events <> []);
  let lines = String.concat "\n" (List.map Obs.Trace.to_json events) in
  (match Obs.Json.validate_lines lines with
   | Ok () -> ()
   | Error m -> Alcotest.failf "malformed trace JSON: %s" m);
  (* non-finite floats must serialize as null, not as "inf" *)
  let e =
    Obs.Trace.Prune
      { left_mask = 1; right_mask = 2; lower_bound = 3.5; bound = infinity }
  in
  let j = Obs.Trace.to_json e in
  (match Obs.Json.validate j with
   | Ok () -> ()
   | Error m -> Alcotest.failf "malformed JSON for infinite bound: %s" m);
  Alcotest.(check bool) "infinity rendered as null" true
    (String.length j >= 4
     && (let found = ref false in
         String.iteri
           (fun i _ ->
              if i + 4 <= String.length j && String.sub j i 4 = "null" then
                found := true)
           j;
         !found))

let test_trace_events_off_by_default () =
  let cat, db = emp_dept () in
  let sql = "SELECT Emp.name FROM Emp WHERE Emp.sal > 60000" in
  let q = Sql.Binder.query_of_string cat sql in
  let _, reports = Core.Pipeline.run_query cat db q in
  List.iter
    (fun r ->
       Alcotest.(check int) "no trace events" 0
         (List.length r.Core.Pipeline.trace_events);
       Alcotest.(check int) "no op stats" 0
         (List.length r.Core.Pipeline.op_stats))
    reports

(* Regression: per-node estimates must be re-synthesized from the
   plan-time statistics snapshot ([report.stats_at_plan]), not the live
   registry.  [Obs.Est.annotate] rebuilds index-scan bound selectivities
   and scan cardinalities from whatever stats it is handed — against a
   registry refreshed after planning it reports numbers the planner
   never produced. *)
let test_annotate_uses_plan_time_stats () =
  let cat, db = emp_dept () in
  let sql =
    "SELECT Emp.name FROM Emp WHERE Emp.eid < 50 AND Emp.sal > 60000"
  in
  let q = Sql.Binder.query_of_string cat sql in
  let config = { Core.Pipeline.default_config with instrument = true } in
  let _, reports = Core.Pipeline.run_query ~config cat db q in
  let r = List.hd reports in
  let plan = Option.get r.Core.Pipeline.plan in
  let snap = Option.get r.Core.Pipeline.stats_at_plan in
  (* grow the table and refresh the live registry behind the plan's back *)
  let t = Storage.Catalog.table cat "Emp" in
  for i = 0 to 399 do
    Storage.Table.insert t
      (Tuple.of_list
         [ Value.Int (10000 + i); Value.Str "late"; Value.Int (i mod 10);
           Value.Str "dept"; Value.Int 90000; Value.Int 33; Value.Int 1 ])
  done;
  Hashtbl.replace db "Emp" (Stats.Table_stats.analyze t);
  let against dbx =
    let est = Obs.Est.annotate cat dbx plan in
    List.map
      (fun (o : Exec.Instrument.op) -> Obs.Est.card est o.Exec.Instrument.node)
      r.Core.Pipeline.op_stats
  in
  let planned =
    List.map
      (fun (o : Exec.Instrument.op) -> o.Exec.Instrument.est_rows)
      r.Core.Pipeline.op_stats
  in
  Alcotest.(check bool) "snapshot annotation reproduces planner estimates"
    true
    (against snap = planned);
  Alcotest.(check bool) "live-registry annotation diverges after refresh"
    true
    (against db <> planned)

(* Digests are stable fingerprints: equal inputs agree, different inputs
   (here) differ, and the format is 8 hex digits. *)
let test_digest () =
  let d1 = Obs.Trace.digest "select * from Emp" in
  let d2 = Obs.Trace.digest "select * from Emp" in
  let d3 = Obs.Trace.digest "select * from Dept" in
  Alcotest.(check string) "deterministic" d1 d2;
  Alcotest.(check bool) "discriminates" true (d1 <> d3);
  Alcotest.(check int) "8 hex chars" 8 (String.length d1);
  String.iter
    (fun c ->
       Alcotest.(check bool) "hex digit" true
         ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    d1

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [ ( "q-error",
        [ Alcotest.test_case "arithmetic" `Quick test_q_error ] );
      ( "analyze",
        [ Alcotest.test_case "golden join" `Quick test_analyze_golden_join;
          Alcotest.test_case "golden aggregate" `Quick
            test_analyze_golden_agg;
          Alcotest.test_case "engine independent" `Quick
            test_analyze_engine_independent ] );
      ( "cross-engine",
        [ QCheck_alcotest.to_alcotest prop_actuals_cross_engine ] );
      ( "trace",
        [ Alcotest.test_case "json well-formed" `Quick
            test_trace_json_wellformed;
          Alcotest.test_case "off by default" `Quick
            test_trace_events_off_by_default;
          Alcotest.test_case "annotate uses plan-time stats" `Quick
            test_annotate_uses_plan_time_stats;
          Alcotest.test_case "digest" `Quick test_digest ] ) ]
