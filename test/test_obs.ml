(* Observability tests: q-error arithmetic, EXPLAIN ANALYZE golden output
   on the paper's Emp/Dept schema, cross-engine agreement of per-operator
   actuals, and well-formedness of the hand-built trace JSON. *)

open Relalg

(* ------------------------------------------------------------------ *)
(* q-error arithmetic *)

let test_q_error () =
  let q = Obs.Analyze.q_error in
  Alcotest.(check (float 1e-9)) "exact" 1.0 (q ~est:5. ~act:5.);
  Alcotest.(check (float 1e-9)) "underestimate" 2.0 (q ~est:5. ~act:10.);
  Alcotest.(check (float 1e-9)) "overestimate" 4.0 (q ~est:20. ~act:5.);
  Alcotest.(check (float 1e-9)) "both zero" 1.0 (q ~est:0. ~act:0.);
  Alcotest.(check bool) "est zero, rows produced" true
    (q ~est:0. ~act:3. = infinity);
  Alcotest.(check bool) "rows estimated, none produced" true
    (q ~est:3. ~act:0. = infinity)

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE goldens on Emp/Dept (deterministic workload data;
   [show_wall:false] drops the only nondeterministic column) *)

let emp_dept () =
  let w = Workload.Schemas.emp_dept ~emps:200 ~depts:10 () in
  (w.Workload.Schemas.cat, w.Workload.Schemas.db)

let analyze_text ?(engine = `Batch) sql =
  let cat, db = emp_dept () in
  let q = Sql.Binder.query_of_string cat sql in
  let config = { Core.Pipeline.default_config with engine } in
  let _, _, text =
    Core.Pipeline.analyze_query ~config ~show_wall:false cat db q
  in
  text

let test_analyze_golden_join () =
  Alcotest.(check string) "annotated join plan"
    "[ 0] Project Emp.name AS name, Dept.name AS name      \
     est=200.0 act=200 q=1.00 rescans=0 seq=0 rand=0 spill=0 cpu=200\n\
     [ 1]   Hash Join (Emp.did = Dept.did)                 \
     est=200.0 act=200 q=1.00 rescans=0 seq=0 rand=0 spill=0 cpu=410\n\
     [ 2]     Table Scan Emp                               \
     est=200.0 act=200 q=1.00 rescans=0 seq=3 rand=0 spill=0 cpu=200\n\
     [ 3]     Table Scan Dept                              \
     est=10.0 act=10 q=1.00 rescans=0 seq=1 rand=0 spill=0 cpu=10\n\
     max q-error: 1.00 at op 0 (Project Emp.name AS name, Dept.name AS \
     name)\n"
    (analyze_text
       "SELECT Emp.name, Dept.name FROM Emp, Dept WHERE Emp.did = Dept.did")

let test_analyze_golden_agg () =
  Alcotest.(check string) "annotated aggregate plan"
    "[ 0] Project name, agg0                               \
     est=10.0 act=9 q=1.11 rescans=0 seq=0 rand=0 spill=0 cpu=9\n\
     [ 1]   Hash Aggregate [Dept.name | COUNT(*) AS agg0]  \
     est=10.0 act=9 q=1.11 rescans=0 seq=0 rand=0 spill=0 cpu=170\n\
     [ 2]     Hash Join (Emp.did = Dept.did)               \
     est=170.0 act=170 q=1.00 rescans=0 seq=0 rand=0 spill=0 cpu=350\n\
     [ 3]       Table Scan Emp [Emp.sal > 60000]           \
     est=170.0 act=170 q=1.00 rescans=0 seq=3 rand=0 spill=0 cpu=200\n\
     [ 4]       Table Scan Dept                            \
     est=10.0 act=10 q=1.00 rescans=0 seq=1 rand=0 spill=0 cpu=10\n\
     max q-error: 1.11 at op 0 (Project name, agg0)\n"
    (analyze_text
       "SELECT Dept.name, COUNT(*) FROM Emp, Dept \
        WHERE Emp.did = Dept.did AND Emp.sal > 60000 GROUP BY Dept.name")

(* Engine choice must not change the analyzed actuals (wall clock aside). *)
let test_analyze_engine_independent () =
  let sql =
    "SELECT Emp.name, Dept.name FROM Emp, Dept WHERE Emp.did = Dept.did"
  in
  Alcotest.(check string) "same text under both engines"
    (analyze_text ~engine:`Interpreted sql)
    (analyze_text ~engine:`Batch sql)

(* ------------------------------------------------------------------ *)
(* Property: both engines report identical per-operator actuals — same
   operator ids, same cold row counts, same rescan counts — on random
   data across every plan shape. *)

let mk_catalog rs ss =
  let cat = Storage.Catalog.create () in
  let r = Storage.Catalog.create_table cat ~name:"R"
      ~columns:[ ("a", Value.Tint); ("b", Value.Tint) ] in
  let s = Storage.Catalog.create_table cat ~name:"S"
      ~columns:[ ("a", Value.Tint); ("c", Value.Tint) ] in
  List.iter (fun (a, b) -> Storage.Table.insert r (Tuple.of_list [ a; b ])) rs;
  List.iter (fun (a, c) -> Storage.Table.insert s (Tuple.of_list [ a; c ])) ss;
  cat

let scan t = Exec.Plan.Seq_scan { table = t; alias = t; filter = None }
let pair = ({ Expr.rel = "R"; col = "a" }, { Expr.rel = "S"; col = "a" })

let join_pred =
  Expr.Cmp (Expr.Eq, Expr.col ~rel:"R" ~col:"a", Expr.col ~rel:"S" ~col:"a")

let sort_on rel col input =
  Exec.Plan.Sort
    ([ { Exec.Plan.key = Expr.col ~rel ~col; descending = false } ], input)

let actuals_of run cat plan =
  let ctx = Exec.Context.create ~buffer_pages:4 ~work_mem_pages:2 () in
  let obs = Exec.Instrument.create plan in
  let (_ : Exec.Executor.result) = run ~ctx ~obs cat plan in
  List.map
    (fun (o : Exec.Instrument.op) ->
       (o.Exec.Instrument.id, o.Exec.Instrument.act_rows,
        o.Exec.Instrument.rescans, o.Exec.Instrument.executed))
    (Exec.Instrument.ops obs)

let actuals_agree cat plan =
  actuals_of (fun ~ctx ~obs -> Exec.Executor.run ~ctx ~obs) cat plan
  = actuals_of (fun ~ctx ~obs cat plan -> Exec.Batch.run ~ctx ~obs cat plan)
      cat plan

let kinds = [ Algebra.Inner; Algebra.Semi; Algebra.Anti; Algebra.Left_outer ]

let arb_rows =
  QCheck.(list_of_size Gen.(int_range 0 25)
            (pair (int_range 0 6) (int_range 0 60)))

let prop_actuals_cross_engine =
  QCheck.Test.make ~name:"engines report identical per-operator actuals"
    ~count:50
    (QCheck.pair arb_rows arb_rows)
    (fun (rs, ss) ->
       let mk (a, b) = (Value.Int a, Value.Int b) in
       let cat = mk_catalog (List.map mk rs) (List.map mk ss) in
       let plans =
         List.map
           (fun kind ->
              Exec.Plan.Nested_loop
                { kind; pred = join_pred; outer = scan "R"; inner = scan "S" })
           kinds
         @ List.map
             (fun kind ->
                Exec.Plan.Nested_loop
                  { kind; pred = join_pred; outer = scan "R";
                    inner =
                      Exec.Plan.Filter
                        ( Expr.Cmp
                            (Expr.Ge, Expr.col ~rel:"S" ~col:"c", Expr.int 30),
                          scan "S" ) })
             kinds
         @ List.map
             (fun kind ->
                Exec.Plan.Hash_join
                  { kind; pairs = [ pair ]; residual = Expr.ftrue;
                    left = scan "R"; right = scan "S" })
             kinds
         @ [ Exec.Plan.Nested_loop
               { kind = Algebra.Inner; pred = join_pred; outer = scan "R";
                 inner = Exec.Plan.Materialize (scan "S") };
             Exec.Plan.Merge_join
               { kind = Algebra.Inner; pairs = [ pair ];
                 residual = Expr.ftrue; left = sort_on "R" "a" (scan "R");
                 right = sort_on "S" "a" (scan "S") };
             Exec.Plan.Hash_agg
               { keys = [ (Expr.col ~rel:"R" ~col:"a", "a") ];
                 aggs = [ (Expr.Count_star, "n") ]; input = scan "R" };
             Exec.Plan.Hash_distinct
               (Exec.Plan.Project
                  ([ (Expr.col ~rel:"R" ~col:"a", "a") ], scan "R")) ]
       in
       List.for_all (actuals_agree cat) plans)

(* ------------------------------------------------------------------ *)
(* Trace JSON: every event the pipeline emits must pass the independent
   well-formedness checker, including non-finite bounds. *)

let test_trace_json_wellformed () =
  let cat, db = emp_dept () in
  let sql =
    "SELECT Emp.name, Dept.name FROM Emp, Dept \
     WHERE Emp.did = Dept.did AND Emp.sal > 60000 ORDER BY Emp.name"
  in
  let q = Sql.Binder.query_of_string cat sql in
  let config = { Core.Pipeline.default_config with instrument = true } in
  let _, reports = Core.Pipeline.run_query ~config cat db q in
  let events = List.concat_map (fun r -> r.Core.Pipeline.trace_events) reports in
  Alcotest.(check bool) "pipeline emitted trace events" true (events <> []);
  let lines = String.concat "\n" (List.map Obs.Trace.to_json events) in
  (match Obs.Json.validate_lines lines with
   | Ok () -> ()
   | Error m -> Alcotest.failf "malformed trace JSON: %s" m);
  (* non-finite floats must serialize as null, not as "inf" *)
  let e =
    Obs.Trace.Prune
      { left_mask = 1; right_mask = 2; lower_bound = 3.5; bound = infinity }
  in
  let j = Obs.Trace.to_json e in
  (match Obs.Json.validate j with
   | Ok () -> ()
   | Error m -> Alcotest.failf "malformed JSON for infinite bound: %s" m);
  Alcotest.(check bool) "infinity rendered as null" true
    (String.length j >= 4
     && (let found = ref false in
         String.iteri
           (fun i _ ->
              if i + 4 <= String.length j && String.sub j i 4 = "null" then
                found := true)
           j;
         !found))

let test_trace_events_off_by_default () =
  let cat, db = emp_dept () in
  let sql = "SELECT Emp.name FROM Emp WHERE Emp.sal > 60000" in
  let q = Sql.Binder.query_of_string cat sql in
  let _, reports = Core.Pipeline.run_query cat db q in
  List.iter
    (fun r ->
       Alcotest.(check int) "no trace events" 0
         (List.length r.Core.Pipeline.trace_events);
       Alcotest.(check int) "no op stats" 0
         (List.length r.Core.Pipeline.op_stats))
    reports

(* Regression: per-node estimates must be re-synthesized from the
   plan-time statistics snapshot ([report.stats_at_plan]), not the live
   registry.  [Obs.Est.annotate] rebuilds index-scan bound selectivities
   and scan cardinalities from whatever stats it is handed — against a
   registry refreshed after planning it reports numbers the planner
   never produced. *)
let test_annotate_uses_plan_time_stats () =
  let cat, db = emp_dept () in
  let sql =
    "SELECT Emp.name FROM Emp WHERE Emp.eid < 50 AND Emp.sal > 60000"
  in
  let q = Sql.Binder.query_of_string cat sql in
  let config = { Core.Pipeline.default_config with instrument = true } in
  let _, reports = Core.Pipeline.run_query ~config cat db q in
  let r = List.hd reports in
  let plan = Option.get r.Core.Pipeline.plan in
  let snap = Option.get r.Core.Pipeline.stats_at_plan in
  (* grow the table and refresh the live registry behind the plan's back *)
  let t = Storage.Catalog.table cat "Emp" in
  for i = 0 to 399 do
    Storage.Table.insert t
      (Tuple.of_list
         [ Value.Int (10000 + i); Value.Str "late"; Value.Int (i mod 10);
           Value.Str "dept"; Value.Int 90000; Value.Int 33; Value.Int 1 ])
  done;
  Hashtbl.replace db "Emp" (Stats.Table_stats.analyze t);
  let against dbx =
    let est = Obs.Est.annotate cat dbx plan in
    List.map
      (fun (o : Exec.Instrument.op) -> Obs.Est.card est o.Exec.Instrument.node)
      r.Core.Pipeline.op_stats
  in
  let planned =
    List.map
      (fun (o : Exec.Instrument.op) -> o.Exec.Instrument.est_rows)
      r.Core.Pipeline.op_stats
  in
  Alcotest.(check bool) "snapshot annotation reproduces planner estimates"
    true
    (against snap = planned);
  Alcotest.(check bool) "live-registry annotation diverges after refresh"
    true
    (against db <> planned)

(* Digests are stable fingerprints: equal inputs agree, different inputs
   (here) differ, and the format is 8 hex digits. *)
let test_digest () =
  let d1 = Obs.Trace.digest "select * from Emp" in
  let d2 = Obs.Trace.digest "select * from Emp" in
  let d3 = Obs.Trace.digest "select * from Dept" in
  Alcotest.(check string) "deterministic" d1 d2;
  Alcotest.(check bool) "discriminates" true (d1 <> d3);
  Alcotest.(check int) "8 hex chars" 8 (String.length d1);
  String.iter
    (fun c ->
       Alcotest.(check bool) "hex digit" true
         ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    d1

(* ------------------------------------------------------------------ *)
(* Span recorder: golden tree shape on the join query, nesting
   invariants, exception safety. *)

let join_sql =
  "SELECT Emp.name, Dept.name FROM Emp, Dept WHERE Emp.did = Dept.did"

let run_with_spans ?(config = Core.Pipeline.default_config) sql =
  let cat, db = emp_dept () in
  let q = Sql.Binder.query_of_string cat sql in
  let r = Obs.Span.create () in
  let config = { config with Core.Pipeline.spans = Some r } in
  let result, pairs = Core.Pipeline.run_query_full ~config cat db q in
  (result, pairs, Obs.Span.finish r)

let test_span_golden_text () =
  let _, _, root = run_with_spans join_sql in
  Alcotest.(check string) "span tree"
    "[ 0] query\n\
     [ 1]   block\n\
     [ 2]     rewrite\n\
     [ 3]     optimize\n\
     [ 4]       enumerate {relations=2, subsets=3, costed=24, pruned=4}\n\
     [ 5]     execute {engine=batch, dop=1}\n"
    (Obs.Span.render ~show_wall:false root)

let test_span_golden_json () =
  let _, _, root = run_with_spans join_sql in
  let json = Obs.Span.to_json_lines ~show_wall:false root in
  Alcotest.(check string) "span NDJSON"
    ({|{"id":0,"parent":-1,"depth":0,"name":"query"}|} ^ "\n"
    ^ {|{"id":1,"parent":0,"depth":1,"name":"block"}|} ^ "\n"
    ^ {|{"id":2,"parent":1,"depth":2,"name":"rewrite"}|} ^ "\n"
    ^ {|{"id":3,"parent":1,"depth":2,"name":"optimize"}|} ^ "\n"
    ^ {|{"id":4,"parent":3,"depth":3,"name":"enumerate","attrs":{"relations":"2","subsets":"3","costed":"24","pruned":"4"}}|}
    ^ "\n"
    ^ {|{"id":5,"parent":1,"depth":2,"name":"execute","attrs":{"engine":"batch","dop":"1"}}|}
    ^ "\n")
    json;
  (match Obs.Json.validate_lines json with
   | Ok () -> ()
   | Error m -> Alcotest.fail ("span JSON malformed: " ^ m));
  (* with wall clock on, every line must still be well-formed JSON *)
  match Obs.Json.validate_lines (Obs.Span.to_json_lines root) with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("timed span JSON malformed: " ^ m)

(* Stage spans nest: every span is closed, no child outlasts its parent,
   and sequential children never sum past their parent — so per-stage
   latencies are bounded by (and approximately cover) the query total. *)
let test_span_nesting_invariants () =
  let _, _, root = run_with_spans join_sql in
  Obs.Span.iter
    (fun ~depth:_ (s : Obs.Span.t) ->
       Alcotest.(check bool)
         (Printf.sprintf "span %s closed" s.Obs.Span.name)
         true
         (s.Obs.Span.dur_s >= 0.);
       Alcotest.(check bool)
         (Printf.sprintf "children of %s fit inside it" s.Obs.Span.name)
         true
         (Obs.Span.children_dur s <= s.Obs.Span.dur_s +. 1e-9);
       List.iter
         (fun (c : Obs.Span.t) ->
            Alcotest.(check bool) "child starts after parent" true
              (c.Obs.Span.start_s >= s.Obs.Span.start_s))
         s.Obs.Span.children)
    root;
  List.iter
    (fun stage ->
       Alcotest.(check bool) (stage ^ " stage present") true
         (Obs.Span.dur_by_name root stage >= 0.
          && Obs.Span.dur_by_name root stage <= root.Obs.Span.dur_s +. 1e-9))
    [ "rewrite"; "optimize"; "execute" ]

let test_span_exception_safety () =
  let r = Obs.Span.create () in
  (try
     Obs.Span.with_span r "outer" (fun () ->
         let _inner = Obs.Span.enter r "inner" in
         (* [inner] is never stopped: the exception unwinds past it *)
         failwith "boom")
   with Failure _ -> ());
  let root = Obs.Span.finish r in
  Obs.Span.iter
    (fun ~depth:_ (s : Obs.Span.t) ->
       Alcotest.(check bool) (s.Obs.Span.name ^ " closed") true
         (s.Obs.Span.dur_s >= 0.))
    root;
  Alcotest.(check string) "tree intact"
    "[ 0] query\n[ 1]   outer\n[ 2]     inner\n"
    (Obs.Span.render ~show_wall:false root)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event profile: well-formed JSON (checked by the
   independent reader), and at dop > 1 the worker task timelines appear
   on their own threads. *)

let test_profile_trace () =
  let dop = if Domain_pool.available then 4 else 1 in
  let config =
    { Core.Pipeline.default_config with
      Core.Pipeline.instrument = true;
      dop;
      morsel_rows = 16 }
  in
  let _, pairs, root = run_with_spans ~config join_sql in
  let recorders =
    List.mapi
      (fun i (_, rc) ->
         Option.map (fun rc -> (Printf.sprintf "block %d" (i + 1), rc)) rc)
      pairs
    |> List.filter_map Fun.id
  in
  Alcotest.(check bool) "instrumented" true (recorders <> []);
  let json = Obs.Profile.render ~span:root recorders in
  match Obs.Json.parse json with
  | Error m -> Alcotest.fail ("profile JSON malformed: " ^ m)
  | Ok v -> (
    match Obs.Json.member "traceEvents" v with
    | Some (Obs.Json.Arr evs) ->
      Alcotest.(check bool) "has events" true (evs <> []);
      let worker_tasks = ref 0 in
      List.iter
        (fun ev ->
           let mem k = Obs.Json.member k ev in
           (match (mem "name", mem "ph", mem "pid", mem "tid") with
            | Some (Obs.Json.Str _), Some (Obs.Json.Str ph),
              Some (Obs.Json.Num _), Some (Obs.Json.Num tid) ->
              Alcotest.(check bool) "ph is X or M" true
                (ph = "X" || ph = "M");
              if ph = "X" && tid >= 1. then incr worker_tasks;
              if ph = "X" then (
                match (mem "ts", mem "dur") with
                | Some (Obs.Json.Num ts), Some (Obs.Json.Num dur) ->
                  Alcotest.(check bool) "ts/dur non-negative" true
                    (ts >= 0. && dur >= 0.)
                | _ -> Alcotest.fail "complete event missing ts/dur")
            | _ -> Alcotest.fail "event missing name/ph/pid/tid"))
        evs;
      if dop > 1 then
        (* Emp has 200 rows and morsel_rows is 16: the scan must have
           run as parallel tasks, each on a worker thread *)
        Alcotest.(check bool) "worker timeline events present" true
          (!worker_tasks > 0)
    | _ -> Alcotest.fail "profile missing traceEvents")

(* ------------------------------------------------------------------ *)
(* Histogram buckets and percentiles *)

let test_hist_buckets () =
  Obs.Metrics.reset ();
  let name = "test_latency" in
  List.iter (Obs.Metrics.observe_hist name) [ 0.75; 1.0; 1.5; 3.0; 1000.0 ];
  match Obs.Metrics.find_hist name with
  | None -> Alcotest.fail "histogram not registered"
  | Some h ->
    Alcotest.(check int) "count" 5 h.Obs.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 1006.25 h.Obs.Metrics.sum;
    (* power-of-two upper bounds; exact powers land in their own bucket;
       counts are cumulative *)
    Alcotest.(check (list (pair (float 1e-9) int)))
      "cumulative buckets"
      [ (1., 2); (2., 3); (4., 4); (1024., 5) ]
      h.Obs.Metrics.buckets;
    let pct p =
      match Obs.Metrics.percentile h p with
      | Some v -> v
      | None -> Alcotest.fail "percentile on non-empty histogram"
    in
    Alcotest.(check (float 1e-9)) "p0 = first bucket" 1. (pct 0.);
    Alcotest.(check (float 1e-9)) "p50" 2. (pct 0.5);
    Alcotest.(check (float 1e-9)) "p99" 1024. (pct 0.99);
    Alcotest.(check bool) "empty histogram has no percentile" true
      (Obs.Metrics.percentile
         { Obs.Metrics.count = 0; sum = 0.; buckets = [] }
         0.5
       = None)

(* Extreme and invalid observations clamp to the edge buckets instead of
   raising. *)
let test_hist_clamping () =
  Obs.Metrics.reset ();
  let name = "test_clamp" in
  List.iter (Obs.Metrics.observe_hist name) [ 0.; -3.; 1e300; Float.nan ];
  match Obs.Metrics.find_hist name with
  | None -> Alcotest.fail "histogram not registered"
  | Some h ->
    Alcotest.(check int) "all observations kept" 4 h.Obs.Metrics.count;
    Alcotest.(check int) "final cumulative = count" 4
      (snd (List.nth h.Obs.Metrics.buckets
              (List.length h.Obs.Metrics.buckets - 1)))

let hist_seq = ref 0

let prop_percentile_monotone =
  let arb =
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 1e-6 1e6))
  in
  QCheck.Test.make ~name:"percentile is monotone in p and 2x-accurate"
    ~count:100 arb (fun vs ->
      incr hist_seq;
      let name = Printf.sprintf "prop_hist_%d" !hist_seq in
      List.iter (Obs.Metrics.observe_hist name) vs;
      match Obs.Metrics.find_hist name with
      | None -> false
      | Some h ->
        let ps = [ 0.; 0.25; 0.5; 0.75; 0.9; 0.99; 1. ] in
        let vals =
          List.map
            (fun p ->
               match Obs.Metrics.percentile h p with
               | Some v -> v
               | None -> QCheck.Test.fail_report "no percentile")
            ps
        in
        let rec mono = function
          | a :: (b :: _ as rest) -> a <= b && mono rest
          | _ -> true
        in
        let vmin = List.fold_left Float.min infinity vs in
        let vmax = List.fold_left Float.max neg_infinity vs in
        (* every percentile is a bucket upper bound: at least the bucket
           holding the minimum, at most 2x the maximum *)
        mono vals
        && List.for_all (fun v -> v >= vmin /. 2. && v <= vmax *. 2.) vals)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition *)

let contains_line text line =
  List.exists (String.equal line) (String.split_on_char '\n' text)

let test_prometheus_render () =
  Obs.Metrics.reset ();
  Obs.Metrics.incr ~by:3 "widgets";
  Obs.Metrics.observe_max "depth" 2.5;
  List.iter
    (Obs.Metrics.observe_hist (Obs.Metrics.stage_seconds "x"))
    [ 0.5; 0.5; 2.0 ];
  let text = Obs.Prometheus.render () in
  List.iter
    (fun l ->
       Alcotest.(check bool) ("exposition has: " ^ l) true
         (contains_line text l))
    [ "# TYPE qopt_widgets_total counter";
      "qopt_widgets_total 3";
      "qopt_depth 2.5";
      "qopt_stage_seconds_bucket{stage=\"x\",le=\"0.5\"} 2";
      "qopt_stage_seconds_bucket{stage=\"x\",le=\"2\"} 3";
      "qopt_stage_seconds_bucket{stage=\"x\",le=\"+Inf\"} 3";
      "qopt_stage_seconds_count{stage=\"x\"} 3" ];
  Alcotest.(check bool) "histogram sum line present" true
    (List.exists
       (fun l ->
          String.length l > 30
          && String.sub l 0 30 = "qopt_stage_seconds_sum{stage=\"")
       (String.split_on_char '\n' text))

(* The renderer reads typed cells only: hostile metric names (label
   braces, spaces, quotes) must never make it raise. *)
let test_prometheus_never_raises () =
  Obs.Metrics.reset ();
  Obs.Metrics.incr "weird name{with=\"label\", and junk";
  Obs.Metrics.observe_max "another{unclosed" 1.;
  Obs.Metrics.observe_hist "spaces in name" 0.1;
  let text = try Obs.Prometheus.render () with e -> raise e in
  Alcotest.(check bool) "rendered something" true (String.length text > 0)

(* ------------------------------------------------------------------ *)
(* Query log round-trip *)

let qlog_testable =
  Alcotest.testable
    (fun ppf r -> Fmt.string ppf (Obs.Qlog.to_json r))
    ( = )

let test_qlog_roundtrip () =
  let r =
    { Obs.Qlog.ts_us = 1754600000123456;
      query_digest = "e94493f3";
      plan_digest = "82e74e93";
      estimator = "feed\"back\n";
      (* escaping must survive *)
      engine = "batch";
      dop = 4;
      rows = 90;
      total_us = 13111.8;
      stages = [ ("parse", 27.9); ("optimize", 223.2); ("execute", 12743.9) ];
      est_rows = Some 100.;
      act_rows = None;
      max_qerror = Some 1.147;
      feedback_hits = 2;
      feedback_misses = 5 }
  in
  (match Obs.Json.validate (Obs.Qlog.to_json r) with
   | Ok () -> ()
   | Error m -> Alcotest.fail ("qlog JSON malformed: " ^ m));
  match Obs.Qlog.of_json (Obs.Qlog.to_json r) with
  | Ok r' -> Alcotest.check qlog_testable "round-trip" r r'
  | Error m -> Alcotest.fail ("qlog parse failed: " ^ m)

let test_qlog_append () =
  let path = Filename.temp_file "qlog" ".ndjson" in
  let mk i =
    { Obs.Qlog.ts_us = i; query_digest = "q"; plan_digest = "p";
      estimator = "histogram"; engine = "batch"; dop = 1; rows = i;
      total_us = float_of_int i; stages = []; est_rows = None;
      act_rows = None; max_qerror = None; feedback_hits = 0;
      feedback_misses = 0 }
  in
  Obs.Qlog.append ~path (mk 1);
  Obs.Qlog.append ~path (mk 2);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let parsed =
    List.rev_map
      (fun l ->
         match Obs.Qlog.of_json l with
         | Ok r -> r
         | Error m -> Alcotest.fail ("qlog line unparseable: " ^ m))
      !lines
  in
  Alcotest.(check (list qlog_testable)) "append accumulates records"
    [ mk 1; mk 2 ] parsed

(* ------------------------------------------------------------------ *)
(* JSON value parser *)

let test_json_parse () =
  (match Obs.Json.parse {| {"a":[1,true,null,"xA\n"],"b":-2.5e1} |} with
   | Error m -> Alcotest.fail m
   | Ok v -> (
     (match Obs.Json.member "a" v with
      | Some
          (Obs.Json.Arr
             [ Obs.Json.Num n; Obs.Json.Bool true; Obs.Json.Null;
               Obs.Json.Str s ]) ->
        Alcotest.(check (float 0.)) "num" 1. n;
        Alcotest.(check string) "escapes decoded" "xA\n" s
      | _ -> Alcotest.fail "array mismatch");
     match Obs.Json.member "b" v with
     | Some (Obs.Json.Num n) -> Alcotest.(check (float 0.)) "neg exp" (-25.) n
     | _ -> Alcotest.fail "b missing"));
  (match Obs.Json.parse "{\"a\":1,}" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "trailing comma accepted");
  match Obs.Json.parse "[1,2] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

(* ------------------------------------------------------------------ *)
(* Instrument: parallel-phase width mismatches merge instead of being
   dropped; task intervals clamp to non-negative length. *)

let test_record_par_merge () =
  let plan =
    Exec.Plan.Seq_scan { table = "Emp"; alias = "Emp"; filter = None }
  in
  let r = Exec.Instrument.create plan in
  Exec.Instrument.record_par r plan ~dop:2 ~wall:[| 1.; 2. |]
    ~rows:[| 10; 20 |];
  Exec.Instrument.record_par r plan ~dop:4 ~wall:[| 1.; 1.; 1.; 1. |]
    ~rows:[| 1; 1; 1; 1 |];
  Alcotest.(check int) "mismatch surfaced" 1
    (Exec.Instrument.par_mismatches r);
  let op = List.hd (Exec.Instrument.ops r) in
  (match op.Exec.Instrument.par with
   | None -> Alcotest.fail "no par stats recorded"
   | Some p ->
     Alcotest.(check int) "dop is the max" 4 p.Exec.Instrument.par_dop;
     Alcotest.(check (array (float 1e-9))) "wall merged element-wise"
       [| 2.; 3.; 1.; 1. |] p.Exec.Instrument.worker_wall;
     Alcotest.(check (array int)) "rows merged element-wise"
       [| 11; 21; 1; 1 |] p.Exec.Instrument.worker_rows);
  Exec.Instrument.record_task r plan ~worker:1 ~start_s:10. ~end_s:9.;
  match Exec.Instrument.timeline r with
  | [ t ] ->
    Alcotest.(check bool) "task end clamped to start" true
      (t.Exec.Instrument.t_end >= t.Exec.Instrument.t_start)
  | _ -> Alcotest.fail "task not recorded"

(* The monotonic clock never goes backwards, even against a stepping
   system clock (it clamps), and elapsed_s is non-negative. *)
let test_clock_monotone () =
  let prev = ref (Obs.Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Obs.Clock.now () in
    Alcotest.(check bool) "non-decreasing" true (t >= !prev);
    prev := t
  done;
  Alcotest.(check bool) "elapsed non-negative" true
    (Obs.Clock.elapsed_s (Obs.Clock.now () +. 1e6) >= 0.)

let () =
  Alcotest.run "obs"
    [ ( "q-error",
        [ Alcotest.test_case "arithmetic" `Quick test_q_error ] );
      ( "analyze",
        [ Alcotest.test_case "golden join" `Quick test_analyze_golden_join;
          Alcotest.test_case "golden aggregate" `Quick
            test_analyze_golden_agg;
          Alcotest.test_case "engine independent" `Quick
            test_analyze_engine_independent ] );
      ( "cross-engine",
        [ QCheck_alcotest.to_alcotest prop_actuals_cross_engine ] );
      ( "trace",
        [ Alcotest.test_case "json well-formed" `Quick
            test_trace_json_wellformed;
          Alcotest.test_case "off by default" `Quick
            test_trace_events_off_by_default;
          Alcotest.test_case "annotate uses plan-time stats" `Quick
            test_annotate_uses_plan_time_stats;
          Alcotest.test_case "digest" `Quick test_digest ] );
      ( "spans",
        [ Alcotest.test_case "golden tree" `Quick test_span_golden_text;
          Alcotest.test_case "golden json" `Quick test_span_golden_json;
          Alcotest.test_case "nesting invariants" `Quick
            test_span_nesting_invariants;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety ] );
      ( "profile",
        [ Alcotest.test_case "chrome trace well-formed" `Quick
            test_profile_trace ] );
      ( "metrics",
        [ Alcotest.test_case "histogram buckets" `Quick test_hist_buckets;
          Alcotest.test_case "histogram clamping" `Quick test_hist_clamping;
          QCheck_alcotest.to_alcotest prop_percentile_monotone;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_render;
          Alcotest.test_case "prometheus never raises" `Quick
            test_prometheus_never_raises;
          Alcotest.test_case "clock monotone" `Quick test_clock_monotone ] );
      ( "qlog",
        [ Alcotest.test_case "round-trip" `Quick test_qlog_roundtrip;
          Alcotest.test_case "ndjson append" `Quick test_qlog_append;
          Alcotest.test_case "json parser" `Quick test_json_parse ] );
      ( "instrument",
        [ Alcotest.test_case "record_par merge" `Quick
            test_record_par_merge ] ) ]
