(* Tests for the differential fuzzer itself: generator determinism, the
   SQL round-trip property, a bounded smoke run over the full oracle
   grid, replay of the checked-in corpus, and the acceptance check that a
   deliberately injected engine bug is caught and shrunk to a tiny
   repro. *)

(* dune runs tests from _build/default/test; fall back to the source path
   when run from the repo root by hand. *)
let corpus_dir =
  List.find_opt Sys.file_exists
    [ "../fuzz/corpus"; "fuzz/corpus"; "../../../fuzz/corpus" ]

(* ------------------------------------------------------------------ *)
(* Determinism: a case is a pure function of its seed. *)

let test_determinism () =
  List.iter
    (fun seed ->
       let db1, q1 = Fuzz.Gen.case ~seed in
       let db2, q2 = Fuzz.Gen.case ~seed in
       Alcotest.(check bool)
         (Printf.sprintf "seed %d: identical database" seed)
         true
         (Fuzz.Dbspec.equal db1 db2);
       Alcotest.(check string)
         (Printf.sprintf "seed %d: identical SQL" seed)
         (Sql.Printer.query_to_string q1)
         (Sql.Printer.query_to_string q2))
    [ 1; 7; 42; 1000; 99991; 123456 ];
  (* and seeds actually vary the workload *)
  let sqls =
    List.init 20 (fun i ->
        let _, q = Fuzz.Gen.case ~seed:(i + 1) in
        Sql.Printer.query_to_string q)
  in
  Alcotest.(check bool)
    "different seeds generate different queries" true
    (List.length (List.sort_uniq compare sqls) > 10)

(* ------------------------------------------------------------------ *)
(* Round-trip property: print -> re-parse -> re-bind -> structurally
   equal bound tree.  This is the sql-roundtrip oracle in isolation, on
   more seeds than the smoke run covers. *)

let test_roundtrip () =
  for seed = 1 to 150 do
    let spec, q = Fuzz.Gen.case ~seed in
    let cat, _ = Fuzz.Dbspec.build spec in
    let bound = Sql.Binder.bind_query cat q in
    let sql = Sql.Printer.query_to_string q in
    match Sql.Parser.parse sql with
    | [ Sql.Ast.Select_stmt q' ] ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: bound trees equal after round-trip" seed)
        true
        (bound = Sql.Binder.bind_query cat q')
    | _ ->
      Alcotest.failf "seed %d: printed SQL is not a single SELECT: %s" seed
        sql
    | exception e ->
      Alcotest.failf "seed %d: printed SQL does not re-parse (%s): %s" seed
        (Printexc.to_string e) sql
  done

(* ------------------------------------------------------------------ *)
(* Bounded fuzz smoke: the full grid over a fixed seed band must be
   divergence-free. *)

let test_smoke () =
  let failures = Fuzz.Driver.run_range ~seed:1 60 in
  List.iter
    (fun (fc : Fuzz.Driver.failure_case) ->
       Alcotest.failf "seed %d diverged: %s\n%s" fc.Fuzz.Driver.seed
         (Format.asprintf "%a" Fuzz.Oracle.pp_failure fc.Fuzz.Driver.failure)
         (Fuzz.Repro.to_string fc.Fuzz.Driver.repro))
    failures;
  Alcotest.(check int) "no divergences over seeds 1..60" 0
    (List.length failures)

(* ------------------------------------------------------------------ *)
(* Corpus replay: every checked-in repro passes the full grid. *)

let test_corpus () =
  match corpus_dir with
  | None -> Alcotest.fail "fuzz/corpus not found from the test directory"
  | Some dir ->
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".repro")
      |> List.sort compare
    in
    Alcotest.(check bool) "corpus is non-empty" true (files <> []);
    List.iter
      (fun f ->
         let r = Fuzz.Repro.load (Filename.concat dir f) in
         match Fuzz.Repro.replay r with
         | None -> ()
         | Some failure ->
           Alcotest.failf "%s: %s" f
             (Format.asprintf "%a" Fuzz.Oracle.pp_failure failure))
      files

(* ------------------------------------------------------------------ *)
(* Acceptance: injecting a NULL-join-key bug into the batch engine's
   single-int hash path is (a) caught by the multiset oracle, (b) shrunk
   to at most 3 relations, and (c) the saved repro text round-trips and
   replays red with the fault on, green with it off. *)

let test_injected_fault_caught () =
  let found =
    Fun.protect
      ~finally:(fun () -> Exec.Batch.fault_null_key_as_zero := false)
      (fun () ->
         Exec.Batch.fault_null_key_as_zero := true;
         Fuzz.Driver.run_range ~max_failures:1 ~seed:1 300)
  in
  match found with
  | [] -> Alcotest.fail "injected NULL-key fault not caught in seeds 1..300"
  | fc :: _ ->
    Alcotest.(check string) "caught by the multiset oracle" "multiset"
      fc.Fuzz.Driver.failure.Fuzz.Oracle.oracle;
    Alcotest.(check bool) "shrunk to at most 3 relations" true
      (Fuzz.Gen.relation_count fc.Fuzz.Driver.query <= 3);
    (* serialized repro round-trips *)
    let text = Fuzz.Repro.to_string fc.Fuzz.Driver.repro in
    let r = Fuzz.Repro.of_string text in
    Alcotest.(check string) "repro text round-trips" text
      (Fuzz.Repro.to_string r);
    (* red with the fault, green without *)
    let with_fault =
      Fun.protect
        ~finally:(fun () -> Exec.Batch.fault_null_key_as_zero := false)
        (fun () ->
           Exec.Batch.fault_null_key_as_zero := true;
           Fuzz.Repro.replay r)
    in
    Alcotest.(check bool) "repro fails while the fault is injected" true
      (with_fault <> None);
    Alcotest.(check bool) "repro passes once the fault is removed" true
      (Fuzz.Repro.replay r = None)

let () =
  Alcotest.run "fuzz"
    [ ("generator",
       [ Alcotest.test_case "determinism" `Quick test_determinism;
         Alcotest.test_case "sql round-trip" `Quick test_roundtrip ]);
      ("differential",
       [ Alcotest.test_case "smoke: seeds 1..60, full grid" `Quick
           test_smoke;
         Alcotest.test_case "corpus replay" `Quick test_corpus ]);
      ("acceptance",
       [ Alcotest.test_case "injected fault caught and shrunk" `Quick
           test_injected_fault_caught ]) ]
