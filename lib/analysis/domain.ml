(* Abstract domains for the static plan analyzer:

   - intervals over the reals (with open/closed endpoints and infinities)
     describing the possible *non-NULL* values of a column;
   - a two-point nullability lattice;
   - cardinality envelopes [lo, hi] bounding the exact row count of an
     operator's output.

   Everything here is about *provable* facts: meet/meet-style operations
   only ever shrink a set when the shrink is sound, and every widening
   defaults to top.  Estimates live elsewhere (Stats.Derive); these
   domains are what the estimates are checked against. *)

(* ------------------------------------------------------------------ *)
(* Intervals *)

(* Invariant: [lo <= hi].  [lo = neg_infinity] / [hi = infinity] encode
   unbounded sides; an infinite endpoint is always open.  The interval
   constrains only non-NULL values — NULL is tracked separately, so
   NULL-padding (outer joins) never invalidates an interval. *)
type interval = {
  lo : float;
  lo_open : bool;
  hi : float;
  hi_open : bool;
}

let top =
  { lo = neg_infinity; lo_open = true; hi = infinity; hi_open = true }

let is_top (i : interval) = i.lo = neg_infinity && i.hi = infinity

let point v = { lo = v; lo_open = false; hi = v; hi_open = false }

let at_least ?(strict = false) v =
  { lo = v; lo_open = strict; hi = infinity; hi_open = true }

let at_most ?(strict = false) v =
  { lo = neg_infinity; lo_open = true; hi = v; hi_open = strict }

let closed lo hi = { lo; lo_open = false; hi; hi_open = false }

(* An interval is empty when its endpoints cross, or touch with an open
   side. *)
let is_empty (i : interval) =
  i.lo > i.hi || (i.lo = i.hi && (i.lo_open || i.hi_open))

(* Greatest lower bound; [None] when the intersection is empty. *)
let meet (a : interval) (b : interval) : interval option =
  let lo, lo_open =
    if a.lo > b.lo then (a.lo, a.lo_open)
    else if b.lo > a.lo then (b.lo, b.lo_open)
    else (a.lo, a.lo_open || b.lo_open)
  in
  let hi, hi_open =
    if a.hi < b.hi then (a.hi, a.hi_open)
    else if b.hi < a.hi then (b.hi, b.hi_open)
    else (a.hi, a.hi_open || b.hi_open)
  in
  let m = { lo; lo_open; hi; hi_open } in
  if is_empty m then None else Some m

(* Least upper bound (convex hull). *)
let join (a : interval) (b : interval) : interval =
  let lo, lo_open =
    if a.lo < b.lo then (a.lo, a.lo_open)
    else if b.lo < a.lo then (b.lo, b.lo_open)
    else (a.lo, a.lo_open && b.lo_open)
  in
  let hi, hi_open =
    if a.hi > b.hi then (a.hi, a.hi_open)
    else if b.hi > a.hi then (b.hi, b.hi_open)
    else (a.hi, a.hi_open && b.hi_open)
  in
  { lo; lo_open; hi; hi_open }

let contains (i : interval) (v : float) =
  (v > i.lo || (v = i.lo && not i.lo_open))
  && (v < i.hi || (v = i.hi && not i.hi_open))

(* Restricted to integer values, is the interval empty?  Used only for
   contradiction detection on int-typed columns (e.g. x > 5 AND x < 6);
   never to tighten emitted predicates. *)
let is_empty_int (i : interval) =
  is_empty i
  ||
  (* smallest / largest integer inside the interval *)
  let lo =
    if i.lo = neg_infinity then neg_infinity
    else if i.lo_open then floor i.lo +. 1.
    else ceil i.lo
  and hi =
    if i.hi = infinity then infinity
    else if i.hi_open then ceil i.hi -. 1.
    else floor i.hi
  in
  lo > hi

(* Interval arithmetic for the few operators the analyzer propagates
   through projections. *)
let add (a : interval) (b : interval) =
  { lo = a.lo +. b.lo;
    lo_open = a.lo_open || b.lo_open;
    hi = a.hi +. b.hi;
    hi_open = a.hi_open || b.hi_open }

let neg (a : interval) =
  { lo = -.a.hi; lo_open = a.hi_open; hi = -.a.lo; hi_open = a.lo_open }

let sub a b = add a (neg b)

let pp_interval ppf (i : interval) =
  Fmt.pf ppf "%c%g, %g%c"
    (if i.lo_open then '(' else '[')
    i.lo i.hi
    (if i.hi_open then ')' else ']')

(* ------------------------------------------------------------------ *)
(* Nullability *)

type nullability = Non_null | Maybe_null

let null_join a b =
  match (a, b) with Non_null, Non_null -> Non_null | _ -> Maybe_null

let pp_nullability ppf = function
  | Non_null -> Fmt.string ppf "non-null"
  | Maybe_null -> Fmt.string ppf "maybe-null"

(* ------------------------------------------------------------------ *)
(* Abstract column values *)

type aval = {
  itv : interval;  (* possible non-NULL values (numeric columns) *)
  null : nullability;
  ty : Relalg.Value.ty option;  (* when statically known *)
}

let aval_top = { itv = top; null = Maybe_null; ty = None }

let aval_join a b =
  { itv = join a.itv b.itv;
    null = null_join a.null b.null;
    ty = (if a.ty = b.ty then a.ty else None) }

let pp_aval ppf (a : aval) =
  Fmt.pf ppf "%a %a" pp_interval a.itv pp_nullability a.null

(* ------------------------------------------------------------------ *)
(* Cardinality envelopes *)

(* Provable bounds on the exact output row count: lo <= |output| <= hi.
   [hi = infinity] means unbounded above. *)
type envelope = { e_lo : float; e_hi : float }

let env_top = { e_lo = 0.; e_hi = infinity }
let env_exact n = { e_lo = n; e_hi = n }
let env_empty = { e_lo = 0.; e_hi = 0. }
let env_is_empty (e : envelope) = e.e_hi <= 0.

let env_join a b =
  { e_lo = Float.min a.e_lo b.e_lo; e_hi = Float.max a.e_hi b.e_hi }

let env_contains (e : envelope) (n : float) = n >= e.e_lo && n <= e.e_hi

let pp_envelope ppf (e : envelope) =
  if e.e_hi = infinity then Fmt.pf ppf "[%g, inf)" e.e_lo
  else Fmt.pf ppf "[%g, %g]" e.e_lo e.e_hi
