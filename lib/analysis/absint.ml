(* The abstract interpreter: a bottom-up pass over logical plans, QGM
   blocks and physical plans computing, per operator output:

   - per-column abstract values (interval of possible non-NULL values,
     nullability, static type) keyed by (relation alias, column name);
   - unique column sets ("keys"): a [uniq] entry lists columns whose
     non-NULL values never repeat across rows, so an equality probe on
     all of them matches at most one row.  The empty set [[]] asserts
     the stream itself has at most one row;
   - a provable cardinality envelope [e_lo, e_hi].

   Soundness discipline: base facts come only from exact sources —
   catalog NOT NULL declarations, and Table_stats built by full scans
   (rows, null_frac, n_distinct and min_v/max_v are exact there).
   Predicate refinement uses SQL three-valued logic: a WHERE conjunct
   keeps a row only when it evaluates to TRUE, which in particular
   forces strictly-evaluated operands to be non-NULL.  Anything the
   analyzer cannot prove stays at top. *)

open Relalg
open Domain
module Qgm = Rewrite.Qgm

type key = string * string (* (relation alias, column name) *)

type state = {
  cols : (key * aval) list;
  uniq : key list list;
  env : envelope;
}

let top_state = { cols = []; uniq = []; env = env_top }

(* The one-row relation (SELECT without FROM / scalar aggregate). *)
let unit_state = { cols = []; uniq = [ [] ]; env = env_exact 1. }

let set_env st env = { st with env }

let col_aval (st : state) name =
  match List.assoc_opt ("", name) st.cols with
  | Some a -> Some a
  | None -> (
    match List.filter (fun ((_, n), _) -> n = name) st.cols with
    | [ (_, a) ] -> Some a
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Column resolution *)

(* Resolve a reference against local columns first, then an enclosing
   (correlation) context.  An unqualified reference must be unambiguous
   to resolve. *)
let lookup ?(outer = []) (cols : (key * aval) list) (c : Expr.col_ref) :
  [ `Local of aval | `Outer of aval | `Unknown ] =
  let find cs =
    if c.Expr.rel <> "" then List.assoc_opt (c.Expr.rel, c.Expr.col) cs
    else
      match List.filter (fun ((_, n), _) -> n = c.Expr.col) cs with
      | [ (_, a) ] -> Some a
      | _ -> None
  in
  match find cols with
  | Some a -> `Local a
  | None -> (
    match find outer with Some a -> `Outer a | None -> `Unknown)

let local_key ?(outer = []) cols (c : Expr.col_ref) : key option =
  match lookup ~outer cols c with
  | `Local _ ->
    if c.Expr.rel <> "" then Some (c.Expr.rel, c.Expr.col)
    else (
      match List.filter (fun ((_, n), _) -> n = c.Expr.col) cols with
      | [ (k, _) ] -> Some k
      | _ -> None)
  | _ -> None

let update_col cols k f =
  List.map (fun (k', a) -> if k' = k then (k', f a) else (k', a)) cols

(* ------------------------------------------------------------------ *)
(* Predicate refinement: [assume st e] is the strongest state provable
   when [e] evaluates to TRUE on a row of [st]; [None] means [e] can
   never be TRUE (the conjunct is unsatisfiable). *)

(* Columns whose NULL forces the whole expression to NULL. *)
let rec strict_cols (e : Expr.t) : Expr.col_ref list =
  match e with
  | Expr.Col c -> [ c ]
  | Expr.Binop (_, a, b) -> strict_cols a @ strict_cols b
  | _ -> []

let interval_of_cmp op f =
  match op with
  | Expr.Eq -> Some (point f)
  | Expr.Lt -> Some (at_most ~strict:true f)
  | Expr.Le -> Some (at_most f)
  | Expr.Gt -> Some (at_least ~strict:true f)
  | Expr.Ge -> Some (at_least f)
  | Expr.Neq -> None

let flip = function
  | Expr.Eq -> Expr.Eq
  | Expr.Neq -> Expr.Neq
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le

let negate = function
  | Expr.Eq -> Expr.Neq
  | Expr.Neq -> Expr.Eq
  | Expr.Lt -> Expr.Ge
  | Expr.Le -> Expr.Gt
  | Expr.Gt -> Expr.Le
  | Expr.Ge -> Expr.Lt

(* Is the meet empty, taking int-typed columns into account?  The int
   tightening is used only to detect contradictions, never to produce
   tightened bounds. *)
let meet_for (a : aval) (i : interval) : interval option =
  match Domain.meet a.itv i with
  | None -> None
  | Some m ->
    if a.ty = Some Value.Tint && is_empty_int m then None else Some m

let refine_nonnull ~outer cols (c : Expr.col_ref) :
  (key * aval) list option =
  match lookup ~outer cols c with
  | `Local a | `Outer a -> (
    (* a column constrained to be non-NULL while provably always NULL
       cannot happen here: we never track "always NULL", so just refine
       the local entry when there is one *)
    ignore a;
    match local_key ~outer cols c with
    | Some k -> Some (update_col cols k (fun a -> { a with null = Non_null }))
    | None -> Some cols)
  | `Unknown -> Some cols

let refine_itv ~outer cols (c : Expr.col_ref) (i : interval) :
  (key * aval) list option =
  match local_key ~outer cols c with
  | None -> (
    (* outer or unknown: still usable for contradiction detection *)
    match lookup ~outer cols c with
    | `Outer a -> (
      match meet_for a i with None -> None | Some _ -> Some cols)
    | _ -> Some cols)
  | Some k -> (
    match List.assoc_opt k cols with
    | None -> Some cols
    | Some a -> (
      match meet_for a i with
      | None -> None
      | Some m -> Some (update_col cols k (fun a -> { a with itv = m }))))

let join_cols c1 c2 =
  List.map
    (fun (k, a1) ->
       match List.assoc_opt k c2 with
       | Some a2 -> (k, aval_join a1 a2)
       | None -> (k, a1))
    c1

let rec assume_cols ~outer (cols : (key * aval) list) (e : Expr.t) :
  (key * aval) list option =
  let nonnull_operands a b cols =
    List.fold_left
      (fun acc c ->
         Option.bind acc (fun cols -> refine_nonnull ~outer cols c))
      (Some cols)
      (strict_cols a @ strict_cols b)
  in
  match e with
  | Expr.Const (Value.Bool true) -> Some cols
  | Expr.Const (Value.Bool false) | Expr.Const Value.Null -> None
  | Expr.Const _ -> Some cols
  | Expr.And (a, b) ->
    Option.bind (assume_cols ~outer cols a) (fun cols ->
        assume_cols ~outer cols b)
  | Expr.Or (a, b) -> (
    match (assume_cols ~outer cols a, assume_cols ~outer cols b) with
    | None, None -> None
    | Some c, None | None, Some c -> Some c
    | Some c1, Some c2 -> Some (join_cols c1 c2))
  | Expr.Not a -> assume_not ~outer cols a
  | Expr.Is_null (Expr.Col c) -> (
    match lookup ~outer cols c with
    | `Local { null = Non_null; _ } | `Outer { null = Non_null; _ } -> None
    | _ -> Some cols)
  | Expr.Is_null _ -> Some cols
  | Expr.Col c -> refine_nonnull ~outer cols c
  | Expr.Cmp (op, a, b) -> (
    match (a, b) with
    | Expr.Const va, Expr.Const vb -> (
      match Value.sql_cmp va vb with
      | None -> None (* UNKNOWN is never TRUE *)
      | Some s -> if Expr.compare_op op s then Some cols else None)
    | Expr.Col c, Expr.Const v | Expr.Const v, Expr.Col c -> (
      let op = match a with Expr.Col _ -> op | _ -> flip op in
      if Value.is_null v then None
      else
        Option.bind (refine_nonnull ~outer cols c) @@ fun cols ->
        match Value.to_float v with
        | None ->
          (* non-numeric comparison: nullability info only *)
          Some cols
        | Some f -> (
          match interval_of_cmp op f with
          | Some i -> refine_itv ~outer cols c i
          | None -> (
            (* Neq: unsat when the column is pinned to exactly f *)
            match lookup ~outer cols c with
            | `Local { itv; _ } | `Outer { itv; _ }
              when itv.lo = f && itv.hi = f && not itv.lo_open
                   && not itv.hi_open ->
              None
            | _ -> Some cols)))
    | Expr.Col ca, Expr.Col cb -> (
      Option.bind (refine_nonnull ~outer cols ca) @@ fun cols ->
      Option.bind (refine_nonnull ~outer cols cb) @@ fun cols ->
      let aval_of c =
        match lookup ~outer cols c with
        | `Local a | `Outer a -> a
        | `Unknown -> aval_top
      in
      let ia = (aval_of ca).itv and ib = (aval_of cb).itv in
      match op with
      | Expr.Eq ->
        (* both sides live in the intersection *)
        Option.bind (refine_itv ~outer cols ca ib) @@ fun cols ->
        refine_itv ~outer cols cb ia
      | Expr.Lt | Expr.Le ->
        let strict = op = Expr.Lt in
        let upper =
          { lo = neg_infinity; lo_open = true; hi = ib.hi;
            hi_open = strict || ib.hi_open }
        and lower =
          { lo = ia.lo; lo_open = strict || ia.lo_open; hi = infinity;
            hi_open = true }
        in
        Option.bind (refine_itv ~outer cols ca upper) @@ fun cols ->
        refine_itv ~outer cols cb lower
      | Expr.Gt | Expr.Ge ->
        assume_cols ~outer cols (Expr.Cmp (flip op, Expr.Col cb, Expr.Col ca))
      | Expr.Neq -> Some cols)
    | _ ->
      (* general operands: TRUE still forces strictly-evaluated columns
         to be non-NULL *)
      nonnull_operands a b cols)
  | Expr.Binop _ -> Some cols
  | Expr.Udf _ -> Some cols

and assume_not ~outer cols (e : Expr.t) : (key * aval) list option =
  match e with
  | Expr.Const (Value.Bool false) -> Some cols
  | Expr.Const (Value.Bool true) | Expr.Const Value.Null -> None
  | Expr.Const _ -> Some cols
  | Expr.Not a -> assume_cols ~outer cols a
  | Expr.And (a, b) ->
    assume_cols ~outer cols (Expr.Or (Expr.Not a, Expr.Not b))
  | Expr.Or (a, b) ->
    assume_cols ~outer cols (Expr.And (Expr.Not a, Expr.Not b))
  | Expr.Cmp (op, a, b) ->
    (* NOT (a op b) is TRUE iff (a negate-op b) is TRUE *)
    assume_cols ~outer cols (Expr.Cmp (negate op, a, b))
  | Expr.Is_null (Expr.Col c) -> refine_nonnull ~outer cols c
  | _ -> Some cols

let assume ?(outer = []) (st : state) (e : Expr.t) : state option =
  match assume_cols ~outer st.cols e with
  | None -> None
  | Some cols -> Some { st with cols }

(* ------------------------------------------------------------------ *)
(* Abstract evaluation of scalar expressions (projection outputs) *)

let rec aval_of_expr ?(outer = []) (cols : (key * aval) list) (e : Expr.t) :
  aval =
  match e with
  | Expr.Col c -> (
    match lookup ~outer cols c with `Local a | `Outer a -> a | `Unknown -> aval_top)
  | Expr.Const Value.Null -> { itv = top; null = Maybe_null; ty = None }
  | Expr.Const v ->
    { itv = (match Value.to_float v with Some f -> point f | None -> top);
      null = Non_null;
      ty = Value.type_of v }
  | Expr.Binop (op, a, b) -> (
    let aa = aval_of_expr ~outer cols a and ab = aval_of_expr ~outer cols b in
    let null = null_join aa.null ab.null in
    match op with
    | Expr.Add -> { itv = Domain.add aa.itv ab.itv; null; ty = None }
    | Expr.Sub -> { itv = Domain.sub aa.itv ab.itv; null; ty = None }
    | Expr.Mul -> { itv = top; null; ty = None }
    | Expr.Div | Expr.Mod ->
      (* division by zero yields NULL *)
      { itv = top; null = Maybe_null; ty = None })
  | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ ->
    { itv = top; null = Maybe_null; ty = Some Value.Tbool }
  | Expr.Is_null _ -> { itv = top; null = Non_null; ty = Some Value.Tbool }
  | Expr.Udf _ -> aval_top

(* ------------------------------------------------------------------ *)
(* Base relations *)

(* Exact column facts from a full-scan ANALYZE: null_frac and n_distinct
   are exact, min_v/max_v are sound bounds (unlike the outlier-robust
   lo/hi used by the estimator). *)
let scan ?db ~table ~alias (schema : Schema.t) : state =
  let stats = Option.bind db (fun d -> Stats.Table_stats.find d table) in
  let cols =
    List.map
      (fun (c : Schema.column) ->
         let base =
           { itv = top;
             null = (if c.Schema.nullable then Maybe_null else Non_null);
             ty = Some c.Schema.ty }
         in
         let a =
           match Option.bind stats (fun t -> Stats.Table_stats.col t c.Schema.name) with
           | None -> base
           | Some cs ->
             let itv =
               match (cs.Stats.Table_stats.min_v, cs.Stats.Table_stats.max_v)
               with
               | Some lo, Some hi -> closed lo hi
               | _ -> top
             in
             let null =
               if cs.Stats.Table_stats.null_frac = 0. then Non_null
               else base.null
             in
             { base with itv; null }
         in
         ((alias, c.Schema.name), a))
      schema
  in
  match stats with
  | None -> { cols; uniq = []; env = env_top }
  | Some ts ->
    let rows = ts.Stats.Table_stats.rows in
    let uniq =
      (if rows <= 1. then [ [] ] else [])
      @ List.filter_map
          (fun (c : Schema.column) ->
             match Stats.Table_stats.col ts c.Schema.name with
             | Some cs
               when cs.Stats.Table_stats.n_distinct
                    >= (rows *. (1. -. cs.Stats.Table_stats.null_frac)) -. 0.5
                    && rows > 0. ->
               Some [ (alias, c.Schema.name) ]
             | _ -> None)
          schema
    in
    { cols; uniq; env = env_exact rows }

(* ------------------------------------------------------------------ *)
(* Cardinality combinators *)

let mul_card a b = if a = 0. || b = 0. then 0. else a *. b

(* Cross product of independent streams. *)
let cross (a : state) (b : state) : state =
  let uniq =
    List.concat_map (fun ua -> List.map (fun ub -> ua @ ub) b.uniq) a.uniq
    @ (if a.env.e_hi <= 1. then b.uniq else [])
    @ if b.env.e_hi <= 1. then a.uniq else []
  in
  { cols = a.cols @ b.cols;
    uniq;
    env =
      { e_lo = mul_card a.env.e_lo b.env.e_lo;
        e_hi = mul_card a.env.e_hi b.env.e_hi } }

(* Equality edges extracted from conjuncts: column = column and
   column = non-NULL constant. *)
type eq_partner = P_col of key | P_const

let eq_edges ~outer (cols : (key * aval) list) (conjuncts : Expr.t list) :
  (key * eq_partner) list =
  List.concat_map
    (fun c ->
       match c with
       | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) -> (
         match (local_key ~outer cols a, local_key ~outer cols b) with
         | Some ka, Some kb -> [ (ka, P_col kb); (kb, P_col ka) ]
         | Some ka, None -> [ (ka, P_const) ] (* bound by correlation *)
         | None, Some kb -> [ (kb, P_const) ]
         | None, None -> [])
       | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Const v)
       | Expr.Cmp (Expr.Eq, Expr.Const v, Expr.Col a)
         when not (Value.is_null v) -> (
         match local_key ~outer cols a with
         | Some ka -> [ (ka, P_const) ]
         | None -> [])
       | _ -> [])
    conjuncts

(* Key-join elimination: a source whose unique column set is fully bound
   by equalities to constants or to columns of *other remaining* sources
   contributes at most one row per combination of the rest, so its
   cardinality factor drops to 1.  Greedy, restarting after each
   elimination; an eliminated source can no longer justify another
   (which blocks the unsound circular case R.a = S.a eliminating
   both). *)
let eliminate_hi (srcs : state list) (edges : (key * eq_partner) list) :
  float =
  if List.exists (fun s -> s.env.e_hi <= 0.) srcs then 0.
  else begin
    let n = List.length srcs in
    let arr = Array.of_list srcs in
    let owner k =
      let rec go i =
        if i >= n then None
        else if List.mem_assoc k arr.(i).cols then Some i
        else go (i + 1)
      in
      go 0
    in
    let remaining = Array.make n true in
    let bound_elsewhere i k =
      List.exists
        (fun (k', p) ->
           k' = k
           &&
           match p with
           | P_const -> true
           | P_col pk -> (
             match owner pk with
             | Some j -> j <> i && remaining.(j)
             | None -> false))
        edges
    in
    let progress = ref true in
    while !progress do
      progress := false;
      for i = 0 to n - 1 do
        if
          remaining.(i)
          && List.exists
               (fun u -> List.for_all (bound_elsewhere i) u)
               arr.(i).uniq
        then begin
          remaining.(i) <- false;
          progress := true
        end
      done
    done;
    let hi = ref 1. in
    Array.iteri
      (fun i s -> if remaining.(i) then hi := mul_card !hi s.env.e_hi)
      arr;
    !hi
  end

(* ------------------------------------------------------------------ *)
(* Operator transfer functions *)

(* Selection under a conjunct list (already TRUE-filtered rows). *)
let select_conjuncts ?(outer = []) (st : state) (conjuncts : Expr.t list) :
  state =
  if conjuncts = [] then st
  else
    let refined =
      List.fold_left
        (fun acc c -> Option.bind acc (fun st -> assume ~outer st c))
        (Some st) conjuncts
    in
    match refined with
    | None -> { st with env = env_empty }
    | Some st' -> { st' with env = { e_lo = 0.; e_hi = st.env.e_hi } }

(* Inner join: cross product, predicate refinement, key-join bound. *)
let inner_join ?(outer = []) (l : state) (r : state) (pred : Expr.t) : state
  =
  let conjuncts = Pred.conjuncts pred in
  let crossed = cross l r in
  let st = select_conjuncts ~outer crossed conjuncts in
  if env_is_empty st.env then st
  else
    let hi =
      Float.min st.env.e_hi
        (eliminate_hi [ l; r ] (eq_edges ~outer crossed.cols conjuncts))
    in
    let lo = if conjuncts = [] then crossed.env.e_lo else 0. in
    { st with env = { e_lo = lo; e_hi = hi } }

(* Left outer join: left rows are preserved; right columns become
   nullable but keep their intervals (an output row's right side is
   either NULL-padded or comes from a match, which satisfied the
   predicate). *)
let left_outer_join ?(outer = []) (l : state) (r : state) (pred : Expr.t) :
  state =
  let conjuncts = Pred.conjuncts pred in
  let combined = cross l r in
  let refined =
    match
      List.fold_left
        (fun acc c -> Option.bind acc (fun st -> assume ~outer st c))
        (Some combined) conjuncts
    with
    | Some st -> st
    | None -> combined (* no match ever: all rows NULL-padded *)
  in
  let cols =
    List.map
      (fun (k, a) ->
         if List.mem_assoc k r.cols then
           (* refined interval applies to matched rows; unmatched rows
              are NULL there, which intervals do not constrain *)
           (k, { (List.assoc k refined.cols) with null = Maybe_null })
         else (k, a))
      combined.cols
  in
  let right_unique =
    eliminate_hi [ r ] (eq_edges ~outer combined.cols conjuncts) <= 1.
  in
  let e_hi =
    if right_unique then l.env.e_hi
    else mul_card l.env.e_hi (Float.max 1. r.env.e_hi)
  in
  let uniq =
    (if right_unique then l.uniq else [])
    @ List.concat_map
        (fun ua -> List.map (fun ub -> ua @ ub) r.uniq)
        l.uniq
  in
  { cols; uniq; env = { e_lo = l.env.e_lo; e_hi } }

(* Semi/anti join: output columns are the left's.  The semijoin
   predicate refines left columns (kept rows satisfied it); the
   antijoin refines nothing. *)
let semi_join ?(outer = []) ~anti (l : state) (r : state) (pred : Expr.t) :
  state =
  if anti then
    if env_is_empty r.env then l
    else { l with env = { e_lo = 0.; e_hi = l.env.e_hi } }
  else if env_is_empty r.env then { l with env = env_empty }
  else
    let combined = cross l r in
    let refined =
      List.fold_left
        (fun acc c -> Option.bind acc (fun st -> assume ~outer st c))
        (Some combined) (Pred.conjuncts pred)
    in
    match refined with
    | None -> { l with env = env_empty }
    | Some st ->
      let cols =
        List.map (fun (k, _) -> (k, List.assoc k st.cols)) l.cols
      in
      { l with cols; env = { e_lo = 0.; e_hi = l.env.e_hi } }

(* Grouping.  Keyed grouping of a nonempty input yields between 1 and
   |input| groups (each group is nonempty); of a provably empty input,
   exactly 0.  A scalar aggregate (no keys) always emits exactly one
   row, even over empty input. *)
let group ?(outer = []) (st : state) ~(keys : (Expr.t * string) list)
    ~(aggs : (Expr.agg * string) list) : state =
  let in_env = st.env in
  let key_cols =
    List.map
      (fun (e, alias) -> (("", alias), aval_of_expr ~outer st.cols e))
      keys
  in
  let keyed = keys <> [] in
  (* a keyed group is nonempty; a scalar aggregate's "group" is the
     whole input, possibly empty *)
  let group_nonempty = keyed || in_env.e_lo >= 1. in
  let agg_cols =
    List.map
      (fun ((g : Expr.agg), alias) ->
         let a =
           match g with
           | Expr.Count_star ->
             let itv =
               if keyed then
                 { lo = 1.; lo_open = false; hi = in_env.e_hi;
                   hi_open = in_env.e_hi = infinity }
               else
                 { lo = in_env.e_lo; lo_open = false; hi = in_env.e_hi;
                   hi_open = in_env.e_hi = infinity }
             in
             { itv; null = Non_null; ty = Some Value.Tint }
           | Expr.Count arg ->
             ignore arg;
             { itv =
                 { lo = 0.; lo_open = false; hi = in_env.e_hi;
                   hi_open = in_env.e_hi = infinity };
               null = Non_null;
               ty = Some Value.Tint }
           | Expr.Min arg | Expr.Max arg ->
             let av = aval_of_expr ~outer st.cols arg in
             { itv = av.itv;
               null =
                 (if group_nonempty && av.null = Non_null then Non_null
                  else Maybe_null);
               ty = av.ty }
           | Expr.Avg arg ->
             (* the mean of values in [lo, hi] stays in [lo, hi] *)
             let av = aval_of_expr ~outer st.cols arg in
             { itv = av.itv;
               null =
                 (if group_nonempty && av.null = Non_null then Non_null
                  else Maybe_null);
               ty = Some Value.Tfloat }
           | Expr.Sum arg ->
             let av = aval_of_expr ~outer st.cols arg in
             { itv = top;
               null =
                 (if group_nonempty && av.null = Non_null then Non_null
                  else Maybe_null);
               ty = None }
         in
         (("", alias), a))
      aggs
  in
  let env =
    if not keyed then env_exact 1.
    else if env_is_empty in_env then env_empty
    else { e_lo = Float.min 1. in_env.e_lo; e_hi = in_env.e_hi }
  in
  { cols = key_cols @ agg_cols;
    uniq = [ List.map fst key_cols ];
    env }

(* Projection: rename/derive output columns, keep unique sets whose
   members survive as plain column references. *)
let project ?(outer = []) (st : state) (items : (Expr.t * string) list) :
  state =
  let cols =
    List.map
      (fun (e, alias) -> (("", alias), aval_of_expr ~outer st.cols e))
      items
  in
  let renaming =
    List.filter_map
      (fun (e, alias) ->
         match e with
         | Expr.Col c -> (
           match local_key ~outer st.cols c with
           | Some k -> Some (k, ("", alias))
           | None -> None)
         | _ -> None)
      items
  in
  let uniq =
    List.filter_map
      (fun u ->
         let mapped = List.filter_map (fun k -> List.assoc_opt k renaming) u in
         if List.length mapped = List.length u then Some mapped else None)
      st.uniq
  in
  { cols; uniq; env = st.env }

(* DISTINCT: at least one row survives when the input is provably
   nonempty; the full output column set becomes a key. *)
let distinct (st : state) : state =
  let e_lo = if st.env.e_lo >= 1. then 1. else 0. in
  { st with
    env = { st.env with e_lo };
    uniq = List.map fst st.cols :: st.uniq }

(* UNION / UNION ALL of two streams with identical arity: positional
   join of column facts. *)
let union ~all (a : state) (b : state) : state =
  let cols =
    List.map2
      (fun (k, va) (_, vb) -> (k, aval_join va vb))
      a.cols b.cols
  in
  let env =
    if all then
      { e_lo = a.env.e_lo +. b.env.e_lo; e_hi = a.env.e_hi +. b.env.e_hi }
    else
      { e_lo = (if a.env.e_lo >= 1. || b.env.e_lo >= 1. then 1. else 0.);
        e_hi = a.env.e_hi +. b.env.e_hi }
  in
  { cols; uniq = []; env }

(* ------------------------------------------------------------------ *)
(* QGM blocks *)

let requalify_state (st : state) ~alias : state =
  let rename (_, n) = (alias, n) in
  { cols = List.map (fun (k, a) -> (rename k, a)) st.cols;
    uniq = List.map (List.map rename) st.uniq;
    env = st.env }

let rec of_block ?db ?(outer = []) (b : Qgm.block) : state =
  let src_states = List.map (source_state ?db ~outer) b.Qgm.from in
  let base =
    match src_states with
    | [] -> unit_state
    | s :: rest -> List.fold_left cross s rest
  in
  (* WHERE: plain conjuncts refine; subquery predicates can prove
     emptiness (e IN (empty) and scalar comparisons against an empty
     block are never TRUE; EXISTS over a provably empty block is FALSE,
     NOT EXISTS over one is TRUE). *)
  let plain = Qgm.plain_preds b.Qgm.where in
  let st = select_conjuncts ~outer base plain in
  let st =
    if env_is_empty st.env then st
    else
      let hi =
        Float.min st.env.e_hi
          (eliminate_hi src_states (eq_edges ~outer base.cols plain))
      in
      { st with env = { st.env with e_hi = hi } }
  in
  let sub_outer = st.cols @ outer in
  let st =
    List.fold_left
      (fun st p ->
         if env_is_empty st.env then st
         else
           match p with
           | Qgm.P _ -> st
           | Qgm.In_sub (e, blk) -> (
             let sub = of_block ?db ~outer:sub_outer blk in
             if env_is_empty sub.env then { st with env = env_empty }
             else
               let st =
                 match e with
                 | Expr.Col c -> (
                   (* e IN (S): TRUE requires e non-NULL and within S's
                      output value set *)
                   match
                     Option.bind
                       (refine_nonnull ~outer st.cols c)
                       (fun cols ->
                          match sub.cols with
                          | (_, a) :: _ when not (is_top a.itv) ->
                            refine_itv ~outer cols c a.itv
                          | _ -> Some cols)
                   with
                   | None -> { st with env = env_empty }
                   | Some cols -> { st with cols })
                 | _ -> st
               in
               if env_is_empty st.env then st
               else { st with env = { st.env with e_lo = 0. } })
           | Qgm.Exists_sub (positive, blk) ->
             let sub = of_block ?db ~outer:sub_outer blk in
             if env_is_empty sub.env then
               if positive then { st with env = env_empty } else st
             else { st with env = { st.env with e_lo = 0. } }
           | Qgm.Cmp_sub (op, e, blk) -> (
             let sub = of_block ?db ~outer:sub_outer blk in
             if env_is_empty sub.env then
               (* the scalar subquery yields NULL; the comparison is
                  UNKNOWN and never TRUE *)
               { st with env = env_empty }
             else
               let st =
                 match e with
                 | Expr.Col c -> (
                   match refine_nonnull ~outer st.cols c with
                   | None -> { st with env = env_empty }
                   | Some cols -> (
                     match sub.cols with
                     | (_, a) :: _ when not (is_top a.itv) -> (
                       let bound =
                         match op with
                         | Expr.Eq -> Some a.itv
                         | Expr.Lt | Expr.Le ->
                           Some
                             { lo = neg_infinity; lo_open = true;
                               hi = a.itv.hi;
                               hi_open = op = Expr.Lt || a.itv.hi_open }
                         | Expr.Gt | Expr.Ge ->
                           Some
                             { lo = a.itv.lo;
                               lo_open = op = Expr.Gt || a.itv.lo_open;
                               hi = infinity; hi_open = true }
                         | Expr.Neq -> None
                       in
                       match bound with
                       | None -> { st with cols }
                       | Some i -> (
                         match refine_itv ~outer cols c i with
                         | None -> { st with env = env_empty }
                         | Some cols -> { st with cols }))
                     | _ -> { st with cols }))
                 | _ -> st
               in
               if env_is_empty st.env then st
               else { st with env = { st.env with e_lo = 0. } })
      )
      st b.Qgm.where
  in
  (* semijoins, then outerjoins — the attachment order of Lower *)
  let st =
    List.fold_left
      (fun st (sj : Qgm.semijoin) ->
         if env_is_empty st.env then st
         else
           let s = source_state ?db ~outer sj.Qgm.s_source in
           semi_join ~outer ~anti:sj.Qgm.s_anti st s sj.Qgm.s_pred)
      st b.Qgm.semijoins
  in
  let st =
    List.fold_left
      (fun st (oj : Qgm.outerjoin) ->
         let s = source_state ?db ~outer oj.Qgm.o_source in
         left_outer_join ~outer st s oj.Qgm.o_pred)
      st b.Qgm.outerjoins
  in
  (* grouping and HAVING *)
  let grouped = b.Qgm.group_by <> [] || b.Qgm.aggs <> [] in
  let st =
    if not grouped then st
    else group ~outer st ~keys:b.Qgm.group_by ~aggs:b.Qgm.aggs
  in
  let st =
    if b.Qgm.having = [] then st
    else begin
      (* HAVING sees the grouped schema; subquery predicates only lower
         the bound *)
      let plain = Qgm.plain_preds b.Qgm.having in
      let st = select_conjuncts ~outer st plain in
      if Qgm.sub_preds b.Qgm.having <> [] && not (env_is_empty st.env) then
        { st with env = { st.env with e_lo = 0. } }
      else st
    end
  in
  let st = project ~outer st b.Qgm.select in
  if b.Qgm.distinct then distinct st else st

and source_state ?db ~outer = function
  | Qgm.Base { table; alias; schema } -> scan ?db ~table ~alias schema
  | Qgm.Derived { block; alias } ->
    requalify_state (of_block ?db ~outer block) ~alias

let rec of_query ?db (q : Qgm.query) : state =
  match q with
  | Qgm.Q_block b -> of_block ?db b
  | Qgm.Q_union { all; left; right } ->
    union ~all (of_query ?db left) (of_query ?db right)

(* ------------------------------------------------------------------ *)
(* Logical operator trees *)

let rec of_algebra ?db (t : Algebra.t) : state =
  match t with
  | Algebra.Scan { table; alias; schema } -> scan ?db ~table ~alias schema
  | Algebra.Select (p, i) ->
    let st = of_algebra ?db i in
    let conjuncts = Pred.conjuncts p in
    let st' = select_conjuncts st conjuncts in
    if env_is_empty st'.env then st'
    else
      (* constant equality on a unique column pins the stream to <= 1 *)
      let hi =
        Float.min st'.env.e_hi
          (eliminate_hi [ st ] (eq_edges ~outer:[] st.cols conjuncts))
      in
      { st' with env = { st'.env with e_hi = hi } }
  | Algebra.Project (items, i) -> project (of_algebra ?db i) items
  | Algebra.Join (Algebra.Inner, p, l, r) ->
    inner_join (of_algebra ?db l) (of_algebra ?db r) p
  | Algebra.Join (Algebra.Left_outer, p, l, r) ->
    left_outer_join (of_algebra ?db l) (of_algebra ?db r) p
  | Algebra.Join (Algebra.Semi, p, l, r) ->
    semi_join ~anti:false (of_algebra ?db l) (of_algebra ?db r) p
  | Algebra.Join (Algebra.Anti, p, l, r) ->
    semi_join ~anti:true (of_algebra ?db l) (of_algebra ?db r) p
  | Algebra.Group_by { keys; aggs; input } ->
    group (of_algebra ?db input) ~keys ~aggs
  | Algebra.Distinct i -> distinct (of_algebra ?db i)
  | Algebra.Order_by (_, i) -> of_algebra ?db i

(* Per-node annotation (preorder, node identity by [==]). *)
let annotate_algebra ?db (t : Algebra.t) : (Algebra.t * state) list =
  let acc = ref [] in
  let rec go t =
    let st = of_algebra ?db t in
    acc := (t, st) :: !acc;
    (match t with
     | Algebra.Scan _ -> ()
     | Algebra.Select (_, i)
     | Algebra.Project (_, i)
     | Algebra.Distinct i
     | Algebra.Order_by (_, i) -> go i
     | Algebra.Join (_, _, l, r) -> go l; go r
     | Algebra.Group_by { input; _ } -> go input)
  in
  go t;
  !acc

(* ------------------------------------------------------------------ *)
(* Physical plans *)

let bound_conjuncts ~alias ~column (lo : Exec.Plan.bound)
    (hi : Exec.Plan.bound) : Expr.t list =
  let c = Expr.Col { Expr.rel = alias; col = column } in
  let side op v = Expr.Cmp (op, c, Expr.Const v) in
  (match lo with
   | Exec.Plan.Unbounded -> []
   | Exec.Plan.Incl v -> [ side Expr.Ge v ]
   | Exec.Plan.Excl v -> [ side Expr.Gt v ])
  @
  match hi with
  | Exec.Plan.Unbounded -> []
  | Exec.Plan.Incl v -> [ side Expr.Le v ]
  | Exec.Plan.Excl v -> [ side Expr.Lt v ]

let pairs_pred (pairs : (Expr.col_ref * Expr.col_ref) list) : Expr.t list =
  List.map
    (fun (a, b) -> Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b))
    pairs

(* [record] sees every node's state during the single bottom-up pass, so
   [annotate_plan] costs the same as [of_plan] rather than re-analyzing
   each subtree per node. *)
let rec of_plan_rec ?db ~record (cat : Storage.Catalog.t) (p : Exec.Plan.t) :
  state =
  let scan_of table alias =
    scan ?db ~table ~alias
      (Schema.requalify
         (Storage.Catalog.table cat table).Storage.Table.schema ~rel:alias)
  in
  let st =
    match p with
    | Exec.Plan.Seq_scan { table; alias; filter } -> (
      let st = scan_of table alias in
      match filter with
      | None -> st
      | Some f -> select_conjuncts st (Pred.conjuncts f))
    | Exec.Plan.Index_scan { table; alias; column; lo; hi; filter } ->
      let st = scan_of table alias in
      let conjuncts =
        bound_conjuncts ~alias ~column lo hi
        @ match filter with None -> [] | Some f -> Pred.conjuncts f
      in
      let st' = select_conjuncts st conjuncts in
      if env_is_empty st'.env then st'
      else
        let hi_card =
          Float.min st'.env.e_hi
            (eliminate_hi [ st ] (eq_edges ~outer:[] st.cols conjuncts))
        in
        { st' with env = { st'.env with e_hi = hi_card } }
    | Exec.Plan.Filter (f, i) ->
      select_conjuncts (of_plan_rec ?db ~record cat i) (Pred.conjuncts f)
    | Exec.Plan.Project (items, i) ->
      project (of_plan_rec ?db ~record cat i) items
    | Exec.Plan.Sort (_, i) | Exec.Plan.Materialize i ->
      of_plan_rec ?db ~record cat i
    | Exec.Plan.Nested_loop { kind; pred; outer; inner } ->
      plan_join ?db ~record cat kind (Pred.conjuncts pred) outer
        (`Plan inner)
    | Exec.Plan.Index_nl
        { kind; outer; table; alias; columns; outer_keys; residual; _ } ->
      let probes =
        List.map2
          (fun col okey ->
             Expr.Cmp (Expr.Eq, Expr.Col { Expr.rel = alias; col }, okey))
          columns outer_keys
      in
      plan_join ?db ~record cat kind
        (probes @ Pred.conjuncts residual)
        outer
        (`State (scan_of table alias))
    | Exec.Plan.Merge_join { kind; pairs; residual; left; right }
    | Exec.Plan.Hash_join { kind; pairs; residual; left; right } ->
      plan_join ?db ~record cat kind
        (pairs_pred pairs @ Pred.conjuncts residual)
        left (`Plan right)
    | Exec.Plan.Hash_agg { keys; aggs; input }
    | Exec.Plan.Stream_agg { keys; aggs; input } ->
      group (of_plan_rec ?db ~record cat input) ~keys ~aggs
    | Exec.Plan.Hash_distinct i ->
      distinct (of_plan_rec ?db ~record cat i)
  in
  record p st;
  st

and plan_join ?db ~record cat kind conjuncts left right =
  let l = of_plan_rec ?db ~record cat left in
  let r =
    match right with
    | `Plan p -> of_plan_rec ?db ~record cat p
    | `State s -> s
  in
  let pred = Pred.of_conjuncts conjuncts in
  match kind with
  | Algebra.Inner -> inner_join l r pred
  | Algebra.Left_outer -> left_outer_join l r pred
  | Algebra.Semi -> semi_join ~anti:false l r pred
  | Algebra.Anti -> semi_join ~anti:true l r pred

let of_plan ?db (cat : Storage.Catalog.t) (p : Exec.Plan.t) : state =
  of_plan_rec ?db ~record:(fun _ _ -> ()) cat p

let annotate_plan ?db (cat : Storage.Catalog.t) (p : Exec.Plan.t) :
  (Exec.Plan.t * state) list =
  let acc = ref [] in
  ignore (of_plan_rec ?db ~record:(fun n st -> acc := (n, st) :: !acc) cat p);
  List.map (fun node -> (node, List.assq node !acc)) (Exec.Plan.preorder p)

let pp_state ppf (st : state) =
  Fmt.pf ppf "@[<v>env %a%a@]" pp_envelope st.env
    Fmt.(
      list ~sep:nop (fun ppf ((r, n), a) ->
          Fmt.pf ppf "@,%s.%s: %a" r n pp_aval a))
    st.cols
