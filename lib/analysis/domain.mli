(** Abstract domains for the static plan analyzer: value intervals,
    nullability, and provable cardinality envelopes.

    All operations compute {e provable} facts — the analyzer's claims are
    sound bounds on runtime behaviour, unlike the estimates of
    [Stats.Derive] which they are checked against. *)

(** An interval over the reals with open/closed endpoints.  Constrains
    only the {e non-NULL} values of a column (NULL is tracked separately
    via {!nullability}), so outer-join NULL padding never invalidates
    one.  Infinite endpoints are always open. *)
type interval = {
  lo : float;
  lo_open : bool;
  hi : float;
  hi_open : bool;
}

val top : interval
val is_top : interval -> bool
val point : float -> interval
val at_least : ?strict:bool -> float -> interval
val at_most : ?strict:bool -> float -> interval
val closed : float -> float -> interval
val is_empty : interval -> bool

(** Intersection; [None] when provably empty. *)
val meet : interval -> interval -> interval option

(** Convex hull. *)
val join : interval -> interval -> interval

val contains : interval -> float -> bool

(** Emptiness when restricted to integers — used only for contradiction
    detection on int-typed columns, never to tighten emitted
    predicates. *)
val is_empty_int : interval -> bool

val add : interval -> interval -> interval
val sub : interval -> interval -> interval
val neg : interval -> interval
val pp_interval : Format.formatter -> interval -> unit

(** The nullability lattice: [Non_null] proves the column never holds
    NULL. *)
type nullability = Non_null | Maybe_null

val null_join : nullability -> nullability -> nullability
val pp_nullability : Format.formatter -> nullability -> unit

(** Abstract value of one column. *)
type aval = {
  itv : interval;
  null : nullability;
  ty : Relalg.Value.ty option;
}

val aval_top : aval
val aval_join : aval -> aval -> aval
val pp_aval : Format.formatter -> aval -> unit

(** Provable bounds on an operator's exact output row count:
    [e_lo <= |output| <= e_hi], with [e_hi = infinity] for unbounded. *)
type envelope = { e_lo : float; e_hi : float }

val env_top : envelope
val env_exact : float -> envelope
val env_empty : envelope

(** Provably zero rows. *)
val env_is_empty : envelope -> bool

val env_join : envelope -> envelope -> envelope
val env_contains : envelope -> float -> bool
val pp_envelope : Format.formatter -> envelope -> unit
