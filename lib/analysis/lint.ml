(* Provable-bound lints: compare the cost model's cardinality estimates
   against the analyzer's envelope at every operator of a logical or
   physical plan.  The envelope is sound, so an estimate escaping it is
   a definite estimator defect, not a statistics artifact — but the
   estimator is allowed a little deliberate slack (e.g. the [-0.5]
   distinct-count fudge), so the warnings fire only past a small
   tolerance.  An estimate of (essentially) zero on a provably nonempty
   operator is reported as an error: downstream costing would consider
   the subtree free.

   Codes: [est-above-envelope], [est-below-envelope] (warnings) and
   [est-zero-nonempty] (error). *)

open Relalg
module Diag = Verify.Diag

(* Relative + absolute slack before an escape is reported. *)
let rel_tol = 0.05

let abs_tol = 1.0

let check ~label (env : Domain.envelope) (est : float) : Diag.t list =
  let open Domain in
  if est < 0.5 && env.e_lo >= 1. then
    [ Diag.error ~path:[ label ] ~code:"est-zero-nonempty"
        (Fmt.str
           "cardinality estimate %g, but the operator provably yields at \
            least %g row(s)"
           est env.e_lo) ]
  else if est > (env.e_hi *. (1. +. rel_tol)) +. abs_tol then
    [ Diag.warning ~path:[ label ] ~code:"est-above-envelope"
        (Fmt.str
           "cardinality estimate %g escapes the provable envelope %a from \
            above"
           est pp_envelope env) ]
  else if est < (env.e_lo *. (1. -. rel_tol)) -. abs_tol then
    [ Diag.warning ~path:[ label ] ~code:"est-below-envelope"
        (Fmt.str
           "cardinality estimate %g escapes the provable envelope %a from \
            below"
           est pp_envelope env) ]
  else []

let algebra_label = function
  | Algebra.Scan { table; alias; _ } ->
    if alias = table then "scan " ^ table
    else Fmt.str "scan %s as %s" table alias
  | Algebra.Select _ -> "select"
  | Algebra.Project _ -> "project"
  | Algebra.Join (k, _, _, _) -> Algebra.join_kind_name k ^ " join"
  | Algebra.Group_by _ -> "group-by"
  | Algebra.Distinct _ -> "distinct"
  | Algebra.Order_by _ -> "order-by"

(* Lints never raise: a plan the estimator or analyzer cannot digest
   simply yields no findings. *)
let logical ?asm (db : Stats.Table_stats.db) (a : Algebra.t) : Diag.t list
  =
  match Absint.annotate_algebra ~db a with
  | exception _ -> []
  | annotated ->
    List.concat_map
      (fun (node, (st : Absint.state)) ->
        match Stats.Derive.of_algebra ?asm db node with
        | exception _ -> []
        | rs ->
          check ~label:(algebra_label node) st.Absint.env
            rs.Stats.Derive.card)
      annotated

let physical ?asm ?est_of (cat : Storage.Catalog.t)
    (db : Stats.Table_stats.db) (p : Exec.Plan.t) : Diag.t list =
  let est =
    match est_of with
    | Some f -> f
    | None -> (
      match Obs.Est.annotate ?asm cat db p with
      | exception _ -> fun _ -> None
      | ann -> fun node -> Obs.Est.card ann node)
  in
  match Absint.annotate_plan ~db cat p with
  | exception _ -> []
  | annotated ->
    List.concat_map
      (fun (node, (st : Absint.state)) ->
        match est node with
        | exception _ -> []
        | None -> []
        | Some c -> check ~label:(Exec.Plan.describe node) st.Absint.env c)
      annotated
