(* Facade of the static plan analyzer (mirrors the [verify] library's
   layout): abstract domains, the abstract interpreter, analyzer-backed
   rewrite rules, and the provable-bound lints. *)

module Domain = Domain
module Absint = Absint
module Simplify = Simplify
module Lint = Lint
