(** Analyzer-backed rewrite rules for the [Rewrite.Rules] engine.

    Both rules are db-free — they rely only on facts provable from the
    query text, so the rewrites are valid in every database. *)

(** Folds blocks whose input is provably empty (empty derived source,
    predicate over a provably empty subquery, semijoin against an empty
    source) to the canonical [WHERE FALSE] form, and drops NOT-EXISTS /
    anti-semijoin filters that can never reject a row. *)
val fold_empty : Rewrite.Rules.t

(** Transitive range closure over the WHERE equality classes (paper
    Section 4.1): detects contradictory conjunct sets (folding to
    [WHERE FALSE]), drops implied/redundant bounds, and derives the
    strongest provable bound for every member of an equality class. *)
val range_closure : Rewrite.Rules.t

(** [[fold_empty; range_closure]] — the rule class in preferred order. *)
val rules : Rewrite.Rules.t list
