(** The abstract interpreter: bottom-up analysis of logical plans, QGM
    blocks and physical plans.

    For each operator output it computes per-column abstract values
    (interval, nullability, type), unique column sets, and a provable
    cardinality envelope.  All facts are sound: base facts come only
    from catalog NOT NULL declarations and full-scan [Table_stats]
    (whose [rows], [null_frac], [n_distinct], [min_v]/[max_v] are
    exact), and predicate refinement follows SQL three-valued logic —
    a WHERE conjunct keeps a row only when it evaluates to TRUE. *)

open Relalg

type key = string * string  (** (relation alias, column name) *)

type state = {
  cols : (key * Domain.aval) list;
      (** abstract value per visible column; absent means top *)
  uniq : key list list;
      (** unique column sets; the empty set asserts [<= 1] row *)
  env : Domain.envelope;  (** provable bounds on the exact row count *)
}

val top_state : state

(** The one-row relation (scalar aggregate output, FROM-less select). *)
val unit_state : state

val set_env : state -> Domain.envelope -> state

(** Abstract value of an output column by (unqualified) name. *)
val col_aval : state -> string -> Domain.aval option

(** [assume st e] is the strongest state provable when [e] evaluates to
    TRUE on a row of [st]; [None] when [e] can never be TRUE (the
    conjunct is unsatisfiable).  [outer] supplies correlation columns,
    which are consulted but never refined. *)
val assume :
  ?outer:(key * Domain.aval) list -> state -> Expr.t -> state option

(** Abstract evaluation of a scalar expression over column facts. *)
val aval_of_expr :
  ?outer:(key * Domain.aval) list ->
  (key * Domain.aval) list ->
  Expr.t ->
  Domain.aval

(** Base-table facts; without [db] only schema nullability is known and
    the envelope is top. *)
val scan : ?db:Stats.Table_stats.db -> table:string -> alias:string ->
  Schema.t -> state

(** {2 Transfer functions} *)

val cross : state -> state -> state

val select_conjuncts :
  ?outer:(key * Domain.aval) list -> state -> Expr.t list -> state

val inner_join :
  ?outer:(key * Domain.aval) list -> state -> state -> Expr.t -> state

val left_outer_join :
  ?outer:(key * Domain.aval) list -> state -> state -> Expr.t -> state

val semi_join :
  ?outer:(key * Domain.aval) list -> anti:bool -> state -> state ->
  Expr.t -> state

val group :
  ?outer:(key * Domain.aval) list -> state ->
  keys:(Expr.t * string) list -> aggs:(Expr.agg * string) list -> state

val project :
  ?outer:(key * Domain.aval) list -> state -> (Expr.t * string) list ->
  state

val distinct : state -> state
val union : all:bool -> state -> state -> state

(** {2 Whole-tree analyses} *)

(** Analyze a QGM block.  [outer] supplies correlation columns; for a
    correlated block the envelope bounds the rows of {e one}
    invocation. *)
val of_block :
  ?db:Stats.Table_stats.db ->
  ?outer:(key * Domain.aval) list ->
  Rewrite.Qgm.block ->
  state

val of_query : ?db:Stats.Table_stats.db -> Rewrite.Qgm.query -> state

val of_algebra : ?db:Stats.Table_stats.db -> Algebra.t -> state

(** Every node of the tree with its analysis, preorder ([==] identity,
    like [Obs.Est]). *)
val annotate_algebra :
  ?db:Stats.Table_stats.db -> Algebra.t -> (Algebra.t * state) list

val of_plan :
  ?db:Stats.Table_stats.db -> Storage.Catalog.t -> Exec.Plan.t -> state

val annotate_plan :
  ?db:Stats.Table_stats.db -> Storage.Catalog.t -> Exec.Plan.t ->
  (Exec.Plan.t * state) list

val pp_state : Format.formatter -> state -> unit
