(* Analyzer-backed rewrite rules (plugged into the Starburst-style rule
   engine of [Rewrite.Rules]):

   - [fold_empty] folds blocks whose input is provably empty — an empty
     derived source, a predicate over a provably empty subquery, a
     semijoin against an empty source — down to the canonical
     empty-input form [WHERE FALSE], and removes never-failing
     NOT-EXISTS / anti-semijoin filters;

   - [range_closure] computes, per equality class of the WHERE
     conjuncts (Section 4.1's transitive predicate addition), the
     strongest provable per-column range; it detects contradictions
     (folding to [WHERE FALSE]), drops implied/redundant bounds and
     emits derived transitive bounds for the other class members.

   Both rules are db-free: they use only facts derivable from the query
   text itself, so they are valid in any database.  Statistics-backed
   reasoning (0-row tables) lives in the lint and the fuzz oracle
   instead.  Soundness of every emitted/dropped conjunct follows the
   TRUE-accepting WHERE semantics: a derived conjunct is implied TRUE
   whenever the original conjunction is TRUE, and a dropped conjunct is
   implied by the ones kept.  Integer tightening is used only to detect
   contradictions, never to alter emitted bounds. *)

open Relalg
module Qgm = Rewrite.Qgm
module Rules = Rewrite.Rules

let false_where = [ Qgm.P (Expr.bool false) ]

let is_false_where = function
  | [ Qgm.P (Expr.Const (Value.Bool false)) ] -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* fold_empty *)

let empty_block (blk : Qgm.block) =
  Domain.env_is_empty (Absint.of_block blk).Absint.env

let empty_source = function
  | Qgm.Base _ -> false
  | Qgm.Derived { block; _ } -> empty_block block

let fold_empty : Rules.t =
  { Rules.name = "fold_empty";
    apply =
      (fun b ->
        let input_empty =
          List.exists empty_source b.Qgm.from
          || List.exists
               (fun p ->
                 match p with
                 | Qgm.In_sub (_, blk)
                 | Qgm.Cmp_sub (_, _, blk)
                 | Qgm.Exists_sub (true, blk) ->
                   (* e IN (empty) and EXISTS (empty) are FALSE; a
                      scalar comparison against an empty block is
                      UNKNOWN — none is ever TRUE *)
                   empty_block blk
                 | Qgm.Exists_sub (false, _) | Qgm.P _ -> false)
               b.Qgm.where
          || List.exists
               (fun (sj : Qgm.semijoin) ->
                 (not sj.Qgm.s_anti) && empty_source sj.Qgm.s_source)
               b.Qgm.semijoins
        in
        if input_empty && not (is_false_where b.Qgm.where) then
          (* semijoins filter nothing on empty input and contribute no
             output columns; outerjoins are kept for the schema *)
          Some { b with Qgm.where = false_where; semijoins = [] }
        else
          (* NOT EXISTS over a provably empty block and anti-semijoins
             against provably empty sources never reject a row *)
          let where' =
            List.filter
              (fun p ->
                match p with
                | Qgm.Exists_sub (false, blk) -> not (empty_block blk)
                | _ -> true)
              b.Qgm.where
          in
          let semijoins' =
            List.filter
              (fun (sj : Qgm.semijoin) ->
                not (sj.Qgm.s_anti && empty_source sj.Qgm.s_source))
              b.Qgm.semijoins
          in
          if
            List.length where' <> List.length b.Qgm.where
            || List.length semijoins' <> List.length b.Qgm.semijoins
          then Some { b with Qgm.where = where'; semijoins = semijoins' }
          else None) }

(* ------------------------------------------------------------------ *)
(* range_closure *)

(* A range-shaped conjunct normalized to (column, operator, constant):
   [Cmp (op, Col c, Const v)] or its mirror image. *)
let range_shape (e : Expr.t) : (Expr.col_ref * Expr.cmpop * Value.t) option
  =
  match e with
  | Expr.Cmp (op, Expr.Col c, Expr.Const v) -> Some (c, op, v)
  | Expr.Cmp (op, Expr.Const v, Expr.Col c) ->
    let flip = function
      | Expr.Eq -> Expr.Eq
      | Expr.Neq -> Expr.Neq
      | Expr.Lt -> Expr.Gt
      | Expr.Le -> Expr.Ge
      | Expr.Gt -> Expr.Lt
      | Expr.Ge -> Expr.Le
    in
    Some (c, flip op, v)
  | _ -> None

(* Merge-based union-find over column references (conjunct lists are
   tiny). *)
let eq_classes (pairs : (Expr.col_ref * Expr.col_ref) list) :
  Expr.col_ref list list =
  List.fold_left
    (fun classes (a, b) ->
      let ca, rest = List.partition (List.mem a) classes in
      let ca = match ca with [] -> [ a ] | l -> List.concat l in
      if List.mem b ca then List.sort_uniq compare ca :: rest
      else
        let cb, rest' = List.partition (List.mem b) rest in
        let cb = match cb with [] -> [ b ] | l -> List.concat l in
        List.sort_uniq compare (ca @ cb) :: rest')
    [] pairs

(* One directional bound: the strongest of a set of lower (or upper)
   bounds, keeping the originating operator and constant for
   emission. *)
type bnd = { op : Expr.cmpop; v : Value.t; f : float }

let strict = function Expr.Gt | Expr.Lt -> true | _ -> false

(* [stronger ~lower a b]: does bound [a] strictly imply bound [b]? *)
let stronger ~lower (a : bnd) (b : bnd) =
  if lower then a.f > b.f || (a.f = b.f && strict a.op && not (strict b.op))
  else a.f < b.f || (a.f = b.f && strict a.op && not (strict b.op))

let strongest ~lower = function
  | [] -> None
  | b :: rest ->
    Some
      (List.fold_left
         (fun best c -> if stronger ~lower c best then c else best)
         b rest)

let interval_of (lo : bnd option) (hi : bnd option) : Domain.interval =
  let open Domain in
  { lo = (match lo with Some b -> b.f | None -> neg_infinity);
    lo_open = (match lo with Some b -> strict b.op | None -> true);
    hi = (match hi with Some b -> b.f | None -> infinity);
    hi_open = (match hi with Some b -> strict b.op | None -> true) }

let range_closure : Rules.t =
  { Rules.name = "range_closure";
    apply =
      (fun b ->
        if is_false_where b.Qgm.where then None
        else begin
          let schema = List.concat_map Qgm.source_schema b.Qgm.from in
          let col_ty (c : Expr.col_ref) =
            match Schema.find_opt schema ~rel:c.Expr.rel ~name:c.Expr.col with
            | Some (_, col) -> Some col.Schema.ty
            | None -> None
            | exception Failure _ -> None
          in
          (* collect equalities between columns, and per-column
             range-shaped conjuncts *)
          let col_pairs = ref [] in
          let eqs = ref [] (* (col, v, numeric) *)
          and neqs = ref []
          and lowers = ref []
          and uppers = ref [] in
          List.iter
            (fun p ->
              match p with
              | Qgm.P (Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b'))
                when a <> b' ->
                col_pairs := (a, b') :: !col_pairs
              | Qgm.P e -> (
                match range_shape e with
                | Some (c, Expr.Eq, v) when not (Value.is_null v) ->
                  eqs := (c, v) :: !eqs
                | Some (c, Expr.Neq, v) when not (Value.is_null v) ->
                  neqs := (c, v) :: !neqs
                | Some (c, ((Expr.Gt | Expr.Ge) as op), v) -> (
                  match Value.to_float v with
                  | Some f -> lowers := (c, { op; v; f }) :: !lowers
                  | None -> ())
                | Some (c, ((Expr.Lt | Expr.Le) as op), v) -> (
                  match Value.to_float v with
                  | Some f -> uppers := (c, { op; v; f }) :: !uppers
                  | None -> ())
                | _ -> ())
              | _ -> ())
            b.Qgm.where;
          let all_cols =
            List.sort_uniq compare
              (List.concat_map (fun (a, b') -> [ a; b' ]) !col_pairs
               @ List.map fst !eqs @ List.map fst !neqs
               @ List.map fst !lowers @ List.map fst !uppers)
          in
          let classes =
            let merged = eq_classes !col_pairs in
            let in_merged c = List.exists (List.mem c) merged in
            merged
            @ List.filter_map
                (fun c -> if in_merged c then None else Some [ c ])
                all_cols
          in
          let of_members xs members =
            List.filter (fun (c, _) -> List.mem c members) xs
            |> List.map snd
          in
          (* canonical per-column conjuncts, or a contradiction *)
          let contradiction = ref false in
          let canonical : (Expr.col_ref * (Expr.cmpop * Value.t) list) list
            =
            List.concat_map
              (fun members ->
                let m_eqs = of_members !eqs members in
                let m_neqs = of_members !neqs members in
                let m_lo = strongest ~lower:true (of_members !lowers members)
                and m_hi =
                  strongest ~lower:false (of_members !uppers members)
                in
                let int_class =
                  List.exists (fun c -> col_ty c = Some Value.Tint) members
                in
                match m_eqs with
                | v :: rest ->
                  (* the class is pinned to one constant: all equalities
                     must agree, every range must admit it, and no
                     inequality may exclude it *)
                  if List.exists (fun w -> not (Value.equal v w)) rest then
                    contradiction := true;
                  if List.exists (fun w -> Value.equal v w) m_neqs then
                    contradiction := true;
                  (match Value.to_float v with
                   | Some f ->
                     let itv = interval_of m_lo m_hi in
                     if not (Domain.contains itv f) then contradiction := true
                   | None -> ());
                  (* canonical: member = v; ranges and inequalities on
                     the class are implied (or contradictory) *)
                  List.map (fun c -> (c, [ (Expr.Eq, v) ])) members
                | [] ->
                  let itv = interval_of m_lo m_hi in
                  if
                    Domain.is_empty itv
                    || (int_class && Domain.is_empty_int itv)
                  then contradiction := true;
                  (* a point interval excluded by an inequality *)
                  (match (m_lo, m_hi) with
                   | Some lo, Some hi
                     when lo.f = hi.f && not (strict lo.op)
                          && not (strict hi.op) ->
                     if
                       List.exists
                         (fun w -> Value.to_float w = Some lo.f)
                         m_neqs
                     then contradiction := true
                   | _ -> ());
                  let keep =
                    (match m_lo with Some b -> [ (b.op, b.v) ] | None -> [])
                    @ match m_hi with Some b -> [ (b.op, b.v) ] | None -> []
                  in
                  List.map (fun c -> (c, keep)) members)
              classes
          in
          if !contradiction then Some { b with Qgm.where = false_where }
          else begin
            (* Rebuild the conjunct list: keep each canonical bound at
               its first original occurrence, drop implied/duplicate
               range bounds, then append the derived transitive bounds
               that were not already present.  Inequalities and
               column=column links pass through untouched. *)
            let changed = ref false in
            let consumed :
              (Expr.col_ref * (Expr.cmpop * Value.t)) list ref =
              ref []
            in
            (* keep a collected conjunct iff it realizes a canonical
               bound not already realized by an earlier conjunct *)
            let keep_if_canonical c op v =
              match List.assoc_opt c canonical with
              | None -> true
              | Some want -> (
                let hit =
                  List.find_opt
                    (fun (wop, wv) ->
                      wop = op && Value.equal wv v
                      && not (List.mem (c, (wop, wv)) !consumed))
                    want
                in
                match hit with
                | Some pair ->
                  consumed := (c, pair) :: !consumed;
                  true
                | None ->
                  changed := true;
                  false)
            in
            let kept =
              List.filter
                (fun p ->
                  match p with
                  | Qgm.P e -> (
                    match range_shape e with
                    | Some (c, Expr.Neq, v) when not (Value.is_null v) ->
                      (* under a pinned class, inequalities are implied
                         (a contradictory one was caught above) *)
                      let pinned =
                        match List.assoc_opt c canonical with
                        | Some [ (Expr.Eq, _) ] -> true
                        | _ -> false
                      in
                      if pinned then changed := true;
                      not pinned
                    | Some (c, Expr.Eq, v) when not (Value.is_null v) ->
                      keep_if_canonical c Expr.Eq v
                    | Some
                        ( c,
                          ((Expr.Gt | Expr.Ge | Expr.Lt | Expr.Le) as op),
                          v )
                      when Value.to_float v <> None ->
                      keep_if_canonical c op v
                    | _ -> true)
                  | _ -> true)
                b.Qgm.where
            in
            let emitted =
              List.concat_map
                (fun (c, want) ->
                  List.filter_map
                    (fun (op, v) ->
                      if
                        List.exists
                          (fun (c', (op', v')) ->
                            c' = c && op' = op && Value.equal v' v)
                          !consumed
                      then None
                      else
                        Some
                          (Qgm.P (Expr.Cmp (op, Expr.Col c, Expr.Const v))))
                    want)
                canonical
            in
            if emitted <> [] then changed := true;
            if !changed then Some { b with Qgm.where = kept @ emitted }
            else None
          end
        end) }

(* The rule class, in the order the engine should try them. *)
let rules : Rules.t list = [ fold_empty; range_closure ]
