(** Provable-bound lints: flag cardinality estimates that escape the
    analyzer's sound envelope.

    Diagnostic codes: [est-above-envelope] and [est-below-envelope]
    (warnings, fired past a small tolerance that absorbs the
    estimator's deliberate slack) and [est-zero-nonempty] (error: a
    ~zero estimate on an operator that provably yields rows). *)

(** Compare one estimate against one envelope. *)
val check :
  label:string -> Domain.envelope -> float -> Verify.Diag.t list

(** Lint a logical plan: [Stats.Derive] estimates vs analyzer
    envelopes, per operator.  Never raises. *)
val logical :
  ?asm:Stats.Derive.assumption ->
  Stats.Table_stats.db ->
  Relalg.Algebra.t ->
  Verify.Diag.t list

(** Lint a physical plan: [Obs.Est] estimates vs analyzer envelopes,
    per operator.  [est_of] overrides the estimate source (used by the
    mutation tests to seed a corrupted estimator).  Never raises. *)
val physical :
  ?asm:Stats.Derive.assumption ->
  ?est_of:(Exec.Plan.t -> float option) ->
  Storage.Catalog.t ->
  Stats.Table_stats.db ->
  Exec.Plan.t ->
  Verify.Diag.t list
