(* View merging (Section 4.2.1): a derived source defined by a simple
   conjunctive (SPJ) block is unfolded into its parent, so that the joins of
   view and query may be reordered freely by the plan optimizer. *)

open Relalg

(* Substitution map turning references V.x into the view's defining
   expression for x. *)
let subst_map alias (view : Qgm.block) : (Expr.col_ref * Expr.t) list =
  List.map
    (fun (e, out_name) -> ({ Expr.rel = alias; col = out_name }, e))
    view.Qgm.select

(* Nested subquery blocks may reference the merged alias too (correlated
   subqueries over the view's columns), so substitute into them deeply. *)
let subst_pred map = function
  | Qgm.P e -> Qgm.P (Qgm.subst_expr map e)
  | Qgm.In_sub (e, b) -> Qgm.In_sub (Qgm.subst_expr map e, Qgm.subst_block map b)
  | Qgm.Exists_sub (pos, b) -> Qgm.Exists_sub (pos, Qgm.subst_block map b)
  | Qgm.Cmp_sub (op, e, b) ->
    Qgm.Cmp_sub (op, Qgm.subst_expr map e, Qgm.subst_block map b)

(* Merge the first mergeable derived FROM source. *)
let apply (b : Qgm.block) : Qgm.block option =
  let mergeable = function
    | Qgm.Derived { block; _ } ->
      Qgm.is_simple_spj block && not (Qgm.is_correlated block)
    | Qgm.Base _ -> false
  in
  match List.find_opt mergeable b.Qgm.from with
  | None -> None
  | Some (Qgm.Base _) -> None
  | Some (Qgm.Derived { block = view; alias }) ->
    let map = subst_map alias view in
    let s e = Qgm.subst_expr map e in
    let from =
      List.concat_map
        (fun src ->
           match src with
           | Qgm.Derived { alias = a; _ } when a = alias -> view.Qgm.from
           | _ -> [ src ])
        b.Qgm.from
    in
    Some
      { b with
        Qgm.from;
        select = List.map (fun (e, a) -> (s e, a)) b.Qgm.select;
        where =
          List.map (subst_pred map) b.Qgm.where
          @ view.Qgm.where (* simple SPJ: all plain, uncorrelated *);
        group_by = List.map (fun (e, a) -> (s e, a)) b.Qgm.group_by;
        aggs = List.map (fun (g, a) -> (Qgm.subst_agg map g, a)) b.Qgm.aggs;
        having = List.map (subst_pred map) b.Qgm.having;
        semijoins =
          List.map (fun sj -> { sj with Qgm.s_pred = s sj.Qgm.s_pred })
            b.Qgm.semijoins;
        outerjoins =
          List.map (fun oj -> { oj with Qgm.o_pred = s oj.Qgm.o_pred })
            b.Qgm.outerjoins;
        order_by = List.map (fun (e, d) -> (s e, d)) b.Qgm.order_by }

let rule : Rules.t = { name = "view_merge"; apply }
