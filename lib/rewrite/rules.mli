(** Starburst-style forward-chaining rule engine (Section 6.1): rules are
    condition/transform pairs over QGM blocks, grouped into classes that
    run to fixpoint in order. *)

type t = { name : string; apply : Qgm.block -> Qgm.block option }

(** Apply a rule once somewhere in the block tree (top-down, leftmost),
    descending into derived sources and subquery predicates. *)
val apply_once : t -> Qgm.block -> Qgm.block option

(** (rule name, application count) pairs. *)
type trace = (string * int) list

(** Run each class to fixpoint in order; [budget] bounds total
    applications.  [check] is called after every successful application
    with the rule name and the block before/after — the hook the [verify]
    library's rewrite oracle plugs into.  [on_reject] is called whenever
    a rule is attempted but matches nowhere — the optimizer-trace hook. *)
val run :
  ?budget:int ->
  ?check:(rule:string -> before:Qgm.block -> after:Qgm.block -> unit) ->
  ?on_reject:(rule:string -> unit) ->
  t list list -> Qgm.block -> Qgm.block * trace
