(* QGM-lite: a multi-block query representation in the spirit of Starburst's
   Query Graph Model (Section 6.1).

   A block is one SELECT: sources joined by inner join, a conjunctive WHERE
   whose conjuncts may embed subquery predicates (IN / EXISTS / scalar
   comparison), optional grouping/aggregation with HAVING, DISTINCT, and a
   select list.  Semi/anti-join sources and left-outerjoin sources extend the
   FROM so that unnesting rewrites have a target shape; the normal form
   "inner joins first, then outerjoins" is exactly the associativity
   identity of Section 4.1.2. *)

open Relalg

type source =
  | Base of { table : string; alias : string; schema : Schema.t }
  | Derived of { block : block; alias : string }

and block = {
  distinct : bool;
  select : (Expr.t * string) list;
  from : source list; (* inner-joined, possibly correlated subquery-free *)
  where : predicate list; (* conjuncts *)
  group_by : (Expr.t * string) list;
  aggs : (Expr.agg * string) list;
  having : predicate list;
  semijoins : semijoin list; (* applied after the inner joins *)
  outerjoins : outerjoin list; (* applied after semijoins *)
  order_by : (Expr.t * Algebra.dir) list;
}

and semijoin = { s_source : source; s_pred : Expr.t; s_anti : bool }

and outerjoin = { o_source : source; o_pred : Expr.t }

and predicate =
  | P of Expr.t
  | In_sub of Expr.t * block (* e IN (block with 1 output column) *)
  | Exists_sub of bool * block (* EXISTS (true) / NOT EXISTS (false) *)
  | Cmp_sub of Expr.cmpop * Expr.t * block (* e op (scalar block) *)

let alias_of_source = function
  | Base { alias; _ } | Derived { alias; _ } -> alias

(* Output schema of a block: unqualified columns named by select aliases.
   Nullability flows through: plain projected columns inherit their
   source's flag, outer-joined sources are nullable (NULL padding), COUNT
   aggregates are non-null. *)
let rec block_schema (b : block) : Schema.t =
  let inner = inner_schema b in
  if b.aggs = [] && b.group_by = [] then
    List.map
      (fun (e, a) ->
         Schema.with_nullable
           (Algebra.expr_nullable inner e)
           (Schema.column ~rel:"" ~name:a ~ty:(Typing.infer inner e)))
      b.select
  else
    (* select list references group keys and agg aliases *)
    let gs =
      List.map
        (fun (e, a) ->
           Schema.with_nullable
             (Algebra.expr_nullable inner e)
             (Schema.column ~rel:"" ~name:a ~ty:(Typing.infer inner e)))
        b.group_by
      @ List.map
          (fun (g, a) ->
             Schema.with_nullable
               (Algebra.agg_nullable inner g)
               (Schema.column ~rel:"" ~name:a ~ty:(Typing.infer_agg inner g)))
          b.aggs
    in
    List.map
      (fun (e, a) ->
         Schema.with_nullable
           (Algebra.expr_nullable gs e)
           (Schema.column ~rel:"" ~name:a ~ty:(Typing.infer gs e)))
      b.select

(* Schema visible inside the block: all source columns (inner, semi sources
   excluded from output but visible in predicates; treat them as visible
   only within their own predicate — callers handle that).  Outer-joined
   source columns are nullable in every clause that can see them (WHERE
   cannot; it runs before the outerjoins attach). *)
and inner_schema (b : block) : Schema.t =
  List.concat_map source_schema b.from
  @ List.concat_map
      (fun oj ->
         List.map
           (fun c -> { c with Schema.nullable = true })
           (source_schema oj.o_source))
      b.outerjoins

and source_schema = function
  | Base { schema; _ } -> schema
  | Derived { block; alias } -> Schema.requalify (block_schema block) ~rel:alias

(* Aliases bound by the block's own sources (not correlation targets). *)
let bound_aliases (b : block) : string list =
  List.map alias_of_source b.from
  @ List.map (fun s -> alias_of_source s.s_source) b.semijoins
  @ List.map (fun o -> alias_of_source o.o_source) b.outerjoins

(* Free (correlated) relation aliases of a block: column qualifiers used
   anywhere inside that none of the block's own sources bind. *)
let rec free_aliases (b : block) : string list =
  let bound = bound_aliases b in
  let of_expr e =
    Expr.relations e |> List.filter (fun r -> r <> "" && not (List.mem r bound))
  in
  let of_pred = function
    | P e -> of_expr e
    | In_sub (e, blk) -> of_expr e @ nested_free bound blk
    | Exists_sub (_, blk) -> nested_free bound blk
    | Cmp_sub (_, e, blk) -> of_expr e @ nested_free bound blk
  in
  let from_sources =
    List.concat_map
      (function
        | Base _ -> []
        | Derived { block; _ } -> nested_free bound block)
      (b.from
       @ List.map (fun s -> s.s_source) b.semijoins
       @ List.map (fun o -> o.o_source) b.outerjoins)
  in
  List.concat
    [ List.concat_map (fun (e, _) -> of_expr e) b.select;
      List.concat_map of_pred b.where;
      List.concat_map (fun (e, _) -> of_expr e) b.group_by;
      List.concat_map
        (fun (g, _) ->
           match Expr.agg_arg g with Some e -> of_expr e | None -> [])
        b.aggs;
      List.concat_map of_pred b.having;
      List.concat_map (fun s -> of_expr s.s_pred) b.semijoins;
      List.concat_map (fun o -> of_expr o.o_pred) b.outerjoins;
      from_sources ]
  |> List.sort_uniq String.compare

and nested_free outer_bound blk =
  free_aliases blk |> List.filter (fun r -> not (List.mem r outer_bound))

let is_correlated b = free_aliases b <> []

(* A block is a "simple SPJ" when it can be merged into its parent without
   changing duplicates or semantics (Section 4.2.1). *)
let is_simple_spj (b : block) =
  (not b.distinct) && b.group_by = [] && b.aggs = [] && b.having = []
  && b.semijoins = [] && b.outerjoins = [] && b.order_by = []
  && List.for_all (function P _ -> true | In_sub _ | Exists_sub _ | Cmp_sub _ -> false) b.where

(* Plain conjuncts / subquery conjuncts split. *)
let plain_preds ps =
  List.filter_map (function P e -> Some e | In_sub _ | Exists_sub _ | Cmp_sub _ -> None) ps

let sub_preds ps =
  List.filter (function P _ -> false | In_sub _ | Exists_sub _ | Cmp_sub _ -> true) ps

let select_star (sources : source list) : (Expr.t * string) list =
  List.concat_map
    (fun s ->
       let alias = alias_of_source s in
       List.map
         (fun (c : Schema.column) ->
            (Expr.col ~rel:alias ~col:c.Schema.name, c.Schema.name))
         (source_schema s))
    sources

(* Substitute column references according to [map] (rel, col) -> expr. *)
let rec subst_expr (map : (Expr.col_ref * Expr.t) list) (e : Expr.t) : Expr.t =
  match e with
  | Expr.Col c -> (
    match
      List.find_opt
        (fun ((c' : Expr.col_ref), _) ->
           c'.Expr.rel = c.Expr.rel && c'.Expr.col = c.Expr.col)
        map
    with
    | Some (_, e') -> e'
    | None -> e)
  | Expr.Const _ -> e
  | Expr.Binop (op, a, b) -> Expr.Binop (op, subst_expr map a, subst_expr map b)
  | Expr.Cmp (op, a, b) -> Expr.Cmp (op, subst_expr map a, subst_expr map b)
  | Expr.And (a, b) -> Expr.And (subst_expr map a, subst_expr map b)
  | Expr.Or (a, b) -> Expr.Or (subst_expr map a, subst_expr map b)
  | Expr.Not a -> Expr.Not (subst_expr map a)
  | Expr.Is_null a -> Expr.Is_null (subst_expr map a)
  | Expr.Udf (u, args) -> Expr.Udf (u, List.map (subst_expr map) args)

let subst_agg map (g : Expr.agg) : Expr.agg =
  match g with
  | Expr.Count_star -> Expr.Count_star
  | Expr.Count e -> Expr.Count (subst_expr map e)
  | Expr.Sum e -> Expr.Sum (subst_expr map e)
  | Expr.Min e -> Expr.Min (subst_expr map e)
  | Expr.Max e -> Expr.Max (subst_expr map e)
  | Expr.Avg e -> Expr.Avg (subst_expr map e)

(* Deep, capture-aware substitution: free column references are replaced
   throughout the block, including inside nested subquery-predicate blocks
   and derived sources; a nested block that rebinds one of the mapped
   aliases shadows it, so only genuinely free occurrences change. *)
let rec subst_block (map : (Expr.col_ref * Expr.t) list) (b : block) : block =
  let bound = bound_aliases b in
  let map =
    List.filter
      (fun ((c : Expr.col_ref), _) -> not (List.mem c.Expr.rel bound))
      map
  in
  if map = [] then b
  else begin
    let se = subst_expr map in
    let sub_source = function
      | Base _ as s -> s
      | Derived { block; alias } -> Derived { block = subst_block map block; alias }
    in
    let sp = function
      | P e -> P (se e)
      | In_sub (e, blk) -> In_sub (se e, subst_block map blk)
      | Exists_sub (pos, blk) -> Exists_sub (pos, subst_block map blk)
      | Cmp_sub (op, e, blk) -> Cmp_sub (op, se e, subst_block map blk)
    in
    { b with
      from = List.map sub_source b.from;
      select = List.map (fun (e, a) -> (se e, a)) b.select;
      where = List.map sp b.where;
      group_by = List.map (fun (e, a) -> (se e, a)) b.group_by;
      aggs = List.map (fun (g, a) -> (subst_agg map g, a)) b.aggs;
      having = List.map sp b.having;
      semijoins =
        List.map
          (fun sj ->
             { sj with
               s_source = sub_source sj.s_source; s_pred = se sj.s_pred })
          b.semijoins;
      outerjoins =
        List.map
          (fun oj ->
             { o_source = sub_source oj.o_source; o_pred = se oj.o_pred })
          b.outerjoins;
      order_by = List.map (fun (e, d) -> (se e, d)) b.order_by }
  end

(* Fresh alias generation for rewrite-introduced views. *)
let fresh_counter = ref 0

let fresh_alias prefix =
  incr fresh_counter;
  Printf.sprintf "__%s%d" prefix !fresh_counter

(* Smart constructor for plain single-block queries. *)
let simple ?(distinct = false) ?(where = []) ?(group_by = []) ?(aggs = [])
    ?(having = []) ?(order_by = []) ~select ~from () =
  { distinct; select; from; where = List.map (fun e -> P e) where;
    group_by; aggs; having = List.map (fun e -> P e) having;
    semijoins = []; outerjoins = []; order_by }

let rec pp_block ppf (b : block) =
  let pp_sel ppf (e, a) =
    if Expr.to_string e = a then Expr.pp ppf e
    else Fmt.pf ppf "%a AS %s" Expr.pp e a
  in
  Fmt.pf ppf "@[<v 2>SELECT%s %a@,FROM %a"
    (if b.distinct then " DISTINCT" else "")
    Fmt.(list ~sep:(any ", ") pp_sel) b.select
    Fmt.(list ~sep:(any ", ") pp_source) b.from;
  List.iter
    (fun s ->
       Fmt.pf ppf "@,%s %a ON %a"
         (if s.s_anti then "ANTIJOIN" else "SEMIJOIN")
         pp_source s.s_source Expr.pp s.s_pred)
    b.semijoins;
  List.iter
    (fun o ->
       Fmt.pf ppf "@,LEFT OUTER JOIN %a ON %a" pp_source o.o_source Expr.pp o.o_pred)
    b.outerjoins;
  if b.where <> [] then
    Fmt.pf ppf "@,WHERE %a" Fmt.(list ~sep:(any " AND ") pp_pred) b.where;
  if b.group_by <> [] || b.aggs <> [] then
    Fmt.pf ppf "@,GROUP BY %a | %a"
      Fmt.(list ~sep:(any ", ") pp_sel) b.group_by
      Fmt.(list ~sep:(any ", ")
             (fun ppf (g, a) -> Fmt.pf ppf "%a AS %s" Expr.pp_agg g a))
      b.aggs;
  if b.having <> [] then
    Fmt.pf ppf "@,HAVING %a" Fmt.(list ~sep:(any " AND ") pp_pred) b.having;
  if b.order_by <> [] then
    Fmt.pf ppf "@,ORDER BY %a"
      Fmt.(list ~sep:(any ", ") (fun ppf (e, _) -> Expr.pp ppf e))
      b.order_by;
  Fmt.pf ppf "@]"

and pp_source ppf = function
  | Base { table; alias; _ } ->
    if table = alias then Fmt.string ppf table
    else Fmt.pf ppf "%s AS %s" table alias
  | Derived { block; alias } -> Fmt.pf ppf "(%a) AS %s" pp_block block alias

and pp_pred ppf = function
  | P e -> Expr.pp ppf e
  | In_sub (e, b) -> Fmt.pf ppf "%a IN (%a)" Expr.pp e pp_block b
  | Exists_sub (pos, b) ->
    Fmt.pf ppf "%sEXISTS (%a)" (if pos then "" else "NOT ") pp_block b
  | Cmp_sub (op, e, b) ->
    Fmt.pf ppf "%a %s (%a)" Expr.pp e (Expr.cmp_name op) pp_block b

let block_to_string b = Fmt.str "%a" pp_block b

(* ------------------------------------------------------------------ *)
(* Full queries: UNION [ALL] combinations of blocks (top level only).
   The paper notes that predicate graphs cannot represent union
   (Section 4); here unions sit above the block layer, so every block
   still rewrites and plans independently. *)

type query =
  | Q_block of block
  | Q_union of { all : bool; left : query; right : query }

let rec query_schema = function
  | Q_block b -> block_schema b
  | Q_union { left; _ } -> query_schema left

let rec pp_query ppf = function
  | Q_block b -> pp_block ppf b
  | Q_union { all; left; right } ->
    Fmt.pf ppf "@[<v>%a@,UNION%s@,%a@]" pp_query left
      (if all then " ALL" else "")
      pp_query right
