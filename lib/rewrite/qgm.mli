(** QGM-lite: a multi-block query representation in the spirit of
    Starburst's Query Graph Model (Section 6.1).

    A block is one SELECT: inner-joined sources, a conjunctive WHERE whose
    conjuncts may embed subquery predicates, optional grouping with HAVING,
    DISTINCT, and a select list.  Semi/anti-join and left-outerjoin sources
    extend the FROM so unnesting rewrites have a target shape; "inner joins
    first, then outerjoins" is the associativity normal form of
    Section 4.1.2. *)

open Relalg

type source =
  | Base of { table : string; alias : string; schema : Schema.t }
  | Derived of { block : block; alias : string }

and block = {
  distinct : bool;
  select : (Expr.t * string) list;
  from : source list;  (** inner-joined *)
  where : predicate list;  (** conjuncts *)
  group_by : (Expr.t * string) list;
  aggs : (Expr.agg * string) list;
  having : predicate list;
  semijoins : semijoin list;  (** applied after the inner joins *)
  outerjoins : outerjoin list;  (** applied after semijoins *)
  order_by : (Expr.t * Algebra.dir) list;
}

and semijoin = { s_source : source; s_pred : Expr.t; s_anti : bool }

and outerjoin = { o_source : source; o_pred : Expr.t }

and predicate =
  | P of Expr.t
  | In_sub of Expr.t * block  (** e IN (block with one output column) *)
  | Exists_sub of bool * block  (** EXISTS (true) / NOT EXISTS (false) *)
  | Cmp_sub of Expr.cmpop * Expr.t * block  (** e op (scalar block) *)

val alias_of_source : source -> string

(** Output schema: unqualified columns named by select aliases. *)
val block_schema : block -> Schema.t

(** Columns visible inside the block (inner + outerjoin sources). *)
val inner_schema : block -> Schema.t

val source_schema : source -> Schema.t

(** Aliases bound by the block's own sources. *)
val bound_aliases : block -> string list

(** Free (correlated) relation aliases. *)
val free_aliases : block -> string list

val is_correlated : block -> bool

(** Mergeable into a parent without changing semantics (Section 4.2.1). *)
val is_simple_spj : block -> bool

val plain_preds : predicate list -> Expr.t list
val sub_preds : predicate list -> predicate list

(** SELECT * items over the given sources. *)
val select_star : source list -> (Expr.t * string) list

(** Column-reference substitution. *)
val subst_expr : (Expr.col_ref * Expr.t) list -> Expr.t -> Expr.t
val subst_agg : (Expr.col_ref * Expr.t) list -> Expr.agg -> Expr.agg

(** Deep substitution of free column references across a whole block,
    including nested subquery-predicate blocks and derived sources.
    Capture-aware: entries whose alias a (sub-)block rebinds are shadowed
    there.  (Entries rebound by [b] itself are dropped outright — use the
    per-clause substitutions when replacing a block's own source.) *)
val subst_block : (Expr.col_ref * Expr.t) list -> block -> block

(** Fresh alias generation for rewrite-introduced views. *)
val fresh_alias : string -> string

(** Smart constructor for plain single-block queries. *)
val simple :
  ?distinct:bool -> ?where:Expr.t list -> ?group_by:(Expr.t * string) list ->
  ?aggs:(Expr.agg * string) list -> ?having:Expr.t list ->
  ?order_by:(Expr.t * Algebra.dir) list -> select:(Expr.t * string) list ->
  from:source list -> unit -> block

val pp_block : Format.formatter -> block -> unit
val pp_source : Format.formatter -> source -> unit
val pp_pred : Format.formatter -> predicate -> unit
val block_to_string : block -> string

(** {2 Full queries} *)

(** UNION [ALL] combinations of blocks, top level only — the paper notes
    predicate graphs cannot represent union (Section 4). *)
type query =
  | Q_block of block
  | Q_union of { all : bool; left : query; right : query }

(** Schema of a query (taken from its leftmost block). *)
val query_schema : query -> Schema.t

val pp_query : Format.formatter -> query -> unit
