(* Starburst-style forward-chaining rule engine (Section 6.1): rules are
   condition/transform pairs over QGM blocks, grouped into classes that run
   to fixpoint in order.  Every application yields a valid block, so any
   subset of applications preserves equivalence (assuming rule validity —
   which the test suite checks by execution). *)

type t = { name : string; apply : Qgm.block -> Qgm.block option }

(* Apply [rule] once somewhere in the block tree (top-down, leftmost). *)
let rec apply_once (rule : t) (b : Qgm.block) : Qgm.block option =
  match rule.apply b with
  | Some b' -> Some b'
  | None ->
    (* descend into derived sources *)
    let try_sources sources rebuild =
      let rec go acc = function
        | [] -> None
        | (Qgm.Derived { block; alias } as src) :: rest -> (
          match apply_once rule block with
          | Some block' ->
            Some (rebuild (List.rev acc @ (Qgm.Derived { block = block'; alias } :: rest)))
          | None -> go (src :: acc) rest)
        | src :: rest -> go (src :: acc) rest
      in
      go [] sources
    in
    let from_result =
      try_sources b.Qgm.from (fun from -> { b with Qgm.from })
    in
    (match from_result with
     | Some _ as r -> r
     | None ->
       let sj_sources = List.map (fun s -> s.Qgm.s_source) b.Qgm.semijoins in
       let sj_result =
         try_sources sj_sources (fun sources ->
             { b with
               Qgm.semijoins =
                 List.map2
                   (fun s src -> { s with Qgm.s_source = src })
                   b.Qgm.semijoins sources })
       in
       (match sj_result with
        | Some _ as r -> r
        | None ->
          let oj_sources = List.map (fun o -> o.Qgm.o_source) b.Qgm.outerjoins in
          let oj_result =
            try_sources oj_sources (fun sources ->
                { b with
                  Qgm.outerjoins =
                    List.map2
                      (fun o src -> { o with Qgm.o_source = src })
                      b.Qgm.outerjoins sources })
          in
          (match oj_result with
           | Some _ as r -> r
           | None ->
             (* descend into subquery predicates *)
             let try_preds preds rebuild =
               let rec go acc = function
                 | [] -> None
                 | p :: rest -> (
                   let sub =
                     match p with
                     | Qgm.P _ -> None
                     | Qgm.In_sub (e, blk) ->
                       Option.map (fun blk' -> Qgm.In_sub (e, blk'))
                         (apply_once rule blk)
                     | Qgm.Exists_sub (pos, blk) ->
                       Option.map (fun blk' -> Qgm.Exists_sub (pos, blk'))
                         (apply_once rule blk)
                     | Qgm.Cmp_sub (op, e, blk) ->
                       Option.map (fun blk' -> Qgm.Cmp_sub (op, e, blk'))
                         (apply_once rule blk)
                   in
                   match sub with
                   | Some p' -> Some (rebuild (List.rev acc @ (p' :: rest)))
                   | None -> go (p :: acc) rest)
               in
               go [] preds
             in
             (match try_preds b.Qgm.where (fun where -> { b with Qgm.where }) with
              | Some _ as r -> r
              | None ->
                try_preds b.Qgm.having (fun having -> { b with Qgm.having })))))

type trace = (string * int) list

(* Run each rule class to fixpoint, in order.  [budget] bounds total
   applications (the paper's point about tuning rule engines).  [check] is
   an oracle invoked after every successful application with the rule name
   and the block before/after — the lint hook (see the [verify] library).
   [on_reject] is invoked whenever a rule is attempted but its condition
   matches nowhere in the block — the optimizer-trace hook. *)
let run ?(budget = 200)
    ?(check : (rule:string -> before:Qgm.block -> after:Qgm.block -> unit) option)
    ?(on_reject : (rule:string -> unit) option)
    (classes : t list list) (b : Qgm.block) : Qgm.block * trace =
  let applications = Hashtbl.create 8 in
  let budget_left = ref budget in
  let rec fix_class rules b =
    if !budget_left <= 0 then b
    else
      let rec try_rules = function
        | [] -> None
        | r :: rest -> (
          match apply_once r b with
          | Some b' ->
            decr budget_left;
            Hashtbl.replace applications r.name
              (1 + Option.value (Hashtbl.find_opt applications r.name) ~default:0);
            (match check with
             | Some f -> f ~rule:r.name ~before:b ~after:b'
             | None -> ());
            Some b'
          | None ->
            (match on_reject with
             | Some f -> f ~rule:r.name
             | None -> ());
            try_rules rest)
      in
      match try_rules rules with
      | Some b' -> fix_class rules b'
      | None -> b
  in
  let final = List.fold_left (fun b cls -> fix_class cls b) b classes in
  (final,
   Hashtbl.fold (fun name n acc -> (name, n) :: acc) applications []
   |> List.sort compare)
