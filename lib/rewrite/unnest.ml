(* Subquery unnesting (Section 4.2.2, after Kim [35], Dayal [13], and
   Muralikrishna [44]).

   - IN / EXISTS subqueries become semijoins against a decorrelated view
     (Dayal's algebraic view: tuple semantics = Semijoin).
   - NOT EXISTS becomes an antijoin.
   - Scalar aggregate subqueries compared in WHERE become a left outerjoin
     plus grouping — the outerjoin is what preserves zero-match outer tuples
     (the "count bug"); [naive_cmp_rule] below deliberately uses an inner
     join instead and is exported only for experiment E5. *)

open Relalg

(* Decorrelate a SPJ subquery: split its WHERE into local and correlated
   conjuncts, export every internal column the correlated conjuncts touch,
   and return the local view plus the correlation predicate rewritten
   against the view. *)
type decorrelated = {
  view : Qgm.block;
  view_alias : string;
  corr_pred : Expr.t list; (* conjuncts referencing view + outer columns *)
  out_col : Expr.col_ref; (* the subquery's first output column, in the view *)
}

let plain_only ps =
  List.for_all (function Qgm.P _ -> true | Qgm.In_sub _ | Qgm.Exists_sub _ | Qgm.Cmp_sub _ -> false) ps

let decorrelate_spj (sub : Qgm.block) : decorrelated option =
  if
    sub.Qgm.aggs <> [] || sub.Qgm.group_by <> [] || sub.Qgm.having <> []
    || sub.Qgm.semijoins <> [] || sub.Qgm.outerjoins <> []
    || not (plain_only sub.Qgm.where)
    || sub.Qgm.select = []
  then None
  else begin
    let bound = Qgm.bound_aliases sub in
    let is_local e =
      List.for_all (fun r -> r = "" || List.mem r bound) (Expr.relations e)
    in
    let locals, corrs = List.partition is_local (Qgm.plain_preds sub.Qgm.where) in
    let alias = Qgm.fresh_alias "sq" in
    (* exported columns: internal columns used by correlated conjuncts *)
    let exports = ref [] in
    let export (c : Expr.col_ref) =
      match
        List.find_opt (fun (c', _) -> c' = c) !exports
      with
      | Some (_, name) -> name
      | None ->
        let name = Printf.sprintf "x_%s_%s" c.Expr.rel c.Expr.col in
        exports := !exports @ [ (c, name) ];
        name
    in
    let subst_corr e =
      let map =
        Expr.columns e
        |> List.filter (fun (c : Expr.col_ref) -> List.mem c.Expr.rel bound)
        |> List.map (fun c ->
            (c, Expr.col ~rel:alias ~col:(export c)))
      in
      Qgm.subst_expr map e
    in
    let corr_pred = List.map subst_corr corrs in
    let extra_select =
      List.map (fun ((c : Expr.col_ref), name) -> (Expr.Col c, name)) !exports
    in
    let view =
      { sub with
        Qgm.distinct = false;
        where = List.map (fun e -> Qgm.P e) locals;
        select = sub.Qgm.select @ extra_select;
        order_by = [] }
    in
    let out_name = snd (List.hd sub.Qgm.select) in
    Some
      { view; view_alias = alias; corr_pred;
        out_col = { Expr.rel = alias; col = out_name } }
  end

(* ------------------------------------------------------------------ *)
(* IN / EXISTS -> semijoin; NOT EXISTS -> antijoin *)

let unnest_quantified (b : Qgm.block) : Qgm.block option =
  let rec go acc = function
    | [] -> None
    | (Qgm.In_sub (e, sub) as p) :: rest -> (
      match decorrelate_spj sub with
      | None -> go (p :: acc) rest
      | Some d ->
        let pred =
          Pred.of_conjuncts
            (Expr.Cmp (Expr.Eq, e, Expr.Col d.out_col) :: d.corr_pred)
        in
        Some
          { b with
            Qgm.where = List.rev acc @ rest;
            semijoins =
              b.Qgm.semijoins
              @ [ { Qgm.s_source =
                      Qgm.Derived { block = d.view; alias = d.view_alias };
                    s_pred = pred;
                    s_anti = false } ] })
    | (Qgm.Exists_sub (positive, sub) as p) :: rest -> (
      match decorrelate_spj sub with
      | None -> go (p :: acc) rest
      | Some d ->
        let pred = Pred.of_conjuncts d.corr_pred in
        Some
          { b with
            Qgm.where = List.rev acc @ rest;
            semijoins =
              b.Qgm.semijoins
              @ [ { Qgm.s_source =
                      Qgm.Derived { block = d.view; alias = d.view_alias };
                    s_pred = pred;
                    s_anti = not positive } ] })
    | p :: rest -> go (p :: acc) rest
  in
  go [] b.Qgm.where

let quantified_rule : Rules.t =
  { name = "unnest_in_exists"; apply = unnest_quantified }

(* ------------------------------------------------------------------ *)
(* Scalar aggregate subqueries *)

let is_scalar_agg (sub : Qgm.block) =
  (match sub.Qgm.aggs with [ _ ] -> true | _ -> false)
  && sub.Qgm.group_by = [] && sub.Qgm.having = []
  && sub.Qgm.semijoins = [] && sub.Qgm.outerjoins = []
  && (not sub.Qgm.distinct)
  && plain_only sub.Qgm.where

(* Uncorrelated scalar subquery: evaluate once as a one-row derived source
   and compare directly. *)
let unnest_scalar_uncorrelated (b : Qgm.block) : Qgm.block option =
  let rec go acc = function
    | [] -> None
    | (Qgm.Cmp_sub (op, e, sub) as p) :: rest ->
      if is_scalar_agg sub && not (Qgm.is_correlated sub) then begin
        let alias = Qgm.fresh_alias "sc" in
        let out_name = snd (List.hd sub.Qgm.select) in
        Some
          { b with
            Qgm.from =
              b.Qgm.from @ [ Qgm.Derived { block = sub; alias } ];
            where =
              List.rev acc
              @ (Qgm.P (Expr.Cmp (op, e, Expr.col ~rel:alias ~col:out_name))
                 :: rest) }
      end
      else go (p :: acc) rest
    | p :: rest -> go (p :: acc) rest
  in
  go [] b.Qgm.where

let scalar_uncorrelated_rule : Rules.t =
  { name = "unnest_scalar_uncorrelated"; apply = unnest_scalar_uncorrelated }

(* Correlated scalar aggregate: the outerjoin + group-by rewrite.

   SELECT s FROM O WHERE o_preds AND e op (SELECT AGG(a) FROM I WHERE corr
   AND local)
   ==>
   SELECT s' FROM O LEFT OUTER JOIN V(I restricted to local) ON corr'
   WHERE o_preds GROUP BY all columns of O HAVING e' op AGG'(V.a)

   Grouping is by every column of the outer sources; this assumes outer rows
   are pairwise distinct (e.g. each source has a key), the standard
   assumption of [44].  COUNT-star is rewritten to COUNT(V.c) on a correlation
   column so padded tuples count as zero. *)
let unnest_scalar_correlated ~(use_outerjoin : bool) (b : Qgm.block) :
  Qgm.block option =
  if b.Qgm.group_by <> [] || b.Qgm.aggs <> [] || b.Qgm.having <> [] then None
  else
    let rec go acc = function
      | [] -> None
      | (Qgm.Cmp_sub (op, e, sub) as p) :: rest ->
        if is_scalar_agg sub && Qgm.is_correlated sub then begin
          (* build the decorrelated view exporting corr cols + agg argument *)
          let agg, _agg_alias = List.hd sub.Qgm.aggs in
          let spj_sub = { sub with Qgm.aggs = []; select = [] } in
          match decorrelate_spj { spj_sub with Qgm.select = [ (Expr.int 1, "one") ] } with
          | None -> go (p :: acc) rest
          | Some d when d.corr_pred = [] -> go (p :: acc) rest
          | Some d ->
            let view_alias = d.view_alias in
            (* add the aggregate argument to the view's select list *)
            let agg_arg_name = "agg_arg" in
            let view, agg' =
              match Expr.agg_arg agg with
              | Some arg ->
                let view =
                  { d.view with
                    Qgm.select = d.view.Qgm.select @ [ (arg, agg_arg_name) ] }
                in
                let col = Expr.col ~rel:view_alias ~col:agg_arg_name in
                let agg' =
                  match agg with
                  | Expr.Count _ -> Expr.Count col
                  | Expr.Sum _ -> Expr.Sum col
                  | Expr.Min _ -> Expr.Min col
                  | Expr.Max _ -> Expr.Max col
                  | Expr.Avg _ -> Expr.Avg col
                  | Expr.Count_star -> Expr.Count_star
                in
                (view, agg')
              | None ->
                (* COUNT-star: count a non-null exported correlation column *)
                let marker =
                  match d.view.Qgm.select with
                  | _ :: (Expr.Col _, name) :: _ ->
                    Expr.col ~rel:view_alias ~col:name
                  | _ -> Expr.col ~rel:view_alias ~col:"one"
                in
                (d.view, Expr.Count marker)
            in
            (* group by all outer source columns — existing outerjoin
               sources included: their columns are part of the block's
               pre-group rows and may be referenced by SELECT/ORDER BY *)
            let keys =
              List.concat_map
                (fun src ->
                   let a = Qgm.alias_of_source src in
                   List.map
                     (fun (c : Schema.column) ->
                        ( Expr.col ~rel:a ~col:c.Schema.name,
                          Printf.sprintf "%s__%s" a c.Schema.name ))
                     (Qgm.source_schema src))
                (b.Qgm.from
                 @ List.map (fun (oj : Qgm.outerjoin) -> oj.Qgm.o_source)
                     b.Qgm.outerjoins)
            in
            let key_map =
              List.map
                (fun (expr, alias) ->
                   match expr with
                   | Expr.Col c -> (c, Expr.col ~rel:"" ~col:alias)
                   | _ -> assert false)
                keys
            in
            let sk e = Qgm.subst_expr key_map e in
            let agg_alias = Qgm.fresh_alias "agg" in
            let source = Qgm.Derived { block = view; alias = view_alias } in
            let base_where = List.rev acc @ rest in
            let joined =
              if use_outerjoin then
                { b with
                  Qgm.where = base_where;
                  outerjoins =
                    b.Qgm.outerjoins
                    @ [ { Qgm.o_source = source;
                          o_pred = Pred.of_conjuncts d.corr_pred } ] }
              else
                (* the naive (count-bug) variant: plain join *)
                { b with
                  Qgm.where =
                    base_where @ List.map (fun e -> Qgm.P e) d.corr_pred;
                  from = b.Qgm.from @ [ source ] }
            in
            Some
              { joined with
                Qgm.group_by = keys;
                aggs = [ (agg', agg_alias) ];
                having =
                  [ Qgm.P (Expr.Cmp (op, sk e, Expr.col ~rel:"" ~col:agg_alias)) ];
                select = List.map (fun (se, a) -> (sk se, a)) b.Qgm.select;
                order_by = List.map (fun (oe, dct) -> (sk oe, dct)) b.Qgm.order_by }
        end
        else go (p :: acc) rest
      | p :: rest -> go (p :: acc) rest
    in
    go [] b.Qgm.where

let scalar_correlated_rule : Rules.t =
  { name = "unnest_scalar_correlated";
    apply = unnest_scalar_correlated ~use_outerjoin:true }

(* The deliberately wrong rewrite exhibiting the count bug (E5). *)
let naive_cmp_rule : Rules.t =
  { name = "unnest_scalar_correlated_NAIVE";
    apply = unnest_scalar_correlated ~use_outerjoin:false }

let default_rules = [ quantified_rule; scalar_uncorrelated_rule; scalar_correlated_rule ]
