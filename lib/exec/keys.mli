(** Join/aggregation key hashing shared by {!Executor} and {!Batch}.

    All tables assume fixed-arity keys (the arity of a join/grouping key
    never changes within one hash table), so equality compares positions
    pairwise without re-measuring lengths. *)

open Relalg

val hash_list : Value.t list -> int

(** Pairwise {!Value.equal}; assumes equal lengths (fixed arity). *)
val equal_list : Value.t list -> Value.t list -> bool

(** Hash table over list keys — the interpreter's key table. *)
module List_tbl : Hashtbl.S with type key = Value.t list

val hash_array : Value.t array -> int

(** Pairwise {!Value.equal} on the first [length a] positions; assumes
    equal lengths (fixed arity). *)
val equal_array : Value.t array -> Value.t array -> bool

(** Hash table over array keys — the batch engine's key table. *)
module Array_tbl : Hashtbl.S with type key = Value.t array

(** Columnar probing for generic (fixed-arity [Value.t array]) keys:
    open-addressing, insert-only.  {!Cols_tbl.find} hashes and compares
    key positions straight out of per-column accessor closures, so a
    probe never materializes a key array; the key is built exactly once,
    on {!Cols_tbl.add}.  Key semantics are {!Value.equal}/{!Value.hash}
    — identical to {!Array_tbl} (Int 2 matches Float 2.0, NULLs are
    ordinary key values; join operators exclude NULL keys themselves).
    Misses return the [dummy]; callers that must distinguish absence use
    a physically unique dummy and compare with [==]. *)
module Cols_tbl : sig
  type 'a t

  val create : dummy:'a -> int -> 'a t

  (** Hash of the key read column-wise at row [i] — consistent with
      {!hash_array} of the materialized key. *)
  val hash_cols : (int -> Value.t) array -> int -> int

  (** The value bound to the key read column-wise at row [i], or the
      [dummy] when absent. *)
  val find : 'a t -> (int -> Value.t) array -> int -> 'a

  (** The key must be absent (call {!find} first) and must hold the
      values the accessors produced at the probed row. *)
  val add : 'a t -> Value.t array -> 'a -> unit
end

(** Fast path for single-column integer keys: open-addressing, no
    allocation per entry, insert-only.  Only sound when every key value on
    both sides is Int or Null ({!Value.equal} would also match Float 2.0 =
    Int 2); callers verify eligibility first.  Lookup misses return the
    [dummy] given at creation; callers that must distinguish absence use a
    physically unique dummy and compare with [==]. *)
module Int_map : sig
  type 'a t

  val create : dummy:'a -> int -> 'a t
  val find : 'a t -> int -> 'a

  (** The key must be absent (call {!find} first). *)
  val add : 'a t -> int -> 'a -> unit
end
