(** Join/aggregation key hashing shared by {!Executor} and {!Batch}.

    All tables assume fixed-arity keys (the arity of a join/grouping key
    never changes within one hash table), so equality compares positions
    pairwise without re-measuring lengths. *)

open Relalg

val hash_list : Value.t list -> int

(** Pairwise {!Value.equal}; assumes equal lengths (fixed arity). *)
val equal_list : Value.t list -> Value.t list -> bool

(** Hash table over list keys — the interpreter's key table. *)
module List_tbl : Hashtbl.S with type key = Value.t list

val hash_array : Value.t array -> int

(** Pairwise {!Value.equal} on the first [length a] positions; assumes
    equal lengths (fixed arity). *)
val equal_array : Value.t array -> Value.t array -> bool

(** Hash table over array keys — the batch engine's key table. *)
module Array_tbl : Hashtbl.S with type key = Value.t array

(** Fast path for single-column integer keys: open-addressing, no
    allocation per entry, insert-only.  Only sound when every key value on
    both sides is Int or Null ({!Value.equal} would also match Float 2.0 =
    Int 2); callers verify eligibility first.  Lookup misses return the
    [dummy] given at creation; callers that must distinguish absence use a
    physically unique dummy and compare with [==]. *)
module Int_map : sig
  type 'a t

  val create : dummy:'a -> int -> 'a t
  val find : 'a t -> int -> 'a

  (** The key must be absent (call {!find} first). *)
  val add : 'a t -> int -> 'a -> unit
end
