(** Index-access cost charging and data fetching, shared by {!Executor}
    and {!Batch}.  Charging is separated from data movement so the batch
    engine can account inner rescans without recomputing them. *)

open Relalg

val log2_ceil : int -> int

(** Temp pages written + read by an external sort of [pages] pages. *)
val sort_spill_pages : work_mem:int -> pages:int -> int

(** Drive the buffer pool exactly as one execution of an index fetch of
    [entries] (starting at entry position [lo_pos]) would: internal levels
    random, touched leaf pages, then base-table pages; also charges one CPU
    op per entry. *)
val charge_index_fetch :
  Context.t -> Storage.Btree.t -> Storage.Table.t ->
  entries:(Value.t list * int) array -> lo_pos:int -> unit

(** The data half: the base-table rows of the entries, in entry order. *)
val fetch_rows :
  Storage.Table.t -> (Value.t list * int) array -> Tuple.t array
