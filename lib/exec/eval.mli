(** Compiled-evaluation helpers shared by the vectorized engines
    ({!Batch} and {!Morsel}): offset resolution, specialized
    WHERE-semantics predicate compilers, join-key extraction, hash-join
    buckets, join-row emission, and the unboxed integer-column fast path.

    Everything here is pure — no {!Context} charging, no shared mutable
    state — so returned closures are safe to evaluate from worker
    domains. *)

open Relalg

(** No position of the key is NULL. *)
val key_nullfree : Value.t array -> bool

(** Resolve column refs to tuple offsets, once per operator. *)
val offsets : Schema.t -> Expr.col_ref list -> int array

val extract_key : int array -> Tuple.t -> Value.t array

(** Every value at [off] is Int or Null (single-int fast-path
    eligibility). *)
val int_or_null_col : Tuple.t array -> int -> bool

(** Hash-join bucket: chain length + most-recent-first items. *)
type bucket = { mutable blen : int; mutable items : Tuple.t list }

(** [pred1 s e] compiles [e] to "held under WHERE semantics" over one
    tuple; unboxed for the AND/OR/Cmp/Const fragment, [Expr.holds]
    otherwise. *)
val pred1 : Schema.t -> Expr.t -> Tuple.t -> bool

(** [pred2 l r e] — as {!pred1} over an (outer, inner) tuple pair. *)
val pred2 : Schema.t -> Schema.t -> Expr.t -> Tuple.t -> Tuple.t -> bool

(** A column whose values are all Int-or-Null, extracted once into an
    unboxed [int array] plus null bitmap. *)
module Int_col : sig
  type t = { data : int array; nulls : Bytes.t; any_null : bool }

  val is_null : t -> int -> bool

  (** [None] when any value at [off] is neither Int nor Null. *)
  val extract : Tuple.t array -> int -> t option
end

(** Offset of a plain column reference in the schema; [None] for
    computed expressions or unresolvable refs. *)
val col_offset : Schema.t -> Expr.t -> int option

(** [pred_rows s e rows] — {!pred1} as an index-based predicate over a
    fixed row array; [<int col> cmp <int const/col>] conjuncts evaluate
    over {!Int_col} extractions, the rest fall back per row. *)
val pred_rows : Schema.t -> Expr.t -> Tuple.t array -> int -> bool

(** Emit join rows for one outer tuple against inner rows [lo, hi) of
    [arr], honoring the join kind's semantics (Inner / Left_outer / Semi
    / Anti). *)
val emit_range :
  Tuple.t Storage.Vec.t -> Algebra.join_kind -> inner_arity:int ->
  Tuple.t -> Tuple.t array -> int -> int -> matches:(Tuple.t -> bool) -> unit

(** As {!emit_range} over a bucket's item list. *)
val emit_list :
  Tuple.t Storage.Vec.t -> Algebra.join_kind -> inner_arity:int ->
  Tuple.t -> Tuple.t list -> matches:(Tuple.t -> bool) -> unit
