(** Compiled-evaluation helpers shared by the vectorized engines
    ({!Batch} and {!Morsel}): offset resolution, specialized
    WHERE-semantics predicate compilers, join-key extraction, hash-join
    buckets, join-row emission, and the unboxed integer-column fast path.

    Everything here is pure — no {!Context} charging, no shared mutable
    state — so returned closures are safe to evaluate from worker
    domains. *)

open Relalg

(** No position of the key is NULL. *)
val key_nullfree : Value.t array -> bool

(** Resolve column refs to tuple offsets, once per operator. *)
val offsets : Schema.t -> Expr.col_ref list -> int array

val extract_key : int array -> Tuple.t -> Value.t array

(** Every value at [off] is Int or Null (single-int fast-path
    eligibility). *)
val int_or_null_col : Tuple.t array -> int -> bool

(** Hash-join bucket: chain length + most-recent-first items. *)
type bucket = { mutable blen : int; mutable items : Tuple.t list }

(** [pred1 s e] compiles [e] to "held under WHERE semantics" over one
    tuple; unboxed for the AND/OR/Cmp/Const fragment, [Expr.holds]
    otherwise. *)
val pred1 : Schema.t -> Expr.t -> Tuple.t -> bool

(** [pred2 l r e] — as {!pred1} over an (outer, inner) tuple pair. *)
val pred2 : Schema.t -> Schema.t -> Expr.t -> Tuple.t -> Tuple.t -> bool

(** A column whose values are all Int-or-Null, extracted once into an
    unboxed [int array] plus null bitmap. *)
module Int_col : sig
  type t = { data : int array; nulls : Bytes.t; any_null : bool }

  val is_null : t -> int -> bool

  (** [None] when any value at [off] is neither Int nor Null. *)
  val extract : Tuple.t array -> int -> t option
end

(** Offset of a plain column reference in the schema; [None] for
    computed expressions or unresolvable refs. *)
val col_offset : Schema.t -> Expr.t -> int option

(** Box an int as a [Value.Int], sharing one interned block per small
    non-negative int (values are immutable and compared structurally, so
    the sharing is unobservable). *)
val box_int : int -> Value.t

(** Columnar chunks: one batch of physical rows in per-column typed
    storage (unboxed int/float arrays with null bitmaps, or a boxed
    fallback column for strings/bools/mixed numerics), plus an optional
    selection vector mapping logical to physical rows.  Row and column
    views are lazy caches forced at most once; forcing mutates the
    store, so engines force what workers need on the coordinating domain
    first. *)
module Chunk : sig
  type col =
    | Ints of int array * Bytes.t (* data, null bitmap *)
    | Floats of float array * Bytes.t
    | Boxed of Value.t array

  type store = {
    arity : int;
    len : int; (* physical row count *)
    mutable rows : Tuple.t array option; (* lazy row view *)
    cols : col option array; (* lazy column cache, length [arity] *)
  }

  (** [sel = Some s]: logical row [i] is physical row [s.(i)];
      [sel = None]: dense, logical = physical. *)
  type t = { store : store; sel : int array option }

  val store_of_rows : arity:int -> Tuple.t array -> store
  val of_rows : arity:int -> Tuple.t array -> t
  val dense : store -> t

  (** Logical row count. *)
  val length : t -> int

  (** Physical index of a logical row. *)
  val phys : t -> int -> int

  (** Boxed value of a forced column at a physical row. *)
  val col_value : col -> int -> Value.t

  (** Force column [j] (classify physical values, extract typed
      storage).  All-NULL columns classify as [Ints] with every null bit
      set; mixed Int/Float columns stay [Boxed] to preserve value
      identity. *)
  val col : store -> int -> col

  (** Unboxed int view of column [j], or [None] when any physical value
      is neither Int nor Null. *)
  val int_col : store -> int -> (int array * Bytes.t) option

  (** Feed every non-null int of column [j] to the callback, in physical
      order (the scan operators' one-pass sketch-build hook); [false]
      when the column is not int-typed. *)
  val feed_ints : store -> int -> (int -> unit) -> bool

  (** Physical-row accessor for column [j], avoiding allocation where
      possible (prefers an existing row view over re-boxing typed
      columns). *)
  val getter : store -> int -> int -> Value.t

  (** Force the physical row view. *)
  val rows_view : store -> Tuple.t array

  (** Logical rows in selection order; dense chunks share the store's
      row view without copying. *)
  val to_rows : t -> Tuple.t array
end

(** Compiled unboxed integer expression over a store's physical rows:
    [iv i] is valid only when [inull i] is false (the NULL-divisor guard
    lives in [inull]).  Matches [Expr.arith] on Int arguments exactly. *)
type int_vec = { iv : int -> int; inull : int -> bool }

(** [int_expr s st e] compiles [e] when every leaf is an Int constant,
    NULL, or an all-Int-or-Null column; forces the referenced columns at
    compile time, so the closures are pure. *)
val int_expr : Schema.t -> Chunk.store -> Expr.t -> int_vec option

(** {!pred1} as an index-based predicate over a store's physical rows;
    comparison conjuncts whose operands both compile through
    {!int_expr} evaluate unboxed, the rest fall back to the forced row
    view.  All forcing happens at compile time. *)
val pred_store : Schema.t -> Expr.t -> Chunk.store -> int -> bool

(** [pred_rows s e rows] — {!pred1} as an index-based predicate over a
    fixed row array; [<int col> cmp <int const/col>] conjuncts evaluate
    over {!Int_col} extractions, the rest fall back per row. *)
val pred_rows : Schema.t -> Expr.t -> Tuple.t array -> int -> bool

(** Compiled projection item over physical rows: a plain column shares
    the existing box, integer arithmetic re-boxes through the small-int
    cache with no intermediate allocation, everything else evaluates
    through [Expr.compile].  Result rows are structurally identical to
    [Expr.compile] on every input. *)
val proj_item : Schema.t -> Expr.t -> Tuple.t -> Value.t

(** Output arity of a join: semi/anti keep the outer schema only. *)
val join_arity : Algebra.join_kind -> outer:int -> inner:int -> int

(** Emit join rows for one outer tuple against inner rows [lo, hi) of
    [arr], honoring the join kind's semantics (Inner / Left_outer / Semi
    / Anti). *)
val emit_range :
  Tuple.t Storage.Vec.t -> Algebra.join_kind -> inner_arity:int ->
  Tuple.t -> Tuple.t array -> int -> int -> matches:(Tuple.t -> bool) -> unit

(** As {!emit_range} over a bucket's item list. *)
val emit_list :
  Tuple.t Storage.Vec.t -> Algebra.join_kind -> inner_arity:int ->
  Tuple.t -> Tuple.t list -> matches:(Tuple.t -> bool) -> unit
