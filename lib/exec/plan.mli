(** Physical operator trees — the "execution plans" of Figure 1.

    Conventions:
    - [Nested_loop] re-executes its inner (right) child once per outer
      tuple; optimizers wrap expensive inners in [Materialize].
    - [Index_nl] probes an index of the inner base table with a key-prefix
      of expressions evaluated on the outer tuple.
    - [Merge_join] and [Stream_agg] require key-sorted inputs; optimizers
      insert [Sort] enforcers (the physical-property machinery of
      Section 3).
    - [Hash_join] builds on the right child and probes with the left. *)

open Relalg

type join_kind = Algebra.join_kind

type bound = Storage.Btree.bound = Unbounded | Incl of Value.t | Excl of Value.t

type sort_key = { key : Expr.t; descending : bool }

type t =
  | Seq_scan of { table : string; alias : string; filter : Expr.t option }
  | Index_scan of {
      table : string;
      alias : string;
      column : string;  (** indexed leading column *)
      lo : bound;
      hi : bound;
      filter : Expr.t option;  (** residual predicate *)
    }
  | Filter of Expr.t * t
  | Project of (Expr.t * string) list * t
  | Sort of sort_key list * t
  | Materialize of t
  | Nested_loop of { kind : join_kind; pred : Expr.t; outer : t; inner : t }
  | Index_nl of {
      kind : join_kind;
      outer : t;
      table : string;
      alias : string;
      index : string;  (** index name in the catalog *)
      columns : string list;  (** probed key prefix, in index order *)
      outer_keys : Expr.t list;  (** evaluated against the outer tuple *)
      residual : Expr.t;
    }
  | Merge_join of {
      kind : join_kind;
      pairs : (Expr.col_ref * Expr.col_ref) list;  (** (left, right) keys *)
      residual : Expr.t;
      left : t;
      right : t;
    }
  | Hash_join of {
      kind : join_kind;
      pairs : (Expr.col_ref * Expr.col_ref) list;
      residual : Expr.t;
      left : t;  (** probe *)
      right : t;  (** build *)
    }
  | Hash_agg of agg
  | Stream_agg of agg  (** input sorted on keys *)
  | Hash_distinct of t

and agg = {
  keys : (Expr.t * string) list;
  aggs : (Expr.agg * string) list;
  input : t;
}

(** Output schema; scans resolve table schemas through the catalog. *)
val schema : Storage.Catalog.t -> t -> Schema.t

(** Operator-node count. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** One-line operator description (no children) — the head of the [pp]
    rendering, used by EXPLAIN ANALYZE to annotate each node. *)
val describe : t -> string

(** Direct children in execution-tree order (outer/left first). *)
val children : t -> t list

(** Pre-order node list.  The index of a node in this list is its stable
    operator id: both engines execute the same physical tree, so ids are
    comparable across interpreter and batch runs. *)
val preorder : t -> t list
