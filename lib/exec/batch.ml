(* Batch execution engine.

   Executes the same physical [Plan.t] trees as [Executor], but
   operator-at-a-time over chunked row batches, with bit-identical results
   and identical [Context] cost accounting.  The differences from the
   interpreter are purely mechanical:

   - every column reference is resolved to an integer offset once per
     operator ([Expr.compile] / [Expr.compile2]), so join predicates and
     residuals evaluate against the two input tuples directly instead of
     materializing the concatenated tuple per probe;
   - join/aggregation keys are fixed-arity [Value.t array]s — or raw ints
     on the single-integer-column fast path — in the specialized hash
     tables of [Keys] (no per-tuple list allocation, no length
     re-traversal);
   - operators fill output buffers in single passes over input chunks
     (selection vectors for filters) instead of array/list round-trips;
   - in-place sorting decorates rows with precomputed key arrays, so no
     expression is evaluated inside the comparator.

   Cost charging is decoupled from data movement.  Executing a node
   returns, besides its rows, a [replay] closure that charges the Context
   exactly as one *warm* re-execution of the interpreter would: page reads
   re-issued against the (stateful, LRU) buffer pool in the same order,
   CPU and spill totals re-charged.  [Nested_loop] — whose interpreter
   semantics re-execute the inner child once per outer tuple — computes
   the inner rows once and calls the inner node's [replay] for every
   further outer tuple: the rescan charges the buffer pool without
   recomputing the subtree.  The rescan cache is the node itself, held by
   physical identity in the operator's closure; [Materialize] nodes are
   additionally memoized by physical identity within one [run] (their
   replay is a no-op — the interpreter's memo makes warm rescans free). *)

open Relalg
open Eval

let chunk_rows = 1024

(* Test-only fault injection: when set, the single-column integer hash
   join treats NULL keys as [Int 0] on both the build and probe sides —
   simulating the loss of the NULL-key guard on the [Keys.Int_map] fast
   path.  The differential fuzzer's self-test flips this to prove an
   injected engine bug is caught, shrunk and replayed; nothing else may
   set it. *)
let fault_null_key_as_zero = ref false

type node = {
  rows : Tuple.t array;
  replay : unit -> unit; (* charge ctx as one warm re-execution *)
}

(* Shared helpers ([pred1]/[pred2], offsets, key extraction, buckets,
   join-row emission, the Int_col unboxed column) live in {!Eval}, common
   with the morsel executor. *)

let run_node ?(ctx = Context.create ()) ?obs (cat : Storage.Catalog.t)
    (plan : Plan.t) : node =
  let memo : (Plan.t * node) list ref = ref [] in
  (* Instrumentation is a single match per operator execution when off.
     The measured copy of the node wraps [replay] so each replay invocation
     counts as a rescan — mirroring the interpreter, where a rescan is a
     re-execution of the node through [measure].  The memo keeps the
     unwrapped node, so a memo hit re-wraps exactly once. *)
  let rec exec (p : Plan.t) : node =
    match obs with
    | None -> exec_op p
    | Some r ->
      let n =
        Instrument.measure r ctx p
          ~rows:(fun (n : node) -> Array.length n.rows)
          (fun () -> exec_op p)
      in
      { n with replay = Instrument.measured_replay r ctx p n.replay }

  and exec_op (p : Plan.t) : node =
    match p with
    | Plan.Seq_scan { table; alias; filter } -> seq_scan table alias filter
    | Plan.Index_scan { table; alias; column; lo; hi; filter } ->
      index_scan table alias column lo hi filter
    | Plan.Filter (f, i) -> filter_op f i
    | Plan.Project (items, i) -> project items i
    | Plan.Sort (keys, i) -> sort keys i
    | Plan.Materialize i -> (
      match List.find_opt (fun (q, _) -> q == p) !memo with
      | Some (_, n) -> n
      | None ->
        let child = exec i in
        (* the interpreter's memo makes warm rescans of a Materialize
           free: replay charges nothing *)
        let n = { rows = child.rows; replay = (fun () -> ()) } in
        memo := (p, n) :: !memo;
        n)
    | Plan.Nested_loop { kind; pred; outer; inner } ->
      nested_loop kind pred outer inner
    | Plan.Index_nl
        { kind; outer; table; alias; index; columns = _; outer_keys; residual }
      ->
      index_nl kind outer table alias index outer_keys residual
    | Plan.Merge_join { kind; pairs; residual; left; right } ->
      merge_join kind pairs residual left right
    | Plan.Hash_join { kind; pairs; residual; left; right } ->
      hash_join kind pairs residual left right
    | Plan.Hash_agg { keys; aggs; input } -> aggregate ~sorted:false keys aggs input
    | Plan.Stream_agg { keys; aggs; input } -> aggregate ~sorted:true keys aggs input
    | Plan.Hash_distinct i -> hash_distinct i

  (* ---------------------------------------------------------------- *)
  (* Scans *)

  and seq_scan table alias filter =
    let t = Storage.Catalog.table cat table in
    let pages = Storage.Table.page_count t in
    let n = Storage.Table.row_count t in
    let charge () =
      for pg = 0 to pages - 1 do
        Context.read_page ctx ~random:false (table, pg)
      done;
      Context.charge_cpu ctx n
    in
    charge ();
    let rows =
      match filter with
      | None -> Array.init n (Storage.Table.get t)
      | Some f ->
        (* filter through [pred_rows]: int-comparison conjuncts run over
           unboxed column extractions instead of boxed values *)
        let all = Array.init n (Storage.Table.get t) in
        let keep =
          pred_rows (Schema.requalify t.Storage.Table.schema ~rel:alias) f all
        in
        let out = Storage.Vec.create () in
        for rid = 0 to n - 1 do
          if keep rid then Storage.Vec.push out all.(rid)
        done;
        Storage.Vec.to_array out
    in
    { rows; replay = charge }

  and index_scan table alias column lo hi filter =
    let t = Storage.Catalog.table cat table in
    let idx =
      match Storage.Catalog.index_on cat ~table ~column with
      | Some i -> i
      | None ->
        invalid_arg
          (Printf.sprintf "Index_scan: no index on %s(%s)" table column)
    in
    let entries = Storage.Btree.range idx ~lo ~hi in
    let lo_pos =
      match lo with
      | Storage.Btree.Unbounded -> Storage.Btree.upper_bound idx [ Value.Null ]
      | Storage.Btree.Incl k -> Storage.Btree.lower_bound idx [ k ]
      | Storage.Btree.Excl k -> Storage.Btree.upper_bound idx [ k ]
    in
    let charge () = Access.charge_index_fetch ctx idx t ~entries ~lo_pos in
    charge ();
    let rows = Access.fetch_rows t entries in
    let rows =
      match filter with
      | None -> rows
      | Some f ->
        let keep =
          pred_rows (Schema.requalify t.Storage.Table.schema ~rel:alias) f rows
        in
        let out = Storage.Vec.create () in
        Array.iteri
          (fun rid tu -> if keep rid then Storage.Vec.push out tu)
          rows;
        Storage.Vec.to_array out
    in
    { rows; replay = charge }

  (* ---------------------------------------------------------------- *)
  (* Row-at-a-time scalar operators, vectorized *)

  and filter_op f i =
    let child = exec i in
    let s = Plan.schema cat i in
    let rows = child.rows in
    let keep = pred_rows s f rows in
    let n = Array.length rows in
    Context.charge_cpu ctx n;
    (* chunked single pass: gather a selection vector, then copy the
       survivors — no array/list round-trip *)
    let out = Storage.Vec.create () in
    let sel = Array.make chunk_rows 0 in
    let base = ref 0 in
    while !base < n do
      let stop = min n (!base + chunk_rows) in
      let m = ref 0 in
      for j = !base to stop - 1 do
        if keep j then begin
          sel.(!m) <- j;
          incr m
        end
      done;
      for k = 0 to !m - 1 do
        Storage.Vec.push out rows.(sel.(k))
      done;
      base := stop
    done;
    { rows = Storage.Vec.to_array out;
      replay = (fun () -> child.replay (); Context.charge_cpu ctx n) }

  and project items i =
    let child = exec i in
    let s = Plan.schema cat i in
    let fs = Array.of_list (List.map (fun (e, _) -> Expr.compile s e) items) in
    let nf = Array.length fs in
    let rows = child.rows in
    let n = Array.length rows in
    Context.charge_cpu ctx n;
    let out =
      Array.map (fun t -> Array.init nf (fun k -> fs.(k) t)) rows
    in
    { rows = out;
      replay = (fun () -> child.replay (); Context.charge_cpu ctx n) }

  and sort keys i =
    let child = exec i in
    let s = Plan.schema cat i in
    let fs =
      Array.of_list
        (List.map
           (fun (k : Plan.sort_key) ->
              (Expr.compile s k.Plan.key, k.Plan.descending))
           keys)
    in
    let nk = Array.length fs in
    let rows = child.rows in
    let n = Array.length rows in
    let cpu = n * Access.log2_ceil n in
    let pages = Storage.Page.pages_for ~rows:n s in
    let spill =
      Access.sort_spill_pages ~work_mem:ctx.Context.work_mem_pages ~pages
    in
    let charge () =
      Context.charge_cpu ctx cpu;
      Context.charge_spill ctx spill
    in
    charge ();
    (* plain column keys sort in place through precompiled offsets; computed
       keys are decorated once per row — either way no expression is
       evaluated inside the comparator *)
    let key_offsets =
      List.map
        (fun (k : Plan.sort_key) ->
           match k.Plan.key with
           | Expr.Col { rel; col } -> (
             match Schema.index_of s ~rel ~name:col with
             | off -> Some (off, k.Plan.descending)
             | exception _ -> None)
           | _ -> None)
        keys
    in
    let sorted =
      if List.for_all Option.is_some key_offsets then begin
        let ks = Array.of_list (List.filter_map Fun.id key_offsets) in
        let cmp a b =
          let rec go k =
            if k = nk then 0
            else
              let off, desc = ks.(k) in
              match Value.compare (Tuple.get a off) (Tuple.get b off) with
              | 0 -> go (k + 1)
              | c -> if desc then -c else c
          in
          go 0
        in
        let copy = Array.copy rows in
        Array.stable_sort cmp copy;
        copy
      end
      else begin
        let deco =
          Array.map (fun t -> (Array.init nk (fun k -> fst fs.(k) t), t)) rows
        in
        let cmp (ka, _) (kb, _) =
          let rec go k =
            if k = nk then 0
            else
              match Value.compare ka.(k) kb.(k) with
              | 0 -> go (k + 1)
              | c -> if snd fs.(k) then -c else c
          in
          go 0
        in
        Array.stable_sort cmp deco;
        Array.map snd deco
      end
    in
    { rows = sorted; replay = (fun () -> child.replay (); charge ()) }

  (* ---------------------------------------------------------------- *)
  (* Joins.  Join-row emission ([emit_range]/[emit_list]) is shared with
     the morsel executor via {!Eval}. *)

  and nested_loop kind pred outer inner =
    let onode = exec outer in
    let outer_rows = onode.rows in
    let n_out = Array.length outer_rows in
    if n_out = 0 then
      (* the interpreter never executes the inner of an empty outer *)
      { rows = [||]; replay = onode.replay }
    else begin
      let so = Plan.schema cat outer and si = Plan.schema cat inner in
      let inner_arity = Schema.arity si in
      (* the rescan cache: the inner subtree runs once; every further
         outer tuple replays its cost against the buffer pool *)
      let inode = exec inner in
      let inner_rows = inode.rows in
      let n_in = Array.length inner_rows in
      Context.charge_cpu ctx n_in;
      for _ = 2 to n_out do
        inode.replay ();
        Context.charge_cpu ctx n_in
      done;
      let holds = pred2 so si pred in
      let out = Storage.Vec.create () in
      for oi = 0 to n_out - 1 do
        let ot = outer_rows.(oi) in
        emit_range out kind ~inner_arity ot inner_rows 0 n_in
          ~matches:(fun it -> holds ot it)
      done;
      { rows = Storage.Vec.to_array out;
        replay =
          (fun () ->
             onode.replay ();
             for _ = 1 to n_out do
               inode.replay ();
               Context.charge_cpu ctx n_in
             done) }
    end

  and index_nl kind outer table alias index outer_keys residual =
    let t = Storage.Catalog.table cat table in
    let idx =
      match Storage.Catalog.index_named cat ~table ~name:index with
      | Some i -> i
      | None ->
        invalid_arg (Printf.sprintf "Index_nl: no index %s on %s" index table)
    in
    let onode = exec outer in
    let outer_rows = onode.rows in
    let so = Plan.schema cat outer in
    let si = Schema.requalify t.Storage.Table.schema ~rel:alias in
    let keyfs = Array.of_list (List.map (Expr.compile so) outer_keys) in
    let probe_keys ot = Array.to_list (Array.map (fun f -> f ot) keyfs) in
    let holds = pred2 so si residual in
    let inner_arity = Schema.arity si in
    let charge_probe ks =
      let entries = Storage.Btree.probe idx ks in
      Access.charge_index_fetch ctx idx t ~entries
        ~lo_pos:(Storage.Btree.lower_bound idx ks);
      Context.charge_cpu ctx (1 + Array.length entries);
      entries
    in
    let out = Storage.Vec.create () in
    Array.iter
      (fun ot ->
         let entries = charge_probe (probe_keys ot) in
         let matches = Access.fetch_rows t entries in
         emit_range out kind ~inner_arity ot matches 0 (Array.length matches)
           ~matches:(fun it -> holds ot it))
      outer_rows;
    { rows = Storage.Vec.to_array out;
      replay =
        (fun () ->
           onode.replay ();
           Array.iter (fun ot -> ignore (charge_probe (probe_keys ot)))
             outer_rows) }

  and merge_join kind pairs residual left right =
    let lnode = exec left in
    let rnode = exec right in
    let lrows = lnode.rows and rrows = rnode.rows in
    let sl = Plan.schema cat left and sr = Plan.schema cat right in
    let loffs = offsets sl (List.map fst pairs) in
    let roffs = offsets sr (List.map snd pairs) in
    let nk = Array.length loffs in
    let holds = pred2 sl sr residual in
    let inner_arity = Schema.arity sr in
    let nl = Array.length lrows and nr = Array.length rrows in
    Context.charge_cpu ctx (nl + nr);
    let cpu = ref (nl + nr) in
    (* key comparisons read the rows in place through the offset arrays *)
    let cmp_lr li rj =
      let lt = lrows.(li) and rt = rrows.(rj) in
      let rec go k =
        if k = nk then 0
        else
          match Value.compare (Tuple.get lt loffs.(k)) (Tuple.get rt roffs.(k))
          with
          | 0 -> go (k + 1)
          | c -> c
      in
      go 0
    in
    let cmp_ll li li' =
      let a = lrows.(li) and b = lrows.(li') in
      let rec go k =
        if k = nk then 0
        else
          match Value.compare (Tuple.get a loffs.(k)) (Tuple.get b loffs.(k))
          with
          | 0 -> go (k + 1)
          | c -> c
      in
      go 0
    in
    let l_nullfree li =
      let t = lrows.(li) in
      let rec go k =
        k = nk || ((not (Value.is_null (Tuple.get t loffs.(k)))) && go (k + 1))
      in
      go 0
    in
    let r_nullfree rj =
      let t = rrows.(rj) in
      let rec go k =
        k = nk || ((not (Value.is_null (Tuple.get t roffs.(k)))) && go (k + 1))
      in
      go 0
    in
    let out = Storage.Vec.create () in
    let i = ref 0 in
    let j = ref 0 in
    while !i < nl do
      if not (l_nullfree !i) then begin
        (* null keys never match *)
        (match kind with
         | Algebra.Left_outer ->
           Storage.Vec.push out
             (Tuple.concat lrows.(!i) (Tuple.nulls inner_arity))
         | Algebra.Anti -> Storage.Vec.push out lrows.(!i)
         | Algebra.Inner | Algebra.Semi -> ());
        incr i
      end
      else begin
        let anchor = !i in
        (* advance right side to the anchor key *)
        while !j < nr && ((not (r_nullfree !j)) || cmp_lr anchor !j > 0) do
          incr j
        done;
        (* the block of right rows with key = anchor key *)
        let bs = !j in
        let be = ref !j in
        while !be < nr && cmp_lr anchor !be = 0 do
          incr be
        done;
        (* emit for every left row sharing this key *)
        while !i < nl && l_nullfree !i && cmp_ll !i anchor = 0 do
          let lt = lrows.(!i) in
          let blen = !be - bs in
          Context.charge_cpu ctx blen;
          cpu := !cpu + blen;
          emit_range out kind ~inner_arity lt rrows bs !be
            ~matches:(fun rt -> holds lt rt);
          incr i
        done
      end
    done;
    let total_cpu = !cpu in
    { rows = Storage.Vec.to_array out;
      replay =
        (fun () ->
           lnode.replay ();
           rnode.replay ();
           Context.charge_cpu ctx total_cpu) }

  and hash_join kind pairs residual left right =
    (* interpreter order: build side (right) executes first *)
    let rnode = exec right in
    let rrows = rnode.rows in
    let nr = Array.length rrows in
    let sl = Plan.schema cat left and sr = Plan.schema cat right in
    let roffs = offsets sr (List.map snd pairs) in
    Context.charge_cpu ctx nr;
    let rpages = Storage.Page.pages_for ~rows:nr sr in
    let lnode = exec left in
    let lrows = lnode.rows in
    let nl = Array.length lrows in
    let lpages = Storage.Page.pages_for ~rows:nl sl in
    (* spill if the build side exceeds work_mem (Grace-style partitioning) *)
    let spill =
      if rpages > ctx.Context.work_mem_pages then 2 * (rpages + lpages) else 0
    in
    if spill > 0 then Context.charge_spill ctx spill;
    let loffs = offsets sl (List.map fst pairs) in
    let holds = pred2 sl sr residual in
    let inner_arity = Schema.arity sr in
    let out = Storage.Vec.create () in
    Context.charge_cpu ctx nl;
    let cpu = ref (nr + nl) in
    let emit_bucket lt items blen =
      Context.charge_cpu ctx blen;
      cpu := !cpu + blen;
      emit_list out kind ~inner_arity lt items ~matches:(fun rt -> holds lt rt)
    in
    let single = Array.length roffs = 1 in
    let rcol = if single then Int_col.extract rrows roffs.(0) else None in
    let lcol =
      if single && rcol <> None then Int_col.extract lrows loffs.(0) else None
    in
    (match (rcol, lcol) with
     | Some rc, Some lc ->
       (* single-column integer keys, both sides extracted into unboxed
          int arrays: open-addressing map, raw int hashing, no key or
          entry allocation; the miss dummy doubles as the empty bucket on
          probe *)
       let absent = { blen = 0; items = [] } in
       let tbl = Keys.Int_map.create ~dummy:absent (max 16 nr) in
       (* NULL keys never join; under the test-only fault they collapse to
          key 0, which the differential fuzzer must detect *)
       let fault = !fault_null_key_as_zero in
       for ri = 0 to nr - 1 do
         let null = Int_col.is_null rc ri in
         if (not null) || fault then begin
           let k = if null then 0 else rc.Int_col.data.(ri) in
           let b = Keys.Int_map.find tbl k in
           if b == absent then
             Keys.Int_map.add tbl k { blen = 1; items = [ rrows.(ri) ] }
           else begin
             b.blen <- b.blen + 1;
             b.items <- rrows.(ri) :: b.items
           end
         end
       done;
       for li = 0 to nl - 1 do
         let lt = lrows.(li) in
         let null = Int_col.is_null lc li in
         if (not null) || fault then begin
           let k = if null then 0 else lc.Int_col.data.(li) in
           let b = Keys.Int_map.find tbl k in
           emit_bucket lt b.items b.blen
         end
         else emit_bucket lt [] 0
       done
     | _ ->
       begin
      let tbl = Keys.Array_tbl.create (max 16 nr) in
      Array.iter
        (fun rt ->
           let k = extract_key roffs rt in
           if key_nullfree k then
             match Keys.Array_tbl.find_opt tbl k with
             | Some b ->
               b.blen <- b.blen + 1;
               b.items <- rt :: b.items
             | None -> Keys.Array_tbl.add tbl k { blen = 1; items = [ rt ] })
        rrows;
      Array.iter
        (fun lt ->
           let k = extract_key loffs lt in
           match
             if key_nullfree k then Keys.Array_tbl.find_opt tbl k else None
           with
           | Some b -> emit_bucket lt b.items b.blen
           | None -> emit_bucket lt [] 0)
        lrows
      end);
    let total_cpu = !cpu in
    { rows = Storage.Vec.to_array out;
      replay =
        (fun () ->
           rnode.replay ();
           lnode.replay ();
           Context.charge_cpu ctx total_cpu;
           if spill > 0 then Context.charge_spill ctx spill) }

  (* ---------------------------------------------------------------- *)
  (* Aggregation *)

  and aggregate ~sorted keys aggs input =
    let child = exec input in
    let rows = child.rows in
    let n = Array.length rows in
    let s = Plan.schema cat input in
    let keyfs = Array.of_list (List.map (fun (e, _) -> Expr.compile s e) keys) in
    let nkeys = Array.length keyfs in
    let argfs =
      Array.of_list
        (List.map
           (fun (a, _) ->
              match Expr.agg_arg a with
              | None -> fun _ -> Value.Int 1 (* count-star: any non-null *)
              | Some e -> Expr.compile s e)
           aggs)
    in
    let agg_arr = Array.of_list (List.map fst aggs) in
    let naggs = Array.length agg_arr in
    Context.charge_cpu ctx n;
    let finalize kv (states : Expr.agg_state array) =
      Array.init (nkeys + naggs) (fun k ->
          if k < nkeys then kv.(k)
          else Expr.agg_final agg_arr.(k - nkeys) states.(k - nkeys))
    in
    let fresh_states () = Array.init naggs (fun _ -> Expr.agg_init ()) in
    let step_all t states =
      for a = 0 to naggs - 1 do
        Expr.agg_step states.(a) (argfs.(a) t)
      done
    in
    let out = Storage.Vec.create () in
    if sorted then begin
      (* stream aggregation over key-sorted input *)
      let cur_key = ref None in
      let cur_states = ref [||] in
      let flush () =
        match !cur_key with
        | None -> ()
        | Some kv -> Storage.Vec.push out (finalize kv !cur_states)
      in
      Array.iter
        (fun t ->
           let kv = Array.init nkeys (fun k -> keyfs.(k) t) in
           (match !cur_key with
            | Some kv' when Keys.equal_array kv kv' -> ()
            | Some _ | None ->
              flush ();
              cur_key := Some kv;
              cur_states := fresh_states ());
           step_all t !cur_states)
        rows;
      flush ()
    end
    else if nkeys = 1 then begin
      (* evaluate the single key once per row, then pick the int fast path
         when every key value is a plain Int *)
      let kv1 = Array.map (fun t -> keyfs.(0) t) rows in
      let all_int =
        Array.for_all
          (fun v -> match v with Value.Int _ -> true | _ -> false)
          kv1
      in
      if all_int then begin
        (* physically unique dummy: [fresh_states] always allocates, and
           a zero-agg states array is [[||]], never length 1 *)
        let dummy = Array.make 1 (Expr.agg_init ()) in
        let tbl = Keys.Int_map.create ~dummy 64 in
        let order = Storage.Vec.create () in
        Array.iteri
          (fun ri t ->
             let k =
               match kv1.(ri) with Value.Int k -> k | _ -> assert false
             in
             let states =
               let st = Keys.Int_map.find tbl k in
               if st != dummy then st
               else begin
                 let st = fresh_states () in
                 Keys.Int_map.add tbl k st;
                 Storage.Vec.push order k;
                 st
               end
             in
             step_all t states)
          rows;
        Storage.Vec.iter
          (fun k ->
             Storage.Vec.push out
               (finalize [| Value.Int k |] (Keys.Int_map.find tbl k)))
          order
      end
      else begin
        let tbl = Keys.Array_tbl.create 64 in
        let order = Storage.Vec.create () in
        Array.iteri
          (fun ri t ->
             let kv = [| kv1.(ri) |] in
             let states =
               match Keys.Array_tbl.find_opt tbl kv with
               | Some st -> st
               | None ->
                 let st = fresh_states () in
                 Keys.Array_tbl.add tbl kv st;
                 Storage.Vec.push order kv;
                 st
             in
             step_all t states)
          rows;
        Storage.Vec.iter
          (fun kv ->
             Storage.Vec.push out (finalize kv (Keys.Array_tbl.find tbl kv)))
          order
      end
    end
    else begin
      let tbl = Keys.Array_tbl.create 64 in
      let order = Storage.Vec.create () in
      Array.iter
        (fun t ->
           let kv = Array.init nkeys (fun k -> keyfs.(k) t) in
           let states =
             match Keys.Array_tbl.find_opt tbl kv with
             | Some st -> st
             | None ->
               let st = fresh_states () in
               Keys.Array_tbl.add tbl kv st;
               Storage.Vec.push order kv;
               st
           in
           step_all t states)
        rows;
      Storage.Vec.iter
        (fun kv ->
           Storage.Vec.push out (finalize kv (Keys.Array_tbl.find tbl kv)))
        order
    end;
    if keys = [] && Storage.Vec.length out = 0 then
      (* scalar aggregate over the empty input: one row *)
      Storage.Vec.push out (finalize [||] (fresh_states ()));
    { rows = Storage.Vec.to_array out;
      replay = (fun () -> child.replay (); Context.charge_cpu ctx n) }

  and hash_distinct i =
    let child = exec i in
    let rows = child.rows in
    let n = Array.length rows in
    Context.charge_cpu ctx n;
    (* tuples are Value.t arrays: used directly as fixed-arity keys *)
    let seen = Keys.Array_tbl.create 64 in
    let out = Storage.Vec.create () in
    Array.iter
      (fun t ->
         if not (Keys.Array_tbl.mem seen t) then begin
           Keys.Array_tbl.add seen t ();
           Storage.Vec.push out t
         end)
      rows;
    { rows = Storage.Vec.to_array out;
      replay = (fun () -> child.replay (); Context.charge_cpu ctx n) }
  in
  exec plan

let run ?ctx ?obs (cat : Storage.Catalog.t) (plan : Plan.t) :
  Executor.result =
  { Executor.schema = Plan.schema cat plan;
    rows = (run_node ?ctx ?obs cat plan).rows }
