(* Batch execution engine.

   Executes the same physical [Plan.t] trees as [Executor], but
   operator-at-a-time over columnar chunks, with bit-identical results
   and identical [Context] cost accounting.  The differences from the
   interpreter are purely mechanical:

   - operators exchange [Eval.Chunk.t] values: per-column typed storage
     (unboxed int/float arrays with null bitmaps, a boxed fallback
     column for strings/bools/mixed numerics) plus a selection vector.
     Filters and semi/anti hash joins narrow the selection without
     materializing rows; rows are built only where an operator is
     inherently row-shaped (sort payloads, nested-loop rescans,
     join-row emission, the final result);
   - predicates and projection items whose leaves are all integer
     columns/constants compile to unboxed closures ([Eval.int_expr] /
     [Eval.pred_store]) and run directly over the column data;
   - join/aggregation keys hash straight out of the columns: raw ints
     on the single-integer-column fast path ([Keys.Int_map]), and
     column-accessor probing ([Keys.Cols_tbl]) otherwise, so a probe
     never allocates a key array;
   - aggregates over integer arguments fold unboxed
     ([Expr.agg_step_int]) with key extraction amortized per chunk.

   Cost charging is decoupled from data movement — all charging loops
   run over *logical* (selection-order) row counts, so the counters are
   identical to the row-at-a-time engine's.  Executing a node returns,
   besides its chunk, a [replay] closure that charges the Context
   exactly as one *warm* re-execution of the interpreter would: page
   reads re-issued against the (stateful, LRU) buffer pool in the same
   order, CPU and spill totals re-charged.  [Nested_loop] — whose
   interpreter semantics re-execute the inner child once per outer
   tuple — computes the inner rows once and calls the inner node's
   [replay] for every further outer tuple: the rescan charges the
   buffer pool without recomputing the subtree.  The rescan cache is
   the node itself, held by physical identity in the operator's
   closure; [Materialize] nodes are additionally memoized by physical
   identity within one [run] (their replay is a no-op — the
   interpreter's memo makes warm rescans free). *)

open Relalg
open Eval

let default_chunk_rows = 1024

(* Test-only fault injection: when set, the single-column integer hash
   join treats NULL keys as [Int 0] on both the build and probe sides —
   simulating the loss of the NULL-key guard on the [Keys.Int_map] fast
   path.  The differential fuzzer's self-test flips this to prove an
   injected engine bug is caught, shrunk and replayed; nothing else may
   set it. *)
let fault_null_key_as_zero = ref false

type node = {
  chunk : Chunk.t;
  replay : unit -> unit; (* charge ctx as one warm re-execution *)
}

(* Gather a column through a selection vector. *)
let gather_col (c : Chunk.col) (sel : int array) : Chunk.col =
  let n = Array.length sel in
  match c with
  | Chunk.Ints (d, nb) ->
    let d' = Array.make n 0 and nb' = Bytes.make n '\000' in
    for i = 0 to n - 1 do
      let p = Array.unsafe_get sel i in
      d'.(i) <- d.(p);
      Bytes.set nb' i (Bytes.get nb p)
    done;
    Chunk.Ints (d', nb')
  | Chunk.Floats (d, nb) ->
    let d' = Array.make n 0. and nb' = Bytes.make n '\000' in
    for i = 0 to n - 1 do
      let p = Array.unsafe_get sel i in
      d'.(i) <- d.(p);
      Bytes.set nb' i (Bytes.get nb p)
    done;
    Chunk.Floats (d', nb')
  | Chunk.Boxed v -> Chunk.Boxed (Array.map (fun p -> v.(p)) sel)

(* Shared helpers ([pred1]/[pred2], offsets, buckets, join-row emission,
   the chunk representation and the unboxed expression compilers) live
   in {!Eval}, common with the morsel executor. *)

(* Sketch-build hook: asked per scanned (table, column), it returns the
   feed callback for columns an estimator wants sketched, or [None].  A
   plain function type — the sketch state itself lives above [exec] in
   the dependency order (the pipeline owns a [Stats.Sketch] registry). *)
type sketch_hook = table:string -> column:string -> (int -> unit) option

(* Feed the full (pre-filter) stores of a sequential scan to the hook:
   sketches summarize the base column, one pass, nulls skipped.  Index
   scans never feed — a range fetch sees only part of the column. *)
let feed_sketches (sketch : sketch_hook option) (t : Storage.Table.t)
    (store : Chunk.store) : unit =
  match sketch with
  | None -> ()
  | Some hook ->
    List.iteri
      (fun j (c : Schema.column) ->
         match hook ~table:t.Storage.Table.name ~column:c.Schema.name with
         | Some f -> ignore (Chunk.feed_ints store j f)
         | None -> ())
      t.Storage.Table.schema

let run_node ?(ctx = Context.create ()) ?obs ?sketch
    ?(chunk_rows = default_chunk_rows) (cat : Storage.Catalog.t)
    (plan : Plan.t) : node =
  let memo : (Plan.t * node) list ref = ref [] in
  (* Filter a dense store: compile the predicate once, then gather the
     selection vector in [chunk_rows] blocks. *)
  let select_dense s f (store : Chunk.store) : Chunk.t =
    let keep = pred_store s f store in
    let n = store.Chunk.len in
    let sel = Storage.Vec.create () in
    let base = ref 0 in
    while !base < n do
      let stop = min n (!base + chunk_rows) in
      for j = !base to stop - 1 do
        if keep j then Storage.Vec.push sel j
      done;
      base := stop
    done;
    { Chunk.store; sel = Some (Storage.Vec.to_array sel) }
  in
  (* Instrumentation is a single match per operator execution when off.
     The measured copy of the node wraps [replay] so each replay invocation
     counts as a rescan — mirroring the interpreter, where a rescan is a
     re-execution of the node through [measure].  The memo keeps the
     unwrapped node, so a memo hit re-wraps exactly once. *)
  let rec exec (p : Plan.t) : node =
    match obs with
    | None -> exec_op p
    | Some r ->
      let n =
        Instrument.measure r ctx p
          ~rows:(fun (n : node) -> Chunk.length n.chunk)
          (fun () -> exec_op p)
      in
      { n with replay = Instrument.measured_replay r ctx p n.replay }

  and exec_op (p : Plan.t) : node =
    match p with
    | Plan.Seq_scan { table; alias; filter } -> seq_scan table alias filter
    | Plan.Index_scan { table; alias; column; lo; hi; filter } ->
      index_scan table alias column lo hi filter
    | Plan.Filter (f, i) -> filter_op f i
    | Plan.Project (items, i) -> project items i
    | Plan.Sort (keys, i) -> sort keys i
    | Plan.Materialize i -> (
      match List.find_opt (fun (q, _) -> q == p) !memo with
      | Some (_, n) -> n
      | None ->
        let child = exec i in
        (* the interpreter's memo makes warm rescans of a Materialize
           free: replay charges nothing *)
        let n = { chunk = child.chunk; replay = (fun () -> ()) } in
        memo := (p, n) :: !memo;
        n)
    | Plan.Nested_loop { kind; pred; outer; inner } ->
      nested_loop kind pred outer inner
    | Plan.Index_nl
        { kind; outer; table; alias; index; columns = _; outer_keys; residual }
      ->
      index_nl kind outer table alias index outer_keys residual
    | Plan.Merge_join { kind; pairs; residual; left; right } ->
      merge_join kind pairs residual left right
    | Plan.Hash_join { kind; pairs; residual; left; right } ->
      hash_join kind pairs residual left right
    | Plan.Hash_agg { keys; aggs; input } -> aggregate ~sorted:false keys aggs input
    | Plan.Stream_agg { keys; aggs; input } -> aggregate ~sorted:true keys aggs input
    | Plan.Hash_distinct i -> hash_distinct i

  (* ---------------------------------------------------------------- *)
  (* Scans *)

  and seq_scan table alias filter =
    let t = Storage.Catalog.table cat table in
    let pages = Storage.Table.page_count t in
    let n = Storage.Table.row_count t in
    let charge () =
      for pg = 0 to pages - 1 do
        Context.read_page ctx ~random:false (table, pg)
      done;
      Context.charge_cpu ctx n
    in
    charge ();
    let s = Schema.requalify t.Storage.Table.schema ~rel:alias in
    let store =
      Chunk.store_of_rows ~arity:(Schema.arity s) (Storage.Table.rows_array t)
    in
    feed_sketches sketch t store;
    let chunk =
      match filter with
      | None -> Chunk.dense store
      | Some f ->
        (* pushed filter: emit a selection over the scanned store — int
           comparisons run unboxed over the column extractions *)
        select_dense s f store
    in
    { chunk; replay = charge }

  and index_scan table alias column lo hi filter =
    let t = Storage.Catalog.table cat table in
    let idx =
      match Storage.Catalog.index_on cat ~table ~column with
      | Some i -> i
      | None ->
        invalid_arg
          (Printf.sprintf "Index_scan: no index on %s(%s)" table column)
    in
    let entries = Storage.Btree.range idx ~lo ~hi in
    let lo_pos =
      match lo with
      | Storage.Btree.Unbounded -> Storage.Btree.upper_bound idx [ Value.Null ]
      | Storage.Btree.Incl k -> Storage.Btree.lower_bound idx [ k ]
      | Storage.Btree.Excl k -> Storage.Btree.upper_bound idx [ k ]
    in
    let charge () = Access.charge_index_fetch ctx idx t ~entries ~lo_pos in
    charge ();
    let s = Schema.requalify t.Storage.Table.schema ~rel:alias in
    let store =
      Chunk.store_of_rows ~arity:(Schema.arity s) (Access.fetch_rows t entries)
    in
    let chunk =
      match filter with
      | None -> Chunk.dense store
      | Some f -> select_dense s f store
    in
    { chunk; replay = charge }

  (* ---------------------------------------------------------------- *)
  (* Row-at-a-time scalar operators, vectorized *)

  and filter_op f i =
    let child = exec i in
    let s = Plan.schema cat i in
    let ch = child.chunk in
    let n = Chunk.length ch in
    let keep = pred_store s f ch.Chunk.store in
    Context.charge_cpu ctx n;
    (* narrow the selection: survivors of the child's logical iteration,
       gathered in [chunk_rows] blocks — the data is never copied *)
    let phys = Chunk.phys ch in
    let sel = Storage.Vec.create () in
    let base = ref 0 in
    while !base < n do
      let stop = min n (!base + chunk_rows) in
      for j = !base to stop - 1 do
        let p = phys j in
        if keep p then Storage.Vec.push sel p
      done;
      base := stop
    done;
    { chunk = { Chunk.store = ch.Chunk.store;
                sel = Some (Storage.Vec.to_array sel) };
      replay = (fun () -> child.replay (); Context.charge_cpu ctx n) }

  and project items i =
    let child = exec i in
    let s = Plan.schema cat i in
    let ch = child.chunk in
    let store = ch.Chunk.store in
    let n = Chunk.length ch in
    Context.charge_cpu ctx n;
    let es = Array.of_list (List.map fst items) in
    let nf = Array.length es in
    let chunk =
      match store.Chunk.rows with
      | Some srows ->
        (* the child is already materialized: one fused row-at-a-time
           pass — plain columns share the existing boxes, integer
           arithmetic re-boxes through the interned small-int cache —
           beats building typed columns that re-box at the next
           materialization boundary.  Output columns stay lazy. *)
        let fs = Array.map (proj_item s) es in
        let out = Array.make n [||] in
        (* item evaluation stays left-to-right (explicit lets below) so
           any expression error surfaces in the interpreter's order *)
        (match ch.Chunk.sel, fs with
         | None, [| f0 |] ->
           for j = 0 to n - 1 do
             Array.unsafe_set out j [| f0 (Array.unsafe_get srows j) |]
           done
         | None, [| f0; f1 |] ->
           for j = 0 to n - 1 do
             let t = Array.unsafe_get srows j in
             let a = f0 t in
             let b = f1 t in
             Array.unsafe_set out j [| a; b |]
           done
         | None, fs ->
           for j = 0 to n - 1 do
             let t = Array.unsafe_get srows j in
             let o = Array.make nf Value.Null in
             for c = 0 to nf - 1 do
               Array.unsafe_set o c ((Array.unsafe_get fs c) t)
             done;
             Array.unsafe_set out j o
           done
         | Some sel, [| f0; f1 |] ->
           for j = 0 to n - 1 do
             let t = Array.unsafe_get srows (Array.unsafe_get sel j) in
             let a = f0 t in
             let b = f1 t in
             Array.unsafe_set out j [| a; b |]
           done
         | Some sel, fs ->
           for j = 0 to n - 1 do
             let t = Array.unsafe_get srows (Array.unsafe_get sel j) in
             let o = Array.make nf Value.Null in
             for c = 0 to nf - 1 do
               Array.unsafe_set o c ((Array.unsafe_get fs c) t)
             done;
             Array.unsafe_set out j o
           done);
        Chunk.of_rows ~arity:nf out
      | None ->
        (* column-at-a-time: plain column refs share (or gather) the
           child's typed columns; integer expressions fill unboxed
           output columns; everything else falls back to compiled row
           evaluation.  The output is always dense — a projection
           consumes the selection. *)
        let phys = Chunk.phys ch in
        let rows = lazy (Chunk.to_rows ch) in
        let out_cols =
          Array.map
            (fun e ->
               let c =
                 match col_offset s e with
                 | Some off -> (
                   match ch.Chunk.sel with
                   | None -> Chunk.col store off (* share, zero cost *)
                   | Some sel -> gather_col (Chunk.col store off) sel)
                 | None -> (
                   match int_expr s store e with
                   | Some v ->
                     let d = Array.make n 0 and nb = Bytes.make n '\000' in
                     for j = 0 to n - 1 do
                       let p = phys j in
                       if v.inull p then Bytes.set nb j '\001'
                       else d.(j) <- v.iv p
                     done;
                     Chunk.Ints (d, nb)
                   | None ->
                     let f = Expr.compile s e in
                     let r = Lazy.force rows in
                     Chunk.Boxed (Array.init n (fun j -> f r.(j))))
               in
               Some c)
            es
        in
        Chunk.dense { Chunk.arity = nf; len = n; rows = None; cols = out_cols }
    in
    { chunk;
      replay = (fun () -> child.replay (); Context.charge_cpu ctx n) }

  and sort keys i =
    let child = exec i in
    let s = Plan.schema cat i in
    let fs =
      Array.of_list
        (List.map
           (fun (k : Plan.sort_key) ->
              (Expr.compile s k.Plan.key, k.Plan.descending))
           keys)
    in
    let nk = Array.length fs in
    let rows = Chunk.to_rows child.chunk in
    let n = Array.length rows in
    let cpu = n * Access.log2_ceil n in
    let pages = Storage.Page.pages_for ~rows:n s in
    let spill =
      Access.sort_spill_pages ~work_mem:ctx.Context.work_mem_pages ~pages
    in
    let charge () =
      Context.charge_cpu ctx cpu;
      Context.charge_spill ctx spill
    in
    charge ();
    (* plain column keys sort in place through precompiled offsets; computed
       keys are decorated once per row — either way no expression is
       evaluated inside the comparator *)
    let key_offsets =
      List.map
        (fun (k : Plan.sort_key) ->
           match k.Plan.key with
           | Expr.Col { rel; col } -> (
             match Schema.index_of s ~rel ~name:col with
             | off -> Some (off, k.Plan.descending)
             | exception _ -> None)
           | _ -> None)
        keys
    in
    let sorted =
      if List.for_all Option.is_some key_offsets then begin
        let ks = Array.of_list (List.filter_map Fun.id key_offsets) in
        let cmp a b =
          let rec go k =
            if k = nk then 0
            else
              let off, desc = ks.(k) in
              match Value.compare (Tuple.get a off) (Tuple.get b off) with
              | 0 -> go (k + 1)
              | c -> if desc then -c else c
          in
          go 0
        in
        let copy = Array.copy rows in
        Array.stable_sort cmp copy;
        copy
      end
      else begin
        let deco =
          Array.map (fun t -> (Array.init nk (fun k -> fst fs.(k) t), t)) rows
        in
        let cmp (ka, _) (kb, _) =
          let rec go k =
            if k = nk then 0
            else
              match Value.compare ka.(k) kb.(k) with
              | 0 -> go (k + 1)
              | c -> if snd fs.(k) then -c else c
          in
          go 0
        in
        Array.stable_sort cmp deco;
        Array.map snd deco
      end
    in
    { chunk = Chunk.of_rows ~arity:(Schema.arity s) sorted;
      replay = (fun () -> child.replay (); charge ()) }

  (* ---------------------------------------------------------------- *)
  (* Joins.  Join-row emission ([emit_range]/[emit_list]) is shared with
     the morsel executor via {!Eval}. *)

  and nested_loop kind pred outer inner =
    let onode = exec outer in
    let outer_rows = Chunk.to_rows onode.chunk in
    let n_out = Array.length outer_rows in
    let so = Plan.schema cat outer and si = Plan.schema cat inner in
    let inner_arity = Schema.arity si in
    let out_arity = join_arity kind ~outer:(Schema.arity so) ~inner:inner_arity in
    if n_out = 0 then
      (* the interpreter never executes the inner of an empty outer *)
      { chunk = Chunk.of_rows ~arity:out_arity [||]; replay = onode.replay }
    else begin
      (* the rescan cache: the inner subtree runs once; every further
         outer tuple replays its cost against the buffer pool *)
      let inode = exec inner in
      let inner_rows = Chunk.to_rows inode.chunk in
      let n_in = Array.length inner_rows in
      Context.charge_cpu ctx n_in;
      for _ = 2 to n_out do
        inode.replay ();
        Context.charge_cpu ctx n_in
      done;
      let holds = pred2 so si pred in
      let out = Storage.Vec.create () in
      for oi = 0 to n_out - 1 do
        let ot = outer_rows.(oi) in
        emit_range out kind ~inner_arity ot inner_rows 0 n_in
          ~matches:(fun it -> holds ot it)
      done;
      { chunk = Chunk.of_rows ~arity:out_arity (Storage.Vec.to_array out);
        replay =
          (fun () ->
             onode.replay ();
             for _ = 1 to n_out do
               inode.replay ();
               Context.charge_cpu ctx n_in
             done) }
    end

  and index_nl kind outer table alias index outer_keys residual =
    let t = Storage.Catalog.table cat table in
    let idx =
      match Storage.Catalog.index_named cat ~table ~name:index with
      | Some i -> i
      | None ->
        invalid_arg (Printf.sprintf "Index_nl: no index %s on %s" index table)
    in
    let onode = exec outer in
    let outer_rows = Chunk.to_rows onode.chunk in
    let so = Plan.schema cat outer in
    let si = Schema.requalify t.Storage.Table.schema ~rel:alias in
    let keyfs = Array.of_list (List.map (Expr.compile so) outer_keys) in
    let probe_keys ot = Array.to_list (Array.map (fun f -> f ot) keyfs) in
    let holds = pred2 so si residual in
    let inner_arity = Schema.arity si in
    let out_arity = join_arity kind ~outer:(Schema.arity so) ~inner:inner_arity in
    let charge_probe ks =
      let entries = Storage.Btree.probe idx ks in
      Access.charge_index_fetch ctx idx t ~entries
        ~lo_pos:(Storage.Btree.lower_bound idx ks);
      Context.charge_cpu ctx (1 + Array.length entries);
      entries
    in
    let out = Storage.Vec.create () in
    Array.iter
      (fun ot ->
         let entries = charge_probe (probe_keys ot) in
         let matches = Access.fetch_rows t entries in
         emit_range out kind ~inner_arity ot matches 0 (Array.length matches)
           ~matches:(fun it -> holds ot it))
      outer_rows;
    { chunk = Chunk.of_rows ~arity:out_arity (Storage.Vec.to_array out);
      replay =
        (fun () ->
           onode.replay ();
           Array.iter (fun ot -> ignore (charge_probe (probe_keys ot)))
             outer_rows) }

  and merge_join kind pairs residual left right =
    let lnode = exec left in
    let rnode = exec right in
    let lrows = Chunk.to_rows lnode.chunk in
    let rrows = Chunk.to_rows rnode.chunk in
    let sl = Plan.schema cat left and sr = Plan.schema cat right in
    let loffs = offsets sl (List.map fst pairs) in
    let roffs = offsets sr (List.map snd pairs) in
    let nk = Array.length loffs in
    let holds = pred2 sl sr residual in
    let inner_arity = Schema.arity sr in
    let out_arity = join_arity kind ~outer:(Schema.arity sl) ~inner:inner_arity in
    let nl = Array.length lrows and nr = Array.length rrows in
    Context.charge_cpu ctx (nl + nr);
    let cpu = ref (nl + nr) in
    (* key comparisons read the rows in place through the offset arrays *)
    let cmp_lr li rj =
      let lt = lrows.(li) and rt = rrows.(rj) in
      let rec go k =
        if k = nk then 0
        else
          match Value.compare (Tuple.get lt loffs.(k)) (Tuple.get rt roffs.(k))
          with
          | 0 -> go (k + 1)
          | c -> c
      in
      go 0
    in
    let cmp_ll li li' =
      let a = lrows.(li) and b = lrows.(li') in
      let rec go k =
        if k = nk then 0
        else
          match Value.compare (Tuple.get a loffs.(k)) (Tuple.get b loffs.(k))
          with
          | 0 -> go (k + 1)
          | c -> c
      in
      go 0
    in
    let l_nullfree li =
      let t = lrows.(li) in
      let rec go k =
        k = nk || ((not (Value.is_null (Tuple.get t loffs.(k)))) && go (k + 1))
      in
      go 0
    in
    let r_nullfree rj =
      let t = rrows.(rj) in
      let rec go k =
        k = nk || ((not (Value.is_null (Tuple.get t roffs.(k)))) && go (k + 1))
      in
      go 0
    in
    let out = Storage.Vec.create () in
    let i = ref 0 in
    let j = ref 0 in
    while !i < nl do
      if not (l_nullfree !i) then begin
        (* null keys never match *)
        (match kind with
         | Algebra.Left_outer ->
           Storage.Vec.push out
             (Tuple.concat lrows.(!i) (Tuple.nulls inner_arity))
         | Algebra.Anti -> Storage.Vec.push out lrows.(!i)
         | Algebra.Inner | Algebra.Semi -> ());
        incr i
      end
      else begin
        let anchor = !i in
        (* advance right side to the anchor key *)
        while !j < nr && ((not (r_nullfree !j)) || cmp_lr anchor !j > 0) do
          incr j
        done;
        (* the block of right rows with key = anchor key *)
        let bs = !j in
        let be = ref !j in
        while !be < nr && cmp_lr anchor !be = 0 do
          incr be
        done;
        (* emit for every left row sharing this key *)
        while !i < nl && l_nullfree !i && cmp_ll !i anchor = 0 do
          let lt = lrows.(!i) in
          let blen = !be - bs in
          Context.charge_cpu ctx blen;
          cpu := !cpu + blen;
          emit_range out kind ~inner_arity lt rrows bs !be
            ~matches:(fun rt -> holds lt rt);
          incr i
        done
      end
    done;
    let total_cpu = !cpu in
    { chunk = Chunk.of_rows ~arity:out_arity (Storage.Vec.to_array out);
      replay =
        (fun () ->
           lnode.replay ();
           rnode.replay ();
           Context.charge_cpu ctx total_cpu) }

  and hash_join kind pairs residual left right =
    (* interpreter order: build side (right) executes first *)
    let rnode = exec right in
    let rch = rnode.chunk in
    let nr = Chunk.length rch in
    let sl = Plan.schema cat left and sr = Plan.schema cat right in
    let roffs = offsets sr (List.map snd pairs) in
    Context.charge_cpu ctx nr;
    let rpages = Storage.Page.pages_for ~rows:nr sr in
    let lnode = exec left in
    let lch = lnode.chunk in
    let nl = Chunk.length lch in
    let lpages = Storage.Page.pages_for ~rows:nl sl in
    (* spill if the build side exceeds work_mem (Grace-style partitioning) *)
    let spill =
      if rpages > ctx.Context.work_mem_pages then 2 * (rpages + lpages) else 0
    in
    if spill > 0 then Context.charge_spill ctx spill;
    let loffs = offsets sl (List.map fst pairs) in
    let inner_arity = Schema.arity sr in
    let out_arity = join_arity kind ~outer:(Schema.arity sl) ~inner:inner_arity in
    Context.charge_cpu ctx nl;
    let cpu = ref (nr + nl) in
    let charge_bucket blen =
      Context.charge_cpu ctx blen;
      cpu := !cpu + blen
    in
    let finish chunk =
      let total_cpu = !cpu in
      { chunk;
        replay =
          (fun () ->
             rnode.replay ();
             lnode.replay ();
             Context.charge_cpu ctx total_cpu;
             if spill > 0 then Context.charge_spill ctx spill) }
    in
    let rstore = rch.Chunk.store and lstore = lch.Chunk.store in
    let rphys = Chunk.phys rch and lphys = Chunk.phys lch in
    let fault = !fault_null_key_as_zero in
    (* semi/anti with no residual never build an output row: the result
       is a selection over the left store, and the build side carries
       bucket counts only — neither side materializes rows *)
    let semi_only =
      (match kind with Algebra.Semi | Algebra.Anti -> true | _ -> false)
      && residual = Expr.ftrue
    in
    let keep_if_match =
      match kind with Algebra.Semi -> true | _ -> false
    in
    let nk = Array.length roffs in
    let single = nk = 1 in
    let rcol = if single then Chunk.int_col rstore roffs.(0) else None in
    let lcol =
      if single && rcol <> None then Chunk.int_col lstore loffs.(0) else None
    in
    match (rcol, lcol) with
    | Some (rd, rnb), Some (ld, lnb) when semi_only ->
      (* unboxed int keys, count-only buckets, selection-vector output *)
      let absent = ref (-1) in
      let tbl = Keys.Int_map.create ~dummy:absent (max 16 nr) in
      for ri = 0 to nr - 1 do
        let pr = rphys ri in
        let null = Bytes.get rnb pr <> '\000' in
        if (not null) || fault then begin
          let k = if null then 0 else rd.(pr) in
          let c = Keys.Int_map.find tbl k in
          if c == absent then Keys.Int_map.add tbl k (ref 1) else incr c
        end
      done;
      let sel = Storage.Vec.create () in
      for li = 0 to nl - 1 do
        let pl = lphys li in
        let null = Bytes.get lnb pl <> '\000' in
        let blen =
          if (not null) || fault then begin
            let k = if null then 0 else ld.(pl) in
            let c = Keys.Int_map.find tbl k in
            if c == absent then 0 else !c
          end
          else 0
        in
        charge_bucket blen;
        if (blen > 0) = keep_if_match then Storage.Vec.push sel pl
      done;
      finish
        { Chunk.store = lstore; sel = Some (Storage.Vec.to_array sel) }
    | Some (rd, rnb), Some (ld, lnb) ->
      (* single-column integer keys, both sides already unboxed in the
         column store: open-addressing map, raw int hashing, no key or
         entry allocation; the miss dummy doubles as the empty bucket on
         probe.  NULL keys never join; under the test-only fault they
         collapse to key 0, which the differential fuzzer must detect. *)
      let rrows = Chunk.to_rows rch in
      let lrows = Chunk.to_rows lch in
      let holds = pred2 sl sr residual in
      let out = Storage.Vec.create () in
      let absent = { blen = 0; items = [] } in
      let tbl = Keys.Int_map.create ~dummy:absent (max 16 nr) in
      for ri = 0 to nr - 1 do
        let pr = rphys ri in
        let null = Bytes.get rnb pr <> '\000' in
        if (not null) || fault then begin
          let k = if null then 0 else rd.(pr) in
          let b = Keys.Int_map.find tbl k in
          if b == absent then
            Keys.Int_map.add tbl k { blen = 1; items = [ rrows.(ri) ] }
          else begin
            b.blen <- b.blen + 1;
            b.items <- rrows.(ri) :: b.items
          end
        end
      done;
      for li = 0 to nl - 1 do
        let lt = lrows.(li) in
        let pl = lphys li in
        let null = Bytes.get lnb pl <> '\000' in
        let items, blen =
          if (not null) || fault then begin
            let k = if null then 0 else ld.(pl) in
            let b = Keys.Int_map.find tbl k in
            (b.items, b.blen)
          end
          else ([], 0)
        in
        charge_bucket blen;
        emit_list out kind ~inner_arity lt items
          ~matches:(fun rt -> holds lt rt)
      done;
      finish (Chunk.of_rows ~arity:out_arity (Storage.Vec.to_array out))
    | _ when semi_only ->
      (* generic keys, count-only buckets, selection-vector output: the
         build materializes each key once; probes hash and compare
         column-wise through accessors *)
      let rgets = Array.map (fun off -> Chunk.getter rstore off) roffs in
      let lgets = Array.map (fun off -> Chunk.getter lstore off) loffs in
      let absent = ref (-1) in
      let tbl = Keys.Cols_tbl.create ~dummy:absent (max 16 nr) in
      for ri = 0 to nr - 1 do
        let pr = rphys ri in
        let rec nullfree c =
          c = nk || ((not (Value.is_null (rgets.(c) pr))) && nullfree (c + 1))
        in
        if nullfree 0 then begin
          let c = Keys.Cols_tbl.find tbl rgets pr in
          if c == absent then
            Keys.Cols_tbl.add tbl
              (Array.init nk (fun c -> rgets.(c) pr))
              (ref 1)
          else incr c
        end
      done;
      let sel = Storage.Vec.create () in
      for li = 0 to nl - 1 do
        let pl = lphys li in
        let rec nullfree c =
          c = nk || ((not (Value.is_null (lgets.(c) pl))) && nullfree (c + 1))
        in
        let blen =
          if nullfree 0 then begin
            let c = Keys.Cols_tbl.find tbl lgets pl in
            if c == absent then 0 else !c
          end
          else 0
        in
        charge_bucket blen;
        if (blen > 0) = keep_if_match then Storage.Vec.push sel pl
      done;
      finish
        { Chunk.store = lstore; sel = Some (Storage.Vec.to_array sel) }
    | _ ->
      (* generic keys: the build materializes each key exactly once; a
         probe hashes and compares column-wise through accessors, never
         allocating a key array *)
      let rrows = Chunk.to_rows rch in
      let lrows = Chunk.to_rows lch in
      let holds = pred2 sl sr residual in
      let rgets = Array.map (fun off -> Chunk.getter rstore off) roffs in
      let lgets = Array.map (fun off -> Chunk.getter lstore off) loffs in
      let out = Storage.Vec.create () in
      let absent = { blen = 0; items = [] } in
      let tbl = Keys.Cols_tbl.create ~dummy:absent (max 16 nr) in
      for ri = 0 to nr - 1 do
        let pr = rphys ri in
        let rec nullfree c =
          c = nk || ((not (Value.is_null (rgets.(c) pr))) && nullfree (c + 1))
        in
        if nullfree 0 then begin
          let b = Keys.Cols_tbl.find tbl rgets pr in
          if b == absent then
            Keys.Cols_tbl.add tbl
              (Array.init nk (fun c -> rgets.(c) pr))
              { blen = 1; items = [ rrows.(ri) ] }
          else begin
            b.blen <- b.blen + 1;
            b.items <- rrows.(ri) :: b.items
          end
        end
      done;
      for li = 0 to nl - 1 do
        let lt = lrows.(li) in
        let pl = lphys li in
        let rec nullfree c =
          c = nk || ((not (Value.is_null (lgets.(c) pl))) && nullfree (c + 1))
        in
        let items, blen =
          if nullfree 0 then begin
            let b = Keys.Cols_tbl.find tbl lgets pl in
            (b.items, b.blen)
          end
          else ([], 0)
        in
        charge_bucket blen;
        emit_list out kind ~inner_arity lt items
          ~matches:(fun rt -> holds lt rt)
      done;
      finish (Chunk.of_rows ~arity:out_arity (Storage.Vec.to_array out))

  (* ---------------------------------------------------------------- *)
  (* Aggregation *)

  and aggregate ~sorted keys aggs input =
    let child = exec input in
    let ch = child.chunk in
    let store = ch.Chunk.store in
    let n = Chunk.length ch in
    let s = Plan.schema cat input in
    let nkeys = List.length keys in
    let agg_arr = Array.of_list (List.map fst aggs) in
    let naggs = Array.length agg_arr in
    Context.charge_cpu ctx n;
    let finalize kv (states : Expr.agg_state array) =
      Array.init (nkeys + naggs) (fun k ->
          if k < nkeys then kv.(k)
          else Expr.agg_final agg_arr.(k - nkeys) states.(k - nkeys))
    in
    let fresh_states () = Array.init naggs (fun _ -> Expr.agg_init ()) in
    let out = Storage.Vec.create () in
    if sorted then begin
      (* stream aggregation over key-sorted input: row-shaped *)
      let rows = Chunk.to_rows ch in
      let keyfs =
        Array.of_list (List.map (fun (e, _) -> Expr.compile s e) keys)
      in
      let argfs =
        Array.of_list
          (List.map
             (fun (a, _) ->
                match Expr.agg_arg a with
                | None -> fun _ -> Value.Int 1 (* count-star: any non-null *)
                | Some e -> Expr.compile s e)
             aggs)
      in
      let step_all t states =
        for a = 0 to naggs - 1 do
          Expr.agg_step states.(a) (argfs.(a) t)
        done
      in
      let cur_key = ref None in
      let cur_states = ref [||] in
      let flush () =
        match !cur_key with
        | None -> ()
        | Some kv -> Storage.Vec.push out (finalize kv !cur_states)
      in
      Array.iter
        (fun t ->
           let kv = Array.init nkeys (fun k -> keyfs.(k) t) in
           (match !cur_key with
            | Some kv' when Keys.equal_array kv kv' -> ()
            | Some _ | None ->
              flush ();
              cur_key := Some kv;
              cur_states := fresh_states ());
           step_all t !cur_states)
        rows;
      flush ()
    end
    else begin
      (* hash aggregation, column-at-a-time: aggregate arguments that
         compile to integer vectors fold unboxed through
         [Expr.agg_step_int]; the rest step through compiled row
         closures.  Steppers take physical indices. *)
      let phys = Chunk.phys ch in
      let steppers =
        Array.of_list
          (List.map
             (fun (a, _) ->
                match Expr.agg_arg a with
                | None -> fun st (_ : int) -> Expr.agg_step_int st 1
                | Some e -> (
                  match int_expr s store e with
                  | Some v ->
                    fun st p ->
                      if not (v.inull p) then Expr.agg_step_int st (v.iv p)
                  | None ->
                    let f = Expr.compile s e in
                    let rows = Chunk.rows_view store in
                    fun st p -> Expr.agg_step st (f rows.(p))))
             aggs)
      in
      let step_all p states =
        for a = 0 to naggs - 1 do
          steppers.(a) states.(a) p
        done
      in
      (* single integer key with no NULL at any selected row: raw int
         hashing, no key boxing *)
      let int_key =
        match keys with
        | [ (e, _) ] -> (
          match int_expr s store e with
          | Some v ->
            let rec clean i = i = n || ((not (v.inull (phys i))) && clean (i + 1)) in
            if clean 0 then Some v else None
          | None -> None)
        | _ -> None
      in
      match int_key with
      | Some v ->
        (* physically unique dummy: [fresh_states] always allocates, and
           a zero-agg states array is [[||]], never length 1 *)
        let dummy = Array.make 1 (Expr.agg_init ()) in
        let tbl = Keys.Int_map.create ~dummy 64 in
        let order = Storage.Vec.create () in
        for j = 0 to n - 1 do
          let p = phys j in
          let k = v.iv p in
          let states =
            let st = Keys.Int_map.find tbl k in
            if st != dummy then st
            else begin
              let st = fresh_states () in
              Keys.Int_map.add tbl k st;
              Storage.Vec.push order k;
              st
            end
          in
          step_all p states
        done;
        Storage.Vec.iter
          (fun k ->
             Storage.Vec.push out
               (finalize [| Value.Int k |] (Keys.Int_map.find tbl k)))
          order
      | None ->
        (* generic keys: probe column-wise ([Keys.Cols_tbl]); the key is
           materialized once per group, in first-occurrence order *)
        let kgets =
          Array.of_list
            (List.map
               (fun (e, _) ->
                  match col_offset s e with
                  | Some off -> Chunk.getter store off
                  | None ->
                    let f = Expr.compile s e in
                    let rows = Chunk.rows_view store in
                    fun p -> f rows.(p))
               keys)
        in
        let dummy = Array.make 1 (Expr.agg_init ()) in
        let tbl = Keys.Cols_tbl.create ~dummy 64 in
        let order = Storage.Vec.create () in
        for j = 0 to n - 1 do
          let p = phys j in
          let states =
            let st = Keys.Cols_tbl.find tbl kgets p in
            if st != dummy then st
            else begin
              let st = fresh_states () in
              let kv = Array.init nkeys (fun c -> kgets.(c) p) in
              Keys.Cols_tbl.add tbl kv st;
              Storage.Vec.push order (kv, st);
              st
            end
          in
          step_all p states
        done;
        Storage.Vec.iter
          (fun (kv, st) -> Storage.Vec.push out (finalize kv st))
          order
    end;
    if keys = [] && Storage.Vec.length out = 0 then
      (* scalar aggregate over the empty input: one row *)
      Storage.Vec.push out (finalize [||] (fresh_states ()));
    { chunk =
        Chunk.of_rows ~arity:(nkeys + naggs) (Storage.Vec.to_array out);
      replay = (fun () -> child.replay (); Context.charge_cpu ctx n) }

  and hash_distinct i =
    let child = exec i in
    let rows = Chunk.to_rows child.chunk in
    let n = Array.length rows in
    Context.charge_cpu ctx n;
    (* tuples are Value.t arrays: used directly as fixed-arity keys *)
    let seen = Keys.Array_tbl.create 64 in
    let out = Storage.Vec.create () in
    Array.iter
      (fun t ->
         if not (Keys.Array_tbl.mem seen t) then begin
           Keys.Array_tbl.add seen t ();
           Storage.Vec.push out t
         end)
      rows;
    { chunk =
        Chunk.of_rows
          ~arity:(Schema.arity (Plan.schema cat i))
          (Storage.Vec.to_array out);
      replay = (fun () -> child.replay (); Context.charge_cpu ctx n) }
  in
  exec plan

let run ?ctx ?obs ?sketch ?chunk_rows (cat : Storage.Catalog.t)
    (plan : Plan.t) : Executor.result =
  { Executor.schema = Plan.schema cat plan;
    rows = Chunk.to_rows (run_node ?ctx ?obs ?sketch ?chunk_rows cat plan).chunk }
