(* Index-access cost charging and data fetching, shared by the interpreter
   (Executor) and the batch engine (Batch).

   The two halves are deliberately separate: [charge_index_fetch] drives
   the buffer-pool simulator exactly as one execution of an index fetch
   would (internal levels random, touched leaf pages, then base-table
   pages — contiguous for a clustered index, one possibly-buffered random
   page per match otherwise), while [fetch_rows] moves the data.  The
   batch engine charges rescans by replaying the former without repeating
   the latter. *)

open Relalg

let log2_ceil n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (p * 2) in
  if n <= 1 then 0 else go 0 1

(* Sort spill: number of temp pages written+read for an external sort of
   [pages] pages with [work_mem] pages of memory (multiway merge). *)
let sort_spill_pages ~work_mem ~pages =
  if pages <= work_mem then 0
  else
    let fan = max 2 (work_mem - 1) in
    let rec passes runs acc =
      if runs <= 1 then acc else passes ((runs + fan - 1) / fan) (acc + 1)
    in
    let initial_runs = (pages + work_mem - 1) / work_mem in
    2 * pages * passes initial_runs 1

let charge_index_fetch ctx (idx : Storage.Btree.t) (t : Storage.Table.t)
    ~(entries : (Value.t list * int) array) ~lo_pos =
  for _ = 1 to Storage.Btree.height idx do
    Context.read_page ctx ~random:true (idx.Storage.Btree.name, -1)
  done;
  let n = Array.length entries in
  if n > 0 then begin
    let first_leaf = Storage.Btree.leaf_page_of idx lo_pos in
    let last_leaf = Storage.Btree.leaf_page_of idx (lo_pos + n - 1) in
    for lp = first_leaf to last_leaf do
      Context.read_page ctx ~random:(lp = first_leaf) (idx.Storage.Btree.name, lp)
    done
  end;
  Context.charge_cpu ctx n;
  if idx.Storage.Btree.clustered then begin
    (* row ids of a clustered index range are contiguous pages *)
    let pages =
      Array.fold_left
        (fun acc (_, rid) ->
           let pg = Storage.Table.page_of_row t rid in
           if List.mem pg acc then acc else pg :: acc)
        [] entries
    in
    List.iter
      (fun pg -> Context.read_page ctx ~random:false (t.Storage.Table.name, pg))
      (List.rev pages)
  end
  else
    Array.iter
      (fun (_, rid) ->
         Context.read_page ctx ~random:true
           (t.Storage.Table.name, Storage.Table.page_of_row t rid))
      entries

let fetch_rows (t : Storage.Table.t) (entries : (Value.t list * int) array) :
  Tuple.t array =
  Array.map (fun (_, rid) -> Storage.Table.get t rid) entries
