(* Physical operator trees — the "execution plans" of Figure 1.

   Conventions:
   - [Nested_loop] re-executes its inner (right) child once per outer tuple,
     exactly like the classical iterator; optimizers wrap expensive inners in
     [Materialize].
   - [Index_nl] is the index nested-loop join: for each outer tuple it probes
     an index on the inner base table with the value of [outer_key].
   - [Merge_join] and [Stream_agg] require their inputs to be sorted on the
     join/grouping columns; optimizers must insert [Sort] enforcers (this is
     the "physical property" machinery of Section 3).
   - [Hash_join] builds on the right child, probes with the left. *)

open Relalg

type join_kind = Algebra.join_kind

type bound = Storage.Btree.bound = Unbounded | Incl of Value.t | Excl of Value.t

type sort_key = { key : Expr.t; descending : bool }

type t =
  | Seq_scan of { table : string; alias : string; filter : Expr.t option }
  | Index_scan of {
      table : string;
      alias : string;
      column : string; (* indexed column *)
      lo : bound;
      hi : bound;
      filter : Expr.t option; (* residual predicate *)
    }
  | Filter of Expr.t * t
  | Project of (Expr.t * string) list * t
  | Sort of sort_key list * t
  | Materialize of t
  | Nested_loop of { kind : join_kind; pred : Expr.t; outer : t; inner : t }
  | Index_nl of {
      kind : join_kind;
      outer : t;
      table : string;
      alias : string;
      index : string; (* index name in the catalog *)
      columns : string list; (* probed key prefix, in index order *)
      outer_keys : Expr.t list; (* evaluated against the outer tuple *)
      residual : Expr.t;
    }
  | Merge_join of {
      kind : join_kind;
      pairs : (Expr.col_ref * Expr.col_ref) list; (* (left, right) columns *)
      residual : Expr.t;
      left : t;
      right : t;
    }
  | Hash_join of {
      kind : join_kind;
      pairs : (Expr.col_ref * Expr.col_ref) list;
      residual : Expr.t;
      left : t; (* probe *)
      right : t; (* build *)
    }
  | Hash_agg of agg
  | Stream_agg of agg (* input sorted on keys *)
  | Hash_distinct of t

and agg = {
  keys : (Expr.t * string) list;
  aggs : (Expr.agg * string) list;
  input : t;
}

(* Unmatched outer tuples pad the inner side with NULLs. *)
let outer_side kind (s : Schema.t) : Schema.t =
  match kind with
  | Algebra.Left_outer ->
    List.map (fun c -> { c with Schema.nullable = true }) s
  | Algebra.Inner | Algebra.Semi | Algebra.Anti -> s

(* Output schema.  Scans need the catalog to resolve table schemas. *)
let rec schema (cat : Storage.Catalog.t) (p : t) : Schema.t =
  match p with
  | Seq_scan { table; alias; _ } | Index_scan { table; alias; _ } ->
    Schema.requalify (Storage.Catalog.table cat table).Storage.Table.schema
      ~rel:alias
  | Filter (_, i) | Sort (_, i) | Materialize i | Hash_distinct i ->
    schema cat i
  | Project (items, i) ->
    let s = schema cat i in
    List.map
      (fun (e, a) ->
         Schema.with_nullable (Algebra.expr_nullable s e)
           (Schema.column ~rel:"" ~name:a ~ty:(Typing.infer s e)))
      items
  | Nested_loop { kind; outer; inner; _ } -> (
    match kind with
    | Algebra.Semi | Algebra.Anti -> schema cat outer
    | Algebra.Inner | Algebra.Left_outer ->
      Schema.concat (schema cat outer)
        (outer_side kind (schema cat inner)))
  | Index_nl { kind; outer; table; alias; _ } -> (
    let inner =
      Schema.requalify (Storage.Catalog.table cat table).Storage.Table.schema
        ~rel:alias
    in
    match kind with
    | Algebra.Semi | Algebra.Anti -> schema cat outer
    | Algebra.Inner | Algebra.Left_outer ->
      Schema.concat (schema cat outer) (outer_side kind inner))
  | Merge_join { kind; left; right; _ } | Hash_join { kind; left; right; _ }
    -> (
    match kind with
    | Algebra.Semi | Algebra.Anti -> schema cat left
    | Algebra.Inner | Algebra.Left_outer ->
      Schema.concat (schema cat left)
        (outer_side kind (schema cat right)))
  | Hash_agg { keys; aggs; input } | Stream_agg { keys; aggs; input } ->
    let s = schema cat input in
    List.map
      (fun (e, a) ->
         Schema.with_nullable (Algebra.expr_nullable s e)
           (Schema.column ~rel:"" ~name:a ~ty:(Typing.infer s e)))
      keys
    @ List.map
        (fun (g, a) ->
           Schema.with_nullable (Algebra.agg_nullable s g)
             (Schema.column ~rel:"" ~name:a ~ty:(Typing.infer_agg s g)))
        aggs

let pp_sort_key ppf { key; descending } =
  Fmt.pf ppf "%a%s" Expr.pp key (if descending then " DESC" else "")

let pp_pairs ppf pairs =
  Fmt.(list ~sep:(any " AND ")
         (fun ppf ((a : Expr.col_ref), (b : Expr.col_ref)) ->
            Fmt.pf ppf "%s.%s = %s.%s" a.Expr.rel a.Expr.col b.Expr.rel
              b.Expr.col))
    ppf pairs

let kind_prefix = function
  | Algebra.Inner -> ""
  | Algebra.Left_outer -> "Outer "
  | Algebra.Semi -> "Semi "
  | Algebra.Anti -> "Anti "

let rec pp ppf (p : t) =
  let kid ppf c = Fmt.pf ppf "@,@[<v 2>  %a@]" pp c in
  let opt_filter ppf = function
    | None -> ()
    | Some f -> Fmt.pf ppf " [%a]" Expr.pp f
  in
  match p with
  | Seq_scan { table; alias; filter } ->
    Fmt.pf ppf "Table Scan %s%s%a" table
      (if alias = table then "" else " AS " ^ alias)
      opt_filter filter
  | Index_scan { table; alias; column; lo; hi; filter } ->
    let pp_bound side ppf = function
      | Unbounded -> ()
      | Incl v -> Fmt.pf ppf " %s%s %a" column side Value.pp v
      | Excl v ->
        Fmt.pf ppf " %s%s %a" column
          (match side with ">=" -> ">" | "<=" -> "<" | s -> s)
          Value.pp v
    in
    Fmt.pf ppf "Index Scan %s(%s)%s%a%a%a" table column
      (if alias = table then "" else " AS " ^ alias)
      (pp_bound ">=") lo (pp_bound "<=") hi opt_filter filter
  | Filter (e, i) -> Fmt.pf ppf "@[<v>Filter %a%a@]" Expr.pp e kid i
  | Project (items, i) ->
    Fmt.pf ppf "@[<v>Project %a%a@]"
      Fmt.(list ~sep:(any ", ")
             (fun ppf (e, a) ->
                if Expr.to_string e = a then Expr.pp ppf e
                else Fmt.pf ppf "%a AS %s" Expr.pp e a))
      items kid i
  | Sort (keys, i) ->
    Fmt.pf ppf "@[<v>Sort [%a]%a@]"
      Fmt.(list ~sep:(any ", ") pp_sort_key) keys kid i
  | Materialize i -> Fmt.pf ppf "@[<v>Materialize%a@]" kid i
  | Nested_loop { kind; pred; outer; inner } ->
    Fmt.pf ppf "@[<v>%sNested Loop (%a)%a%a@]" (kind_prefix kind) Expr.pp pred
      kid outer kid inner
  | Index_nl { kind; outer; table; alias; index; columns; outer_keys; residual }
    ->
    Fmt.pf ppf "@[<v>%sIndex Nested Loop (%a)%s%a@,@[<v 2>  Index Scan %s%s via %s@]@]"
      (kind_prefix kind)
      Fmt.(list ~sep:(any " AND ")
             (fun ppf (k, c) -> Fmt.pf ppf "%a = %s.%s" Expr.pp k alias c))
      (List.combine outer_keys columns)
      (match residual with
       | Expr.Const (Value.Bool true) -> ""
       | r -> Fmt.str " [%a]" Expr.pp r)
      kid outer table
      (if alias = table then "" else " AS " ^ alias)
      index
  | Merge_join { kind; pairs; left; right; _ } ->
    Fmt.pf ppf "@[<v>%sMerge Join (%a)%a%a@]" (kind_prefix kind) pp_pairs pairs
      kid left kid right
  | Hash_join { kind; pairs; left; right; _ } ->
    Fmt.pf ppf "@[<v>%sHash Join (%a)%a%a@]" (kind_prefix kind) pp_pairs pairs
      kid left kid right
  | Hash_agg { keys; aggs; input } ->
    Fmt.pf ppf "@[<v>Hash Aggregate [%a | %a]%a@]"
      Fmt.(list ~sep:(any ", ") (fun ppf (e, _) -> Expr.pp ppf e)) keys
      Fmt.(list ~sep:(any ", ") (fun ppf (g, a) -> Fmt.pf ppf "%a AS %s" Expr.pp_agg g a))
      aggs kid input
  | Stream_agg { keys; aggs; input } ->
    Fmt.pf ppf "@[<v>Stream Aggregate [%a | %a]%a@]"
      Fmt.(list ~sep:(any ", ") (fun ppf (e, _) -> Expr.pp ppf e)) keys
      Fmt.(list ~sep:(any ", ") (fun ppf (g, a) -> Fmt.pf ppf "%a AS %s" Expr.pp_agg g a))
      aggs kid input
  | Hash_distinct i -> Fmt.pf ppf "@[<v>Hash Distinct%a@]" kid i

let to_string p = Fmt.str "%a" pp p

(* One-line operator description — the head of [pp] without children.
   EXPLAIN ANALYZE renders the tree itself so it can annotate each line
   with runtime metrics. *)
let describe (p : t) : string =
  let opt_filter ppf = function
    | None -> ()
    | Some f -> Fmt.pf ppf " [%a]" Expr.pp f
  in
  match p with
  | Seq_scan { table; alias; filter } ->
    Fmt.str "Table Scan %s%s%a" table
      (if alias = table then "" else " AS " ^ alias)
      opt_filter filter
  | Index_scan { table; alias; column; lo; hi; filter } ->
    let pp_bound side ppf = function
      | Unbounded -> ()
      | Incl v -> Fmt.pf ppf " %s%s %a" column side Value.pp v
      | Excl v ->
        Fmt.pf ppf " %s%s %a" column
          (match side with ">=" -> ">" | "<=" -> "<" | s -> s)
          Value.pp v
    in
    Fmt.str "Index Scan %s(%s)%s%a%a%a" table column
      (if alias = table then "" else " AS " ^ alias)
      (pp_bound ">=") lo (pp_bound "<=") hi opt_filter filter
  | Filter (e, _) -> Fmt.str "Filter %a" Expr.pp e
  | Project (items, _) ->
    Fmt.str "Project %a"
      Fmt.(list ~sep:(any ", ")
             (fun ppf (e, a) ->
                if Expr.to_string e = a then Expr.pp ppf e
                else Fmt.pf ppf "%a AS %s" Expr.pp e a))
      items
  | Sort (keys, _) ->
    Fmt.str "Sort [%a]" Fmt.(list ~sep:(any ", ") pp_sort_key) keys
  | Materialize _ -> "Materialize"
  | Nested_loop { kind; pred; _ } ->
    Fmt.str "%sNested Loop (%a)" (kind_prefix kind) Expr.pp pred
  | Index_nl { kind; table; alias; index; columns; outer_keys; residual; _ } ->
    Fmt.str "%sIndex Nested Loop %s%s via %s (%a)%s" (kind_prefix kind) table
      (if alias = table then "" else " AS " ^ alias)
      index
      Fmt.(list ~sep:(any " AND ")
             (fun ppf (k, c) -> Fmt.pf ppf "%a = %s.%s" Expr.pp k alias c))
      (List.combine outer_keys columns)
      (match residual with
       | Expr.Const (Value.Bool true) -> ""
       | r -> Fmt.str " [%a]" Expr.pp r)
  | Merge_join { kind; pairs; _ } ->
    Fmt.str "%sMerge Join (%a)" (kind_prefix kind) pp_pairs pairs
  | Hash_join { kind; pairs; _ } ->
    Fmt.str "%sHash Join (%a)" (kind_prefix kind) pp_pairs pairs
  | Hash_agg { keys; aggs; _ } ->
    Fmt.str "Hash Aggregate [%a | %a]"
      Fmt.(list ~sep:(any ", ") (fun ppf (e, _) -> Expr.pp ppf e)) keys
      Fmt.(list ~sep:(any ", ")
             (fun ppf (g, a) -> Fmt.pf ppf "%a AS %s" Expr.pp_agg g a))
      aggs
  | Stream_agg { keys; aggs; _ } ->
    Fmt.str "Stream Aggregate [%a | %a]"
      Fmt.(list ~sep:(any ", ") (fun ppf (e, _) -> Expr.pp ppf e)) keys
      Fmt.(list ~sep:(any ", ")
             (fun ppf (g, a) -> Fmt.pf ppf "%a AS %s" Expr.pp_agg g a))
      aggs
  | Hash_distinct _ -> "Hash Distinct"

(* Direct children in execution-tree order (outer/left first). *)
let children = function
  | Seq_scan _ | Index_scan _ -> []
  | Filter (_, i) | Project (_, i) | Sort (_, i) | Materialize i
  | Hash_distinct i -> [ i ]
  | Nested_loop { outer; inner; _ } -> [ outer; inner ]
  | Index_nl { outer; _ } -> [ outer ]
  | Merge_join { left; right; _ } | Hash_join { left; right; _ } ->
    [ left; right ]
  | Hash_agg { input; _ } | Stream_agg { input; _ } -> [ input ]

(* Pre-order node list; the index of a node is its stable operator id.
   Both engines execute the same physical tree, so ids line up across
   interpreter and batch runs. *)
let preorder (p : t) : t list =
  let rec go acc p = List.fold_left go (p :: acc) (children p) in
  List.rev (go [] p)

let rec size = function
  | Seq_scan _ | Index_scan _ -> 1
  | Filter (_, i) | Project (_, i) | Sort (_, i) | Materialize i
  | Hash_distinct i -> 1 + size i
  | Nested_loop { outer; inner; _ } -> 1 + size outer + size inner
  | Index_nl { outer; _ } -> 2 + size outer
  | Merge_join { left; right; _ } | Hash_join { left; right; _ } ->
    1 + size left + size right
  | Hash_agg { input; _ } | Stream_agg { input; _ } -> 1 + size input
