(* Join/aggregation key hashing shared by the interpreter (Executor) and
   the batch engine (Batch).

   Every hash table here is used with keys of a fixed arity — the key of a
   hash join, grouping or distinct operator always has the same number of
   columns for the lifetime of one table — so the equality functions do not
   re-measure lengths before comparing (the [List.length a = List.length b]
   guard the interpreter used to pay on every probe). *)

open Relalg

let hash_list ks = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 ks

(* Arity is fixed per table: no length guard. *)
let equal_list a b = List.for_all2 Value.equal a b

module List_tbl = Hashtbl.Make (struct
    type t = Value.t list
    let equal = equal_list
    let hash = hash_list
  end)

let hash_array ks =
  let acc = ref 7 in
  for i = 0 to Array.length ks - 1 do
    acc := (!acc * 31) + Value.hash ks.(i)
  done;
  !acc

(* Arity is fixed per table: positions compare pairwise without a length
   guard.  [Value.equal] makes Int 2 and Float 2.0 equal keys, matching the
   interpreter's key semantics. *)
let equal_array (a : Value.t array) (b : Value.t array) =
  let n = Array.length a in
  let rec go i = i = n || (Value.equal a.(i) b.(i) && go (i + 1)) in
  go 0

module Array_tbl = Hashtbl.Make (struct
    type t = Value.t array
    let equal = equal_array
    let hash = hash_array
  end)

(* Columnar probing for generic (Value.t array) keys.

   An open-addressing table whose [find] hashes and compares key
   positions straight out of per-column accessor closures — no per-row
   key materialization on probe.  The key array is built exactly once,
   on first insert ([add]); [hash_cols] folds [Value.hash] over the
   accessors in the same order as [hash_array] over the materialized
   key, so probe and insert agree on slots, and [Value.equal] keeps the
   interpreter's key semantics (Int 2 matches Float 2.0).  Insert-only,
   like {!Int_map}; misses return the caller-supplied [dummy]. *)
module Cols_tbl = struct
  type 'a t = {
    mutable keys : Value.t array array;
    mutable vals : 'a array;
    mutable used : Bytes.t;
    mutable mask : int;
    mutable count : int;
    dummy : 'a;
  }

  let create ~dummy cap =
    let rec pow2 n = if n >= cap * 2 then n else pow2 (n * 2) in
    let c = pow2 16 in
    { keys = Array.make c [||]; vals = Array.make c dummy;
      used = Bytes.make c '\000'; mask = c - 1; count = 0; dummy }

  let hash_cols (gets : (int -> Value.t) array) i =
    let acc = ref 7 in
    for c = 0 to Array.length gets - 1 do
      acc := (!acc * 31) + Value.hash (gets.(c) i)
    done;
    !acc

  let equal_cols (k : Value.t array) (gets : (int -> Value.t) array) i =
    let n = Array.length k in
    let rec go c = c = n || (Value.equal k.(c) (gets.(c) i) && go (c + 1)) in
    go 0

  let mix h mask = h * 0x9E3779B1 land mask

  (* [t.dummy] when the key read column-wise at row [i] is absent. *)
  let find t gets i =
    let rec probe j =
      if Bytes.unsafe_get t.used j = '\000' then t.dummy
      else if equal_cols (Array.unsafe_get t.keys j) gets i then
        Array.unsafe_get t.vals j
      else probe ((j + 1) land t.mask)
    in
    probe (mix (hash_cols gets i) t.mask)

  let slot_key t (k : Value.t array) =
    let rec probe j =
      if Bytes.unsafe_get t.used j = '\000' then j
      else if equal_array t.keys.(j) k then j
      else probe ((j + 1) land t.mask)
    in
    probe (mix (hash_array k) t.mask)

  let grow t =
    let okeys = t.keys and ovals = t.vals and oused = t.used in
    let c = 2 * (t.mask + 1) in
    t.keys <- Array.make c [||];
    t.vals <- Array.make c t.dummy;
    t.used <- Bytes.make c '\000';
    t.mask <- c - 1;
    for i = 0 to Array.length okeys - 1 do
      if Bytes.get oused i = '\001' then begin
        let j = slot_key t okeys.(i) in
        Bytes.set t.used j '\001';
        t.keys.(j) <- okeys.(i);
        t.vals.(j) <- ovals.(i)
      end
    done

  (* The key must be absent (callers [find] first); [k] must hold the
     same values the accessors produced at the probed row. *)
  let add t k v =
    if 2 * (t.count + 1) > t.mask + 1 then grow t;
    let j = slot_key t k in
    Bytes.set t.used j '\001';
    t.keys.(j) <- k;
    t.vals.(j) <- v;
    t.count <- t.count + 1
end

(* Fast path for single-column integer keys.  Only sound when every key
   value on both sides of the table is Int or Null (NULLs are handled by
   the caller): Value.equal would also match Float 2.0 = Int 2, so callers
   must verify eligibility before choosing this table.

   Open addressing with linear probing: flat int/value arrays, an inline
   multiplicative hash, and no allocation per entry (Hashtbl conses a
   bucket cell per binding).  Insert-only — the execution engines never
   delete keys.  Lookup misses return the caller-supplied [dummy]; callers
   that must distinguish absence use a physically unique dummy and compare
   with [==]. *)
module Int_map = struct
  type 'a t = {
    mutable keys : int array;
    mutable vals : 'a array;
    mutable used : Bytes.t;
    mutable mask : int; (* capacity - 1; capacity is a power of two *)
    mutable count : int;
    dummy : 'a;
  }

  let create ~dummy cap =
    let rec pow2 n = if n >= cap * 2 then n else pow2 (n * 2) in
    let c = pow2 16 in
    { keys = Array.make c 0; vals = Array.make c dummy;
      used = Bytes.make c '\000'; mask = c - 1; count = 0; dummy }

  (* Fibonacci-style multiplicative mixing; [land mask] keeps it in range
     (and non-negative) even when the product overflows. *)
  let slot t k =
    let rec probe i =
      if Bytes.unsafe_get t.used i = '\000' || Array.unsafe_get t.keys i = k
      then i
      else probe ((i + 1) land t.mask)
    in
    probe (k * 0x9E3779B1 land t.mask)

  let grow t =
    let okeys = t.keys and ovals = t.vals and oused = t.used in
    let c = 2 * (t.mask + 1) in
    t.keys <- Array.make c 0;
    t.vals <- Array.make c t.dummy;
    t.used <- Bytes.make c '\000';
    t.mask <- c - 1;
    for i = 0 to Array.length okeys - 1 do
      if Bytes.get oused i = '\001' then begin
        let j = slot t okeys.(i) in
        Bytes.set t.used j '\001';
        t.keys.(j) <- okeys.(i);
        t.vals.(j) <- ovals.(i)
      end
    done

  (* [t.dummy] when absent. *)
  let find t k =
    let i = slot t k in
    if Bytes.unsafe_get t.used i = '\000' then t.dummy
    else Array.unsafe_get t.vals i

  (* The key must be absent (callers [find] first). *)
  let add t k v =
    if 2 * (t.count + 1) > t.mask + 1 then grow t;
    let i = slot t k in
    Bytes.set t.used i '\001';
    t.keys.(i) <- k;
    t.vals.(i) <- v;
    t.count <- t.count + 1
end
