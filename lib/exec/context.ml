(* Execution context: buffer pool plus physical I/O and CPU accounting.
   All experiment "measured cost" numbers come from these counters. *)

type t = {
  pool : Storage.Buffer.Pool.t;
  work_mem_pages : int; (* memory for sorts and hash builds before spilling *)
  mutable seq_io : int; (* physical page reads, sequential pattern *)
  mutable rand_io : int; (* physical page reads, random pattern *)
  mutable spill_io : int; (* temp-file pages written + read back *)
  mutable cpu_ops : int; (* abstract per-tuple operations *)
}

let create ?(buffer_pages = 1024) ?(work_mem_pages = 64) () =
  { pool = Storage.Buffer.Pool.create ~capacity:buffer_pages;
    work_mem_pages;
    seq_io = 0;
    rand_io = 0;
    spill_io = 0;
    cpu_ops = 0 }

let read_page ctx ~random pid =
  match Storage.Buffer.Pool.access ctx.pool pid with
  | `Hit -> ()
  | `Miss ->
    if random then ctx.rand_io <- ctx.rand_io + 1
    else ctx.seq_io <- ctx.seq_io + 1

let charge_cpu ctx n = ctx.cpu_ops <- ctx.cpu_ops + n

(* Pure snapshot of the four counters; [diff later earlier] is the work
   charged between the two snapshots.  Call sites that compare or
   attribute counter activity go through these instead of ad-hoc field
   reads. *)
type snapshot = { seq : int; rand : int; spill : int; cpu : int }

let snapshot_zero = { seq = 0; rand = 0; spill = 0; cpu = 0 }

let snapshot ctx =
  { seq = ctx.seq_io; rand = ctx.rand_io; spill = ctx.spill_io;
    cpu = ctx.cpu_ops }

let diff (later : snapshot) (earlier : snapshot) =
  { seq = later.seq - earlier.seq;
    rand = later.rand - earlier.rand;
    spill = later.spill - earlier.spill;
    cpu = later.cpu - earlier.cpu }

let snapshot_add a b =
  { seq = a.seq + b.seq; rand = a.rand + b.rand; spill = a.spill + b.spill;
    cpu = a.cpu + b.cpu }

let pp_snapshot ppf s =
  Fmt.pf ppf "seq=%d rand=%d spill=%d cpu=%d" s.seq s.rand s.spill s.cpu

let charge_spill ctx pages = ctx.spill_io <- ctx.spill_io + pages

let total_io ctx = ctx.seq_io + ctx.rand_io + ctx.spill_io

(* Weighted cost in the same units as the cost model: random reads are
   dearer than sequential ones, CPU ops far cheaper than either. *)
let weighted_cost ?(seq_weight = 1.0) ?(rand_weight = 4.0)
    ?(cpu_weight = 0.001) ctx =
  (seq_weight *. float_of_int (ctx.seq_io + ctx.spill_io))
  +. (rand_weight *. float_of_int ctx.rand_io)
  +. (cpu_weight *. float_of_int ctx.cpu_ops)

let pp ppf ctx =
  Fmt.pf ppf "io: %d seq + %d rand + %d spill, cpu: %d ops" ctx.seq_io
    ctx.rand_io ctx.spill_io ctx.cpu_ops
