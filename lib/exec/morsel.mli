(** Morsel-driven parallel execution engine.

    Executes the same physical {!Plan.t} trees as {!Batch} by splitting
    operator work into fixed-size row ranges ("morsels") drained by a
    {!Domain_pool} of OCaml 5 domains, with hash-partitioned exchanges
    for joins and aggregation and a parallel merge for ORDER BY.

    Operators exchange {!Eval.Chunk} columnar chunks: morsels are
    ranges of a chunk's logical index space, filters and semi/anti hash
    joins pass selection vectors instead of materializing rows, and
    projections fill typed output columns in parallel.

    Contract: for every plan and every [dop]/[morsel]/[chunk_rows]
    choice, [run] returns bit-identical rows in the same order, and
    drives the {!Context} (buffer pool page-access sequence, CPU, spill
    counters) identically to {!Batch.run}.  Workers never touch the
    context — all charging happens on the coordinating domain using
    Batch's formulas and ordering — and never force a chunk's lazy
    row/column caches — the coordinator forces everything a phase needs
    before dispatching it — so deterministic accounting survives
    parallelism and the cross-engine differential oracles stay valid at
    any dop. *)

(** [run ~dop cat plan] executes [plan] with up to [dop] workers (the
    caller participates; [dop <= 1], or OCaml < 5, falls back to
    {!Batch.run} outright).

    [pool] reuses an existing domain pool across runs (benchmarks);
    otherwise one is created and shut down per call.  [morsel] is the
    split granularity in rows (default 4096; tests shrink it to force
    multi-morsel execution on small inputs).  [chunk_rows] is forwarded
    to {!Batch} for the inline subtrees it runs (nested-loop inners and
    the [dop <= 1] fallback).  [schedule] maps each plan
    node to the degree of parallelism its two-phase segment was
    scheduled at — nodes scheduled at 1 run inline on the coordinator.
    With [obs], per-worker busy time and row counts of every parallel
    phase are folded into the operator's {!Instrument.par} stats. *)
val run :
  ?ctx:Context.t -> ?obs:Instrument.t -> ?sketch:Batch.sketch_hook ->
  ?pool:Domain_pool.t ->
  ?morsel:int -> ?schedule:(Plan.t -> int) -> ?chunk_rows:int ->
  dop:int ->
  Storage.Catalog.t -> Plan.t -> Executor.result

val default_morsel_rows : int
