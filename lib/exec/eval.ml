(* Shared compiled-evaluation helpers for the vectorized engines.

   [Batch] and [Morsel] execute the same physical plans with identical
   semantics; everything here is the common substrate: offset resolution,
   specialized predicate compilers, join-key extraction, hash-join
   buckets, join-row emission, and the unboxed integer-column fast path.
   All closures returned here are pure (no [Context] charging, no shared
   mutable state), so the morsel executor may evaluate them from any
   domain. *)

open Relalg

let key_nullfree (k : Value.t array) =
  let n = Array.length k in
  let rec go i = i = n || ((not (Value.is_null k.(i))) && go (i + 1)) in
  go 0

let offsets schema (refs : Expr.col_ref list) =
  Array.of_list
    (List.map
       (fun (r : Expr.col_ref) ->
          Schema.index_of schema ~rel:r.Expr.rel ~name:r.Expr.col)
       refs)

let extract_key (offs : int array) (t : Tuple.t) : Value.t array =
  Array.map (fun i -> Tuple.get t i) offs

(* Int fast-path eligibility: every key value in [rows] at [off] is Int or
   Null.  (Value.equal matches Int 2 = Float 2.0, so a single Float on
   either side forces the generic path.) *)
let int_or_null_col rows off =
  Array.for_all
    (fun t ->
       match Tuple.get t off with
       | Value.Int _ | Value.Null -> true
       | Value.Bool _ | Value.Float _ | Value.Str _ -> false)
    rows

(* Hash-join buckets carry their length so probes never re-measure the
   chain; items are most-recent-first, matching the interpreter's
   emission order. *)
type bucket = { mutable blen : int; mutable items : Tuple.t list }

(* Specialized WHERE-semantics predicates.  [Expr.holds] boxes every
   comparison result in a [Value.Bool]; for the AND/OR/Cmp/Const fragment
   the held-ness of a predicate ("evaluates to Bool true") distributes
   over the connectives under three-valued logic — true AND x is held iff
   both are held, x OR y is held iff either is held, and a comparison is
   held iff [Value.sql_cmp] is conclusive and the operator accepts its
   sign — so these compile to unboxed boolean closures.  Anything else
   (NOT, IS NULL, UDFs, bare columns) falls back to [Expr.holds]. *)
let rec pred1 (s : Schema.t) (e : Expr.t) : Tuple.t -> bool =
  match e with
  | Expr.Const (Value.Bool b) -> fun _ -> b
  | Expr.Cmp (op, a, b) ->
    let fa = Expr.compile s a and fb = Expr.compile s b in
    fun t ->
      (match Value.sql_cmp (fa t) (fb t) with
       | None -> false
       | Some c -> Expr.compare_op op c)
  | Expr.And (a, b) ->
    let pa = pred1 s a and pb = pred1 s b in
    fun t -> pa t && pb t
  | Expr.Or (a, b) ->
    let pa = pred1 s a and pb = pred1 s b in
    fun t -> pa t || pb t
  | _ -> Expr.holds s e

let rec pred2 (l : Schema.t) (r : Schema.t) (e : Expr.t) :
  Tuple.t -> Tuple.t -> bool =
  match e with
  | Expr.Const (Value.Bool b) -> fun _ _ -> b
  | Expr.Cmp (op, a, b) ->
    let fa = Expr.compile2 l r a and fb = Expr.compile2 l r b in
    fun x y ->
      (match Value.sql_cmp (fa x y) (fb x y) with
       | None -> false
       | Some c -> Expr.compare_op op c)
  | Expr.And (a, b) ->
    let pa = pred2 l r a and pb = pred2 l r b in
    fun x y -> pa x y && pb x y
  | Expr.Or (a, b) ->
    let pa = pred2 l r a and pb = pred2 l r b in
    fun x y -> pa x y || pb x y
  | _ -> Expr.holds2 l r e

(* ------------------------------------------------------------------ *)
(* Unboxed integer columns.

   A column whose values are all Int-or-Null extracts once into an [int
   array] plus a null bitmap; scans, filters and join-key extraction then
   run over raw ints with no per-row boxing or tag dispatch.  Extraction
   bails out (returns [None]) on the first value of any other type, so
   eligibility costs one pass and the generic path stays authoritative. *)

module Int_col = struct
  type t = { data : int array; nulls : Bytes.t; any_null : bool }

  let is_null c i = Bytes.unsafe_get c.nulls i <> '\000'

  let extract (rows : Tuple.t array) (off : int) : t option =
    let n = Array.length rows in
    let data = Array.make n 0 in
    let nulls = Bytes.make n '\000' in
    let any_null = ref false in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      (match Tuple.get rows.(!i) off with
       | Value.Int k -> data.(!i) <- k
       | Value.Null ->
         Bytes.set nulls !i '\001';
         any_null := true
       | Value.Bool _ | Value.Float _ | Value.Str _ -> ok := false);
      incr i
    done;
    if !ok then Some { data; nulls; any_null = !any_null } else None
end

(* A column reference's offset in [s], or [None] for computed exprs. *)
let col_offset (s : Schema.t) (e : Expr.t) : int option =
  match e with
  | Expr.Col { rel; col } -> (
    match Schema.index_of s ~rel ~name:col with
    | off -> Some off
    | exception _ -> None)
  | _ -> None

(* Index-based predicate over a fixed row array.  Conjuncts of the shape
   <int col> cmp <int const> or <int col> cmp <int col> evaluate over
   unboxed column extractions; every other conjunct falls back to [pred1]
   applied to the indexed row.  Correctness: held-ness distributes over
   top-level AND (see [pred1]); comparisons with a NULL operand are never
   held, which the null bitmap reproduces; [Value.sql_cmp] on two Ints is
   [Stdlib.compare], which the raw-int comparison reproduces. *)
let pred_rows (s : Schema.t) (e : Expr.t) (rows : Tuple.t array) :
  int -> bool =
  let int_col ce =
    match col_offset s ce with
    | Some off -> Int_col.extract rows off
    | None -> None
  in
  let compile_conj c =
    let fallback () =
      let p = pred1 s c in
      fun i -> p rows.(i)
    in
    match c with
    | Expr.Cmp (op, a, Expr.Const (Value.Int k)) -> (
      match int_col a with
      | Some col ->
        let data = col.Int_col.data in
        fun i ->
          (not (Int_col.is_null col i)) && Expr.compare_op op (compare data.(i) k)
      | None -> fallback ())
    | Expr.Cmp (op, Expr.Const (Value.Int k), b) -> (
      match int_col b with
      | Some col ->
        let data = col.Int_col.data in
        fun i ->
          (not (Int_col.is_null col i)) && Expr.compare_op op (compare k data.(i))
      | None -> fallback ())
    | Expr.Cmp (op, (Expr.Col _ as a), (Expr.Col _ as b)) -> (
      match (int_col a, int_col b) with
      | Some ca, Some cb ->
        let da = ca.Int_col.data and db = cb.Int_col.data in
        fun i ->
          (not (Int_col.is_null ca i))
          && (not (Int_col.is_null cb i))
          && Expr.compare_op op (compare da.(i) db.(i))
      | _ -> fallback ())
    | _ -> fallback ()
  in
  let ps = Array.of_list (List.map compile_conj (Pred.conjuncts e)) in
  match Array.length ps with
  | 0 -> fun _ -> true
  | 1 -> ps.(0)
  | 2 ->
    let a = ps.(0) and b = ps.(1) in
    fun i -> a i && b i
  | _ -> fun i -> Array.for_all (fun p -> p i) ps

(* ------------------------------------------------------------------ *)
(* Join-row emission (shared across the join operators).  [lo, hi) is a
   range of [arr]; matching against an index range avoids the
   interpreter's Array.sub copies in merge join. *)

let emit_range out kind ~inner_arity ot arr lo hi ~matches =
  match kind with
  | Algebra.Inner ->
    for k = lo to hi - 1 do
      let it = arr.(k) in
      if matches it then Storage.Vec.push out (Tuple.concat ot it)
    done
  | Algebra.Left_outer ->
    let any = ref false in
    for k = lo to hi - 1 do
      let it = arr.(k) in
      if matches it then begin
        any := true;
        Storage.Vec.push out (Tuple.concat ot it)
      end
    done;
    if not !any then
      Storage.Vec.push out (Tuple.concat ot (Tuple.nulls inner_arity))
  | Algebra.Semi ->
    let rec ex k = k < hi && (matches arr.(k) || ex (k + 1)) in
    if ex lo then Storage.Vec.push out ot
  | Algebra.Anti ->
    let rec ex k = k < hi && (matches arr.(k) || ex (k + 1)) in
    if not (ex lo) then Storage.Vec.push out ot

let emit_list out kind ~inner_arity ot items ~matches =
  match kind with
  | Algebra.Inner ->
    List.iter
      (fun it -> if matches it then Storage.Vec.push out (Tuple.concat ot it))
      items
  | Algebra.Left_outer ->
    let any = ref false in
    List.iter
      (fun it ->
         if matches it then begin
           any := true;
           Storage.Vec.push out (Tuple.concat ot it)
         end)
      items;
    if not !any then
      Storage.Vec.push out (Tuple.concat ot (Tuple.nulls inner_arity))
  | Algebra.Semi ->
    if List.exists matches items then Storage.Vec.push out ot
  | Algebra.Anti ->
    if not (List.exists matches items) then Storage.Vec.push out ot
