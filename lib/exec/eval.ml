(* Shared compiled-evaluation helpers for the vectorized engines.

   [Batch] and [Morsel] execute the same physical plans with identical
   semantics; everything here is the common substrate: offset resolution,
   specialized predicate compilers, join-key extraction, hash-join
   buckets, join-row emission, and the unboxed integer-column fast path.
   All closures returned here are pure (no [Context] charging, no shared
   mutable state), so the morsel executor may evaluate them from any
   domain. *)

open Relalg

let key_nullfree (k : Value.t array) =
  let n = Array.length k in
  let rec go i = i = n || ((not (Value.is_null k.(i))) && go (i + 1)) in
  go 0

let offsets schema (refs : Expr.col_ref list) =
  Array.of_list
    (List.map
       (fun (r : Expr.col_ref) ->
          Schema.index_of schema ~rel:r.Expr.rel ~name:r.Expr.col)
       refs)

let extract_key (offs : int array) (t : Tuple.t) : Value.t array =
  Array.map (fun i -> Tuple.get t i) offs

(* Int fast-path eligibility: every key value in [rows] at [off] is Int or
   Null.  (Value.equal matches Int 2 = Float 2.0, so a single Float on
   either side forces the generic path.) *)
let int_or_null_col rows off =
  Array.for_all
    (fun t ->
       match Tuple.get t off with
       | Value.Int _ | Value.Null -> true
       | Value.Bool _ | Value.Float _ | Value.Str _ -> false)
    rows

(* Hash-join buckets carry their length so probes never re-measure the
   chain; items are most-recent-first, matching the interpreter's
   emission order. *)
type bucket = { mutable blen : int; mutable items : Tuple.t list }

(* Specialized WHERE-semantics predicates.  [Expr.holds] boxes every
   comparison result in a [Value.Bool]; for the AND/OR/Cmp/Const fragment
   the held-ness of a predicate ("evaluates to Bool true") distributes
   over the connectives under three-valued logic — true AND x is held iff
   both are held, x OR y is held iff either is held, and a comparison is
   held iff [Value.sql_cmp] is conclusive and the operator accepts its
   sign — so these compile to unboxed boolean closures.  Anything else
   (NOT, IS NULL, UDFs, bare columns) falls back to [Expr.holds]. *)
let rec pred1 (s : Schema.t) (e : Expr.t) : Tuple.t -> bool =
  match e with
  | Expr.Const (Value.Bool b) -> fun _ -> b
  | Expr.Cmp (op, a, b) ->
    let fa = Expr.compile s a and fb = Expr.compile s b in
    fun t ->
      (match Value.sql_cmp (fa t) (fb t) with
       | None -> false
       | Some c -> Expr.compare_op op c)
  | Expr.And (a, b) ->
    let pa = pred1 s a and pb = pred1 s b in
    fun t -> pa t && pb t
  | Expr.Or (a, b) ->
    let pa = pred1 s a and pb = pred1 s b in
    fun t -> pa t || pb t
  | _ -> Expr.holds s e

let rec pred2 (l : Schema.t) (r : Schema.t) (e : Expr.t) :
  Tuple.t -> Tuple.t -> bool =
  match e with
  | Expr.Const (Value.Bool b) -> fun _ _ -> b
  | Expr.Cmp (op, a, b) ->
    let fa = Expr.compile2 l r a and fb = Expr.compile2 l r b in
    fun x y ->
      (match Value.sql_cmp (fa x y) (fb x y) with
       | None -> false
       | Some c -> Expr.compare_op op c)
  | Expr.And (a, b) ->
    let pa = pred2 l r a and pb = pred2 l r b in
    fun x y -> pa x y && pb x y
  | Expr.Or (a, b) ->
    let pa = pred2 l r a and pb = pred2 l r b in
    fun x y -> pa x y || pb x y
  | _ -> Expr.holds2 l r e

(* ------------------------------------------------------------------ *)
(* Unboxed integer columns.

   A column whose values are all Int-or-Null extracts once into an [int
   array] plus a null bitmap; scans, filters and join-key extraction then
   run over raw ints with no per-row boxing or tag dispatch.  Extraction
   bails out (returns [None]) on the first value of any other type, so
   eligibility costs one pass and the generic path stays authoritative. *)

module Int_col = struct
  type t = { data : int array; nulls : Bytes.t; any_null : bool }

  let is_null c i = Bytes.unsafe_get c.nulls i <> '\000'

  let extract (rows : Tuple.t array) (off : int) : t option =
    let n = Array.length rows in
    let data = Array.make n 0 in
    let nulls = Bytes.make n '\000' in
    let any_null = ref false in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      (match Tuple.get rows.(!i) off with
       | Value.Int k -> data.(!i) <- k
       | Value.Null ->
         Bytes.set nulls !i '\001';
         any_null := true
       | Value.Bool _ | Value.Float _ | Value.Str _ -> ok := false);
      incr i
    done;
    if !ok then Some { data; nulls; any_null = !any_null } else None
end

(* Interned boxes for small non-negative ints.  Materializing typed
   columns back into [Value.t] rows is the hottest allocation site in the
   columnar engines; values are immutable and compared structurally, so
   sharing one physical [Value.Int] block per small int is unobservable
   and turns the common box into an array load. *)
let small_int_cache = Array.init 4096 (fun i -> Value.Int i)

let box_int v : Value.t =
  if v land lnot 4095 = 0 then Array.unsafe_get small_int_cache v
  else Value.Int v

(* A column reference's offset in [s], or [None] for computed exprs. *)
let col_offset (s : Schema.t) (e : Expr.t) : int option =
  match e with
  | Expr.Col { rel; col } -> (
    match Schema.index_of s ~rel ~name:col with
    | off -> Some off
    | exception _ -> None)
  | _ -> None

(* Index-based predicate over a fixed row array.  Conjuncts of the shape
   <int col> cmp <int const> or <int col> cmp <int col> evaluate over
   unboxed column extractions; every other conjunct falls back to [pred1]
   applied to the indexed row.  Correctness: held-ness distributes over
   top-level AND (see [pred1]); comparisons with a NULL operand are never
   held, which the null bitmap reproduces; [Value.sql_cmp] on two Ints is
   [Stdlib.compare], which the raw-int comparison reproduces. *)
let pred_rows (s : Schema.t) (e : Expr.t) (rows : Tuple.t array) :
  int -> bool =
  let int_col ce =
    match col_offset s ce with
    | Some off -> Int_col.extract rows off
    | None -> None
  in
  let compile_conj c =
    let fallback () =
      let p = pred1 s c in
      fun i -> p rows.(i)
    in
    match c with
    | Expr.Cmp (op, a, Expr.Const (Value.Int k)) -> (
      match int_col a with
      | Some col ->
        let data = col.Int_col.data in
        fun i ->
          (not (Int_col.is_null col i)) && Expr.compare_op op (compare data.(i) k)
      | None -> fallback ())
    | Expr.Cmp (op, Expr.Const (Value.Int k), b) -> (
      match int_col b with
      | Some col ->
        let data = col.Int_col.data in
        fun i ->
          (not (Int_col.is_null col i)) && Expr.compare_op op (compare k data.(i))
      | None -> fallback ())
    | Expr.Cmp (op, (Expr.Col _ as a), (Expr.Col _ as b)) -> (
      match (int_col a, int_col b) with
      | Some ca, Some cb ->
        let da = ca.Int_col.data and db = cb.Int_col.data in
        fun i ->
          (not (Int_col.is_null ca i))
          && (not (Int_col.is_null cb i))
          && Expr.compare_op op (compare da.(i) db.(i))
      | _ -> fallback ())
    | _ -> fallback ()
  in
  let ps = Array.of_list (List.map compile_conj (Pred.conjuncts e)) in
  match Array.length ps with
  | 0 -> fun _ -> true
  | 1 -> ps.(0)
  | 2 ->
    let a = ps.(0) and b = ps.(1) in
    fun i -> a i && b i
  | _ -> fun i -> Array.for_all (fun p -> p i) ps

(* ------------------------------------------------------------------ *)
(* Columnar chunks.

   A [Chunk.store] holds one batch of physical rows in per-column typed
   storage: an all-Int-or-Null column extracts into an unboxed [int
   array] plus null bitmap, an all-Float-or-Null column (with at least
   one Float) into a [float array], and anything else — strings, bools,
   mixed Int/Float (which must keep their [Value.t] identity: [Value.equal
   (Int 2) (Float 2.0)] holds but the tuples differ) — into a [Boxed]
   fallback column.  Row and column views are lazy caches over the same
   store and are forced at most once; forcing mutates the store, so the
   engines force everything they need on the coordinating domain before
   dispatching to workers.

   A [Chunk.t] is a store plus an optional selection vector: [sel = Some
   s] means logical row [i] is physical row [s.(i)].  Filters narrow the
   selection without touching the data; semi/anti joins emit a selection
   over their left input.  All logical iteration (charging, emission
   order) is in selection order. *)

module Chunk = struct
  type col =
    | Ints of int array * Bytes.t (* data, null bitmap *)
    | Floats of float array * Bytes.t
    | Boxed of Value.t array

  type store = {
    arity : int;
    len : int; (* physical row count *)
    mutable rows : Tuple.t array option; (* lazy row view *)
    cols : col option array; (* lazy column cache, length [arity] *)
  }

  type t = { store : store; sel : int array option }

  let store_of_rows ~arity (rows : Tuple.t array) =
    { arity; len = Array.length rows; rows = Some rows;
      cols = Array.make arity None }

  let of_rows ~arity rows = { store = store_of_rows ~arity rows; sel = None }
  let dense store = { store; sel = None }

  let length t =
    match t.sel with Some s -> Array.length s | None -> t.store.len

  (* Physical index of logical row [i]. *)
  let phys t =
    match t.sel with
    | Some s -> fun i -> Array.unsafe_get s i
    | None -> fun i -> i

  let col_value (c : col) i : Value.t =
    match c with
    | Ints (d, nb) ->
      if Bytes.unsafe_get nb i <> '\000' then Value.Null else box_int d.(i)
    | Floats (d, nb) ->
      if Bytes.unsafe_get nb i <> '\000' then Value.Null else Value.Float d.(i)
    | Boxed v -> v.(i)

  (* Force column [j]: classify the physical values and extract, in one
     optimistic pass.  Start assuming Ints; the first Float downgrades to
     Floats (only if no Int preceded — mixed numerics stay boxed to
     preserve value identity), and any Bool/Str — or an Int after a
     Float — bails to Boxed. *)
  let col (st : store) j : col =
    match st.cols.(j) with
    | Some c -> c
    | None ->
      let rows =
        match st.rows with
        | Some r -> r
        | None -> invalid_arg "Chunk.col: store has neither rows nor column"
      in
      let n = st.len in
      let cell i = Array.unsafe_get (Array.unsafe_get rows i) j in
      let boxed () = Boxed (Array.init n cell) in
      (* prefix [0, start) was all NULL (already marked in [nulls]) *)
      let floats start nulls =
        let data = Array.make n 0. in
        let rec go i =
          if i >= n then Floats (data, nulls)
          else
            match cell i with
            | Value.Float f ->
              Array.unsafe_set data i f;
              go (i + 1)
            | Value.Null ->
              Bytes.unsafe_set nulls i '\001';
              go (i + 1)
            | Value.Int _ | Value.Bool _ | Value.Str _ -> boxed ()
        in
        go start
      in
      let c =
        let data = Array.make n 0 and nulls = Bytes.make n '\000' in
        let rec go i seen_int =
          if i >= n then Ints (data, nulls)
          else
            match cell i with
            | Value.Int k ->
              Array.unsafe_set data i k;
              go (i + 1) true
            | Value.Null ->
              Bytes.unsafe_set nulls i '\001';
              go (i + 1) seen_int
            | Value.Float _ -> if seen_int then boxed () else floats i nulls
            | Value.Bool _ | Value.Str _ -> boxed ()
        in
        go 0 false
      in
      st.cols.(j) <- Some c;
      c

  (* The unboxed int view of column [j], or [None] when any physical
     value is neither Int nor Null. *)
  let int_col (st : store) j =
    match col st j with
    | Ints (d, nb) -> Some (d, nb)
    | Floats _ | Boxed _ -> None

  (* Feed every non-null int of column [j] to [f], in physical order —
     the one-pass sketch-build hook of the scan operators.  False when
     the column is not int-typed (sketches cover int join keys only). *)
  let feed_ints (st : store) j (f : int -> unit) : bool =
    match int_col st j with
    | None -> false
    | Some (d, nb) ->
      for i = 0 to st.len - 1 do
        if Bytes.unsafe_get nb i = '\000' then f (Array.unsafe_get d i)
      done;
      true

  (* Physical-row accessor for column [j] that avoids allocation where
     possible: prefer the existing row view (tuple slots are already
     boxed), then the column cache (Ints/Floats re-box per access). *)
  let getter (st : store) j : int -> Value.t =
    match st.rows with
    | Some rows -> fun i -> Tuple.get rows.(i) j
    | None ->
      let c = col st j in
      fun i -> col_value c i

  (* Assemble [m] tuples from the store's columns, reading physical row
     [idx i] into output row [i].  Column-at-a-time with the variant
     match and null-bitmap scan hoisted out of the inner loops — this is
     the materialization boundary, so it has to be tight. *)
  let assemble (st : store) m (sel : int array option) : Tuple.t array =
    let arity = st.arity in
    let r = Array.init m (fun _ -> Array.make arity Value.Null) in
    for j = 0 to arity - 1 do
      match (col st j, sel) with
      | Boxed v, None ->
        for i = 0 to m - 1 do
          (Array.unsafe_get r i).(j) <- Array.unsafe_get v i
        done
      | Boxed v, Some s ->
        for i = 0 to m - 1 do
          (Array.unsafe_get r i).(j) <-
            Array.unsafe_get v (Array.unsafe_get s i)
        done
      | Ints (d, nb), None ->
        if Bytes.index_opt nb '\001' = None then
          for i = 0 to m - 1 do
            (Array.unsafe_get r i).(j) <- box_int (Array.unsafe_get d i)
          done
        else
          for i = 0 to m - 1 do
            (Array.unsafe_get r i).(j) <-
              (if Bytes.unsafe_get nb i <> '\000' then Value.Null
               else box_int (Array.unsafe_get d i))
          done
      | Ints (d, nb), Some s ->
        if Bytes.index_opt nb '\001' = None then
          for i = 0 to m - 1 do
            (Array.unsafe_get r i).(j) <-
              box_int (Array.unsafe_get d (Array.unsafe_get s i))
          done
        else
          for i = 0 to m - 1 do
            let p = Array.unsafe_get s i in
            (Array.unsafe_get r i).(j) <-
              (if Bytes.unsafe_get nb p <> '\000' then Value.Null
               else box_int (Array.unsafe_get d p))
          done
      | Floats (d, nb), None ->
        if Bytes.index_opt nb '\001' = None then
          for i = 0 to m - 1 do
            (Array.unsafe_get r i).(j) <- Value.Float (Array.unsafe_get d i)
          done
        else
          for i = 0 to m - 1 do
            (Array.unsafe_get r i).(j) <-
              (if Bytes.unsafe_get nb i <> '\000' then Value.Null
               else Value.Float (Array.unsafe_get d i))
          done
      | Floats (d, nb), Some s ->
        if Bytes.index_opt nb '\001' = None then
          for i = 0 to m - 1 do
            (Array.unsafe_get r i).(j) <-
              Value.Float (Array.unsafe_get d (Array.unsafe_get s i))
          done
        else
          for i = 0 to m - 1 do
            let p = Array.unsafe_get s i in
            (Array.unsafe_get r i).(j) <-
              (if Bytes.unsafe_get nb p <> '\000' then Value.Null
               else Value.Float (Array.unsafe_get d p))
          done
    done;
    r

  (* Force the physical row view. *)
  let rows_view (st : store) : Tuple.t array =
    match st.rows with
    | Some r -> r
    | None ->
      let r = assemble st st.len None in
      st.rows <- Some r;
      r

  (* Logical rows, in selection order.  Dense chunks share the store's
     row view (no copy); selected chunks gather — pointer-only when a
     row view exists, boxing straight from the typed columns when not. *)
  let to_rows (t : t) : Tuple.t array =
    match t.sel with
    | None -> rows_view t.store
    | Some s -> (
      match t.store.rows with
      | Some rows -> Array.map (fun i -> rows.(i)) s
      | None -> assemble t.store (Array.length s) (Some s))
end

(* ------------------------------------------------------------------ *)
(* Compiled unboxed integer expressions over a store's physical rows.

   [iv i] is the expression's value at physical row [i], valid only when
   [inull i] is false (callers must test [inull] first: a NULL divisor
   guard lives in [inull], so [iv] would divide by zero).  Semantics
   mirror [Expr.arith] on Int arguments exactly: native [+]/[-]/[*],
   truncating [/] and [mod], Div/Mod by zero -> NULL, any NULL operand
   -> NULL.  Compilation forces the referenced columns, so the returned
   closures are pure and safe to call from worker domains. *)

type int_vec = { iv : int -> int; inull : int -> bool }

let no_null _ = false

let rec int_expr (s : Schema.t) (st : Chunk.store) (e : Expr.t) :
  int_vec option =
  match e with
  | Expr.Const (Value.Int k) ->
    Some { iv = (fun _ -> k); inull = no_null }
  | Expr.Const Value.Null -> Some { iv = (fun _ -> 0); inull = (fun _ -> true) }
  | Expr.Col { rel; col } -> (
    match Schema.index_of s ~rel ~name:col with
    | exception _ -> None
    | off -> (
      match Chunk.int_col st off with
      | Some (d, nb) ->
        let inull =
          if Bytes.index_opt nb '\001' = None then no_null
          else fun i -> Bytes.unsafe_get nb i <> '\000'
        in
        Some { iv = (fun i -> Array.unsafe_get d i); inull }
      | None -> None))
  | Expr.Binop (op, a, b) -> (
    match int_expr s st a with
    | None -> None
    | Some va -> (
      match b with
      | Expr.Const (Value.Int k) -> (
        (* constant rhs: fold the operand closure away and inline the
           arithmetic into one specialized closure per operator; a
           non-zero divisor also drops the per-row zero test *)
        let av = va.iv in
        match op with
        | Expr.Add -> Some { iv = (fun i -> av i + k); inull = va.inull }
        | Expr.Sub -> Some { iv = (fun i -> av i - k); inull = va.inull }
        | Expr.Mul -> Some { iv = (fun i -> av i * k); inull = va.inull }
        | (Expr.Div | Expr.Mod) when k = 0 ->
          Some { iv = (fun _ -> 0); inull = (fun _ -> true) }
        | Expr.Div -> Some { iv = (fun i -> av i / k); inull = va.inull }
        | Expr.Mod -> Some { iv = (fun i -> av i mod k); inull = va.inull })
      | _ -> (
        match int_expr s st b with
        | None -> None
        | Some vb -> (
          let av = va.iv and bv = vb.iv in
          match op with
          | Expr.Div | Expr.Mod ->
            let iv =
              match op with
              | Expr.Div -> fun i -> av i / bv i
              | _ -> fun i -> av i mod bv i
            in
            Some
              { iv;
                inull = (fun i -> va.inull i || vb.inull i || bv i = 0) }
          | Expr.Add | Expr.Sub | Expr.Mul ->
            let inull =
              if va.inull == no_null && vb.inull == no_null then no_null
              else fun i -> va.inull i || vb.inull i
            in
            let iv =
              match op with
              | Expr.Add -> fun i -> av i + bv i
              | Expr.Sub -> fun i -> av i - bv i
              | _ -> fun i -> av i * bv i
            in
            Some { iv; inull }))))
  | _ -> None

(* Index-based WHERE predicate over a store's physical rows.  Conjuncts
   whose comparison operands both compile through [int_expr] evaluate
   unboxed (this covers arbitrary integer arithmetic, e.g.
   [(v mod 7) = 0], not just bare columns); every other conjunct falls
   back to [pred1] over the forced row view.  Correctness: held-ness
   distributes over top-level AND (see [pred1]); a comparison with a
   NULL operand is never held, which [inull] reproduces; [Value.sql_cmp]
   on two Ints is [Stdlib.compare], which the raw-int comparison
   reproduces.  All forcing happens at compile time — the returned
   closure is pure. *)
let int_cmp_op (op : Expr.cmpop) : int -> int -> bool =
  match op with
  | Expr.Eq -> fun (a : int) b -> a = b
  | Expr.Neq -> fun (a : int) b -> a <> b
  | Expr.Lt -> fun (a : int) b -> a < b
  | Expr.Le -> fun (a : int) b -> a <= b
  | Expr.Gt -> fun (a : int) b -> a > b
  | Expr.Ge -> fun (a : int) b -> a >= b

let pred_store (s : Schema.t) (e : Expr.t) (st : Chunk.store) : int -> bool =
  let fallback c =
    let rows = Chunk.rows_view st in
    let p = pred1 s c in
    fun i -> p rows.(i)
  in
  let compile_conj c =
    match c with
    | Expr.Cmp (op, a, Expr.Const (Value.Int k)) -> (
      (* constant rhs: inline the comparison against [k] *)
      match int_expr s st a with
      | Some va ->
        let av = va.iv in
        let p : int -> bool =
          match op with
          | Expr.Eq -> fun i -> av i = k
          | Expr.Neq -> fun i -> av i <> k
          | Expr.Lt -> fun i -> av i < k
          | Expr.Le -> fun i -> av i <= k
          | Expr.Gt -> fun i -> av i > k
          | Expr.Ge -> fun i -> av i >= k
        in
        if va.inull == no_null then p
        else fun i -> (not (va.inull i)) && p i
      | None -> fallback c)
    | Expr.Cmp (op, a, b) -> (
      match (int_expr s st a, int_expr s st b) with
      | Some va, Some vb ->
        let cmp = int_cmp_op op in
        if va.inull == no_null && vb.inull == no_null then
          fun i -> cmp (va.iv i) (vb.iv i)
        else
          fun i ->
            (not (va.inull i)) && (not (vb.inull i))
            && cmp (va.iv i) (vb.iv i)
      | _ -> fallback c)
    | _ -> fallback c
  in
  let ps = Array.of_list (List.map compile_conj (Pred.conjuncts e)) in
  match Array.length ps with
  | 0 -> fun _ -> true
  | 1 -> ps.(0)
  | 2 ->
    let a = ps.(0) and b = ps.(1) in
    fun i -> a i && b i
  | _ -> fun i -> Array.for_all (fun p -> p i) ps

(* ------------------------------------------------------------------ *)
(* Row-level compiled integer expressions for the fused projection path.

   [rv t] is the expression's Int value over tuple [t]; [Row_null] means
   the SQL result is NULL (a NULL operand, or Div/Mod by zero),
   [Row_not_int] means a non-Int operand was hit and the caller must
   re-evaluate that row through the generic [Expr.compile] closure
   (which reproduces Float promotion, string concat and type errors
   exactly).  A NULL short-circuit is always sound: [Expr.arith] maps
   any NULL operand to NULL before it can raise. *)

exception Row_null
exception Row_not_int

let rec row_int (s : Schema.t) (e : Expr.t) : (Tuple.t -> int) option =
  match e with
  | Expr.Const (Value.Int k) -> Some (fun _ -> k)
  | Expr.Const Value.Null -> Some (fun _ -> raise Row_null)
  | Expr.Col { rel; col } -> (
    match Schema.index_of s ~rel ~name:col with
    | exception _ -> None
    | off ->
      Some
        (fun t ->
           match Tuple.get t off with
           | Value.Int v -> v
           | Value.Null -> raise Row_null
           | Value.Bool _ | Value.Float _ | Value.Str _ ->
             raise Row_not_int))
  | Expr.Binop (op, a, b) -> (
    match row_int s a with
    | None -> None
    | Some ra -> (
      match b with
      | Expr.Const (Value.Int k) -> (
        match op with
        | Expr.Add -> Some (fun t -> ra t + k)
        | Expr.Sub -> Some (fun t -> ra t - k)
        | Expr.Mul -> Some (fun t -> ra t * k)
        | (Expr.Div | Expr.Mod) when k = 0 ->
          Some
            (fun t ->
               ignore (ra t);
               raise Row_null)
        | Expr.Div -> Some (fun t -> ra t / k)
        | Expr.Mod -> Some (fun t -> ra t mod k))
      | _ -> (
        match row_int s b with
        | None -> None
        | Some rb -> (
          match op with
          | Expr.Add -> Some (fun t -> ra t + rb t)
          | Expr.Sub -> Some (fun t -> ra t - rb t)
          | Expr.Mul -> Some (fun t -> ra t * rb t)
          | Expr.Div ->
            Some
              (fun t ->
                 let y = rb t in
                 if y = 0 then raise Row_null else ra t / y)
          | Expr.Mod ->
            Some
              (fun t ->
                 let y = rb t in
                 if y = 0 then raise Row_null else ra t mod y)))))
  | _ -> None

(* Compiled projection item over physical rows: a plain column shares the
   existing box, integer arithmetic re-boxes through the small-int cache
   with no intermediate allocation, and everything else — including any
   row where an int-compiled item meets a non-Int operand — evaluates
   through [Expr.compile]. *)
let proj_item (s : Schema.t) (e : Expr.t) : Tuple.t -> Value.t =
  match col_offset s e with
  | Some off -> fun t -> Tuple.get t off
  | None -> (
    match e with
    (* depth-2 int arithmetic fuses into one closure: direct cell
       matches, no exception frame; any non-Int operand re-evaluates
       the row through the generic closure (which reproduces NULL
       propagation, Float promotion and type errors exactly — a NULL
       operand can also just short-circuit, [Expr.arith] maps it to
       NULL before it can raise) *)
    | Expr.Binop (op, a, (Expr.Const (Value.Int k) as kc))
      when col_offset s a <> None && not ((op = Expr.Div || op = Expr.Mod) && k = 0)
      -> (
        let off = Option.get (col_offset s a) in
        let fk = Expr.compile s kc in
        let slow t = Expr.arith op (Tuple.get t off) (fk t) in
        match op with
        | Expr.Add -> (
          fun t ->
            match Tuple.get t off with
            | Value.Int x -> box_int (x + k)
            | Value.Null -> Value.Null
            | _ -> slow t)
        | Expr.Sub -> (
          fun t ->
            match Tuple.get t off with
            | Value.Int x -> box_int (x - k)
            | Value.Null -> Value.Null
            | _ -> slow t)
        | Expr.Mul -> (
          fun t ->
            match Tuple.get t off with
            | Value.Int x -> box_int (x * k)
            | Value.Null -> Value.Null
            | _ -> slow t)
        | Expr.Div -> (
          fun t ->
            match Tuple.get t off with
            | Value.Int x -> box_int (x / k)
            | Value.Null -> Value.Null
            | _ -> slow t)
        | Expr.Mod -> (
          fun t ->
            match Tuple.get t off with
            | Value.Int x -> box_int (x mod k)
            | Value.Null -> Value.Null
            | _ -> slow t))
    | Expr.Binop (op, a, b)
      when col_offset s a <> None && col_offset s b <> None -> (
        let oa = Option.get (col_offset s a)
        and ob = Option.get (col_offset s b) in
        let slow t = Expr.arith op (Tuple.get t oa) (Tuple.get t ob) in
        match op with
        | Expr.Add -> (
          fun t ->
            match (Tuple.get t oa, Tuple.get t ob) with
            | Value.Int x, Value.Int y -> box_int (x + y)
            | Value.Null, _ | _, Value.Null -> Value.Null
            | _ -> slow t)
        | Expr.Sub -> (
          fun t ->
            match (Tuple.get t oa, Tuple.get t ob) with
            | Value.Int x, Value.Int y -> box_int (x - y)
            | Value.Null, _ | _, Value.Null -> Value.Null
            | _ -> slow t)
        | Expr.Mul -> (
          fun t ->
            match (Tuple.get t oa, Tuple.get t ob) with
            | Value.Int x, Value.Int y -> box_int (x * y)
            | Value.Null, _ | _, Value.Null -> Value.Null
            | _ -> slow t)
        | Expr.Div -> (
          fun t ->
            match (Tuple.get t oa, Tuple.get t ob) with
            | Value.Int x, Value.Int y ->
              if y = 0 then Value.Null else box_int (x / y)
            | Value.Null, _ | _, Value.Null -> Value.Null
            | _ -> slow t)
        | Expr.Mod -> (
          fun t ->
            match (Tuple.get t oa, Tuple.get t ob) with
            | Value.Int x, Value.Int y ->
              if y = 0 then Value.Null else box_int (x mod y)
            | Value.Null, _ | _, Value.Null -> Value.Null
            | _ -> slow t))
    | _ -> (
      match row_int s e with
      | Some rv ->
        let f = Expr.compile s e in
        fun t ->
          (match rv t with
           | v -> box_int v
           | exception Row_null -> Value.Null
           | exception Row_not_int -> f t)
      | None -> Expr.compile s e))

(* Output arity of a join: semi/anti keep the outer schema only. *)
let join_arity kind ~outer ~inner =
  match kind with
  | Algebra.Inner | Algebra.Left_outer -> outer + inner
  | Algebra.Semi | Algebra.Anti -> outer

(* ------------------------------------------------------------------ *)
(* Join-row emission (shared across the join operators).  [lo, hi) is a
   range of [arr]; matching against an index range avoids the
   interpreter's Array.sub copies in merge join. *)

let emit_range out kind ~inner_arity ot arr lo hi ~matches =
  match kind with
  | Algebra.Inner ->
    for k = lo to hi - 1 do
      let it = arr.(k) in
      if matches it then Storage.Vec.push out (Tuple.concat ot it)
    done
  | Algebra.Left_outer ->
    let any = ref false in
    for k = lo to hi - 1 do
      let it = arr.(k) in
      if matches it then begin
        any := true;
        Storage.Vec.push out (Tuple.concat ot it)
      end
    done;
    if not !any then
      Storage.Vec.push out (Tuple.concat ot (Tuple.nulls inner_arity))
  | Algebra.Semi ->
    let rec ex k = k < hi && (matches arr.(k) || ex (k + 1)) in
    if ex lo then Storage.Vec.push out ot
  | Algebra.Anti ->
    let rec ex k = k < hi && (matches arr.(k) || ex (k + 1)) in
    if not (ex lo) then Storage.Vec.push out ot

let emit_list out kind ~inner_arity ot items ~matches =
  match kind with
  | Algebra.Inner ->
    List.iter
      (fun it -> if matches it then Storage.Vec.push out (Tuple.concat ot it))
      items
  | Algebra.Left_outer ->
    let any = ref false in
    List.iter
      (fun it ->
         if matches it then begin
           any := true;
           Storage.Vec.push out (Tuple.concat ot it)
         end)
      items;
    if not !any then
      Storage.Vec.push out (Tuple.concat ot (Tuple.nulls inner_arity))
  | Algebra.Semi ->
    if List.exists matches items then Storage.Vec.push out ot
  | Algebra.Anti ->
    if not (List.exists matches items) then Storage.Vec.push out ot
