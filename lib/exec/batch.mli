(** Batch execution engine: executes the same physical {!Plan.t} trees as
    {!Executor}, operator-at-a-time over row batches with column offsets
    resolved once per operator, specialized key hash tables, and
    cost charging decoupled from data movement — a [Nested_loop] rescan
    charges the buffer pool (by replaying the inner subtree's page-access
    pattern) without recomputing the inner rows, which are cached by
    physical node identity.

    Contract: for every plan, [run] returns bit-identical rows in the same
    order, and drives the {!Context} (buffer pool, CPU, spill counters)
    identically to {!Executor.run}.  The interpreter remains the
    differential-testing oracle. *)

val run :
  ?ctx:Context.t -> Storage.Catalog.t -> Plan.t -> Executor.result
