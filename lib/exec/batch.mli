(** Batch execution engine: executes the same physical {!Plan.t} trees as
    {!Executor}, operator-at-a-time over columnar chunks
    ({!Eval.Chunk.t}: per-column typed storage plus a selection vector).
    Filters and semi/anti hash joins narrow the selection without
    materializing rows; integer predicates, projection items, join keys
    and aggregate arguments run unboxed over the column data; rows are
    materialized only where an operator is inherently row-shaped (sort
    payloads, nested-loop rescans, join-row emission, the final result).
    Cost charging is decoupled from data movement — all charging loops
    run over logical (selection-order) row counts, and a [Nested_loop]
    rescan charges the buffer pool (by replaying the inner subtree's
    page-access pattern) without recomputing the inner rows, which are
    cached by physical node identity.

    Contract: for every plan, [run] returns bit-identical rows in the same
    order, and drives the {!Context} (buffer pool, CPU, spill counters)
    identically to {!Executor.run} — at any [chunk_rows].  The
    interpreter remains the differential-testing oracle. *)

(** Default block size for selection-vector gathering. *)
val default_chunk_rows : int

(** Sketch-build hook, asked once per scanned (table, column): return the
    feed callback for columns an estimator wants summarized (Fast-AGMS
    sketches built in one pass over sequential scans, nulls skipped), or
    [None].  Plain function type — the sketch state lives above the
    execution layer. *)
type sketch_hook = table:string -> column:string -> (int -> unit) option

(** Feed a sequential scan's full store to the hook (shared with the
    morsel executor, which feeds on its coordinator). *)
val feed_sketches :
  sketch_hook option -> Storage.Table.t -> Eval.Chunk.store -> unit

(** When [obs] is given, node executions and replay invocations are
    recorded against the {!Instrument} recorder; per-operator [act_rows]
    and [rescans] match {!Executor.run} on the same plan.  [sketch]
    feeds the full (pre-filter) stores of sequential scans — index
    scans never feed, a range fetch sees only part of the column. *)
val run :
  ?ctx:Context.t -> ?obs:Instrument.t -> ?sketch:sketch_hook ->
  ?chunk_rows:int ->
  Storage.Catalog.t -> Plan.t -> Executor.result

(** An executed subtree: its chunk plus a [replay] closure that charges
    the context exactly as one warm re-execution of the interpreter
    would (page reads re-issued against the stateful buffer pool in the
    same order, CPU and spill totals re-charged). *)
type node = {
  chunk : Eval.Chunk.t;
  replay : unit -> unit;
}

(** [run_node] is {!run} exposing the chunk and replay closure — the
    morsel executor runs sequential-only subtrees (e.g. [Nested_loop]
    inners that must replay per outer tuple) through it. *)
val run_node :
  ?ctx:Context.t -> ?obs:Instrument.t -> ?sketch:sketch_hook ->
  ?chunk_rows:int ->
  Storage.Catalog.t -> Plan.t -> node

(** Test-only fault injection: treat NULL single-column integer join keys
    as [Int 0] (simulating loss of the NULL-key guard on the
    {!Keys.Int_map} fast path).  Exists so the differential fuzzer's
    self-test can prove an injected engine bug is caught, shrunk to a
    minimal repro, and replayed; never set outside tests. *)
val fault_null_key_as_zero : bool ref
