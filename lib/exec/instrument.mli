(** Per-operator runtime instrumentation, shared by both engines.

    A recorder assigns each node of a physical plan a stable operator id —
    its pre-order index — before execution.  Because interpreter and batch
    runs execute the same tree, ids (and the actuals keyed by them) are
    directly comparable across engines. *)

type op = {
  id : int;  (** pre-order index in the plan tree *)
  node : Plan.t;
  mutable est_rows : float option;
      (** optimizer cardinality estimate, attached post-hoc *)
  mutable act_rows : int;  (** rows produced by the first (cold) execution *)
  mutable rescans : int;
      (** re-executions (interpreter) / replay invocations (batch) *)
  mutable wall_s : float;  (** exclusive wall-clock seconds *)
  mutable self : Context.snapshot;  (** exclusive counter deltas *)
  mutable executed : bool;
}

type t

(** Walk [plan] and assign operator ids. *)
val create : Plan.t -> t

(** All operators in id order. *)
val ops : t -> op list

(** Find the operator for a physical node ([==] identity). *)
val lookup : t -> Plan.t -> op option

(** [measure r ctx p ~rows f] runs one execution of node [p] under the
    recorder: the first execution records [rows result] as the cold row
    count, later executions count as rescans; counter and wall-clock
    activity is attributed exclusively (child executions subtracted).
    Nodes unknown to the recorder run unmeasured. *)
val measure :
  t -> Context.t -> Plan.t -> rows:('a -> int) -> (unit -> 'a) -> 'a

(** Wrap a batch-engine replay closure so each invocation counts as a
    rescan of [p], with the same attribution rules as [measure]. *)
val measured_replay :
  t -> Context.t -> Plan.t -> (unit -> unit) -> unit -> unit
