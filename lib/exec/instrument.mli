(** Per-operator runtime instrumentation, shared by both engines.

    A recorder assigns each node of a physical plan a stable operator id —
    its pre-order index — before execution.  Because interpreter and batch
    runs execute the same tree, ids (and the actuals keyed by them) are
    directly comparable across engines. *)

(** Parallel-execution actuals for one operator (morsel executor only):
    per-worker busy seconds and rows produced, summed over the
    operator's parallel phases.  Worker 0 is the coordinating domain. *)
type par = {
  par_dop : int;
  worker_wall : float array;  (** busy seconds per worker *)
  worker_rows : int array;  (** rows produced per worker *)
}

(** One executed parallel task: worker, operator, and its monotonic
    start/end ({!Mclock} seconds).  The execution's full task list is
    the worker timeline behind the Chrome-trace profile export. *)
type task = {
  t_worker : int;
  t_op : int;  (** operator id *)
  t_name : string;  (** operator description *)
  t_start : float;
  t_end : float;
}

type op = {
  id : int;  (** pre-order index in the plan tree *)
  node : Plan.t;
  mutable est_rows : float option;
      (** optimizer cardinality estimate, attached post-hoc *)
  mutable act_rows : int;  (** rows produced by the first (cold) execution *)
  mutable rescans : int;
      (** re-executions (interpreter) / replay invocations (batch) *)
  mutable wall_s : float;  (** exclusive wall-clock seconds *)
  mutable self : Context.snapshot;  (** exclusive counter deltas *)
  mutable executed : bool;
  mutable par : par option;
      (** per-worker actuals; [None] unless the morsel executor ran this
          operator's loops in parallel *)
}

type t

(** Walk [plan] and assign operator ids. *)
val create : Plan.t -> t

(** All operators in id order. *)
val ops : t -> op list

(** Worker timeline: every recorded parallel task, in recording order. *)
val timeline : t -> task list

(** Parallel phases whose worker-array width differed from an earlier
    phase of the same operator; such samples are merged into max-width
    arrays (never dropped), and this counter surfaces that it happened. *)
val par_mismatches : t -> int

(** Record one parallel task's interval against node [p] (coordinator
    only).  Unknown nodes are ignored; [end_s] is clamped to
    [>= start_s]. *)
val record_task :
  t -> Plan.t -> worker:int -> start_s:float -> end_s:float -> unit

(** Find the operator for a physical node ([==] identity). *)
val lookup : t -> Plan.t -> op option

(** [measure r ctx p ~rows f] runs one execution of node [p] under the
    recorder: the first execution records [rows result] as the cold row
    count, later executions count as rescans; counter and wall-clock
    activity is attributed exclusively (child executions subtracted).
    Nodes unknown to the recorder run unmeasured. *)
val measure :
  t -> Context.t -> Plan.t -> rows:('a -> int) -> (unit -> 'a) -> 'a

(** Wrap a batch-engine replay closure so each invocation counts as a
    rescan of [p], with the same attribution rules as [measure]. *)
val measured_replay :
  t -> Context.t -> Plan.t -> (unit -> unit) -> unit -> unit

(** Accumulate one parallel phase's per-worker busy time and row counts
    into [p]'s operator (element-wise add onto any previous phase).
    Unknown nodes are ignored. *)
val record_par :
  t -> Plan.t -> dop:int -> wall:float array -> rows:int array -> unit
