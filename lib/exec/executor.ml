(* Plan execution.

   Execution materializes each operator's output as a tuple array while
   charging the context for page reads (through the buffer-pool simulator,
   so rescans of resident pages are free) and per-tuple CPU work.
   [Nested_loop] re-executes its inner child per outer tuple — the classical
   tuple-iteration semantics — which is what makes the buffer-utilization
   and rescan experiments meaningful.  [Materialize] caches its child within
   one [run]. *)

open Relalg

type result = { schema : Schema.t; rows : Tuple.t array }

let log2_ceil = Access.log2_ceil

let sort_spill_pages = Access.sort_spill_pages

let key_of_pairs schema (refs : Expr.col_ref list) =
  let idxs =
    List.map
      (fun (r : Expr.col_ref) ->
         Schema.index_of schema ~rel:r.Expr.rel ~name:r.Expr.col)
      refs
  in
  fun (t : Tuple.t) -> List.map (fun i -> Tuple.get t i) idxs

let keys_nullfree ks = List.for_all (fun v -> not (Value.is_null v)) ks

(* Keys from [key_of_pairs] have a fixed arity per operator, so equality
   compares positions without re-measuring lengths (Keys is shared with
   the batch engine). *)
module Key_tbl = Keys.List_tbl

let run ?(ctx = Context.create ()) ?obs (cat : Storage.Catalog.t)
    (plan : Plan.t) : result =
  (* Materialize memo, keyed by *physical* node identity: an association
     by [==] never hashes or compares plan subtrees, and plans hold at most
     a handful of Materialize nodes. *)
  let memo : (Plan.t * Tuple.t array) list ref = ref [] in
  (* Instrumentation is a single match per operator execution when off. *)
  let rec exec (p : Plan.t) : Tuple.t array =
    match obs with
    | None -> exec_op p
    | Some r ->
      Instrument.measure r ctx p ~rows:Array.length (fun () -> exec_op p)

  and exec_op (p : Plan.t) : Tuple.t array =
    match p with
    | Plan.Seq_scan { table; alias = _; filter } ->
      let t = Storage.Catalog.table cat table in
      let pages = Storage.Table.page_count t in
      for pg = 0 to pages - 1 do
        Context.read_page ctx ~random:false (table, pg)
      done;
      let n = Storage.Table.row_count t in
      Context.charge_cpu ctx n;
      let out = Storage.Vec.create () in
      let keep =
        match filter with
        | None -> fun _ -> true
        | Some f ->
          Expr.holds (Schema.requalify t.Storage.Table.schema ~rel:(alias_of p)) f
      in
      for rid = 0 to n - 1 do
        let tu = Storage.Table.get t rid in
        if keep tu then Storage.Vec.push out tu
      done;
      Storage.Vec.to_array out
    | Plan.Index_scan { table; alias; column; lo; hi; filter } ->
      let t = Storage.Catalog.table cat table in
      let idx =
        match Storage.Catalog.index_on cat ~table ~column with
        | Some i -> i
        | None ->
          invalid_arg
            (Printf.sprintf "Index_scan: no index on %s(%s)" table column)
      in
      fetch_via_index idx t ~alias ~lo ~hi ~filter
    | Plan.Filter (f, i) ->
      let rows = exec i in
      let s = Plan.schema cat i in
      let keep = Expr.holds s f in
      Context.charge_cpu ctx (Array.length rows);
      let out = Storage.Vec.create () in
      Array.iter (fun t -> if keep t then Storage.Vec.push out t) rows;
      Storage.Vec.to_array out
    | Plan.Project (items, i) ->
      let rows = exec i in
      let s = Plan.schema cat i in
      let fs = List.map (fun (e, _) -> Expr.compile s e) items in
      Context.charge_cpu ctx (Array.length rows);
      Array.map (fun t -> Array.of_list (List.map (fun f -> f t) fs)) rows
    | Plan.Sort (keys, i) ->
      let rows = exec i in
      let s = Plan.schema cat i in
      let fs =
        List.map
          (fun (k : Plan.sort_key) -> (Expr.compile s k.Plan.key, k.Plan.descending))
          keys
      in
      let cmp a b =
        let rec go = function
          | [] -> 0
          | (f, desc) :: rest -> (
            match Value.compare (f a) (f b) with
            | 0 -> go rest
            | c -> if desc then -c else c)
        in
        go fs
      in
      let n = Array.length rows in
      Context.charge_cpu ctx (n * log2_ceil n);
      let pages = Storage.Page.pages_for ~rows:n s in
      Context.charge_spill ctx
        (sort_spill_pages ~work_mem:ctx.Context.work_mem_pages ~pages);
      let copy = Array.copy rows in
      Array.stable_sort cmp copy;
      copy
    | Plan.Materialize i -> (
      match List.find_opt (fun (q, _) -> q == p) !memo with
      | Some (_, rows) -> rows
      | None ->
        let rows = exec i in
        memo := (p, rows) :: !memo;
        rows)
    | Plan.Nested_loop { kind; pred; outer; inner } ->
      let outer_rows = exec outer in
      let so = Plan.schema cat outer and si = Plan.schema cat inner in
      let holds = Expr.holds (Schema.concat so si) pred in
      let inner_arity = Schema.arity si in
      let out = Storage.Vec.create () in
      Array.iter
        (fun ot ->
           let inner_rows = exec inner in
           Context.charge_cpu ctx (Array.length inner_rows);
           emit_join_row out kind ~inner_arity ot inner_rows
             ~matches:(fun it -> holds (Tuple.concat ot it))
             ~combine:Tuple.concat)
        outer_rows;
      Storage.Vec.to_array out
    | Plan.Index_nl
        { kind; outer; table; alias; index; columns = _; outer_keys; residual }
      ->
      let t = Storage.Catalog.table cat table in
      let idx =
        match Storage.Catalog.index_named cat ~table ~name:index with
        | Some i -> i
        | None ->
          invalid_arg
            (Printf.sprintf "Index_nl: no index %s on %s" index table)
      in
      let outer_rows = exec outer in
      let so = Plan.schema cat outer in
      let si = Schema.requalify t.Storage.Table.schema ~rel:alias in
      let keyfs = List.map (Expr.compile so) outer_keys in
      let holds = Expr.holds (Schema.concat so si) residual in
      let inner_arity = Schema.arity si in
      let out = Storage.Vec.create () in
      Array.iter
        (fun ot ->
           let ks = List.map (fun f -> f ot) keyfs in
           let matches = fetch_probe idx t ks in
           Context.charge_cpu ctx (1 + Array.length matches);
           emit_join_row out kind ~inner_arity ot matches
             ~matches:(fun it -> holds (Tuple.concat ot it))
             ~combine:Tuple.concat)
        outer_rows;
      Storage.Vec.to_array out
    | Plan.Merge_join { kind; pairs; residual; left; right } ->
      merge_join kind pairs residual left right
    | Plan.Hash_join { kind; pairs; residual; left; right } ->
      hash_join kind pairs residual left right
    | Plan.Hash_agg { keys; aggs; input } -> aggregate ~sorted:false keys aggs input
    | Plan.Stream_agg { keys; aggs; input } -> aggregate ~sorted:true keys aggs input
    | Plan.Hash_distinct i ->
      let rows = exec i in
      let seen = Key_tbl.create 64 in
      let out = Storage.Vec.create () in
      Context.charge_cpu ctx (Array.length rows);
      Array.iter
        (fun t ->
           let k = Array.to_list t in
           if not (Key_tbl.mem seen k) then begin
             Key_tbl.replace seen k ();
             Storage.Vec.push out t
           end)
        rows;
      Storage.Vec.to_array out

  and alias_of = function
    | Plan.Seq_scan { alias; _ } | Plan.Index_scan { alias; _ } -> alias
    | _ -> assert false

  (* Index fetch shared by Index_scan and Index_nl probes; the charging
     pattern lives in [Access] (shared with the batch engine). *)
  and fetch_entries (idx : Storage.Btree.t) (t : Storage.Table.t)
      (entries : (Value.t list * int) array) lo_pos : Tuple.t array =
    Access.charge_index_fetch ctx idx t ~entries ~lo_pos;
    Access.fetch_rows t entries

  and fetch_via_index idx t ~alias ~lo ~hi ~filter =
    let entries = Storage.Btree.range idx ~lo ~hi in
    let lo_pos =
      match lo with
      | Storage.Btree.Unbounded -> Storage.Btree.upper_bound idx [ Value.Null ]
      | Storage.Btree.Incl k -> Storage.Btree.lower_bound idx [ k ]
      | Storage.Btree.Excl k -> Storage.Btree.upper_bound idx [ k ]
    in
    let rows = fetch_entries idx t entries lo_pos in
    match filter with
    | None -> rows
    | Some f ->
      let s = Schema.requalify t.Storage.Table.schema ~rel:alias in
      let keep = Expr.holds s f in
      let out = Storage.Vec.create () in
      Array.iter (fun tu -> if keep tu then Storage.Vec.push out tu) rows;
      Storage.Vec.to_array out

  and fetch_probe idx t ks =
    let entries = Storage.Btree.probe idx ks in
    fetch_entries idx t entries (Storage.Btree.lower_bound idx ks)

  (* Shared join-row emission across NL/index-NL (match predicate given as a
     function of the inner tuple). *)
  and emit_join_row out kind ~inner_arity ot inner_rows ~matches ~combine =
    match kind with
    | Algebra.Inner ->
      Array.iter
        (fun it -> if matches it then Storage.Vec.push out (combine ot it))
        inner_rows
    | Algebra.Left_outer ->
      let any = ref false in
      Array.iter
        (fun it ->
           if matches it then begin
             any := true;
             Storage.Vec.push out (combine ot it)
           end)
        inner_rows;
      if not !any then Storage.Vec.push out (combine ot (Tuple.nulls inner_arity))
    | Algebra.Semi ->
      if Array.exists matches inner_rows then Storage.Vec.push out ot
    | Algebra.Anti ->
      if not (Array.exists matches inner_rows) then Storage.Vec.push out ot

  and merge_join kind pairs residual left right =
    (* pinned left-then-right evaluation: the buffer pool is stateful, and
       the batch engine must replay the same page-access order *)
    let lrows = exec left in
    let rrows = exec right in
    let sl = Plan.schema cat left and sr = Plan.schema cat right in
    let lkey = key_of_pairs sl (List.map fst pairs) in
    let rkey = key_of_pairs sr (List.map snd pairs) in
    let holds = Expr.holds (Schema.concat sl sr) residual in
    let inner_arity = Schema.arity sr in
    let out = Storage.Vec.create () in
    Context.charge_cpu ctx (Array.length lrows + Array.length rrows);
    let nl = Array.length lrows and nr = Array.length rrows in
    let cmp_keys a b =
      let rec go = function
        | [], [] -> 0
        | x :: xs, y :: ys -> (
          match Value.compare x y with 0 -> go (xs, ys) | c -> c)
        | _ -> 0
      in
      go (a, b)
    in
    let j = ref 0 in
    let i = ref 0 in
    while !i < nl do
      let lt = lrows.(!i) in
      let lk = lkey lt in
      if not (keys_nullfree lk) then begin
        (* null keys never match *)
        (match kind with
         | Algebra.Left_outer ->
           Storage.Vec.push out (Tuple.concat lt (Tuple.nulls inner_arity))
         | Algebra.Anti -> Storage.Vec.push out lt
         | Algebra.Inner | Algebra.Semi -> ());
        incr i
      end
      else begin
        (* advance right side to lk *)
        while !j < nr
              && (let rk = rkey rrows.(!j) in
                  (not (keys_nullfree rk)) || cmp_keys rk lk < 0)
        do
          incr j
        done;
        (* collect the block of right rows with key = lk *)
        let block_start = !j in
        let block_end = ref !j in
        while !block_end < nr && cmp_keys (rkey rrows.(!block_end)) lk = 0 do
          incr block_end
        done;
        (* emit for every left row sharing this key *)
        while
          !i < nl
          && (let lk' = lkey lrows.(!i) in
              keys_nullfree lk' && cmp_keys lk' lk = 0)
        do
          let lt = lrows.(!i) in
          let block =
            Array.sub rrows block_start (!block_end - block_start)
          in
          Context.charge_cpu ctx (Array.length block);
          emit_join_row out kind ~inner_arity lt block
            ~matches:(fun rt -> holds (Tuple.concat lt rt))
            ~combine:Tuple.concat;
          incr i
        done
      end
    done;
    Storage.Vec.to_array out

  and hash_join kind pairs residual left right =
    let rrows = exec right in
    let sl = Plan.schema cat left and sr = Plan.schema cat right in
    let rkey = key_of_pairs sr (List.map snd pairs) in
    let tbl = Key_tbl.create (max 16 (Array.length rrows)) in
    Array.iter
      (fun rt ->
         let k = rkey rt in
         if keys_nullfree k then
           Key_tbl.replace tbl k
             (rt :: (Option.value (Key_tbl.find_opt tbl k) ~default:[])))
      rrows;
    Context.charge_cpu ctx (Array.length rrows);
    (* spill if the build side exceeds work_mem (Grace-style partitioning) *)
    let rpages = Storage.Page.pages_for ~rows:(Array.length rrows) sr in
    let lrows = exec left in
    let lpages = Storage.Page.pages_for ~rows:(Array.length lrows) sl in
    if rpages > ctx.Context.work_mem_pages then
      Context.charge_spill ctx (2 * (rpages + lpages));
    let lkey = key_of_pairs sl (List.map fst pairs) in
    let holds = Expr.holds (Schema.concat sl sr) residual in
    let inner_arity = Schema.arity sr in
    let out = Storage.Vec.create () in
    Context.charge_cpu ctx (Array.length lrows);
    Array.iter
      (fun lt ->
         let k = lkey lt in
         let bucket =
           if keys_nullfree k then
             Option.value (Key_tbl.find_opt tbl k) ~default:[]
           else []
         in
         Context.charge_cpu ctx (List.length bucket);
         emit_join_row out kind ~inner_arity lt (Array.of_list bucket)
           ~matches:(fun rt -> holds (Tuple.concat lt rt))
           ~combine:Tuple.concat)
      lrows;
    Storage.Vec.to_array out

  and aggregate ~sorted keys aggs input =
    let rows = exec input in
    let s = Plan.schema cat input in
    let keyfs = List.map (fun (e, _) -> Expr.compile s e) keys in
    let argfs =
      List.map
        (fun (a, _) ->
           match Expr.agg_arg a with
           | None -> fun _ -> Value.Int 1 (* count-star: any non-null *)
           | Some e -> Expr.compile s e)
        aggs
    in
    Context.charge_cpu ctx (Array.length rows);
    let finalize key_values states =
      Array.of_list
        (key_values
         @ List.map2 (fun (a, _) st -> Expr.agg_final a st) aggs states)
    in
    let out = Storage.Vec.create () in
    if sorted then begin
      (* stream aggregation over key-sorted input *)
      let cur_key = ref None in
      let cur_states = ref [] in
      let flush () =
        match !cur_key with
        | None -> ()
        | Some kv -> Storage.Vec.push out (finalize kv !cur_states)
      in
      Array.iter
        (fun t ->
           let kv = List.map (fun f -> f t) keyfs in
           (match !cur_key with
            | Some kv' when List.for_all2 Value.equal kv kv' -> ()
            | Some _ | None ->
              flush ();
              cur_key := Some kv;
              cur_states := List.map (fun _ -> Expr.agg_init ()) aggs);
           List.iter2 (fun f st -> Expr.agg_step st (f t)) argfs !cur_states)
        rows;
      flush ();
      if keys = [] && Storage.Vec.length out = 0 then
        (* scalar aggregate over the empty input: one row *)
        Storage.Vec.push out
          (finalize [] (List.map (fun _ -> Expr.agg_init ()) aggs))
    end
    else begin
      let tbl = Key_tbl.create 64 in
      let order = Storage.Vec.create () in
      Array.iter
        (fun t ->
           let kv = List.map (fun f -> f t) keyfs in
           let states =
             match Key_tbl.find_opt tbl kv with
             | Some st -> st
             | None ->
               let st = List.map (fun _ -> Expr.agg_init ()) aggs in
               Key_tbl.replace tbl kv st;
               Storage.Vec.push order kv;
               st
           in
           List.iter2 (fun f st -> Expr.agg_step st (f t)) argfs states)
        rows;
      Storage.Vec.iter
        (fun kv -> Storage.Vec.push out (finalize kv (Key_tbl.find tbl kv)))
        order;
      if keys = [] && Storage.Vec.length out = 0 then
        Storage.Vec.push out
          (finalize [] (List.map (fun _ -> Expr.agg_init ()) aggs))
    end;
    Storage.Vec.to_array out
  in
  { schema = Plan.schema cat plan; rows = exec plan }

(* Compare two results as multisets of tuples — the equivalence notion for
   all rewrite-correctness tests. *)
let same_multiset (a : result) (b : result) =
  let sort r =
    let l = Array.to_list r.rows in
    List.sort Tuple.compare l
  in
  List.length (sort a) = List.length (sort b)
  && List.for_all2 Tuple.equal (sort a) (sort b)

(* Same, but modulo column order: different join orders permute the output
   schema, so columns are first aligned by their (relation, name) key.
   Requires unique column keys in both schemas. *)
let same_multiset_modulo_columns (a : result) (b : result) =
  let key (c : Schema.column) = (c.Schema.rel, c.Schema.name) in
  let canon (r : result) =
    let order =
      List.mapi (fun i c -> (key c, i)) r.schema
      |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
    in
    ( List.map fst order,
      Array.map
        (fun t -> Array.of_list (List.map (fun (_, i) -> Tuple.get t i) order))
        r.rows )
  in
  let ka, ra = canon a and kb, rb = canon b in
  ka = kb
  && same_multiset
       { schema = []; rows = ra }
       { schema = []; rows = rb }

let pp_result ppf (r : result) =
  Fmt.pf ppf "@[<v>%a@,%a@]" Schema.pp r.schema
    Fmt.(array ~sep:cut Tuple.pp) r.rows
