(* Morsel-driven parallel execution engine.

   Executes the same physical [Plan.t] trees as [Batch], splitting
   operator work into fixed-size logical-row ranges ("morsels") that a
   [Domain_pool] drains by atomic work stealing.  The contract is strict:
   for every plan, [run ~dop] returns BIT-IDENTICAL rows in the SAME
   ORDER, and drives the [Context] identically to [Batch.run] — not just
   multiset-equal.  That strength is what keeps the differential oracles
   (interpreter vs. batch vs. morsel) and the deterministic cost
   accounting valid at any dop.  It is achieved by construction:

   - Operators exchange the same columnar chunks as [Batch]
     ([Eval.Chunk.t]): morsels are ranges of a chunk's logical index
     space, filters and semi/anti hash joins exchange per-morsel
     selection-index vectors (concatenated in morsel order), and
     projections fill disjoint ranges of preallocated typed columns.
   - Workers do pure computation only.  Every [Context] charge (CPU,
     spill, buffer-pool page access) happens on the coordinating domain,
     using [Batch]'s exact formulas, in [Batch]'s exact order relative to
     child executions — so the stateful LRU buffer pool sees the same
     access sequence and the additive counters the same totals.  Lazy
     chunk caches (column/row views) are forced on the coordinator
     before dispatch — compiled predicate/expression closures are pure
     by the time a worker calls them.
   - Order-preserving splits: scans/filters/projects/probes process
     morsels of the input index space and concatenate results in morsel
     order, reproducing the sequential emission order exactly.
   - Hash joins build per-partition tables from per-morsel partition
     vectors concatenated in morsel order, so every key's bucket chain
     (most-recent-first) is identical to the sequential build; probes
     then emit in probe-row order.
   - Hash aggregation exchanges logical row indices by key-hash
     partition; each partition folds ITS keys' rows sequentially in
     global row order (bit-exact float sums — no state merging), and
     groups are emitted in global first-occurrence order by sorting on
     the first row index.
   - Sort runs parallel stable chunk sorts + pairwise merge rounds whose
     ties prefer the earlier chunk: exactly a stable sort.
   - Sequential-only operators (Index_scan, Index_nl probes, Merge_join,
     Stream_agg) run the [Batch] logic inline; [Nested_loop] inners —
     which must replay their page-access pattern per outer tuple — run
     through [Batch.run_node].

   The optional [schedule] maps each plan node to the DOP the two-phase
   optimizer chose for its segment; nodes scheduled at 1 run inline on
   the coordinator even when the pool is wider. *)

open Relalg
open Eval

let default_morsel_rows = 4096

let run ?(ctx = Context.create ()) ?obs ?sketch ?pool
    ?(morsel = default_morsel_rows) ?schedule ?chunk_rows ~dop
    (cat : Storage.Catalog.t) (plan : Plan.t) : Executor.result =
  let dop = max 1 dop in
  if dop = 1 || not Domain_pool.available then
    Batch.run ~ctx ?obs ?sketch ?chunk_rows cat plan
  else begin
    let owned, pool =
      match pool with
      | Some p -> (false, p)
      | None -> (true, Domain_pool.create dop)
    in
    Fun.protect
      ~finally:(fun () -> if owned then Domain_pool.shutdown pool)
    @@ fun () ->
    let pdop = Domain_pool.dop pool in
    let msize = max 1 morsel in
    let ntasks n = (n + msize - 1) / msize in
    let bounds n c = (c * msize, min n ((c * msize) + msize)) in
    (* partition fan-out for hash exchanges; any value is correct (output
       and counters are partition-count-independent), wider than the pool
       for balance under skew *)
    let nparts = min 64 (4 * pdop) in
    let sched p =
      match schedule with
      | None -> pdop
      | Some f -> max 1 (min pdop (f p))
    in
    (* Run [tasks] as a parallel phase attributed to [node]: per-worker
       busy time and row counts are folded into the operator's [par]
       stats.  [f c] returns the rows the task produced/processed.
       Degrades to an inline loop when the phase or schedule leaves no
       parallelism. *)
    let dispatch node ~tasks (f : int -> int) =
      if tasks > 0 then begin
        let w = sched node in
        if w <= 1 || tasks = 1 then
          for c = 0 to tasks - 1 do ignore (f c) done
        else begin
          let wall = Array.make pdop 0. and wrows = Array.make pdop 0 in
          (* per-task (worker, start, end) intervals: workers write
             disjoint slots; the coordinator folds them into the
             recorder's timeline after the phase, so only one domain
             ever mutates recorder state *)
          let tl =
            match obs with
            | Some _ -> Some (Array.make tasks (-1, 0., 0.))
            | None -> None
          in
          Domain_pool.run pool ~workers:w ~tasks (fun ~worker c ->
              let t0 = Mclock.now () in
              let r = f c in
              let t1 = Mclock.now () in
              (match tl with
               | Some a -> a.(c) <- (worker, t0, t1)
               | None -> ());
              wall.(worker) <- wall.(worker) +. (t1 -. t0);
              wrows.(worker) <- wrows.(worker) + r);
          match obs with
          | Some rc ->
            Instrument.record_par rc node ~dop:pdop ~wall ~rows:wrows;
            (match tl with
             | Some a ->
               Array.iter
                 (fun (worker, t0, t1) ->
                    if worker >= 0 then
                      Instrument.record_task rc node ~worker ~start_s:t0
                        ~end_s:t1)
                 a
             | None -> ())
          | None -> ()
        end
      end
    in
    let memo : (Plan.t * Chunk.t) list ref = ref [] in
    let rec exec (p : Plan.t) : Chunk.t =
      match obs with
      | None -> exec_op p
      | Some r ->
        Instrument.measure r ctx p ~rows:Chunk.length (fun () -> exec_op p)

    and exec_op (p : Plan.t) : Chunk.t =
      match p with
      | Plan.Seq_scan { table; alias; filter } -> seq_scan p table alias filter
      | Plan.Index_scan { table; alias; column; lo; hi; filter } ->
        index_scan table alias column lo hi filter
      | Plan.Filter (f, i) -> filter_op p f i
      | Plan.Project (items, i) -> project p items i
      | Plan.Sort (keys, i) -> sort p keys i
      | Plan.Materialize i -> (
        match List.find_opt (fun (q, _) -> q == p) !memo with
        | Some (_, ch) -> ch
        | None ->
          let ch = exec i in
          memo := (p, ch) :: !memo;
          ch)
      | Plan.Nested_loop { kind; pred; outer; inner } ->
        nested_loop p kind pred outer inner
      | Plan.Index_nl
          { kind; outer; table; alias; index; columns = _; outer_keys;
            residual } ->
        index_nl kind outer table alias index outer_keys residual
      | Plan.Merge_join { kind; pairs; residual; left; right } ->
        merge_join kind pairs residual left right
      | Plan.Hash_join { kind; pairs; residual; left; right } ->
        hash_join p kind pairs residual left right
      | Plan.Hash_agg { keys; aggs; input } ->
        aggregate p ~sorted:false keys aggs input
      | Plan.Stream_agg { keys; aggs; input } ->
        aggregate p ~sorted:true keys aggs input
      | Plan.Hash_distinct i -> hash_distinct p i

    (* Parallel selection: per-morsel survivor-index vectors concatenated
       in morsel order = sequential order.  [idx] maps the logical
       iteration index to the physical index tested and pushed; [keep]
       must be pure (compiled on the coordinator). *)
    and par_select p n idx keep store =
      let tasks = ntasks n in
      let outs = Array.make (max tasks 1) [||] in
      dispatch p ~tasks (fun c ->
          let lo, hi = bounds n c in
          let out = Storage.Vec.create () in
          for j = lo to hi - 1 do
            let pp = idx j in
            if keep pp then Storage.Vec.push out pp
          done;
          let a = Storage.Vec.to_array out in
          outs.(c) <- a;
          Array.length a);
      { Chunk.store; sel = Some (Array.concat (Array.to_list outs)) }

    (* ---------------------------------------------------------------- *)
    (* Scans *)

    and seq_scan p table alias filter =
      let t = Storage.Catalog.table cat table in
      let pages = Storage.Table.page_count t in
      let n = Storage.Table.row_count t in
      (* all charging on the coordinator, in Batch's order: pages then
         CPU, before any data movement *)
      for pg = 0 to pages - 1 do
        Context.read_page ctx ~random:false (table, pg)
      done;
      Context.charge_cpu ctx n;
      let s = Schema.requalify t.Storage.Table.schema ~rel:alias in
      let store =
        Chunk.store_of_rows ~arity:(Schema.arity s)
          (Storage.Table.rows_array t)
      in
      (* sketches feed on the coordinator, before any dispatch — workers
         never touch the (unsynchronized) sketch state *)
      Batch.feed_sketches sketch t store;
      match filter with
      | None -> Chunk.dense store
      | Some f ->
        (* pred_store forces the referenced columns here, on the
           coordinator; the returned closure is pure *)
        let keep = pred_store s f store in
        par_select p n (fun j -> j) keep store

    and index_scan table alias column lo hi filter =
      (* index probes charge the buffer pool per entry: inherently
         sequential; runs Batch's logic inline *)
      let t = Storage.Catalog.table cat table in
      let idx =
        match Storage.Catalog.index_on cat ~table ~column with
        | Some i -> i
        | None ->
          invalid_arg
            (Printf.sprintf "Index_scan: no index on %s(%s)" table column)
      in
      let entries = Storage.Btree.range idx ~lo ~hi in
      let lo_pos =
        match lo with
        | Storage.Btree.Unbounded ->
          Storage.Btree.upper_bound idx [ Value.Null ]
        | Storage.Btree.Incl k -> Storage.Btree.lower_bound idx [ k ]
        | Storage.Btree.Excl k -> Storage.Btree.upper_bound idx [ k ]
      in
      Access.charge_index_fetch ctx idx t ~entries ~lo_pos;
      let s = Schema.requalify t.Storage.Table.schema ~rel:alias in
      let store =
        Chunk.store_of_rows ~arity:(Schema.arity s)
          (Access.fetch_rows t entries)
      in
      (match filter with
       | None -> Chunk.dense store
       | Some f ->
         let keep = pred_store s f store in
         let sel = Storage.Vec.create () in
         for j = 0 to store.Chunk.len - 1 do
           if keep j then Storage.Vec.push sel j
         done;
         { Chunk.store; sel = Some (Storage.Vec.to_array sel) })

    (* ---------------------------------------------------------------- *)
    (* Scalar operators over morsels *)

    and filter_op p f i =
      let ch = exec i in
      let s = Plan.schema cat i in
      let n = Chunk.length ch in
      let keep = pred_store s f ch.Chunk.store in
      Context.charge_cpu ctx n;
      par_select p n (Chunk.phys ch) keep ch.Chunk.store

    and project p items i =
      let ch = exec i in
      let s = Plan.schema cat i in
      let store = ch.Chunk.store in
      let n = Chunk.length ch in
      Context.charge_cpu ctx n;
      let phys = Chunk.phys ch in
      let es = Array.of_list (List.map fst items) in
      let nf = Array.length es in
      match store.Chunk.rows with
      | Some srows ->
        (* the child is already materialized: fused row-at-a-time passes
           over disjoint morsels (plain columns share boxes, integer
           arithmetic re-boxes through the interned small-int cache).
           [proj_item] closures are pure, so workers may run them. *)
        let fs = Array.map (proj_item s) es in
        let out = Array.make n [||] in
        let get =
          match ch.Chunk.sel with
          | None -> fun j -> Array.unsafe_get srows j
          | Some sel ->
            fun j -> Array.unsafe_get srows (Array.unsafe_get sel j)
        in
        dispatch p ~tasks:(ntasks n) (fun c ->
            let lo, hi = bounds n c in
            for j = lo to hi - 1 do
              let t = get j in
              let o = Array.make nf Value.Null in
              for k = 0 to nf - 1 do
                Array.unsafe_set o k ((Array.unsafe_get fs k) t)
              done;
              out.(j) <- o
            done;
            hi - lo);
        Chunk.of_rows ~arity:nf out
      | None ->
      (* classify and preallocate on the coordinator (this forces the
         child's column/row caches); workers then fill disjoint logical
         ranges of the output columns.  Dense plain-column items share
         the child's typed columns outright — no fill at all. *)
      let rows = lazy (Chunk.to_rows ch) in
      let fills = Storage.Vec.create () in
      let out_cols =
        Array.map
          (fun e ->
             let c =
               match col_offset s e with
               | Some off -> (
                 let c = Chunk.col store off in
                 match ch.Chunk.sel with
                 | None -> c
                 | Some sel -> (
                   match c with
                   | Chunk.Ints (d, nb) ->
                     let d' = Array.make n 0 and nb' = Bytes.make n '\000' in
                     Storage.Vec.push fills (fun lo hi ->
                         for j = lo to hi - 1 do
                           let pp = Array.unsafe_get sel j in
                           d'.(j) <- d.(pp);
                           Bytes.set nb' j (Bytes.get nb pp)
                         done);
                     Chunk.Ints (d', nb')
                   | Chunk.Floats (d, nb) ->
                     let d' = Array.make n 0. and nb' = Bytes.make n '\000' in
                     Storage.Vec.push fills (fun lo hi ->
                         for j = lo to hi - 1 do
                           let pp = Array.unsafe_get sel j in
                           d'.(j) <- d.(pp);
                           Bytes.set nb' j (Bytes.get nb pp)
                         done);
                     Chunk.Floats (d', nb')
                   | Chunk.Boxed v ->
                     let v' = Array.make n Value.Null in
                     Storage.Vec.push fills (fun lo hi ->
                         for j = lo to hi - 1 do
                           v'.(j) <- v.(Array.unsafe_get sel j)
                         done);
                     Chunk.Boxed v'))
               | None -> (
                 match int_expr s store e with
                 | Some v ->
                   let d = Array.make n 0 and nb = Bytes.make n '\000' in
                   Storage.Vec.push fills (fun lo hi ->
                       for j = lo to hi - 1 do
                         let pp = phys j in
                         if v.inull pp then Bytes.set nb j '\001'
                         else d.(j) <- v.iv pp
                       done);
                   Chunk.Ints (d, nb)
                 | None ->
                   let f = Expr.compile s e in
                   let r = Lazy.force rows in
                   let v' = Array.make n Value.Null in
                   Storage.Vec.push fills (fun lo hi ->
                       for j = lo to hi - 1 do
                         v'.(j) <- f r.(j)
                       done);
                   Chunk.Boxed v')
             in
             Some c)
          es
      in
      let fills = Storage.Vec.to_array fills in
      if Array.length fills > 0 then
        dispatch p ~tasks:(ntasks n) (fun c ->
            let lo, hi = bounds n c in
            Array.iter (fun fill -> fill lo hi) fills;
            hi - lo);
      Chunk.dense { Chunk.arity = nf; len = n; rows = None; cols = out_cols }

    and sort p keys i =
      let rows = Chunk.to_rows (exec i) in
      let s = Plan.schema cat i in
      let fs =
        Array.of_list
          (List.map
             (fun (k : Plan.sort_key) ->
                (Expr.compile s k.Plan.key, k.Plan.descending))
             keys)
      in
      let nk = Array.length fs in
      let n = Array.length rows in
      let cpu = n * Access.log2_ceil n in
      let pages = Storage.Page.pages_for ~rows:n s in
      let spill =
        Access.sort_spill_pages ~work_mem:ctx.Context.work_mem_pages ~pages
      in
      Context.charge_cpu ctx cpu;
      Context.charge_spill ctx spill;
      let key_offsets =
        List.map
          (fun (k : Plan.sort_key) ->
             match col_offset s k.Plan.key with
             | Some off -> Some (off, k.Plan.descending)
             | None -> None)
          keys
      in
      let sorted =
        if List.for_all Option.is_some key_offsets then begin
          let ks = Array.of_list (List.filter_map Fun.id key_offsets) in
          let cmp a b =
            let rec go k =
              if k = nk then 0
              else
                let off, desc = ks.(k) in
                match Value.compare (Tuple.get a off) (Tuple.get b off) with
                | 0 -> go (k + 1)
                | c -> if desc then -c else c
            in
            go 0
          in
          psort p cmp rows
        end
        else begin
          (* decorate in parallel (keys evaluate once per row), sort the
             decorated pairs, strip *)
          let deco = Array.make n ([||], [||]) in
          dispatch p ~tasks:(ntasks n) (fun c ->
              let lo, hi = bounds n c in
              for ri = lo to hi - 1 do
                let t = rows.(ri) in
                deco.(ri) <- (Array.init nk (fun k -> fst fs.(k) t), t)
              done;
              hi - lo);
          let cmp (ka, _) (kb, _) =
            let rec go k =
              if k = nk then 0
              else
                match Value.compare ka.(k) kb.(k) with
                | 0 -> go (k + 1)
                | c -> if snd fs.(k) then -c else c
            in
            go 0
          in
          Array.map snd (psort p cmp deco)
        end
      in
      Chunk.of_rows ~arity:(Schema.arity s) sorted

    (* Parallel stable sort: stable-sorted morsel runs, then pairwise
       merge rounds.  Ties take the earlier (lower-indexed) run, so the
       result equals [Array.stable_sort cmp] on the whole array. *)
    and psort : 'a. Plan.t -> ('a -> 'a -> int) -> 'a array -> 'a array =
      fun p cmp arr ->
      let n = Array.length arr in
      let nchunks = ntasks n in
      if nchunks <= 1 then begin
        let c = Array.copy arr in
        Array.stable_sort cmp c;
        c
      end
      else begin
        let runs =
          Array.init nchunks (fun c ->
              let lo, hi = bounds n c in
              Array.sub arr lo (hi - lo))
        in
        dispatch p ~tasks:nchunks (fun c ->
            Array.stable_sort cmp runs.(c);
            Array.length runs.(c));
        let merge a b =
          let na = Array.length a and nb = Array.length b in
          if na = 0 then b
          else if nb = 0 then a
          else begin
            let out = Array.make (na + nb) a.(0) in
            let ai = ref 0 and bi = ref 0 and k = ref 0 in
            while !ai < na && !bi < nb do
              if cmp a.(!ai) b.(!bi) <= 0 then begin
                out.(!k) <- a.(!ai);
                incr ai
              end
              else begin
                out.(!k) <- b.(!bi);
                incr bi
              end;
              incr k
            done;
            while !ai < na do
              out.(!k) <- a.(!ai);
              incr ai;
              incr k
            done;
            while !bi < nb do
              out.(!k) <- b.(!bi);
              incr bi;
              incr k
            done;
            out
          end
        in
        let cur = ref runs in
        while Array.length !cur > 1 do
          let m = Array.length !cur in
          let prev = !cur in
          let nxt = Array.make ((m + 1) / 2) [||] in
          dispatch p ~tasks:(m / 2) (fun pr ->
              let merged = merge prev.(2 * pr) prev.((2 * pr) + 1) in
              nxt.(pr) <- merged;
              Array.length merged);
          if m land 1 = 1 then nxt.((m - 1) / 2) <- prev.(m - 1);
          cur := nxt
        done;
        !cur.(0)
      end

    (* ---------------------------------------------------------------- *)
    (* Joins *)

    and nested_loop p kind pred outer inner =
      let och = exec outer in
      let outer_rows = Chunk.to_rows och in
      let n_out = Array.length outer_rows in
      let so = Plan.schema cat outer and si = Plan.schema cat inner in
      let inner_arity = Schema.arity si in
      let out_arity = join_arity kind ~outer:(Schema.arity so) ~inner:inner_arity in
      if n_out = 0 then
        Chunk.of_rows ~arity:out_arity [||]
        (* the inner of an empty outer never runs *)
      else begin
        (* the inner subtree must replay its page-access pattern once per
           further outer tuple: run it through Batch, which provides the
           replay closure *)
        let inode = Batch.run_node ~ctx ?obs ?sketch ?chunk_rows cat inner in
        let inner_rows = Chunk.to_rows inode.Batch.chunk in
        let n_in = Array.length inner_rows in
        Context.charge_cpu ctx n_in;
        for _ = 2 to n_out do
          inode.Batch.replay ();
          Context.charge_cpu ctx n_in
        done;
        let holds = pred2 so si pred in
        (* probe in parallel over outer morsels; concatenation in morsel
           order = sequential emission order *)
        let tasks = ntasks n_out in
        let outs = Array.make (max tasks 1) [||] in
        dispatch p ~tasks (fun c ->
            let lo, hi = bounds n_out c in
            let out = Storage.Vec.create () in
            for oi = lo to hi - 1 do
              let ot = outer_rows.(oi) in
              emit_range out kind ~inner_arity ot inner_rows 0 n_in
                ~matches:(fun it -> holds ot it)
            done;
            let a = Storage.Vec.to_array out in
            outs.(c) <- a;
            Array.length a);
        Chunk.of_rows ~arity:out_arity (Array.concat (Array.to_list outs))
      end

    and index_nl kind outer table alias index outer_keys residual =
      (* per-probe B-tree page charges are inherently order-dependent:
         the probe loop stays on the coordinator (the outer subtree still
         executes in parallel) *)
      let t = Storage.Catalog.table cat table in
      let idx =
        match Storage.Catalog.index_named cat ~table ~name:index with
        | Some i -> i
        | None ->
          invalid_arg
            (Printf.sprintf "Index_nl: no index %s on %s" index table)
      in
      let outer_rows = Chunk.to_rows (exec outer) in
      let so = Plan.schema cat outer in
      let si = Schema.requalify t.Storage.Table.schema ~rel:alias in
      let keyfs = Array.of_list (List.map (Expr.compile so) outer_keys) in
      let probe_keys ot = Array.to_list (Array.map (fun f -> f ot) keyfs) in
      let holds = pred2 so si residual in
      let inner_arity = Schema.arity si in
      let out_arity = join_arity kind ~outer:(Schema.arity so) ~inner:inner_arity in
      let out = Storage.Vec.create () in
      Array.iter
        (fun ot ->
           let ks = probe_keys ot in
           let entries = Storage.Btree.probe idx ks in
           Access.charge_index_fetch ctx idx t ~entries
             ~lo_pos:(Storage.Btree.lower_bound idx ks);
           Context.charge_cpu ctx (1 + Array.length entries);
           let matches = Access.fetch_rows t entries in
           emit_range out kind ~inner_arity ot matches 0
             (Array.length matches) ~matches:(fun it -> holds ot it))
        outer_rows;
      Chunk.of_rows ~arity:out_arity (Storage.Vec.to_array out)

    and merge_join kind pairs residual left right =
      (* the merge walk is a sequential two-pointer scan; children (often
         parallel Sorts) still execute through [exec] *)
      let lrows = Chunk.to_rows (exec left) in
      let rrows = Chunk.to_rows (exec right) in
      let sl = Plan.schema cat left and sr = Plan.schema cat right in
      let loffs = offsets sl (List.map fst pairs) in
      let roffs = offsets sr (List.map snd pairs) in
      let nk = Array.length loffs in
      let holds = pred2 sl sr residual in
      let inner_arity = Schema.arity sr in
      let out_arity = join_arity kind ~outer:(Schema.arity sl) ~inner:inner_arity in
      let nl = Array.length lrows and nr = Array.length rrows in
      Context.charge_cpu ctx (nl + nr);
      let cmp_lr li rj =
        let lt = lrows.(li) and rt = rrows.(rj) in
        let rec go k =
          if k = nk then 0
          else
            match
              Value.compare (Tuple.get lt loffs.(k)) (Tuple.get rt roffs.(k))
            with
            | 0 -> go (k + 1)
            | c -> c
        in
        go 0
      in
      let cmp_ll li li' =
        let a = lrows.(li) and b = lrows.(li') in
        let rec go k =
          if k = nk then 0
          else
            match
              Value.compare (Tuple.get a loffs.(k)) (Tuple.get b loffs.(k))
            with
            | 0 -> go (k + 1)
            | c -> c
        in
        go 0
      in
      let l_nullfree li =
        let t = lrows.(li) in
        let rec go k =
          k = nk
          || ((not (Value.is_null (Tuple.get t loffs.(k)))) && go (k + 1))
        in
        go 0
      in
      let r_nullfree rj =
        let t = rrows.(rj) in
        let rec go k =
          k = nk
          || ((not (Value.is_null (Tuple.get t roffs.(k)))) && go (k + 1))
        in
        go 0
      in
      let out = Storage.Vec.create () in
      let i = ref 0 in
      let j = ref 0 in
      while !i < nl do
        if not (l_nullfree !i) then begin
          (match kind with
           | Algebra.Left_outer ->
             Storage.Vec.push out
               (Tuple.concat lrows.(!i) (Tuple.nulls inner_arity))
           | Algebra.Anti -> Storage.Vec.push out lrows.(!i)
           | Algebra.Inner | Algebra.Semi -> ());
          incr i
        end
        else begin
          let anchor = !i in
          while !j < nr && ((not (r_nullfree !j)) || cmp_lr anchor !j > 0) do
            incr j
          done;
          let bs = !j in
          let be = ref !j in
          while !be < nr && cmp_lr anchor !be = 0 do
            incr be
          done;
          while !i < nl && l_nullfree !i && cmp_ll !i anchor = 0 do
            let lt = lrows.(!i) in
            let blen = !be - bs in
            Context.charge_cpu ctx blen;
            emit_range out kind ~inner_arity lt rrows bs !be
              ~matches:(fun rt -> holds lt rt);
            incr i
          done
        end
      done;
      Chunk.of_rows ~arity:out_arity (Storage.Vec.to_array out)

    and hash_join p kind pairs residual left right =
      (* Batch order: build side (right) executes first *)
      let rch = exec right in
      let nr = Chunk.length rch in
      let sl = Plan.schema cat left and sr = Plan.schema cat right in
      let roffs = offsets sr (List.map snd pairs) in
      Context.charge_cpu ctx nr;
      let rpages = Storage.Page.pages_for ~rows:nr sr in
      let lch = exec left in
      let nl = Chunk.length lch in
      let lpages = Storage.Page.pages_for ~rows:nl sl in
      let spill =
        if rpages > ctx.Context.work_mem_pages then 2 * (rpages + lpages)
        else 0
      in
      if spill > 0 then Context.charge_spill ctx spill;
      let loffs = offsets sl (List.map fst pairs) in
      let inner_arity = Schema.arity sr in
      let out_arity = join_arity kind ~outer:(Schema.arity sl) ~inner:inner_arity in
      Context.charge_cpu ctx nl;
      let rstore = rch.Chunk.store and lstore = lch.Chunk.store in
      let rphys = Chunk.phys rch and lphys = Chunk.phys lch in
      let fault = !Batch.fault_null_key_as_zero in
      let semi_only =
        (match kind with Algebra.Semi | Algebra.Anti -> true | _ -> false)
        && residual = Expr.ftrue
      in
      let keep_if_match =
        match kind with Algebra.Semi -> true | _ -> false
      in
      let nk = Array.length roffs in
      let single = nk = 1 in
      let rcol = if single then Chunk.int_col rstore roffs.(0) else None in
      let lcol =
        if single && rcol <> None then Chunk.int_col lstore loffs.(0)
        else None
      in
      let btasks = ntasks nr in
      let ptasks = ntasks nl in
      (* Parallel probe phases.  Per-task CPU (bucket chain lengths) is
         accumulated and charged once on the coordinator after the
         dispatch — the total equals Batch's per-probe charges. *)
      let probe_rows (probe : int -> Tuple.t list * int) =
        let lrows = Chunk.to_rows lch in
        let holds = pred2 sl sr residual in
        let outs = Array.make (max ptasks 1) [||] in
        let cpus = Array.make (max ptasks 1) 0 in
        dispatch p ~tasks:ptasks (fun c ->
            let lo, hi = bounds nl c in
            let out = Storage.Vec.create () in
            let cpu = ref 0 in
            for li = lo to hi - 1 do
              let lt = lrows.(li) in
              let items, blen = probe li in
              cpu := !cpu + blen;
              emit_list out kind ~inner_arity lt items
                ~matches:(fun rt -> holds lt rt)
            done;
            let a = Storage.Vec.to_array out in
            outs.(c) <- a;
            cpus.(c) <- !cpu;
            Array.length a);
        Context.charge_cpu ctx (Array.fold_left ( + ) 0 cpus);
        Chunk.of_rows ~arity:out_arity (Array.concat (Array.to_list outs))
      in
      let probe_sel (blen_of : int -> int) =
        let outs = Array.make (max ptasks 1) [||] in
        let cpus = Array.make (max ptasks 1) 0 in
        dispatch p ~tasks:ptasks (fun c ->
            let lo, hi = bounds nl c in
            let out = Storage.Vec.create () in
            let cpu = ref 0 in
            for li = lo to hi - 1 do
              let blen = blen_of li in
              cpu := !cpu + blen;
              if (blen > 0) = keep_if_match then
                Storage.Vec.push out (lphys li)
            done;
            let a = Storage.Vec.to_array out in
            outs.(c) <- a;
            cpus.(c) <- !cpu;
            Array.length a);
        Context.charge_cpu ctx (Array.fold_left ( + ) 0 cpus);
        { Chunk.store = lstore;
          sel = Some (Array.concat (Array.to_list outs)) }
      in
      (* Exchange: hash-partition build-side logical indices by key into
         per-morsel × per-partition index vectors (morsel-order
         concatenation keeps every bucket chain in sequential insert
         order), build one table per partition in parallel, then probe
         morsels in parallel — every probe row finds its partition by
         the same hash.  Int keys hash as [Value.hash] of the boxed
         value would, so a mixed Int/Float comparison on the generic
         path still lands both sides in the same partition
         ([Value.equal] matches Int 2 = Float 2.0, and [Value.hash] is
         numerically consistent). *)
      match (rcol, lcol) with
      | Some (rd, rnb), Some (ld, lnb) ->
        let ihash k = Hashtbl.hash (float_of_int k) land max_int in
        let parts =
          Array.init (max btasks 1) (fun _ ->
              Array.init nparts (fun _ -> Storage.Vec.create ()))
        in
        dispatch p ~tasks:btasks (fun c ->
            let lo, hi = bounds nr c in
            for ri = lo to hi - 1 do
              let pr = rphys ri in
              let null = Bytes.get rnb pr <> '\000' in
              if (not null) || fault then begin
                let k = if null then 0 else rd.(pr) in
                Storage.Vec.push parts.(c).(ihash k mod nparts) ri
              end
            done;
            hi - lo);
        if semi_only then begin
          (* count-only buckets; the output is a selection over the left
             store — neither side materializes rows *)
          let absent = ref (-1) in
          let tbls =
            Array.init nparts (fun _ ->
                Keys.Int_map.create ~dummy:absent
                  (max 16 ((2 * nr / nparts) + 1)))
          in
          dispatch p ~tasks:nparts (fun pt ->
              let tbl = tbls.(pt) in
              let built = ref 0 in
              for c = 0 to btasks - 1 do
                Storage.Vec.iter
                  (fun ri ->
                     incr built;
                     let pr = rphys ri in
                     let null = Bytes.get rnb pr <> '\000' in
                     let k = if null then 0 else rd.(pr) in
                     let cnt = Keys.Int_map.find tbl k in
                     if cnt == absent then Keys.Int_map.add tbl k (ref 1)
                     else incr cnt)
                  parts.(c).(pt)
              done;
              !built);
          probe_sel (fun li ->
              let pl = lphys li in
              let null = Bytes.get lnb pl <> '\000' in
              if (not null) || fault then begin
                let k = if null then 0 else ld.(pl) in
                let cnt = Keys.Int_map.find tbls.(ihash k mod nparts) k in
                if cnt == absent then 0 else !cnt
              end
              else 0)
        end
        else begin
          let rrows = Chunk.to_rows rch in
          let absent = { blen = 0; items = [] } in
          let tbls =
            Array.init nparts (fun _ ->
                Keys.Int_map.create ~dummy:absent
                  (max 16 ((2 * nr / nparts) + 1)))
          in
          dispatch p ~tasks:nparts (fun pt ->
              let tbl = tbls.(pt) in
              let built = ref 0 in
              for c = 0 to btasks - 1 do
                Storage.Vec.iter
                  (fun ri ->
                     incr built;
                     let pr = rphys ri in
                     let null = Bytes.get rnb pr <> '\000' in
                     let k = if null then 0 else rd.(pr) in
                     let b = Keys.Int_map.find tbl k in
                     if b == absent then
                       Keys.Int_map.add tbl k
                         { blen = 1; items = [ rrows.(ri) ] }
                     else begin
                       b.blen <- b.blen + 1;
                       b.items <- rrows.(ri) :: b.items
                     end)
                  parts.(c).(pt)
              done;
              !built);
          probe_rows (fun li ->
              let pl = lphys li in
              let null = Bytes.get lnb pl <> '\000' in
              if (not null) || fault then begin
                let k = if null then 0 else ld.(pl) in
                let b = Keys.Int_map.find tbls.(ihash k mod nparts) k in
                (b.items, b.blen)
              end
              else ([], 0))
        end
      | _ ->
        (* generic keys: the exchange materializes each build key once;
           probes hash and compare column-wise through accessors *)
        let rgets = Array.map (fun off -> Chunk.getter rstore off) roffs in
        let lgets = Array.map (fun off -> Chunk.getter lstore off) loffs in
        let phash kv = Keys.hash_array kv land max_int mod nparts in
        let parts =
          Array.init (max btasks 1) (fun _ ->
              Array.init nparts (fun _ -> Storage.Vec.create ()))
        in
        dispatch p ~tasks:btasks (fun c ->
            let lo, hi = bounds nr c in
            for ri = lo to hi - 1 do
              let pr = rphys ri in
              let rec nullfree cc =
                cc = nk
                || ((not (Value.is_null (rgets.(cc) pr)))
                    && nullfree (cc + 1))
              in
              if nullfree 0 then begin
                let k = Array.init nk (fun cc -> rgets.(cc) pr) in
                Storage.Vec.push parts.(c).(phash k) (ri, k)
              end
            done;
            hi - lo);
        let l_nullfree pl =
          let rec go cc =
            cc = nk
            || ((not (Value.is_null (lgets.(cc) pl))) && go (cc + 1))
          in
          go 0
        in
        (* probe partition = [Keys.Cols_tbl.hash_cols], consistent with
           [Keys.hash_array] of the materialized build key *)
        let lpart pl = Keys.Cols_tbl.hash_cols lgets pl land max_int mod nparts in
        if semi_only then begin
          let absent = ref (-1) in
          let tbls =
            Array.init nparts (fun _ ->
                Keys.Cols_tbl.create ~dummy:absent
                  (max 16 ((2 * nr / nparts) + 1)))
          in
          dispatch p ~tasks:nparts (fun pt ->
              let tbl = tbls.(pt) in
              let built = ref 0 in
              for c = 0 to btasks - 1 do
                Storage.Vec.iter
                  (fun (ri, k) ->
                     incr built;
                     let cnt = Keys.Cols_tbl.find tbl rgets (rphys ri) in
                     if cnt == absent then Keys.Cols_tbl.add tbl k (ref 1)
                     else incr cnt)
                  parts.(c).(pt)
              done;
              !built);
          probe_sel (fun li ->
              let pl = lphys li in
              if l_nullfree pl then begin
                let cnt = Keys.Cols_tbl.find tbls.(lpart pl) lgets pl in
                if cnt == absent then 0 else !cnt
              end
              else 0)
        end
        else begin
          let rrows = Chunk.to_rows rch in
          let absent = { blen = 0; items = [] } in
          let tbls =
            Array.init nparts (fun _ ->
                Keys.Cols_tbl.create ~dummy:absent
                  (max 16 ((2 * nr / nparts) + 1)))
          in
          dispatch p ~tasks:nparts (fun pt ->
              let tbl = tbls.(pt) in
              let built = ref 0 in
              for c = 0 to btasks - 1 do
                Storage.Vec.iter
                  (fun (ri, k) ->
                     incr built;
                     let b = Keys.Cols_tbl.find tbl rgets (rphys ri) in
                     if b == absent then
                       Keys.Cols_tbl.add tbl k
                         { blen = 1; items = [ rrows.(ri) ] }
                     else begin
                       b.blen <- b.blen + 1;
                       b.items <- rrows.(ri) :: b.items
                     end)
                  parts.(c).(pt)
              done;
              !built);
          probe_rows (fun li ->
              let pl = lphys li in
              if l_nullfree pl then begin
                let b = Keys.Cols_tbl.find tbls.(lpart pl) lgets pl in
                (b.items, b.blen)
              end
              else ([], 0))
        end

    (* ---------------------------------------------------------------- *)
    (* Aggregation *)

    and aggregate p ~sorted keys aggs input =
      let ch = exec input in
      let store = ch.Chunk.store in
      let n = Chunk.length ch in
      let s = Plan.schema cat input in
      let nkeys = List.length keys in
      let agg_arr = Array.of_list (List.map fst aggs) in
      let naggs = Array.length agg_arr in
      Context.charge_cpu ctx n;
      let finalize kv (states : Expr.agg_state array) =
        Array.init (nkeys + naggs) (fun k ->
            if k < nkeys then kv.(k)
            else Expr.agg_final agg_arr.(k - nkeys) states.(k - nkeys))
      in
      let fresh_states () =
        Array.init naggs (fun _ -> Expr.agg_init ())
      in
      let out =
        if sorted then begin
          (* stream aggregation over key-sorted input: sequential flush
             walk, same as Batch *)
          let rows = Chunk.to_rows ch in
          let keyfs =
            Array.of_list (List.map (fun (e, _) -> Expr.compile s e) keys)
          in
          let argfs =
            Array.of_list
              (List.map
                 (fun (a, _) ->
                    match Expr.agg_arg a with
                    | None ->
                      fun _ -> Value.Int 1 (* count-star: any non-null *)
                    | Some e -> Expr.compile s e)
                 aggs)
          in
          let step_all t states =
            for a = 0 to naggs - 1 do
              Expr.agg_step states.(a) (argfs.(a) t)
            done
          in
          let out = Storage.Vec.create () in
          let cur_key = ref None in
          let cur_states = ref [||] in
          let flush () =
            match !cur_key with
            | None -> ()
            | Some kv -> Storage.Vec.push out (finalize kv !cur_states)
          in
          Array.iter
            (fun t ->
               let kv = Array.init nkeys (fun k -> keyfs.(k) t) in
               (match !cur_key with
                | Some kv' when Keys.equal_array kv kv' -> ()
                | Some _ | None ->
                  flush ();
                  cur_key := Some kv;
                  cur_states := fresh_states ());
               step_all t !cur_states)
            rows;
          flush ();
          Storage.Vec.to_array out
        end
        else begin
          (* Exchange logical row indices by key-hash partition: each
             key's entire fold runs on one partition, sequentially in
             global row order — so non-associative float sums come out
             bit-exact and no state merging is needed.  Groups carry
             their first row index; sorting the merged groups on it
             reproduces the sequential first-occurrence emission order.
             Key accessors and steppers compile (and force the chunk's
             caches) here on the coordinator; workers only run the pure
             closures. *)
          let phys = Chunk.phys ch in
          let kgets =
            Array.of_list
              (List.map
                 (fun (e, _) ->
                    match col_offset s e with
                    | Some off -> Chunk.getter store off
                    | None ->
                      let f = Expr.compile s e in
                      let rows = Chunk.rows_view store in
                      fun pp -> f rows.(pp))
                 keys)
          in
          let steppers =
            Array.of_list
              (List.map
                 (fun (a, _) ->
                    match Expr.agg_arg a with
                    | None -> fun st (_ : int) -> Expr.agg_step_int st 1
                    | Some e -> (
                      match int_expr s store e with
                      | Some v ->
                        fun st pp ->
                          if not (v.inull pp) then
                            Expr.agg_step_int st (v.iv pp)
                      | None ->
                        let f = Expr.compile s e in
                        let rows = Chunk.rows_view store in
                        fun st pp -> Expr.agg_step st (f rows.(pp))))
                 aggs)
          in
          let step_all pp states =
            for a = 0 to naggs - 1 do
              steppers.(a) states.(a) pp
            done
          in
          let tasks = ntasks n in
          let parts =
            Array.init (max tasks 1) (fun _ ->
                Array.init nparts (fun _ -> Storage.Vec.create ()))
          in
          dispatch p ~tasks (fun c ->
              let lo, hi = bounds n c in
              for li = lo to hi - 1 do
                let pt =
                  Keys.Cols_tbl.hash_cols kgets (phys li)
                  land max_int mod nparts
                in
                Storage.Vec.push parts.(c).(pt) li
              done;
              hi - lo);
          let group_arrays = Array.make nparts [||] in
          let dummy = Array.make 1 (Expr.agg_init ()) in
          dispatch p ~tasks:nparts (fun pt ->
              let tbl = Keys.Cols_tbl.create ~dummy 64 in
              let order = Storage.Vec.create () in
              let folded = ref 0 in
              for c = 0 to max tasks 1 - 1 do
                Storage.Vec.iter
                  (fun li ->
                     incr folded;
                     let pp = phys li in
                     let states =
                       let st = Keys.Cols_tbl.find tbl kgets pp in
                       if st != dummy then st
                       else begin
                         let st = fresh_states () in
                         let kv =
                           Array.init nkeys (fun c -> kgets.(c) pp)
                         in
                         Keys.Cols_tbl.add tbl kv st;
                         Storage.Vec.push order (li, kv, st);
                         st
                       end
                     in
                     step_all pp states)
                  parts.(c).(pt)
              done;
              group_arrays.(pt) <-
                Array.map
                  (fun (li, kv, st) -> (li, finalize kv st))
                  (Storage.Vec.to_array order);
              !folded);
          let all = Array.concat (Array.to_list group_arrays) in
          Array.sort (fun (a, _) (b, _) -> compare (a : int) b) all;
          Array.map snd all
        end
      in
      let out =
        if keys = [] && Array.length out = 0 then
          (* scalar aggregate over the empty input: one row *)
          [| finalize [||] (fresh_states ()) |]
        else out
      in
      Chunk.of_rows ~arity:(nkeys + naggs) out

    and hash_distinct p i =
      let ch = exec i in
      let rows = Chunk.to_rows ch in
      let n = Array.length rows in
      Context.charge_cpu ctx n;
      (* exchange by whole-tuple hash; first-occurrence order restored by
         sorting survivors on their row index *)
      let tasks = ntasks n in
      let parts =
        Array.init (max tasks 1) (fun _ ->
            Array.init nparts (fun _ -> Storage.Vec.create ()))
      in
      dispatch p ~tasks (fun c ->
          let lo, hi = bounds n c in
          for ri = lo to hi - 1 do
            let t = rows.(ri) in
            let pt = Keys.hash_array t land max_int mod nparts in
            Storage.Vec.push parts.(c).(pt) ri
          done;
          hi - lo);
      let survivors = Array.make nparts [||] in
      dispatch p ~tasks:nparts (fun pt ->
          let seen = Keys.Array_tbl.create 64 in
          let keep = Storage.Vec.create () in
          for c = 0 to max tasks 1 - 1 do
            Storage.Vec.iter
              (fun ri ->
                 let t = rows.(ri) in
                 if not (Keys.Array_tbl.mem seen t) then begin
                   Keys.Array_tbl.add seen t ();
                   Storage.Vec.push keep ri
                 end)
              parts.(c).(pt)
          done;
          survivors.(pt) <- Storage.Vec.to_array keep;
          Array.length survivors.(pt));
      let all = Array.concat (Array.to_list survivors) in
      Array.sort (fun (a : int) b -> compare a b) all;
      Chunk.of_rows ~arity:(Schema.arity (Plan.schema cat i))
        (Array.map (fun ri -> rows.(ri)) all)
    in
    { Executor.schema = Plan.schema cat plan;
      rows = Chunk.to_rows (exec plan) }
  end
