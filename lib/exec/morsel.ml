(* Morsel-driven parallel execution engine.

   Executes the same physical [Plan.t] trees as [Batch], splitting
   operator work into fixed-size row ranges ("morsels") that a
   [Domain_pool] drains by atomic work stealing.  The contract is strict:
   for every plan, [run ~dop] returns BIT-IDENTICAL rows in the SAME
   ORDER, and drives the [Context] identically to [Batch.run] — not just
   multiset-equal.  That strength is what keeps the differential oracles
   (interpreter vs. batch vs. morsel) and the deterministic cost
   accounting valid at any dop.  It is achieved by construction:

   - Workers do pure computation only.  Every [Context] charge (CPU,
     spill, buffer-pool page access) happens on the coordinating domain,
     using [Batch]'s exact formulas, in [Batch]'s exact order relative to
     child executions — so the stateful LRU buffer pool sees the same
     access sequence and the additive counters the same totals.
   - Order-preserving splits: scans/filters/projects/probes process
     morsels of the input index space and concatenate results in morsel
     order, reproducing the sequential emission order exactly.
   - Hash joins build per-partition tables from per-morsel partition
     vectors concatenated in morsel order, so every key's bucket chain
     (most-recent-first) is identical to the sequential build; probes
     then emit in probe-row order.
   - Hash aggregation exchanges rows by key-hash partition; each
     partition folds ITS keys' rows sequentially in global row order
     (bit-exact float sums — no state merging), and groups are emitted in
     global first-occurrence order by sorting on the first row index.
   - Sort runs parallel stable chunk sorts + pairwise merge rounds whose
     ties prefer the earlier chunk: exactly a stable sort.
   - Sequential-only operators (Index_scan, Index_nl probes, Merge_join,
     Stream_agg) run the [Batch] logic inline; [Nested_loop] inners —
     which must replay their page-access pattern per outer tuple — run
     through [Batch.run_node].

   The optional [schedule] maps each plan node to the DOP the two-phase
   optimizer chose for its segment; nodes scheduled at 1 run inline on
   the coordinator even when the pool is wider. *)

open Relalg
open Eval

let default_morsel_rows = 4096

let run ?(ctx = Context.create ()) ?obs ?pool
    ?(morsel = default_morsel_rows) ?schedule ~dop
    (cat : Storage.Catalog.t) (plan : Plan.t) : Executor.result =
  let dop = max 1 dop in
  if dop = 1 || not Domain_pool.available then Batch.run ~ctx ?obs cat plan
  else begin
    let owned, pool =
      match pool with
      | Some p -> (false, p)
      | None -> (true, Domain_pool.create dop)
    in
    Fun.protect
      ~finally:(fun () -> if owned then Domain_pool.shutdown pool)
    @@ fun () ->
    let pdop = Domain_pool.dop pool in
    let msize = max 1 morsel in
    let ntasks n = (n + msize - 1) / msize in
    let bounds n c = (c * msize, min n ((c * msize) + msize)) in
    (* partition fan-out for hash exchanges; any value is correct (output
       and counters are partition-count-independent), wider than the pool
       for balance under skew *)
    let nparts = min 64 (4 * pdop) in
    let sched p =
      match schedule with
      | None -> pdop
      | Some f -> max 1 (min pdop (f p))
    in
    (* Run [tasks] as a parallel phase attributed to [node]: per-worker
       busy time and row counts are folded into the operator's [par]
       stats.  [f c] returns the rows the task produced/processed.
       Degrades to an inline loop when the phase or schedule leaves no
       parallelism. *)
    let dispatch node ~tasks (f : int -> int) =
      if tasks > 0 then begin
        let w = sched node in
        if w <= 1 || tasks = 1 then
          for c = 0 to tasks - 1 do ignore (f c) done
        else begin
          let wall = Array.make pdop 0. and wrows = Array.make pdop 0 in
          Domain_pool.run pool ~workers:w ~tasks (fun ~worker c ->
              let t0 = Unix.gettimeofday () in
              let r = f c in
              wall.(worker) <-
                wall.(worker) +. (Unix.gettimeofday () -. t0);
              wrows.(worker) <- wrows.(worker) + r);
          match obs with
          | Some rc ->
            Instrument.record_par rc node ~dop:pdop ~wall ~rows:wrows
          | None -> ()
        end
      end
    in
    let memo : (Plan.t * Tuple.t array) list ref = ref [] in
    let rec exec (p : Plan.t) : Tuple.t array =
      match obs with
      | None -> exec_op p
      | Some r ->
        Instrument.measure r ctx p ~rows:Array.length (fun () -> exec_op p)

    and exec_op (p : Plan.t) : Tuple.t array =
      match p with
      | Plan.Seq_scan { table; alias; filter } -> seq_scan p table alias filter
      | Plan.Index_scan { table; alias; column; lo; hi; filter } ->
        index_scan table alias column lo hi filter
      | Plan.Filter (f, i) -> filter_op p f i
      | Plan.Project (items, i) -> project p items i
      | Plan.Sort (keys, i) -> sort p keys i
      | Plan.Materialize i -> (
        match List.find_opt (fun (q, _) -> q == p) !memo with
        | Some (_, rows) -> rows
        | None ->
          let rows = exec i in
          memo := (p, rows) :: !memo;
          rows)
      | Plan.Nested_loop { kind; pred; outer; inner } ->
        nested_loop p kind pred outer inner
      | Plan.Index_nl
          { kind; outer; table; alias; index; columns = _; outer_keys;
            residual } ->
        index_nl kind outer table alias index outer_keys residual
      | Plan.Merge_join { kind; pairs; residual; left; right } ->
        merge_join kind pairs residual left right
      | Plan.Hash_join { kind; pairs; residual; left; right } ->
        hash_join p kind pairs residual left right
      | Plan.Hash_agg { keys; aggs; input } ->
        aggregate p ~sorted:false keys aggs input
      | Plan.Stream_agg { keys; aggs; input } ->
        aggregate p ~sorted:true keys aggs input
      | Plan.Hash_distinct i -> hash_distinct p i

    (* ---------------------------------------------------------------- *)
    (* Scans *)

    and seq_scan p table alias filter =
      let t = Storage.Catalog.table cat table in
      let pages = Storage.Table.page_count t in
      let n = Storage.Table.row_count t in
      (* all charging on the coordinator, in Batch's order: pages then
         CPU, before any data movement *)
      for pg = 0 to pages - 1 do
        Context.read_page ctx ~random:false (table, pg)
      done;
      Context.charge_cpu ctx n;
      let all = Array.make n [||] in
      dispatch p ~tasks:(ntasks n) (fun c ->
          let lo, hi = bounds n c in
          for rid = lo to hi - 1 do
            all.(rid) <- Storage.Table.get t rid
          done;
          hi - lo);
      match filter with
      | None -> all
      | Some f ->
        let keep =
          pred_rows (Schema.requalify t.Storage.Table.schema ~rel:alias) f all
        in
        par_filter p n all keep

    and index_scan table alias column lo hi filter =
      (* index probes charge the buffer pool per entry: inherently
         sequential; runs Batch's logic inline *)
      let t = Storage.Catalog.table cat table in
      let idx =
        match Storage.Catalog.index_on cat ~table ~column with
        | Some i -> i
        | None ->
          invalid_arg
            (Printf.sprintf "Index_scan: no index on %s(%s)" table column)
      in
      let entries = Storage.Btree.range idx ~lo ~hi in
      let lo_pos =
        match lo with
        | Storage.Btree.Unbounded ->
          Storage.Btree.upper_bound idx [ Value.Null ]
        | Storage.Btree.Incl k -> Storage.Btree.lower_bound idx [ k ]
        | Storage.Btree.Excl k -> Storage.Btree.upper_bound idx [ k ]
      in
      Access.charge_index_fetch ctx idx t ~entries ~lo_pos;
      let rows = Access.fetch_rows t entries in
      (match filter with
       | None -> rows
       | Some f ->
         let keep =
           pred_rows (Schema.requalify t.Storage.Table.schema ~rel:alias) f
             rows
         in
         let out = Storage.Vec.create () in
         Array.iteri
           (fun rid tu -> if keep rid then Storage.Vec.push out tu)
           rows;
         Storage.Vec.to_array out)

    (* Parallel selection over a fixed row array: per-morsel survivor
       vectors concatenated in morsel order = sequential order. *)
    and par_filter p n rows keep =
      let tasks = ntasks n in
      let outs = Array.make (max tasks 1) [||] in
      dispatch p ~tasks (fun c ->
          let lo, hi = bounds n c in
          let out = Storage.Vec.create () in
          for i = lo to hi - 1 do
            if keep i then Storage.Vec.push out rows.(i)
          done;
          let a = Storage.Vec.to_array out in
          outs.(c) <- a;
          Array.length a);
      Array.concat (Array.to_list outs)

    (* ---------------------------------------------------------------- *)
    (* Row-at-a-time scalar operators over morsels *)

    and filter_op p f i =
      let rows = exec i in
      let s = Plan.schema cat i in
      let keep = pred_rows s f rows in
      let n = Array.length rows in
      Context.charge_cpu ctx n;
      par_filter p n rows keep

    and project p items i =
      let rows = exec i in
      let s = Plan.schema cat i in
      let fs =
        Array.of_list (List.map (fun (e, _) -> Expr.compile s e) items)
      in
      let nf = Array.length fs in
      let n = Array.length rows in
      Context.charge_cpu ctx n;
      let out = Array.make n [||] in
      dispatch p ~tasks:(ntasks n) (fun c ->
          let lo, hi = bounds n c in
          for ri = lo to hi - 1 do
            let t = rows.(ri) in
            out.(ri) <- Array.init nf (fun k -> fs.(k) t)
          done;
          hi - lo);
      out

    and sort p keys i =
      let rows = exec i in
      let s = Plan.schema cat i in
      let fs =
        Array.of_list
          (List.map
             (fun (k : Plan.sort_key) ->
                (Expr.compile s k.Plan.key, k.Plan.descending))
             keys)
      in
      let nk = Array.length fs in
      let n = Array.length rows in
      let cpu = n * Access.log2_ceil n in
      let pages = Storage.Page.pages_for ~rows:n s in
      let spill =
        Access.sort_spill_pages ~work_mem:ctx.Context.work_mem_pages ~pages
      in
      Context.charge_cpu ctx cpu;
      Context.charge_spill ctx spill;
      let key_offsets =
        List.map
          (fun (k : Plan.sort_key) ->
             match col_offset s k.Plan.key with
             | Some off -> Some (off, k.Plan.descending)
             | None -> None)
          keys
      in
      if List.for_all Option.is_some key_offsets then begin
        let ks = Array.of_list (List.filter_map Fun.id key_offsets) in
        let cmp a b =
          let rec go k =
            if k = nk then 0
            else
              let off, desc = ks.(k) in
              match Value.compare (Tuple.get a off) (Tuple.get b off) with
              | 0 -> go (k + 1)
              | c -> if desc then -c else c
          in
          go 0
        in
        psort p cmp rows
      end
      else begin
        (* decorate in parallel (keys evaluate once per row), sort the
           decorated pairs, strip *)
        let deco = Array.make n ([||], [||]) in
        dispatch p ~tasks:(ntasks n) (fun c ->
            let lo, hi = bounds n c in
            for ri = lo to hi - 1 do
              let t = rows.(ri) in
              deco.(ri) <- (Array.init nk (fun k -> fst fs.(k) t), t)
            done;
            hi - lo);
        let cmp (ka, _) (kb, _) =
          let rec go k =
            if k = nk then 0
            else
              match Value.compare ka.(k) kb.(k) with
              | 0 -> go (k + 1)
              | c -> if snd fs.(k) then -c else c
          in
          go 0
        in
        Array.map snd (psort p cmp deco)
      end

    (* Parallel stable sort: stable-sorted morsel runs, then pairwise
       merge rounds.  Ties take the earlier (lower-indexed) run, so the
       result equals [Array.stable_sort cmp] on the whole array. *)
    and psort : 'a. Plan.t -> ('a -> 'a -> int) -> 'a array -> 'a array =
      fun p cmp arr ->
      let n = Array.length arr in
      let nchunks = ntasks n in
      if nchunks <= 1 then begin
        let c = Array.copy arr in
        Array.stable_sort cmp c;
        c
      end
      else begin
        let runs =
          Array.init nchunks (fun c ->
              let lo, hi = bounds n c in
              Array.sub arr lo (hi - lo))
        in
        dispatch p ~tasks:nchunks (fun c ->
            Array.stable_sort cmp runs.(c);
            Array.length runs.(c));
        let merge a b =
          let na = Array.length a and nb = Array.length b in
          if na = 0 then b
          else if nb = 0 then a
          else begin
            let out = Array.make (na + nb) a.(0) in
            let ai = ref 0 and bi = ref 0 and k = ref 0 in
            while !ai < na && !bi < nb do
              if cmp a.(!ai) b.(!bi) <= 0 then begin
                out.(!k) <- a.(!ai);
                incr ai
              end
              else begin
                out.(!k) <- b.(!bi);
                incr bi
              end;
              incr k
            done;
            while !ai < na do
              out.(!k) <- a.(!ai);
              incr ai;
              incr k
            done;
            while !bi < nb do
              out.(!k) <- b.(!bi);
              incr bi;
              incr k
            done;
            out
          end
        in
        let cur = ref runs in
        while Array.length !cur > 1 do
          let m = Array.length !cur in
          let prev = !cur in
          let nxt = Array.make ((m + 1) / 2) [||] in
          dispatch p ~tasks:(m / 2) (fun pr ->
              let merged = merge prev.(2 * pr) prev.((2 * pr) + 1) in
              nxt.(pr) <- merged;
              Array.length merged);
          if m land 1 = 1 then nxt.((m - 1) / 2) <- prev.(m - 1);
          cur := nxt
        done;
        !cur.(0)
      end

    (* ---------------------------------------------------------------- *)
    (* Joins *)

    and nested_loop p kind pred outer inner =
      let outer_rows = exec outer in
      let n_out = Array.length outer_rows in
      if n_out = 0 then [||] (* the inner of an empty outer never runs *)
      else begin
        let so = Plan.schema cat outer and si = Plan.schema cat inner in
        let inner_arity = Schema.arity si in
        (* the inner subtree must replay its page-access pattern once per
           further outer tuple: run it through Batch, which provides the
           replay closure *)
        let inode = Batch.run_node ~ctx ?obs cat inner in
        let inner_rows = inode.Batch.rows in
        let n_in = Array.length inner_rows in
        Context.charge_cpu ctx n_in;
        for _ = 2 to n_out do
          inode.Batch.replay ();
          Context.charge_cpu ctx n_in
        done;
        let holds = pred2 so si pred in
        (* probe in parallel over outer morsels; concatenation in morsel
           order = sequential emission order *)
        let tasks = ntasks n_out in
        let outs = Array.make (max tasks 1) [||] in
        dispatch p ~tasks (fun c ->
            let lo, hi = bounds n_out c in
            let out = Storage.Vec.create () in
            for oi = lo to hi - 1 do
              let ot = outer_rows.(oi) in
              emit_range out kind ~inner_arity ot inner_rows 0 n_in
                ~matches:(fun it -> holds ot it)
            done;
            let a = Storage.Vec.to_array out in
            outs.(c) <- a;
            Array.length a);
        Array.concat (Array.to_list outs)
      end

    and index_nl kind outer table alias index outer_keys residual =
      (* per-probe B-tree page charges are inherently order-dependent:
         the probe loop stays on the coordinator (the outer subtree still
         executes in parallel) *)
      let t = Storage.Catalog.table cat table in
      let idx =
        match Storage.Catalog.index_named cat ~table ~name:index with
        | Some i -> i
        | None ->
          invalid_arg
            (Printf.sprintf "Index_nl: no index %s on %s" index table)
      in
      let outer_rows = exec outer in
      let so = Plan.schema cat outer in
      let si = Schema.requalify t.Storage.Table.schema ~rel:alias in
      let keyfs = Array.of_list (List.map (Expr.compile so) outer_keys) in
      let probe_keys ot = Array.to_list (Array.map (fun f -> f ot) keyfs) in
      let holds = pred2 so si residual in
      let inner_arity = Schema.arity si in
      let out = Storage.Vec.create () in
      Array.iter
        (fun ot ->
           let ks = probe_keys ot in
           let entries = Storage.Btree.probe idx ks in
           Access.charge_index_fetch ctx idx t ~entries
             ~lo_pos:(Storage.Btree.lower_bound idx ks);
           Context.charge_cpu ctx (1 + Array.length entries);
           let matches = Access.fetch_rows t entries in
           emit_range out kind ~inner_arity ot matches 0
             (Array.length matches) ~matches:(fun it -> holds ot it))
        outer_rows;
      Storage.Vec.to_array out

    and merge_join kind pairs residual left right =
      (* the merge walk is a sequential two-pointer scan; children (often
         parallel Sorts) still execute through [exec] *)
      let lrows = exec left in
      let rrows = exec right in
      let sl = Plan.schema cat left and sr = Plan.schema cat right in
      let loffs = offsets sl (List.map fst pairs) in
      let roffs = offsets sr (List.map snd pairs) in
      let nk = Array.length loffs in
      let holds = pred2 sl sr residual in
      let inner_arity = Schema.arity sr in
      let nl = Array.length lrows and nr = Array.length rrows in
      Context.charge_cpu ctx (nl + nr);
      let cmp_lr li rj =
        let lt = lrows.(li) and rt = rrows.(rj) in
        let rec go k =
          if k = nk then 0
          else
            match
              Value.compare (Tuple.get lt loffs.(k)) (Tuple.get rt roffs.(k))
            with
            | 0 -> go (k + 1)
            | c -> c
        in
        go 0
      in
      let cmp_ll li li' =
        let a = lrows.(li) and b = lrows.(li') in
        let rec go k =
          if k = nk then 0
          else
            match
              Value.compare (Tuple.get a loffs.(k)) (Tuple.get b loffs.(k))
            with
            | 0 -> go (k + 1)
            | c -> c
        in
        go 0
      in
      let l_nullfree li =
        let t = lrows.(li) in
        let rec go k =
          k = nk
          || ((not (Value.is_null (Tuple.get t loffs.(k)))) && go (k + 1))
        in
        go 0
      in
      let r_nullfree rj =
        let t = rrows.(rj) in
        let rec go k =
          k = nk
          || ((not (Value.is_null (Tuple.get t roffs.(k)))) && go (k + 1))
        in
        go 0
      in
      let out = Storage.Vec.create () in
      let i = ref 0 in
      let j = ref 0 in
      while !i < nl do
        if not (l_nullfree !i) then begin
          (match kind with
           | Algebra.Left_outer ->
             Storage.Vec.push out
               (Tuple.concat lrows.(!i) (Tuple.nulls inner_arity))
           | Algebra.Anti -> Storage.Vec.push out lrows.(!i)
           | Algebra.Inner | Algebra.Semi -> ());
          incr i
        end
        else begin
          let anchor = !i in
          while !j < nr && ((not (r_nullfree !j)) || cmp_lr anchor !j > 0) do
            incr j
          done;
          let bs = !j in
          let be = ref !j in
          while !be < nr && cmp_lr anchor !be = 0 do
            incr be
          done;
          while !i < nl && l_nullfree !i && cmp_ll !i anchor = 0 do
            let lt = lrows.(!i) in
            let blen = !be - bs in
            Context.charge_cpu ctx blen;
            emit_range out kind ~inner_arity lt rrows bs !be
              ~matches:(fun rt -> holds lt rt);
            incr i
          done
        end
      done;
      Storage.Vec.to_array out

    and hash_join p kind pairs residual left right =
      (* Batch order: build side (right) executes first *)
      let rrows = exec right in
      let nr = Array.length rrows in
      let sl = Plan.schema cat left and sr = Plan.schema cat right in
      let roffs = offsets sr (List.map snd pairs) in
      Context.charge_cpu ctx nr;
      let rpages = Storage.Page.pages_for ~rows:nr sr in
      let lrows = exec left in
      let nl = Array.length lrows in
      let lpages = Storage.Page.pages_for ~rows:nl sl in
      let spill =
        if rpages > ctx.Context.work_mem_pages then 2 * (rpages + lpages)
        else 0
      in
      if spill > 0 then Context.charge_spill ctx spill;
      let loffs = offsets sl (List.map fst pairs) in
      let holds = pred2 sl sr residual in
      let inner_arity = Schema.arity sr in
      Context.charge_cpu ctx nl;
      let single = Array.length roffs = 1 in
      let rcol = if single then Int_col.extract rrows roffs.(0) else None in
      let lcol =
        if single && rcol <> None then Int_col.extract lrows loffs.(0)
        else None
      in
      let fault = !Batch.fault_null_key_as_zero in
      (* Exchange: hash-partition build rows by key into per-morsel ×
         per-partition index vectors (morsel order concatenation keeps
         every bucket chain in sequential insert order), build one table
         per partition in parallel, then probe morsels in parallel —
         every probe row finds its partition by the same hash.  Int keys
         hash as [Value.hash] of the boxed value would, so a mixed
         Int/Float comparison on the generic path still lands both sides
         in the same partition ([Value.equal] matches Int 2 = Float 2.0,
         and [Value.hash] is numerically consistent). *)
      let btasks = ntasks nr in
      let probe :
        (* per-probe-row bucket lookup, returning the bucket's (items,
           blen) *) (int -> Tuple.t -> Tuple.t list * int) =
        match (rcol, lcol) with
        | Some rc, Some lc ->
          let ihash k = Hashtbl.hash (float_of_int k) land max_int in
          let parts =
            Array.init (max btasks 1) (fun _ ->
                Array.init nparts (fun _ -> Storage.Vec.create ()))
          in
          dispatch p ~tasks:btasks (fun c ->
              let lo, hi = bounds nr c in
              for ri = lo to hi - 1 do
                let null = Int_col.is_null rc ri in
                if (not null) || fault then begin
                  let k = if null then 0 else rc.Int_col.data.(ri) in
                  Storage.Vec.push parts.(c).(ihash k mod nparts) ri
                end
              done;
              hi - lo);
          let absent = { blen = 0; items = [] } in
          let tbls =
            Array.init nparts (fun _ ->
                Keys.Int_map.create ~dummy:absent
                  (max 16 ((2 * nr / nparts) + 1)))
          in
          dispatch p ~tasks:nparts (fun pt ->
              let tbl = tbls.(pt) in
              let built = ref 0 in
              for c = 0 to btasks - 1 do
                Storage.Vec.iter
                  (fun ri ->
                     incr built;
                     let null = Int_col.is_null rc ri in
                     let k = if null then 0 else rc.Int_col.data.(ri) in
                     let b = Keys.Int_map.find tbl k in
                     if b == absent then
                       Keys.Int_map.add tbl k
                         { blen = 1; items = [ rrows.(ri) ] }
                     else begin
                       b.blen <- b.blen + 1;
                       b.items <- rrows.(ri) :: b.items
                     end)
                  parts.(c).(pt)
              done;
              !built);
          fun li _lt ->
            let null = Int_col.is_null lc li in
            if (not null) || fault then begin
              let k = if null then 0 else lc.Int_col.data.(li) in
              let b = Keys.Int_map.find tbls.(ihash k mod nparts) k in
              (b.items, b.blen)
            end
            else ([], 0)
        | _ ->
          let phash kv = Keys.hash_array kv land max_int mod nparts in
          let parts =
            Array.init (max btasks 1) (fun _ ->
                Array.init nparts (fun _ -> Storage.Vec.create ()))
          in
          dispatch p ~tasks:btasks (fun c ->
              let lo, hi = bounds nr c in
              for ri = lo to hi - 1 do
                let k = extract_key roffs rrows.(ri) in
                if key_nullfree k then
                  Storage.Vec.push parts.(c).(phash k) (ri, k)
              done;
              hi - lo);
          let tbls =
            Array.init nparts (fun _ ->
                Keys.Array_tbl.create (max 16 ((2 * nr / nparts) + 1)))
          in
          dispatch p ~tasks:nparts (fun pt ->
              let tbl = tbls.(pt) in
              let built = ref 0 in
              for c = 0 to btasks - 1 do
                Storage.Vec.iter
                  (fun (ri, k) ->
                     incr built;
                     match Keys.Array_tbl.find_opt tbl k with
                     | Some b ->
                       b.blen <- b.blen + 1;
                       b.items <- rrows.(ri) :: b.items
                     | None ->
                       Keys.Array_tbl.add tbl k
                         { blen = 1; items = [ rrows.(ri) ] })
                  parts.(c).(pt)
              done;
              !built);
          fun _li lt ->
            let k = extract_key loffs lt in
            if key_nullfree k then begin
              match Keys.Array_tbl.find_opt tbls.(phash k) k with
              | Some b -> (b.items, b.blen)
              | None -> ([], 0)
            end
            else ([], 0)
      in
      let ptasks = ntasks nl in
      let outs = Array.make (max ptasks 1) [||] in
      let cpus = Array.make (max ptasks 1) 0 in
      dispatch p ~tasks:ptasks (fun c ->
          let lo, hi = bounds nl c in
          let out = Storage.Vec.create () in
          let cpu = ref 0 in
          for li = lo to hi - 1 do
            let lt = lrows.(li) in
            let items, blen = probe li lt in
            cpu := !cpu + blen;
            emit_list out kind ~inner_arity lt items
              ~matches:(fun rt -> holds lt rt)
          done;
          let a = Storage.Vec.to_array out in
          outs.(c) <- a;
          cpus.(c) <- !cpu;
          Array.length a);
      Context.charge_cpu ctx (Array.fold_left ( + ) 0 cpus);
      Array.concat (Array.to_list outs)

    (* ---------------------------------------------------------------- *)
    (* Aggregation *)

    and aggregate p ~sorted keys aggs input =
      let rows = exec input in
      let n = Array.length rows in
      let s = Plan.schema cat input in
      let keyfs =
        Array.of_list (List.map (fun (e, _) -> Expr.compile s e) keys)
      in
      let nkeys = Array.length keyfs in
      let argfs =
        Array.of_list
          (List.map
             (fun (a, _) ->
                match Expr.agg_arg a with
                | None -> fun _ -> Value.Int 1 (* count-star: any non-null *)
                | Some e -> Expr.compile s e)
             aggs)
      in
      let agg_arr = Array.of_list (List.map fst aggs) in
      let naggs = Array.length agg_arr in
      Context.charge_cpu ctx n;
      let finalize kv (states : Expr.agg_state array) =
        Array.init (nkeys + naggs) (fun k ->
            if k < nkeys then kv.(k)
            else Expr.agg_final agg_arr.(k - nkeys) states.(k - nkeys))
      in
      let fresh_states () =
        Array.init naggs (fun _ -> Expr.agg_init ())
      in
      let step_all t states =
        for a = 0 to naggs - 1 do
          Expr.agg_step states.(a) (argfs.(a) t)
        done
      in
      let out =
        if sorted then begin
          (* stream aggregation over key-sorted input: sequential flush
             walk, same as Batch *)
          let out = Storage.Vec.create () in
          let cur_key = ref None in
          let cur_states = ref [||] in
          let flush () =
            match !cur_key with
            | None -> ()
            | Some kv -> Storage.Vec.push out (finalize kv !cur_states)
          in
          Array.iter
            (fun t ->
               let kv = Array.init nkeys (fun k -> keyfs.(k) t) in
               (match !cur_key with
                | Some kv' when Keys.equal_array kv kv' -> ()
                | Some _ | None ->
                  flush ();
                  cur_key := Some kv;
                  cur_states := fresh_states ());
               step_all t !cur_states)
            rows;
          flush ();
          Storage.Vec.to_array out
        end
        else begin
          (* Exchange by key-hash partition: each key's entire fold runs
             on one partition, sequentially in global row order — so
             non-associative float sums come out bit-exact and no state
             merging is needed.  Groups carry their first row index;
             sorting the merged groups on it reproduces the sequential
             first-occurrence emission order. *)
          let tasks = ntasks n in
          let parts =
            Array.init (max tasks 1) (fun _ ->
                Array.init nparts (fun _ -> Storage.Vec.create ()))
          in
          dispatch p ~tasks (fun c ->
              let lo, hi = bounds n c in
              for ri = lo to hi - 1 do
                let t = rows.(ri) in
                let kv = Array.init nkeys (fun k -> keyfs.(k) t) in
                let pt = Keys.hash_array kv land max_int mod nparts in
                Storage.Vec.push parts.(c).(pt) (ri, kv, t)
              done;
              hi - lo);
          let group_arrays = Array.make nparts [||] in
          dispatch p ~tasks:nparts (fun pt ->
              let tbl = Keys.Array_tbl.create 64 in
              let order = Storage.Vec.create () in
              let folded = ref 0 in
              for c = 0 to max tasks 1 - 1 do
                Storage.Vec.iter
                  (fun (ri, kv, t) ->
                     incr folded;
                     let states =
                       match Keys.Array_tbl.find_opt tbl kv with
                       | Some st -> st
                       | None ->
                         let st = fresh_states () in
                         Keys.Array_tbl.add tbl kv st;
                         Storage.Vec.push order (ri, kv);
                         st
                     in
                     step_all t states)
                  parts.(c).(pt)
              done;
              group_arrays.(pt) <-
                Array.map
                  (fun (ri, kv) ->
                     (ri, finalize kv (Keys.Array_tbl.find tbl kv)))
                  (Storage.Vec.to_array order);
              !folded);
          let all = Array.concat (Array.to_list group_arrays) in
          Array.sort (fun (a, _) (b, _) -> compare (a : int) b) all;
          Array.map snd all
        end
      in
      if keys = [] && Array.length out = 0 then
        (* scalar aggregate over the empty input: one row *)
        [| finalize [||] (fresh_states ()) |]
      else out

    and hash_distinct p i =
      let rows = exec i in
      let n = Array.length rows in
      Context.charge_cpu ctx n;
      (* exchange by whole-tuple hash; first-occurrence order restored by
         sorting survivors on their row index *)
      let tasks = ntasks n in
      let parts =
        Array.init (max tasks 1) (fun _ ->
            Array.init nparts (fun _ -> Storage.Vec.create ()))
      in
      dispatch p ~tasks (fun c ->
          let lo, hi = bounds n c in
          for ri = lo to hi - 1 do
            let t = rows.(ri) in
            let pt = Keys.hash_array t land max_int mod nparts in
            Storage.Vec.push parts.(c).(pt) ri
          done;
          hi - lo);
      let survivors = Array.make nparts [||] in
      dispatch p ~tasks:nparts (fun pt ->
          let seen = Keys.Array_tbl.create 64 in
          let keep = Storage.Vec.create () in
          for c = 0 to max tasks 1 - 1 do
            Storage.Vec.iter
              (fun ri ->
                 let t = rows.(ri) in
                 if not (Keys.Array_tbl.mem seen t) then begin
                   Keys.Array_tbl.add seen t ();
                   Storage.Vec.push keep ri
                 end)
              parts.(c).(pt)
          done;
          survivors.(pt) <- Storage.Vec.to_array keep;
          Array.length survivors.(pt));
      let all = Array.concat (Array.to_list survivors) in
      Array.sort (fun (a : int) b -> compare a b) all;
      Array.map (fun ri -> rows.(ri)) all
    in
    { Executor.schema = Plan.schema cat plan; rows = exec plan }
  end
