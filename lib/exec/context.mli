(** Execution context: buffer pool plus physical I/O and CPU accounting —
    the source of every "measured cost" number in the experiments. *)

type t = {
  pool : Storage.Buffer.Pool.t;
  work_mem_pages : int;  (** memory for sorts and hash builds *)
  mutable seq_io : int;  (** physical page reads, sequential pattern *)
  mutable rand_io : int;  (** physical page reads, random pattern *)
  mutable spill_io : int;  (** temp pages written + read back *)
  mutable cpu_ops : int;  (** abstract per-tuple operations *)
}

val create : ?buffer_pages:int -> ?work_mem_pages:int -> unit -> t

(** Access a page through the pool, charging a physical read on miss. *)
val read_page : t -> random:bool -> Storage.Buffer.page_id -> unit

val charge_cpu : t -> int -> unit
val charge_spill : t -> int -> unit

(** Pure record of the four counters at one instant. *)
type snapshot = { seq : int; rand : int; spill : int; cpu : int }

val snapshot_zero : snapshot
val snapshot : t -> snapshot

(** [diff later earlier] — the work charged between two snapshots. *)
val diff : snapshot -> snapshot -> snapshot

val snapshot_add : snapshot -> snapshot -> snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit

(** Total physical pages moved (seq + random + spill). *)
val total_io : t -> int

(** Scalar cost in the cost model's units (random reads dearer than
    sequential, CPU far cheaper than either). *)
val weighted_cost :
  ?seq_weight:float -> ?rand_weight:float -> ?cpu_weight:float -> t -> float

val pp : Format.formatter -> t -> unit
