(* Per-operator runtime instrumentation, shared by both engines.

   A recorder assigns every node of a physical plan a stable operator id
   (its pre-order index) before execution.  The engines then report each
   node execution through [measure] / [measured_replay], and the recorder
   accumulates per-operator actuals:

   - [act_rows]: rows produced by the first (cold) execution only, so the
     number is comparable between the tuple-at-a-time interpreter (which
     re-executes nested-loop inners) and the batch engine (which executes
     once and replays).
   - [rescans]: re-executions (interpreter) or replay invocations (batch)
     after the cold run.  Both engines drive rescans from the same outer
     cardinalities, so these match too.
   - [self]: counter activity attributed exclusively to this operator — a
     frame stack subtracts whatever nested child executions charged.
   - [wall_s]: exclusive wall-clock seconds, same attribution rule.

   The recorder is engine-agnostic: it never inspects operator semantics,
   only the dynamic nesting of executions. *)

(* Per-worker actuals for morsel-parallel operator phases; worker 0 is
   the coordinating domain. *)
type par = {
  par_dop : int;
  worker_wall : float array;
  worker_rows : int array;
}

(* One executed parallel task (a morsel, a partition build, ...):
   which worker ran which operator over which monotonic-clock interval.
   The full list is the execution's worker timeline — the raw material
   for the Chrome-trace profile export. *)
type task = {
  t_worker : int;
  t_op : int; (* operator id *)
  t_name : string; (* operator description, for display *)
  t_start : float; (* absolute Mclock seconds *)
  t_end : float;
}

type op = {
  id : int;
  node : Plan.t;
  mutable est_rows : float option; (* filled in post-hoc by Obs.Est *)
  mutable act_rows : int;
  mutable rescans : int;
  mutable wall_s : float;
  mutable self : Context.snapshot;
  mutable executed : bool;
  mutable par : par option;
}

type frame = {
  op : op;
  start_snap : Context.snapshot;
  start_time : float;
  (* Work charged by nested child executions, to subtract out. *)
  mutable child_snap : Context.snapshot;
  mutable child_time : float;
}

type t = {
  ops : op array;
  index : (Plan.t * op) list; (* physical-identity lookup *)
  mutable stack : frame list;
  mutable timeline : task list; (* reversed; [timeline] reverses *)
  mutable par_mismatches : int;
      (* parallel phases whose worker-array width differed from an
         earlier phase of the same operator (merged, not dropped) *)
}

let create (plan : Plan.t) : t =
  let nodes = Plan.preorder plan in
  let ops =
    Array.of_list
      (List.mapi
         (fun id node ->
            { id; node; est_rows = None; act_rows = 0; rescans = 0;
              wall_s = 0.; self = Context.snapshot_zero; executed = false;
              par = None })
         nodes)
  in
  let index = Array.to_list (Array.map (fun o -> (o.node, o)) ops) in
  { ops; index; stack = []; timeline = []; par_mismatches = 0 }

(* Physical identity: the engines execute the exact nodes [create] walked,
   and plans are small trees, so a linear [==] scan is both correct and
   cheap.  (Structural hashing would conflate repeated sub-plans.) *)
let lookup (r : t) (p : Plan.t) : op option =
  let rec go = function
    | [] -> None
    | (q, o) :: rest -> if q == p then Some o else go rest
  in
  go r.index

let ops (r : t) : op list = Array.to_list r.ops

let timeline (r : t) : task list = List.rev r.timeline

let par_mismatches (r : t) : int = r.par_mismatches

(* Record one parallel task's interval on [p]'s operator.  Called by the
   coordinator after a parallel phase completes (workers write disjoint
   slots of a pre-sized array; the coordinator folds it in here), so the
   recorder's mutable state is only ever touched from one domain. *)
let record_task (r : t) (p : Plan.t) ~(worker : int) ~(start_s : float)
    ~(end_s : float) : unit =
  match lookup r p with
  | None -> ()
  | Some o ->
    r.timeline <-
      { t_worker = worker; t_op = o.id; t_name = Plan.describe o.node;
        t_start = start_s; t_end = Float.max start_s end_s }
      :: r.timeline

let push_frame (r : t) (o : op) (ctx : Context.t) : frame =
  let f =
    { op = o;
      start_snap = Context.snapshot ctx;
      start_time = Mclock.now ();
      child_snap = Context.snapshot_zero;
      child_time = 0. }
  in
  r.stack <- f :: r.stack;
  f

(* Pop [f], attribute its exclusive share (total minus what nested child
   executions claimed), and roll the totals up into the enclosing frame's
   child accumulators. *)
let finish_frame (r : t) (f : frame) (ctx : Context.t) =
  r.stack <- List.tl r.stack;
  let total_time = Mclock.elapsed_s f.start_time in
  let total_snap = Context.diff (Context.snapshot ctx) f.start_snap in
  let o = f.op in
  o.wall_s <- o.wall_s +. (total_time -. f.child_time);
  o.self <- Context.snapshot_add o.self (Context.diff total_snap f.child_snap);
  match r.stack with
  | parent :: _ ->
    parent.child_snap <- Context.snapshot_add parent.child_snap total_snap;
    parent.child_time <- parent.child_time +. total_time
  | [] -> ()

(* [measure r ctx p ~rows f] runs one execution of node [p].  The first
   execution records [rows result] as the cold row count; later ones count
   as rescans.  Unknown nodes (e.g. sub-plans fabricated mid-run) fall
   through unmeasured. *)
let measure (r : t) (ctx : Context.t) (p : Plan.t) ~(rows : 'a -> int)
    (f : unit -> 'a) : 'a =
  match lookup r p with
  | None -> f ()
  | Some o ->
    let frame = push_frame r o ctx in
    (match f () with
     | result ->
       if o.executed then o.rescans <- o.rescans + 1
       else begin
         o.executed <- true;
         o.act_rows <- rows result
       end;
       finish_frame r frame ctx;
       result
     | exception e ->
       finish_frame r frame ctx;
       raise e)

(* Wrap a batch-engine replay closure so each invocation counts as a
   rescan of [p] and its work is attributed like a nested execution. *)
(* Fold one parallel phase's per-worker stats into [p]'s operator.  An
   operator may run several parallel phases (e.g. hash join: partition,
   build, probe); phases accumulate element-wise. *)
let record_par (r : t) (p : Plan.t) ~(dop : int) ~(wall : float array)
    ~(rows : int array) : unit =
  match lookup r p with
  | None -> ()
  | Some o -> (
    match o.par with
    | Some pr when Array.length pr.worker_wall = Array.length wall ->
      for w = 0 to Array.length wall - 1 do
        pr.worker_wall.(w) <- pr.worker_wall.(w) +. wall.(w);
        pr.worker_rows.(w) <- pr.worker_rows.(w) + rows.(w)
      done
    | Some pr ->
      (* width changed between phases (e.g. pool resized between runs):
         merge into max-width arrays rather than dropping the sample,
         and count the mismatch so callers can surface it *)
      r.par_mismatches <- r.par_mismatches + 1;
      let n = max (Array.length pr.worker_wall) (Array.length wall) in
      let mwall = Array.make n 0. and mrows = Array.make n 0 in
      Array.iteri (fun w v -> mwall.(w) <- v) pr.worker_wall;
      Array.iteri (fun w v -> mrows.(w) <- v) pr.worker_rows;
      Array.iteri (fun w v -> mwall.(w) <- mwall.(w) +. v) wall;
      Array.iteri (fun w v -> mrows.(w) <- mrows.(w) + v) rows;
      o.par <-
        Some
          { par_dop = max pr.par_dop dop; worker_wall = mwall;
            worker_rows = mrows }
    | None ->
      o.par <-
        Some
          { par_dop = dop; worker_wall = Array.copy wall;
            worker_rows = Array.copy rows })

let measured_replay (r : t) (ctx : Context.t) (p : Plan.t)
    (replay : unit -> unit) : unit -> unit =
  match lookup r p with
  | None -> replay
  | Some o ->
    fun () ->
      let frame = push_frame r o ctx in
      (match replay () with
       | () ->
         o.rescans <- o.rescans + 1;
         finish_frame r frame ctx
       | exception e ->
         finish_frame r frame ctx;
         raise e)
