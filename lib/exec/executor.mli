(** Plan execution.

    Execution materializes each operator's output while charging the
    context for page reads (through the buffer-pool simulator, so rescans
    of resident pages are free) and per-tuple CPU work.  [Nested_loop]
    re-executes its inner child per outer tuple — classical tuple-iteration
    semantics; [Materialize] caches its child within one {!run}. *)

open Relalg

type result = { schema : Schema.t; rows : Tuple.t array }

(** Temp pages written + read by an external sort of [pages] pages. *)
val sort_spill_pages : work_mem:int -> pages:int -> int

(** Execute a plan against a catalog.  A fresh context is used unless one
    is supplied (sharing a context shares its buffer pool across runs).
    When [obs] is given, every node execution is recorded against the
    {!Instrument} recorder (which must have been created on this plan);
    without it instrumentation costs one [match] per operator execution.
    @raise Invalid_argument when a referenced table or index is missing. *)
val run :
  ?ctx:Context.t -> ?obs:Instrument.t -> Storage.Catalog.t -> Plan.t -> result

(** Multiset equality of results — the equivalence notion of the
    rewrite-correctness tests. *)
val same_multiset : result -> result -> bool

(** Multiset equality modulo column order: columns are aligned by
    (relation, name) key first (different join orders permute schemas). *)
val same_multiset_modulo_columns : result -> result -> bool

val pp_result : Format.formatter -> result -> unit
