(** Selectivity estimation and propagation of statistical summaries through
    operators (Section 5.1.3).

    A {!rel_stats} is the statistical summary of one data stream — a
    *logical* property shared by every plan for the same expression (the
    logical/physical distinction of Section 5.2). *)

open Relalg

type col_key = string * string  (** (alias, column) *)

type rel_stats = {
  card : float;
  schema : Schema.t;  (** used for width/pages of intermediate streams *)
  cols : (col_key * Table_stats.col_stats) list;
}

(** Estimation assumptions (exercised by experiment E10). *)
type assumption = {
  conjunction : [ `Independence | `Most_selective ];
  use_histograms : bool;
  use_sketches : bool;
      (** prefer Fast-AGMS sketches ({!Sketch}) over histograms for join
          predicates when both columns carry fresh compatible sketches *)
}

val default_assumption : assumption

(** System-R's ad-hoc fallback constants ([55]). *)
val default_eq_sel : float
val default_range_sel : float
val default_sel : float

(** Estimated pages of the stream. *)
val pages : rel_stats -> float

(** Summary of a base table under a query alias. *)
val of_table : Table_stats.t -> alias:string -> schema:Schema.t -> rel_stats

val find_col : rel_stats -> Expr.col_ref -> Table_stats.col_stats option

(** Predicate selectivity in [0, 1]. *)
val selectivity : ?asm:assumption -> rel_stats -> Expr.t -> float

(** {2 Propagation through operators} *)

(** Selection: scales cardinality and restricts single-column histograms
    (the simplest propagation case of 5.1.3). *)
val apply_select : ?asm:assumption -> rel_stats -> Expr.t -> rel_stats

(** Join of two streams under a predicate. *)
val join :
  ?asm:assumption -> Algebra.join_kind -> rel_stats -> rel_stats -> Expr.t ->
  rel_stats

(** Grouping: output cardinality from key distinct counts, capped by the
    input cardinality. *)
val group :
  rel_stats -> keys:(Expr.t * string) list -> aggs:(Expr.agg * string) list ->
  rel_stats

val project : rel_stats -> (Expr.t * string) list -> rel_stats
val distinct : rel_stats -> rel_stats

(** Full bottom-up derivation over a logical tree. *)
val of_algebra : ?asm:assumption -> Table_stats.db -> Algebra.t -> rel_stats
