(** Statistical summaries of base data (Section 5.1.1): row/page counts and
    per-column distinct counts, null fraction, outlier-robust bounds
    (second-lowest / second-highest) and optional histograms. *)

type col_stats = {
  n_distinct : float;
  null_frac : float;
  lo : float option;  (** second-lowest value (numeric columns) *)
  hi : float option;  (** second-highest value *)
  min_v : float option;
      (** exact minimum over non-null values (numeric columns): unlike the
          outlier-robust [lo]/[hi] pair this is a {e sound} bound, which
          the static plan analyzer relies on *)
  max_v : float option;  (** exact maximum — sound bound *)
  hist : Histogram.t option;
  sketch : Sketch.t option;
      (** Fast-AGMS sketch of the column, folded into the registry after an
          execution that built one ({!Sketch}); consulted by the estimator
          when [Derive.assumption.use_sketches] is set *)
}

type t = {
  table : string;
  rows : float;
  pages : int;
  cols : (string * col_stats) list;
}

(** The statistics registry — the stats-side companion of the catalog,
    keyed by table name. *)
type db = (string, t) Hashtbl.t

val create_db : unit -> db

val analyze_column :
  ?hist_buckets:int -> ?hist_kind:Sample.kind -> Storage.Table.t -> string ->
  col_stats

(** ANALYZE one table. *)
val analyze : ?hist_buckets:int -> ?hist_kind:Sample.kind -> Storage.Table.t -> t

(** ANALYZE every table of a catalog into a fresh registry. *)
val analyze_catalog :
  ?hist_buckets:int -> ?hist_kind:Sample.kind -> Storage.Catalog.t -> db

val find : db -> string -> t option
val col : t -> string -> col_stats option

val pp : Format.formatter -> t -> unit
