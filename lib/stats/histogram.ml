(* Column histograms over numeric data (Section 5.1.1).

   Three bucketizations from the paper:
   - equi-width: k ranges of equal value span;
   - equi-depth (equi-height): k ranges of (near-)equal row count;
   - compressed: frequent values in singleton buckets, equi-depth on the
     rest — effective for both high- and low-skew data ([52]).

   Within a bucket, values are assumed uniformly spread over the bucket's
   distinct values — the accuracy-relevant assumption discussed in 5.1.1. *)

type bucket = {
  lo : float; (* inclusive *)
  hi : float; (* inclusive *)
  count : float; (* rows with lo <= v <= hi *)
  distinct : float; (* distinct values inside *)
}

type t = {
  total : float; (* rows covered (non-null) *)
  singletons : (float * float) array; (* (value, frequency), sorted *)
  buckets : bucket array; (* disjoint, sorted by lo *)
}

let total t = t.total

let empty = { total = 0.; singletons = [||]; buckets = [||] }

(* Frequency table of a sorted array: (value, count) pairs. *)
let frequencies (sorted : float array) : (float * int) list =
  let n = Array.length sorted in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let v = sorted.(i) in
      let j = ref i in
      while !j < n && sorted.(!j) = v do incr j done;
      go !j ((v, !j - i) :: acc)
  in
  go 0 []

let bucket_of_freqs (fs : (float * int) list) : bucket option =
  match fs with
  | [] -> None
  | (v0, _) :: _ ->
    let hi, count, distinct =
      List.fold_left
        (fun (_, c, d) (v, k) -> (v, c + k, d + 1))
        (v0, 0, 0) fs
    in
    Some { lo = v0; hi; count = float_of_int count;
           distinct = float_of_int distinct }

let of_buckets buckets singletons =
  let total =
    Array.fold_left (fun acc b -> acc +. b.count) 0. buckets
    +. Array.fold_left (fun acc (_, c) -> acc +. c) 0. singletons
  in
  { total; singletons; buckets }

let build_equi_width ~buckets:k (values : float array) : t =
  if Array.length values = 0 then empty
  else begin
    let sorted = Array.copy values in
    Array.sort Float.compare sorted;
    let fs = frequencies sorted in
    let lo = sorted.(0) and hi = sorted.(Array.length sorted - 1) in
    let width = if hi > lo then (hi -. lo) /. float_of_int k else 1. in
    let bucket_index v =
      if width <= 0. then 0
      else min (k - 1) (int_of_float ((v -. lo) /. width))
    in
    let parts = Array.make k [] in
    List.iter (fun (v, c) -> let i = bucket_index v in parts.(i) <- (v, c) :: parts.(i)) fs;
    let bs =
      Array.to_list parts
      |> List.filter_map (fun part -> bucket_of_freqs (List.rev part))
      |> Array.of_list
    in
    of_buckets bs [||]
  end

let build_equi_depth ~buckets:k (values : float array) : t =
  if Array.length values = 0 then empty
  else begin
    let sorted = Array.copy values in
    Array.sort Float.compare sorted;
    let fs = frequencies sorted in
    let n = Array.length sorted in
    let target = max 1 (n / k) in
    (* greedy fill: close a bucket when it reaches the target depth; a single
       heavy value may overflow its bucket (values are never split) *)
    let rec fill cur cur_n acc = function
      | [] ->
        let acc = match bucket_of_freqs (List.rev cur) with
          | Some b -> b :: acc | None -> acc in
        List.rev acc
      | (v, c) :: rest ->
        if cur_n > 0 && cur_n + c > target then
          let acc = match bucket_of_freqs (List.rev cur) with
            | Some b -> b :: acc | None -> acc in
          fill [ (v, c) ] c acc rest
        else fill ((v, c) :: cur) (cur_n + c) acc rest
    in
    of_buckets (Array.of_list (fill [] 0 [] fs)) [||]
  end

let build_compressed ~buckets:k ~singletons:s (values : float array) : t =
  if Array.length values = 0 then empty
  else begin
    let sorted = Array.copy values in
    Array.sort Float.compare sorted;
    let fs = frequencies sorted in
    (* top-s most frequent values become singleton buckets *)
    let by_freq =
      List.sort (fun (_, a) (_, b) -> Stdlib.compare b a) fs
    in
    let rec take n = function
      | [] -> [] | x :: r -> if n = 0 then [] else x :: take (n - 1) r
    in
    let top = take s by_freq in
    let is_top v = List.exists (fun (w, _) -> w = v) top in
    let rest = List.filter (fun (v, _) -> not (is_top v)) fs in
    let rest_hist =
      build_equi_depth ~buckets:k
        (Array.of_list
           (List.concat_map (fun (v, c) -> List.init c (fun _ -> v)) rest))
    in
    let singles =
      List.map (fun (v, c) -> (v, float_of_int c)) top
      |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
      |> Array.of_list
    in
    of_buckets rest_hist.buckets singles
  end

(* ------------------------------------------------------------------ *)
(* Estimation *)

(* Fraction of the bucket's rows with value = v under uniform spread. *)
let bucket_eq_fraction b v =
  if v < b.lo || v > b.hi then 0.
  else if b.distinct <= 0. then 0.
  else b.count /. b.distinct

(* Rows with value in [lo_v, hi_v] inside bucket [b]: linear interpolation
   over the value span. *)
let bucket_range_rows b ~lo_v ~hi_v =
  let lo_v = max lo_v b.lo and hi_v = min hi_v b.hi in
  if hi_v < lo_v then 0.
  else if b.hi = b.lo then b.count
  else b.count *. ((hi_v -. lo_v) /. (b.hi -. b.lo))

(* Selectivity of [column = v]. *)
let est_eq t v =
  if t.total <= 0. then 0.
  else
    let s =
      match Array.find_opt (fun (w, _) -> w = v) t.singletons with
      | Some (_, c) -> c
      | None ->
        Array.fold_left (fun acc b -> acc +. bucket_eq_fraction b v) 0. t.buckets
    in
    s /. t.total

(* Selectivity of [lo <= column <= hi] (either side optional). *)
let est_range t ?lo ?hi () =
  if t.total <= 0. then 0.
  else
    let lo_v = Option.value lo ~default:neg_infinity in
    let hi_v = Option.value hi ~default:infinity in
    let from_buckets =
      Array.fold_left
        (fun acc b -> acc +. bucket_range_rows b ~lo_v ~hi_v)
        0. t.buckets
    in
    let from_singles =
      Array.fold_left
        (fun acc (v, c) -> if v >= lo_v && v <= hi_v then acc +. c else acc)
        0. t.singletons
    in
    min 1. ((from_buckets +. from_singles) /. t.total)

(* Histogram "join" (Section 5.1.3): align bucket boundaries of two
   histograms and estimate matching row pairs per aligned interval as
   (r1 * r2) / max(d1, d2) — the containment assumption.  Returns estimated
   join result rows (not selectivity). *)
let join_rows (a : t) (b : t) : float =
  let expand t =
    Array.to_list t.buckets
    @ (Array.to_list t.singletons
       |> List.map (fun (v, c) -> { lo = v; hi = v; count = c; distinct = 1. }))
  in
  let ba = expand a and bb = expand b in
  (* boundary set *)
  let bounds =
    List.concat_map (fun bk -> [ bk.lo; bk.hi ]) (ba @ bb)
    |> List.sort_uniq Float.compare
  in
  let rec intervals = function
    | x :: (y :: _ as rest) -> (x, y) :: intervals rest
    | [ x ] -> [ (x, x) ]
    | [] -> []
  in
  (* Like [bucket_range_rows], except a single-point overlap with a range
     bucket contributes that bucket's per-distinct mass rather than the
     measure-zero continuous answer.  Such overlaps arise exactly when
     the other histogram has a point bucket sitting on this bucket's
     edge — returning 0 there would estimate 0 join rows for a value the
     histograms both provably contain. *)
  let rows_in bs ~lo_v ~hi_v =
    List.fold_left
      (fun acc bk ->
         let olo = Float.max lo_v bk.lo and ohi = Float.min hi_v bk.hi in
         if ohi < olo then acc
         else if bk.hi = bk.lo then acc +. bk.count
         else if ohi = olo then acc +. (bk.count /. Float.max 1. bk.distinct)
         else acc +. (bk.count *. ((ohi -. olo) /. (bk.hi -. bk.lo))))
      0. bs
  in
  let distinct_in bs ~lo_v ~hi_v =
    List.fold_left
      (fun acc bk ->
         let overlap_lo = max lo_v bk.lo and overlap_hi = min hi_v bk.hi in
         if overlap_hi < overlap_lo then acc
         else if bk.hi = bk.lo then acc +. bk.distinct
         else if overlap_hi = overlap_lo then acc +. 1.
         else
           acc +. (bk.distinct *. ((overlap_hi -. overlap_lo) /. (bk.hi -. bk.lo))))
      0. bs
  in
  (* halve interval double-counting at shared boundaries by using half-open
     [lo, hi) intervals except the last *)
  let ivs = intervals bounds in
  let n = List.length ivs in
  List.fold_left
    (fun (acc, i) (lo_v, hi_v) ->
       let hi_eff =
         if i = n - 1 then hi_v
         else hi_v -. (1e-9 *. (1. +. Float.abs hi_v))
       in
       let r1 = rows_in ba ~lo_v ~hi_v:hi_eff
       and r2 = rows_in bb ~lo_v ~hi_v:hi_eff in
       let d1 = distinct_in ba ~lo_v ~hi_v:hi_eff
       and d2 = distinct_in bb ~lo_v ~hi_v:hi_eff in
       let d = max d1 d2 in
       ((if d > 0. then acc +. (r1 *. r2 /. d) else acc), i + 1))
    (0., 0) ivs
  |> fst

let bucket_count t = Array.length t.buckets + Array.length t.singletons

let pp ppf t =
  Fmt.pf ppf "@[<v>hist total=%.0f@,singletons: %a@,%a@]" t.total
    Fmt.(array ~sep:(any ", ") (fun ppf (v, c) -> Fmt.pf ppf "%g:%g" v c))
    t.singletons
    Fmt.(array ~sep:cut (fun ppf b ->
        Fmt.pf ppf "  [%g, %g] count=%g distinct=%g" b.lo b.hi b.count b.distinct))
    t.buckets
