(* Fast-AGMS (count) sketches for join-size estimation.

   A sketch is a depth x width array of counters.  Each incoming key value
   is hashed once per row: a bucket hash picks the counter and an
   independent +/-1 sign hash decides the direction of the update.  For two
   sketches a, b built with the same seed over the join columns, the dot
   product of row i of a with row i of b is an unbiased estimate of the
   join size |a JOIN b|; the median over the d rows sharpens the
   confidence.  With width w and depth d the classic AGMS guarantee is

     |est - J| <= sqrt(8/w) * sqrt(F2(a) * F2(b))   w.p. >= 1 - exp(-d/8)

   where F2 is the second frequency moment (sum of squared value
   frequencies) of each input.  See Cormode & Garofalakis, "Sketching
   streams through the net", and Izenov et al., "Online Sketch-based
   Query Optimization" (PAPERS.md).

   Hashing is deterministic given the seed (a splitmix64-style finalizer
   over (seed, row, value)), so sketch estimates — and the tests that pin
   them — are reproducible across runs and OCaml versions. *)

type t = {
  width : int;
  depth : int;
  seed : int;
  counters : float array array; (* depth x width; +/-1 increments *)
  mutable items : int; (* non-null values fed *)
}

let default_width = 256
let default_depth = 5

let create ?(width = default_width) ?(depth = default_depth) ?(seed = 0x5eed)
    () : t =
  if width <= 0 || depth <= 0 then
    invalid_arg "Sketch.create: width and depth must be positive";
  { width;
    depth;
    seed;
    counters = Array.init depth (fun _ -> Array.make width 0.);
    items = 0 }

let compatible a b =
  a.width = b.width && a.depth = b.depth && a.seed = b.seed

(* splitmix64-style finalizer with the multipliers truncated to OCaml's
   representable int range.  The multiplications wrap mod 2^62, which is
   fine for mixing. *)
let mix (z : int) : int =
  let z = z * 0x1e3779b97f4a7c15 in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  z lxor (z lsr 31)

let hash sk ~row v : int * float =
  let h = mix (sk.seed + (row * 0x9e3779b9) + mix v) in
  let bucket = (h lsr 1) mod sk.width in
  let sign = if h land 1 = 0 then 1. else -1. in
  (bucket, sign)

let update (sk : t) (v : int) : unit =
  for i = 0 to sk.depth - 1 do
    let bucket, sign = hash sk ~row:i v in
    sk.counters.(i).(bucket) <- sk.counters.(i).(bucket) +. sign
  done;
  sk.items <- sk.items + 1

let items sk = sk.items

let median (xs : float array) : float =
  let xs = Array.copy xs in
  Array.sort Float.compare xs;
  let n = Array.length xs in
  if n = 0 then 0.
  else if n mod 2 = 1 then xs.(n / 2)
  else (xs.((n / 2) - 1) +. xs.(n / 2)) /. 2.

let dot (a : float array) (b : float array) : float =
  let acc = ref 0. in
  for j = 0 to Array.length a - 1 do
    acc := !acc +. (a.(j) *. b.(j))
  done;
  !acc

(* Estimated join size |a JOIN b| on the sketched columns.  Raises
   [Invalid_argument] when the sketches were built with different shapes
   or seeds (their rows would not be comparable). *)
let join_estimate (a : t) (b : t) : float =
  if not (compatible a b) then
    invalid_arg "Sketch.join_estimate: incompatible sketches";
  median (Array.init a.depth (fun i -> dot a.counters.(i) b.counters.(i)))

(* Estimated second frequency moment F2 = sum_v freq(v)^2 — the
   self-join size of the sketched column. *)
let second_moment (a : t) : float =
  median (Array.init a.depth (fun i -> dot a.counters.(i) a.counters.(i)))

(* Error-bound parameters of the (epsilon, delta) guarantee. *)
let epsilon sk = sqrt (8. /. float_of_int sk.width)
let delta sk = exp (-.float_of_int sk.depth /. 8.)

(* Additive error bound epsilon * sqrt(F2(a) * F2(b)), using the sketches'
   own F2 estimates (each within (1 +/- epsilon) of exact w.h.p.). *)
let error_bound (a : t) (b : t) : float =
  epsilon a *. sqrt (Float.max 0. (second_moment a) *. Float.max 0. (second_moment b))

(* ------------------------------------------------------------------ *)
(* Registry: sketches built during execution, keyed by (table, column),
   with the table row count at build time recorded so stale sketches are
   ignored after data or statistics change. *)

type entry = { sketch : t; rows_at_build : float }
type registry = (string * string, entry) Hashtbl.t

let registry_create () : registry = Hashtbl.create 16

let registry_set (reg : registry) ~table ~column (e : entry) : unit =
  Hashtbl.replace reg (table, column) e

let registry_find (reg : registry) ~table ~column : entry option =
  Hashtbl.find_opt reg (table, column)

(* A sketch is fresh iff the table's current row count (per the stats
   registry) matches the count when the sketch was built; the comparison
   lives in the caller to keep this module below [Table_stats]. *)
let entry_fresh (e : entry) ~(rows : float) : t option =
  if e.rows_at_build = rows then Some e.sketch else None

let registry_iter (f : table:string -> column:string -> entry -> unit)
    (reg : registry) : unit =
  Hashtbl.iter (fun (t, c) e -> f ~table:t ~column:c e) reg

let registry_clear (reg : registry) : unit = Hashtbl.reset reg
let registry_size (reg : registry) : int = Hashtbl.length reg
